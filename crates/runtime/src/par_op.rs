//! Simulation of a single parallel operation under a chunk policy.
//!
//! Tasks execute under the owner-computes rule \[9\]: an initial block
//! decomposition assigns each task a home processor; a processor
//! executing a chunk of non-owned tasks pays the data-transfer message
//! cost. Every chunk dispatch costs the machine's scheduling overhead.
//! Static block scheduling (the no-runtime baseline) has its own path
//! with no dynamic events at all.

use crate::chunking::{ChunkPolicy, PolicyKind};
use orchestra_machine::{EventQueue, MachineConfig, RunStats};

/// Options for one parallel-operation simulation.
#[derive(Debug, Clone, Copy)]
pub struct OpOptions {
    /// Bytes of task data that move when a task runs off its home
    /// processor.
    pub bytes_per_task: u64,
    /// Simulation start time (µs) — operations later in a dataflow
    /// schedule start when their inputs are ready.
    pub start_time: f64,
    /// First processor of the partition executing this op.
    pub proc_offset: usize,
}

impl Default for OpOptions {
    fn default() -> Self {
        OpOptions { bytes_per_task: 256, start_time: 0.0, proc_offset: 0 }
    }
}

/// Result of simulating one parallel operation.
#[derive(Debug, Clone)]
pub struct OpResult {
    /// Completion time (µs, absolute).
    pub finish: f64,
    /// Per-processor stats.
    pub stats: RunStats,
    /// Chunks dispatched.
    pub chunks: u64,
    /// Tasks that ran off their home processor.
    pub migrated_tasks: u64,
}

impl OpResult {
    /// Efficiency relative to perfect speedup of the total task work.
    pub fn efficiency(&self, total_work: f64, p: usize, start: f64) -> f64 {
        let span = self.finish - start;
        if span <= 0.0 {
            return 1.0;
        }
        total_work / (p as f64 * span)
    }
}

/// The home processor of task `i` under block decomposition of `n`
/// tasks over `p` processors.
pub fn owner_of(i: usize, n: usize, p: usize) -> usize {
    if n == 0 {
        return 0;
    }
    (i * p / n).min(p - 1)
}

/// Simulates static block scheduling: processor `q` executes its block
/// of the iteration space with a single scheduling event and no
/// transfers.
pub fn simulate_static(cfg: &MachineConfig, p: usize, costs: &[f64], opts: &OpOptions) -> OpResult {
    let p = p.max(1);
    let n = costs.len();
    let mut stats = RunStats::new(p);
    let mut finish = opts.start_time;
    for q in 0..p {
        let lo = q * n / p;
        let hi = (q + 1) * n / p;
        if lo >= hi {
            continue;
        }
        let work: f64 = costs[lo..hi].iter().sum();
        let end = opts.start_time + cfg.sched_overhead + work;
        stats.record_chunk(q, (hi - lo) as u64, work, end);
        finish = finish.max(end);
    }
    OpResult { finish, stats, chunks: p.min(n) as u64, migrated_tasks: 0 }
}

/// Simulates a dynamically scheduled parallel operation.
///
/// Tasks start block-decomposed onto their home processors
/// (owner-computes). An idle processor draws its next chunk from its
/// *own* block first — no data movement; once its block is exhausted it
/// takes work from the most-loaded processor, paying the transfer
/// message cost ("as the runtime system gains information about the
/// work distribution, it refines the data decomposition"). Sampled task
/// times feed back into the policy.
pub fn simulate_dynamic(
    cfg: &MachineConfig,
    p: usize,
    costs: &[f64],
    policy: &mut dyn ChunkPolicy,
    opts: &OpOptions,
) -> OpResult {
    let p = p.max(1);
    let n = costs.len();
    let mut stats = RunStats::new(p);
    let mut queue: EventQueue<usize> = EventQueue::new();
    // Per-processor pending ranges, as (lo, hi) of the owned block.
    let mut local: Vec<std::collections::VecDeque<usize>> =
        vec![std::collections::VecDeque::new(); p];
    for i in 0..n {
        local[owner_of(i, n, p)].push_back(i);
    }
    let mut remaining = n;
    let mut chunks = 0u64;
    let mut migrated = 0u64;
    let mut finish = opts.start_time;
    // Reused across chunks — the hot loop allocates nothing.
    let mut taken: Vec<usize> = Vec::new();

    // All processors request work at the start.
    for q in 0..p {
        queue.push(opts.start_time, q);
    }
    while let Some((t, q)) = queue.pop() {
        if remaining == 0 {
            continue;
        }
        let next_hint = n - remaining;
        let k = policy.next_chunk(next_hint, remaining, p).clamp(1, remaining);
        let mut transfer = 0.0;
        taken.clear();
        if !local[q].is_empty() {
            let take = k.min(local[q].len());
            taken.extend((0..take).map(|_| local[q].pop_front().expect("len checked")));
        } else {
            // Steal from the most-loaded processor (at most half its
            // remaining block, never more than the chunk).
            let victim = (0..p).max_by_key(|&v| local[v].len()).expect("p >= 1");
            if local[victim].is_empty() {
                continue;
            }
            let take = k.min(local[victim].len().div_ceil(2));
            taken.extend((0..take).map(|_| local[victim].pop_back().expect("len checked")));
            let bytes = taken.len() as u64 * opts.bytes_per_task;
            transfer = cfg.msg_time(opts.proc_offset + victim, opts.proc_offset + q, bytes);
            migrated += taken.len() as u64;
        }
        if taken.is_empty() {
            continue;
        }
        remaining -= taken.len();
        chunks += 1;
        let mut work = 0.0;
        for &i in &taken {
            work += costs[i];
            policy.observe(i, costs[i]);
        }
        let end = t + cfg.sched_overhead + transfer + work;
        stats.record_chunk(q, taken.len() as u64, work, end);
        finish = finish.max(end);
        queue.push(end, q);
    }
    OpResult { finish, stats, chunks, migrated_tasks: migrated }
}

/// Simulates under a [`PolicyKind`], dispatching to the static or
/// dynamic path.
pub fn simulate_policy(
    cfg: &MachineConfig,
    p: usize,
    costs: &[f64],
    kind: PolicyKind,
    opts: &OpOptions,
) -> OpResult {
    match kind {
        PolicyKind::Static => simulate_static(cfg, p, costs, opts),
        other => {
            let mut policy = other.instantiate(costs.len());
            simulate_dynamic(cfg, p, costs, policy.as_mut(), opts)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_machine::CostDistribution;

    fn ideal(p: usize) -> MachineConfig {
        MachineConfig::ideal(p)
    }

    #[test]
    fn owner_blocks_are_contiguous_and_balanced() {
        let owners: Vec<usize> = (0..100).map(|i| owner_of(i, 100, 4)).collect();
        assert_eq!(owners[0], 0);
        assert_eq!(owners[99], 3);
        assert!(owners.windows(2).all(|w| w[1] >= w[0]));
        for q in 0..4 {
            assert_eq!(owners.iter().filter(|&&o| o == q).count(), 25);
        }
    }

    #[test]
    fn static_on_uniform_work_is_perfect() {
        let costs = vec![10.0; 64];
        let r = simulate_static(&ideal(8), 8, &costs, &OpOptions::default());
        assert!((r.finish - 80.0).abs() < 1e-9);
        assert!((r.stats.utilization() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let costs = CostDistribution::HeavyTail { mean: 5.0, sigma: 1.0 }.sample(500, 3);
        for kind in [
            PolicyKind::Static,
            PolicyKind::SelfSched,
            PolicyKind::Gss,
            PolicyKind::Factoring,
            PolicyKind::Taper,
            PolicyKind::TaperCostFn,
        ] {
            let r = simulate_policy(
                &MachineConfig::ncube2(16),
                16,
                &costs,
                kind,
                &OpOptions::default(),
            );
            assert_eq!(r.stats.total_tasks(), 500, "{}", kind.name());
            let total: f64 = costs.iter().sum();
            assert!((r.stats.total_busy() - total).abs() < 1e-6, "{}", kind.name());
        }
    }

    #[test]
    fn makespan_at_least_critical_path() {
        let mut costs = vec![1.0; 100];
        costs[0] = 500.0; // one giant task
        let r =
            simulate_policy(&ideal(10), 10, &costs, PolicyKind::SelfSched, &OpOptions::default());
        assert!(r.finish >= 500.0);
    }

    #[test]
    fn dynamic_beats_static_on_irregular_work() {
        // Coarse-grained tasks (the paper's scheduling units) so that
        // dynamic scheduling can amortize the machine's message costs.
        let costs = CostDistribution::Bimodal { mean: 500.0, heavy_frac: 0.1, heavy_mult: 30.0 }
            .sample(1000, 7);
        let cfg = MachineConfig::ncube2(64);
        let st = simulate_static(&cfg, 64, &costs, &OpOptions::default());
        let mut taper = crate::chunking::Taper::new();
        let dy = simulate_dynamic(&cfg, 64, &costs, &mut taper, &OpOptions::default());
        assert!(dy.finish < st.finish, "TAPER {} should beat static {}", dy.finish, st.finish);
    }

    #[test]
    fn static_beats_self_sched_on_regular_work_with_overhead() {
        let costs = vec![5.0; 4096];
        let cfg = MachineConfig::ncube2(64);
        let st = simulate_static(&cfg, 64, &costs, &OpOptions::default());
        let ss = simulate_policy(&cfg, 64, &costs, PolicyKind::SelfSched, &OpOptions::default());
        assert!(
            st.finish < ss.finish,
            "static {} should beat self-sched {} on regular work",
            st.finish,
            ss.finish
        );
    }

    #[test]
    fn taper_uses_fewer_chunks_than_self_sched() {
        let costs = CostDistribution::Uniform { mean: 5.0, spread: 0.3 }.sample(2000, 9);
        let cfg = MachineConfig::ncube2(32);
        let ss = simulate_policy(&cfg, 32, &costs, PolicyKind::SelfSched, &OpOptions::default());
        let tp = simulate_policy(&cfg, 32, &costs, PolicyKind::Taper, &OpOptions::default());
        assert!(tp.chunks < ss.chunks / 4);
    }

    #[test]
    fn start_time_offsets_everything() {
        let costs = vec![2.0; 64];
        let opts = OpOptions { start_time: 1000.0, ..OpOptions::default() };
        let r = simulate_policy(&ideal(8), 8, &costs, PolicyKind::Gss, &opts);
        assert!(r.finish >= 1016.0);
    }

    #[test]
    fn migration_counted_only_off_home() {
        // 1 processor: everything is home.
        let costs = vec![1.0; 50];
        let r = simulate_policy(
            &MachineConfig::ncube2(1),
            1,
            &costs,
            PolicyKind::Gss,
            &OpOptions::default(),
        );
        assert_eq!(r.migrated_tasks, 0);
    }

    #[test]
    fn more_processors_never_slower_ideal_machine() {
        let costs = CostDistribution::Uniform { mean: 10.0, spread: 0.5 }.sample(512, 13);
        let t8 = simulate_policy(&ideal(8), 8, &costs, PolicyKind::Gss, &OpOptions::default());
        let t64 = simulate_policy(&ideal(64), 64, &costs, PolicyKind::Gss, &OpOptions::default());
        assert!(t64.finish <= t8.finish + 1e-9);
    }
}
