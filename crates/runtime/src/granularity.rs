//! Communication granularity for pipelined operation pairs (§4.1).
//!
//! "Finally, we combined finishing time estimates with runtime
//! communication cost estimates to choose communication granularity for
//! pairs of pipelined parallel operations."
//!
//! A producer streams `n` items of `item_bytes` each to a consumer.
//! Batching `b` items per message trades per-message latency `α`
//! against pipeline fill delay (the consumer waits for whole batches):
//!
//! ```text
//! cost(b) = (n/b)·α  +  b·item_bytes·β  +  transfer(n)
//! ```
//!
//! The first term is total message latency, the second the fill delay
//! of one batch (the steady-state transfer of all bytes is paid
//! regardless). The optimum is `b* = √(n·α / (β·item_bytes))`, clamped
//! to `[1, n]`.

use orchestra_machine::MachineConfig;

/// The latency-vs-fill cost of streaming `n` items batched `b` at a
/// time (µs): total per-message latency plus the fill delay of one
/// batch. The steady-state byte-transfer time `n·item_bytes·β` is paid
/// regardless of batching and is accounted separately by
/// [`pipelined_stage_time`].
pub fn batch_cost(n: usize, item_bytes: u64, b: usize, cfg: &MachineConfig) -> f64 {
    batch_cost_params(n, item_bytes, b, cfg.alpha, cfg.beta)
}

/// [`batch_cost`] over explicit per-message latency `alpha` (µs) and
/// per-byte cost `beta` (µs/B) — the form the real backends use with
/// host-measured values instead of a simulated `MachineConfig`.
pub fn batch_cost_params(n: usize, item_bytes: u64, b: usize, alpha: f64, beta: f64) -> f64 {
    let b = b.clamp(1, n.max(1));
    let msgs = (n as f64 / b as f64).ceil();
    let fill = b as f64 * item_bytes as f64 * beta;
    msgs * alpha + fill
}

/// Chooses the batch size minimizing [`batch_cost`].
///
/// Evaluates the analytic optimum and its neighbours (the cost is
/// unimodal in `b`, but integer rounding matters near the minimum).
pub fn choose_batch(n: usize, item_bytes: u64, cfg: &MachineConfig) -> usize {
    choose_batch_params(n, item_bytes, cfg.alpha, cfg.beta)
}

/// [`choose_batch`] over explicit `alpha`/`beta`. The simulated and
/// real backends share this one decision procedure, so a measured
/// `HostCalibration` and a `MachineConfig` cannot silently diverge in
/// *how* they pick b\* — only in the costs they feed it.
pub fn choose_batch_params(n: usize, item_bytes: u64, alpha: f64, beta: f64) -> usize {
    if n <= 1 {
        return n.max(1);
    }
    if beta <= 0.0 || item_bytes == 0 {
        return n; // latency-only: one big message
    }
    if alpha <= 0.0 {
        return 1; // bandwidth-only: stream item by item
    }
    let ideal = (n as f64 * alpha / (beta * item_bytes as f64)).sqrt();
    let mut best = 1usize;
    let mut best_cost = f64::INFINITY;
    // The even-divisor batch near the ideal avoids a ragged final
    // message (⌈n/b⌉ jumps at divisor boundaries).
    let msgs = (n as f64 / ideal.max(1.0)).ceil().max(1.0) as usize;
    let even = n.div_ceil(msgs);
    let even_fewer = n.div_ceil(msgs.saturating_sub(1).max(1));
    let candidates = [
        1,
        ideal.floor().max(1.0) as usize,
        ideal.ceil() as usize,
        even,
        even_fewer,
        (ideal * 2.0) as usize,
        (ideal / 2.0).max(1.0) as usize,
        n,
    ];
    for &b in &candidates {
        let b = b.clamp(1, n);
        let c = batch_cost_params(n, item_bytes, b, alpha, beta);
        if c < best_cost {
            best_cost = c;
            best = b;
        }
    }
    best
}

/// The pipeline-throughput estimate for a producer/consumer pair
/// exchanging `n` items at batch size `b`: per-iteration overlap-aware
/// latency added to the slower stage.
pub fn pipelined_stage_time(
    producer_time: f64,
    consumer_time: f64,
    n: usize,
    item_bytes: u64,
    b: usize,
    cfg: &MachineConfig,
) -> f64 {
    pipelined_stage_time_params(producer_time, consumer_time, n, item_bytes, b, cfg.alpha, cfg.beta)
}

/// [`pipelined_stage_time`] over explicit `alpha`/`beta` — the
/// overlapped-stage estimate the real backends' finishing-time
/// equalizer uses for streamed producer→consumer pairs.
#[allow(clippy::too_many_arguments)]
pub fn pipelined_stage_time_params(
    producer_time: f64,
    consumer_time: f64,
    n: usize,
    item_bytes: u64,
    b: usize,
    alpha: f64,
    beta: f64,
) -> f64 {
    // Steady state: compute of both stages and the byte stream overlap;
    // the slowest of the three paces the pipeline.
    let stream = n as f64 * item_bytes as f64 * beta;
    // The fill of one batch (latency + its bytes) cannot overlap.
    let fill = b.clamp(1, n.max(1)) as f64 * item_bytes as f64 * beta + alpha;
    producer_time.max(consumer_time).max(stream) + fill
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_dominant_favors_big_batches() {
        let mut cfg = MachineConfig::ncube2(2);
        cfg.alpha = 10_000.0;
        cfg.beta = 0.001;
        let b = choose_batch(1024, 8, &cfg);
        assert!(b > 256, "huge α should batch aggressively, got {b}");
    }

    #[test]
    fn bandwidth_dominant_favors_small_batches() {
        let mut cfg = MachineConfig::ncube2(2);
        cfg.alpha = 1.0;
        cfg.beta = 50.0;
        let b = choose_batch(1024, 1024, &cfg);
        assert!(b <= 2, "huge β should stream, got {b}");
    }

    #[test]
    fn chosen_batch_is_no_worse_than_endpoints() {
        let cfg = MachineConfig::ncube2(2);
        for n in [16, 256, 4096] {
            let b = choose_batch(n, 64, &cfg);
            let c = batch_cost(n, 64, b, &cfg);
            assert!(c <= batch_cost(n, 64, 1, &cfg) + 1e-9);
            assert!(c <= batch_cost(n, 64, n, &cfg) + 1e-9);
        }
    }

    #[test]
    fn degenerate_inputs() {
        let cfg = MachineConfig::ncube2(2);
        assert_eq!(choose_batch(0, 64, &cfg), 1);
        assert_eq!(choose_batch(1, 64, &cfg), 1);
        let ideal = MachineConfig::ideal(2);
        assert_eq!(choose_batch(100, 64, &ideal), 100, "free comm → one message");
    }

    #[test]
    fn config_and_params_forms_agree_exactly() {
        let cfg = MachineConfig::ncube2(2);
        for n in [1usize, 7, 256, 4096] {
            for item_bytes in [1u64, 8, 64] {
                assert_eq!(
                    choose_batch(n, item_bytes, &cfg),
                    choose_batch_params(n, item_bytes, cfg.alpha, cfg.beta),
                );
                let b = choose_batch(n, item_bytes, &cfg);
                assert_eq!(
                    batch_cost(n, item_bytes, b, &cfg),
                    batch_cost_params(n, item_bytes, b, cfg.alpha, cfg.beta),
                );
                assert_eq!(
                    pipelined_stage_time(10.0, 20.0, n, item_bytes, b, &cfg),
                    pipelined_stage_time_params(10.0, 20.0, n, item_bytes, b, cfg.alpha, cfg.beta),
                );
            }
        }
    }

    #[test]
    fn pipelined_time_bounded_below_by_slowest_stage() {
        let cfg = MachineConfig::ncube2(2);
        let t = pipelined_stage_time(5_000.0, 3_000.0, 256, 64, 16, &cfg);
        assert!(t >= 5_000.0);
        // And not absurdly larger when comm is cheap relative to compute.
        assert!(t < 5_000.0 + 10_000.0);
    }
}
