//! Executing a Delirium dataflow graph on the simulated machine.
//!
//! The executor realizes the paper's runtime scenario: the graph's
//! concurrency levels determine which parallel operations execute
//! simultaneously; the processor-allocation equalizer (§4.1.2) rations
//! processors among them; each operation is scheduled by a chunk policy
//! (§4.1.1); pipeline groups overlap the independent piece of iteration
//! `i` with the dependent piece of iteration `i−1` (§3.3.2) using the
//! communication-granularity model (§4.1).
//!
//! Sequentially dependent levels synchronize — exactly the "processor
//! synchronization barrier between sub-computations" the paper's
//! baseline imposes — so running a non-split graph reproduces the
//! traditional compiler, and a split graph reproduces the orchestrated
//! one.

use crate::alloc::{allocate_many, AllocParams};
use crate::chunking::PolicyKind;
use crate::finish::OpSpec;
use crate::granularity::{choose_batch, pipelined_stage_time};
use crate::par_op::{simulate_policy, OpOptions};
use crate::threaded::topology::{StealOrder, TopologyMode};
use crate::threaded::ExecutorBackend;
use orchestra_delirium::{DelirGraph, NodeId, NodeKind};
use orchestra_machine::{CostDistribution, MachineConfig};
use std::collections::HashMap;

/// Executor configuration.
#[derive(Debug, Clone)]
pub struct ExecutorOptions {
    /// Chunk policy for data-parallel nodes.
    pub policy: PolicyKind,
    /// Use the finishing-time equalizer for concurrent operations
    /// (false = naive even split).
    pub use_allocation: bool,
    /// Overlap pipeline groups (false = barrier between every piece,
    /// i.e. the unpipelined baseline).
    pub pipeline_overlap: bool,
    /// Schedule data-parallel nodes with the *distributed* TAPER
    /// epoch/token tree (§4.1.1) instead of the centralized simulator.
    pub distributed: bool,
    /// Bytes per task for owner-computes transfers.
    pub bytes_per_task: u64,
    /// Iteration counts per pipeline group name.
    pub pipeline_iters: HashMap<String, usize>,
    /// RNG seed for task-cost sampling.
    pub seed: u64,
    /// Execution engine: the nCUBE-2 simulator or real threads.
    pub backend: ExecutorBackend,
    /// Worker threads for the threaded backend (0 = the machine's
    /// available parallelism). Ignored by the simulator, which sizes
    /// itself from [`MachineConfig::processors`].
    pub threads: usize,
    /// Driver threads for the async cooperative backend (0 = fall back
    /// to `threads`, then to a small pool — available parallelism
    /// capped at 4). Ignored by every other backend.
    pub drivers: usize,
    /// Pin each worker thread to its topology-assigned CPU
    /// (`sched_setaffinity`; best-effort, off by default). The
    /// `ORCHESTRA_PIN_WORKERS` environment variable (any value but
    /// `"0"`) forces this on. Ignored by the simulator.
    pub pin_workers: bool,
    /// The machine layout the threaded backend schedules against:
    /// probe the host, or a deterministic synthetic machine for tests.
    /// Ignored by the simulator.
    pub topology: TopologyMode,
    /// Work-steal victim order for the threaded pool: hierarchical
    /// (sibling → node → remote, the default) or the legacy ring.
    /// Ignored by the simulator.
    pub steal_order: StealOrder,
    /// Deterministic fault-injection schedule for the real backends
    /// (threaded / threaded-dist / async): planned worker kills at
    /// claim boundaries, recovered in-process via claim leases — or,
    /// in crash mode, aborting the run for
    /// [`execute_graph_resumable`](crate::checkpoint::execute_graph_resumable)
    /// to recover from snapshots. `None` (the default) injects
    /// nothing; the simulator ignores this.
    pub faults: Option<crate::checkpoint::FaultPlan>,
    /// On-disk checkpointing for the real backends: where snapshots go
    /// and how often they are cut (every dist-TAPER epoch barrier plus
    /// a claim-count cadence). `None` (the default) disables
    /// checkpointing; the simulator ignores this.
    pub checkpoint: Option<crate::checkpoint::CheckpointSpec>,
    /// Forces the watermark publication batch (in producer tasks) on
    /// the real backends' streamed producer→consumer edges. `None`
    /// (the default) lets each producer choose b\* from the measured
    /// [`HostCalibration`](crate::finish::HostCalibration) α/β via
    /// [`choose_batch_params`](crate::granularity::choose_batch_params).
    /// The simulator ignores this.
    pub stream_batch: Option<usize>,
    /// Cooperative cancellation token. When set, every real backend
    /// checks it at chunk-claim boundaries and aborts the run with
    /// [`RunError::Cancelled`](crate::cancel::RunError::Cancelled)
    /// once it fires, freeing the workers within one chunk. `None`
    /// (the default) adds no per-claim overhead; the simulator
    /// ignores this.
    pub cancel: Option<crate::cancel::CancelToken>,
    /// Execution deadline, measured from the start of the run. A run
    /// that outlives it is aborted at the next claim boundary with
    /// [`RunError::DeadlineExceeded`](crate::cancel::RunError::DeadlineExceeded).
    /// `None` (the default) never expires; the simulator ignores this.
    pub deadline: Option<std::time::Duration>,
}

impl Default for ExecutorOptions {
    fn default() -> Self {
        ExecutorOptions {
            policy: PolicyKind::Taper,
            use_allocation: true,
            pipeline_overlap: true,
            distributed: false,
            bytes_per_task: 32,
            pipeline_iters: HashMap::new(),
            seed: 0x5eed,
            backend: ExecutorBackend::Simulated,
            threads: 0,
            drivers: 0,
            pin_workers: false,
            topology: TopologyMode::Auto,
            steal_order: StealOrder::Hierarchical,
            faults: None,
            checkpoint: None,
            stream_batch: None,
            cancel: None,
            deadline: None,
        }
    }
}

/// Per-node execution record.
#[derive(Debug, Clone)]
pub struct NodeReport {
    /// Node name.
    pub name: String,
    /// Start time (µs).
    pub start: f64,
    /// Finish time (µs).
    pub finish: f64,
    /// Processors assigned.
    pub procs: usize,
    /// Input edges this op consumed *streamed* — gated by the
    /// producer's progress watermark instead of whole-op completion
    /// (real backends only; the simulator reports 0).
    pub streamed_inputs: usize,
    /// Watermark publications this op's producer side performed (real
    /// backends only; 0 for unstreamed ops and on the simulator).
    pub watermark_pubs: u64,
}

/// The result of executing a graph.
#[derive(Debug, Clone)]
pub struct ExecutionReport {
    /// Simulated completion time (µs).
    pub finish: f64,
    /// Per-node records.
    pub nodes: Vec<NodeReport>,
    /// Total sequential work (µs), including pipeline iterations.
    pub serial_work: f64,
    /// Processor count used.
    pub processors: usize,
}

impl ExecutionReport {
    /// Speedup over one processor executing the serial work.
    pub fn speedup(&self) -> f64 {
        if self.finish <= 0.0 {
            return 1.0;
        }
        self.serial_work / self.finish
    }

    /// Efficiency: speedup / p.
    pub fn efficiency(&self) -> f64 {
        self.speedup() / self.processors as f64
    }
}

/// Samples a deterministic cost vector for a data-parallel node.
///
/// Small cv → uniform jitter; moderate cv → a bounded two-population
/// mixture (the shape of masked/conditional irregularity, whose maximum
/// task is a few× the mean); very high cv → log-normal heavy tail.
fn node_costs(tasks: usize, mean: f64, cv: f64, seed: u64) -> Vec<f64> {
    if cv <= 1e-9 {
        return vec![mean; tasks];
    }
    if cv <= 0.3 {
        let spread = (cv * 3.0f64.sqrt()).min(0.95);
        return CostDistribution::Uniform { mean, spread }.sample(tasks, seed);
    }
    if cv < 1.6 {
        // Two-point mixture with heavy fraction 1/4: solve the heavy
        // multiplier m from cv² = f(1−f)(m−1)²/(1+f(m−1))². Heavy tasks
        // cluster spatially (≈ tasks/32-long runs), as real masked
        // irregularity does.
        let f: f64 = 0.25;
        let s = (f * (1.0 - f)).sqrt(); // ≈ 0.433
        let m = 1.0 + cv / (s - f * cv).max(0.05);
        let base = mean / (1.0 + f * (m - 1.0));
        return CostDistribution::ClusteredBimodal {
            mean: base,
            heavy_frac: f,
            heavy_mult: m,
            cluster: (tasks / 64).max(4),
        }
        .sample(tasks, seed);
    }
    let sigma = (1.0 + cv * cv).ln().sqrt();
    CostDistribution::HeavyTail { mean, sigma }.sample(tasks, seed)
}

fn op_spec(kind: &NodeKind, policy: PolicyKind, bytes_per_task: u64) -> OpSpec {
    match kind {
        NodeKind::Task { cost } | NodeKind::Merge { cost } => OpSpec {
            tasks: 1,
            mean: *cost,
            std_dev: 0.0,
            bytes_in: bytes_per_task,
            bytes_out: bytes_per_task,
            policy,
        },
        NodeKind::DataParallel { tasks, mean_cost, cv } => OpSpec {
            tasks: *tasks,
            mean: *mean_cost,
            std_dev: mean_cost * cv,
            bytes_in: *tasks as u64 * bytes_per_task,
            bytes_out: *tasks as u64 * bytes_per_task,
            policy,
        },
        NodeKind::Mixture { .. } => {
            let tasks = kind.task_count();
            let (mean, cv) = kind.aggregate_stats();
            OpSpec {
                tasks,
                mean,
                std_dev: mean * cv,
                bytes_in: tasks as u64 * bytes_per_task,
                bytes_out: tasks as u64 * bytes_per_task,
                policy,
            }
        }
    }
}

/// The aggregate spec the allocator sees for a pipeline group: piece
/// work per iteration × the group's iteration count. The task-time
/// variance pools by the law of total variance — within-piece σᵢ²
/// *plus* the dispersion of the piece means around the pooled mean:
///
/// ```text
/// σ² = Σ nᵢ·(σᵢ² + (µᵢ − µ̄)²) / Σ nᵢ
/// ```
///
/// Dropping the second term (as a naive σ²·n sum does) underestimates
/// `lag` for heterogeneous groups: two internally regular pieces with
/// very different means still look irregular to a scheduler drawing
/// tasks from their union.
fn pipeline_group_spec(
    pieces: &[OpSpec],
    iters: usize,
    bytes_per_task: u64,
    policy: PolicyKind,
) -> OpSpec {
    let iters = iters.max(1);
    let per_iter_tasks: usize = pieces.iter().map(|s| s.tasks).sum();
    if per_iter_tasks == 0 {
        return OpSpec::empty(policy);
    }
    let work: f64 = pieces.iter().map(|s| s.total_work()).sum();
    let mean = work / per_iter_tasks as f64;
    let var = pieces
        .iter()
        .map(|s| s.tasks as f64 * (s.std_dev * s.std_dev + (s.mean - mean).powi(2)))
        .sum::<f64>()
        / per_iter_tasks as f64;
    let tasks = per_iter_tasks * iters;
    OpSpec {
        tasks,
        mean,
        std_dev: var.sqrt(),
        bytes_in: tasks as u64 * bytes_per_task,
        bytes_out: tasks as u64 * bytes_per_task,
        policy,
    }
}

/// Samples the cost vector for any node kind. Mixture populations are
/// sampled separately (with per-population sub-seeds) and interleaved
/// round-robin, matching a masked loop's distribution of heavy
/// iterations across the index space.
///
/// Public so out-of-tree harnesses (e.g. the bench crate's scheduler
/// baselines) can drive the exact workloads the backends see.
pub fn costs_of_node(node: &orchestra_delirium::Node, seed: u64) -> Vec<f64> {
    match &node.kind {
        NodeKind::Task { cost } | NodeKind::Merge { cost } => vec![*cost],
        NodeKind::DataParallel { tasks, mean_cost, cv } => {
            node_costs(*tasks, *mean_cost, *cv, seed ^ node.id as u64)
        }
        NodeKind::Mixture { populations } => {
            let pools: Vec<Vec<f64>> = populations
                .iter()
                .enumerate()
                .map(|(i, p)| {
                    node_costs(p.tasks, p.mean_cost, p.cv, seed ^ node.id as u64 ^ (i as u64) << 17)
                })
                .collect();
            let total: usize = pools.iter().map(Vec::len).sum();
            let mut iters: Vec<std::vec::IntoIter<f64>> =
                pools.into_iter().map(Vec::into_iter).collect();
            let mut out = Vec::with_capacity(total);
            let k = iters.len();
            let mut i = 0;
            while out.len() < total {
                if let Some(c) = iters[i % k].next() {
                    out.push(c);
                }
                i += 1;
            }
            out
        }
    }
}

/// Simulates one node on `p` processors starting at `start`; returns
/// its finish time.
fn run_node(
    node: &orchestra_delirium::Node,
    p: usize,
    start: f64,
    proc_offset: usize,
    cfg: &MachineConfig,
    opts: &ExecutorOptions,
) -> f64 {
    match &node.kind {
        NodeKind::Task { cost } | NodeKind::Merge { cost } => start + cost,
        _ => {
            let costs = costs_of_node(node, opts.seed);
            if opts.distributed {
                return crate::dist_taper::simulate_dist_taper_at(
                    cfg,
                    p.max(1),
                    &costs,
                    opts.bytes_per_task,
                    start,
                )
                .finish;
            }
            let op_opts =
                OpOptions { bytes_per_task: opts.bytes_per_task, start_time: start, proc_offset };
            simulate_policy(cfg, p.max(1), &costs, opts.policy, &op_opts).finish
        }
    }
}

/// Executes a graph on the machine.
///
/// # Errors
///
/// Returns the graph's validation error when it is malformed, or a
/// cancellation/deadline error when the caller aborted the run (real
/// backends only — the simulator never cancels).
pub fn execute_graph(
    g: &DelirGraph,
    cfg: &MachineConfig,
    opts: &ExecutorOptions,
) -> Result<ExecutionReport, crate::cancel::RunError> {
    if matches!(opts.backend, ExecutorBackend::Threaded | ExecutorBackend::ThreadedDist) {
        // Real execution on this machine: `cfg` describes the simulated
        // nCUBE-2 and does not apply.
        let kernel = crate::threaded::SpinKernel::default();
        let run = crate::threaded::execute_threaded(g, opts, &kernel)?;
        return Ok(run.to_report());
    }
    if opts.backend == ExecutorBackend::Async {
        let kernel = crate::threaded::SpinKernel::default();
        let run = crate::asynch::execute_async(g, opts, &kernel)?;
        return Ok(run.to_report());
    }
    g.validate()?;
    let levels = g.levels()?;
    let p_total = cfg.processors;
    let mut node_finish: Vec<f64> = vec![0.0; g.nodes.len()];
    let mut reports: Vec<NodeReport> = Vec::new();
    let mut serial_work = 0.0;
    let mut clock = 0.0f64;

    // Pipeline groups span levels (A_I/A_D at one level, A_M below):
    // gather members globally and schedule each group as one unit at the
    // level of its earliest member.
    let mut group_members: HashMap<String, Vec<NodeId>> = HashMap::new();
    for n in &g.nodes {
        if let Some(gr) = &n.group {
            group_members.entry(gr.clone()).or_default().push(n.id);
        }
    }
    let mut node_level = vec![0usize; g.nodes.len()];
    for (li, lv) in levels.iter().enumerate() {
        for &v in lv {
            node_level[v] = li;
        }
    }
    let group_home: HashMap<String, usize> = group_members
        .iter()
        .map(|(k, vs)| {
            let home = vs.iter().map(|&v| node_level[v]).min().expect("nonempty group");
            (k.clone(), home)
        })
        .collect();

    for (li, level) in levels.iter().enumerate() {
        // This level's singles, plus every pipeline group homed here.
        let mut singles: Vec<NodeId> = Vec::new();
        let mut groups: HashMap<String, Vec<NodeId>> = HashMap::new();
        for &v in level {
            match &g.nodes[v].group {
                Some(gr) => {
                    if group_home[gr] == li && !groups.contains_key(gr) {
                        groups.insert(gr.clone(), group_members[gr].clone());
                    }
                    // Members homed at earlier levels were already run.
                }
                None => singles.push(v),
            }
        }

        // Each single node and each pipeline group is one allocation
        // unit.
        #[derive(Debug)]
        enum Unit {
            Single(NodeId),
            Pipeline(String, Vec<NodeId>),
        }
        let mut units: Vec<Unit> = singles.into_iter().map(Unit::Single).collect();
        for (name, nodes) in groups {
            units.push(Unit::Pipeline(name, nodes));
        }
        // Deterministic order.
        units.sort_by_key(|u| match u {
            Unit::Single(v) => (0, *v),
            Unit::Pipeline(_, vs) => (1, vs[0]),
        });
        if units.is_empty() {
            continue; // level held only already-run pipeline members
        }

        // Ready time of each unit: preds' finishes plus edge transfer.
        // `procs` is the *consuming unit's* allocation — the transfer
        // is expanded onto the partition that will run the unit, not
        // onto the whole machine, so a 4-proc unit receives its input
        // at 4-way parallelism rather than `cfg.processors`-way.
        fn unit_ready(
            vs: &[NodeId],
            clock: f64,
            g: &DelirGraph,
            cfg: &MachineConfig,
            node_finish: &[f64],
            procs: usize,
        ) -> f64 {
            let mut t = clock;
            for &v in vs {
                for e in g.edges.iter().filter(|e| e.to == v && !e.carried) {
                    if vs.contains(&e.from) {
                        continue;
                    }
                    // Distributed transfer: each receiving processor
                    // moves its 1/p share; the message rounds pipeline
                    // with the data, so one latency plus the routed
                    // volume.
                    let p = procs.max(1) as f64;
                    let comm = cfg.alpha
                        + cfg.beta * e.data.bytes() as f64 / p
                        + cfg.hop * cfg.diameter() as f64;
                    t = t.max(node_finish[e.from] + comm);
                }
            }
            t
        }

        // Allocate processors across units.
        let specs: Vec<OpSpec> = units
            .iter()
            .map(|u| match u {
                Unit::Single(v) => op_spec(&g.nodes[*v].kind, opts.policy, opts.bytes_per_task),
                Unit::Pipeline(name, vs) => {
                    let iters = opts.pipeline_iters.get(name).copied().unwrap_or(1).max(1);
                    let pieces: Vec<OpSpec> = vs
                        .iter()
                        .map(|&v| op_spec(&g.nodes[v].kind, opts.policy, opts.bytes_per_task))
                        .collect();
                    pipeline_group_spec(&pieces, iters, opts.bytes_per_task, opts.policy)
                }
            })
            .collect();
        // Candidate allocations: the paper's finishing-time equalizer
        // and a work-proportional split. The runtime "uses runtime
        // information to improve the scheduling efficiency": we simulate
        // the level under each candidate and keep the better one.
        let even_split = |k: usize| -> Vec<usize> {
            let base = p_total / k;
            let mut v = vec![base.max(1); k];
            let used: usize = v.iter().sum();
            if used < p_total {
                v[0] += p_total - used;
            }
            v
        };
        let proportional = |specs: &[OpSpec]| -> Vec<usize> {
            let total: f64 = specs.iter().map(|s| s.total_work()).sum();
            if total <= 0.0 {
                return even_split(specs.len());
            }
            let mut v: Vec<usize> = specs
                .iter()
                .map(|s| ((s.total_work() / total) * p_total as f64).floor() as usize)
                .map(|x| x.max(1))
                .collect();
            let mut used: usize = v.iter().sum();
            // Distribute remainder to the largest op; trim overshoot.
            while used < p_total {
                let i = (0..v.len())
                    .max_by(|&a, &b| specs[a].total_work().total_cmp(&specs[b].total_work()))
                    .expect("nonempty");
                v[i] += 1;
                used += 1;
            }
            while used > p_total {
                let i = (0..v.len()).max_by_key(|&i| v[i]).expect("nonempty");
                if v[i] > 1 {
                    v[i] -= 1;
                    used -= 1;
                } else {
                    break;
                }
            }
            v
        };
        let candidates: Vec<Vec<usize>> = if units.len() == 1 {
            vec![vec![p_total]]
        } else if opts.use_allocation {
            vec![allocate_many(&specs, p_total, cfg, &AllocParams::default()), proportional(&specs)]
        } else {
            vec![even_split(units.len())]
        };

        // Simulate the level under one allocation without committing.
        let simulate_level = |alloc: &[usize],
                              node_finish: &[f64]|
         -> (f64, Vec<NodeReport>, Vec<(NodeId, f64)>) {
            let mut level_end = clock;
            let mut local_reports = Vec::new();
            let mut finishes = Vec::new();
            let mut offset = 0usize;
            for (u, &p_u) in units.iter().zip(alloc) {
                match u {
                    Unit::Single(v) => {
                        let start =
                            unit_ready(std::slice::from_ref(v), clock, g, cfg, node_finish, p_u);
                        let end = run_node(&g.nodes[*v], p_u, start, offset, cfg, opts);
                        finishes.push((*v, end));
                        local_reports.push(NodeReport {
                            name: g.nodes[*v].name.clone(),
                            start,
                            finish: end,
                            procs: p_u,
                            streamed_inputs: 0,
                            watermark_pubs: 0,
                        });
                        level_end = level_end.max(end);
                    }
                    Unit::Pipeline(name, vs) => {
                        let start = unit_ready(vs, clock, g, cfg, node_finish, p_u);
                        let iters = opts.pipeline_iters.get(name).copied().unwrap_or(1);
                        let end = run_pipeline(g, vs, iters, p_u, start, offset, cfg, opts);
                        for &v in vs {
                            finishes.push((v, end));
                        }
                        local_reports.push(NodeReport {
                            name: format!("pipeline:{name}"),
                            start,
                            finish: end,
                            procs: p_u,
                            streamed_inputs: 0,
                            watermark_pubs: 0,
                        });
                        level_end = level_end.max(end);
                    }
                }
                offset += p_u;
            }
            (level_end, local_reports, finishes)
        };

        let best = candidates
            .iter()
            .map(|alloc| simulate_level(alloc, &node_finish))
            .min_by(|a, b| a.0.total_cmp(&b.0))
            .expect("at least one candidate");
        let (level_end, local_reports, finishes) = best;
        for (v, end) in finishes {
            node_finish[v] = end;
        }
        for u in &units {
            match u {
                Unit::Single(v) => serial_work += g.nodes[*v].kind.total_work(),
                Unit::Pipeline(name, vs) => {
                    let iters = opts.pipeline_iters.get(name).copied().unwrap_or(1);
                    for &v in vs {
                        serial_work += g.nodes[v].kind.total_work() * iters as f64;
                    }
                }
            }
        }
        reports.extend(local_reports);
        clock = level_end;
    }

    Ok(ExecutionReport { finish: clock, nodes: reports, serial_work, processors: p_total })
}

/// Simulates a pipelined loop: nodes with carried edges (plus merges)
/// form the dependent stage; the rest is the independent stage. With
/// overlap enabled, the two stages run concurrently on partitions
/// chosen by the allocation equalizer; otherwise every piece
/// synchronizes, reproducing the unpipelined baseline.
#[allow(clippy::too_many_arguments)]
fn run_pipeline(
    g: &DelirGraph,
    vs: &[NodeId],
    iters: usize,
    p: usize,
    start: f64,
    offset: usize,
    cfg: &MachineConfig,
    opts: &ExecutorOptions,
) -> f64 {
    let iters = iters.max(1);
    // Dependent pieces: targets or sources of carried edges, and merges.
    let carried: Vec<&orchestra_delirium::Edge> =
        g.edges.iter().filter(|e| e.carried && vs.contains(&e.from)).collect();
    let seed_dependent = |v: NodeId| -> bool {
        carried.iter().any(|e| e.from == v || e.to == v)
            || matches!(g.nodes[v].kind, NodeKind::Merge { .. })
    };
    // Close the dependent set under in-group dataflow successors: a
    // piece reading a merge's output belongs to the dependent chain.
    let mut dep_set: Vec<NodeId> = vs.iter().copied().filter(|&v| seed_dependent(v)).collect();
    loop {
        let mut grew = false;
        for e in g.edges.iter().filter(|e| !e.carried) {
            if dep_set.contains(&e.from) && vs.contains(&e.to) && !dep_set.contains(&e.to) {
                dep_set.push(e.to);
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }
    let dep: Vec<NodeId> = vs.iter().copied().filter(|&v| dep_set.contains(&v)).collect();
    let ind: Vec<NodeId> = vs.iter().copied().filter(|&v| !dep_set.contains(&v)).collect();

    let stage_time = |nodes: &[NodeId], p_stage: usize, t0: f64| -> f64 {
        let mut t = t0;
        for &v in nodes {
            t = run_node(&g.nodes[v], p_stage.max(1), t, offset, cfg, opts);
        }
        t - t0
    };

    // The carried data crosses iterations either way. Under
    // owner-computes placement it stays distributed: each processor
    // exchanges only its 1/p share, so the per-iteration volume divides
    // by the partition size.
    let carried_bytes: u64 =
        (carried.iter().map(|e| e.data.bytes()).sum::<u64>() / p.max(1) as u64).max(8);

    if !opts.pipeline_overlap || dep.is_empty() || ind.is_empty() || p < 2 {
        // Barrier per iteration over all pieces in order.
        let per_iter = stage_time(vs, p, start) + cfg.alpha + carried_bytes as f64 * cfg.beta;
        return start + per_iter * iters as f64;
    }

    // Steady state: iteration i's independent pieces overlap iteration
    // i−1's dependent chain, and the whole pool of processors serves
    // both — "the runtime scheduler can use the additional parallelism
    // of one sub-computation to compensate for … load imbalance in the
    // other" (§1). Adjacent iterations' independent work absorbs each
    // iteration's straggler tail, so the pipeline's completion time is
    // the *joint* schedule of every iteration's tasks on all p
    // processors, bounded below by the dependent chain's serial latency
    // (one chain traversal per iteration) and by the carried-data
    // stream, plus the first iteration's fill.
    let mut iter_costs: Vec<f64> = Vec::new();
    for &v in ind.iter().chain(&dep) {
        iter_costs.extend(costs_of_node(&g.nodes[v], opts.seed));
    }
    // All iterations' tasks in one pool (each iteration re-draws the
    // same populations; replicating the vector models that).
    let mut joint_costs = Vec::with_capacity(iter_costs.len() * iters);
    for k in 0..iters {
        // Rotate so heavy tasks land at different pool positions.
        let rot = (k * 131) % iter_costs.len().max(1);
        joint_costs.extend_from_slice(&iter_costs[rot..]);
        joint_costs.extend_from_slice(&iter_costs[..rot]);
    }
    let mut policy = opts.policy.instantiate(joint_costs.len());
    let op_opts =
        OpOptions { bytes_per_task: opts.bytes_per_task, start_time: start, proc_offset: offset };
    let joint_all =
        crate::par_op::simulate_dynamic(cfg, p, &joint_costs, policy.as_mut(), &op_opts).finish
            - start;
    let dep_chain = stage_time(&dep, p, start);

    let items = carried.len().max(1) * 16;
    let item_bytes = (carried_bytes / items as u64).max(1);
    let b = choose_batch(items, item_bytes, cfg);
    let per_iter_floor = pipelined_stage_time(0.0, dep_chain, items, item_bytes, b, cfg);
    let fill = stage_time(&ind, p, start);
    start + fill + joint_all.max(per_iter_floor * iters as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_delirium::DataAnno;

    fn irregular_then_regular(split: bool) -> (DelirGraph, ExecutorOptions) {
        // The paper's running scenario: irregular A, then regular B.
        // Split version exposes B_I concurrent with A.
        let mut g = DelirGraph::new();
        let a =
            g.add_node("A", NodeKind::DataParallel { tasks: 512, mean_cost: 80.0, cv: 1.6 }, None);
        if split {
            let bi = g.add_node(
                "B_I",
                NodeKind::DataParallel { tasks: 12288, mean_cost: 20.0, cv: 0.1 },
                None,
            );
            let bd = g.add_node(
                "B_D",
                NodeKind::DataParallel { tasks: 4096, mean_cost: 20.0, cv: 0.1 },
                None,
            );
            let bm = g.add_node("B_M", NodeKind::Merge { cost: 50.0 }, None);
            g.add_edge(a, bd, DataAnno::array("q", 512));
            g.add_edge(bi, bm, DataAnno::array("out1", 12288));
            g.add_edge(bd, bm, DataAnno::array("out2", 4096));
        } else {
            let b = g.add_node(
                "B",
                NodeKind::DataParallel { tasks: 16384, mean_cost: 20.0, cv: 0.1 },
                None,
            );
            g.add_edge(a, b, DataAnno::array("q", 16384));
        }
        (g, ExecutorOptions::default())
    }

    #[test]
    fn report_accounts_all_nodes() {
        let (g, opts) = irregular_then_regular(false);
        let cfg = MachineConfig::ncube2(64);
        let r = execute_graph(&g, &cfg, &opts).unwrap();
        assert_eq!(r.nodes.len(), 2);
        assert!(r.finish > 0.0);
        assert!((r.serial_work - g.total_work()).abs() < 1e-9);
    }

    #[test]
    fn split_graph_beats_barrier_graph_at_scale() {
        let cfg = MachineConfig::ncube2(512);
        let (g0, opts) = irregular_then_regular(false);
        let (g1, _) = irregular_then_regular(true);
        let r0 = execute_graph(&g0, &cfg, &opts).unwrap();
        let r1 = execute_graph(&g1, &cfg, &opts).unwrap();
        assert!(r1.finish < r0.finish, "split {} should beat barrier {}", r1.finish, r0.finish);
    }

    #[test]
    fn efficiency_degrades_with_more_processors() {
        let (g, opts) = irregular_then_regular(false);
        let e64 = execute_graph(&g, &MachineConfig::ncube2(64), &opts).unwrap().efficiency();
        let e1024 = execute_graph(&g, &MachineConfig::ncube2(1024), &opts).unwrap().efficiency();
        assert!(e64 > e1024, "e64={e64} e1024={e1024}");
    }

    #[test]
    fn allocation_beats_even_split_for_unequal_ops() {
        let mut g = DelirGraph::new();
        g.add_node("big", NodeKind::DataParallel { tasks: 4096, mean_cost: 50.0, cv: 0.3 }, None);
        g.add_node("small", NodeKind::DataParallel { tasks: 128, mean_cost: 10.0, cv: 0.3 }, None);
        let cfg = MachineConfig::ncube2(256);
        let with = execute_graph(
            &g,
            &cfg,
            &ExecutorOptions { use_allocation: true, ..ExecutorOptions::default() },
        )
        .unwrap();
        let without = execute_graph(
            &g,
            &cfg,
            &ExecutorOptions { use_allocation: false, ..ExecutorOptions::default() },
        )
        .unwrap();
        assert!(
            with.finish <= without.finish,
            "equalizer {} should not lose to even split {}",
            with.finish,
            without.finish
        );
    }

    #[test]
    fn pipeline_overlap_beats_barrier() {
        let mut g = DelirGraph::new();
        let ai = g.add_node(
            "A_I",
            NodeKind::DataParallel { tasks: 256, mean_cost: 30.0, cv: 0.2 },
            Some("A".into()),
        );
        let ad = g.add_node(
            "A_D",
            NodeKind::DataParallel { tasks: 32, mean_cost: 30.0, cv: 0.2 },
            Some("A".into()),
        );
        let am = g.add_node("A_M", NodeKind::Merge { cost: 20.0 }, Some("A".into()));
        g.add_edge(ai, am, DataAnno::array("r1", 256));
        g.add_edge(ad, am, DataAnno::array("r2", 32));
        g.add_carried_edge(am, ad, DataAnno::array("q", 256));
        let cfg = MachineConfig::ncube2(128);
        let mut opts = ExecutorOptions::default();
        opts.pipeline_iters.insert("A".into(), 64);
        let over = execute_graph(&g, &cfg, &opts).unwrap();
        let barrier =
            execute_graph(&g, &cfg, &ExecutorOptions { pipeline_overlap: false, ..opts.clone() })
                .unwrap();
        assert!(
            over.finish < barrier.finish,
            "overlap {} should beat barrier {}",
            over.finish,
            barrier.finish
        );
    }

    #[test]
    fn speedup_and_efficiency_consistent() {
        let (g, opts) = irregular_then_regular(true);
        let cfg = MachineConfig::ncube2(128);
        let r = execute_graph(&g, &cfg, &opts).unwrap();
        assert!((r.speedup() / 128.0 - r.efficiency()).abs() < 1e-12);
        assert!(r.efficiency() <= 1.0 + 1e-9);
    }

    #[test]
    fn distributed_scheduling_runs_and_stays_close() {
        let (g, opts) = irregular_then_regular(true);
        let cfg = MachineConfig::ncube2(128);
        let central = execute_graph(&g, &cfg, &opts).unwrap();
        let dist_opts = ExecutorOptions { distributed: true, ..opts };
        let dist = execute_graph(&g, &cfg, &dist_opts).unwrap();
        assert!(dist.finish > 0.0);
        // The decentralized scheme pays token latency but must stay in
        // the same regime (within 2× either way).
        let ratio = dist.finish / central.finish;
        assert!((0.5..2.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn invalid_graph_rejected() {
        let mut g = DelirGraph::new();
        let a = g.add_node("A", NodeKind::Task { cost: 1.0 }, None);
        g.add_edge(a, a, DataAnno::scalar("self"));
        assert!(execute_graph(&g, &MachineConfig::ncube2(4), &ExecutorOptions::default()).is_err());
    }

    #[test]
    fn pipeline_variance_pools_between_piece_mean_dispersion() {
        // Two pieces with the *same* within-piece σ but very different
        // means: a scheduler drawing from their union sees task times
        // spread across the two populations, so the pooled σ must be
        // dominated by the mean gap, not the tiny within-piece jitter.
        let sigma = 2.0;
        let pieces = [
            OpSpec {
                tasks: 100,
                mean: 1.0,
                std_dev: sigma,
                bytes_in: 0,
                bytes_out: 0,
                policy: PolicyKind::Taper,
            },
            OpSpec {
                tasks: 100,
                mean: 101.0,
                std_dev: sigma,
                bytes_in: 0,
                bytes_out: 0,
                policy: PolicyKind::Taper,
            },
        ];
        let agg = pipeline_group_spec(&pieces, 3, 32, PolicyKind::Taper);
        assert_eq!(agg.tasks, 600);
        assert!((agg.mean - 51.0).abs() < 1e-12);
        // Law of total variance: σ² = avg σᵢ² + avg (µᵢ−µ̄)²
        //                          = 4 + 50² = 2504.
        let expect = (sigma * sigma + 50.0 * 50.0).sqrt();
        assert!(
            (agg.std_dev - expect).abs() < 1e-9,
            "pooled σ {} should equal {expect}",
            agg.std_dev
        );
        // The old σ²·n-only pooling would have reported σ = 2 here;
        // heterogeneous groups must look irregular.
        assert!(agg.std_dev > 10.0 * sigma);
        // Homogeneous groups are unchanged by the new term.
        let same = [pieces[0], pieces[0]];
        let h = pipeline_group_spec(&same, 1, 32, PolicyKind::Taper);
        assert!((h.std_dev - sigma).abs() < 1e-12);
        // Empty groups collapse to the explicit empty spec.
        assert_eq!(
            pipeline_group_spec(&[], 4, 32, PolicyKind::Taper),
            OpSpec::empty(PolicyKind::Taper)
        );
    }

    #[test]
    fn simulator_policy_state_is_per_op() {
        // DESIGN §12's sampling contract, simulator side: every node's
        // scheduling loop instantiates a fresh policy, so swapping the
        // upstream node's variance must shift only B's *start* (via
        // A's finish), never B's duration — if TAPER's µ/σ leaked
        // across ops, B would inherit A's high cv and carve different
        // chunks. (The only joint pool is an overlapped pipeline
        // group, which is modelled as a single fused operation.)
        let graph_with_upstream_cv = |cv: f64| {
            let mut g = DelirGraph::new();
            let a =
                g.add_node("A", NodeKind::DataParallel { tasks: 256, mean_cost: 4.0, cv }, None);
            let b = g.add_node(
                "B",
                NodeKind::DataParallel { tasks: 1024, mean_cost: 2.0, cv: 0.3 },
                None,
            );
            g.add_edge(a, b, DataAnno::array("x", 1024));
            g
        };
        let cfg = MachineConfig::ncube2(64);
        let opts = ExecutorOptions::default(); // policy = Taper
        let b_times = |g: &DelirGraph| {
            let r = execute_graph(g, &cfg, &opts).unwrap();
            let b = r.nodes.iter().find(|n| n.name == "B").unwrap();
            (b.start, b.finish - b.start)
        };
        let (skewed_start, skewed_dur) = b_times(&graph_with_upstream_cv(1.2));
        let (uniform_start, uniform_dur) = b_times(&graph_with_upstream_cv(0.0));
        assert!(
            (skewed_dur - uniform_dur).abs() <= 1e-9 * skewed_dur.max(1.0),
            "B's duration depends on A's variance: {skewed_dur} vs {uniform_dur}"
        );
        // Sanity: A's variance did change the timeline (B starts later
        // after the skewed A), so the invariance above is not vacuous.
        assert!(
            (skewed_start - uniform_start).abs() > 1e-6,
            "upstream cv never reached the schedule"
        );
    }
}
