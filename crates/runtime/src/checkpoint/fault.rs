//! Deterministic fault injection: planned worker kills and the
//! runtime state that arbitrates them.
//!
//! A kill fires only at a *claim boundary* — right after a queue hands
//! a worker a chunk, before any of its tasks execute — so a dying
//! worker never leaves a half-executed chunk behind. In lease mode the
//! freshly claimed tasks become an orphaned [`Lease`] that exactly one
//! survivor re-executes; in crash mode ([`FaultPlan::crash_run`]) the
//! first kill aborts the whole run, simulating a process death that
//! [`execute_graph_resumable`](super::execute_graph_resumable)
//! recovers from via snapshots.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

/// When a planned kill fires. All triggers are evaluated at claim
/// boundaries (or, for [`OnSteal`](FaultTrigger::OnSteal), right after
/// a successful steal), making kill points deterministic functions of
/// the victim's own scheduling history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTrigger {
    /// Kill when the victim claims a distributed-TAPER chunk tagged
    /// with global epoch ≥ `e`. On backends without epochs (shared
    /// queues, async) this degrades to "after `e + 1` claims".
    AtEpoch(u64),
    /// Kill at the victim's `n`-th chunk claim (1-based; `0` behaves
    /// like `1`), counted across all ops.
    AfterClaims(u64),
    /// Kill at the victim's next successful token steal. Threaded
    /// backends only — the async backend never steals, so this
    /// trigger can never fire there.
    OnSteal,
}

/// One planned kill: a victim and its trigger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KillSpec {
    /// The victim: a worker id in the threaded backends, a claimer
    /// spawn index in the async backend. Out-of-range victims never
    /// fire (randomized schedules need not know the exact worker
    /// count).
    pub worker: usize,
    /// When the kill fires.
    pub trigger: FaultTrigger,
}

/// A deterministic fault-injection schedule, threaded through
/// [`ExecutorOptions::faults`](crate::executor::ExecutorOptions::faults).
///
/// Each [`KillSpec`] fires at most once. In lease mode (the default) a
/// kill takes down a single worker and the pool recovers in-process;
/// the last live worker refuses to die (the kill is suppressed) so a
/// plan can never wedge a run. With [`crash_run`](Self::crash_run) the
/// first kill aborts the entire execution instead.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The planned kills.
    pub kills: Vec<KillSpec>,
    /// When set, every kill in `kills` fires in crash mode: the first
    /// one that fires marks the whole run crashed, every worker exits
    /// at its next claim boundary, and the partial result is returned
    /// with `crashed = true`.
    pub crash_run: bool,
    /// Kills that fire in crash mode regardless of `crash_run` — a
    /// combined plan stages in-process lease recoveries (`kills` with
    /// `crash_run = false`) *and* a later process death in the same
    /// run, the way real incidents compound.
    pub crash_kills: Vec<KillSpec>,
}

impl FaultPlan {
    /// A single-kill lease-mode plan.
    pub fn kill(worker: usize, trigger: FaultTrigger) -> Self {
        FaultPlan {
            kills: vec![KillSpec { worker, trigger }],
            crash_run: false,
            crash_kills: Vec::new(),
        }
    }

    /// A single-kill crash-mode plan.
    pub fn crash(worker: usize, trigger: FaultTrigger) -> Self {
        FaultPlan {
            kills: vec![KillSpec { worker, trigger }],
            crash_run: true,
            crash_kills: Vec::new(),
        }
    }

    /// A combined plan: `lease` kills recover in-process, and the
    /// `crash` kill aborts the run when it fires (typically later —
    /// triggers are per-victim, so stagger the claim counts).
    pub fn combined(lease: Vec<KillSpec>, crash: KillSpec) -> Self {
        FaultPlan { kills: lease, crash_run: false, crash_kills: vec![crash] }
    }
}

/// How a fired kill takes its victim down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum KillMode {
    /// The victim dies alone; its claimed chunk becomes a lease a
    /// survivor replays.
    Lease,
    /// The whole run crashes; every worker exits at its next boundary.
    Crash,
}

/// An orphaned claim: tasks a dead worker had claimed but not started
/// executing. Survivors drain the lease list exactly once (take-all
/// under the lock) and replay each task — kernels are pure, so the
/// replayed values are bitwise those the victim would have produced.
pub(crate) struct Lease {
    /// Plan index of the op the tasks belong to.
    pub(crate) op_idx: usize,
    /// Real (op-local) task indices.
    pub(crate) tasks: Vec<usize>,
}

/// Runtime arbitration for one run's [`FaultPlan`]: which kills have
/// fired, which workers are dead, and whether the run crashed.
pub(crate) struct FaultState {
    /// Every planned kill with its resolved mode (`kills` under the
    /// plan-level `crash_run` flag, then `crash_kills`).
    specs: Vec<(KillSpec, KillMode)>,
    /// One-shot latch per planned kill.
    fired: Vec<AtomicBool>,
    /// Per-worker death flag (set in lease *and* crash mode).
    dead: Vec<AtomicBool>,
    /// Per-worker claim counter driving the claim-count triggers.
    claims: Vec<AtomicU64>,
    /// Workers not yet dead in lease mode; [`try_die`](Self::try_die)
    /// refuses to drop this below 1.
    live: AtomicUsize,
    crashed: AtomicBool,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan, workers: usize) -> Self {
        let base = if plan.crash_run { KillMode::Crash } else { KillMode::Lease };
        let specs: Vec<(KillSpec, KillMode)> = plan
            .kills
            .iter()
            .map(|&k| (k, base))
            .chain(plan.crash_kills.iter().map(|&k| (k, KillMode::Crash)))
            .collect();
        let kills = specs.len();
        FaultState {
            specs,
            fired: (0..kills).map(|_| AtomicBool::new(false)).collect(),
            dead: (0..workers).map(|_| AtomicBool::new(false)).collect(),
            claims: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            live: AtomicUsize::new(workers),
            crashed: AtomicBool::new(false),
        }
    }

    pub(crate) fn crashed(&self) -> bool {
        self.crashed.load(Ordering::SeqCst)
    }

    /// Whether any worker died in lease mode (crash-mode deaths abort
    /// the run instead of triggering in-process recovery).
    pub(crate) fn any_dead(&self) -> bool {
        self.live.load(Ordering::SeqCst) < self.dead.len()
    }

    pub(crate) fn dead_workers(&self) -> Vec<usize> {
        (0..self.dead.len()).filter(|&w| self.dead[w].load(Ordering::SeqCst)).collect()
    }

    fn check(&self, worker: usize, hit: impl Fn(FaultTrigger) -> bool) -> Option<KillMode> {
        for (k, (spec, mode)) in self.specs.iter().enumerate() {
            if spec.worker != worker || !hit(spec.trigger) {
                continue;
            }
            if self.fired[k]
                .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                return Some(*mode);
            }
        }
        None
    }

    /// Notes one chunk claim by `worker` (`epoch` tags dist-TAPER
    /// claims with their global epoch) and reports the mode of the
    /// planned kill that fires here, if any. Firing consumes the spec;
    /// the caller must still win [`try_die`](Self::try_die) for the
    /// death to happen.
    pub(crate) fn on_claim(&self, worker: usize, epoch: Option<u64>) -> Option<KillMode> {
        if worker >= self.claims.len() {
            return None;
        }
        let c = self.claims[worker].fetch_add(1, Ordering::Relaxed) + 1;
        self.check(worker, |t| match t {
            FaultTrigger::AfterClaims(n) => c >= n.max(1),
            FaultTrigger::AtEpoch(e) => match epoch {
                Some(ep) => ep >= e,
                None => c > e,
            },
            FaultTrigger::OnSteal => false,
        })
    }

    /// Reports the mode of the `OnSteal` kill firing for `worker`'s
    /// just-completed steal, if any.
    pub(crate) fn on_steal(&self, worker: usize) -> Option<KillMode> {
        if worker >= self.dead.len() {
            return None;
        }
        self.check(worker, |t| matches!(t, FaultTrigger::OnSteal))
    }

    /// Commits a fired kill. In crash mode this always succeeds and
    /// marks the whole run crashed. In lease mode it atomically takes
    /// one live slot — refusing (and suppressing the kill) when
    /// `worker` is the last live worker, so a fault plan can never
    /// wedge the pool.
    pub(crate) fn try_die(&self, worker: usize, mode: KillMode) -> bool {
        if mode == KillMode::Crash {
            self.dead[worker].store(true, Ordering::SeqCst);
            self.crashed.store(true, Ordering::SeqCst);
            return true;
        }
        loop {
            let live = self.live.load(Ordering::SeqCst);
            if live <= 1 {
                return false;
            }
            if self
                .live
                .compare_exchange(live, live - 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                self.dead[worker].store(true, Ordering::SeqCst);
                return true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn after_claims_fires_once_at_the_right_count() {
        let f = FaultState::new(FaultPlan::kill(1, FaultTrigger::AfterClaims(3)), 4);
        assert!(f.on_claim(1, None).is_none());
        assert!(f.on_claim(1, None).is_none());
        assert!(f.on_claim(0, None).is_none(), "wrong worker");
        assert_eq!(f.on_claim(1, None), Some(KillMode::Lease), "third claim fires");
        assert!(f.on_claim(1, None).is_none(), "spec consumed");
    }

    #[test]
    fn at_epoch_matches_dist_epochs_and_degrades_to_claims() {
        let f = FaultState::new(FaultPlan::kill(0, FaultTrigger::AtEpoch(2)), 2);
        assert!(f.on_claim(0, Some(0)).is_none());
        assert!(f.on_claim(0, Some(1)).is_none());
        assert!(f.on_claim(0, Some(2)).is_some());
        let g = FaultState::new(FaultPlan::kill(0, FaultTrigger::AtEpoch(2)), 2);
        assert!(g.on_claim(0, None).is_none());
        assert!(g.on_claim(0, None).is_none());
        assert!(g.on_claim(0, None).is_some(), "claim 3 > epoch 2");
    }

    #[test]
    fn last_live_worker_refuses_to_die() {
        let f = FaultState::new(
            FaultPlan {
                kills: vec![
                    KillSpec { worker: 0, trigger: FaultTrigger::AfterClaims(1) },
                    KillSpec { worker: 1, trigger: FaultTrigger::AfterClaims(1) },
                ],
                crash_run: false,
                crash_kills: Vec::new(),
            },
            2,
        );
        assert!(f.try_die(0, KillMode::Lease));
        assert!(f.any_dead());
        assert!(!f.try_die(1, KillMode::Lease), "last live worker must survive");
        assert_eq!(f.dead_workers(), vec![0]);
        assert!(!f.crashed());
    }

    #[test]
    fn crash_mode_always_dies_and_marks_crashed() {
        let f = FaultState::new(FaultPlan::crash(0, FaultTrigger::AfterClaims(1)), 1);
        assert!(f.try_die(0, KillMode::Crash));
        assert!(f.crashed());
        assert!(!f.any_dead(), "crash deaths don't trigger lease recovery");
    }

    #[test]
    fn out_of_range_victims_never_fire() {
        let f = FaultState::new(FaultPlan::kill(7, FaultTrigger::AfterClaims(1)), 2);
        for _ in 0..10 {
            assert!(f.on_claim(0, None).is_none());
            assert!(f.on_claim(1, None).is_none());
        }
        assert!(f.on_steal(7).is_none());
    }

    #[test]
    fn combined_plans_keep_lease_and_crash_modes_apart() {
        let plan = FaultPlan::combined(
            vec![KillSpec { worker: 0, trigger: FaultTrigger::AfterClaims(1) }],
            KillSpec { worker: 1, trigger: FaultTrigger::AfterClaims(2) },
        );
        let f = FaultState::new(plan, 3);
        assert_eq!(f.on_claim(0, None), Some(KillMode::Lease));
        assert!(f.try_die(0, KillMode::Lease));
        assert!(f.any_dead(), "the lease death recovers in-process");
        assert!(!f.crashed());
        assert!(f.on_claim(1, None).is_none(), "crash trigger not yet reached");
        assert_eq!(f.on_claim(1, None), Some(KillMode::Crash));
        assert!(f.try_die(1, KillMode::Crash));
        assert!(f.crashed(), "the crash kill aborts the run");
    }
}
