//! The on-disk snapshot format: versioned, crc-checked, fsync'd.
//!
//! One snapshot file is a little-endian binary image of the whole
//! run's claim frontier:
//!
//! ```text
//! magic        8 bytes   "ORCHSNAP"
//! format       u32       1
//! fingerprint  u64       FNV-1a over the plan (op names/tasks/deps) + seed
//! version      u64       monotone snapshot number
//! op_count     u32
//! per op:
//!   task_count u32
//!   bitmap     ⌈n/8⌉ B   completed-task bits, LSB-first
//!   stats      u64+2×f64 OnlineStats (count, mean, M2)
//!   outputs    u64 × |completed|   f64 bits, ascending task index
//! crc32        u32       IEEE, over every preceding byte
//! ```
//!
//! Writes go write-ahead: the encoded image lands in a temp file,
//! `fsync`, then an atomic rename to `ckpt-<version>.bin` (plus a
//! best-effort directory fsync). A torn write therefore leaves either
//! a temp file (ignored by the loader) or a truncated renamed file
//! that fails the crc/length checks — [`load_latest`] walks versions
//! newest-first and falls back to the previous intact snapshot.

use crate::stats::OnlineStats;
use crate::threaded::{build_plan, Plan};
use orchestra_delirium::{DelirGraph, GraphError};
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};

const MAGIC: &[u8; 8] = b"ORCHSNAP";
const FORMAT: u32 = 1;

/// CRC-32 (IEEE 802.3, reflected). Bitwise rather than table-driven:
/// snapshots are test-scale, so simplicity beats throughput here.
fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// One op's persisted execution state.
pub(crate) struct OpSnapshot {
    /// Per-task completion bit (length = the op's task count).
    pub(crate) completed: Vec<bool>,
    /// Output values, aligned with `completed`; only completed slots
    /// are meaningful (uncompleted slots decode as 0.0).
    pub(crate) outputs: Vec<f64>,
    /// The cost-hint statistics of the completed tasks — merged into
    /// the adaptive chunk policy on resume so TAPER restarts with the
    /// µ/σ it had already learned.
    pub(crate) stats: OnlineStats,
}

/// A parsed, validated snapshot: the claim frontier of one run at one
/// consistent cut.
pub struct Snapshot {
    pub(crate) fingerprint: u64,
    pub(crate) version: u64,
    pub(crate) ops: Vec<OpSnapshot>,
}

impl Snapshot {
    /// The monotone snapshot number (also encoded in the file name).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The plan fingerprint this snapshot belongs to (see
    /// [`plan_fingerprint`]).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Tasks recorded complete, summed over all ops.
    pub fn completed_tasks(&self) -> usize {
        self.ops.iter().map(|o| o.completed.iter().filter(|&&c| c).count()).sum()
    }

    /// Number of op records in the snapshot.
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }
}

/// Captures one op's live execution state for a snapshot. A task
/// counts as complete when it was restored from a previous snapshot or
/// its `executed` counter is visible — executors store the output cell
/// *before* the `Release` bump of `executed`, so an `Acquire` read of
/// `executed > 0` guarantees `read_output` sees a quiescent final
/// value: the bitmap is a consistent cut, and the copy taken here is
/// the snapshot's own (the arena keeps no history). `read_output` is
/// only invoked for tasks proven complete, which is what makes the
/// arena's raw cell read race-free.
pub(crate) fn op_snapshot(
    costs: &[f64],
    restored: &[bool],
    executed: &[AtomicU32],
    read_output: impl Fn(usize) -> f64,
) -> OpSnapshot {
    let n = costs.len();
    let mut completed = vec![false; n];
    let mut outputs = vec![0.0f64; n];
    let mut stats = OnlineStats::new();
    for t in 0..n {
        let done =
            restored.get(t).copied().unwrap_or(false) || executed[t].load(Ordering::Acquire) > 0;
        if done {
            completed[t] = true;
            outputs[t] = read_output(t);
            stats.observe(costs[t]);
        }
    }
    OpSnapshot { completed, outputs, stats }
}

/// FNV-1a over the expanded plan (op names, node ids, iterations, task
/// counts, dependency edges) and the cost seed. Two runs with the same
/// fingerprint sample identical per-task costs and build identical op
/// DAGs, so a snapshot from one is a valid resume point for the other.
pub fn plan_fingerprint(plan: &Plan, seed: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    };
    eat(&seed.to_le_bytes());
    eat(&(plan.ops.len() as u64).to_le_bytes());
    for op in &plan.ops {
        eat(op.name.as_bytes());
        eat(&[0xFF]);
        eat(&(op.node as u64).to_le_bytes());
        eat(&(op.iter as u64).to_le_bytes());
        eat(&(op.tasks as u64).to_le_bytes());
        for &d in &op.deps {
            eat(&(d as u64).to_le_bytes());
        }
    }
    h
}

/// [`plan_fingerprint`] for a graph + options pair: expands the plan
/// the same way the executors do, then fingerprints it.
///
/// # Errors
///
/// Returns the graph's validation error when it is malformed.
pub fn graph_fingerprint(
    g: &DelirGraph,
    opts: &crate::executor::ExecutorOptions,
) -> Result<u64, GraphError> {
    Ok(plan_fingerprint(&build_plan(g, opts)?, opts.seed))
}

fn encode(snap: &Snapshot) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&FORMAT.to_le_bytes());
    buf.extend_from_slice(&snap.fingerprint.to_le_bytes());
    buf.extend_from_slice(&snap.version.to_le_bytes());
    buf.extend_from_slice(&(snap.ops.len() as u32).to_le_bytes());
    for op in &snap.ops {
        let n = op.completed.len();
        buf.extend_from_slice(&(n as u32).to_le_bytes());
        let mut bitmap = vec![0u8; n.div_ceil(8)];
        for (t, &done) in op.completed.iter().enumerate() {
            if done {
                bitmap[t / 8] |= 1 << (t % 8);
            }
        }
        buf.extend_from_slice(&bitmap);
        buf.extend_from_slice(&op.stats.count().to_le_bytes());
        buf.extend_from_slice(&op.stats.mean().to_le_bytes());
        buf.extend_from_slice(&op.stats.m2().to_le_bytes());
        for (t, &done) in op.completed.iter().enumerate() {
            if done {
                buf.extend_from_slice(&op.outputs[t].to_bits().to_le_bytes());
            }
        }
    }
    let crc = crc32(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());
    buf
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.bytes.len() {
            return None;
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Some(s)
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4).map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8).map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn f64(&mut self) -> Option<f64> {
        self.u64().map(f64::from_bits)
    }
}

/// Decodes and validates one snapshot image. `None` on any defect:
/// bad magic, unknown format, truncation, trailing garbage, or crc
/// mismatch — the caller falls back to an older version.
fn decode(bytes: &[u8]) -> Option<Snapshot> {
    if bytes.len() < MAGIC.len() + 4 + 8 + 8 + 4 + 4 {
        return None;
    }
    let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
    let stored = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
    if crc32(body) != stored {
        return None;
    }
    let mut c = Cursor { bytes: body, pos: 0 };
    if c.take(MAGIC.len())? != MAGIC || c.u32()? != FORMAT {
        return None;
    }
    let fingerprint = c.u64()?;
    let version = c.u64()?;
    let op_count = c.u32()? as usize;
    let mut ops = Vec::with_capacity(op_count.min(1 << 16));
    for _ in 0..op_count {
        let n = c.u32()? as usize;
        let bitmap = c.take(n.div_ceil(8))?;
        let completed: Vec<bool> = (0..n).map(|t| bitmap[t / 8] & (1 << (t % 8)) != 0).collect();
        let count = c.u64()?;
        let mean = c.f64()?;
        let m2 = c.f64()?;
        let mut outputs = vec![0.0f64; n];
        for t in 0..n {
            if completed[t] {
                outputs[t] = c.f64()?;
            }
        }
        ops.push(OpSnapshot {
            completed,
            outputs,
            stats: OnlineStats::from_parts(count, mean, m2),
        });
    }
    if c.pos != body.len() {
        return None;
    }
    Some(Snapshot { fingerprint, version, ops })
}

fn file_name(version: u64) -> String {
    format!("ckpt-{version:016x}.bin")
}

fn version_of(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("ckpt-")?.strip_suffix(".bin")?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

/// Writes one snapshot write-ahead: encode → temp file → fsync →
/// atomic rename → best-effort directory fsync.
pub(crate) fn write_snapshot(dir: &Path, snap: &Snapshot) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let bytes = encode(snap);
    let tmp = dir.join(format!(".ckpt-{:016x}.tmp", snap.version));
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
    }
    let path = dir.join(file_name(snap.version));
    fs::rename(&tmp, &path)?;
    if let Ok(d) = fs::File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(path)
}

/// The snapshot versions present in `dir` (by file name, ascending).
/// Presence says nothing about integrity — use [`load_latest`] to get
/// a validated snapshot.
pub fn snapshot_versions(dir: &Path) -> Vec<u64> {
    let Ok(entries) = fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut versions: Vec<u64> =
        entries.flatten().filter_map(|e| version_of(e.file_name().to_str()?)).collect();
    versions.sort_unstable();
    versions
}

/// Loads the newest snapshot in `dir` that decodes cleanly (magic,
/// format, length, crc) *and* matches `fingerprint`. Torn, truncated,
/// corrupt, or foreign-plan files are skipped, falling back to the
/// previous version — the torn-write recovery path the chaos suite
/// exercises by truncating the latest file mid-record.
pub fn load_latest(dir: &Path, fingerprint: u64) -> Option<Snapshot> {
    let mut versions = snapshot_versions(dir);
    versions.reverse();
    for v in versions {
        let Ok(bytes) = fs::read(dir.join(file_name(v))) else {
            continue;
        };
        if let Some(snap) = decode(&bytes) {
            if snap.fingerprint == fingerprint {
                return Some(snap);
            }
        }
    }
    None
}

/// Removes the oldest snapshots beyond `keep` (best-effort).
pub(crate) fn prune(dir: &Path, keep: usize) {
    let versions = snapshot_versions(dir);
    if versions.len() <= keep.max(1) {
        return;
    }
    for &v in &versions[..versions.len() - keep.max(1)] {
        let _ = fs::remove_file(dir.join(file_name(v)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(version: u64, fingerprint: u64) -> Snapshot {
        let mut stats = OnlineStats::new();
        for x in [1.0, 2.0, 4.0] {
            stats.observe(x);
        }
        Snapshot {
            fingerprint,
            version,
            ops: vec![
                OpSnapshot {
                    completed: vec![true, false, true, true, false],
                    outputs: vec![1.5, 0.0, -2.25, 1e-9, 0.0],
                    stats,
                },
                OpSnapshot {
                    completed: vec![false],
                    outputs: vec![0.0],
                    stats: OnlineStats::new(),
                },
            ],
        }
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let snap = sample(7, 0xABCD);
        let bytes = encode(&snap);
        let back = decode(&bytes).expect("decodes");
        assert_eq!(back.version, 7);
        assert_eq!(back.fingerprint, 0xABCD);
        assert_eq!(back.ops.len(), 2);
        assert_eq!(back.ops[0].completed, snap.ops[0].completed);
        for (a, b) in snap.ops[0].outputs.iter().zip(&back.ops[0].outputs) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(back.ops[0].stats.count(), 3);
        assert!((back.ops[0].stats.mean() - snap.ops[0].stats.mean()).abs() < 1e-12);
        assert!((back.ops[0].stats.m2() - snap.ops[0].stats.m2()).abs() < 1e-12);
        assert_eq!(back.completed_tasks(), 3);
    }

    #[test]
    fn any_truncation_is_rejected() {
        let bytes = encode(&sample(3, 1));
        for cut in 0..bytes.len() {
            assert!(decode(&bytes[..cut]).is_none(), "accepted a {cut}-byte prefix");
        }
        assert!(decode(&bytes).is_some());
    }

    #[test]
    fn bit_flips_are_rejected() {
        let bytes = encode(&sample(3, 1));
        for pos in [0, 9, 20, 29, bytes.len() / 2, bytes.len() - 5] {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x40;
            assert!(decode(&bad).is_none(), "accepted a flip at byte {pos}");
        }
    }

    #[test]
    fn loader_falls_back_past_torn_latest() {
        let dir = std::env::temp_dir().join(format!(
            "orchestra-snaptest-{}-{:x}",
            std::process::id(),
            0xA1u32
        ));
        let _ = fs::remove_dir_all(&dir);
        write_snapshot(&dir, &sample(1, 9)).unwrap();
        write_snapshot(&dir, &sample(2, 9)).unwrap();
        let latest = dir.join(file_name(2));
        let full = fs::read(&latest).unwrap();
        fs::write(&latest, &full[..full.len() / 2]).unwrap();
        let snap = load_latest(&dir, 9).expect("falls back to version 1");
        assert_eq!(snap.version(), 1);
        // Wrong fingerprint: nothing valid at all.
        assert!(load_latest(&dir, 10).is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn prune_keeps_newest() {
        let dir = std::env::temp_dir().join(format!(
            "orchestra-snaptest-{}-{:x}",
            std::process::id(),
            0xB2u32
        ));
        let _ = fs::remove_dir_all(&dir);
        for v in 1..=5 {
            write_snapshot(&dir, &sample(v, 4)).unwrap();
        }
        prune(&dir, 2);
        assert_eq!(snapshot_versions(&dir), vec![4, 5]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn crc_reference_vector() {
        // The classic IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }
}
