//! Checkpointing, fault injection, and deterministic replay for the
//! real execution backends.
//!
//! The paper's kernels are pure functions of `(node, iter, task,
//! cost_hint)`, so recovery after a fault is *bitwise-verifiable by
//! construction*: any claimed-but-unfinished chunk can be replayed
//! from scratch (the split-annotation view of ops as restartable pure
//! splits) and the result compared bit-for-bit against the sequential
//! reference. This module adds the three pieces that turn that
//! property into fault tolerance:
//!
//! * **Snapshots** ([`snapshot`]) — versioned, crc-checked, fsync'd
//!   on-disk images of the claim frontier: each op's completed-task
//!   bitmap, the completed tasks' output values, and the per-op
//!   [`OnlineStats`](crate::stats::OnlineStats) that warm-start the
//!   adaptive chunk policies on resume. Under distributed TAPER the
//!   snapshot cadence piggybacks on the epoch tokens of §4.1.1: every
//!   global-epoch increment is a ready-made consistent-cut barrier.
//! * **Fault plans** ([`FaultPlan`]) — injectable, deterministic
//!   worker kills (at epoch `e` / after `n` claims / on a steal)
//!   threaded through
//!   [`ExecutorOptions`](crate::executor::ExecutorOptions). A killed
//!   worker's freshly claimed chunk becomes an orphaned *lease* that a
//!   survivor re-executes exactly once; in crash mode the whole run
//!   aborts instead, simulating a process death.
//! * **Resume** ([`execute_graph_resumable`]) — runs a graph, and on a
//!   crash restores from the latest valid snapshot (falling back past
//!   torn or corrupt files) and replays to completion.

mod fault;
mod resume;
mod snapshot;

pub use fault::{FaultPlan, FaultTrigger, KillSpec};
pub(crate) use fault::{FaultState, KillMode, Lease};
pub(crate) use resume::ResumeState;
pub use resume::{execute_graph_resumable, ResumableRun};
pub use snapshot::{graph_fingerprint, load_latest, plan_fingerprint, snapshot_versions, Snapshot};
pub(crate) use snapshot::{op_snapshot, OpSnapshot};

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// Where and how often a run persists snapshots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointSpec {
    /// Snapshot directory (created on first write if missing).
    pub dir: PathBuf,
    /// Claim-count cadence: a snapshot is attempted every
    /// `every_claims` chunk claims, in addition to every distributed
    /// TAPER global-epoch boundary. `0` disables the claim cadence
    /// (epoch barriers still snapshot).
    pub every_claims: u64,
    /// Snapshot versions retained on disk; older ones are pruned after
    /// each successful write.
    pub keep: usize,
}

impl CheckpointSpec {
    /// A spec with the default cadence: snapshot every 16 claims (and
    /// at every dist-TAPER epoch), keep the last 4 versions.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        CheckpointSpec { dir: dir.into(), every_claims: 16, keep: 4 }
    }
}

/// Runtime checkpoint state for one execution: cadence tracking and
/// the single-writer slot. Version numbers continue from whatever is
/// already on disk, so snapshots stay monotone across resume attempts.
pub(crate) struct CheckpointCtl {
    spec: CheckpointSpec,
    fingerprint: u64,
    next_version: AtomicU64,
    claims: AtomicU64,
    last_epoch: AtomicU64,
    writing: AtomicBool,
}

impl CheckpointCtl {
    pub(crate) fn new(spec: CheckpointSpec, fingerprint: u64) -> Self {
        let next = snapshot::snapshot_versions(&spec.dir).last().map_or(1, |v| v + 1);
        CheckpointCtl {
            spec,
            fingerprint,
            next_version: AtomicU64::new(next),
            claims: AtomicU64::new(0),
            last_epoch: AtomicU64::new(0),
            writing: AtomicBool::new(false),
        }
    }

    /// Notes one chunk claim (tagged with the dist-TAPER global epoch
    /// when the claim came from a [`DistQueue`](crate::threaded::dist::DistQueue)).
    /// Returns `true` when this caller won the single-writer slot and
    /// must follow up with [`commit`](Self::commit).
    pub(crate) fn note_claim(&self, epoch: Option<u64>) -> bool {
        let mut due = false;
        if let Some(e) = epoch {
            // The first claim that observes a new global epoch crossed
            // a consistent-cut barrier: every worker holding older
            // work has tokened in. Snapshot there.
            let last = self.last_epoch.load(Ordering::Relaxed);
            if e > last
                && self
                    .last_epoch
                    .compare_exchange(last, e, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
            {
                due = true;
            }
        }
        let c = self.claims.fetch_add(1, Ordering::Relaxed) + 1;
        if self.spec.every_claims > 0 && c.is_multiple_of(self.spec.every_claims) {
            due = true;
        }
        due && self
            .writing
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
    }

    /// Persists a snapshot (write-ahead to a temp file, fsync, rename),
    /// prunes old versions, and releases the writer slot taken by
    /// [`note_claim`](Self::note_claim). Disk errors are swallowed:
    /// checkpointing is best-effort and must never fail a run.
    pub(crate) fn commit(&self, ops: Vec<OpSnapshot>) {
        let version = self.next_version.fetch_add(1, Ordering::Relaxed);
        let snap = Snapshot { fingerprint: self.fingerprint, version, ops };
        let _ = snapshot::write_snapshot(&self.spec.dir, &snap);
        snapshot::prune(&self.spec.dir, self.spec.keep);
        self.writing.store(false, Ordering::Release);
    }
}

/// Cooperative cancellation state for one run: the caller's token,
/// the resolved wall-clock deadline, and a latch recording whether a
/// claim-boundary check actually observed the request (so a deadline
/// that technically passes during result assembly does not fail a run
/// that already finished its work).
pub(crate) struct CancelCtl {
    token: Option<crate::cancel::CancelToken>,
    deadline: Option<std::time::Instant>,
    /// 0 = not fired, 1 = token, 2 = deadline.
    fired: std::sync::atomic::AtomicU8,
}

impl CancelCtl {
    /// Builds the per-run state from the caller's options; `None`
    /// when neither a token nor a deadline was configured. The
    /// deadline clock starts here — at run setup — which is what the
    /// daemon's submission-time semantics want.
    pub(crate) fn from_opts(opts: &crate::executor::ExecutorOptions) -> Option<Self> {
        if opts.cancel.is_none() && opts.deadline.is_none() {
            return None;
        }
        Some(CancelCtl {
            token: opts.cancel.clone(),
            deadline: opts.deadline.map(|d| std::time::Instant::now() + d),
            fired: std::sync::atomic::AtomicU8::new(0),
        })
    }

    /// The claim-boundary check: whether the run must abort. Latches
    /// the first observation so post-run reporting sees a stable
    /// verdict.
    pub(crate) fn requested(&self) -> bool {
        if self.fired.load(Ordering::Relaxed) != 0 {
            return true;
        }
        if self.token.as_ref().is_some_and(crate::cancel::CancelToken::is_cancelled) {
            let _ = self.fired.compare_exchange(0, 1, Ordering::SeqCst, Ordering::SeqCst);
            return true;
        }
        if self.deadline.is_some_and(|d| std::time::Instant::now() >= d) {
            let _ = self.fired.compare_exchange(0, 2, Ordering::SeqCst, Ordering::SeqCst);
            return true;
        }
        false
    }

    /// What a fired cancellation aborts the run with, `None` when no
    /// claim boundary ever observed one.
    pub(crate) fn error(&self) -> Option<crate::cancel::RunError> {
        match self.fired.load(Ordering::SeqCst) {
            1 => Some(crate::cancel::RunError::Cancelled),
            2 => Some(crate::cancel::RunError::DeadlineExceeded),
            _ => None,
        }
    }
}

/// Per-run fault-injection, checkpoint, and cancellation state
/// threaded through the threaded pool and the async driver. With no
/// fault plan, checkpoint spec, or cancel token configured (the
/// default) every hook is `None`, keeping the claim hot path at one
/// `Option` check.
pub(crate) struct RunCtl {
    /// Fault-injection state, `None` when no plan was configured.
    pub(crate) faults: Option<FaultState>,
    /// Orphaned claims of dead workers, re-executed exactly once by a
    /// survivor (drained under the lock with `mem::take`).
    pub(crate) leases: Mutex<Vec<Lease>>,
    /// Snapshot cadence + writer slot, `None` when checkpointing is
    /// off.
    pub(crate) ckpt: Option<CheckpointCtl>,
    /// Cooperative cancellation, `None` when neither a token nor a
    /// deadline was configured.
    pub(crate) cancel: Option<CancelCtl>,
}

impl RunCtl {
    pub(crate) fn new(
        faults: Option<&FaultPlan>,
        checkpoint: Option<&CheckpointSpec>,
        cancel: Option<CancelCtl>,
        workers: usize,
        fingerprint: u64,
    ) -> Self {
        RunCtl {
            faults: faults.map(|p| FaultState::new(p.clone(), workers)),
            leases: Mutex::new(Vec::new()),
            ckpt: checkpoint.map(|s| CheckpointCtl::new(s.clone(), fingerprint)),
            cancel,
        }
    }

    /// Whether any fault/checkpoint/cancel hook is active (claim loops
    /// take the hook path only when this is true).
    pub(crate) fn hooked(&self) -> bool {
        self.faults.is_some() || self.ckpt.is_some() || self.cancel.is_some()
    }

    /// Whether a crash-mode kill has fired: the run is aborting and
    /// every worker exits at its next claim boundary.
    pub(crate) fn crashed(&self) -> bool {
        self.faults.as_ref().is_some_and(FaultState::crashed)
    }

    /// Whether the run is stopping for *any* reason — crash-mode kill
    /// or cancellation — and workers must exit at their next claim or
    /// park boundary.
    pub(crate) fn stopping(&self) -> bool {
        self.crashed() || self.cancel.as_ref().is_some_and(CancelCtl::requested)
    }

    /// The cancellation error to abort with, if one fired.
    pub(crate) fn cancel_error(&self) -> Option<crate::cancel::RunError> {
        self.cancel.as_ref().and_then(CancelCtl::error)
    }
}
