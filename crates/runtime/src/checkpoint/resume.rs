//! Crash recovery: restore from the latest valid snapshot and replay
//! to completion.

use super::snapshot::{load_latest, plan_fingerprint, Snapshot};
use crate::cancel::RunError;
use crate::executor::ExecutorOptions;
use crate::stats::OnlineStats;
use crate::threaded::{build_plan, ExecutorBackend, Plan, TaskKernel};
use orchestra_delirium::DelirGraph;

/// The restore image handed to a backend: per-op completed-task masks,
/// the completed tasks' outputs, and the warm-start statistics. Built
/// from a [`Snapshot`] only after validating it against the plan.
pub(crate) struct ResumeState {
    pub(crate) ops: Vec<OpResume>,
}

/// One op's restore image.
pub(crate) struct OpResume {
    /// Per-task completed-before-this-run flag.
    pub(crate) completed: Vec<bool>,
    /// Output values for completed slots (others are 0.0 and unused).
    pub(crate) outputs: Vec<f64>,
    /// Cost-hint µ/σ of the completed tasks, merged into the adaptive
    /// chunk policy so it resumes with its learned state.
    pub(crate) stats: OnlineStats,
}

impl ResumeState {
    /// Validates a snapshot against the plan (op count and per-op task
    /// counts must match — the fingerprint should already guarantee
    /// this, but a hash collision must degrade to a fresh start, not
    /// an out-of-bounds restore).
    pub(crate) fn from_snapshot(snap: Snapshot, plan: &Plan) -> Option<Self> {
        if snap.ops.len() != plan.ops.len() {
            return None;
        }
        if snap.ops.iter().zip(&plan.ops).any(|(s, p)| s.completed.len() != p.tasks) {
            return None;
        }
        Some(ResumeState {
            ops: snap
                .ops
                .into_iter()
                .map(|o| OpResume { completed: o.completed, outputs: o.outputs, stats: o.stats })
                .collect(),
        })
    }

    /// Tasks restored (skipped on replay), summed over ops.
    pub(crate) fn restored_tasks(&self) -> usize {
        self.ops.iter().map(|o| o.completed.iter().filter(|&&c| c).count()).sum()
    }
}

/// The result of a resumable execution: the completed run plus the
/// recovery story that produced it.
#[derive(Debug, Clone)]
pub struct ResumableRun {
    /// Output buffers, aligned with the plan's op order — bitwise what
    /// an uninterrupted run produces (kernels are pure).
    pub outputs: Vec<Vec<f64>>,
    /// Per-task execution counts *of the final attempt*: restored
    /// tasks show 0 (they were never re-executed), replayed tasks 1.
    pub exec_counts: Vec<Vec<u32>>,
    /// Op names, aligned with the plan's op order.
    pub op_names: Vec<String>,
    /// Per-task restored-from-snapshot masks of the final attempt
    /// (all-false when the final attempt started fresh).
    pub restored: Vec<Vec<bool>>,
    /// Executions launched, including the crashed ones (1 = no crash).
    pub attempts: usize,
    /// Tasks restored from the snapshot into the final attempt.
    pub resumed_tasks: usize,
    /// Total wall-clock time across all attempts, µs.
    pub wall_us: f64,
    /// Wall-clock time spent in post-crash attempts (restore +
    /// replay), µs; 0.0 when nothing crashed.
    pub recovery_us: f64,
}

struct Attempt {
    crashed: bool,
    wall_us: f64,
    outputs: Vec<Vec<f64>>,
    exec_counts: Vec<Vec<u32>>,
}

fn run_attempt(
    g: &DelirGraph,
    opts: &ExecutorOptions,
    kernel: &(dyn TaskKernel + Sync),
    resume: Option<&ResumeState>,
) -> Result<Attempt, RunError> {
    if opts.backend == ExecutorBackend::Async {
        let r = crate::asynch::execute_async_resumed(g, opts, kernel, resume)?;
        Ok(Attempt {
            crashed: r.crashed,
            wall_us: r.wall_us,
            outputs: r.outputs,
            exec_counts: r.exec_counts,
        })
    } else {
        let r = crate::threaded::execute_threaded_resumed(g, opts, kernel, resume)?;
        Ok(Attempt {
            crashed: r.crashed,
            wall_us: r.wall_us,
            outputs: r.outputs,
            exec_counts: r.exec_counts,
        })
    }
}

/// Executes a graph with crash recovery: run, and if a crash-mode
/// fault aborts the attempt, restore from the latest valid snapshot in
/// `opts.checkpoint.dir` (falling back past torn or corrupt files) and
/// replay the remaining tasks. The injected faults apply only to the
/// first attempt — a simulated process crash happens once — so the
/// replay runs clean.
///
/// Backends: [`Threaded`](ExecutorBackend::Threaded) /
/// [`ThreadedDist`](ExecutorBackend::ThreadedDist) /
/// [`Async`](ExecutorBackend::Async); the default
/// [`Simulated`](ExecutorBackend::Simulated) backend executes on the
/// threaded engine (simulation has no real state to checkpoint).
/// Without a checkpoint spec a crash simply restarts from scratch.
///
/// # Errors
///
/// Returns the graph's validation error when it is malformed, or the
/// cancellation/deadline error when the caller aborted the run —
/// cancellation is never retried: an evicted tenant's graph must not
/// resurrect itself from its own snapshots.
pub fn execute_graph_resumable(
    g: &DelirGraph,
    opts: &ExecutorOptions,
    kernel: &(dyn TaskKernel + Sync),
) -> Result<ResumableRun, RunError> {
    let plan = build_plan(g, opts)?;
    let fingerprint = plan_fingerprint(&plan, opts.seed);
    let op_names: Vec<String> = plan.ops.iter().map(|o| o.name.clone()).collect();
    // Every kill fires at most once, so attempts are bounded even if a
    // plan manages to crash a replay (it can't — replays run clean).
    let max_attempts = opts.faults.as_ref().map_or(0, |f| f.kills.len() + f.crash_kills.len()) + 2;
    let mut attempts = 0usize;
    let mut wall_us = 0.0;
    let mut recovery_us = 0.0;
    let mut resume: Option<ResumeState> = None;
    loop {
        attempts += 1;
        let run_opts = if attempts == 1 {
            opts.clone()
        } else {
            ExecutorOptions { faults: None, ..opts.clone() }
        };
        let attempt = run_attempt(g, &run_opts, kernel, resume.as_ref())?;
        wall_us += attempt.wall_us;
        if attempts > 1 {
            recovery_us += attempt.wall_us;
        }
        if !attempt.crashed || attempts >= max_attempts {
            let restored: Vec<Vec<bool>> = match &resume {
                Some(r) => r.ops.iter().map(|o| o.completed.clone()).collect(),
                None => plan.ops.iter().map(|o| vec![false; o.tasks]).collect(),
            };
            let resumed_tasks = resume.as_ref().map_or(0, ResumeState::restored_tasks);
            return Ok(ResumableRun {
                outputs: attempt.outputs,
                exec_counts: attempt.exec_counts,
                op_names,
                restored,
                attempts,
                resumed_tasks,
                wall_us,
                recovery_us,
            });
        }
        resume = opts
            .checkpoint
            .as_ref()
            .and_then(|spec| load_latest(&spec.dir, fingerprint))
            .and_then(|snap| ResumeState::from_snapshot(snap, &plan));
    }
}
