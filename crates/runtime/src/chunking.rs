//! Chunk-size (grain-size) selection policies.
//!
//! The paper's runtime uses **TAPER** \[14\]: "large chunks at the
//! beginning of a parallel operation and successively smaller chunks as
//! the computation proceeds", with chunk sizes shrunk in proportion to
//! the sampled task-time variability and scaled by the positional cost
//! function. The baselines it cites are also implemented:
//! chunk self-scheduling (one task at a time), guided self-scheduling
//! \[17\], and factoring \[10\]; static block decomposition is the
//! no-runtime-decisions baseline.

use crate::stats::{CostFn, OnlineStats};

/// A chunk-size policy: asked for the next chunk when a processor goes
/// idle, given the remaining task count and processor count.
pub trait ChunkPolicy {
    /// Chooses the size of the next chunk starting at task index
    /// `next_index`, with `remaining` tasks left and `p` processors.
    /// Must return `1..=remaining` when `remaining > 0`.
    fn next_chunk(&mut self, next_index: usize, remaining: usize, p: usize) -> usize;

    /// Observes a completed task's execution time (for adaptive
    /// policies).
    fn observe(&mut self, index: usize, cost: f64) {
        let _ = (index, cost);
    }

    /// Observes a whole completed chunk at once: `stats` holds the
    /// µ/σ accumulated over the chunk's task times by the worker that
    /// executed it. This is the threaded backend's batched feedback
    /// path — one policy update per chunk instead of one lock per
    /// task. The default approximates per-task feeding by replaying
    /// the chunk mean at each index; adaptive policies override it
    /// with an exact merge.
    fn observe_chunk(&mut self, start: usize, len: usize, stats: &OnlineStats) {
        for i in start..start + len {
            self.observe(i, stats.mean());
        }
    }

    /// For policies whose chunk sequence is a pure function of the
    /// iteration-space size and worker count — never of observed task
    /// times — the full chunk-size sequence over `total` tasks. The
    /// threaded backend serves such schedules from a lock-free atomic
    /// cursor; adaptive policies return `None` and keep a (short)
    /// mutex-guarded critical section per chunk.
    fn fixed_schedule(&self, total: usize, p: usize) -> Option<Vec<usize>> {
        let _ = (total, p);
        None
    }

    /// A snapshot of the task-time statistics the policy has sampled
    /// so far, for policies that keep them (TAPER). The allocation
    /// equalizer reads this to build live [`finish
    /// estimates`](crate::finish::finish_estimate_live) from the chunk
    /// queues instead of the synthetic cost model; schedule-only
    /// policies return `None`.
    fn live_stats(&self) -> Option<OnlineStats> {
        None
    }

    /// Display name of the policy.
    fn name(&self) -> &'static str;
}

/// Replays a fresh policy over `total` tasks to precompute its chunk
/// sequence (for observation-independent policies).
fn replay_schedule<P: ChunkPolicy + Default>(total: usize, p: usize) -> Vec<usize> {
    let mut pol = P::default();
    let mut sizes = Vec::new();
    let (mut next, mut remaining) = (0usize, total);
    while remaining > 0 {
        let k = pol.next_chunk(next, remaining, p).clamp(1, remaining);
        sizes.push(k);
        next += k;
        remaining -= k;
    }
    sizes
}

/// One task per scheduling event (pure self-scheduling).
#[derive(Debug, Clone, Copy, Default)]
pub struct SelfSched;

impl ChunkPolicy for SelfSched {
    fn next_chunk(&mut self, _next: usize, remaining: usize, _p: usize) -> usize {
        remaining.min(1)
    }

    fn fixed_schedule(&self, total: usize, _p: usize) -> Option<Vec<usize>> {
        Some(vec![1; total])
    }

    fn name(&self) -> &'static str {
        "self-scheduling"
    }
}

/// Guided self-scheduling: `K = ⌈R/p⌉` (Polychronopoulos & Kuck).
#[derive(Debug, Clone, Copy, Default)]
pub struct Gss;

impl ChunkPolicy for Gss {
    fn next_chunk(&mut self, _next: usize, remaining: usize, p: usize) -> usize {
        remaining.min(remaining.div_ceil(p).max(1))
    }

    fn fixed_schedule(&self, total: usize, p: usize) -> Option<Vec<usize>> {
        Some(replay_schedule::<Gss>(total, p))
    }

    fn name(&self) -> &'static str {
        "guided self-scheduling"
    }
}

/// Factoring (Hummel, Schonberg & Flynn): batches of `p` equal chunks,
/// each batch covering half the remaining work.
#[derive(Debug, Clone, Copy, Default)]
pub struct Factoring {
    in_batch: usize,
    batch_chunk: usize,
}

impl ChunkPolicy for Factoring {
    fn next_chunk(&mut self, _next: usize, remaining: usize, p: usize) -> usize {
        if self.in_batch == 0 {
            self.batch_chunk = (remaining.div_ceil(2 * p)).max(1);
            self.in_batch = p;
        }
        self.in_batch -= 1;
        remaining.min(self.batch_chunk)
    }

    fn fixed_schedule(&self, total: usize, p: usize) -> Option<Vec<usize>> {
        Some(replay_schedule::<Factoring>(total, p))
    }

    fn name(&self) -> &'static str {
        "factoring"
    }
}

/// The coefficient-of-variation threshold above which distributed
/// TAPER's root re-assigns work from laggards (§4.1.1). Below it there
/// is no load imbalance to repair, and an ungated root would steal on
/// mere token-latency asymmetry, defeating the locality the scheme
/// exists to preserve. Shared by the event-driven simulator and the
/// threaded backend so both make the same migration decisions.
pub const REASSIGN_CV_GATE: f64 = 0.05;

/// TAPER: variance-adaptive decreasing chunks with cost-function
/// scaling.
///
/// At each scheduling event with `R` tasks remaining the base chunk is
///
/// ```text
/// K = ⌈ R / (p · (1 + cv·√(2·ln p))) ⌉
/// ```
///
/// where `cv = σ/µ` is the sampled coefficient of variation — regular
/// operations (`cv ≈ 0`) get GSS-like large chunks, irregular ones get
/// proportionally smaller chunks so the expected chunk-time spread
/// stays bounded (this is the quantitative µ/σ relationship of \[14\]).
/// The chunk is then scaled by `s = µg/µc` from the positional cost
/// function, shrinking chunks in expensive regions of the iteration
/// space.
#[derive(Debug, Clone)]
pub struct Taper {
    stats: OnlineStats,
    cost_fn: Option<CostFn>,
    min_chunk: usize,
}

impl Taper {
    /// TAPER without a positional cost function.
    pub fn new() -> Self {
        Taper { stats: OnlineStats::new(), cost_fn: None, min_chunk: 1 }
    }

    /// TAPER with a positional cost function over `total_tasks`.
    pub fn with_cost_fn(total_tasks: usize) -> Self {
        Taper {
            stats: OnlineStats::new(),
            cost_fn: Some(CostFn::new(16, total_tasks)),
            min_chunk: 1,
        }
    }

    /// The sampled coefficient of variation so far.
    pub fn cv(&self) -> f64 {
        self.stats.cv()
    }

    /// Number of task-time samples observed so far.
    pub fn samples(&self) -> u64 {
        self.stats.count()
    }

    /// The epoch-chunk size for *distributed* TAPER (§4.1.1): the
    /// global TAPER sequence ([`next_chunk`](ChunkPolicy::next_chunk)
    /// over the whole iteration space, so every processor's epoch-`e`
    /// chunk has comparable size and token frequency is a speed
    /// signal) clamped to the processor's local home queue. During the
    /// initial sampling phase (fewer than `2p` samples, i.e. no
    /// trustworthy µ/σ yet) the chunk is additionally capped at half
    /// the local queue, so a mis-sized first draw cannot swallow an
    /// entire home block of expensive tasks.
    ///
    /// `done` is the number of tasks already handed out globally,
    /// `remaining_global` the number not yet handed out, `local_len`
    /// the caller's home-queue length (must be nonzero).
    pub fn epoch_chunk(
        &mut self,
        done: usize,
        remaining_global: usize,
        p: usize,
        local_len: usize,
    ) -> usize {
        let cap = if self.samples() < 2 * p as u64 { local_len.div_ceil(2) } else { local_len };
        self.next_chunk(done, remaining_global.max(1), p).clamp(1, cap.max(1))
    }

    /// Whether the sampled variability justifies re-assigning work
    /// from a laggard: cv above [`REASSIGN_CV_GATE`] once at least
    /// `2p` samples exist (the same sampling threshold that ends
    /// [`epoch_chunk`](Self::epoch_chunk)'s conservative phase).
    pub fn reassign_signal(&self, p: usize) -> bool {
        self.stats.cv_if_sampled(2 * p as u64).is_some_and(|cv| cv > REASSIGN_CV_GATE)
    }
}

impl Default for Taper {
    fn default() -> Self {
        Taper::new()
    }
}

impl ChunkPolicy for Taper {
    fn next_chunk(&mut self, next_index: usize, remaining: usize, p: usize) -> usize {
        if remaining == 0 {
            return 0;
        }
        let cv = self.stats.cv();
        let spread = 1.0 + cv * (2.0 * (p.max(2) as f64).ln()).sqrt();
        let mut k = (remaining as f64 / (p as f64 * spread)).ceil();
        if let Some(f) = &self.cost_fn {
            let s = f.chunk_scale(next_index, k.max(1.0) as usize);
            k = (k * s.clamp(0.1, 10.0)).ceil();
        }
        (k as usize).clamp(self.min_chunk, remaining)
    }

    fn observe(&mut self, index: usize, cost: f64) {
        self.stats.observe(cost);
        if let Some(f) = &mut self.cost_fn {
            f.observe(index, cost);
        }
    }

    fn observe_chunk(&mut self, start: usize, len: usize, stats: &OnlineStats) {
        // Exact Welford merge: the global µ/σ end up identical (up to
        // fp rounding) to per-task observation of the same samples.
        self.stats.merge(stats);
        if let Some(f) = &mut self.cost_fn {
            f.observe_span(start, len, stats.mean());
        }
    }

    fn live_stats(&self) -> Option<OnlineStats> {
        Some(self.stats)
    }

    fn name(&self) -> &'static str {
        "TAPER"
    }
}

/// The set of built-in policies, for sweeps and reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// Static block decomposition (no dynamic scheduling).
    Static,
    /// One task per event.
    SelfSched,
    /// Guided self-scheduling.
    Gss,
    /// Factoring.
    Factoring,
    /// TAPER without cost function.
    Taper,
    /// TAPER with positional cost function.
    TaperCostFn,
}

impl PolicyKind {
    /// Instantiates the policy (for dynamic kinds; `Static` has its own
    /// simulation path and yields GSS here as a harmless default). The
    /// box is `Send` so real-thread backends can move it into a shared
    /// chunk queue.
    pub fn instantiate(&self, total_tasks: usize) -> Box<dyn ChunkPolicy + Send> {
        match self {
            PolicyKind::SelfSched => Box::new(SelfSched),
            PolicyKind::Gss | PolicyKind::Static => Box::<Gss>::default(),
            PolicyKind::Factoring => Box::<Factoring>::default(),
            PolicyKind::Taper => Box::new(Taper::new()),
            PolicyKind::TaperCostFn => Box::new(Taper::with_cost_fn(total_tasks)),
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            PolicyKind::Static => "static",
            PolicyKind::SelfSched => "self-scheduling",
            PolicyKind::Gss => "GSS",
            PolicyKind::Factoring => "factoring",
            PolicyKind::Taper => "TAPER",
            PolicyKind::TaperCostFn => "TAPER+costfn",
        }
    }
}

/// Expected number of scheduling events (chunks) for an operation of
/// `n` tasks on `p` processors under each policy — the paper predicts
/// this count at runtime to estimate scheduling overhead (`sched` in
/// the finishing-time expression).
pub fn predicted_chunks(kind: PolicyKind, n: usize, p: usize, cv: f64) -> f64 {
    let n_f = n as f64;
    let p_f = p as f64;
    match kind {
        PolicyKind::Static => p_f.min(n_f),
        PolicyKind::SelfSched => n_f,
        // Decreasing-chunk schemes schedule ≈ p·ln(n/p) chunks.
        PolicyKind::Gss | PolicyKind::Factoring => {
            (p_f * (n_f / p_f).max(1.0).ln()).max(p_f.min(n_f))
        }
        PolicyKind::Taper | PolicyKind::TaperCostFn => {
            let spread = 1.0 + cv * (2.0 * p_f.max(2.0).ln()).sqrt();
            (spread * p_f * (n_f / p_f).max(1.0).ln()).max(p_f.min(n_f))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_sched_always_one() {
        let mut s = SelfSched;
        assert_eq!(s.next_chunk(0, 100, 8), 1);
        assert_eq!(s.next_chunk(99, 1, 8), 1);
        assert_eq!(s.next_chunk(100, 0, 8), 0);
    }

    #[test]
    fn gss_halves_geometrically() {
        let mut g = Gss;
        let mut remaining = 64usize;
        let mut sizes = Vec::new();
        while remaining > 0 {
            let k = g.next_chunk(64 - remaining, remaining, 4);
            sizes.push(k);
            remaining -= k;
        }
        assert_eq!(sizes[0], 16);
        assert!(sizes.windows(2).all(|w| w[1] <= w[0]));
        assert_eq!(sizes.iter().sum::<usize>(), 64);
    }

    #[test]
    fn factoring_issues_equal_batches() {
        let mut f = Factoring::default();
        let p = 4;
        let mut remaining = 80usize;
        let mut first_batch = Vec::new();
        for _ in 0..p {
            let k = f.next_chunk(0, remaining, p);
            first_batch.push(k);
            remaining -= k;
        }
        assert!(first_batch.iter().all(|&k| k == first_batch[0]));
        assert_eq!(first_batch[0], 10, "80/(2·4)");
    }

    #[test]
    fn taper_matches_gss_for_regular_work() {
        let mut t = Taper::new();
        for _ in 0..50 {
            t.observe(0, 5.0); // constant costs → cv = 0
        }
        let k = t.next_chunk(0, 64, 4);
        assert_eq!(k, 16, "cv=0 behaves like GSS");
    }

    #[test]
    fn taper_shrinks_chunks_under_variance() {
        let mut t = Taper::new();
        for i in 0..60 {
            t.observe(0, if i % 10 == 0 { 50.0 } else { 1.0 });
        }
        assert!(t.cv() > 1.0);
        let k = t.next_chunk(0, 64, 4);
        assert!(k < 16, "irregular work gets smaller chunks, got {k}");
        assert!(k >= 1);
    }

    #[test]
    fn taper_cost_fn_shrinks_in_expensive_region() {
        let mut t = Taper::with_cost_fn(100);
        for i in 0..50 {
            t.observe(i, 1.0);
        }
        for i in 50..100 {
            t.observe(i, 9.0);
        }
        let cheap = t.next_chunk(5, 40, 4);
        let pricey = t.next_chunk(90, 40, 4);
        assert!(pricey < cheap, "expensive region chunk {pricey} !< cheap {cheap}");
    }

    #[test]
    fn epoch_chunk_halves_local_queue_while_sampling() {
        let mut t = Taper::new();
        // No samples yet: the global sequence says 256/4 = 64, but the
        // sampling-phase cap holds it to half the local queue.
        assert_eq!(t.epoch_chunk(0, 256, 4, 64), 32);
        // Past the sampling phase the full local queue is available.
        for _ in 0..8 {
            t.observe(0, 5.0);
        }
        assert_eq!(t.epoch_chunk(0, 256, 4, 64), 64);
        // Always at least one task, even from a length-1 queue.
        assert_eq!(Taper::new().epoch_chunk(100, 1, 4, 1), 1);
    }

    #[test]
    fn reassign_signal_needs_samples_and_variance() {
        let mut t = Taper::new();
        assert!(!t.reassign_signal(2), "no samples: no signal");
        for i in 0..3 {
            t.observe(i, if i == 0 { 50.0 } else { 1.0 });
        }
        assert!(!t.reassign_signal(2), "3 < 2p samples: no signal");
        t.observe(3, 1.0);
        assert!(t.reassign_signal(2), "high cv past the sampling phase");
        let mut u = Taper::new();
        for i in 0..8 {
            u.observe(i, 7.0);
        }
        assert!(!u.reassign_signal(2), "uniform costs never signal");
    }

    #[test]
    fn chunks_always_within_bounds() {
        let mut policies: Vec<Box<dyn ChunkPolicy>> = vec![
            Box::new(SelfSched),
            Box::<Gss>::default(),
            Box::<Factoring>::default(),
            Box::new(Taper::new()),
        ];
        for pol in &mut policies {
            let mut remaining = 1000usize;
            while remaining > 0 {
                let k = pol.next_chunk(1000 - remaining, remaining, 16);
                assert!(k >= 1 && k <= remaining, "{}: k={k}", pol.name());
                remaining -= k;
            }
        }
    }

    #[test]
    fn batched_observe_chunk_matches_per_task_observe() {
        // Drive two TAPERs through the same schedule: one fed each
        // task time individually (the simulator's path), one fed a
        // single merged accumulator per chunk (the threaded backend's
        // path). The Welford merge is exact, so both must pick the
        // identical chunk-size sequence.
        let total = 500usize;
        let p = 4;
        let cost = |i: usize| 1.0 + (i % 7) as f64 * 0.5;
        let mut per_task = Taper::new();
        let mut batched = Taper::new();
        let mut sizes = Vec::new();
        let (mut next, mut remaining) = (0usize, total);
        while remaining > 0 {
            let ka = per_task.next_chunk(next, remaining, p).clamp(1, remaining);
            let kb = batched.next_chunk(next, remaining, p).clamp(1, remaining);
            assert_eq!(ka, kb, "chunk size diverged at index {next}");
            let mut stats = OnlineStats::new();
            for i in next..next + ka {
                per_task.observe(i, cost(i));
                stats.observe(cost(i));
            }
            batched.observe_chunk(next, ka, &stats);
            sizes.push(ka);
            next += ka;
            remaining -= ka;
        }
        assert_eq!(sizes.iter().sum::<usize>(), total);
        assert!(sizes.len() > 2, "irregular costs must yield several chunks");
        assert_eq!(per_task.samples(), batched.samples());
        assert!((per_task.cv() - batched.cv()).abs() < 1e-9);
    }

    #[test]
    fn fixed_schedules_cover_space_and_match_replay() {
        for (pol, total, p) in [
            (PolicyKind::SelfSched, 257usize, 4usize),
            (PolicyKind::Gss, 1000, 8),
            (PolicyKind::Factoring, 1000, 8),
        ] {
            let schedule = pol
                .instantiate(total)
                .fixed_schedule(total, p)
                .expect("observation-independent policy");
            assert_eq!(schedule.iter().sum::<usize>(), total, "{}", pol.name());
            let mut reference = pol.instantiate(total);
            let (mut next, mut remaining) = (0usize, total);
            for &k in &schedule {
                assert_eq!(
                    k,
                    reference.next_chunk(next, remaining, p).clamp(1, remaining),
                    "{} diverges from event-at-a-time replay",
                    pol.name()
                );
                next += k;
                remaining -= k;
            }
        }
        for pol in [PolicyKind::Taper, PolicyKind::TaperCostFn] {
            assert!(
                pol.instantiate(100).fixed_schedule(100, 4).is_none(),
                "{} is observation-driven",
                pol.name()
            );
        }
    }

    #[test]
    fn predicted_chunks_ordering() {
        // static ≤ guided ≤ taper(irregular) ≤ self-sched
        let n = 4096;
        let p = 64;
        let st = predicted_chunks(PolicyKind::Static, n, p, 0.0);
        let gss = predicted_chunks(PolicyKind::Gss, n, p, 0.0);
        let tp = predicted_chunks(PolicyKind::Taper, n, p, 1.5);
        let ss = predicted_chunks(PolicyKind::SelfSched, n, p, 0.0);
        assert!(st <= gss && gss <= tp && tp <= ss);
    }
}
