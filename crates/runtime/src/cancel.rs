//! Cooperative cancellation for the real execution backends.
//!
//! A [`CancelToken`] is a shared flag a *caller* flips to abort a
//! running graph: every backend checks it at chunk-claim boundaries —
//! the same points where fault injection lands kills — so a cancelled
//! run never leaves a half-executed chunk behind and its workers exit
//! within one chunk of the request. An optional deadline in
//! [`ExecutorOptions`](crate::executor::ExecutorOptions) cancels the
//! run the same way once the wall clock passes it, which is how the
//! serving daemon evicts over-deadline tenants without a watchdog
//! thread.
//!
//! Cancellation is *cooperative and prompt*, not preemptive: a worker
//! mid-chunk finishes that chunk (chunks are bounded by the adaptive
//! policies, so the tail is short), then exits at the next claim. The
//! aborted run returns [`RunError::Cancelled`] (or
//! [`RunError::DeadlineExceeded`]) and the process is left clean — no
//! detached threads, no poisoned pool state — so the caller can
//! immediately execute another graph.

use orchestra_delirium::GraphError;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared cancellation flag, cloneable across threads. Cloned tokens
/// observe the same flag: cancelling any clone cancels the run the
/// token was submitted with.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; every backend observes the
    /// flag at its next chunk-claim boundary.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

/// Why an execution did not produce a result.
#[derive(Debug, Clone, PartialEq)]
pub enum RunError {
    /// The graph failed validation (see [`GraphError`]).
    Graph(GraphError),
    /// The caller's [`CancelToken`] fired; the run aborted at the next
    /// claim boundary and its partial outputs were discarded.
    Cancelled,
    /// The run outlived [`ExecutorOptions::deadline`]
    /// (crate::executor::ExecutorOptions::deadline) and was aborted at
    /// the next claim boundary.
    DeadlineExceeded,
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Graph(e) => write!(f, "{e}"),
            RunError::Cancelled => write!(f, "execution cancelled"),
            RunError::DeadlineExceeded => write!(f, "execution deadline exceeded"),
        }
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RunError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for RunError {
    fn from(e: GraphError) -> Self {
        RunError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let t = CancelToken::new();
        let c = t.clone();
        assert!(!t.is_cancelled());
        c.cancel();
        assert!(t.is_cancelled());
        t.cancel(); // idempotent
        assert!(c.is_cancelled());
    }

    #[test]
    fn run_error_wraps_graph_errors() {
        let e: RunError = GraphError::DuplicateName { name: "A".into() }.into();
        assert!(matches!(e, RunError::Graph(_)));
        assert_eq!(RunError::Cancelled.to_string(), "execution cancelled");
    }
}
