//! Finishing-time estimation (§4.1.2, equation 1).
//!
//! ```text
//! finish = setup + compute + lag + comm + sched
//! ```
//!
//! * `setup` — the maximum of the time to contract one operation's data
//!   onto its partition and expand the other's (modeled as a
//!   logarithmic redistribution of the operation's input bytes);
//! * `compute` — expected mean time `N·µ/p`;
//! * `lag` — expected *maximum* finishing time in excess of the mean,
//!   driven by the task-time distribution `(µ, σ)` \[11, 14\]: the
//!   expected maximum of `min(p, N)` samples, `σ·√(2·ln m)`;
//! * `comm` — the runtime communication estimate (Sarkar–Hennessy
//!   weighted crossing edges, evaluated with runtime values of `N`
//!   and `p`);
//! * `sched` — predicted scheduling events × per-event overhead,
//!   divided across processors.

use crate::chunking::{predicted_chunks, PolicyKind};
use orchestra_machine::MachineConfig;

/// The runtime profile of one parallel operation, as known when the
/// allocation decision is made.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpSpec {
    /// Number of tasks `N`.
    pub tasks: usize,
    /// Sampled mean task time µ (µs).
    pub mean: f64,
    /// Sampled task-time standard deviation σ (µs).
    pub std_dev: f64,
    /// Input bytes that must be contracted/expanded onto the partition.
    pub bytes_in: u64,
    /// Output bytes produced.
    pub bytes_out: u64,
    /// The chunk policy scheduling this operation.
    pub policy: PolicyKind,
}

impl OpSpec {
    /// A spec from sampled costs.
    pub fn from_costs(costs: &[f64], bytes_per_task: u64, policy: PolicyKind) -> Self {
        let s = orchestra_machine::summarize(costs);
        OpSpec {
            tasks: costs.len(),
            mean: s.mean,
            std_dev: s.std_dev,
            bytes_in: costs.len() as u64 * bytes_per_task,
            bytes_out: costs.len() as u64 * bytes_per_task,
            policy,
        }
    }

    /// Coefficient of variation.
    pub fn cv(&self) -> f64 {
        if self.mean <= 0.0 {
            0.0
        } else {
            self.std_dev / self.mean
        }
    }

    /// Total sequential work (µs).
    pub fn total_work(&self) -> f64 {
        self.tasks as f64 * self.mean
    }
}

/// The terms of the finishing-time estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FinishEstimate {
    /// Data contraction/expansion.
    pub setup: f64,
    /// `N·µ/p`.
    pub compute: f64,
    /// Expected straggler excess.
    pub lag: f64,
    /// Communication overhead.
    pub comm: f64,
    /// Scheduling overhead.
    pub sched: f64,
}

impl FinishEstimate {
    /// The total estimate.
    pub fn total(&self) -> f64 {
        self.setup + self.compute + self.lag + self.comm + self.sched
    }
}

/// Fraction of an operation's data assumed to actually move during
/// contraction/expansion and result communication. Owner-computes
/// placement keeps most task data on its home processor; only
/// partition-boundary and re-balanced data travels.
const MIGRATED_FRACTION: f64 = 0.1;

/// Estimates the finishing time of `op` on `p` processors of `cfg`.
///
/// # Panics
///
/// Panics if `p` is zero.
pub fn finish_estimate(op: &OpSpec, p: usize, cfg: &MachineConfig) -> FinishEstimate {
    assert!(p > 0, "estimate needs at least one processor");
    let p_f = p as f64;
    let n_f = op.tasks as f64;

    // setup: contract/expand the migrated share of the input onto the
    // partition along a binomial tree.
    let setup = if p == 1 {
        0.0
    } else {
        let rounds = p_f.log2().ceil();
        rounds * cfg.alpha + cfg.beta * MIGRATED_FRACTION * op.bytes_in as f64 / p_f
    };

    let compute = n_f * op.mean / p_f;

    // lag: expected max of m ≈ min(p, N) per-processor deviations.
    let m = p.min(op.tasks.max(1)) as f64;
    let lag = if m <= 1.0 { 0.0 } else { op.std_dev * (2.0 * m.ln()).sqrt() };

    // comm: per-processor share of migrated output plus latency.
    let comm = if p == 1 {
        0.0
    } else {
        2.0 * cfg.alpha
            + cfg.beta * MIGRATED_FRACTION * (op.bytes_out as f64) / p_f
            + cfg.hop * cfg.diameter() as f64
    };

    // sched: predicted chunk count × overhead, shared across processors.
    let chunks = predicted_chunks(op.policy, op.tasks, p, op.cv());
    let sched = chunks * cfg.sched_overhead / p_f;

    FinishEstimate { setup, compute, lag, comm, sched }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::par_op::{simulate_policy, OpOptions};
    use orchestra_machine::CostDistribution;

    fn spec(n: usize, mean: f64, cv: f64, policy: PolicyKind) -> OpSpec {
        OpSpec {
            tasks: n,
            mean,
            std_dev: mean * cv,
            bytes_in: (n as u64) * 256,
            bytes_out: (n as u64) * 256,
            policy,
        }
    }

    #[test]
    fn compute_dominates_at_small_p() {
        let s = spec(4096, 100.0, 0.1, PolicyKind::Taper);
        let e = finish_estimate(&s, 4, &MachineConfig::ncube2(4));
        assert!(e.compute > e.setup + e.lag + e.comm + e.sched);
    }

    #[test]
    fn estimate_decreases_then_flattens_with_p() {
        let s = spec(4096, 100.0, 0.5, PolicyKind::Taper);
        let e64 = finish_estimate(&s, 64, &MachineConfig::ncube2(64)).total();
        let e512 = finish_estimate(&s, 512, &MachineConfig::ncube2(512)).total();
        assert!(e512 < e64);
        // Diminishing returns: the ratio is far from linear.
        let speedup = e64 / e512;
        assert!(speedup < 8.0, "speedup {speedup} should be sublinear");
    }

    #[test]
    fn lag_grows_with_variance() {
        let regular = spec(1024, 50.0, 0.05, PolicyKind::Taper);
        let irregular = spec(1024, 50.0, 2.0, PolicyKind::Taper);
        let cfg = MachineConfig::ncube2(128);
        let el = finish_estimate(&regular, 128, &cfg);
        let eh = finish_estimate(&irregular, 128, &cfg);
        assert!(eh.lag > 10.0 * el.lag);
        assert!(eh.total() > el.total());
    }

    #[test]
    fn single_processor_is_pure_compute_plus_sched() {
        let s = spec(100, 10.0, 0.3, PolicyKind::Gss);
        let e = finish_estimate(&s, 1, &MachineConfig::ncube2(1));
        assert_eq!(e.setup, 0.0);
        assert_eq!(e.comm, 0.0);
        assert!((e.compute - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn self_sched_pays_most_sched_overhead() {
        let cfg = MachineConfig::ncube2(64);
        let ss = finish_estimate(&spec(4096, 10.0, 0.1, PolicyKind::SelfSched), 64, &cfg);
        let tp = finish_estimate(&spec(4096, 10.0, 0.1, PolicyKind::Taper), 64, &cfg);
        assert!(ss.sched > tp.sched);
    }

    #[test]
    fn estimate_tracks_simulation_within_factor_two() {
        // The estimate guides allocation; it should be in the right
        // ballpark of the simulator on a plain TAPER run.
        let costs = CostDistribution::Bimodal { mean: 50.0, heavy_frac: 0.2, heavy_mult: 5.0 }
            .sample(2048, 33);
        let cfg = MachineConfig::ncube2(64);
        let s = OpSpec::from_costs(&costs, 256, PolicyKind::Taper);
        let est = finish_estimate(&s, 64, &cfg).total();
        let sim =
            simulate_policy(&cfg, 64, &costs, PolicyKind::Taper, &OpOptions::default()).finish;
        let ratio = est / sim;
        assert!((0.5..2.0).contains(&ratio), "estimate {est} vs simulated {sim} (ratio {ratio})");
    }

    #[test]
    fn from_costs_matches_summary() {
        let costs = vec![2.0, 4.0, 6.0];
        let s = OpSpec::from_costs(&costs, 100, PolicyKind::Gss);
        assert_eq!(s.tasks, 3);
        assert!((s.mean - 4.0).abs() < 1e-12);
        assert_eq!(s.bytes_in, 300);
        assert!((s.total_work() - 12.0).abs() < 1e-12);
    }
}
