//! Finishing-time estimation (§4.1.2, equation 1).
//!
//! ```text
//! finish = setup + compute + lag + comm + sched
//! ```
//!
//! * `setup` — the maximum of the time to contract one operation's data
//!   onto its partition and expand the other's (modeled as a
//!   logarithmic redistribution of the operation's input bytes);
//! * `compute` — expected mean time `N·µ/p`;
//! * `lag` — expected *maximum* finishing time in excess of the mean,
//!   driven by the task-time distribution `(µ, σ)` \[11, 14\]: the
//!   expected maximum of `min(p, N)` samples, `σ·√(2·ln m)`;
//! * `comm` — the runtime communication estimate (Sarkar–Hennessy
//!   weighted crossing edges, evaluated with runtime values of `N`
//!   and `p`);
//! * `sched` — predicted scheduling events × per-event overhead,
//!   divided across processors.

use crate::chunking::{predicted_chunks, PolicyKind};
use crate::stats::OnlineStats;
use orchestra_machine::MachineConfig;
use std::sync::OnceLock;

/// The runtime profile of one parallel operation, as known when the
/// allocation decision is made.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpSpec {
    /// Number of tasks `N`.
    pub tasks: usize,
    /// Sampled mean task time µ (µs).
    pub mean: f64,
    /// Sampled task-time standard deviation σ (µs).
    pub std_dev: f64,
    /// Input bytes that must be contracted/expanded onto the partition.
    pub bytes_in: u64,
    /// Output bytes produced.
    pub bytes_out: u64,
    /// The chunk policy scheduling this operation.
    pub policy: PolicyKind,
}

impl OpSpec {
    /// The spec of an operation with no tasks: every field zero. It
    /// is the identity for aggregation and [`finish_estimate`] maps it
    /// to an all-zero estimate, so degenerate ops never skew an
    /// allocation decision.
    pub const fn empty(policy: PolicyKind) -> Self {
        OpSpec { tasks: 0, mean: 0.0, std_dev: 0.0, bytes_in: 0, bytes_out: 0, policy }
    }

    /// A spec from sampled costs. An empty slice yields
    /// [`OpSpec::empty`] — explicitly, rather than by letting
    /// `summarize`'s division guards leak zeros into a spec that still
    /// claims tasks.
    pub fn from_costs(costs: &[f64], bytes_per_task: u64, policy: PolicyKind) -> Self {
        let Some(s) = orchestra_machine::try_summarize(costs) else {
            return OpSpec::empty(policy);
        };
        OpSpec {
            tasks: costs.len(),
            mean: s.mean,
            std_dev: s.std_dev,
            bytes_in: costs.len() as u64 * bytes_per_task,
            bytes_out: costs.len() as u64 * bytes_per_task,
            policy,
        }
    }

    /// A spec from a *live* operation: `remaining` unclaimed tasks and
    /// the µ/σ sampled by its chunk queue so far. Before any samples
    /// exist the spec falls back to unit-cost tasks (`µ = 1, σ = 0`),
    /// so an equalizer over warm-up ops splits processors by task
    /// count — the only signal available — instead of by zeros.
    pub fn from_live(remaining: usize, stats: Option<&OnlineStats>, policy: PolicyKind) -> Self {
        let (mean, std_dev) = match stats {
            Some(s) if s.count() > 0 => (s.mean(), s.std_dev()),
            _ => (1.0, 0.0),
        };
        OpSpec { tasks: remaining, mean, std_dev, bytes_in: 0, bytes_out: 0, policy }
    }

    /// Coefficient of variation.
    pub fn cv(&self) -> f64 {
        if self.mean <= 0.0 {
            0.0
        } else {
            self.std_dev / self.mean
        }
    }

    /// Total sequential work (µs).
    pub fn total_work(&self) -> f64 {
        self.tasks as f64 * self.mean
    }
}

/// The terms of the finishing-time estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FinishEstimate {
    /// Data contraction/expansion.
    pub setup: f64,
    /// `N·µ/p`.
    pub compute: f64,
    /// Expected straggler excess.
    pub lag: f64,
    /// Communication overhead.
    pub comm: f64,
    /// Scheduling overhead.
    pub sched: f64,
}

impl FinishEstimate {
    /// The total estimate.
    pub fn total(&self) -> f64 {
        self.setup + self.compute + self.lag + self.comm + self.sched
    }
}

/// Fraction of an operation's data assumed to actually move during
/// contraction/expansion and result communication. Owner-computes
/// placement keeps most task data on its home processor; only
/// partition-boundary and re-balanced data travels.
const MIGRATED_FRACTION: f64 = 0.1;

/// Estimates the finishing time of `op` on `p` processors of `cfg`.
/// An op with no tasks finishes instantly: every term is zero.
///
/// # Panics
///
/// Panics if `p` is zero.
pub fn finish_estimate(op: &OpSpec, p: usize, cfg: &MachineConfig) -> FinishEstimate {
    assert!(p > 0, "estimate needs at least one processor");
    if op.tasks == 0 {
        return FinishEstimate { setup: 0.0, compute: 0.0, lag: 0.0, comm: 0.0, sched: 0.0 };
    }
    let p_f = p as f64;
    let n_f = op.tasks as f64;

    // setup: contract/expand the migrated share of the input onto the
    // partition along a binomial tree.
    let setup = if p == 1 {
        0.0
    } else {
        let rounds = p_f.log2().ceil();
        rounds * cfg.alpha + cfg.beta * MIGRATED_FRACTION * op.bytes_in as f64 / p_f
    };

    let compute = n_f * op.mean / p_f;

    // lag: expected max of m ≈ min(p, N) per-processor deviations.
    let m = p.min(op.tasks.max(1)) as f64;
    let lag = if m <= 1.0 { 0.0 } else { op.std_dev * (2.0 * m.ln()).sqrt() };

    // comm: per-processor share of migrated output plus latency.
    let comm = if p == 1 {
        0.0
    } else {
        2.0 * cfg.alpha
            + cfg.beta * MIGRATED_FRACTION * (op.bytes_out as f64) / p_f
            + cfg.hop * cfg.diameter() as f64
    };

    // sched: predicted chunk count × overhead, shared across processors.
    let chunks = predicted_chunks(op.policy, op.tasks, p, op.cv());
    let sched = chunks * cfg.sched_overhead / p_f;

    FinishEstimate { setup, compute, lag, comm, sched }
}

/// Overhead constants measured on *this* host, replacing the nCUBE-2
/// [`MachineConfig`] numbers when the estimate steers real threads.
/// The synthetic config models a 1024-node hypercube; a shared-memory
/// worker pool has no message latency and its per-claim cost is
/// whatever one `fetch_add` on a contended queue actually takes here.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostCalibration {
    /// Measured cost of one scheduling event — one chunk claim on a
    /// [`ChunkQueue`](crate::threaded::queue::ChunkQueue) — in µs.
    pub sched_overhead_us: f64,
    /// Measured cost of one watermark publication — one
    /// [`commit_range`](crate::alloc::OutputArena::commit_range) that
    /// advances the frontier — in µs. The α fed to
    /// [`choose_batch_params`](crate::choose_batch_params) on the real
    /// backends.
    pub publish_alpha_us: f64,
    /// Measured per-byte arena read/copy cost in µs/B. The β fed to
    /// [`choose_batch_params`](crate::choose_batch_params) on the real
    /// backends.
    pub copy_beta_us: f64,
}

/// Clamp band for the measured per-publish cost α (µs) — the same
/// band `finish_estimate_live` uses for per-claim overhead.
const ALPHA_CLAMP: (f64, f64) = (0.001, 10.0);
/// Clamp band for the measured per-byte cost β (µs/B). A modern core
/// streams ≥ 10 GB/s (1e-4 µs/B); the band leaves two orders of
/// headroom either side so one descheduled rep cannot poison b*.
const BETA_CLAMP: (f64, f64) = (1e-5, 0.1);

impl HostCalibration {
    /// A calibration with a fixed claim overhead and nominal α/β (for
    /// tests and replay, where measuring would be nondeterministic).
    pub const fn with_overhead(sched_overhead_us: f64) -> Self {
        HostCalibration { sched_overhead_us, publish_alpha_us: 0.05, copy_beta_us: 1e-4 }
    }

    /// Measures the per-claim cost by draining a throwaway
    /// self-scheduling queue (one task per claim, so elapsed/tasks is
    /// the pure scheduling hot path), the per-publish cost by driving
    /// a throwaway arena watermark one commit at a time, and the
    /// per-byte cost by summing a cold slab. All three are clamped to
    /// sane bands so a descheduled measurement on a loaded host cannot
    /// poison every later allocation or batching decision.
    pub fn measure() -> Self {
        use crate::threaded::queue::ChunkQueue;
        const TASKS: usize = 8192;
        let q = ChunkQueue::new(PolicyKind::SelfSched.instantiate(TASKS), TASKS, 1);
        let t0 = std::time::Instant::now();
        while q.claim().is_some() {}
        let per_claim_us = t0.elapsed().as_secs_f64() * 1e6 / TASKS as f64;

        // α: one-task commits with batch 1, so every commit publishes —
        // lock, frontier bump, Release store, counter.
        const PUBS: usize = 4096;
        let arena = crate::alloc::OutputArena::for_ops([PUBS]);
        let t0 = std::time::Instant::now();
        for i in 0..PUBS {
            arena.commit_range(0, i, 1, 1);
        }
        let per_publish_us = t0.elapsed().as_secs_f64() * 1e6 / PUBS as f64;

        // β: stream the slab once; reading is what consumers pay.
        // Safety: the arena is local to this function and no writer
        // holds a view.
        let slab = unsafe { arena.op_slice(0) };
        let t0 = std::time::Instant::now();
        let sum: f64 = std::hint::black_box(slab).iter().sum();
        let bytes = (PUBS * std::mem::size_of::<f64>()) as f64;
        let per_byte_us = t0.elapsed().as_secs_f64() * 1e6 / bytes;
        std::hint::black_box(sum);

        HostCalibration {
            sched_overhead_us: per_claim_us.clamp(0.001, 10.0),
            publish_alpha_us: per_publish_us.clamp(ALPHA_CLAMP.0, ALPHA_CLAMP.1),
            copy_beta_us: per_byte_us.clamp(BETA_CLAMP.0, BETA_CLAMP.1),
        }
    }

    /// The process-wide calibration, measured once on first use.
    pub fn get() -> HostCalibration {
        static CAL: OnceLock<HostCalibration> = OnceLock::new();
        *CAL.get_or_init(HostCalibration::measure)
    }

    /// b\* for a streamed edge of `tasks` items of `item_bytes` each,
    /// priced at this host's measured α/β.
    pub fn stream_batch(&self, tasks: usize, item_bytes: u64) -> usize {
        crate::choose_batch_params(tasks, item_bytes, self.publish_alpha_us, self.copy_beta_us)
    }
}

/// Estimates the finishing time of a live operation on `p` workers of
/// a shared-memory pool: the §4.1.2 expression with the message-passing
/// terms dropped (`setup = comm = 0` — no data is contracted onto a
/// partition; workers share one address space) and `sched` priced at
/// the host's measured claim cost instead of the nCUBE-2 constant.
/// `op` should come from [`OpSpec::from_live`] so `N`, µ, and σ are
/// the queue's current remaining count and sampled statistics.
///
/// # Panics
///
/// Panics if `p` is zero.
pub fn finish_estimate_live(op: &OpSpec, p: usize, cal: &HostCalibration) -> FinishEstimate {
    assert!(p > 0, "estimate needs at least one processor");
    if op.tasks == 0 {
        return FinishEstimate { setup: 0.0, compute: 0.0, lag: 0.0, comm: 0.0, sched: 0.0 };
    }
    let p_f = p as f64;
    let compute = op.tasks as f64 * op.mean / p_f;
    let m = p.min(op.tasks) as f64;
    let lag = if m <= 1.0 { 0.0 } else { op.std_dev * (2.0 * m.ln()).sqrt() };
    let chunks = predicted_chunks(op.policy, op.tasks, p, op.cv());
    let sched = chunks * cal.sched_overhead_us / p_f;
    FinishEstimate { setup: 0.0, compute, lag, comm: 0.0, sched }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::par_op::{simulate_policy, OpOptions};
    use orchestra_machine::CostDistribution;

    fn spec(n: usize, mean: f64, cv: f64, policy: PolicyKind) -> OpSpec {
        OpSpec {
            tasks: n,
            mean,
            std_dev: mean * cv,
            bytes_in: (n as u64) * 256,
            bytes_out: (n as u64) * 256,
            policy,
        }
    }

    #[test]
    fn compute_dominates_at_small_p() {
        let s = spec(4096, 100.0, 0.1, PolicyKind::Taper);
        let e = finish_estimate(&s, 4, &MachineConfig::ncube2(4));
        assert!(e.compute > e.setup + e.lag + e.comm + e.sched);
    }

    #[test]
    fn estimate_decreases_then_flattens_with_p() {
        let s = spec(4096, 100.0, 0.5, PolicyKind::Taper);
        let e64 = finish_estimate(&s, 64, &MachineConfig::ncube2(64)).total();
        let e512 = finish_estimate(&s, 512, &MachineConfig::ncube2(512)).total();
        assert!(e512 < e64);
        // Diminishing returns: the ratio is far from linear.
        let speedup = e64 / e512;
        assert!(speedup < 8.0, "speedup {speedup} should be sublinear");
    }

    #[test]
    fn lag_grows_with_variance() {
        let regular = spec(1024, 50.0, 0.05, PolicyKind::Taper);
        let irregular = spec(1024, 50.0, 2.0, PolicyKind::Taper);
        let cfg = MachineConfig::ncube2(128);
        let el = finish_estimate(&regular, 128, &cfg);
        let eh = finish_estimate(&irregular, 128, &cfg);
        assert!(eh.lag > 10.0 * el.lag);
        assert!(eh.total() > el.total());
    }

    #[test]
    fn single_processor_is_pure_compute_plus_sched() {
        let s = spec(100, 10.0, 0.3, PolicyKind::Gss);
        let e = finish_estimate(&s, 1, &MachineConfig::ncube2(1));
        assert_eq!(e.setup, 0.0);
        assert_eq!(e.comm, 0.0);
        assert!((e.compute - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn self_sched_pays_most_sched_overhead() {
        let cfg = MachineConfig::ncube2(64);
        let ss = finish_estimate(&spec(4096, 10.0, 0.1, PolicyKind::SelfSched), 64, &cfg);
        let tp = finish_estimate(&spec(4096, 10.0, 0.1, PolicyKind::Taper), 64, &cfg);
        assert!(ss.sched > tp.sched);
    }

    #[test]
    fn estimate_tracks_simulation_within_factor_two() {
        // The estimate guides allocation; it should be in the right
        // ballpark of the simulator on a plain TAPER run.
        let costs = CostDistribution::Bimodal { mean: 50.0, heavy_frac: 0.2, heavy_mult: 5.0 }
            .sample(2048, 33);
        let cfg = MachineConfig::ncube2(64);
        let s = OpSpec::from_costs(&costs, 256, PolicyKind::Taper);
        let est = finish_estimate(&s, 64, &cfg).total();
        let sim =
            simulate_policy(&cfg, 64, &costs, PolicyKind::Taper, &OpOptions::default()).finish;
        let ratio = est / sim;
        assert!((0.5..2.0).contains(&ratio), "estimate {est} vs simulated {sim} (ratio {ratio})");
    }

    #[test]
    fn from_costs_matches_summary() {
        let costs = vec![2.0, 4.0, 6.0];
        let s = OpSpec::from_costs(&costs, 100, PolicyKind::Gss);
        assert_eq!(s.tasks, 3);
        assert!((s.mean - 4.0).abs() < 1e-12);
        assert_eq!(s.bytes_in, 300);
        assert!((s.total_work() - 12.0).abs() < 1e-12);
    }

    #[test]
    fn empty_costs_yield_the_explicit_empty_spec() {
        let s = OpSpec::from_costs(&[], 256, PolicyKind::Taper);
        assert_eq!(s, OpSpec::empty(PolicyKind::Taper));
        assert_eq!(s.tasks, 0);
        assert_eq!(s.total_work(), 0.0);
        // And the estimator maps it to a zero estimate instead of
        // folding a zero mean into a nonzero sched/setup term.
        let e = finish_estimate(&s, 8, &MachineConfig::ncube2(8));
        assert_eq!(e.total(), 0.0);
        let el = finish_estimate_live(&s, 8, &HostCalibration::with_overhead(0.5));
        assert_eq!(el.total(), 0.0);
    }

    #[test]
    fn live_spec_falls_back_to_task_counts_before_samples() {
        let cold = OpSpec::from_live(100, None, PolicyKind::Taper);
        assert_eq!((cold.tasks, cold.mean, cold.std_dev), (100, 1.0, 0.0));
        let empty = crate::stats::OnlineStats::new();
        let still_cold = OpSpec::from_live(100, Some(&empty), PolicyKind::Taper);
        assert_eq!(still_cold.mean, 1.0);
        let mut warm = crate::stats::OnlineStats::new();
        for c in [2.0, 4.0, 6.0] {
            warm.observe(c);
        }
        let live = OpSpec::from_live(50, Some(&warm), PolicyKind::Taper);
        assert_eq!(live.tasks, 50);
        assert!((live.mean - 4.0).abs() < 1e-12);
        assert!(live.std_dev > 0.0);
    }

    #[test]
    fn live_estimate_drops_message_passing_terms() {
        let s = spec(4096, 100.0, 0.5, PolicyKind::Taper);
        let e = finish_estimate_live(&s, 8, &HostCalibration::with_overhead(0.2));
        assert_eq!(e.setup, 0.0);
        assert_eq!(e.comm, 0.0);
        assert!(e.compute > 0.0 && e.lag > 0.0 && e.sched > 0.0);
        // More workers, less compute share; lag persists.
        let e16 = finish_estimate_live(&s, 16, &HostCalibration::with_overhead(0.2));
        assert!(e16.compute < e.compute);
    }

    #[test]
    fn host_calibration_measures_within_the_clamp_band() {
        let cal = HostCalibration::measure();
        assert!(
            (0.001..=10.0).contains(&cal.sched_overhead_us),
            "claim cost {} µs outside clamp",
            cal.sched_overhead_us
        );
        assert!(
            (0.001..=10.0).contains(&cal.publish_alpha_us),
            "publish cost {} µs outside clamp",
            cal.publish_alpha_us
        );
        assert!(
            (1e-5..=0.1).contains(&cal.copy_beta_us),
            "copy cost {} µs/B outside clamp",
            cal.copy_beta_us
        );
        // The process-wide instance is stable across calls.
        assert_eq!(HostCalibration::get(), HostCalibration::get());
    }

    #[test]
    fn stream_batch_uses_measured_costs() {
        // Latency-heavy host: batch aggressively. Bandwidth-heavy:
        // stream nearly item by item.
        let slow_pub =
            HostCalibration { sched_overhead_us: 0.1, publish_alpha_us: 10.0, copy_beta_us: 1e-5 };
        let slow_copy =
            HostCalibration { sched_overhead_us: 0.1, publish_alpha_us: 0.001, copy_beta_us: 0.1 };
        assert!(slow_pub.stream_batch(1024, 8) > slow_copy.stream_batch(1024, 8));
        assert!(slow_copy.stream_batch(1024, 8) <= 4);
    }
}
