//! Online task-time statistics and cost functions (§4.1.1).
//!
//! "The runtime system samples task execution times to compute their
//! statistical mean (µ) and variance (σ²)." A further sampling pass
//! builds a *cost function* estimating task time as a function of
//! iteration number; TAPER scales chunk sizes by `s = µg/µc`, the ratio
//! of the global mean to the mean of the tasks in the current chunk.

/// Welford online mean/variance accumulator.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        OnlineStats::default()
    }

    /// Observes one sample.
    pub fn observe(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 before any observation).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance.
    pub fn variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Coefficient of variation σ/µ (0 when the mean is 0).
    pub fn cv(&self) -> f64 {
        if self.mean.abs() < f64::EPSILON {
            0.0
        } else {
            self.std_dev() / self.mean
        }
    }

    /// Merges another accumulator into this one (Chan et al.'s
    /// parallel Welford combine): the result is mathematically
    /// identical to having observed both sample streams in sequence.
    /// This is what lets workers accumulate task times locally and
    /// fold them into a shared policy once per chunk instead of
    /// taking a lock per task.
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let (n1, n2) = (self.n as f64, other.n as f64);
        let n = n1 + n2;
        let delta = other.mean - self.mean;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
    }

    /// Observes the same value `k` times (a weighted observation):
    /// shifts the mean exactly as `k` calls to [`observe`](Self::observe)
    /// would, with zero within-group spread.
    pub fn observe_n(&mut self, x: f64, k: u64) {
        self.merge(&OnlineStats { n: k, mean: x, m2: 0.0 });
    }

    /// The coefficient of variation, or `None` until at least `min`
    /// samples have been observed. Adaptive gates (distributed TAPER's
    /// re-assignment rule) need "no signal yet" to be distinguishable
    /// from "measured ≈ 0": acting on a cv estimated from one or two
    /// samples would steal work on noise.
    pub fn cv_if_sampled(&self, min: u64) -> Option<f64> {
        if self.n >= min.max(1) {
            Some(self.cv())
        } else {
            None
        }
    }

    /// The second central moment Σ(x−µ)² — the third number (besides
    /// `count` and `mean`) a checkpoint must persist to reconstruct
    /// the accumulator exactly.
    pub fn m2(&self) -> f64 {
        self.m2
    }

    /// Rebuilds an accumulator from persisted moments: the inverse of
    /// reading [`count`](Self::count) / [`mean`](Self::mean) /
    /// [`m2`](Self::m2). `merge`-ing the result behaves exactly like
    /// the original accumulator (checkpoint restore path).
    pub fn from_parts(count: u64, mean: f64, m2: f64) -> Self {
        if count == 0 {
            return OnlineStats::new();
        }
        OnlineStats { n: count, mean, m2: m2.max(0.0) }
    }
}

/// Work-stealing counters bucketed by machine-hierarchy distance.
///
/// The pool's steal schedule tags every victim with a distance class
/// (0 = SMT sibling, 1 = same NUMA node/package, 2 = remote node); a
/// worker records each successful steal here and the pool merges the
/// per-worker accumulators after the run. Distance classes are plain
/// numbers at this layer so the statistics module stays independent of
/// the topology types that produce them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StealStats {
    /// Successful steals, all distances.
    pub steals: u64,
    /// Steals from an SMT sibling (class 0).
    pub sibling_steals: u64,
    /// Steals within the thief's node/package (class 1).
    pub node_steals: u64,
    /// Steals across a node boundary (class 2).
    pub remote_steals: u64,
    /// Extra tokens taken beyond the first by remote steal batching.
    pub batched_tokens: u64,
    /// Sum of distance classes over all steals (for the mean).
    pub distance_sum: u64,
}

impl StealStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        StealStats::default()
    }

    /// Records one successful steal at `distance_class` (0 sibling,
    /// 1 node, 2 remote) that took `extra_tokens` tokens beyond the
    /// first (nonzero only for batched remote steals).
    pub fn record(&mut self, distance_class: u64, extra_tokens: u64) {
        self.steals += 1;
        match distance_class {
            0 => self.sibling_steals += 1,
            1 => self.node_steals += 1,
            _ => self.remote_steals += 1,
        }
        self.batched_tokens += extra_tokens;
        self.distance_sum += distance_class;
    }

    /// Folds another worker's counters into this one.
    pub fn merge(&mut self, other: &StealStats) {
        self.steals += other.steals;
        self.sibling_steals += other.sibling_steals;
        self.node_steals += other.node_steals;
        self.remote_steals += other.remote_steals;
        self.batched_tokens += other.batched_tokens;
        self.distance_sum += other.distance_sum;
    }

    /// Mean steal distance class (0 with no steals).
    pub fn mean_distance(&self) -> f64 {
        if self.steals == 0 {
            0.0
        } else {
            self.distance_sum as f64 / self.steals as f64
        }
    }
}

/// A positional cost function: mean task cost per bucket of the
/// iteration space, built from samples.
#[derive(Debug, Clone)]
pub struct CostFn {
    buckets: Vec<OnlineStats>,
    total_tasks: usize,
}

impl CostFn {
    /// A cost function with `buckets` buckets over `total_tasks`
    /// iterations.
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is zero.
    pub fn new(buckets: usize, total_tasks: usize) -> Self {
        assert!(buckets > 0, "cost function needs at least one bucket");
        CostFn { buckets: vec![OnlineStats::new(); buckets], total_tasks: total_tasks.max(1) }
    }

    fn bucket_of(&self, index: usize) -> usize {
        (index * self.buckets.len() / self.total_tasks).min(self.buckets.len() - 1)
    }

    /// Records a sampled task time at the given iteration index.
    pub fn observe(&mut self, index: usize, cost: f64) {
        let b = self.bucket_of(index);
        self.buckets[b].observe(cost);
    }

    /// Records a completed chunk's mean task time over the index span
    /// `[start, start+len)`: each overlapped bucket receives the mean
    /// weighted by how many of the chunk's indices fall in it. Bucket
    /// means — all the cost function reads — match per-task feeding of
    /// the same mean; only within-chunk spread is dropped.
    pub fn observe_span(&mut self, start: usize, len: usize, mean_cost: f64) {
        let mut i = start;
        let end = start + len;
        while i < end {
            let b = self.bucket_of(i);
            // Last index belonging to bucket `b` (bucket_of is
            // monotone in the index).
            let bucket_end = ((b + 1) * self.total_tasks).div_ceil(self.buckets.len());
            let span = end.min(bucket_end.max(i + 1)) - i;
            self.buckets[b].observe_n(mean_cost, span as u64);
            i += span;
        }
    }

    /// Estimated cost of the task at `index`: its bucket's mean, the
    /// global mean when the bucket is unsampled, or 0 with no samples.
    pub fn estimate(&self, index: usize) -> f64 {
        let b = &self.buckets[self.bucket_of(index)];
        if b.count() > 0 {
            b.mean()
        } else {
            self.global_mean()
        }
    }

    /// Mean over all samples.
    pub fn global_mean(&self) -> f64 {
        let (mut total, mut n) = (0.0, 0u64);
        for b in &self.buckets {
            total += b.mean() * b.count() as f64;
            n += b.count();
        }
        if n == 0 {
            0.0
        } else {
            total / n as f64
        }
    }

    /// The chunk scaling factor `s = µg/µc` for a chunk covering
    /// `[start, start+len)` (1.0 with no data).
    pub fn chunk_scale(&self, start: usize, len: usize) -> f64 {
        let g = self.global_mean();
        if g <= 0.0 || len == 0 {
            return 1.0;
        }
        let mut c = 0.0;
        for i in start..start + len {
            c += self.estimate(i.min(self.total_tasks - 1));
        }
        c /= len as f64;
        if c <= 0.0 {
            1.0
        } else {
            g / c
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_direct() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.observe(x);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert!((s.cv() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.cv(), 0.0);
    }

    #[test]
    fn merge_matches_sequential_observation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0, 1.5, 12.25];
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.observe(x);
        }
        // Split at every point, including the empty prefix/suffix.
        for split in 0..=xs.len() {
            let (mut a, mut b) = (OnlineStats::new(), OnlineStats::new());
            for &x in &xs[..split] {
                a.observe(x);
            }
            for &x in &xs[split..] {
                b.observe(x);
            }
            a.merge(&b);
            assert_eq!(a.count(), whole.count(), "split {split}");
            assert!((a.mean() - whole.mean()).abs() < 1e-12, "split {split}");
            assert!((a.variance() - whole.variance()).abs() < 1e-12, "split {split}");
        }
    }

    #[test]
    fn cv_if_sampled_gates_on_count() {
        let mut s = OnlineStats::new();
        assert_eq!(s.cv_if_sampled(4), None);
        for x in [2.0, 4.0, 4.0] {
            s.observe(x);
        }
        assert_eq!(s.cv_if_sampled(4), None, "3 < 4 samples");
        s.observe(6.0);
        let cv = s.cv_if_sampled(4).expect("4 samples reached");
        assert!((cv - s.cv()).abs() < 1e-15);
        // min of 0 behaves like min of 1 (an empty accumulator never
        // reports a cv).
        assert_eq!(OnlineStats::new().cv_if_sampled(0), None);
    }

    #[test]
    fn observe_n_matches_repeated_observe() {
        let mut repeated = OnlineStats::new();
        let mut weighted = OnlineStats::new();
        repeated.observe(2.0);
        weighted.observe(2.0);
        for _ in 0..5 {
            repeated.observe(7.5);
        }
        weighted.observe_n(7.5, 5);
        assert_eq!(repeated.count(), weighted.count());
        assert!((repeated.mean() - weighted.mean()).abs() < 1e-12);
        assert!((repeated.variance() - weighted.variance()).abs() < 1e-12);
    }

    #[test]
    fn observe_span_matches_per_index_means() {
        // Feeding a chunk mean across a bucket-straddling span must
        // leave every bucket mean identical to feeding that mean at
        // each index individually.
        let mut by_span = CostFn::new(4, 100);
        let mut by_index = CostFn::new(4, 100);
        by_span.observe_span(20, 40, 3.0); // straddles buckets 0..=2
        for i in 20..60 {
            by_index.observe(i, 3.0);
        }
        for probe in [0, 26, 49, 51, 99] {
            assert!(
                (by_span.estimate(probe) - by_index.estimate(probe)).abs() < 1e-12,
                "estimate diverges at {probe}"
            );
        }
        assert!((by_span.global_mean() - by_index.global_mean()).abs() < 1e-12);
    }

    #[test]
    fn cost_fn_buckets_positionally() {
        let mut f = CostFn::new(4, 100);
        // First half cheap, second half expensive.
        for i in 0..50 {
            f.observe(i, 1.0);
        }
        for i in 50..100 {
            f.observe(i, 9.0);
        }
        assert!((f.estimate(10) - 1.0).abs() < 1e-9);
        assert!((f.estimate(90) - 9.0).abs() < 1e-9);
        assert!((f.global_mean() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn chunk_scale_shrinks_expensive_regions() {
        let mut f = CostFn::new(4, 100);
        for i in 0..50 {
            f.observe(i, 1.0);
        }
        for i in 50..100 {
            f.observe(i, 9.0);
        }
        // Expensive region: scale < 1 (schedule smaller chunks).
        assert!(f.chunk_scale(75, 10) < 1.0);
        // Cheap region: scale > 1.
        assert!(f.chunk_scale(10, 10) > 1.0);
    }

    #[test]
    fn unsampled_bucket_falls_back_to_global() {
        let mut f = CostFn::new(10, 100);
        f.observe(0, 4.0);
        assert!((f.estimate(95) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn no_samples_scale_is_one() {
        let f = CostFn::new(4, 100);
        assert_eq!(f.chunk_scale(0, 10), 1.0);
    }

    #[test]
    fn steal_stats_bucket_and_merge() {
        let mut a = StealStats::new();
        a.record(0, 0); // sibling
        a.record(1, 0); // same node
        a.record(2, 3); // remote, batched 3 extra tokens
        assert_eq!(a.steals, 3);
        assert_eq!((a.sibling_steals, a.node_steals, a.remote_steals), (1, 1, 1));
        assert_eq!(a.batched_tokens, 3);
        assert!((a.mean_distance() - 1.0).abs() < 1e-12);
        let mut b = StealStats::new();
        b.record(2, 1);
        b.merge(&a);
        assert_eq!(b.steals, 4);
        assert_eq!(b.remote_steals, 2);
        assert_eq!(b.batched_tokens, 4);
        assert!((b.mean_distance() - 1.25).abs() < 1e-12);
        // Internal consistency: class buckets partition the steals.
        assert_eq!(b.sibling_steals + b.node_steals + b.remote_steals, b.steals);
        assert_eq!(StealStats::new().mean_distance(), 0.0);
    }
}
