//! Online task-time statistics and cost functions (§4.1.1).
//!
//! "The runtime system samples task execution times to compute their
//! statistical mean (µ) and variance (σ²)." A further sampling pass
//! builds a *cost function* estimating task time as a function of
//! iteration number; TAPER scales chunk sizes by `s = µg/µc`, the ratio
//! of the global mean to the mean of the tasks in the current chunk.

/// Welford online mean/variance accumulator.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        OnlineStats::default()
    }

    /// Observes one sample.
    pub fn observe(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 before any observation).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance.
    pub fn variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Coefficient of variation σ/µ (0 when the mean is 0).
    pub fn cv(&self) -> f64 {
        if self.mean.abs() < f64::EPSILON {
            0.0
        } else {
            self.std_dev() / self.mean
        }
    }
}

/// A positional cost function: mean task cost per bucket of the
/// iteration space, built from samples.
#[derive(Debug, Clone)]
pub struct CostFn {
    buckets: Vec<OnlineStats>,
    total_tasks: usize,
}

impl CostFn {
    /// A cost function with `buckets` buckets over `total_tasks`
    /// iterations.
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is zero.
    pub fn new(buckets: usize, total_tasks: usize) -> Self {
        assert!(buckets > 0, "cost function needs at least one bucket");
        CostFn { buckets: vec![OnlineStats::new(); buckets], total_tasks: total_tasks.max(1) }
    }

    fn bucket_of(&self, index: usize) -> usize {
        (index * self.buckets.len() / self.total_tasks).min(self.buckets.len() - 1)
    }

    /// Records a sampled task time at the given iteration index.
    pub fn observe(&mut self, index: usize, cost: f64) {
        let b = self.bucket_of(index);
        self.buckets[b].observe(cost);
    }

    /// Estimated cost of the task at `index`: its bucket's mean, the
    /// global mean when the bucket is unsampled, or 0 with no samples.
    pub fn estimate(&self, index: usize) -> f64 {
        let b = &self.buckets[self.bucket_of(index)];
        if b.count() > 0 {
            b.mean()
        } else {
            self.global_mean()
        }
    }

    /// Mean over all samples.
    pub fn global_mean(&self) -> f64 {
        let (mut total, mut n) = (0.0, 0u64);
        for b in &self.buckets {
            total += b.mean() * b.count() as f64;
            n += b.count();
        }
        if n == 0 {
            0.0
        } else {
            total / n as f64
        }
    }

    /// The chunk scaling factor `s = µg/µc` for a chunk covering
    /// `[start, start+len)` (1.0 with no data).
    pub fn chunk_scale(&self, start: usize, len: usize) -> f64 {
        let g = self.global_mean();
        if g <= 0.0 || len == 0 {
            return 1.0;
        }
        let mut c = 0.0;
        for i in start..start + len {
            c += self.estimate(i.min(self.total_tasks - 1));
        }
        c /= len as f64;
        if c <= 0.0 {
            1.0
        } else {
            g / c
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_direct() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.observe(x);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert!((s.cv() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.cv(), 0.0);
    }

    #[test]
    fn cost_fn_buckets_positionally() {
        let mut f = CostFn::new(4, 100);
        // First half cheap, second half expensive.
        for i in 0..50 {
            f.observe(i, 1.0);
        }
        for i in 50..100 {
            f.observe(i, 9.0);
        }
        assert!((f.estimate(10) - 1.0).abs() < 1e-9);
        assert!((f.estimate(90) - 9.0).abs() < 1e-9);
        assert!((f.global_mean() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn chunk_scale_shrinks_expensive_regions() {
        let mut f = CostFn::new(4, 100);
        for i in 0..50 {
            f.observe(i, 1.0);
        }
        for i in 50..100 {
            f.observe(i, 9.0);
        }
        // Expensive region: scale < 1 (schedule smaller chunks).
        assert!(f.chunk_scale(75, 10) < 1.0);
        // Cheap region: scale > 1.
        assert!(f.chunk_scale(10, 10) > 1.0);
    }

    #[test]
    fn unsampled_bucket_falls_back_to_global() {
        let mut f = CostFn::new(10, 100);
        f.observe(0, 4.0);
        assert!((f.estimate(95) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn no_samples_scale_is_one() {
        let f = CostFn::new(4, 100);
        assert_eq!(f.chunk_scale(0, 10), 1.0);
    }
}
