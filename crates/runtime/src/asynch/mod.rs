//! Async cooperative executor backend: the expanded op DAG as futures.
//!
//! The third and fourth backends bracket the orchestration layer from
//! opposite sides: [`threaded`](crate::threaded) gives every worker a
//! preemptive OS thread; this module multiplexes *many in-flight
//! operations* over a small pool of driver threads running hand-rolled
//! futures (see [`driver`] — no tokio, in the spirit of the in-tree
//! shims). Ops become futures that `await` their DAG predecessors via
//! readiness counters ([`driver::DepGate`]), and chunk claims reuse
//! the existing [`ChunkQueue`] machinery — lock-free fixed schedules,
//! TAPER behind its short mutex — but **yield at chunk boundaries**
//! instead of blocking, so a driver interleaves chunks of every ready
//! op and the exactly-once claim invariants get stressed by
//! interleavings real threads rarely produce (each op gets *more
//! claimer futures than drivers*, deliberately oversubscribed).
//!
//! Two properties the differential suites pin down:
//!
//! * **Exactly-once**: a task index is executed once no matter how
//!   claimer futures interleave — the claim is the serialization
//!   point (`ChunkQueue::claim`), and a claimed chunk is executed to
//!   completion between two yield points by a single future.
//! * **Determinism at one driver**: with `drivers = 1` there is a
//!   single run queue, every yield requeues FIFO at its back, gate
//!   wakes route through the driver's LIFO slot in a fixed order, and
//!   the adaptive policies are fed *deterministic cost hints* (like
//!   the dist backend's control plane), so the whole schedule — chunk
//!   sizes, claim order, yield counts — replays identically run over
//!   run. At several drivers the run queues are per-driver with
//!   LIFO-slot wakes and steal-half balancing (see [`driver`]).

pub(crate) mod driver;

use crate::alloc::{allocate_many_with, AllocParams, OutputArena, Publication};
use crate::cancel::RunError;
use crate::checkpoint::{
    op_snapshot, plan_fingerprint, CancelCtl, KillMode, OpSnapshot, ResumeState, RunCtl,
};
use crate::chunking::PolicyKind;
use crate::executor::{costs_of_node, ExecutionReport, ExecutorOptions, NodeReport};
use crate::finish::{finish_estimate_live, HostCalibration, OpSpec};
use crate::stats::OnlineStats;
use crate::threaded::queue::{BoundedClaim, Chunk, ChunkQueue};
use crate::threaded::{build_plan, AccessPattern, TaskCtx, TaskKernel};
use driver::{DepGate, DriverRecord, Sched, TaskFuture, TaskSlot};
use orchestra_delirium::{DelirGraph, Node};
use orchestra_machine::{ProcStats, RunStats};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::task::{Poll, Waker};
use std::time::Instant;

/// One operation instance, shared by its claimer futures.
struct AsyncOp {
    name: String,
    node: usize,
    iter: usize,
    costs: Vec<f64>,
    queue: ChunkQueue,
    /// Opens when every DAG predecessor has completed.
    gate: DepGate,
    dependents: Vec<usize>,
    /// Tasks not yet accounted by a finished claimer; the claimer that
    /// drops this to zero completes the op.
    outstanding: AtomicUsize,
    /// Plan indices of this op's predecessors, in dep order — the
    /// arena slices handed to claimers as [`TaskCtx::inputs`].
    input_ops: Vec<usize>,
    executed: Vec<AtomicU32>,
    /// First-claim time, µs since run start (f64 bits; MAX = never).
    started_bits: AtomicU64,
    /// Completion time, µs since run start (f64 bits; MAX = never).
    finished_bits: AtomicU64,
    /// Chunk-boundary yields taken by this op's claimers.
    yields: AtomicU64,
    /// Per-task restored-from-snapshot flags (empty on a fresh run).
    restored: Vec<bool>,
    /// Queue-index → task-index translation for resumed ops (`None` =
    /// identity; the queue schedules only the pending tasks, packed).
    remap: Option<Vec<usize>>,
    /// Predecessors feeding this op through a *streamed* edge: claims
    /// are bounded by the minimum of their published watermarks, so
    /// chunks start before these producers complete. Always a subset
    /// of `input_ops`.
    stream_inputs: Vec<usize>,
    /// Dependents consuming this op through a streamed edge: their
    /// gates arrive at this op's *first watermark publication* (not at
    /// completion), and later publications simply raise the prefix
    /// their bounded claims may cover.
    stream_dependents: Vec<usize>,
    /// Completed tasks coalesced per watermark publication (the §4.1
    /// batch size b*); `tasks` for non-streamed producers.
    stream_batch: usize,
    /// Wakers of consumer claimers parked because this producer's
    /// watermark does not yet cover their next chunk. Drained (and
    /// woken) on every publication; the waiter re-checks the watermark
    /// after registering, so a publication racing the registration
    /// cannot be lost.
    stream_waiters: Mutex<Vec<Waker>>,
    /// Orphaned-chunk hand-off between this op's claimer futures under
    /// fault injection.
    board: Mutex<OrphanBoard>,
}

impl AsyncOp {
    /// Translates a queue index to the op-local task index.
    #[inline]
    fn task_of(&self, qi: usize) -> usize {
        match &self.remap {
            Some(r) => r[qi],
            None => qi,
        }
    }

    /// Highest claimable task bound right now: the minimum watermark
    /// across streamed inputs (`usize::MAX` when every edge is
    /// whole-op, so the bounded claim degenerates to the plain one).
    #[inline]
    fn stream_limit(&self, arena: &OutputArena) -> usize {
        self.stream_inputs.iter().map(|&p| arena.watermark(p)).min().unwrap_or(usize::MAX)
    }

    /// Whether this op commits watermarks as it runs. Remapped
    /// (resumed) ops never stream — the classification already
    /// excludes them, so the check is belt and braces for the
    /// scattered-write path.
    #[inline]
    fn streams_output(&self) -> bool {
        !self.stream_dependents.is_empty() && self.remap.is_none()
    }
}

/// Lease accounting for one op's claimer futures: chunks orphaned by
/// killed claimers, and how many claimers have neither died nor
/// retired. A claimer retires (decrements `live`) only when the queue
/// is drained *and* no orphans remain — both checked under this lock,
/// the same lock a kill takes to orphan its chunk — so every orphan is
/// replayed by exactly one surviving claimer, and the last live
/// claimer of an op suppresses its own kill rather than stranding the
/// queue.
#[derive(Default)]
struct OrphanBoard {
    /// Orphaned chunks, as real (op-local) task indices.
    orphans: Vec<Vec<usize>>,
    /// Claimers of this op still running.
    live: usize,
}

/// Per-driver task/chunk counters, attributed by the claimer futures
/// via [`driver::current_driver`] (busy time is measured by the driver
/// loop itself).
#[derive(Default)]
struct DriverCell {
    tasks: AtomicU64,
    chunks: AtomicU64,
}

/// Everything the claimer futures borrow for the duration of the run.
struct AsyncShared<'g> {
    ops: Vec<AsyncOp>,
    nodes: &'g [Node],
    /// Shared output slab: every op's tasks write disjoint cells, and
    /// finished ops hand their slices downstream by reference.
    arena: &'g OutputArena,
    cells: Vec<DriverCell>,
    epoch: Instant,
    /// Fault-injection and checkpoint control (inert on normal runs).
    ctl: RunCtl,
    /// Back-reference to the scheduler, set once futures are spawned —
    /// a crash-mode kill aborts it so drivers don't wait forever on
    /// gate-parked claimers.
    sched: OnceLock<Arc<Sched>>,
}

impl<'g> AsyncShared<'g> {
    /// Arena slices of `op`'s predecessors, in dep order.
    ///
    /// Sound to read: the caller's dependency gate has already
    /// released. For whole-op edges the gate arrival happens at the
    /// predecessor's completion, so the slice is complete and
    /// immutable. For *streamed* edges the gate arrives at the
    /// producer's first watermark publication and the slice is still
    /// being raw-written above the watermark — sound because (1) the
    /// consumer's claims are bounded by the Release-published /
    /// Acquire-read watermark, (2) the `ElementWise` kernel contract
    /// reads only cells `≤ t`, all below the watermark that admitted
    /// task `t`, and (3) producers scatter through raw pointer stores,
    /// never forming a `&mut` overlapping this shared slice.
    fn inputs_of(&self, op_idx: usize) -> Vec<&'g [f64]> {
        self.ops[op_idx].input_ops.iter().map(|&d| unsafe { self.arena.op_slice(d) }).collect()
    }
}

/// Per-op record of an async run.
#[derive(Debug, Clone)]
pub struct AsyncOpRecord {
    /// Instance name.
    pub name: String,
    /// First chunk claim, µs after run start.
    pub start_us: f64,
    /// Completion, µs after run start.
    pub finish_us: f64,
    /// Task count.
    pub tasks: usize,
    /// Chunks dispatched by the queue.
    pub chunks: u64,
    /// Cooperative yields taken at this op's chunk boundaries.
    pub yields: u64,
    /// Driver share the §4.1.2 equalizer allocated to this op (the
    /// whole driver pool when the op had its level to itself or
    /// allocation was off): its chunk schedule and claimer
    /// oversubscription are sized for this share.
    pub procs: usize,
    /// Input edges consumed through watermark streaming (0 = whole-op
    /// gated).
    pub streamed_inputs: usize,
    /// Watermark publications this op performed as a producer.
    pub watermark_pubs: u64,
}

/// The result of executing a graph on the cooperative executor —
/// the async counterpart of [`ThreadedRun`](crate::ThreadedRun).
#[derive(Debug, Clone)]
pub struct AsyncRun {
    /// Measured wall-clock time, µs.
    pub wall_us: f64,
    /// Driver threads used.
    pub drivers: usize,
    /// Per-driver busy/tasks/chunks, assembled with
    /// [`RunStats::from_procs`] like every other backend.
    pub stats: RunStats,
    /// Per-op timings, aligned with the plan's op order.
    pub ops: Vec<AsyncOpRecord>,
    /// Output buffers, aligned with the plan's op order.
    pub outputs: Vec<Vec<f64>>,
    /// Per-task execution counts, aligned with the plan's op order
    /// (all 1 in a correct run).
    pub exec_counts: Vec<Vec<u32>>,
    /// Σ of the tasks' simulated cost hints (µs).
    pub hinted_serial_us: f64,
    /// Chunk claims across all ops (scheduling events).
    pub claims: u64,
    /// Cooperative yields across all ops (one per executed chunk).
    pub yields: u64,
    /// Future polls across all drivers. A poll executes at most one
    /// chunk and every claimer's last poll claims nothing, so this is
    /// at least `claims + spawned`; the excess beyond that is
    /// dependency-gate registrations and stale-claimer wakeups.
    pub polls: u64,
    /// Claimer futures spawned (every op is oversubscribed:
    /// more claimers than drivers).
    pub spawned: usize,
    /// Pops satisfied by stealing from another driver's run queue
    /// (always 0 at one driver).
    pub steals: u64,
    /// Producer→consumer edges that streamed through watermarks.
    pub streamed_edges: usize,
    /// Watermark publications across all ops.
    pub watermark_pubs: u64,
    /// Whether an injected crash-mode fault aborted the run (the
    /// outputs are then partial; see
    /// [`execute_graph_resumable`](crate::checkpoint::execute_graph_resumable)).
    pub crashed: bool,
}

impl AsyncRun {
    /// Measured speedup: total busy time across drivers over wall
    /// time; `drivers` is the ceiling.
    pub fn measured_speedup(&self) -> f64 {
        if self.wall_us <= 0.0 {
            return 1.0;
        }
        self.stats.total_busy() / self.wall_us
    }

    /// Fraction of driver-seconds spent polling futures (busy /
    /// (drivers × wall)) — how well the cooperative pool was fed.
    pub fn driver_utilization(&self) -> f64 {
        if self.wall_us <= 0.0 {
            return 0.0;
        }
        self.stats.total_busy() / (self.drivers as f64 * self.wall_us)
    }

    /// Converts the run into the executor's report shape so callers
    /// consume all four backends uniformly.
    pub fn to_report(&self) -> ExecutionReport {
        ExecutionReport {
            finish: self.wall_us,
            nodes: self
                .ops
                .iter()
                .map(|op| NodeReport {
                    name: op.name.clone(),
                    start: op.start_us,
                    finish: op.finish_us,
                    procs: op.procs,
                    streamed_inputs: op.streamed_inputs,
                    watermark_pubs: op.watermark_pubs,
                })
                .collect(),
            serial_work: self.stats.total_busy(),
            processors: self.drivers,
        }
    }
}

/// Driver-count resolution: `opts.drivers`, else `opts.threads`, else
/// a small pool (available parallelism capped at 4 — the point of the
/// backend is a handful of drivers multiplexing many ops).
pub fn resolve_drivers(opts: &ExecutorOptions) -> usize {
    if opts.drivers > 0 {
        return opts.drivers;
    }
    if opts.threads > 0 {
        return opts.threads;
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2).min(4)
}

/// Claimer futures spawned per op: deliberately more than the driver
/// count (oversubscription stresses the exactly-once claim invariant
/// with interleavings preemptive threads rarely produce), but never
/// more than the op has tasks.
fn claimers_for(tasks: usize, drivers: usize) -> usize {
    (drivers * 2).min(tasks).max(1)
}

fn us_since(epoch: Instant) -> f64 {
    epoch.elapsed().as_secs_f64() * 1e6
}

/// What the post-claim fault/checkpoint hook decided for a claimer.
enum ClaimFate {
    /// Execute the chunk normally (includes suppressed kills).
    Run,
    /// The claimer dies; the chunk was orphaned (lease mode) or
    /// dropped (crash mode).
    Die,
}

/// The async claim hook: fires planned kills at the claim boundary and
/// drives the checkpoint cadence. `cid` is the claimer's spawn index —
/// the async backend's notion of a "worker" for [`KillSpec::worker`].
fn on_claim_async(shared: &AsyncShared<'_>, cid: usize, op_idx: usize, chunk: &Chunk) -> ClaimFate {
    let ctl = &shared.ctl;
    // Cancellation aborts the whole cooperative run: stop the
    // scheduler so parked futures are never polled again, and retire
    // this claimer at the boundary (its freshly claimed chunk is
    // dropped with the rest of the partial run).
    if ctl.cancel.as_ref().is_some_and(CancelCtl::requested) {
        if let Some(s) = shared.sched.get() {
            s.abort();
        }
        return ClaimFate::Die;
    }
    if let Some(f) = &ctl.faults {
        if f.crashed() {
            // Another claimer crashed the run: exit at this boundary,
            // dropping the claimed-but-unexecuted chunk (the partial
            // run is discarded anyway).
            return ClaimFate::Die;
        }
        if let Some(mode) = f.on_claim(cid, None) {
            if mode == KillMode::Crash {
                f.try_die(cid, mode);
                if let Some(s) = shared.sched.get() {
                    s.abort();
                }
                return ClaimFate::Die;
            }
            let op = &shared.ops[op_idx];
            let mut board = op.board.lock().expect("orphan board poisoned");
            if board.live >= 2 && f.try_die(cid, mode) {
                board.live -= 1;
                board.orphans.push(
                    (chunk.start..chunk.start + chunk.len).map(|qi| op.task_of(qi)).collect(),
                );
                return ClaimFate::Die;
            }
            // Suppressed: the op's last live claimer keeps executing —
            // a fault plan can never strand a queue.
        }
    }
    if let Some(ck) = &ctl.ckpt {
        if ck.note_claim(None) {
            ck.commit(snapshot_async_ops(&shared.ops, shared.arena));
        }
    }
    ClaimFate::Run
}

/// Captures every op's completed-task bitmap, outputs, and cost stats
/// for a checkpoint commit. Output values are read straight from the
/// arena — sound for any task the scanner observes as executed (the
/// Release bump on `executed` orders the cell's store before it).
fn snapshot_async_ops(ops: &[AsyncOp], arena: &OutputArena) -> Vec<OpSnapshot> {
    ops.iter()
        .enumerate()
        .map(|(i, op)| {
            op_snapshot(&op.costs, &op.restored, &op.executed, |t| unsafe { arena.read(i, t) })
        })
        .collect()
}

/// One claimer's life: await the op's dependency gate, then loop
/// claim → execute chunk → yield until the queue is drained. The
/// yield between chunks is the backend's entire scheduling story:
/// between any two chunks the driver is free to run *any* ready op.
/// Under fault injection the claimer additionally checks for its
/// planned death after every claim, and on retirement adopts chunks
/// orphaned by killed siblings.
async fn run_claimer(
    shared: &AsyncShared<'_>,
    op_idx: usize,
    cid: usize,
    kernel: &(dyn TaskKernel + Sync),
) {
    let op = &shared.ops[op_idx];
    op.gate.wait().await;
    if op.costs.is_empty() {
        // Degenerate op: its single claimer (see `claimers_for`)
        // completes it directly.
        let now = us_since(shared.epoch);
        stamp_min(&op.started_bits, now);
        complete_op(shared, op_idx, now);
        return;
    }
    let hooked = shared.ctl.hooked();
    let node = &shared.nodes[op.node];
    let adaptive = op.queue.is_adaptive();
    // The gate has released, so every predecessor's arena slice is
    // complete and immutable for the rest of the run.
    let inputs = shared.inputs_of(op_idx);
    let mut done = 0usize;
    loop {
        // Streamed consumers re-read the producers' watermarks at
        // every claim; whole-op consumers get `usize::MAX` and the
        // plain claim path.
        let limit = op.stream_limit(shared.arena);
        let chunk = match op.queue.claim_bounded(limit) {
            BoundedClaim::Chunk(c) => c,
            BoundedClaim::Blocked => {
                // Tasks remain but the producer has not committed
                // their inputs yet: park until a publication raises
                // the watermark past the limit that blocked us, then
                // retry the claim. Busy-yield-and-retry would also be
                // correct here but burns the driver repolling a future
                // that cannot progress. Register-then-recheck (as in
                // `DepGate::wait`) closes the race with a publication
                // landing between the claim and the registration; the
                // park is deliberately *not* counted in `op.yields` —
                // that counter is pinned one-per-chunk by the
                // differential suites. If a crash-mode fault fired,
                // the scheduler is aborted and this future simply
                // never gets polled again, so the wait cannot hang a
                // crashed run.
                std::future::poll_fn(|cx| {
                    if op.stream_limit(shared.arena) > limit {
                        return Poll::Ready(());
                    }
                    for &p in &op.stream_inputs {
                        let mut w =
                            shared.ops[p].stream_waiters.lock().expect("stream waiters poisoned");
                        w.push(cx.waker().clone());
                    }
                    if op.stream_limit(shared.arena) > limit {
                        // A stale registration stays behind on the
                        // producers; its wake hits an already-finished
                        // wait and is a no-op.
                        Poll::Ready(())
                    } else {
                        Poll::Pending
                    }
                })
                .await;
                continue;
            }
            BoundedClaim::Exhausted => break,
        };
        if hooked {
            if let ClaimFate::Die = on_claim_async(shared, cid, op_idx, &chunk) {
                // The `done > 0` guard matters: `fetch_sub(0) == 0`
                // would spuriously re-complete a completed op.
                if done > 0 && op.outstanding.fetch_sub(done, Ordering::AcqRel) == done {
                    complete_op(shared, op_idx, us_since(shared.epoch));
                }
                return;
            }
        }
        stamp_min(&op.started_bits, us_since(shared.epoch));
        let mut chunk_stats = OnlineStats::new();
        // Identity-mapped ops take the zero-copy path: the claimed
        // chunk is a contiguous, exclusively-owned arena window.
        // Exclusivity comes from the exactly-once claim; remapped
        // (resumed) ops scatter through per-task writes instead — and
        // so do streamed *producers*, whose consumers hold live shared
        // slices over this span (a `&mut` view would alias them).
        let mut view = if op.remap.is_none() && !op.streams_output() {
            Some(unsafe { shared.arena.chunk_view(op_idx, chunk.start, chunk.len) })
        } else {
            None
        };
        for qi in chunk.start..chunk.start + chunk.len {
            let task = op.task_of(qi);
            let cost = op.costs[task];
            let ctx = TaskCtx { node, iter: op.iter, task, cost_hint: cost, inputs: &inputs };
            let value = kernel.run_task(&ctx);
            match &mut view {
                Some(v) => v[qi - chunk.start] = value,
                None => unsafe { shared.arena.write(op_idx, task, value) },
            }
            // Release: pairs with the snapshot scanner's Acquire loads
            // — a task counted as executed must have its output
            // visible.
            op.executed[task].fetch_add(1, Ordering::Release);
            if adaptive {
                chunk_stats.observe(cost);
            }
        }
        if adaptive {
            // Feed TAPER the deterministic cost *hints*, not wall
            // clock — the same choice the dist backend's control plane
            // makes, so chunk sequences are reproducible (and, at one
            // driver, the whole schedule is).
            op.queue.observe_chunk(chunk.start, chunk.len, &chunk_stats);
        }
        if let Some(d) = driver::current_driver() {
            shared.cells[d].tasks.fetch_add(chunk.len as u64, Ordering::Relaxed);
            shared.cells[d].chunks.fetch_add(1, Ordering::Relaxed);
        }
        if op.streams_output() {
            // Commit the chunk's span before yielding: once the b*
            // batch fills (or the op finishes) the watermark publishes
            // and downstream claimers may start on the prefix.
            if let Some(p) =
                shared.arena.commit_range(op_idx, chunk.start, chunk.len, op.stream_batch)
            {
                handle_publication_async(shared, op_idx, p);
            }
        }
        done += chunk.len;
        op.yields.fetch_add(1, Ordering::Relaxed);
        driver::yield_now().await;
    }
    // Queue drained. Under fault injection, adopt orphaned chunks
    // before retiring: the pop and the retirement share the board
    // lock with the kill path, so every orphan is replayed exactly
    // once and none can appear after the last claimer retires.
    if hooked && shared.ctl.faults.is_some() {
        loop {
            let orphan = {
                let mut board = op.board.lock().expect("orphan board poisoned");
                match board.orphans.pop() {
                    Some(o) => Some(o),
                    None => {
                        board.live = board.live.saturating_sub(1);
                        None
                    }
                }
            };
            let Some(tasks) = orphan else {
                break;
            };
            for &task in &tasks {
                let cost = op.costs[task];
                let ctx = TaskCtx { node, iter: op.iter, task, cost_hint: cost, inputs: &inputs };
                let value = kernel.run_task(&ctx);
                // Orphans are arbitrary task sets — always scattered.
                unsafe { shared.arena.write(op_idx, task, value) };
                op.executed[task].fetch_add(1, Ordering::Release);
            }
            if let Some(d) = driver::current_driver() {
                shared.cells[d].tasks.fetch_add(tasks.len() as u64, Ordering::Relaxed);
                shared.cells[d].chunks.fetch_add(1, Ordering::Relaxed);
            }
            done += tasks.len();
        }
    }
    // Account this claimer's work in one batched decrement; whoever
    // zeroes the counter has proof every task ran and completes the op
    // (same protocol as the threaded pool).
    if done > 0 && op.outstanding.fetch_sub(done, Ordering::AcqRel) == done {
        complete_op(shared, op_idx, us_since(shared.epoch));
    }
}

fn stamp_min(bits: &AtomicU64, t_us: f64) {
    let b = t_us.to_bits();
    if bits.load(Ordering::Relaxed) > b {
        bits.fetch_min(b, Ordering::AcqRel);
    }
}

/// Reacts to a watermark publication from `op_idx`: the *first*
/// publication performs this producer's gate arrival at every streamed
/// dependent (releasing consumers whose other deps are already in), so
/// their claimers start on the published prefix while the producer is
/// still running. Exactly-once for the arrival is inherited from the
/// arena: publications are serialized by the frontier mutex, so
/// exactly one carries `is_first()`. Every publication additionally
/// wakes consumer claimers parked on this producer's watermark — the
/// Release watermark store precedes the lock that drains the waiter
/// list, and waiters re-check after registering under that same lock,
/// so a wake can race a registration but never miss it.
fn handle_publication_async(shared: &AsyncShared<'_>, op_idx: usize, publication: Publication) {
    let op = &shared.ops[op_idx];
    if publication.is_first() {
        for &d in &op.stream_dependents {
            let gate = &shared.ops[d].gate;
            if gate.arrive() {
                gate.release();
            }
        }
    }
    let waiters = std::mem::take(&mut *op.stream_waiters.lock().expect("stream waiters poisoned"));
    for w in waiters {
        w.wake();
    }
}

/// Runs exactly once per op: stamps the finish and arrives at every
/// dependent's gate, releasing the ones this op was the last
/// predecessor of (their parked claimers wake through the gate's
/// wakers). Streamed producers additionally publish their full
/// watermark — idempotent, and the one publication path that covers
/// scattered orphan-replay writes no `commit_range` accounted for.
fn complete_op(shared: &AsyncShared<'_>, op_idx: usize, t_end: f64) {
    let op = &shared.ops[op_idx];
    op.finished_bits.fetch_min(t_end.to_bits(), Ordering::AcqRel);
    if !op.stream_dependents.is_empty() {
        let p = shared.arena.publish_all(op_idx);
        handle_publication_async(shared, op_idx, p);
    }
    for &d in &op.dependents {
        let gate = &shared.ops[d].gate;
        if gate.arrive() {
            gate.release();
        }
    }
}

/// Executes a graph on the cooperative futures executor.
///
/// # Errors
///
/// Returns the graph's validation error when it is malformed.
pub fn execute_async(
    g: &DelirGraph,
    opts: &ExecutorOptions,
    kernel: &(dyn TaskKernel + Sync),
) -> Result<AsyncRun, RunError> {
    execute_async_resumed(g, opts, kernel, None)
}

/// [`execute_async`] with an optional restore image: restored tasks
/// keep their snapshot outputs and are excluded from the queues'
/// iteration spaces, fully restored ops spawn no claimers and arrive
/// pre-completed at their dependents' gates, and the adaptive chunk
/// policies warm-start from the snapshot's per-op µ/σ.
pub(crate) fn execute_async_resumed(
    g: &DelirGraph,
    opts: &ExecutorOptions,
    kernel: &(dyn TaskKernel + Sync),
    resume: Option<&ResumeState>,
) -> Result<AsyncRun, RunError> {
    let plan = build_plan(g, opts)?;
    let drivers = resolve_drivers(opts);
    // Which ops the snapshot already finished whole: excluded from
    // scheduling entirely — no claimers, no gate edges.
    let pre_done: Vec<bool> = plan
        .ops
        .iter()
        .enumerate()
        .map(|(i, op)| {
            resume
                .and_then(|r| r.ops.get(i))
                .is_some_and(|o| op.tasks > 0 && o.completed.iter().all(|&c| c))
        })
        .collect();
    // Streamed-edge classification — identical to the threaded
    // backend's: element-wise kernels on equal-cardinality live edges
    // stream through watermarks; everything else (reductions, resumed
    // remapped ops, `pipeline_overlap = false`) keeps whole-op gating.
    let remapped: Vec<bool> = (0..plan.ops.len())
        .map(|i| resume.and_then(|r| r.ops.get(i)).is_some_and(|o| o.completed.iter().any(|&c| c)))
        .collect();
    let stream_on = opts.pipeline_overlap && kernel.access() == AccessPattern::ElementWise;
    let streamed_edge = |d: usize, c: usize| -> bool {
        stream_on
            && !pre_done[d]
            && !pre_done[c]
            && !remapped[d]
            && !remapped[c]
            && plan.ops[d].tasks == plan.ops[c].tasks
            && plan.ops[d].tasks > 1
    };
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); plan.ops.len()];
    let mut stream_deps: Vec<Vec<usize>> = vec![Vec::new(); plan.ops.len()];
    for (i, op) in plan.ops.iter().enumerate() {
        if pre_done[i] {
            continue; // Never scheduled, so never needs enabling.
        }
        for &d in &op.deps {
            if streamed_edge(d, i) {
                stream_deps[d].push(i);
            } else {
                dependents[d].push(i);
            }
        }
    }
    // §4.1.2 driver shares: when a level holds several concurrent ops
    // and allocation is on, the equalizer rations the driver pool
    // between them — each op's chunk schedule and claimer count are
    // sized for its share instead of the whole pool. The split is a
    // pure function of task counts (no sampled stats exist yet), so
    // one-driver determinism is untouched.
    let pending_of: Vec<usize> = plan
        .ops
        .iter()
        .enumerate()
        .map(|(i, op)| {
            let restored = resume
                .and_then(|r| r.ops.get(i))
                .map_or(0, |o| o.completed.iter().filter(|&&c| c).count());
            op.tasks.saturating_sub(restored)
        })
        .collect();
    let mut op_shares: Vec<usize> = vec![drivers; plan.ops.len()];
    if opts.use_allocation && drivers > 1 {
        let cal = HostCalibration::get();
        let kind = match opts.policy {
            PolicyKind::Static => PolicyKind::Gss,
            p => p,
        };
        let mut depth = vec![0usize; plan.ops.len()];
        let mut by_depth: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (i, op) in plan.ops.iter().enumerate() {
            depth[i] = op.deps.iter().map(|&d| depth[d] + 1).max().unwrap_or(0);
            if !pre_done[i] && pending_of[i] > 0 {
                by_depth.entry(depth[i]).or_default().push(i);
            }
        }
        for group in by_depth.values() {
            if group.len() < 2 || drivers < group.len() {
                continue;
            }
            let specs: Vec<OpSpec> =
                group.iter().map(|&i| OpSpec::from_live(pending_of[i], None, kind)).collect();
            let alloc = allocate_many_with(&specs, drivers, &AllocParams::default(), |s, p| {
                finish_estimate_live(s, p, &cal).total()
            });
            for (&i, &a) in group.iter().zip(&alloc) {
                op_shares[i] = a;
            }
        }
    }
    let mut hinted_serial_us = 0.0;
    // One slab for every op's outputs; spans are disjoint per op and
    // handed downstream by reference once the producer completes.
    let mut arena = OutputArena::for_ops(plan.ops.iter().map(|o| o.tasks));
    let mut ops: Vec<AsyncOp> = Vec::with_capacity(plan.ops.len());
    let mut n_claimers: Vec<usize> = Vec::with_capacity(plan.ops.len());
    for (i, (op, deps_out)) in plan.ops.iter().zip(&mut dependents).enumerate() {
        let node = &g.nodes[op.node];
        let costs = costs_of_node(node, opts.seed);
        hinted_serial_us += costs.iter().sum::<f64>();
        let res_op = resume.and_then(|r| r.ops.get(i)).filter(|o| o.completed.iter().any(|&c| c));
        let restored: Vec<bool> = res_op.map(|o| o.completed.clone()).unwrap_or_default();
        let remap: Option<Vec<usize>> = if restored.iter().any(|&c| c) {
            Some((0..op.tasks).filter(|&t| !restored[t]).collect())
        } else {
            None
        };
        let pending = remap.as_ref().map_or(op.tasks, Vec::len);
        let policy = match opts.policy {
            // Static has no dynamic queue; same approximation as the
            // threaded backend.
            PolicyKind::Static => PolicyKind::Gss.instantiate(pending),
            p => p.instantiate(pending),
        };
        // Chunk schedules size for the op's allocated driver share.
        let queue = ChunkQueue::new(policy, pending, op_shares[i]);
        if let Some(r) = res_op.filter(|o| o.stats.count() > 0) {
            queue.observe_chunk(0, 0, &r.stats);
        }
        let effective_deps = op.deps.iter().filter(|&&d| !pre_done[d]).count();
        // Restored tasks keep their snapshot outputs: prefilled while
        // the arena is still exclusively owned, before any claimer can
        // observe it.
        if let Some(o) = res_op {
            for t in 0..op.tasks {
                if restored.get(t).copied().unwrap_or(false) {
                    arena.set(i, t, o.outputs[t]);
                }
            }
        }
        let claimers = if pre_done[i] { 0 } else { claimers_for(pending, op_shares[i]) };
        let stamp = if pre_done[i] { 0u64 } else { u64::MAX };
        n_claimers.push(claimers);
        let stream_dependents = std::mem::take(&mut stream_deps[i]);
        let stream_batch = if stream_dependents.is_empty() {
            op.tasks.max(1)
        } else {
            opts.stream_batch
                .unwrap_or_else(|| {
                    HostCalibration::get().stream_batch(op.tasks, std::mem::size_of::<f64>() as u64)
                })
                .clamp(1, op.tasks.max(1))
        };
        ops.push(AsyncOp {
            name: op.name.clone(),
            node: op.node,
            iter: op.iter,
            queue,
            costs,
            gate: DepGate::new(effective_deps),
            dependents: std::mem::take(deps_out),
            outstanding: AtomicUsize::new(pending),
            input_ops: op.deps.clone(),
            executed: (0..op.tasks).map(|_| AtomicU32::new(0)).collect(),
            started_bits: AtomicU64::new(stamp),
            finished_bits: AtomicU64::new(stamp),
            yields: AtomicU64::new(0),
            restored,
            remap,
            stream_inputs: op.deps.iter().copied().filter(|&d| streamed_edge(d, i)).collect(),
            stream_dependents,
            stream_batch,
            stream_waiters: Mutex::new(Vec::new()),
            board: Mutex::new(OrphanBoard { orphans: Vec::new(), live: claimers }),
        });
    }

    let spawned: usize = n_claimers.iter().sum();
    let fingerprint = plan_fingerprint(&plan, opts.seed);
    let shared = AsyncShared {
        ops,
        nodes: &g.nodes,
        arena: &arena,
        cells: (0..drivers).map(|_| DriverCell::default()).collect(),
        epoch: Instant::now(),
        ctl: RunCtl::new(
            opts.faults.as_ref(),
            opts.checkpoint.as_ref(),
            CancelCtl::from_opts(opts),
            spawned,
            fingerprint,
        ),
        sched: OnceLock::new(),
    };
    // Spawn claimer futures op-major: ready ops start interleaved at
    // the front of the FIFO run queue; blocked ones park in their
    // gates on first poll. Each claimer's spawn index is its fault-
    // injection identity.
    let mut futures: Vec<TaskFuture<'_>> = Vec::new();
    for (i, &n) in n_claimers.iter().enumerate() {
        for _ in 0..n {
            let cid = futures.len();
            futures.push(Box::pin(run_claimer(&shared, i, cid, kernel)));
        }
    }
    debug_assert_eq!(futures.len(), spawned);
    let sched = Sched::new(spawned, drivers);
    let _ = shared.sched.set(Arc::clone(&sched));
    let records: Vec<DriverRecord> = {
        let slots: Vec<TaskSlot<'_>> = futures.into_iter().map(TaskSlot::new).collect();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..drivers)
                .map(|id| {
                    let sched = Arc::clone(&sched);
                    let slots = &slots;
                    let epoch = shared.epoch;
                    s.spawn(move || driver::drive(id, &sched, slots, epoch))
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("driver panicked")).collect()
        })
    };
    let wall_us = us_since(shared.epoch);

    let polls: u64 = records.iter().map(|r| r.polls).sum();
    let steals: u64 = records.iter().map(|r| r.steals).sum();
    let procs: Vec<ProcStats> = records
        .into_iter()
        .zip(&shared.cells)
        .map(|(rec, cell)| {
            rec.into_proc(cell.tasks.load(Ordering::Relaxed), cell.chunks.load(Ordering::Relaxed))
        })
        .collect();
    let stats = RunStats::from_procs(procs, wall_us);
    let op_records: Vec<AsyncOpRecord> = shared
        .ops
        .iter()
        .enumerate()
        .map(|(i, op)| AsyncOpRecord {
            name: op.name.clone(),
            start_us: f64::from_bits(op.started_bits.load(Ordering::Acquire)),
            finish_us: f64::from_bits(op.finished_bits.load(Ordering::Acquire)),
            tasks: op.costs.len(),
            chunks: op.queue.chunks_claimed(),
            yields: op.yields.load(Ordering::Relaxed),
            procs: op_shares[i],
            streamed_inputs: op.stream_inputs.len(),
            // Read before `into_outputs` consumes the arena below.
            watermark_pubs: shared.arena.watermark_pubs(i),
        })
        .collect();
    let claims: u64 = op_records.iter().map(|o| o.chunks).sum();
    let yields: u64 = op_records.iter().map(|o| o.yields).sum();
    let streamed_edges: usize = op_records.iter().map(|o| o.streamed_inputs).sum();
    let watermark_pubs: u64 = op_records.iter().map(|o| o.watermark_pubs).sum();
    let exec_counts: Vec<Vec<u32>> = shared
        .ops
        .iter()
        .map(|op| op.executed.iter().map(|c| c.load(Ordering::Acquire)).collect())
        .collect();
    let crashed = shared.ctl.crashed();
    // A fired cancellation aborts the run before result assembly —
    // the partial outputs are discarded, exactly as on the threaded
    // backend.
    if let Some(e) = shared.ctl.cancel_error() {
        return Err(e);
    }
    // End the arena borrow (the drivers have joined) so the slab can
    // be carved into owned per-op buffers without a copy pass through
    // atomics.
    drop(shared);
    let outputs = arena.into_outputs();
    Ok(AsyncRun {
        wall_us,
        drivers,
        stats,
        ops: op_records,
        outputs,
        exec_counts,
        hinted_serial_us,
        claims,
        yields,
        polls,
        spawned,
        steals,
        streamed_edges,
        watermark_pubs,
        crashed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::threaded::{execute_sequential, SpinKernel};
    use orchestra_delirium::{DataAnno, NodeKind};

    fn small_graph() -> DelirGraph {
        let mut g = DelirGraph::new();
        let a = g.add_node("A", NodeKind::Task { cost: 5.0 }, None);
        let b =
            g.add_node("B", NodeKind::DataParallel { tasks: 100, mean_cost: 3.0, cv: 0.8 }, None);
        let c = g.add_node("C", NodeKind::Merge { cost: 2.0 }, None);
        g.add_edge(a, b, DataAnno::array("x", 100));
        g.add_edge(b, c, DataAnno::array("y", 100));
        g
    }

    #[test]
    fn async_executes_every_task_once() {
        let g = small_graph();
        let opts = ExecutorOptions { drivers: 3, ..ExecutorOptions::default() };
        let kernel = SpinKernel::with_scale(4.0);
        let r = execute_async(&g, &opts, &kernel).unwrap();
        assert_eq!(r.stats.total_tasks(), 102);
        for counts in &r.exec_counts {
            assert!(counts.iter().all(|&c| c == 1));
        }
        assert!(r.wall_us > 0.0);
        assert!(r.yields > 0, "chunk boundaries must yield");
        assert_eq!(r.claims, r.yields, "one yield per executed chunk");
        assert!(r.polls >= r.claims + r.spawned as u64);
        assert!(r.measured_speedup() <= r.drivers as f64 + 1e-9);
        assert!(r.driver_utilization() <= 1.0 + 1e-9);
    }

    #[test]
    fn async_matches_sequential_bitwise() {
        let g = small_graph();
        let opts = ExecutorOptions { drivers: 2, ..ExecutorOptions::default() };
        let kernel = SpinKernel::with_scale(4.0);
        let seq = execute_sequential(&g, &opts, &kernel).unwrap();
        let run = execute_async(&g, &opts, &kernel).unwrap();
        assert_eq!(seq.outputs, run.outputs);
    }

    #[test]
    fn oversubscribed_claimers_spawned() {
        let g = small_graph();
        let opts = ExecutorOptions { drivers: 2, ..ExecutorOptions::default() };
        let r = execute_async(&g, &opts, &SpinKernel::with_scale(2.0)).unwrap();
        // B (100 tasks) gets 2×drivers claimers; A and C one each.
        assert_eq!(r.spawned, 4 + 1 + 1);
    }

    #[test]
    fn driver_resolution_prefers_explicit_knob() {
        let mut opts = ExecutorOptions::default();
        assert!(resolve_drivers(&opts) >= 1);
        opts.threads = 7;
        assert_eq!(resolve_drivers(&opts), 7);
        opts.drivers = 3;
        assert_eq!(resolve_drivers(&opts), 3);
    }

    #[test]
    fn invalid_graph_rejected() {
        let mut g = DelirGraph::new();
        let a = g.add_node("A", NodeKind::Task { cost: 1.0 }, None);
        g.add_edge(a, a, DataAnno::scalar("self"));
        assert!(execute_async(&g, &ExecutorOptions::default(), &SpinKernel::default()).is_err());
    }
}
