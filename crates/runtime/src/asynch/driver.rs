//! The cooperative driver core: a dependency-free, hand-rolled futures
//! executor in the spirit of the in-tree shims — no tokio, no crates.
//!
//! The design splits the run into two lifetimes:
//!
//! * [`Sched`] is the `'static` scheduling core — a run queue of task
//!   *indices*, one atomic state byte per task, and a live-task count.
//!   [`std::task::Waker`] has no lifetime parameter, so wakers must be
//!   `'static`; here a waker carries only `(Arc<Sched>, index)` and
//!   never touches a future, which is what lets the futures themselves
//!   borrow run-local state (cost vectors, chunk queues, the caller's
//!   kernel) without a single `unsafe` block.
//! * [`TaskSlot`] holds the actual future, which may borrow the
//!   enclosing `execute_async` frame (`'env`); driver threads are
//!   *scoped* threads polling `slots[index]`, so every borrow ends
//!   before the entry point returns.
//!
//! Each task's state byte forms a tiny state machine (idle → queued →
//! running, with a "notified" flag for wakes that land mid-poll). The
//! invariants it maintains:
//!
//! * an index is runnable at most once (only the idle→queued
//!   transition enqueues);
//! * at most one driver polls a given future at a time (only a pop
//!   moves queued→running, and a requeue happens only after the
//!   polling driver released the future's lock);
//! * no wakeup is lost: a wake during a poll sets `NOTIFIED`, which the
//!   polling driver converts into a requeue; a wake before a poll is
//!   subsumed by that poll (futures re-check their readiness
//!   condition, they never rely on wake counting).
//!
//! Runnable tasks live in **per-driver run queues** rather than one
//! shared injector: each driver owns a cache-padded FIFO deque plus a
//! single-entry **LIFO slot**. A wake raised *from* a driver thread
//! (the common case — a dependency gate released by the op that just
//! completed there) lands in that driver's LIFO slot, so the freshly
//! unblocked dependent runs next while its inputs are still warm; the
//! slot's previous occupant is demoted to the back of the same
//! driver's deque. Cooperative yields requeue at the *back* of the
//! yielding driver's own deque (FIFO — at one driver this reproduces
//! the canonical interleaving exactly). Wakes from outside any driver
//! are distributed round-robin. A driver out of local work **steals
//! half** a victim's deque from the back; only when the LIFO slot, the
//! own deque, and every victim come up empty does it park on the
//! condvar (re-checking a wake sequence number to close the
//! scan-then-sleep race).

use orchestra_machine::ProcStats;
use std::cell::Cell;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::task::{Context, Poll, Wake, Waker};
use std::time::Instant;

/// A spawned task's future: `'env` lets op bodies borrow the run's
/// shared state and the caller's kernel (drivers are scoped threads).
pub(crate) type TaskFuture<'env> = Pin<Box<dyn Future<Output = ()> + Send + 'env>>;

/// One spawned task. The mutex is never contended — the state machine
/// guarantees a single driver polls a given slot at a time — it only
/// converts "logically exclusive" into something the borrow checker
/// and `Sync` can see.
pub(crate) struct TaskSlot<'env> {
    future: Mutex<TaskFuture<'env>>,
}

impl<'env> TaskSlot<'env> {
    pub(crate) fn new(future: TaskFuture<'env>) -> Self {
        TaskSlot { future: Mutex::new(future) }
    }
}

/// Task scheduling states (see module docs for the machine).
const IDLE: u8 = 0;
const QUEUED: u8 = 1;
const RUNNING: u8 = 2;
const NOTIFIED: u8 = 3;
const DONE: u8 = 4;

/// Sentinel for an empty LIFO slot.
const NO_TASK: usize = usize::MAX;

/// Cache-line padding so neighbouring drivers' queue state never
/// false-shares.
#[repr(align(64))]
struct Pad<T>(T);

/// One driver's local run-queue state.
struct DriverQueue {
    /// Single-entry LIFO slot (`NO_TASK` = empty). Written **only by
    /// the owning driver's thread** — wakes raised from thread `d` go
    /// to slot `d` — so there is no write race to reason about, and a
    /// driver always drains its own slot before parking.
    lifo: AtomicUsize,
    /// The driver's FIFO deque: yields requeue at the back, thieves
    /// take from the back.
    deque: Mutex<VecDeque<usize>>,
}

/// The `'static` scheduling core shared by drivers and wakers.
pub(crate) struct Sched {
    /// Per-driver run queues (LIFO slot + deque).
    queues: Vec<Pad<DriverQueue>>,
    /// Round-robin cursor for wakes raised outside any driver thread.
    external: AtomicUsize,
    /// Bumped on every enqueue; parking drivers re-check it under the
    /// park lock so a push between "scanned everything empty" and
    /// "wait" is never lost.
    wake_seq: AtomicUsize,
    /// Park lock — protects nothing but the condvar protocol; queue
    /// locks are never held while parked.
    park: Mutex<()>,
    /// Signalled on every enqueue and when the last task completes.
    available: Condvar,
    /// One state byte per task.
    states: Vec<AtomicU8>,
    /// Tasks not yet complete; drivers exit when this reaches zero.
    live: AtomicUsize,
    /// Crash abort: when set, drivers stop popping tasks and exit even
    /// though parked futures (claimers awaiting a dependency gate that
    /// will now never open) are still live.
    aborted: AtomicBool,
}

impl Sched {
    /// A scheduler over `tasks` tasks for `drivers` driver threads,
    /// initially dealt round-robin across the per-driver deques in
    /// index order (at one driver: a single FIFO queue in index order
    /// — the deterministic canonical interleaving).
    pub(crate) fn new(tasks: usize, drivers: usize) -> Arc<Self> {
        let drivers = drivers.max(1);
        let mut deques: Vec<VecDeque<usize>> = (0..drivers).map(|_| VecDeque::new()).collect();
        for i in 0..tasks {
            deques[i % drivers].push_back(i);
        }
        Arc::new(Sched {
            queues: deques
                .into_iter()
                .map(|q| Pad(DriverQueue { lifo: AtomicUsize::new(NO_TASK), deque: Mutex::new(q) }))
                .collect(),
            external: AtomicUsize::new(0),
            wake_seq: AtomicUsize::new(0),
            park: Mutex::new(()),
            available: Condvar::new(),
            states: (0..tasks).map(|_| AtomicU8::new(QUEUED)).collect(),
            live: AtomicUsize::new(tasks),
            aborted: AtomicBool::new(false),
        })
    }

    /// Aborts the run: drivers exit at their next pop instead of
    /// waiting for parked futures that can no longer make progress
    /// (used by crash-mode fault injection — a simulated process death
    /// takes the whole executor down, gates and all).
    pub(crate) fn abort(&self) {
        self.aborted.store(true, Ordering::SeqCst);
        let _guard = self.park.lock().expect("park lock poisoned");
        self.available.notify_all();
    }

    /// Makes task `i` runnable (the waker entry point). Idle tasks are
    /// queued; a task being polled right now is flagged so its driver
    /// requeues it; queued/flagged/done tasks need nothing.
    pub(crate) fn schedule(&self, i: usize) {
        let s = &self.states[i];
        let mut cur = s.load(Ordering::Relaxed);
        loop {
            let next = match cur {
                IDLE => QUEUED,
                RUNNING => NOTIFIED,
                _ => return,
            };
            match s.compare_exchange_weak(cur, next, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => {
                    if next == QUEUED {
                        self.enqueue(i);
                    }
                    return;
                }
                Err(seen) => cur = seen,
            }
        }
    }

    /// Routes a newly-runnable task: wakes from a driver thread take
    /// that driver's LIFO slot (demoting its previous occupant to the
    /// deque back); wakes from anywhere else round-robin over the
    /// deques.
    fn enqueue(&self, i: usize) {
        match current_driver().filter(|&d| d < self.queues.len()) {
            Some(d) => {
                let q = &self.queues[d].0;
                let prev = q.lifo.swap(i, Ordering::AcqRel);
                if prev != NO_TASK {
                    q.deque.lock().expect("driver deque poisoned").push_back(prev);
                }
            }
            None => {
                let d = self.external.fetch_add(1, Ordering::Relaxed) % self.queues.len();
                self.queues[d].0.deque.lock().expect("driver deque poisoned").push_back(i);
            }
        }
        self.notify();
    }

    /// Requeues a mid-poll-notified task at the back of driver `id`'s
    /// own deque — cooperative yields stay FIFO on their home driver.
    fn requeue_local(&self, id: usize, i: usize) {
        self.queues[id].0.deque.lock().expect("driver deque poisoned").push_back(i);
        self.notify();
    }

    fn notify(&self) {
        self.wake_seq.fetch_add(1, Ordering::Release);
        // Taking the park lock orders this notify after any in-flight
        // "re-check seq, then wait" on the sleeper side.
        let _guard = self.park.lock().expect("park lock poisoned");
        self.available.notify_one();
    }

    /// Pops driver `id`'s next runnable task: own LIFO slot, then own
    /// deque front, then stealing; parks until work arrives or every
    /// task is done (`None` = shut down).
    fn next_task(&self, id: usize, steals: &mut u64) -> Option<usize> {
        loop {
            if self.aborted.load(Ordering::SeqCst) {
                return None;
            }
            let seq = self.wake_seq.load(Ordering::Acquire);
            let own = &self.queues[id].0;
            let t = own.lifo.swap(NO_TASK, Ordering::AcqRel);
            if t != NO_TASK {
                return Some(t);
            }
            if let Some(t) = own.deque.lock().expect("driver deque poisoned").pop_front() {
                return Some(t);
            }
            if let Some(t) = self.steal(id) {
                *steals += 1;
                return Some(t);
            }
            if self.live.load(Ordering::Acquire) == 0 {
                return None;
            }
            let guard = self.park.lock().expect("park lock poisoned");
            if self.wake_seq.load(Ordering::Acquire) == seq
                && !self.aborted.load(Ordering::SeqCst)
                && self.live.load(Ordering::Acquire) != 0
            {
                drop(self.available.wait(guard).expect("park lock poisoned"));
            }
        }
    }

    /// Steals half of the first non-empty victim's deque (from the
    /// back), keeping one task and parking the rest in the thief's own
    /// deque. Victims' LIFO slots are never touched — only the owner
    /// writes those.
    fn steal(&self, id: usize) -> Option<usize> {
        let n = self.queues.len();
        for off in 1..n {
            let victim = &self.queues[(id + off) % n].0;
            let mut taken = {
                let mut vq = victim.deque.lock().expect("driver deque poisoned");
                let len = vq.len();
                if len == 0 {
                    continue;
                }
                vq.split_off(len - len.div_ceil(2))
            };
            let first = taken.pop_front().expect("stole at least one task");
            if !taken.is_empty() {
                let mut own = self.queues[id].0.deque.lock().expect("driver deque poisoned");
                own.extend(taken);
            }
            return Some(first);
        }
        None
    }

    fn finish_one(&self) {
        if self.live.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last task done: every parked driver must wake and exit.
            let _guard = self.park.lock().expect("park lock poisoned");
            self.available.notify_all();
        }
    }
}

/// What a waker carries: the `'static` core plus a task index — never
/// the future itself.
struct WakeHandle {
    sched: Arc<Sched>,
    index: usize,
}

impl Wake for WakeHandle {
    fn wake(self: Arc<Self>) {
        self.sched.schedule(self.index);
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.sched.schedule(self.index);
    }
}

thread_local! {
    /// Which driver is polling on this thread (`usize::MAX` = none) —
    /// lets op futures attribute tasks/chunks to the driver that
    /// actually ran them without threading an id through every poll.
    static DRIVER_ID: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// The driver currently polling on this thread, if any.
pub(crate) fn current_driver() -> Option<usize> {
    let id = DRIVER_ID.with(Cell::get);
    (id != usize::MAX).then_some(id)
}

/// What one driver thread reports back: poll-time accounting (`tasks`
/// and `chunks` are filled in by the op futures via
/// [`current_driver`]).
pub(crate) struct DriverRecord {
    /// Time spent polling futures (µs) — the driver's busy time.
    pub(crate) busy_us: f64,
    /// Run-relative time (µs) of the last poll's end.
    pub(crate) free_at_us: f64,
    /// Futures polled (including polls that immediately returned
    /// `Pending`, e.g. a dependency-gate registration).
    pub(crate) polls: u64,
    /// Pops satisfied by raiding another driver's deque.
    pub(crate) steals: u64,
}

impl DriverRecord {
    /// Folds this record into a [`ProcStats`] row (tasks/chunks come
    /// from the op futures' per-driver counters).
    pub(crate) fn into_proc(self, tasks: u64, chunks: u64) -> ProcStats {
        ProcStats { busy: self.busy_us, tasks, chunks, free_at: self.free_at_us }
    }
}

/// One driver thread's main loop: pop, poll, account, repeat until
/// every task is done.
pub(crate) fn drive(
    id: usize,
    sched: &Arc<Sched>,
    slots: &[TaskSlot<'_>],
    epoch: Instant,
) -> DriverRecord {
    DRIVER_ID.with(|d| d.set(id));
    let mut rec = DriverRecord { busy_us: 0.0, free_at_us: 0.0, polls: 0, steals: 0 };
    while let Some(i) = sched.next_task(id, &mut rec.steals) {
        sched.states[i].store(RUNNING, Ordering::Release);
        let waker = Waker::from(Arc::new(WakeHandle { sched: Arc::clone(sched), index: i }));
        let mut cx = Context::from_waker(&waker);
        let t0 = Instant::now();
        let done = {
            let mut fut = slots[i].future.lock().expect("task future poisoned");
            fut.as_mut().poll(&mut cx).is_ready()
        };
        rec.busy_us += t0.elapsed().as_secs_f64() * 1e6;
        rec.free_at_us = epoch.elapsed().as_secs_f64() * 1e6;
        rec.polls += 1;
        if done {
            sched.states[i].store(DONE, Ordering::Release);
            sched.finish_one();
        } else if sched.states[i]
            .compare_exchange(RUNNING, IDLE, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            // A wake landed mid-poll: the future saw stale state, so
            // requeue it at the back of this driver's own deque —
            // yields are cooperative and stay FIFO on their home
            // driver.
            sched.states[i].store(QUEUED, Ordering::Release);
            sched.requeue_local(id, i);
        }
    }
    DRIVER_ID.with(|d| d.set(usize::MAX));
    rec
}

/// Cooperative yield: completes on its second poll, after re-queuing
/// the task at the back of the run queue — the chunk-boundary yield
/// point of the async backend.
pub(crate) struct YieldNow {
    yielded: bool,
}

/// Yields the current task once.
pub(crate) fn yield_now() -> YieldNow {
    YieldNow { yielded: false }
}

impl Future for YieldNow {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.yielded {
            Poll::Ready(())
        } else {
            self.yielded = true;
            // Mid-poll wake: the driver sees NOTIFIED and requeues us.
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

/// A readiness counter ops await their DAG predecessors on: it opens
/// when `deps` predecessors have arrived, waking every registered
/// waiter.
pub(crate) struct DepGate {
    remaining: AtomicUsize,
    waiters: Mutex<Vec<Waker>>,
}

impl DepGate {
    /// A gate expecting `deps` arrivals (0 = open from the start).
    pub(crate) fn new(deps: usize) -> Self {
        DepGate { remaining: AtomicUsize::new(deps), waiters: Mutex::new(Vec::new()) }
    }

    /// Records one predecessor completion. Returns `true` exactly once
    /// — for the arrival that opened the gate — and the caller must
    /// then invoke [`Self::release`].
    pub(crate) fn arrive(&self) -> bool {
        self.remaining.fetch_sub(1, Ordering::AcqRel) == 1
    }

    /// Wakes every waiter registered so far (late registrants observe
    /// the open gate directly in their poll).
    pub(crate) fn release(&self) {
        let waiters = std::mem::take(&mut *self.waiters.lock().expect("dep gate poisoned"));
        for w in waiters {
            w.wake();
        }
    }

    /// A future resolving once the gate is open.
    pub(crate) fn wait(&self) -> Wait<'_> {
        Wait { gate: self }
    }
}

/// Future returned by [`DepGate::wait`].
pub(crate) struct Wait<'a> {
    gate: &'a DepGate,
}

impl Future for Wait<'_> {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.gate.remaining.load(Ordering::Acquire) == 0 {
            return Poll::Ready(());
        }
        self.gate.waiters.lock().expect("dep gate poisoned").push(cx.waker().clone());
        // Register-then-recheck: if the release ran between the first
        // check and the registration, the drained waiter list missed
        // us — this second look closes the lost-wakeup window. (The
        // symmetric race leaves a stale waker behind; waking a done
        // task is a no-op.)
        if self.gate.remaining.load(Ordering::Acquire) == 0 {
            Poll::Ready(())
        } else {
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    /// Runs `futures` to completion on `drivers` threads.
    fn run_all(futures: Vec<TaskFuture<'_>>, drivers: usize) -> Vec<DriverRecord> {
        let sched = Sched::new(futures.len(), drivers);
        let slots: Vec<TaskSlot<'_>> = futures.into_iter().map(TaskSlot::new).collect();
        let epoch = Instant::now();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..drivers)
                .map(|id| {
                    let sched = Arc::clone(&sched);
                    let slots = &slots;
                    s.spawn(move || drive(id, &sched, slots, epoch))
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("driver panicked")).collect()
        })
    }

    #[test]
    fn yields_interleave_cooperative_tasks() {
        // Two tasks alternating yields on ONE driver must interleave:
        // the run queue is FIFO and a yield goes to the back.
        let log = Mutex::new(Vec::new());
        let mk = |tag: u32| {
            let log = &log;
            Box::pin(async move {
                for step in 0..3u32 {
                    log.lock().unwrap().push((tag, step));
                    yield_now().await;
                }
            }) as TaskFuture<'_>
        };
        run_all(vec![mk(0), mk(1)], 1);
        let got = log.into_inner().unwrap();
        assert_eq!(got, vec![(0, 0), (1, 0), (0, 1), (1, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn dep_gate_orders_producer_before_consumers() {
        for drivers in [1, 3] {
            let gate = DepGate::new(1);
            let value = AtomicU64::new(0);
            let seen: Vec<AtomicU64> = (0..4).map(|_| AtomicU64::new(0)).collect();
            let mut futures: Vec<TaskFuture<'_>> = Vec::new();
            for s in &seen {
                let (gate, value) = (&gate, &value);
                futures.push(Box::pin(async move {
                    gate.wait().await;
                    s.store(value.load(Ordering::Acquire), Ordering::Release);
                }));
            }
            let (gate_ref, value_ref) = (&gate, &value);
            futures.push(Box::pin(async move {
                // Let the consumers register with the gate first.
                for _ in 0..5 {
                    yield_now().await;
                }
                value_ref.store(42, Ordering::Release);
                if gate_ref.arrive() {
                    gate_ref.release();
                }
            }));
            run_all(futures, drivers);
            for s in &seen {
                assert_eq!(s.load(Ordering::Acquire), 42, "consumer ran before gate opened");
            }
        }
    }

    #[test]
    fn zero_dep_gate_is_open() {
        let gate = DepGate::new(0);
        let hit = AtomicU64::new(0);
        let (g, h) = (&gate, &hit);
        run_all(
            vec![Box::pin(async move {
                g.wait().await;
                h.fetch_add(1, Ordering::Relaxed);
            })],
            2,
        );
        assert_eq!(hit.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn steal_takes_half_from_victim_back() {
        // 6 tasks dealt over 2 drivers: deque0 = [0,2,4], deque1 =
        // [1,3,5]. Zero the live count so an exhausted scheduler
        // returns None instead of parking.
        let sched = Sched::new(6, 2);
        for _ in 0..6 {
            sched.finish_one();
        }
        let mut steals = 0u64;
        let mut order = Vec::new();
        while let Some(t) = sched.next_task(1, &mut steals) {
            order.push(t);
        }
        // Own deque FIFO first; then one steal grabs the back half of
        // deque0 ([2,4] — keeps 2, parks 4 locally), then the parked
        // remainder, then a second steal for the last task.
        assert_eq!(order, vec![1, 3, 5, 2, 4, 0]);
        assert_eq!(steals, 2);
        let mut untouched = 0;
        assert_eq!(sched.next_task(0, &mut untouched), None);
        assert_eq!(untouched, 0);
    }

    #[test]
    fn many_tasks_complete_on_few_drivers() {
        // 64 yielding tasks multiplexed over 2 drivers: all complete,
        // poll counts cover at least one poll per yield.
        let counter = AtomicU64::new(0);
        let futures: Vec<TaskFuture<'_>> = (0..64)
            .map(|_| {
                let counter = &counter;
                Box::pin(async move {
                    for _ in 0..4 {
                        counter.fetch_add(1, Ordering::Relaxed);
                        yield_now().await;
                    }
                }) as TaskFuture<'_>
            })
            .collect();
        let records = run_all(futures, 2);
        assert_eq!(counter.load(Ordering::Relaxed), 64 * 4);
        let polls: u64 = records.iter().map(|r| r.polls).sum();
        assert!(polls >= 64 * 4, "polls {polls} < yields");
    }
}
