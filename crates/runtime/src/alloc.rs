//! Runtime processor allocation (§4.1.2).
//!
//! When two parallel operations execute concurrently, the runtime
//! rations processors between them by iteratively equalizing their
//! finishing-time estimates — the paper's pseudocode verbatim:
//!
//! ```text
//! epsilon = 5%
//! p1 = p/2, p2 = p − p1, count = 0
//! eA = finish_estimate(A, p1), eB = finish_estimate(B, p2)
//! while (count < max_count) and (|eA − eB| > epsilon):
//!     if eA > eB:  p1 = p1 + p2/2;  p2 = p − p1
//!     else:        p2 = p2 + p1/2;  p1 = p − p2
//!     eA = finish_estimate(A, p1);  eB = finish_estimate(B, p2)
//!     count = count + 1
//! ```
//!
//! "In practice, using a max_count of four has been sufficient."
//!
//! This module also owns the runtime's other allocation concern: the
//! [`OutputArena`], a single slab holding every operation's output
//! buffer. Workers write task results in place through disjoint
//! `&mut [f64]` chunk views (one per claimed chunk) instead of going
//! through per-task atomic stores, and downstream operations read
//! their inputs by slice reference out of the same slab — the
//! zero-copy data plane described in DESIGN §14.

use crate::finish::{finish_estimate, OpSpec};
use orchestra_machine::MachineConfig;
use std::cell::UnsafeCell;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Parameters of the iterative equalizer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AllocParams {
    /// Relative imbalance tolerance (the paper's 5%).
    pub epsilon: f64,
    /// Maximum iterations (the paper's 4).
    pub max_count: u32,
}

impl Default for AllocParams {
    fn default() -> Self {
        AllocParams { epsilon: 0.05, max_count: 4 }
    }
}

/// The chosen allocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Allocation {
    /// Processors given to operation A.
    pub p1: usize,
    /// Processors given to operation B.
    pub p2: usize,
    /// Final finishing-time estimate for A.
    pub est_a: f64,
    /// Final finishing-time estimate for B.
    pub est_b: f64,
    /// Iterations used.
    pub iterations: u32,
}

/// Rations `p` processors between two concurrently executing parallel
/// operations, equalizing their estimated finishing times.
///
/// # Panics
///
/// Panics if `p < 2` (each operation needs at least one processor).
pub fn allocate_pair(
    a: &OpSpec,
    b: &OpSpec,
    p: usize,
    cfg: &MachineConfig,
    params: &AllocParams,
) -> Allocation {
    assert!(p >= 2, "allocation needs at least two processors");
    let mut p1 = p / 2;
    let mut p2 = p - p1;
    let mut count = 0;
    let mut ea = finish_estimate(a, p1, cfg).total();
    let mut eb = finish_estimate(b, p2, cfg).total();
    while count < params.max_count
        && (ea - eb).abs() > params.epsilon * ea.max(eb).max(f64::EPSILON)
    {
        if ea > eb {
            p1 = (p1 + p2 / 2).min(p - 1);
        } else {
            let p2_grown = (p2 + p1 / 2).min(p - 1);
            p1 = p - p2_grown;
        }
        p1 = p1.clamp(1, p - 1);
        p2 = p - p1;
        ea = finish_estimate(a, p1, cfg).total();
        eb = finish_estimate(b, p2, cfg).total();
        count += 1;
    }
    Allocation { p1, p2, est_a: ea, est_b: eb, iterations: count }
}

/// Generalization to `k ≥ 1` concurrent operations: start from an even
/// split and repeatedly move processors from the earliest-finishing
/// operation to the latest-finishing one (pairwise equalization steps),
/// bounded by `max_count · k` moves.
pub fn allocate_many(
    ops: &[OpSpec],
    p: usize,
    cfg: &MachineConfig,
    params: &AllocParams,
) -> Vec<usize> {
    allocate_many_with(ops, p, params, |op, procs| finish_estimate(op, procs, cfg).total())
}

/// [`allocate_many`] with a caller-supplied finishing-time estimator.
///
/// The simulator calls it with the modeled machine's
/// [`finish_estimate`]; the real backends call it with
/// [`finish_estimate_live`](crate::finish::finish_estimate_live) over
/// live sampled statistics and host-calibrated overheads, where no
/// `MachineConfig` exists.
pub fn allocate_many_with(
    ops: &[OpSpec],
    p: usize,
    params: &AllocParams,
    est: impl Fn(&OpSpec, usize) -> f64,
) -> Vec<usize> {
    let k = ops.len();
    assert!(k >= 1, "need at least one operation");
    assert!(p >= k, "need at least one processor per operation");
    if k == 1 {
        return vec![p];
    }
    let mut alloc = vec![p / k; k];
    let mut extra = p - p / k * k;
    for a in alloc.iter_mut() {
        if extra == 0 {
            break;
        }
        *a += 1;
        extra -= 1;
    }
    for _ in 0..params.max_count * k as u32 {
        let (mut hi, mut lo) = (0, 0);
        let (mut hi_e, mut lo_e) = (f64::MIN, f64::MAX);
        for i in 0..k {
            let e = est(&ops[i], alloc[i].max(1));
            if e > hi_e {
                hi_e = e;
                hi = i;
            }
            if e < lo_e {
                lo_e = e;
                lo = i;
            }
        }
        if hi == lo || (hi_e - lo_e) <= params.epsilon * hi_e || alloc[lo] <= 1 {
            break;
        }
        // Move half of the donor's surplus (at least one processor).
        let transfer = (alloc[lo] / 4).max(1).min(alloc[lo] - 1);
        alloc[lo] -= transfer;
        alloc[hi] += transfer;
    }
    alloc
}

/// One output cell: a plain `f64` the runtime coordinates access to.
///
/// `Sync` is sound because every access pattern the runtime uses is
/// race-free by construction: concurrent *writers* hold disjoint cell
/// ranges (the chunk queue hands each task index out exactly once),
/// and *readers* only touch a cell after observing, with `Acquire`
/// ordering, the `Release` bump of the task's `executed` counter that
/// the writer performs after its plain store — or after the pool has
/// joined, when no writer exists at all.
#[repr(transparent)]
struct OutputCell(UnsafeCell<f64>);

// SAFETY: see the type-level comment — all concurrent access is
// coordinated externally (disjoint claims for writers, executed-counter
// Release/Acquire for readers).
unsafe impl Sync for OutputCell {}

/// A single slab backing every operation's output buffer: the
/// zero-copy data plane.
///
/// Built once from the expanded plan's op sizes, then shared by
/// reference across the worker pool (or the async drivers). Writers
/// obtain per-chunk [`chunk_view`](Self::chunk_view)s, the checkpoint
/// scanner reads completed cells via [`read`](Self::read), downstream
/// ops see a whole finished op through [`op_slice`](Self::op_slice),
/// and the run's final owned buffers come out of
/// [`into_outputs`](Self::into_outputs) once the pool has joined.
pub struct OutputArena {
    cells: Box<[OutputCell]>,
    spans: Vec<Range<usize>>,
    marks: Vec<Watermark>,
}

/// One watermark publication: the published prefix moved from
/// `previous` to `current` (both in completed-task units).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Publication {
    /// Published prefix before this publication.
    pub previous: usize,
    /// Published prefix after it.
    pub current: usize,
}

impl Publication {
    /// True iff this publication was the op's first (the streamed-edge
    /// enable event).
    pub fn is_first(&self) -> bool {
        self.previous == 0 && self.current > 0
    }
}

/// Out-of-order completion bookkeeping behind one op's watermark: the
/// contiguous committed prefix plus the disjoint sorted intervals
/// completed ahead of it.
struct Frontier {
    frontier: usize,
    pending: Vec<(usize, usize)>,
}

/// Per-op progress watermark: the `Release`-published length of the
/// completed contiguous output prefix. Readers `Acquire`-load
/// [`OutputArena::watermark`] and may then read any cell below it —
/// before the op as a whole completes. The frontier mutex serializes
/// interval merging, and its unlock/lock edges chain every committing
/// worker's plain cell stores into happens-before with the `Release`
/// store of the advanced watermark, whichever worker performs it.
struct Watermark {
    published: AtomicUsize,
    pubs: AtomicU64,
    state: Mutex<Frontier>,
}

impl OutputArena {
    /// An arena with one zero-initialized span of `sizes[i]` cells per
    /// operation.
    pub fn for_ops<I: IntoIterator<Item = usize>>(sizes: I) -> Self {
        let mut spans = Vec::new();
        let mut acc = 0usize;
        for n in sizes {
            spans.push(acc..acc + n);
            acc += n;
        }
        let cells: Box<[OutputCell]> = (0..acc).map(|_| OutputCell(UnsafeCell::new(0.0))).collect();
        let marks = spans
            .iter()
            .map(|_| Watermark {
                published: AtomicUsize::new(0),
                pubs: AtomicU64::new(0),
                state: Mutex::new(Frontier { frontier: 0, pending: Vec::new() }),
            })
            .collect();
        OutputArena { cells, spans, marks }
    }

    /// Number of operations the arena was sized for.
    pub fn ops(&self) -> usize {
        self.spans.len()
    }

    /// Task count of operation `op`.
    pub fn op_len(&self, op: usize) -> usize {
        self.spans[op].len()
    }

    /// Writes one cell through exclusive access — used to pre-fill
    /// restored outputs before the arena is shared with any worker.
    pub fn set(&mut self, op: usize, task: usize, value: f64) {
        let span = self.spans[op].clone();
        assert!(task < span.len(), "task {task} out of op {op} bounds {}", span.len());
        *self.cells[span.start + task].0.get_mut() = value;
    }

    /// A mutable view of operation `op`'s cells `[start, start+len)`,
    /// the per-chunk write window of the data plane.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the operation's span.
    ///
    /// # Safety
    ///
    /// The caller must hold exclusive write access to exactly these
    /// cells for the view's lifetime: in the runtime that is the claim
    /// queue's exactly-once chunk hand-out. No [`op_slice`] of the same
    /// op may be created while the view is live.
    // The `&self → &mut` shape is the point of the interior-mutability
    // arena: disjointness comes from the claim protocol, not the borrow
    // checker, which is why the method is `unsafe`.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn chunk_view(&self, op: usize, start: usize, len: usize) -> &mut [f64] {
        let span = &self.spans[op];
        assert!(
            start.checked_add(len).is_some_and(|end| end <= span.len()),
            "chunk [{start}, {start}+{len}) out of op {op} bounds {}",
            span.len()
        );
        let base = self.cells[span.start + start].0.get();
        // SAFETY: range checked above; exclusivity is the caller's
        // contract. Cells are `repr(transparent)` over `UnsafeCell<f64>`,
        // which has the layout of `f64`, so consecutive cells form a
        // valid `[f64]`.
        unsafe { std::slice::from_raw_parts_mut(base, len) }
    }

    /// Writes a single task's output — the scattered-write fallback
    /// for resumed ops whose queue indices are remapped non-contiguously.
    ///
    /// # Safety
    ///
    /// Same contract as [`chunk_view`](Self::chunk_view) for the one
    /// cell: the caller must be the task's exactly-once claimant.
    pub unsafe fn write(&self, op: usize, task: usize, value: f64) {
        let span = &self.spans[op];
        assert!(task < span.len(), "task {task} out of op {op} bounds {}", span.len());
        // SAFETY: in-bounds; exclusivity is the caller's contract.
        unsafe { *self.cells[span.start + task].0.get() = value };
    }

    /// Reads a single task's output.
    ///
    /// # Safety
    ///
    /// The cell must be quiescent: the caller must have observed the
    /// task's completion through an `Acquire` load of its `executed`
    /// counter (pairing with the writer's post-store `Release` bump),
    /// or otherwise know no writer can touch it.
    pub unsafe fn read(&self, op: usize, task: usize) -> f64 {
        let span = &self.spans[op];
        assert!(task < span.len(), "task {task} out of op {op} bounds {}", span.len());
        // SAFETY: in-bounds; quiescence is the caller's contract.
        unsafe { *self.cells[span.start + task].0.get() }
    }

    /// The whole output slice of a *finished* operation, handed to
    /// downstream ops as their input — no copy.
    ///
    /// # Safety
    ///
    /// Every task of `op` must have completed, and that completion must
    /// have been observed with `Acquire` ordering (in the runtime:
    /// dependency counters reach zero before any dependent runs). No
    /// [`chunk_view`](Self::chunk_view) of this op may be live.
    pub unsafe fn op_slice(&self, op: usize) -> &[f64] {
        let span = &self.spans[op];
        if span.is_empty() {
            return &[];
        }
        let base = self.cells[span.start].0.get() as *const f64;
        // SAFETY: in-bounds by construction; quiescence is the
        // caller's contract.
        unsafe { std::slice::from_raw_parts(base, span.len()) }
    }

    /// Consumes the arena into one owned `Vec<f64>` per operation.
    /// Safe: ownership proves no view or writer can still exist.
    pub fn into_outputs(mut self) -> Vec<Vec<f64>> {
        let spans = std::mem::take(&mut self.spans);
        spans.into_iter().map(|span| span.map(|i| *self.cells[i].0.get_mut()).collect()).collect()
    }

    /// The op's published watermark: every cell below it holds its
    /// final value and may be read concurrently with the op still
    /// executing above it. `Acquire`: pairs with the `Release` store in
    /// [`commit_range`](Self::commit_range) / [`publish_all`](Self::publish_all).
    pub fn watermark(&self, op: usize) -> usize {
        self.marks[op].published.load(Ordering::Acquire)
    }

    /// How many times the op's watermark has been published (the
    /// cross-core store + wakeup events `choose_batch` amortizes).
    pub fn watermark_pubs(&self, op: usize) -> u64 {
        self.marks[op].pubs.load(Ordering::Relaxed)
    }

    /// Pre-publishes a restored prefix during single-threaded setup —
    /// used for ops whose outputs were pre-filled from a snapshot or
    /// that completed in a previous attempt. Not counted as a runtime
    /// publication.
    pub fn seed_watermark(&mut self, op: usize, len: usize) {
        assert!(len <= self.spans[op].len(), "seed beyond op {op} bounds");
        let mark = &mut self.marks[op];
        mark.state.get_mut().expect("unshared arena").frontier = len;
        *mark.published.get_mut() = len;
    }

    /// Records that tasks `[start, start+len)` of `op` committed their
    /// outputs, and publishes the watermark when the unpublished
    /// contiguous prefix has grown by at least `batch` tasks (or the op
    /// just finished). Completion order across workers is arbitrary;
    /// intervals ahead of the frontier are held back until the gap
    /// fills. Returns the publication when one happened.
    ///
    /// Memory ordering: the caller's plain cell stores for this
    /// interval happen-before its frontier-mutex unlock; any later
    /// publisher locks the same mutex before `Release`-storing the
    /// advanced watermark, so a reader's `Acquire` load of the
    /// watermark makes every covered cell's final value visible.
    pub fn commit_range(
        &self,
        op: usize,
        start: usize,
        len: usize,
        batch: usize,
    ) -> Option<Publication> {
        if len == 0 {
            return None;
        }
        let total = self.spans[op].len();
        assert!(
            start.checked_add(len).is_some_and(|end| end <= total),
            "commit [{start}, {start}+{len}) out of op {op} bounds {total}"
        );
        let mark = &self.marks[op];
        let mut st = mark.state.lock().expect("watermark state poisoned");
        let (mut s, mut e) = (start, start + len);
        if s == st.frontier {
            // Fast path: the interval extends the frontier directly.
            st.frontier = e;
        } else {
            debug_assert!(s > st.frontier, "interval below the committed frontier");
            // Insert sorted, coalescing with touching neighbours.
            let at = st.pending.partition_point(|&(ps, _)| ps < s);
            if at < st.pending.len() && st.pending[at].0 == e {
                e = st.pending[at].1;
                st.pending.remove(at);
            }
            if at > 0 && st.pending[at - 1].1 == s {
                s = st.pending[at - 1].0;
                st.pending[at - 1] = (s, e);
            } else {
                let at = at.min(st.pending.len());
                st.pending.insert(at, (s, e));
            }
        }
        // Drain pending intervals that now touch the frontier.
        while let Some(&(ps, pe)) = st.pending.first() {
            if ps != st.frontier {
                break;
            }
            st.frontier = pe;
            st.pending.remove(0);
        }
        let frontier = st.frontier;
        let previous = mark.published.load(Ordering::Relaxed);
        if frontier > previous && (frontier - previous >= batch.max(1) || frontier == total) {
            mark.published.store(frontier, Ordering::Release);
            mark.pubs.fetch_add(1, Ordering::Relaxed);
            drop(st);
            return Some(Publication { previous, current: frontier });
        }
        None
    }

    /// Force-publishes the whole op — the completion path, which also
    /// covers producers whose chunks never went through
    /// [`commit_range`](Self::commit_range) (scattered writers, empty
    /// ops). Takes the frontier lock so it serializes with in-flight
    /// commits; idempotent once fully published.
    pub fn publish_all(&self, op: usize) -> Publication {
        let total = self.spans[op].len();
        let mark = &self.marks[op];
        let mut st = mark.state.lock().expect("watermark state poisoned");
        st.frontier = total;
        st.pending.clear();
        let previous = mark.published.load(Ordering::Relaxed);
        if previous < total {
            mark.published.store(total, Ordering::Release);
            mark.pubs.fetch_add(1, Ordering::Relaxed);
        }
        Publication { previous, current: total }
    }
}

#[cfg(test)]
mod arena_tests {
    use super::OutputArena;

    #[test]
    fn spans_are_disjoint_and_sized() {
        let arena = OutputArena::for_ops([3, 0, 5]);
        assert_eq!(arena.ops(), 3);
        assert_eq!(arena.op_len(0), 3);
        assert_eq!(arena.op_len(1), 0);
        assert_eq!(arena.op_len(2), 5);
        // SAFETY: single-threaded test, views dropped before reads.
        unsafe {
            arena.chunk_view(0, 0, 3).copy_from_slice(&[1.0, 2.0, 3.0]);
            arena.chunk_view(2, 1, 2).copy_from_slice(&[9.0, 8.0]);
        }
        let out = arena.into_outputs();
        assert_eq!(out, vec![vec![1.0, 2.0, 3.0], vec![], vec![0.0, 9.0, 8.0, 0.0, 0.0]]);
    }

    #[test]
    fn restored_fill_then_slice_reference() {
        let mut arena = OutputArena::for_ops([4, 2]);
        arena.set(0, 2, 7.5);
        // SAFETY: no concurrent writers in this test.
        let s = unsafe { arena.op_slice(0) };
        assert_eq!(s, &[0.0, 0.0, 7.5, 0.0]);
        assert_eq!(unsafe { arena.read(0, 2) }, 7.5);
    }

    #[test]
    #[should_panic(expected = "out of op 0 bounds")]
    fn chunk_view_bounds_checked() {
        let arena = OutputArena::for_ops([4]);
        // SAFETY: panics before any aliasing could occur.
        let _ = unsafe { arena.chunk_view(0, 2, 3) };
    }

    #[test]
    #[should_panic(expected = "out of op 1 bounds")]
    fn write_bounds_checked() {
        let arena = OutputArena::for_ops([4, 1]);
        // SAFETY: panics before the store.
        unsafe { arena.write(1, 1, 0.0) };
    }

    #[test]
    fn empty_ops_yield_empty_slices() {
        let arena = OutputArena::for_ops([0, 0]);
        assert_eq!(unsafe { arena.op_slice(0) }, &[] as &[f64]);
        assert_eq!(arena.into_outputs(), vec![Vec::<f64>::new(), Vec::new()]);
    }

    #[test]
    fn watermark_advances_only_over_the_contiguous_prefix() {
        let arena = OutputArena::for_ops([10]);
        assert_eq!(arena.watermark(0), 0);
        // An out-of-order interval is held back entirely.
        assert_eq!(arena.commit_range(0, 4, 2, 1), None);
        assert_eq!(arena.watermark(0), 0);
        // The prefix arrives: frontier jumps over the merged pending
        // interval in one publication.
        let p = arena.commit_range(0, 0, 4, 1).expect("prefix publishes");
        assert!(p.is_first());
        assert_eq!(p, super::Publication { previous: 0, current: 6 });
        assert_eq!(arena.watermark(0), 6);
        // Filling the tail completes the op.
        let p = arena.commit_range(0, 6, 4, 1).expect("tail publishes");
        assert_eq!(p.current, 10);
        assert_eq!(arena.watermark(0), 10);
        assert_eq!(arena.watermark_pubs(0), 2);
    }

    #[test]
    fn batching_coalesces_publications_and_completion_flushes() {
        let arena = OutputArena::for_ops([8]);
        // batch=4: three 1-task commits stay unpublished…
        for t in 0..3 {
            assert_eq!(arena.commit_range(0, t, 1, 4), None);
        }
        assert_eq!(arena.watermark(0), 0);
        // …the fourth crosses the batch threshold.
        let p = arena.commit_range(0, 3, 1, 4).expect("batch boundary publishes");
        assert_eq!((p.previous, p.current), (0, 4));
        // The final task always flushes, batch or not.
        for t in 4..7 {
            assert_eq!(arena.commit_range(0, t, 1, 4), None);
        }
        let p = arena.commit_range(0, 7, 1, 4).expect("completion publishes");
        assert_eq!(p.current, 8);
        assert_eq!(arena.watermark_pubs(0), 2);
    }

    #[test]
    fn publish_all_is_idempotent_and_covers_uncommitted_ops() {
        let arena = OutputArena::for_ops([5, 0]);
        let p = arena.publish_all(0);
        assert!(p.is_first());
        assert_eq!(arena.watermark(0), 5);
        let p = arena.publish_all(0);
        assert_eq!((p.previous, p.current), (5, 5));
        assert_eq!(arena.watermark_pubs(0), 1, "re-publish must not count");
        // Empty op: watermark trivially complete, never "first".
        assert!(!arena.publish_all(1).is_first());
    }

    #[test]
    fn seeded_watermark_counts_no_publication() {
        let mut arena = OutputArena::for_ops([6]);
        arena.seed_watermark(0, 6);
        assert_eq!(arena.watermark(0), 6);
        assert_eq!(arena.watermark_pubs(0), 0);
        assert!(!arena.publish_all(0).is_first());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunking::PolicyKind;

    fn spec(n: usize, mean: f64, cv: f64) -> OpSpec {
        OpSpec {
            tasks: n,
            mean,
            std_dev: mean * cv,
            bytes_in: n as u64 * 128,
            bytes_out: n as u64 * 128,
            policy: PolicyKind::Taper,
        }
    }

    #[test]
    fn equal_ops_get_equal_processors() {
        let a = spec(2048, 50.0, 0.3);
        let cfg = MachineConfig::ncube2(64);
        let r = allocate_pair(&a, &a.clone(), 64, &cfg, &AllocParams::default());
        assert_eq!(r.p1, 32);
        assert_eq!(r.p2, 32);
        assert_eq!(r.iterations, 0, "already balanced");
    }

    #[test]
    fn bigger_op_gets_more_processors() {
        let big = spec(8192, 100.0, 0.3);
        let small = spec(512, 20.0, 0.3);
        let cfg = MachineConfig::ncube2(128);
        let r = allocate_pair(&big, &small, 128, &cfg, &AllocParams::default());
        assert!(r.p1 > r.p2, "A has 80× the work: p1={} p2={}", r.p1, r.p2);
        assert_eq!(r.p1 + r.p2, 128);
    }

    #[test]
    fn allocation_reduces_imbalance() {
        let big = spec(8192, 100.0, 0.5);
        let small = spec(1024, 10.0, 0.1);
        let cfg = MachineConfig::ncube2(256);
        let even_a = finish_estimate(&big, 128, &cfg).total();
        let even_b = finish_estimate(&small, 128, &cfg).total();
        let r = allocate_pair(&big, &small, 256, &cfg, &AllocParams::default());
        let before = (even_a - even_b).abs();
        let after = (r.est_a - r.est_b).abs();
        assert!(after < before, "imbalance must shrink: {before} → {after}");
    }

    #[test]
    fn iterations_bounded_by_max_count() {
        let big = spec(1_000_000, 100.0, 0.0);
        let small = spec(1, 1.0, 0.0);
        let cfg = MachineConfig::ncube2(1024);
        let r = allocate_pair(&big, &small, 1024, &cfg, &AllocParams::default());
        assert!(r.iterations <= 4);
        assert!(r.p1 >= 1 && r.p2 >= 1);
    }

    #[test]
    fn many_degenerates_to_all_for_single_op() {
        let cfg = MachineConfig::ncube2(64);
        let alloc = allocate_many(&[spec(100, 1.0, 0.0)], 64, &cfg, &AllocParams::default());
        assert_eq!(alloc, vec![64]);
    }

    #[test]
    fn many_allocates_all_processors() {
        let cfg = MachineConfig::ncube2(96);
        let ops = vec![spec(4096, 50.0, 0.2), spec(1024, 10.0, 1.0), spec(2048, 30.0, 0.5)];
        let alloc = allocate_many(&ops, 96, &cfg, &AllocParams::default());
        assert_eq!(alloc.iter().sum::<usize>(), 96);
        assert!(alloc.iter().all(|&a| a >= 1));
        // The heaviest op receives the most processors.
        assert!(alloc[0] >= alloc[1] && alloc[0] >= alloc[2]);
    }

    #[test]
    fn pair_and_many_agree_roughly() {
        let a = spec(8192, 100.0, 0.3);
        let b = spec(512, 20.0, 0.3);
        let cfg = MachineConfig::ncube2(128);
        let pair = allocate_pair(&a, &b, 128, &cfg, &AllocParams::default());
        let many = allocate_many(&[a, b], 128, &cfg, &AllocParams::default());
        // Same direction of skew.
        assert!(many[0] > many[1]);
        assert!(pair.p1 > pair.p2);
    }

    #[test]
    fn many_with_uses_the_supplied_estimator() {
        // A trivial work/p estimator must still skew toward the op
        // with more total work, without any MachineConfig in sight.
        let ops = vec![spec(8000, 1.0, 0.0), spec(1000, 1.0, 0.0)];
        let alloc = allocate_many_with(&ops, 8, &AllocParams::default(), |op, p| {
            op.total_work() / p as f64
        });
        assert_eq!(alloc.iter().sum::<usize>(), 8);
        assert!(alloc[0] > alloc[1], "8× work must earn more processors: {alloc:?}");
    }

    #[test]
    #[should_panic(expected = "at least two processors")]
    fn pair_rejects_single_processor() {
        let cfg = MachineConfig::ncube2(1);
        allocate_pair(&spec(1, 1.0, 0.0), &spec(1, 1.0, 0.0), 1, &cfg, &AllocParams::default());
    }
}
