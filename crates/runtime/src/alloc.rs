//! Runtime processor allocation (§4.1.2).
//!
//! When two parallel operations execute concurrently, the runtime
//! rations processors between them by iteratively equalizing their
//! finishing-time estimates — the paper's pseudocode verbatim:
//!
//! ```text
//! epsilon = 5%
//! p1 = p/2, p2 = p − p1, count = 0
//! eA = finish_estimate(A, p1), eB = finish_estimate(B, p2)
//! while (count < max_count) and (|eA − eB| > epsilon):
//!     if eA > eB:  p1 = p1 + p2/2;  p2 = p − p1
//!     else:        p2 = p2 + p1/2;  p1 = p − p2
//!     eA = finish_estimate(A, p1);  eB = finish_estimate(B, p2)
//!     count = count + 1
//! ```
//!
//! "In practice, using a max_count of four has been sufficient."

use crate::finish::{finish_estimate, OpSpec};
use orchestra_machine::MachineConfig;

/// Parameters of the iterative equalizer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AllocParams {
    /// Relative imbalance tolerance (the paper's 5%).
    pub epsilon: f64,
    /// Maximum iterations (the paper's 4).
    pub max_count: u32,
}

impl Default for AllocParams {
    fn default() -> Self {
        AllocParams { epsilon: 0.05, max_count: 4 }
    }
}

/// The chosen allocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Allocation {
    /// Processors given to operation A.
    pub p1: usize,
    /// Processors given to operation B.
    pub p2: usize,
    /// Final finishing-time estimate for A.
    pub est_a: f64,
    /// Final finishing-time estimate for B.
    pub est_b: f64,
    /// Iterations used.
    pub iterations: u32,
}

/// Rations `p` processors between two concurrently executing parallel
/// operations, equalizing their estimated finishing times.
///
/// # Panics
///
/// Panics if `p < 2` (each operation needs at least one processor).
pub fn allocate_pair(
    a: &OpSpec,
    b: &OpSpec,
    p: usize,
    cfg: &MachineConfig,
    params: &AllocParams,
) -> Allocation {
    assert!(p >= 2, "allocation needs at least two processors");
    let mut p1 = p / 2;
    let mut p2 = p - p1;
    let mut count = 0;
    let mut ea = finish_estimate(a, p1, cfg).total();
    let mut eb = finish_estimate(b, p2, cfg).total();
    while count < params.max_count
        && (ea - eb).abs() > params.epsilon * ea.max(eb).max(f64::EPSILON)
    {
        if ea > eb {
            p1 = (p1 + p2 / 2).min(p - 1);
        } else {
            let p2_grown = (p2 + p1 / 2).min(p - 1);
            p1 = p - p2_grown;
        }
        p1 = p1.clamp(1, p - 1);
        p2 = p - p1;
        ea = finish_estimate(a, p1, cfg).total();
        eb = finish_estimate(b, p2, cfg).total();
        count += 1;
    }
    Allocation { p1, p2, est_a: ea, est_b: eb, iterations: count }
}

/// Generalization to `k ≥ 1` concurrent operations: start from an even
/// split and repeatedly move processors from the earliest-finishing
/// operation to the latest-finishing one (pairwise equalization steps),
/// bounded by `max_count · k` moves.
pub fn allocate_many(
    ops: &[OpSpec],
    p: usize,
    cfg: &MachineConfig,
    params: &AllocParams,
) -> Vec<usize> {
    let k = ops.len();
    assert!(k >= 1, "need at least one operation");
    assert!(p >= k, "need at least one processor per operation");
    if k == 1 {
        return vec![p];
    }
    let mut alloc = vec![p / k; k];
    let mut extra = p - p / k * k;
    for a in alloc.iter_mut() {
        if extra == 0 {
            break;
        }
        *a += 1;
        extra -= 1;
    }
    let est = |ops: &[OpSpec], alloc: &[usize], i: usize| -> f64 {
        finish_estimate(&ops[i], alloc[i].max(1), cfg).total()
    };
    for _ in 0..params.max_count * k as u32 {
        let (mut hi, mut lo) = (0, 0);
        let (mut hi_e, mut lo_e) = (f64::MIN, f64::MAX);
        for i in 0..k {
            let e = est(ops, &alloc, i);
            if e > hi_e {
                hi_e = e;
                hi = i;
            }
            if e < lo_e {
                lo_e = e;
                lo = i;
            }
        }
        if hi == lo || (hi_e - lo_e) <= params.epsilon * hi_e || alloc[lo] <= 1 {
            break;
        }
        // Move half of the donor's surplus (at least one processor).
        let transfer = (alloc[lo] / 4).max(1).min(alloc[lo] - 1);
        alloc[lo] -= transfer;
        alloc[hi] += transfer;
    }
    alloc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunking::PolicyKind;

    fn spec(n: usize, mean: f64, cv: f64) -> OpSpec {
        OpSpec {
            tasks: n,
            mean,
            std_dev: mean * cv,
            bytes_in: n as u64 * 128,
            bytes_out: n as u64 * 128,
            policy: PolicyKind::Taper,
        }
    }

    #[test]
    fn equal_ops_get_equal_processors() {
        let a = spec(2048, 50.0, 0.3);
        let cfg = MachineConfig::ncube2(64);
        let r = allocate_pair(&a, &a.clone(), 64, &cfg, &AllocParams::default());
        assert_eq!(r.p1, 32);
        assert_eq!(r.p2, 32);
        assert_eq!(r.iterations, 0, "already balanced");
    }

    #[test]
    fn bigger_op_gets_more_processors() {
        let big = spec(8192, 100.0, 0.3);
        let small = spec(512, 20.0, 0.3);
        let cfg = MachineConfig::ncube2(128);
        let r = allocate_pair(&big, &small, 128, &cfg, &AllocParams::default());
        assert!(r.p1 > r.p2, "A has 80× the work: p1={} p2={}", r.p1, r.p2);
        assert_eq!(r.p1 + r.p2, 128);
    }

    #[test]
    fn allocation_reduces_imbalance() {
        let big = spec(8192, 100.0, 0.5);
        let small = spec(1024, 10.0, 0.1);
        let cfg = MachineConfig::ncube2(256);
        let even_a = finish_estimate(&big, 128, &cfg).total();
        let even_b = finish_estimate(&small, 128, &cfg).total();
        let r = allocate_pair(&big, &small, 256, &cfg, &AllocParams::default());
        let before = (even_a - even_b).abs();
        let after = (r.est_a - r.est_b).abs();
        assert!(after < before, "imbalance must shrink: {before} → {after}");
    }

    #[test]
    fn iterations_bounded_by_max_count() {
        let big = spec(1_000_000, 100.0, 0.0);
        let small = spec(1, 1.0, 0.0);
        let cfg = MachineConfig::ncube2(1024);
        let r = allocate_pair(&big, &small, 1024, &cfg, &AllocParams::default());
        assert!(r.iterations <= 4);
        assert!(r.p1 >= 1 && r.p2 >= 1);
    }

    #[test]
    fn many_degenerates_to_all_for_single_op() {
        let cfg = MachineConfig::ncube2(64);
        let alloc = allocate_many(&[spec(100, 1.0, 0.0)], 64, &cfg, &AllocParams::default());
        assert_eq!(alloc, vec![64]);
    }

    #[test]
    fn many_allocates_all_processors() {
        let cfg = MachineConfig::ncube2(96);
        let ops = vec![spec(4096, 50.0, 0.2), spec(1024, 10.0, 1.0), spec(2048, 30.0, 0.5)];
        let alloc = allocate_many(&ops, 96, &cfg, &AllocParams::default());
        assert_eq!(alloc.iter().sum::<usize>(), 96);
        assert!(alloc.iter().all(|&a| a >= 1));
        // The heaviest op receives the most processors.
        assert!(alloc[0] >= alloc[1] && alloc[0] >= alloc[2]);
    }

    #[test]
    fn pair_and_many_agree_roughly() {
        let a = spec(8192, 100.0, 0.3);
        let b = spec(512, 20.0, 0.3);
        let cfg = MachineConfig::ncube2(128);
        let pair = allocate_pair(&a, &b, 128, &cfg, &AllocParams::default());
        let many = allocate_many(&[a, b], 128, &cfg, &AllocParams::default());
        // Same direction of skew.
        assert!(many[0] > many[1]);
        assert!(pair.p1 > pair.p2);
    }

    #[test]
    #[should_panic(expected = "at least two processors")]
    fn pair_rejects_single_processor() {
        let cfg = MachineConfig::ncube2(1);
        allocate_pair(&spec(1, 1.0, 0.0), &spec(1, 1.0, 0.0), 1, &cfg, &AllocParams::default());
    }
}
