#![warn(missing_docs)]
//! # orchestra-runtime
//!
//! The adaptive runtime system (§4 of *Orchestrating Interactions Among
//! Parallel Computations*, PLDI 1993), executing Delirium dataflow
//! graphs on the simulated machine:
//!
//! * [`stats`] — online µ/σ sampling and positional cost functions;
//! * [`chunking`] — grain-size policies: **TAPER** (variance-adaptive
//!   decreasing chunks with `s = µg/µc` cost-function scaling) and the
//!   baselines it is compared against (static block, self-scheduling,
//!   guided self-scheduling, factoring);
//! * [`par_op`] — simulation of a single parallel operation under
//!   owner-computes data placement;
//! * [`dist_taper`] — the distributed TAPER epoch/token binary tree
//!   with root-driven chunk re-assignment;
//! * [`finish`] — the finishing-time estimate
//!   `finish = setup + compute + lag + comm + sched` (equation 1);
//! * [`alloc`] — the iterative processor-allocation equalizer
//!   (ε = 5%, max_count = 4) and the zero-copy [`OutputArena`] backing
//!   every operation's output buffer;
//! * [`granularity`] — communication batch-size choice for pipelined
//!   operation pairs;
//! * [`executor`] — level-structured graph execution combining all of
//!   the above;
//! * [`threaded`] — the real-thread execution backend: the same graphs
//!   and chunk policies driving actual `std::thread` workers over real
//!   buffers, for differential testing against the simulator;
//! * [`asynch`] — the cooperative futures backend: a dependency-free
//!   hand-rolled executor multiplexing the op DAG over a few driver
//!   threads, ops awaiting predecessors and yielding at chunk
//!   boundaries;
//! * [`checkpoint`] — fault tolerance for the real backends: versioned
//!   crc-checked snapshots piggybacked on dist-TAPER epoch barriers,
//!   deterministic fault injection ([`FaultPlan`]), and crash recovery
//!   via [`execute_graph_resumable`].

pub mod alloc;
pub mod asynch;
pub mod cancel;
pub mod checkpoint;
pub mod chunking;
pub mod dist_taper;
pub mod executor;
pub mod finish;
pub mod granularity;
pub mod par_op;
pub mod stats;
pub mod threaded;

pub use alloc::{allocate_many, allocate_pair, AllocParams, Allocation, OutputArena, Publication};
pub use asynch::{execute_async, resolve_drivers, AsyncOpRecord, AsyncRun};
pub use cancel::{CancelToken, RunError};
pub use checkpoint::{
    execute_graph_resumable, graph_fingerprint, load_latest, plan_fingerprint, snapshot_versions,
    CheckpointSpec, FaultPlan, FaultTrigger, KillSpec, ResumableRun, Snapshot,
};
pub use chunking::{ChunkPolicy, Factoring, Gss, PolicyKind, SelfSched, Taper, REASSIGN_CV_GATE};
pub use dist_taper::{simulate_dist_taper, simulate_dist_taper_at, DistResult};
pub use executor::{costs_of_node, execute_graph, ExecutionReport, ExecutorOptions, NodeReport};
pub use finish::{finish_estimate, finish_estimate_live, FinishEstimate, HostCalibration, OpSpec};
pub use granularity::{
    batch_cost, batch_cost_params, choose_batch, choose_batch_params, pipelined_stage_time,
    pipelined_stage_time_params,
};
pub use par_op::{
    owner_of, simulate_dynamic, simulate_policy, simulate_static, OpOptions, OpResult,
};
pub use stats::{CostFn, OnlineStats, StealStats};
pub use threaded::dist::{DistChunk, DistQueue};
pub use threaded::topology::{
    pin_current_thread, CpuInfo, CpuTopology, StealDistance, StealOrder, StealTarget,
    TopologyFingerprint, TopologyMode, TopologySource, WorkerTopo,
};
pub use threaded::{
    execute_sequential, execute_threaded, AccessPattern, ExecutorBackend, ReduceKernel,
    SequentialRun, SpinKernel, TaskCtx, TaskKernel, ThreadedRun,
};
