//! The worker pool: N OS threads executing a dependency-counted DAG of
//! parallel operations, each operation scheduled through a shared
//! [`ChunkQueue`](super::queue::ChunkQueue) or, under distributed
//! TAPER, through per-worker home queues
//! ([`DistQueue`](super::dist::DistQueue)).
//!
//! The scheduling hot path is built to stay off the data path:
//!
//! * **Per-worker ready deques** — each worker owns a deque of *op
//!   tokens* (indices of operations with unclaimed chunks). A worker
//!   pops from its own front and, when empty, steals from another
//!   worker's back. Tokens are hints: exactly-once execution is
//!   guaranteed by the chunk queue's claim path, so a stale token
//!   (op already drained) just fails its claim and is dropped.
//! * **Claim loops** — after claiming its first chunk from an op, a
//!   worker re-advertises the op (one token push + at most one
//!   targeted wakeup) and then loops claim→execute directly against
//!   the queue until the op is drained: no deque traffic per chunk.
//! * **Targeted wakeups** — sleepers park on a condvar guarded by a
//!   wake-sequence counter. Producers bump the sequence and
//!   `notify_one` only when a sleeper is registered; the all-busy
//!   steady state does zero wake syscalls, and completion of the last
//!   op broadcasts once.
//! * **Batched sampling** — workers time every task with a chained
//!   clock read (N tasks cost N+1 `Instant::now` calls, not 2N),
//!   accumulate µ/σ into a stack-local [`OnlineStats`], and merge it
//!   into the chunk policy once per chunk via
//!   [`ChunkQueue::observe_chunk`].
//! * **Cache-line padding** — per-worker shared state is 64-byte
//!   aligned so one worker's deque lock never false-shares with its
//!   neighbour's.
//! * **Private dist tokens** — a distributed-TAPER op's token goes to
//!   *every* worker's private, non-stealable `dist_ready` list when the
//!   op becomes ready (each worker owns a home queue it alone can
//!   drain, so each must visit the op). Keeping these tokens out of the
//!   stealable deques is a liveness requirement, not an optimisation:
//!   a stolen dist token would be dropped by a thief whose own home
//!   queue is empty, stranding the owner's tasks forever. A worker that
//!   exhausts its home queue can drop its token for good —
//!   [`DistQueue`](super::dist::DistQueue) re-assigns work only into
//!   the claiming worker's own queue, so an abandoned home can never
//!   refill behind its owner's back.

use super::dist::DistQueue;
use super::queue::ChunkQueue;
use super::topology::{pin_current_thread, StealDistance, WorkerTopo};
use super::{TaskCtx, TaskKernel};
use crate::stats::{OnlineStats, StealStats};
use orchestra_delirium::Node;
use orchestra_machine::ProcStats;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// How one operation's chunks are handed out: a shared claim queue
/// (work-stealing over one cursor/policy) or distributed TAPER's
/// per-worker home queues with epoch-token migration.
pub(crate) enum OpQueue {
    /// All workers claim from one shared queue.
    Shared(ChunkQueue),
    /// Each worker drains its own home queue; the coordinator migrates
    /// work from laggards.
    Dist(DistQueue),
}

impl OpQueue {
    pub(crate) fn chunks_claimed(&self) -> u64 {
        match self {
            OpQueue::Shared(q) => q.chunks_claimed(),
            OpQueue::Dist(q) => q.chunks_claimed(),
        }
    }

    pub(crate) fn is_dist(&self) -> bool {
        matches!(self, OpQueue::Dist(_))
    }

    pub(crate) fn as_dist(&self) -> Option<&DistQueue> {
        match self {
            OpQueue::Shared(_) => None,
            OpQueue::Dist(q) => Some(q),
        }
    }
}

/// One schedulable operation instance: a graph node at one pipeline
/// iteration, with its dependency counters and real output buffer.
pub(crate) struct OpInstance {
    /// Display name (`B_I`, or `A_D@3` for pipeline iteration 3).
    pub name: String,
    /// The underlying graph node id.
    pub node: usize,
    /// Pipeline iteration (0 for ungrouped nodes).
    pub iter: usize,
    /// Per-task simulated cost hints (µs), sampled exactly as the
    /// simulator samples them.
    pub costs: Vec<f64>,
    /// The claim-next-chunk queue (shared or distributed).
    pub queue: OpQueue,
    /// Unfinished dependency count; the op becomes ready at 0.
    pub deps: AtomicUsize,
    /// Ops to notify when this one completes.
    pub dependents: Vec<usize>,
    /// Tasks not yet executed; the op is complete at 0.
    pub outstanding: AtomicUsize,
    /// Output buffer: one f64 (as bits) per task.
    pub output: Vec<AtomicU64>,
    /// Execution count per task (differential-testing evidence that no
    /// chunk was lost or duplicated).
    pub executed: Vec<AtomicU32>,
    /// First-claim time, µs since run start (f64 bits; MAX = never).
    pub started_bits: AtomicU64,
    /// Completion time, µs since run start (f64 bits; MAX = never).
    pub finished_bits: AtomicU64,
}

impl OpInstance {
    pub(crate) fn output_values(&self) -> Vec<f64> {
        self.output.iter().map(|b| f64::from_bits(b.load(Ordering::Acquire))).collect()
    }

    pub(crate) fn exec_counts(&self) -> Vec<u32> {
        self.executed.iter().map(|c| c.load(Ordering::Acquire)).collect()
    }
}

/// Per-worker measurements from one pool run.
pub struct WorkerRecord {
    /// Busy time / task count / chunk count, as the simulator records
    /// them per processor.
    pub proc: ProcStats,
    /// Online µ/σ over this worker's task times (µs).
    pub timing: OnlineStats,
    /// Steal counters bucketed by hierarchy distance.
    pub steal: StealStats,
    /// Whether the kernel accepted this worker's CPU pin (always
    /// `false` when pinning is disabled).
    pub pinned: bool,
}

/// Pads per-worker shared state to a cache line so adjacent workers'
/// deque locks don't false-share.
#[repr(align(64))]
struct CachePadded<T>(T);

/// The shared half of one worker's state: its stealable ready-op deque
/// and its private distributed-op token list. Everything hot and
/// worker-private (ProcStats, timing accumulators, the per-chunk
/// OnlineStats) lives on the worker's own stack instead.
struct WorkerState {
    ready: Mutex<VecDeque<usize>>,
    /// Distributed-op tokens for THIS worker only — never stolen
    /// (every worker must visit a dist op to drain its own home
    /// queue); producers push here, only the owner pops.
    dist_ready: Mutex<Vec<usize>>,
}

struct Shared<'a> {
    ops: &'a [OpInstance],
    nodes: &'a [Node],
    /// Worker→CPU placement and precomputed steal schedules.
    topo: &'a WorkerTopo,
    /// Pin each worker to its assigned CPU at startup.
    pin: bool,
    /// One padded deque per worker.
    workers: Vec<CachePadded<WorkerState>>,
    completed: AtomicUsize,
    /// Workers currently parked (or about to park) on `wake`.
    /// Producers skip the wake path entirely while this is zero.
    sleepers: AtomicUsize,
    /// Wake-sequence counter: bumped under the lock before any notify,
    /// so a parker that saw sequence `s` before scanning for work can
    /// sleep iff the sequence is still `s` — pushes are never lost
    /// between its scan and its wait.
    wake_seq: Mutex<u64>,
    wake: Condvar,
    epoch: Instant,
}

impl Shared<'_> {
    /// Wakes sleeping workers after making work visible. `all` only
    /// when several ops became ready at once or the run completed.
    fn signal(&self, all: bool) {
        if self.sleepers.load(Ordering::SeqCst) == 0 {
            return;
        }
        {
            let mut seq = self.wake_seq.lock().expect("wake lock poisoned");
            *seq += 1;
        }
        if all {
            self.wake.notify_all();
        } else {
            self.wake.notify_one();
        }
    }

    fn all_done(&self) -> bool {
        self.completed.load(Ordering::SeqCst) == self.ops.len()
    }
}

fn us_since(epoch: Instant, t: Instant) -> f64 {
    t.duration_since(epoch).as_secs_f64() * 1e6
}

/// Executes the op DAG on `workers` threads; `ready0` holds the
/// indices whose dependency count is already zero. `topo` supplies the
/// per-worker steal schedules (and pin targets when `pin` is set); it
/// must have been built for the same worker count.
pub(crate) fn run_pool(
    ops: &[OpInstance],
    nodes: &[Node],
    ready0: Vec<usize>,
    workers: usize,
    topo: &WorkerTopo,
    pin: bool,
    kernel: &(dyn TaskKernel + Sync),
) -> Vec<WorkerRecord> {
    let workers = workers.max(1);
    debug_assert_eq!(topo.workers(), workers, "topology built for a different pool size");
    let mut deques: Vec<CachePadded<WorkerState>> = (0..workers)
        .map(|_| {
            CachePadded(WorkerState {
                ready: Mutex::new(VecDeque::new()),
                dist_ready: Mutex::new(Vec::new()),
            })
        })
        .collect();
    // Scatter the initially ready ops round-robin so workers start on
    // distinct ops instead of brawling over one deque; distributed ops
    // are tokened to EVERY worker (each owns a home queue of the op).
    let mut next = 0usize;
    for op in ready0 {
        if ops[op].queue.is_dist() {
            for d in deques.iter_mut() {
                d.0.dist_ready.get_mut().expect("fresh lock").push(op);
            }
        } else {
            deques[next % workers].0.ready.get_mut().expect("fresh lock").push_back(op);
            next += 1;
        }
    }
    let shared = Shared {
        ops,
        nodes,
        topo,
        pin,
        workers: deques,
        completed: AtomicUsize::new(0),
        sleepers: AtomicUsize::new(0),
        wake_seq: Mutex::new(0),
        wake: Condvar::new(),
        epoch: Instant::now(),
    };
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for id in 0..workers {
            let shared = &shared;
            handles.push(scope.spawn(move || worker_loop(shared, id, kernel)));
        }
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    })
}

/// Pops a token: own private dist list first (only this worker can
/// drain those home queues), then own deque front, then the other
/// workers' backs in this worker's precomputed steal schedule — SMT
/// sibling, same node, then remote under hierarchical order; the
/// legacy ring sequence under [`StealOrder::Ring`](super::topology::StealOrder::Ring).
/// A *remote* steal takes half the victim's deque in one visit (the
/// extra tokens move to the thief's own deque after the victim's lock
/// is released), amortizing the cross-node trip; nearby steals stay
/// single-token so hot work keeps spreading.
fn find_token(shared: &Shared<'_>, id: usize, steal: &mut StealStats) -> Option<usize> {
    if let Some(i) = shared.workers[id].0.dist_ready.lock().expect("dist list poisoned").pop() {
        return Some(i);
    }
    if let Some(i) = shared.workers[id].0.ready.lock().expect("deque poisoned").pop_front() {
        return Some(i);
    }
    for target in shared.topo.steal_schedule(id) {
        let mut extras: Vec<usize> = Vec::new();
        let first = {
            let mut victim = shared.workers[target.victim].0.ready.lock().expect("deque poisoned");
            let len = victim.len();
            let Some(first) = victim.pop_back() else {
                continue;
            };
            if target.distance == StealDistance::Remote {
                // Batch: take ceil(len/2) tokens total, counting the
                // one already popped.
                for _ in 1..len.div_ceil(2) {
                    match victim.pop_back() {
                        Some(t) => extras.push(t),
                        None => break,
                    }
                }
            }
            first
        };
        steal.record(target.distance.class(), extras.len() as u64);
        if !extras.is_empty() {
            // Victim lock is released; taking our own deque lock here
            // keeps lock holds disjoint (no nested deque locks).
            let mut own = shared.workers[id].0.ready.lock().expect("deque poisoned");
            for t in extras {
                own.push_back(t);
            }
        }
        return Some(first);
    }
    None
}

fn worker_loop(shared: &Shared<'_>, id: usize, kernel: &(dyn TaskKernel + Sync)) -> WorkerRecord {
    // Pinning is best-effort: a failed pin (CPU offline, synthetic
    // topology wider than the host, restrictive cgroup mask) leaves
    // the worker floating and the run proceeds unaffected.
    let pinned = shared.pin && pin_current_thread(shared.topo.cpu_of_worker[id]);
    let mut proc = ProcStats::default();
    let mut timing = OnlineStats::new();
    let mut steal = StealStats::new();
    loop {
        let Some(op_idx) = find_token(shared, id, &mut steal) else {
            if shared.all_done() {
                return WorkerRecord { proc, timing, steal, pinned };
            }
            park(shared, id);
            continue;
        };
        run_op(shared, id, op_idx, kernel, &mut proc, &mut timing);
    }
}

/// Parks until new work is signalled. The wake-sequence protocol makes
/// the scan-then-sleep race benign: any token pushed after `seq0` was
/// read either bumps the sequence (we don't sleep) or was pushed by a
/// producer that saw no sleepers — and our post-registration rescan
/// is then guaranteed to see it.
fn park(shared: &Shared<'_>, id: usize) {
    let seq0 = { *shared.wake_seq.lock().expect("wake lock poisoned") };
    shared.sleepers.fetch_add(1, Ordering::SeqCst);
    let visible_work =
        !shared.workers[id].0.dist_ready.lock().expect("dist list poisoned").is_empty()
            || (0..shared.workers.len())
                .any(|w| !shared.workers[w].0.ready.lock().expect("deque poisoned").is_empty());
    if !visible_work && !shared.all_done() {
        let mut seq = shared.wake_seq.lock().expect("wake lock poisoned");
        while *seq == seq0 && !shared.all_done() {
            seq = shared.wake.wait(seq).expect("wake lock poisoned");
        }
    }
    shared.sleepers.fetch_sub(1, Ordering::SeqCst);
}

/// Per-task clock reads a worker spends on one adaptive op before
/// switching to chunk-level timing. TAPER's µ/σ (and so its chunk
/// sizes) come from this sampled prefix — the paper's runtime likewise
/// *samples* task times rather than metering every task — after which
/// each chunk contributes its mean at full weight.
const SAMPLE_BUDGET: usize = 48;

/// Claims and executes chunks of one op until this worker can get no
/// more from it.
fn run_op(
    shared: &Shared<'_>,
    id: usize,
    op_idx: usize,
    kernel: &(dyn TaskKernel + Sync),
    proc: &mut ProcStats,
    timing: &mut OnlineStats,
) {
    match &shared.ops[op_idx].queue {
        OpQueue::Shared(q) => run_op_shared(shared, id, op_idx, q, kernel, proc, timing),
        OpQueue::Dist(q) => run_op_dist(shared, id, op_idx, q, kernel, proc, timing),
    }
}

/// The shared-queue claim loop: claim→execute against one central
/// queue until the op is drained.
#[allow(clippy::too_many_arguments)]
fn run_op_shared(
    shared: &Shared<'_>,
    id: usize,
    op_idx: usize,
    queue: &ChunkQueue,
    kernel: &(dyn TaskKernel + Sync),
    proc: &mut ProcStats,
    timing: &mut OnlineStats,
) {
    let op = &shared.ops[op_idx];
    let Some(first) = queue.claim() else {
        // Stale token: the op drained while this token circulated.
        return;
    };
    // Re-advertise the op before executing so idle workers can steal
    // into its remaining chunks; one push per op visit, not per chunk.
    if queue.has_more() {
        shared.workers[id].0.ready.lock().expect("deque poisoned").push_back(op_idx);
        shared.signal(false);
    }
    let adaptive = !queue.is_lock_free();
    let node = &shared.nodes[op.node];
    let mut chunk = first;
    let mut done = 0usize;
    let mut sampled = 0usize;
    // One fresh clock read per op visit; every later timestamp chains
    // off the previous one, so N tasks under per-task sampling cost
    // N+1 reads (not 2N) and a whole chunk outside the sampling
    // prefix costs a single read.
    let t0 = Instant::now();
    let start_bits = us_since(shared.epoch, t0).to_bits();
    // `started_bits` is shared and hot: skip the RMW unless this visit
    // actually is the earliest (it is at most once per worker).
    if op.started_bits.load(Ordering::Relaxed) > start_bits {
        op.started_bits.fetch_min(start_bits, Ordering::AcqRel);
    }
    let mut prev = t0;
    loop {
        let chunk_t0 = prev;
        let mut chunk_stats = OnlineStats::new();
        if adaptive && sampled < SAMPLE_BUDGET {
            for task in chunk.start..chunk.start + chunk.len {
                let ctx = TaskCtx { node, iter: op.iter, task, cost_hint: op.costs[task] };
                let value = kernel.run_task(&ctx);
                let now = Instant::now();
                chunk_stats.observe(now.duration_since(prev).as_secs_f64() * 1e6);
                prev = now;
                op.output[task].store(value.to_bits(), Ordering::Release);
                // Relaxed: exec counts are read only after the pool
                // joins, and the RMW still catches duplicate claims.
                op.executed[task].fetch_add(1, Ordering::Relaxed);
            }
            sampled += chunk.len;
        } else {
            for task in chunk.start..chunk.start + chunk.len {
                let ctx = TaskCtx { node, iter: op.iter, task, cost_hint: op.costs[task] };
                let value = kernel.run_task(&ctx);
                op.output[task].store(value.to_bits(), Ordering::Release);
                op.executed[task].fetch_add(1, Ordering::Relaxed);
            }
            let now = Instant::now();
            let span_us = now.duration_since(prev).as_secs_f64() * 1e6;
            prev = now;
            chunk_stats.observe_n(span_us / chunk.len as f64, chunk.len as u64);
        }
        if adaptive {
            queue.observe_chunk(chunk.start, chunk.len, &chunk_stats);
        }
        timing.merge(&chunk_stats);
        proc.tasks += chunk.len as u64;
        proc.chunks += 1;
        proc.busy += prev.duration_since(chunk_t0).as_secs_f64() * 1e6;
        done += chunk.len;
        match queue.claim() {
            Some(c) => chunk = c,
            None => break,
        }
    }
    let t_end = us_since(shared.epoch, prev);
    proc.free_at = proc.free_at.max(t_end);
    // One batched decrement per op visit, not one RMW per chunk;
    // whichever worker's batch reaches zero completes the op.
    if op.outstanding.fetch_sub(done, Ordering::AcqRel) == done {
        complete_op(shared, id, op, t_end);
    }
}

/// The distributed-TAPER claim loop: this worker drains its own home
/// queue (plus anything the coordinator migrates into it) and stops
/// when a claim comes back empty — at which point its home queue can
/// never refill, so the token is dropped for good. No re-advertising:
/// every worker received its own token when the op became ready.
///
/// The control plane (chunk sizing, the migration gate) feeds on the
/// tasks' deterministic cost hints inside [`DistQueue::claim`]; the
/// wall-clock here only stamps epoch times and the worker's measured
/// µ/σ, keeping scheduling decisions reproducible across runs.
#[allow(clippy::too_many_arguments)]
fn run_op_dist(
    shared: &Shared<'_>,
    id: usize,
    _op_idx: usize,
    queue: &DistQueue,
    kernel: &(dyn TaskKernel + Sync),
    proc: &mut ProcStats,
    timing: &mut OnlineStats,
) {
    let op = &shared.ops[_op_idx];
    let t0 = Instant::now();
    let start_bits = us_since(shared.epoch, t0).to_bits();
    let Some(first) = queue.claim(id, &op.costs, f64::from_bits(start_bits)) else {
        // Empty home queue (stale token, or fewer tasks than workers).
        return;
    };
    if op.started_bits.load(Ordering::Relaxed) > start_bits {
        op.started_bits.fetch_min(start_bits, Ordering::AcqRel);
    }
    let node = &shared.nodes[op.node];
    let mut chunk = first;
    let mut done = 0usize;
    let mut prev = t0;
    loop {
        let chunk_t0 = prev;
        for &task in &chunk.tasks {
            let ctx = TaskCtx { node, iter: op.iter, task, cost_hint: op.costs[task] };
            let value = kernel.run_task(&ctx);
            op.output[task].store(value.to_bits(), Ordering::Release);
            op.executed[task].fetch_add(1, Ordering::Relaxed);
        }
        let now = Instant::now();
        let span_us = now.duration_since(prev).as_secs_f64() * 1e6;
        prev = now;
        timing.observe_n(span_us / chunk.tasks.len() as f64, chunk.tasks.len() as u64);
        proc.tasks += chunk.tasks.len() as u64;
        proc.chunks += 1;
        proc.busy += prev.duration_since(chunk_t0).as_secs_f64() * 1e6;
        done += chunk.tasks.len();
        match queue.claim(id, &op.costs, us_since(shared.epoch, prev)) {
            Some(c) => chunk = c,
            None => break,
        }
    }
    let t_end = us_since(shared.epoch, prev);
    proc.free_at = proc.free_at.max(t_end);
    if op.outstanding.fetch_sub(done, Ordering::AcqRel) == done {
        complete_op(shared, id, op, t_end);
    }
}

/// Runs exactly once per op (by whichever worker drops `outstanding`
/// to zero): stamps the finish, enables dependents, and counts the op
/// as completed — broadcasting only when it was the last one.
fn complete_op(shared: &Shared<'_>, id: usize, op: &OpInstance, t_end: f64) {
    op.finished_bits.fetch_min(t_end.to_bits(), Ordering::AcqRel);
    // Collect the newly enabled dependents first, then publish their
    // tokens one lock at a time — dist enabling locks every worker's
    // token list, and nesting those inside a deque lock would invite a
    // lock-order cycle with concurrent completers.
    let mut newly_shared: Vec<usize> = Vec::new();
    let mut newly_dist: Vec<usize> = Vec::new();
    for &d in &op.dependents {
        if shared.ops[d].deps.fetch_sub(1, Ordering::AcqRel) == 1 {
            if shared.ops[d].queue.is_dist() {
                newly_dist.push(d);
            } else {
                newly_shared.push(d);
            }
        }
    }
    if !newly_shared.is_empty() {
        // Push to our own deque (front — it is the hottest work we
        // know of) and let thieves spread it.
        let mut own = shared.workers[id].0.ready.lock().expect("deque poisoned");
        for &d in &newly_shared {
            own.push_front(d);
        }
    }
    // A dist op needs every worker at its own home queue: token all of
    // them (migration-aware wakeup — even a worker with no shared work
    // must rise for its home block).
    for w in shared.workers.iter() {
        if newly_dist.is_empty() {
            break;
        }
        w.0.dist_ready.lock().expect("dist list poisoned").extend_from_slice(&newly_dist);
    }
    let newly_ready = newly_shared.len() + newly_dist.len();
    if newly_ready > 0 {
        shared.signal(newly_ready > 1 || !newly_dist.is_empty());
    }
    if shared.completed.fetch_add(1, Ordering::SeqCst) + 1 == shared.ops.len() {
        // Last op: wake every sleeper so the pool can exit. Bump the
        // sequence unconditionally — a parker may be mid-protocol.
        {
            let mut seq = shared.wake_seq.lock().expect("wake lock poisoned");
            *seq += 1;
        }
        shared.wake.notify_all();
    }
}
