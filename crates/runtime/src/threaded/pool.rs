//! The worker pool: N OS threads executing a dependency-counted DAG of
//! parallel operations, each operation scheduled through a shared
//! [`ChunkQueue`](super::queue::ChunkQueue).
//!
//! Workers claim chunks, execute the kernel per task over real
//! buffers, time every task with `Instant` (the live counterpart of
//! the simulator's task-cost sampling in [`crate::stats`]), and feed
//! the measurement back to the adaptive chunk policy.

use super::queue::ChunkQueue;
use super::{TaskCtx, TaskKernel};
use crate::stats::OnlineStats;
use orchestra_delirium::Node;
use orchestra_machine::ProcStats;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// One schedulable operation instance: a graph node at one pipeline
/// iteration, with its dependency counters and real output buffer.
pub(crate) struct OpInstance {
    /// Display name (`B_I`, or `A_D@3` for pipeline iteration 3).
    pub name: String,
    /// The underlying graph node id.
    pub node: usize,
    /// Pipeline iteration (0 for ungrouped nodes).
    pub iter: usize,
    /// Per-task simulated cost hints (µs), sampled exactly as the
    /// simulator samples them.
    pub costs: Vec<f64>,
    /// The claim-next-chunk queue.
    pub queue: ChunkQueue,
    /// Unfinished dependency count; the op becomes ready at 0.
    pub deps: AtomicUsize,
    /// Ops to notify when this one completes.
    pub dependents: Vec<usize>,
    /// Tasks not yet executed; the op is complete at 0.
    pub outstanding: AtomicUsize,
    /// Output buffer: one f64 (as bits) per task.
    pub output: Vec<AtomicU64>,
    /// Execution count per task (differential-testing evidence that no
    /// chunk was lost or duplicated).
    pub executed: Vec<AtomicU32>,
    /// First-claim time, µs since run start (f64 bits; MAX = never).
    pub started_bits: AtomicU64,
    /// Completion time, µs since run start (f64 bits; MAX = never).
    pub finished_bits: AtomicU64,
}

impl OpInstance {
    pub(crate) fn output_values(&self) -> Vec<f64> {
        self.output.iter().map(|b| f64::from_bits(b.load(Ordering::Acquire))).collect()
    }

    pub(crate) fn exec_counts(&self) -> Vec<u32> {
        self.executed.iter().map(|c| c.load(Ordering::Acquire)).collect()
    }
}

/// Per-worker measurements from one pool run.
pub struct WorkerRecord {
    /// Busy time / task count / chunk count, as the simulator records
    /// them per processor.
    pub proc: ProcStats,
    /// Online µ/σ over this worker's task times (µs).
    pub timing: OnlineStats,
}

struct Shared<'a> {
    ops: &'a [OpInstance],
    nodes: &'a [Node],
    ready: Mutex<Vec<usize>>,
    wake: Condvar,
    completed: AtomicUsize,
    epoch: Instant,
}

fn now_us(epoch: Instant) -> f64 {
    epoch.elapsed().as_secs_f64() * 1e6
}

/// Executes the op DAG on `workers` threads; `ready0` holds the
/// indices whose dependency count is already zero.
pub(crate) fn run_pool(
    ops: &[OpInstance],
    nodes: &[Node],
    ready0: Vec<usize>,
    workers: usize,
    kernel: &(dyn TaskKernel + Sync),
) -> Vec<WorkerRecord> {
    let workers = workers.max(1);
    let shared = Shared {
        ops,
        nodes,
        ready: Mutex::new(ready0),
        wake: Condvar::new(),
        completed: AtomicUsize::new(0),
        epoch: Instant::now(),
    };
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let shared = &shared;
            handles.push(scope.spawn(move || worker_loop(shared, kernel)));
        }
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    })
}

fn worker_loop(shared: &Shared<'_>, kernel: &(dyn TaskKernel + Sync)) -> WorkerRecord {
    let mut proc = ProcStats::default();
    let mut timing = OnlineStats::new();
    let total_ops = shared.ops.len();
    loop {
        // Take the front ready op; exactly one copy of each op
        // circulates through the ready list.
        let op_idx = {
            let mut ready = shared.ready.lock().expect("ready list poisoned");
            loop {
                if let Some(i) = ready.first().copied() {
                    ready.remove(0);
                    break i;
                }
                if shared.completed.load(Ordering::Acquire) == total_ops {
                    return WorkerRecord { proc, timing };
                }
                ready = shared.wake.wait(ready).expect("ready list poisoned");
            }
        };
        let op = &shared.ops[op_idx];
        let Some(chunk) = op.queue.claim() else {
            // Exhausted: drop the circulating copy; in-flight chunks on
            // other workers will complete the op.
            continue;
        };
        op.started_bits.fetch_min(now_us(shared.epoch).to_bits(), Ordering::AcqRel);
        // Re-insert before executing so other idle workers can claim
        // the op's remaining chunks concurrently.
        {
            let mut ready = shared.ready.lock().expect("ready list poisoned");
            ready.push(op_idx);
        }
        shared.wake.notify_all();

        let node = &shared.nodes[op.node];
        let mut chunk_busy = 0.0;
        for task in chunk.start..chunk.start + chunk.len {
            let ctx = TaskCtx { node, iter: op.iter, task, cost_hint: op.costs[task] };
            let t0 = Instant::now();
            let value = kernel.run_task(&ctx);
            let dt_us = t0.elapsed().as_secs_f64() * 1e6;
            op.output[task].store(value.to_bits(), Ordering::Release);
            op.executed[task].fetch_add(1, Ordering::AcqRel);
            op.queue.observe(task, dt_us);
            timing.observe(dt_us);
            chunk_busy += dt_us;
            proc.tasks += 1;
        }
        proc.busy += chunk_busy;
        proc.chunks += 1;
        let t_end = now_us(shared.epoch);
        proc.free_at = proc.free_at.max(t_end);

        if op.outstanding.fetch_sub(chunk.len, Ordering::AcqRel) == chunk.len {
            // This chunk finished the op.
            op.finished_bits.fetch_min(t_end.to_bits(), Ordering::AcqRel);
            let mut newly_ready = Vec::new();
            for &d in &op.dependents {
                if shared.ops[d].deps.fetch_sub(1, Ordering::AcqRel) == 1 {
                    newly_ready.push(d);
                }
            }
            let finished_all = shared.completed.fetch_add(1, Ordering::AcqRel) + 1 == total_ops;
            if !newly_ready.is_empty() {
                let mut ready = shared.ready.lock().expect("ready list poisoned");
                ready.extend(newly_ready);
            }
            if finished_all || !shared.ready.lock().expect("poisoned").is_empty() {
                shared.wake.notify_all();
            }
        }
    }
}
