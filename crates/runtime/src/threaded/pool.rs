//! The worker pool: N OS threads executing a dependency-counted DAG of
//! parallel operations, each operation scheduled through a shared
//! [`ChunkQueue`](super::queue::ChunkQueue).
//!
//! The scheduling hot path is built to stay off the data path:
//!
//! * **Per-worker ready deques** — each worker owns a deque of *op
//!   tokens* (indices of operations with unclaimed chunks). A worker
//!   pops from its own front and, when empty, steals from another
//!   worker's back. Tokens are hints: exactly-once execution is
//!   guaranteed by the chunk queue's claim path, so a stale token
//!   (op already drained) just fails its claim and is dropped.
//! * **Claim loops** — after claiming its first chunk from an op, a
//!   worker re-advertises the op (one token push + at most one
//!   targeted wakeup) and then loops claim→execute directly against
//!   the queue until the op is drained: no deque traffic per chunk.
//! * **Targeted wakeups** — sleepers park on a condvar guarded by a
//!   wake-sequence counter. Producers bump the sequence and
//!   `notify_one` only when a sleeper is registered; the all-busy
//!   steady state does zero wake syscalls, and completion of the last
//!   op broadcasts once.
//! * **Batched sampling** — workers time every task with a chained
//!   clock read (N tasks cost N+1 `Instant::now` calls, not 2N),
//!   accumulate µ/σ into a stack-local [`OnlineStats`], and merge it
//!   into the chunk policy once per chunk via
//!   [`ChunkQueue::observe_chunk`].
//! * **Cache-line padding** — per-worker shared state is 64-byte
//!   aligned so one worker's deque lock never false-shares with its
//!   neighbour's.

use super::queue::ChunkQueue;
use super::{TaskCtx, TaskKernel};
use crate::stats::OnlineStats;
use orchestra_delirium::Node;
use orchestra_machine::ProcStats;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// One schedulable operation instance: a graph node at one pipeline
/// iteration, with its dependency counters and real output buffer.
pub(crate) struct OpInstance {
    /// Display name (`B_I`, or `A_D@3` for pipeline iteration 3).
    pub name: String,
    /// The underlying graph node id.
    pub node: usize,
    /// Pipeline iteration (0 for ungrouped nodes).
    pub iter: usize,
    /// Per-task simulated cost hints (µs), sampled exactly as the
    /// simulator samples them.
    pub costs: Vec<f64>,
    /// The claim-next-chunk queue.
    pub queue: ChunkQueue,
    /// Unfinished dependency count; the op becomes ready at 0.
    pub deps: AtomicUsize,
    /// Ops to notify when this one completes.
    pub dependents: Vec<usize>,
    /// Tasks not yet executed; the op is complete at 0.
    pub outstanding: AtomicUsize,
    /// Output buffer: one f64 (as bits) per task.
    pub output: Vec<AtomicU64>,
    /// Execution count per task (differential-testing evidence that no
    /// chunk was lost or duplicated).
    pub executed: Vec<AtomicU32>,
    /// First-claim time, µs since run start (f64 bits; MAX = never).
    pub started_bits: AtomicU64,
    /// Completion time, µs since run start (f64 bits; MAX = never).
    pub finished_bits: AtomicU64,
}

impl OpInstance {
    pub(crate) fn output_values(&self) -> Vec<f64> {
        self.output.iter().map(|b| f64::from_bits(b.load(Ordering::Acquire))).collect()
    }

    pub(crate) fn exec_counts(&self) -> Vec<u32> {
        self.executed.iter().map(|c| c.load(Ordering::Acquire)).collect()
    }
}

/// Per-worker measurements from one pool run.
pub struct WorkerRecord {
    /// Busy time / task count / chunk count, as the simulator records
    /// them per processor.
    pub proc: ProcStats,
    /// Online µ/σ over this worker's task times (µs).
    pub timing: OnlineStats,
}

/// Pads per-worker shared state to a cache line so adjacent workers'
/// deque locks don't false-share.
#[repr(align(64))]
struct CachePadded<T>(T);

/// The stealable half of one worker's state: its ready-op deque.
/// Everything hot and worker-private (ProcStats, timing accumulators,
/// the per-chunk OnlineStats) lives on the worker's own stack instead.
struct WorkerState {
    ready: Mutex<VecDeque<usize>>,
}

struct Shared<'a> {
    ops: &'a [OpInstance],
    nodes: &'a [Node],
    /// One padded deque per worker.
    workers: Vec<CachePadded<WorkerState>>,
    completed: AtomicUsize,
    /// Workers currently parked (or about to park) on `wake`.
    /// Producers skip the wake path entirely while this is zero.
    sleepers: AtomicUsize,
    /// Wake-sequence counter: bumped under the lock before any notify,
    /// so a parker that saw sequence `s` before scanning for work can
    /// sleep iff the sequence is still `s` — pushes are never lost
    /// between its scan and its wait.
    wake_seq: Mutex<u64>,
    wake: Condvar,
    epoch: Instant,
}

impl Shared<'_> {
    /// Wakes sleeping workers after making work visible. `all` only
    /// when several ops became ready at once or the run completed.
    fn signal(&self, all: bool) {
        if self.sleepers.load(Ordering::SeqCst) == 0 {
            return;
        }
        {
            let mut seq = self.wake_seq.lock().expect("wake lock poisoned");
            *seq += 1;
        }
        if all {
            self.wake.notify_all();
        } else {
            self.wake.notify_one();
        }
    }

    fn all_done(&self) -> bool {
        self.completed.load(Ordering::SeqCst) == self.ops.len()
    }
}

fn us_since(epoch: Instant, t: Instant) -> f64 {
    t.duration_since(epoch).as_secs_f64() * 1e6
}

/// Executes the op DAG on `workers` threads; `ready0` holds the
/// indices whose dependency count is already zero.
pub(crate) fn run_pool(
    ops: &[OpInstance],
    nodes: &[Node],
    ready0: Vec<usize>,
    workers: usize,
    kernel: &(dyn TaskKernel + Sync),
) -> Vec<WorkerRecord> {
    let workers = workers.max(1);
    let mut deques: Vec<CachePadded<WorkerState>> = (0..workers)
        .map(|_| CachePadded(WorkerState { ready: Mutex::new(VecDeque::new()) }))
        .collect();
    // Scatter the initially ready ops round-robin so workers start on
    // distinct ops instead of brawling over one deque.
    for (i, op) in ready0.into_iter().enumerate() {
        deques[i % workers].0.ready.get_mut().expect("fresh lock").push_back(op);
    }
    let shared = Shared {
        ops,
        nodes,
        workers: deques,
        completed: AtomicUsize::new(0),
        sleepers: AtomicUsize::new(0),
        wake_seq: Mutex::new(0),
        wake: Condvar::new(),
        epoch: Instant::now(),
    };
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for id in 0..workers {
            let shared = &shared;
            handles.push(scope.spawn(move || worker_loop(shared, id, kernel)));
        }
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    })
}

/// Pops a token: own deque front first, then steal from the other
/// workers' backs in ring order.
fn find_token(shared: &Shared<'_>, id: usize) -> Option<usize> {
    if let Some(i) = shared.workers[id].0.ready.lock().expect("deque poisoned").pop_front() {
        return Some(i);
    }
    let n = shared.workers.len();
    for k in 1..n {
        let victim = (id + k) % n;
        if let Some(i) = shared.workers[victim].0.ready.lock().expect("deque poisoned").pop_back() {
            return Some(i);
        }
    }
    None
}

fn worker_loop(shared: &Shared<'_>, id: usize, kernel: &(dyn TaskKernel + Sync)) -> WorkerRecord {
    let mut proc = ProcStats::default();
    let mut timing = OnlineStats::new();
    loop {
        let Some(op_idx) = find_token(shared, id) else {
            if shared.all_done() {
                return WorkerRecord { proc, timing };
            }
            park(shared);
            continue;
        };
        run_op(shared, id, op_idx, kernel, &mut proc, &mut timing);
    }
}

/// Parks until new work is signalled. The wake-sequence protocol makes
/// the scan-then-sleep race benign: any token pushed after `seq0` was
/// read either bumps the sequence (we don't sleep) or was pushed by a
/// producer that saw no sleepers — and our post-registration rescan
/// is then guaranteed to see it.
fn park(shared: &Shared<'_>) {
    let seq0 = { *shared.wake_seq.lock().expect("wake lock poisoned") };
    shared.sleepers.fetch_add(1, Ordering::SeqCst);
    let visible_work = (0..shared.workers.len())
        .any(|w| !shared.workers[w].0.ready.lock().expect("deque poisoned").is_empty());
    if !visible_work && !shared.all_done() {
        let mut seq = shared.wake_seq.lock().expect("wake lock poisoned");
        while *seq == seq0 && !shared.all_done() {
            seq = shared.wake.wait(seq).expect("wake lock poisoned");
        }
    }
    shared.sleepers.fetch_sub(1, Ordering::SeqCst);
}

/// Per-task clock reads a worker spends on one adaptive op before
/// switching to chunk-level timing. TAPER's µ/σ (and so its chunk
/// sizes) come from this sampled prefix — the paper's runtime likewise
/// *samples* task times rather than metering every task — after which
/// each chunk contributes its mean at full weight.
const SAMPLE_BUDGET: usize = 48;

/// Claims and executes chunks of one op until its queue is drained.
fn run_op(
    shared: &Shared<'_>,
    id: usize,
    op_idx: usize,
    kernel: &(dyn TaskKernel + Sync),
    proc: &mut ProcStats,
    timing: &mut OnlineStats,
) {
    let op = &shared.ops[op_idx];
    let Some(first) = op.queue.claim() else {
        // Stale token: the op drained while this token circulated.
        return;
    };
    // Re-advertise the op before executing so idle workers can steal
    // into its remaining chunks; one push per op visit, not per chunk.
    if op.queue.has_more() {
        shared.workers[id].0.ready.lock().expect("deque poisoned").push_back(op_idx);
        shared.signal(false);
    }
    let adaptive = !op.queue.is_lock_free();
    let node = &shared.nodes[op.node];
    let mut chunk = first;
    let mut done = 0usize;
    let mut sampled = 0usize;
    // One fresh clock read per op visit; every later timestamp chains
    // off the previous one, so N tasks under per-task sampling cost
    // N+1 reads (not 2N) and a whole chunk outside the sampling
    // prefix costs a single read.
    let t0 = Instant::now();
    let start_bits = us_since(shared.epoch, t0).to_bits();
    // `started_bits` is shared and hot: skip the RMW unless this visit
    // actually is the earliest (it is at most once per worker).
    if op.started_bits.load(Ordering::Relaxed) > start_bits {
        op.started_bits.fetch_min(start_bits, Ordering::AcqRel);
    }
    let mut prev = t0;
    loop {
        let chunk_t0 = prev;
        let mut chunk_stats = OnlineStats::new();
        if adaptive && sampled < SAMPLE_BUDGET {
            for task in chunk.start..chunk.start + chunk.len {
                let ctx = TaskCtx { node, iter: op.iter, task, cost_hint: op.costs[task] };
                let value = kernel.run_task(&ctx);
                let now = Instant::now();
                chunk_stats.observe(now.duration_since(prev).as_secs_f64() * 1e6);
                prev = now;
                op.output[task].store(value.to_bits(), Ordering::Release);
                // Relaxed: exec counts are read only after the pool
                // joins, and the RMW still catches duplicate claims.
                op.executed[task].fetch_add(1, Ordering::Relaxed);
            }
            sampled += chunk.len;
        } else {
            for task in chunk.start..chunk.start + chunk.len {
                let ctx = TaskCtx { node, iter: op.iter, task, cost_hint: op.costs[task] };
                let value = kernel.run_task(&ctx);
                op.output[task].store(value.to_bits(), Ordering::Release);
                op.executed[task].fetch_add(1, Ordering::Relaxed);
            }
            let now = Instant::now();
            let span_us = now.duration_since(prev).as_secs_f64() * 1e6;
            prev = now;
            chunk_stats.observe_n(span_us / chunk.len as f64, chunk.len as u64);
        }
        if adaptive {
            op.queue.observe_chunk(chunk.start, chunk.len, &chunk_stats);
        }
        timing.merge(&chunk_stats);
        proc.tasks += chunk.len as u64;
        proc.chunks += 1;
        proc.busy += prev.duration_since(chunk_t0).as_secs_f64() * 1e6;
        done += chunk.len;
        match op.queue.claim() {
            Some(c) => chunk = c,
            None => break,
        }
    }
    let t_end = us_since(shared.epoch, prev);
    proc.free_at = proc.free_at.max(t_end);
    // One batched decrement per op visit, not one RMW per chunk;
    // whichever worker's batch reaches zero completes the op.
    if op.outstanding.fetch_sub(done, Ordering::AcqRel) == done {
        complete_op(shared, id, op, t_end);
    }
}

/// Runs exactly once per op (by whichever worker drops `outstanding`
/// to zero): stamps the finish, enables dependents, and counts the op
/// as completed — broadcasting only when it was the last one.
fn complete_op(shared: &Shared<'_>, id: usize, op: &OpInstance, t_end: f64) {
    op.finished_bits.fetch_min(t_end.to_bits(), Ordering::AcqRel);
    let mut newly_ready = 0usize;
    if !op.dependents.is_empty() {
        let mut own = None;
        for &d in &op.dependents {
            if shared.ops[d].deps.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Newly enabled: push to our own deque (front — it is
                // the hottest work we know of) and let thieves spread
                // it.
                own.get_or_insert_with(|| {
                    shared.workers[id].0.ready.lock().expect("deque poisoned")
                })
                .push_front(d);
                newly_ready += 1;
            }
        }
    }
    if newly_ready > 0 {
        shared.signal(newly_ready > 1);
    }
    if shared.completed.fetch_add(1, Ordering::SeqCst) + 1 == shared.ops.len() {
        // Last op: wake every sleeper so the pool can exit. Bump the
        // sequence unconditionally — a parker may be mid-protocol.
        {
            let mut seq = shared.wake_seq.lock().expect("wake lock poisoned");
            *seq += 1;
        }
        shared.wake.notify_all();
    }
}
