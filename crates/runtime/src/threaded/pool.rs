//! The worker pool: N OS threads executing a dependency-counted DAG of
//! parallel operations, each operation scheduled through a shared
//! [`ChunkQueue`](super::queue::ChunkQueue) or, under distributed
//! TAPER, through per-worker home queues
//! ([`DistQueue`](super::dist::DistQueue)).
//!
//! The scheduling hot path is built to stay off the data path:
//!
//! * **Per-worker ready deques** — each worker owns a deque of *op
//!   tokens* (indices of operations with unclaimed chunks). A worker
//!   pops from its own front and, when empty, steals from another
//!   worker's back. Tokens are hints: exactly-once execution is
//!   guaranteed by the chunk queue's claim path, so a stale token
//!   (op already drained) just fails its claim and is dropped.
//! * **Claim loops** — after claiming its first chunk from an op, a
//!   worker re-advertises the op (one token push + at most one
//!   targeted wakeup) and then loops claim→execute directly against
//!   the queue until the op is drained: no deque traffic per chunk.
//! * **Targeted wakeups** — sleepers park on a condvar guarded by a
//!   wake-sequence counter. Producers bump the sequence and
//!   `notify_one` only when a sleeper is registered; the all-busy
//!   steady state does zero wake syscalls, and completion of the last
//!   op broadcasts once.
//! * **Batched sampling** — workers time only a bounded prefix of
//!   tasks per op visit (48, chained clock reads so N samples cost
//!   N+1 `Instant::now` calls), bulk-time the rest one read per
//!   chunk, accumulate µ/σ into a stack-local [`OnlineStats`], and
//!   merge buffered per-chunk feedback into the chunk policy only
//!   when its lock is free
//!   ([`ChunkQueue::try_observe_pending`]) — the claim loop never
//!   blocks on feedback.
//! * **Cache-line padding** — per-worker shared state is 64-byte
//!   aligned so one worker's deque lock never false-shares with its
//!   neighbour's.
//! * **Private dist tokens** — a distributed-TAPER op's token goes to
//!   *every* worker's private, non-stealable `dist_ready` list when the
//!   op becomes ready (each worker owns a home queue it alone can
//!   drain, so each must visit the op). Keeping these tokens out of the
//!   stealable deques is a liveness requirement, not an optimisation:
//!   a stolen dist token would be dropped by a thief whose own home
//!   queue is empty, stranding the owner's tasks forever. A worker that
//!   exhausts its home queue can drop its token for good —
//!   [`DistQueue`](super::dist::DistQueue) re-assigns work only into
//!   the claiming worker's own queue, so an abandoned home can never
//!   refill behind its owner's back.

use super::dist::DistQueue;
use super::queue::{BoundedClaim, ChunkQueue};
use super::topology::{pin_current_thread, StealDistance, WorkerTopo};
use super::{TaskCtx, TaskKernel};
use crate::alloc::{OutputArena, Publication};
use crate::checkpoint::{op_snapshot, CancelCtl, KillMode, Lease, OpSnapshot, RunCtl};
use crate::chunking::PolicyKind;
use crate::finish::{finish_estimate_live, HostCalibration, OpSpec};
use crate::granularity::pipelined_stage_time_params;
use crate::stats::{OnlineStats, StealStats};
use orchestra_delirium::Node;
use orchestra_machine::ProcStats;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// How one operation's chunks are handed out: a shared claim queue
/// (work-stealing over one cursor/policy) or distributed TAPER's
/// per-worker home queues with epoch-token migration.
pub(crate) enum OpQueue {
    /// All workers claim from one shared queue.
    Shared(ChunkQueue),
    /// Each worker drains its own home queue; the coordinator migrates
    /// work from laggards.
    Dist(DistQueue),
}

impl OpQueue {
    pub(crate) fn chunks_claimed(&self) -> u64 {
        match self {
            OpQueue::Shared(q) => q.chunks_claimed(),
            OpQueue::Dist(q) => q.chunks_claimed(),
        }
    }

    pub(crate) fn is_dist(&self) -> bool {
        matches!(self, OpQueue::Dist(_))
    }

    pub(crate) fn as_dist(&self) -> Option<&DistQueue> {
        match self {
            OpQueue::Shared(_) => None,
            OpQueue::Dist(q) => Some(q),
        }
    }
}

/// One schedulable operation instance: a graph node at one pipeline
/// iteration, with its dependency counters and real output buffer.
pub(crate) struct OpInstance {
    /// Display name (`B_I`, or `A_D@3` for pipeline iteration 3).
    pub name: String,
    /// The underlying graph node id.
    pub node: usize,
    /// Pipeline iteration (0 for ungrouped nodes).
    pub iter: usize,
    /// Per-task simulated cost hints (µs), sampled exactly as the
    /// simulator samples them.
    pub costs: Vec<f64>,
    /// The claim-next-chunk queue (shared or distributed).
    pub queue: OpQueue,
    /// Unfinished dependency count; the op becomes ready at 0.
    pub deps: AtomicUsize,
    /// Ops to notify when this one completes.
    pub dependents: Vec<usize>,
    /// Upstream ops (plan indices) whose finished output slices are
    /// handed to this op's kernel as [`TaskCtx::inputs`] — by
    /// reference out of the shared [`OutputArena`], no copy.
    pub input_ops: Vec<usize>,
    /// The subset of `input_ops` consumed *streamed*: claims from this
    /// op's queue are bounded by the minimum of these producers'
    /// committed-prefix watermarks instead of waiting for whole-op
    /// completion. Empty for whole-op-gated ops.
    pub stream_inputs: Vec<usize>,
    /// Streamed consumers of this op's output (disjoint from
    /// `dependents`): their dependency arrival for this edge happens at
    /// this op's *first* watermark publication, and every publication
    /// re-tokens them so blocked workers resume onto the new prefix.
    pub stream_dependents: Vec<usize>,
    /// Watermark publication batch b\* (producer tasks coalesced per
    /// publication), chosen by §4.1's batch model over the measured
    /// per-publish α and per-byte β — or forced by
    /// [`ExecutorOptions::stream_batch`](crate::executor::ExecutorOptions::stream_batch).
    pub stream_batch: usize,
    /// Tasks not yet executed; the op is complete at 0.
    pub outstanding: AtomicUsize,
    /// Execution count per task (differential-testing evidence that no
    /// chunk was lost or duplicated).
    pub executed: Vec<AtomicU32>,
    /// First-claim time, µs since run start (f64 bits; MAX = never).
    pub started_bits: AtomicU64,
    /// Completion time, µs since run start (f64 bits; MAX = never).
    pub finished_bits: AtomicU64,
    /// Per-task restored-from-snapshot flags (empty on a fresh run):
    /// restored tasks have their outputs pre-stored and are excluded
    /// from the queue's iteration space.
    pub restored: Vec<bool>,
    /// Queue-index → task-index translation for resumed ops (`None` =
    /// identity): the queue schedules only the pending tasks, packed.
    pub remap: Option<Vec<usize>>,
    /// Cost hints over the *queue's* index space when remapped
    /// (`None` = use `costs` directly).
    pub queue_costs: Option<Vec<f64>>,
}

impl OpInstance {
    pub(crate) fn exec_counts(&self) -> Vec<u32> {
        self.executed.iter().map(|c| c.load(Ordering::Acquire)).collect()
    }

    /// Translates a queue index to the op-local task index.
    #[inline]
    fn task_of(&self, qi: usize) -> usize {
        match &self.remap {
            Some(r) => r[qi],
            None => qi,
        }
    }

    /// The cost hints in the queue's index space.
    fn claim_costs(&self) -> &[f64] {
        self.queue_costs.as_deref().unwrap_or(&self.costs)
    }

    /// How far this op's claims may advance right now: the minimum of
    /// its streamed producers' committed-prefix watermarks (`Acquire`
    /// loads, re-read fresh at every claim), or unbounded when nothing
    /// is streamed. Streamed consumers are never remapped, so the
    /// queue's index space IS task space and the bound applies directly.
    #[inline]
    fn stream_limit(&self, arena: &OutputArena) -> usize {
        self.stream_inputs.iter().map(|&p| arena.watermark(p)).min().unwrap_or(usize::MAX)
    }

    /// Whether this op publishes progress watermarks as a producer.
    /// (Streamed producers are never remapped — classification excludes
    /// resumed ops — so chunk spans are contiguous task intervals.)
    #[inline]
    fn streams_output(&self) -> bool {
        !self.stream_dependents.is_empty() && self.remap.is_none()
    }
}

/// The §4.1.2 processor partition over the worker pool: bit `w` of
/// `masks[op]` set means worker `w` may serve operation `op`.
///
/// When a graph level holds several concurrent operations the
/// finishing-time equalizer splits the pool between them; the masks
/// then restrict token routing and steal schedules to each op's
/// partition. Masks only ever *widen* — re-equalization admits a fast
/// op's freed workers into the laggard's partition, never evicts a
/// worker mid-claim — so exactly-once execution and bitwise
/// determinism are untouched: partitioning moves *where* a task runs,
/// never *what* it computes.
///
/// Disabled (all-ones masks, no balancing) when allocation is off,
/// the pool has a single worker, or more than 64 workers (one `u64`
/// mask per op keeps the hot-path check a single atomic load).
pub(crate) struct Partition {
    masks: Vec<AtomicU64>,
    /// Serializes re-equalization decisions; contended triggers skip
    /// rather than queue (the next trigger re-evaluates anyway).
    balance: Mutex<()>,
    enabled: bool,
}

impl Partition {
    /// No partitioning: every worker may serve every op.
    pub(crate) fn disabled(n_ops: usize) -> Self {
        Partition {
            masks: (0..n_ops).map(|_| AtomicU64::new(u64::MAX)).collect(),
            balance: Mutex::new(()),
            enabled: false,
        }
    }

    /// A live partition from one initial mask per op (each must be
    /// non-zero: an op with no servers would never run).
    pub(crate) fn new(masks: Vec<u64>) -> Self {
        assert!(masks.iter().all(|&m| m != 0), "every op needs at least one worker");
        Partition {
            masks: masks.into_iter().map(AtomicU64::new).collect(),
            balance: Mutex::new(()),
            enabled: true,
        }
    }

    pub(crate) fn enabled(&self) -> bool {
        self.enabled
    }

    /// May worker `w` claim from op `op`?
    #[inline]
    fn allows(&self, op: usize, w: usize) -> bool {
        !self.enabled || self.masks[op].load(Ordering::Acquire) & (1u64 << w) != 0
    }

    /// Workers currently assigned to `op` (the live allocation size).
    fn procs(&self, op: usize, workers: usize) -> usize {
        if !self.enabled {
            return workers;
        }
        let live = if workers >= 64 { u64::MAX } else { (1u64 << workers) - 1 };
        (self.masks[op].load(Ordering::Acquire) & live).count_ones() as usize
    }

    /// Current members of `op`'s partition.
    fn members(&self, op: usize, workers: usize) -> Vec<usize> {
        (0..workers).filter(|&w| self.allows(op, w)).collect()
    }

    /// Adds `w` to `op`'s partition; `true` if the bit was newly set.
    fn admit(&self, op: usize, w: usize) -> bool {
        self.masks[op].fetch_or(1u64 << w, Ordering::AcqRel) & (1u64 << w) == 0
    }
}

/// Per-worker measurements from one pool run.
pub struct WorkerRecord {
    /// Busy time / task count / chunk count, as the simulator records
    /// them per processor.
    pub proc: ProcStats,
    /// Online µ/σ over this worker's task times (µs).
    pub timing: OnlineStats,
    /// Steal counters bucketed by hierarchy distance.
    pub steal: StealStats,
    /// Whether the kernel accepted this worker's CPU pin (always
    /// `false` when pinning is disabled).
    pub pinned: bool,
}

/// Pads per-worker shared state to a cache line so adjacent workers'
/// deque locks don't false-share.
#[repr(align(64))]
struct CachePadded<T>(T);

/// The shared half of one worker's state: its stealable ready-op deque
/// and its private distributed-op token list. Everything hot and
/// worker-private (ProcStats, timing accumulators, the per-chunk
/// OnlineStats) lives on the worker's own stack instead.
struct WorkerState {
    ready: Mutex<VecDeque<usize>>,
    /// Distributed-op tokens for THIS worker only — never stolen
    /// (every worker must visit a dist op to drain its own home
    /// queue); producers push here, only the owner pops.
    dist_ready: Mutex<Vec<usize>>,
}

struct Shared<'a> {
    ops: &'a [OpInstance],
    nodes: &'a [Node],
    /// The zero-copy output slab every op writes into and reads its
    /// inputs from; spans are indexed by op.
    arena: &'a OutputArena,
    /// Worker→CPU placement and precomputed steal schedules.
    topo: &'a WorkerTopo,
    /// Pin each worker to its assigned CPU at startup.
    pin: bool,
    /// Fault-injection and checkpoint control (inert on normal runs).
    ctl: &'a RunCtl,
    /// The §4.1.2 worker partition (all-ones when allocation is off).
    partition: &'a Partition,
    /// One padded deque per worker.
    workers: Vec<CachePadded<WorkerState>>,
    completed: AtomicUsize,
    /// Workers currently parked (or about to park) on `wake`.
    /// Producers skip the wake path entirely while this is zero.
    sleepers: AtomicUsize,
    /// Wake-sequence counter: bumped under the lock before any notify,
    /// so a parker that saw sequence `s` before scanning for work can
    /// sleep iff the sequence is still `s` — pushes are never lost
    /// between its scan and its wait.
    wake_seq: Mutex<u64>,
    wake: Condvar,
    epoch: Instant,
}

impl<'a> Shared<'a> {
    /// The upstream output slices for one op — zero-copy references
    /// into the arena.
    ///
    /// Whole-op-gated inputs are finished: the op only runs after its
    /// dependency counter reached zero (`AcqRel` decrements by the
    /// completers), which happens-after every upstream write.
    ///
    /// *Streamed* inputs may still be running. The slice then spans
    /// cells the producer has not written yet, and soundness rests on
    /// the watermark protocol: (1) every claim of this op is bounded by
    /// the producers' committed-prefix watermarks, whose `Release`
    /// publication happens-after the covered cells' stores and pairs
    /// with the claim's `Acquire` load; (2) the kernel's declared
    /// [`AccessPattern::ElementWise`](super::AccessPattern) contract
    /// means task `t` dereferences only cells `≤ t <` watermark —
    /// cells at or above the watermark are *in* the slice but never
    /// read through it; (3) streamed producers write those cells
    /// through raw per-cell stores (never a `&mut` view), so no
    /// exclusive reference ever overlaps this shared slice.
    fn inputs_of(&self, op: &OpInstance) -> Vec<&'a [f64]> {
        // SAFETY: see above — whole-op inputs are quiescent; streamed
        // inputs are only read below their watermark.
        op.input_ops.iter().map(|&d| unsafe { self.arena.op_slice(d) }).collect()
    }

    /// Wakes sleeping workers after making work visible. `all` only
    /// when several ops became ready at once or the run completed.
    fn signal(&self, all: bool) {
        if self.sleepers.load(Ordering::SeqCst) == 0 {
            return;
        }
        {
            let mut seq = self.wake_seq.lock().expect("wake lock poisoned");
            *seq += 1;
        }
        if all {
            self.wake.notify_all();
        } else {
            self.wake.notify_one();
        }
    }

    fn all_done(&self) -> bool {
        self.completed.load(Ordering::SeqCst) == self.ops.len()
    }
}

fn us_since(epoch: Instant, t: Instant) -> f64 {
    t.duration_since(epoch).as_secs_f64() * 1e6
}

/// Executes the op DAG on `workers` threads; `ready0` holds the
/// indices whose dependency count is already zero. `topo` supplies the
/// per-worker steal schedules (and pin targets when `pin` is set); it
/// must have been built for the same worker count. `ctl` carries the
/// fault plan and checkpoint state (inert on normal runs), and
/// `pre_completed` counts ops already whole from a restored snapshot.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_pool(
    ops: &[OpInstance],
    nodes: &[Node],
    arena: &OutputArena,
    ready0: Vec<usize>,
    workers: usize,
    topo: &WorkerTopo,
    pin: bool,
    kernel: &(dyn TaskKernel + Sync),
    ctl: &RunCtl,
    pre_completed: usize,
    partition: &Partition,
) -> Vec<WorkerRecord> {
    let workers = workers.max(1);
    debug_assert_eq!(topo.workers(), workers, "topology built for a different pool size");
    let mut deques: Vec<CachePadded<WorkerState>> = (0..workers)
        .map(|_| {
            CachePadded(WorkerState {
                ready: Mutex::new(VecDeque::new()),
                dist_ready: Mutex::new(Vec::new()),
            })
        })
        .collect();
    // Scatter the initially ready ops round-robin so workers start on
    // distinct ops instead of brawling over one deque; distributed ops
    // are tokened to every worker in their partition (each member owns
    // a home queue of the op), shared ops to one member each.
    let mut next = 0usize;
    for op in ready0 {
        if ops[op].queue.is_dist() {
            for (w, d) in deques.iter_mut().enumerate() {
                if partition.allows(op, w) {
                    d.0.dist_ready.get_mut().expect("fresh lock").push(op);
                }
            }
        } else {
            let members: Vec<usize> = (0..workers).filter(|&w| partition.allows(op, w)).collect();
            let w = members[next % members.len()];
            deques[w].0.ready.get_mut().expect("fresh lock").push_back(op);
            next += 1;
        }
    }
    let shared = Shared {
        ops,
        nodes,
        arena,
        topo,
        pin,
        ctl,
        partition,
        workers: deques,
        completed: AtomicUsize::new(pre_completed),
        sleepers: AtomicUsize::new(0),
        wake_seq: Mutex::new(0),
        wake: Condvar::new(),
        epoch: Instant::now(),
    };
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for id in 0..workers {
            let shared = &shared;
            handles.push(scope.spawn(move || worker_loop(shared, id, kernel)));
        }
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    })
}

/// Pops a token: own private dist list first (only this worker can
/// drain those home queues), then own deque front, then the other
/// workers' backs in this worker's precomputed steal schedule — SMT
/// sibling, same node, then remote under hierarchical order; the
/// legacy ring sequence under [`StealOrder::Ring`](super::topology::StealOrder::Ring).
/// A *remote* steal takes half the victim's deque in one visit (the
/// extra tokens move to the thief's own deque after the victim's lock
/// is released), amortizing the cross-node trip; nearby steals stay
/// single-token so hot work keeps spreading.
fn find_token(shared: &Shared<'_>, id: usize, steal: &mut StealStats) -> Option<usize> {
    if let Some(i) = shared.workers[id].0.dist_ready.lock().expect("dist list poisoned").pop() {
        return Some(i);
    }
    if let Some(i) = shared.workers[id].0.ready.lock().expect("deque poisoned").pop_front() {
        // Own-deque tokens are always serveable: every push path
        // (scatter, re-advertise, completion routing, admission)
        // targets a partition member, and masks never shrink.
        debug_assert!(shared.partition.allows(i, id), "non-member token in own deque");
        return Some(i);
    }
    let part = shared.partition;
    for target in shared.topo.steal_schedule(id) {
        let mut extras: Vec<usize> = Vec::new();
        let first = {
            let mut victim = shared.workers[target.victim].0.ready.lock().expect("deque poisoned");
            let len = victim.len();
            // Steal schedules are restricted to the thief's partitions:
            // a token for an op this worker may not serve stays put.
            let Some(first) = pop_allowed_back(&mut victim, part, id) else {
                continue;
            };
            if target.distance == StealDistance::Remote {
                // Batch: take ceil(len/2) tokens total, counting the
                // one already popped.
                for _ in 1..len.div_ceil(2) {
                    match pop_allowed_back(&mut victim, part, id) {
                        Some(t) => extras.push(t),
                        None => break,
                    }
                }
            }
            first
        };
        steal.record(target.distance.class(), extras.len() as u64);
        if !extras.is_empty() {
            // Victim lock is released; taking our own deque lock here
            // keeps lock holds disjoint (no nested deque locks).
            let mut own = shared.workers[id].0.ready.lock().expect("deque poisoned");
            for t in extras {
                own.push_back(t);
            }
        }
        return Some(first);
    }
    None
}

/// Pops the rearmost token the thief's partition masks allow, leaving
/// other ops' tokens in place. Falls back to a plain `pop_back` when
/// partitioning is disabled (the common case stays O(1)).
fn pop_allowed_back(dq: &mut VecDeque<usize>, part: &Partition, id: usize) -> Option<usize> {
    if !part.enabled() {
        return dq.pop_back();
    }
    let i = (0..dq.len()).rev().find(|&i| part.allows(dq[i], id))?;
    dq.remove(i)
}

/// What a claim-loop visit did to the calling worker.
enum Flow {
    /// Keep scheduling.
    Continue,
    /// The worker hit an injected fault and must exit its loop.
    Died,
}

/// What a recovery sweep accomplished.
enum Recover {
    /// Nothing to recover — safe to park.
    Idle,
    /// Recovered leases or queues; rescan for tokens before parking.
    Progress,
    /// The recovering worker itself hit an injected fault.
    Died,
}

fn worker_loop(shared: &Shared<'_>, id: usize, kernel: &(dyn TaskKernel + Sync)) -> WorkerRecord {
    // Pinning is best-effort: a failed pin (CPU offline, synthetic
    // topology wider than the host, restrictive cgroup mask) leaves
    // the worker floating and the run proceeds unaffected.
    let pinned = shared.pin && pin_current_thread(shared.topo.cpu_of_worker[id]);
    let mut proc = ProcStats::default();
    let mut timing = OnlineStats::new();
    let mut steal = StealStats::new();
    let hooked = shared.ctl.hooked();
    loop {
        if hooked && shared.ctl.stopping() {
            break;
        }
        let steals0 = steal.steals;
        let Some(op_idx) = find_token(shared, id, &mut steal) else {
            match recover(shared, id, kernel, &mut proc, &mut timing) {
                Recover::Progress => continue,
                Recover::Died => break,
                Recover::Idle => {
                    if shared.all_done() {
                        break;
                    }
                    // A drained partition frees this worker: offer it
                    // to the laggard op before sleeping on it.
                    if reequalize(shared, &[id]) {
                        continue;
                    }
                    park(shared, id);
                    continue;
                }
            }
        };
        // An `OnSteal` kill fires the instant the theft lands, before
        // the stolen token is honoured. The dropped token is always a
        // shared-queue op (dist tokens are never stealable), whose
        // remaining chunks survivors reach through the recovery sweep's
        // direct `has_more` claims.
        if hooked && steal.steals > steals0 {
            if let Some(f) = &shared.ctl.faults {
                if let Some(mode) = f.on_steal(id) {
                    if f.try_die(id, mode) {
                        announce_death(shared);
                        break;
                    }
                }
            }
        }
        match run_op(shared, id, op_idx, kernel, &mut proc, &mut timing) {
            Flow::Continue => {}
            Flow::Died => break,
        }
    }
    WorkerRecord { proc, timing, steal, pinned }
}

/// Parks until new work is signalled. The wake-sequence protocol makes
/// the scan-then-sleep race benign: any token pushed after `seq0` was
/// read either bumps the sequence (we don't sleep) or was pushed by a
/// producer that saw no sleepers — and our post-registration rescan
/// is then guaranteed to see it. Work made visible by a worker's
/// *death* (orphaned leases, stranded queues) has no token, so the
/// scan also covers recovery work; the dying worker always bumps the
/// sequence and broadcasts, closing the same race for deaths.
fn park(shared: &Shared<'_>, id: usize) {
    let seq0 = { *shared.wake_seq.lock().expect("wake lock poisoned") };
    shared.sleepers.fetch_add(1, Ordering::SeqCst);
    let visible_work =
        !shared.workers[id].0.dist_ready.lock().expect("dist list poisoned").is_empty()
            || (0..shared.workers.len()).any(|w| {
                // Only tokens this worker's partitions allow count:
                // another partition's backlog must not busy-wake us.
                shared.workers[w]
                    .0
                    .ready
                    .lock()
                    .expect("deque poisoned")
                    .iter()
                    .any(|&t| shared.partition.allows(t, id))
            })
            || recovery_visible(shared, id);
    if !visible_work && !shared.all_done() && !shared.ctl.stopping() {
        let mut seq = shared.wake_seq.lock().expect("wake lock poisoned");
        while *seq == seq0 && !shared.all_done() && !shared.ctl.stopping() {
            if shared.ctl.cancel.is_some() {
                // A cancellation request has no producer to bump the
                // wake sequence — the canceller is outside the pool —
                // so a cancellable run polls the flag on a short
                // timeout instead of sleeping unboundedly.
                let (s, _) = shared
                    .wake
                    .wait_timeout(seq, std::time::Duration::from_millis(5))
                    .expect("wake lock poisoned");
                seq = s;
            } else {
                seq = shared.wake.wait(seq).expect("wake lock poisoned");
            }
        }
    }
    shared.sleepers.fetch_sub(1, Ordering::SeqCst);
}

/// Whether any fault-recovery work is reachable from this worker:
/// orphaned leases, a stranded shared queue with unclaimed chunks, or
/// a dist home queue (this worker's own, or a dead worker's awaiting
/// adoption). Restricted to homes this worker may touch so an idle
/// pool doesn't busy-wake on another live worker's backlog.
fn recovery_visible(shared: &Shared<'_>, id: usize) -> bool {
    let ctl = shared.ctl;
    let Some(f) = &ctl.faults else {
        return false;
    };
    if !f.any_dead() {
        return false;
    }
    if !ctl.leases.lock().expect("lease lock poisoned").is_empty() {
        return true;
    }
    let dead = f.dead_workers();
    shared.ops.iter().any(|op| {
        if op.outstanding.load(Ordering::Acquire) == 0 || op.deps.load(Ordering::Acquire) != 0 {
            return false;
        }
        // Work blocked on a streamed producer's watermark is not
        // *reachable* yet: counting it here would busy-wake this
        // worker in a park loop. The producer's next publication
        // signals, so ignoring blocked work loses no wakeups.
        let limit = op.stream_limit(shared.arena);
        match &op.queue {
            OpQueue::Shared(q) => q.has_more_below(limit),
            OpQueue::Dist(q) => {
                q.home_ready_below(id, limit) || dead.iter().any(|&d| q.home_len(d) > 0)
            }
        }
    })
}

/// Announces an injected death: unconditional sequence bump plus
/// broadcast, mirroring last-op completion. `signal` would be wrong
/// here — it no-ops at `sleepers == 0`, and a worker mid-park-protocol
/// (registered but pre-scan) must still observe the bump to rescan for
/// the recovery work this death just created.
fn announce_death(shared: &Shared<'_>) {
    {
        let mut seq = shared.wake_seq.lock().expect("wake lock poisoned");
        *seq += 1;
    }
    shared.wake.notify_all();
}

/// The post-claim fault/checkpoint hook, called after every successful
/// chunk claim with the chunk's *task-space* indices. Returns `true`
/// when the calling worker must exit (it was killed, or the run is
/// crashing). A killed worker in lease mode records its claimed-but-
/// unexecuted chunk as an orphaned [`Lease`] for survivors to replay.
fn after_claim(
    shared: &Shared<'_>,
    id: usize,
    op_idx: usize,
    tasks: impl FnOnce() -> Vec<usize>,
    epoch: Option<u64>,
) -> bool {
    let ctl = shared.ctl;
    // Cancellation lands at the same boundary as kills: the chunk is
    // claimed but unexecuted, and the whole run is aborting, so the
    // chunk can simply be dropped — no lease needed.
    if ctl.cancel.as_ref().is_some_and(CancelCtl::requested) {
        return true;
    }
    if let Some(f) = &ctl.faults {
        if f.crashed() {
            return true;
        }
        if let Some(mode) = f.on_claim(id, epoch) {
            if f.try_die(id, mode) {
                if mode == KillMode::Lease {
                    ctl.leases
                        .lock()
                        .expect("lease lock poisoned")
                        .push(Lease { op_idx, tasks: tasks() });
                }
                announce_death(shared);
                return true;
            }
        }
    }
    if let Some(ck) = &ctl.ckpt {
        if ck.note_claim(epoch) {
            ck.commit(snapshot_ops(shared.ops, shared.arena));
        }
    }
    false
}

/// Captures every op's completed-task bitmap, outputs, and cost stats
/// for a checkpoint commit. The snapshot copies arena cells into its
/// own buffers — checkpoints keep owned data, the arena keeps none.
fn snapshot_ops(ops: &[OpInstance], arena: &OutputArena) -> Vec<OpSnapshot> {
    ops.iter()
        .enumerate()
        .map(|(i, op)| {
            // SAFETY: `op_snapshot` reads a cell only after observing
            // the task's `executed` counter with `Acquire`, pairing
            // with the writer's post-store `Release` bump — the cell
            // is quiescent by then.
            op_snapshot(&op.costs, &op.restored, &op.executed, |t| unsafe { arena.read(i, t) })
        })
        .collect()
}

/// Replays one orphaned lease: the chunk a killed worker claimed but
/// never executed. Kernels are pure functions of (node, iter, task,
/// cost_hint), so replaying from scratch is bitwise-identical to what
/// the dead worker would have produced.
fn execute_lease(
    shared: &Shared<'_>,
    id: usize,
    lease: Lease,
    kernel: &(dyn TaskKernel + Sync),
    proc: &mut ProcStats,
    timing: &mut OnlineStats,
) {
    let op = &shared.ops[lease.op_idx];
    let node = &shared.nodes[op.node];
    let inputs = shared.inputs_of(op);
    let t0 = Instant::now();
    let start_bits = us_since(shared.epoch, t0).to_bits();
    if op.started_bits.load(Ordering::Relaxed) > start_bits {
        op.started_bits.fetch_min(start_bits, Ordering::AcqRel);
    }
    for &task in &lease.tasks {
        let ctx = TaskCtx { node, iter: op.iter, task, cost_hint: op.costs[task], inputs: &inputs };
        let value = kernel.run_task(&ctx);
        // SAFETY: a lease's tasks were claimed exactly once by the dead
        // worker and are replayed exactly once here (take-all drain).
        unsafe { shared.arena.write(lease.op_idx, task, value) };
        op.executed[task].fetch_add(1, Ordering::Release);
    }
    let now = Instant::now();
    let n = lease.tasks.len();
    if n > 0 {
        let span_us = now.duration_since(t0).as_secs_f64() * 1e6;
        timing.observe_n(span_us / n as f64, n as u64);
        proc.tasks += n as u64;
        proc.chunks += 1;
        proc.busy += span_us;
    }
    let t_end = us_since(shared.epoch, now);
    proc.free_at = proc.free_at.max(t_end);
    if n > 0 && op.outstanding.fetch_sub(n, Ordering::AcqRel) == n {
        complete_op(shared, id, lease.op_idx, t_end);
    }
}

/// The recovery sweep, run by an idle worker before parking: drains
/// orphaned leases (take-all under the mutex, so each is replayed
/// exactly once), retires dead workers from epoch accounting, adopts
/// their dist home queues, and claims directly into any enabled op
/// with unclaimed work — the paths a dropped token would have covered.
fn recover(
    shared: &Shared<'_>,
    id: usize,
    kernel: &(dyn TaskKernel + Sync),
    proc: &mut ProcStats,
    timing: &mut OnlineStats,
) -> Recover {
    let ctl = shared.ctl;
    let Some(f) = &ctl.faults else {
        return Recover::Idle;
    };
    if !f.any_dead() {
        return Recover::Idle;
    }
    let mut progress = false;
    let leases: Vec<Lease> = std::mem::take(&mut *ctl.leases.lock().expect("lease lock poisoned"));
    for lease in leases {
        execute_lease(shared, id, lease, kernel, proc, timing);
        progress = true;
    }
    let dead = f.dead_workers();
    for (op_idx, op) in shared.ops.iter().enumerate() {
        // Only enabled (deps == 0), unfinished ops: claiming from an
        // op whose dependencies are still running would break the
        // dependency order the DAG promises.
        if op.outstanding.load(Ordering::Acquire) == 0 || op.deps.load(Ordering::Acquire) != 0 {
            continue;
        }
        // Skip work blocked at a streamed producer's watermark: a
        // direct claim would come back `Blocked` anyway, and reporting
        // it as progress would spin this worker against the watermark.
        let limit = op.stream_limit(shared.arena);
        match &op.queue {
            OpQueue::Dist(q) => {
                for &d in &dead {
                    // Excuse the dead worker from epoch completion and
                    // take over its home queue. Adoption is
                    // unconditional — unlike the coordinator's
                    // cv-gated reassignment — because under uniform
                    // costs the gate never opens and a dead worker's
                    // home would otherwise strand forever.
                    q.retire_worker(d);
                    if q.adopt_home(d, id) > 0 {
                        progress = true;
                    }
                }
                if q.home_ready_below(id, limit) {
                    if let Flow::Died = run_op(shared, id, op_idx, kernel, proc, timing) {
                        return Recover::Died;
                    }
                    progress = true;
                }
            }
            OpQueue::Shared(q) => {
                if q.has_more_below(limit) {
                    if let Flow::Died = run_op(shared, id, op_idx, kernel, proc, timing) {
                        return Recover::Died;
                    }
                    progress = true;
                }
            }
        }
    }
    if progress {
        Recover::Progress
    } else {
        Recover::Idle
    }
}

/// Per-task clock reads a worker spends on one adaptive op before
/// switching to chunk-level timing. TAPER's µ/σ (and so its chunk
/// sizes) come from this sampled prefix — the paper's runtime likewise
/// *samples* task times rather than metering every task — after which
/// each chunk contributes its mean at full weight.
const SAMPLE_BUDGET: usize = 48;

/// Claims and executes chunks of one op until this worker can get no
/// more from it (or an injected fault kills it mid-claim-loop).
fn run_op(
    shared: &Shared<'_>,
    id: usize,
    op_idx: usize,
    kernel: &(dyn TaskKernel + Sync),
    proc: &mut ProcStats,
    timing: &mut OnlineStats,
) -> Flow {
    match &shared.ops[op_idx].queue {
        OpQueue::Shared(q) => run_op_shared(shared, id, op_idx, q, kernel, proc, timing),
        OpQueue::Dist(q) => run_op_dist(shared, id, op_idx, q, kernel, proc, timing),
    }
}

/// The shared-queue claim loop: claim→execute against one central
/// queue until the op is drained.
#[allow(clippy::too_many_arguments)]
fn run_op_shared(
    shared: &Shared<'_>,
    id: usize,
    op_idx: usize,
    queue: &ChunkQueue,
    kernel: &(dyn TaskKernel + Sync),
    proc: &mut ProcStats,
    timing: &mut OnlineStats,
) -> Flow {
    let op = &shared.ops[op_idx];
    let hooked = shared.ctl.hooked();
    let first = match queue.claim_bounded(op.stream_limit(shared.arena)) {
        BoundedClaim::Chunk(c) => c,
        // Stale token: the op drained while this token circulated.
        BoundedClaim::Exhausted => return Flow::Continue,
        // Everything claimable sits at or above the producers'
        // watermark. Drop the token — the next publication re-tokens
        // this op (never busy-spin on the watermark here).
        BoundedClaim::Blocked => return Flow::Continue,
    };
    // Kills land at the claim boundary: the chunk is claimed (so no
    // other worker can reach it through the queue) but not executed —
    // exactly the window where work would be lost without leases.
    if hooked {
        let lease_tasks =
            || (first.start..first.start + first.len).map(|qi| op.task_of(qi)).collect();
        if after_claim(shared, id, op_idx, lease_tasks, None) {
            return Flow::Died;
        }
    }
    // Re-advertise the op before executing so idle workers can steal
    // into its remaining chunks; one push per op visit, not per chunk.
    if queue.has_more() {
        shared.workers[id].0.ready.lock().expect("deque poisoned").push_back(op_idx);
        shared.signal(false);
    }
    let adaptive = queue.is_adaptive();
    let node = &shared.nodes[op.node];
    let inputs = shared.inputs_of(op);
    let mut chunk = first;
    let mut done = 0usize;
    let mut sampled = 0usize;
    // Per-chunk feedback buffered locally and merged only when the
    // policy lock is free — a blocking lock per chunk stalls the whole
    // claim loop whenever the lock holder is descheduled.
    let mut pending: Vec<(usize, usize, OnlineStats)> = Vec::new();
    // One fresh clock read per op visit; every later timestamp chains
    // off the previous one, so N tasks under per-task sampling cost
    // N+1 reads (not 2N) and a whole chunk outside the sampling
    // prefix costs a single read.
    let t0 = Instant::now();
    let start_bits = us_since(shared.epoch, t0).to_bits();
    // `started_bits` is shared and hot: skip the RMW unless this visit
    // actually is the earliest (it is at most once per worker).
    if op.started_bits.load(Ordering::Relaxed) > start_bits {
        op.started_bits.fetch_min(start_bits, Ordering::AcqRel);
    }
    let mut prev = t0;
    loop {
        let chunk_t0 = prev;
        let mut chunk_stats = OnlineStats::new();
        // The zero-copy write window: for unremapped ops the chunk's
        // queue span IS its task span, so the whole chunk writes
        // through one disjoint `&mut [f64]` view — a plain store per
        // task, no atomics. Resumed (remapped) ops scatter through
        // per-task cell writes instead — as do streamed producers,
        // whose consumers concurrently hold shared slices over this
        // op's span: a `&mut` view overlapping those would be UB
        // regardless of cell-level disjointness, while the raw-pointer
        // store path never forms an exclusive reference.
        //
        // SAFETY: the claim handed `[start, start+len)` to this worker
        // exactly once, so no other thread touches these cells while
        // the view is live.
        let mut view = if op.remap.is_none() && !op.streams_output() {
            Some(unsafe { shared.arena.chunk_view(op_idx, chunk.start, chunk.len) })
        } else {
            None
        };
        // Per-task timing is budgeted *across* chunks, and the budget
        // caps the prefix *within* a chunk too: a large first chunk
        // must not clock every task — two clock reads around a tiny
        // task cost more than the task, and the budget's worth of
        // samples pins µ/σ well enough. Tasks past the prefix are
        // timed in bulk, one clock read per chunk.
        let sample_n =
            if adaptive { SAMPLE_BUDGET.saturating_sub(sampled).min(chunk.len) } else { 0 };
        for qi in chunk.start..chunk.start + sample_n {
            let task = op.task_of(qi);
            let ctx =
                TaskCtx { node, iter: op.iter, task, cost_hint: op.costs[task], inputs: &inputs };
            let value = kernel.run_task(&ctx);
            let now = Instant::now();
            chunk_stats.observe(now.duration_since(prev).as_secs_f64() * 1e6);
            prev = now;
            match &mut view {
                Some(v) => v[qi - chunk.start] = value,
                // SAFETY: exactly-once claim of `task`.
                None => unsafe { shared.arena.write(op_idx, task, value) },
            }
            // Release: pairs with the snapshot scanner's Acquire
            // load of `executed` — a task counted as done must have
            // its output store visible; the RMW still catches
            // duplicate claims.
            op.executed[task].fetch_add(1, Ordering::Release);
        }
        sampled += sample_n;
        let rest = chunk.len - sample_n;
        if rest > 0 {
            for qi in chunk.start + sample_n..chunk.start + chunk.len {
                let task = op.task_of(qi);
                let ctx = TaskCtx {
                    node,
                    iter: op.iter,
                    task,
                    cost_hint: op.costs[task],
                    inputs: &inputs,
                };
                let value = kernel.run_task(&ctx);
                match &mut view {
                    Some(v) => v[qi - chunk.start] = value,
                    // SAFETY: exactly-once claim of `task`.
                    None => unsafe { shared.arena.write(op_idx, task, value) },
                }
                op.executed[task].fetch_add(1, Ordering::Release);
            }
            let now = Instant::now();
            let span_us = now.duration_since(prev).as_secs_f64() * 1e6;
            prev = now;
            chunk_stats.observe_n(span_us / rest as f64, rest as u64);
        }
        if op.streams_output() {
            // Commit this chunk's task interval and, when a full b\*
            // batch (or the op's tail) extends the contiguous frontier,
            // publish the watermark. This happens BEFORE the next claim
            // — whose fault hook may kill this worker — so a committed
            // interval is never lost to a lease.
            if let Some(p) =
                shared.arena.commit_range(op_idx, chunk.start, chunk.len, op.stream_batch)
            {
                handle_publication(shared, id, op_idx, p);
            }
        }
        if adaptive {
            pending.push((chunk.start, chunk.len, chunk_stats));
            queue.try_observe_pending(&mut pending);
        }
        timing.merge(&chunk_stats);
        proc.tasks += chunk.len as u64;
        proc.chunks += 1;
        proc.busy += prev.duration_since(chunk_t0).as_secs_f64() * 1e6;
        done += chunk.len;
        match queue.claim_bounded(op.stream_limit(shared.arena)) {
            BoundedClaim::Chunk(c) => {
                if hooked {
                    let lease_tasks =
                        || (c.start..c.start + c.len).map(|qi| op.task_of(qi)).collect();
                    if after_claim(shared, id, op_idx, lease_tasks, None) {
                        // Dying mid-loop: fold the batch executed so
                        // far into `outstanding` — the `done > 0`
                        // guard matters, since `fetch_sub(0) == 0`
                        // would spuriously re-complete a completed op.
                        let t_end = us_since(shared.epoch, prev);
                        proc.free_at = proc.free_at.max(t_end);
                        if done > 0 && op.outstanding.fetch_sub(done, Ordering::AcqRel) == done {
                            complete_op(shared, id, op_idx, t_end);
                        }
                        return Flow::Died;
                    }
                }
                chunk = c;
            }
            BoundedClaim::Blocked => {
                // The streamable prefix is exhausted but the producer
                // is still running: fold the executed batch into
                // `outstanding` and drop the token instead of spinning
                // — the producer's next publication re-tokens this op.
                // (`outstanding` cannot reach zero here: blocked means
                // unclaimed — hence unfinished — tasks remain; the
                // guard keeps the pattern uniform regardless.)
                let t_end = us_since(shared.epoch, prev);
                proc.free_at = proc.free_at.max(t_end);
                if done > 0 && op.outstanding.fetch_sub(done, Ordering::AcqRel) == done {
                    complete_op(shared, id, op_idx, t_end);
                }
                return Flow::Continue;
            }
            BoundedClaim::Exhausted => break,
        }
    }
    let t_end = us_since(shared.epoch, prev);
    proc.free_at = proc.free_at.max(t_end);
    // One batched decrement per op visit, not one RMW per chunk;
    // whichever worker's batch reaches zero completes the op.
    if op.outstanding.fetch_sub(done, Ordering::AcqRel) == done {
        complete_op(shared, id, op_idx, t_end);
    }
    Flow::Continue
}

/// The distributed-TAPER claim loop: this worker drains its own home
/// queue (plus anything the coordinator migrates into it) and stops
/// when a claim comes back empty — at which point its home queue can
/// never refill, so the token is dropped for good. No re-advertising:
/// every worker received its own token when the op became ready.
///
/// The control plane (chunk sizing, the migration gate) feeds on the
/// tasks' deterministic cost hints inside [`DistQueue::claim`]; the
/// wall-clock here only stamps epoch times and the worker's measured
/// µ/σ, keeping scheduling decisions reproducible across runs.
#[allow(clippy::too_many_arguments)]
fn run_op_dist(
    shared: &Shared<'_>,
    id: usize,
    _op_idx: usize,
    queue: &DistQueue,
    kernel: &(dyn TaskKernel + Sync),
    proc: &mut ProcStats,
    timing: &mut OnlineStats,
) -> Flow {
    let op = &shared.ops[_op_idx];
    let hooked = shared.ctl.hooked();
    let t0 = Instant::now();
    let start_bits = us_since(shared.epoch, t0).to_bits();
    let Some(first) = queue.claim_bounded(
        id,
        op.claim_costs(),
        f64::from_bits(start_bits),
        op.stream_limit(shared.arena),
    ) else {
        // Empty home queue (stale token, or fewer tasks than workers),
        // or everything drawable sits at or above the streamed
        // producers' watermark — either way drop the token; a
        // publication re-tokens every member's `dist_ready`.
        return Flow::Continue;
    };
    // Dist claims carry their epoch token: `AtEpoch` faults key off it,
    // and checkpoints use the epoch boundary as their barrier.
    if hooked {
        let lease_tasks = || first.tasks.iter().map(|&qi| op.task_of(qi)).collect();
        if after_claim(shared, id, _op_idx, lease_tasks, Some(first.epoch)) {
            return Flow::Died;
        }
    }
    if op.started_bits.load(Ordering::Relaxed) > start_bits {
        op.started_bits.fetch_min(start_bits, Ordering::AcqRel);
    }
    let node = &shared.nodes[op.node];
    let inputs = shared.inputs_of(op);
    let mut chunk = first;
    let mut done = 0usize;
    let mut prev = t0;
    let mut last_epoch = chunk.epoch;
    loop {
        let chunk_t0 = prev;
        for &qi in &chunk.tasks {
            let task = op.task_of(qi);
            let ctx =
                TaskCtx { node, iter: op.iter, task, cost_hint: op.costs[task], inputs: &inputs };
            let value = kernel.run_task(&ctx);
            // SAFETY: dist home queues hand each queue index out
            // exactly once; migrated tasks move queues, never
            // duplicate. (Dist chunks list arbitrary indices, so the
            // scattered per-cell write is the right shape here.)
            unsafe { shared.arena.write(_op_idx, task, value) };
            op.executed[task].fetch_add(1, Ordering::Release);
        }
        let now = Instant::now();
        let span_us = now.duration_since(prev).as_secs_f64() * 1e6;
        prev = now;
        timing.observe_n(span_us / chunk.tasks.len() as f64, chunk.tasks.len() as u64);
        proc.tasks += chunk.tasks.len() as u64;
        proc.chunks += 1;
        proc.busy += prev.duration_since(chunk_t0).as_secs_f64() * 1e6;
        done += chunk.tasks.len();
        if op.streams_output() {
            // A dist chunk lists arbitrary task indices: commit them as
            // maximal consecutive runs (home blocks are contiguous, so
            // runs stay long in practice) — before the next claim's
            // fault hook, as in the shared loop.
            let mut i = 0;
            while i < chunk.tasks.len() {
                let start = chunk.tasks[i];
                let mut len = 1;
                while i + len < chunk.tasks.len() && chunk.tasks[i + len] == start + len {
                    len += 1;
                }
                if let Some(p) = shared.arena.commit_range(_op_idx, start, len, op.stream_batch) {
                    handle_publication(shared, id, _op_idx, p);
                }
                i += len;
            }
        }
        match queue.claim_bounded(
            id,
            op.claim_costs(),
            us_since(shared.epoch, prev),
            op.stream_limit(shared.arena),
        ) {
            Some(c) => {
                if hooked {
                    let lease_tasks = || c.tasks.iter().map(|&qi| op.task_of(qi)).collect();
                    if after_claim(shared, id, _op_idx, lease_tasks, Some(c.epoch)) {
                        let t_end = us_since(shared.epoch, prev);
                        proc.free_at = proc.free_at.max(t_end);
                        if done > 0 && op.outstanding.fetch_sub(done, Ordering::AcqRel) == done {
                            complete_op(shared, id, _op_idx, t_end);
                        }
                        return Flow::Died;
                    }
                }
                // Epoch boundary: the allocator's iterative
                // re-equalization point. The TAPER stats are a full
                // epoch warmer, so re-score the concurrent ops and
                // offer this worker to the laggard (a no-op when this
                // op *is* the laggard — its mask bit is already set).
                if c.epoch > last_epoch {
                    last_epoch = c.epoch;
                    reequalize(shared, &[id]);
                }
                chunk = c;
            }
            None => break,
        }
    }
    let t_end = us_since(shared.epoch, prev);
    proc.free_at = proc.free_at.max(t_end);
    if op.outstanding.fetch_sub(done, Ordering::AcqRel) == done {
        complete_op(shared, id, _op_idx, t_end);
    }
    Flow::Continue
}

/// The serial (non-overlapped) live finishing-time estimate of one
/// unfinished op under its current allocation: remaining tasks ×
/// sampled µ/σ out of the chunk queues (task-count equalization before
/// any samples land), scored by [`finish_estimate_live`] with
/// host-calibrated overheads.
fn base_estimate(shared: &Shared<'_>, op_idx: usize, cal: &HostCalibration) -> Option<f64> {
    let op = &shared.ops[op_idx];
    if op.deps.load(Ordering::Acquire) != 0 || op.outstanding.load(Ordering::Acquire) == 0 {
        return None;
    }
    let (remaining, stats, kind) = match &op.queue {
        OpQueue::Shared(q) => {
            let kind = if q.is_adaptive() { PolicyKind::Taper } else { PolicyKind::Gss };
            (q.remaining(), q.sampled_stats(), kind)
        }
        OpQueue::Dist(q) => (q.remaining(), q.sampled_stats(), PolicyKind::Taper),
    };
    if remaining == 0 {
        return None;
    }
    let spec = OpSpec::from_live(remaining, stats.as_ref(), kind);
    let p = shared.partition.procs(op_idx, shared.workers.len()).max(1);
    Some(finish_estimate_live(&spec, p, cal).total())
}

/// [`base_estimate`], made overlap-aware for streamed consumers: when
/// one of the op's streamed producers is still running, the pair forms
/// a pipeline, and the §4.1.2 equalizer must score the consumer by the
/// pair's *overlapped* stage time (§4.1's [`pipelined_stage_time_params`]
/// over the measured per-publish α / per-byte β and the producer's b\*)
/// rather than pretend the stages serialize. This is where the
/// allocator and the granularity model compose at runtime: the laggard
/// pick in [`reequalize`] sees a streamed pair as one overlapped unit.
fn live_estimate(shared: &Shared<'_>, op_idx: usize, cal: &HostCalibration) -> Option<f64> {
    let base = base_estimate(shared, op_idx, cal)?;
    let op = &shared.ops[op_idx];
    let mut est = base;
    for &p in &op.stream_inputs {
        let producer = &shared.ops[p];
        if producer.outstanding.load(Ordering::Acquire) == 0 {
            continue;
        }
        if let Some(pe) = base_estimate(shared, p, cal) {
            est = est.max(pipelined_stage_time_params(
                pe,
                base,
                op.costs.len(),
                std::mem::size_of::<f64>() as u64,
                producer.stream_batch,
                cal.publish_alpha_us,
                cal.copy_beta_us,
            ));
        }
    }
    Some(est)
}

/// One §4.1.2 re-equalization step: admit each of `freed` into the
/// partition of the op with the largest live finishing-time estimate
/// (re-evaluated after every admission, so consecutive workers can
/// land on different laggards as the estimates equalize), seed dist
/// home queues, push tokens, and wake sleepers. Returns whether any
/// admission happened. Contended triggers skip — the next epoch
/// boundary or completion re-evaluates from fresher state anyway.
fn reequalize(shared: &Shared<'_>, freed: &[usize]) -> bool {
    let part = shared.partition;
    if !part.enabled() || freed.is_empty() {
        return false;
    }
    let Ok(_guard) = part.balance.try_lock() else {
        return false;
    };
    let cal = HostCalibration::get();
    let mut progress = false;
    for &w in freed {
        let laggard = (0..shared.ops.len())
            .filter(|&i| !part.allows(i, w))
            .filter_map(|i| live_estimate(shared, i, &cal).map(|e| (e, i)))
            .max_by(|a, b| a.0.total_cmp(&b.0));
        let Some((_, laggard)) = laggard else { continue };
        if !part.admit(laggard, w) {
            continue;
        }
        match &shared.ops[laggard].queue {
            OpQueue::Dist(q) => {
                // Seed the admitted home unconditionally — the
                // equalizer already decided this migration, so the
                // cv gate must not veto it.
                q.admit_worker(w);
                shared.workers[w].0.dist_ready.lock().expect("dist list poisoned").push(laggard);
            }
            OpQueue::Shared(_) => {
                shared.workers[w].0.ready.lock().expect("deque poisoned").push_back(laggard);
            }
        }
        progress = true;
    }
    if progress {
        shared.signal(true);
    }
    progress
}

/// Reacts to one watermark publication by producer `op_idx`.
///
/// The *first* publication is the producer's dependency arrival for
/// each streamed edge: it decrements the consumer's `deps` counter
/// (exactly once — publications are serialized by the arena's frontier
/// mutex, so `previous == 0 && current > 0` holds for one publication
/// only). Every publication, first or later, re-tokens consumers that
/// are enabled and unfinished: a worker that went blocked dropped its
/// token, and this fresh token is what brings one back onto the newly
/// streamable prefix. Lost-wakeup argument: the publisher's `Release`
/// watermark store precedes these pushes, and a blocked worker only
/// ever drops its *own* token — the publisher's token survives for
/// `park`'s visible-work scan and the signalled wakeup below.
fn handle_publication(shared: &Shared<'_>, id: usize, op_idx: usize, publication: Publication) {
    if publication.current <= publication.previous {
        return;
    }
    let op = &shared.ops[op_idx];
    let n_workers = shared.workers.len();
    let mut woke = 0usize;
    let mut wake_all = false;
    for &d in &op.stream_dependents {
        let dep = &shared.ops[d];
        let enabled = if publication.is_first() {
            dep.deps.fetch_sub(1, Ordering::AcqRel) == 1
        } else {
            dep.deps.load(Ordering::Acquire) == 0
        };
        if !enabled || dep.outstanding.load(Ordering::Acquire) == 0 {
            continue;
        }
        woke += 1;
        if dep.queue.is_dist() {
            // Every partition member owns a home queue of a dist op:
            // re-token them all (duplicate tokens are hints — a stale
            // one fails its claim and is dropped).
            for (w, wk) in shared.workers.iter().enumerate() {
                if shared.partition.allows(d, w) {
                    wk.0.dist_ready.lock().expect("dist list poisoned").push(d);
                }
            }
            wake_all = true;
        } else if shared.partition.allows(d, id) {
            // Freshly published producer cells are hottest in this
            // worker's cache — front of its own deque.
            shared.workers[id].0.ready.lock().expect("deque poisoned").push_front(d);
        } else {
            let w = shared.partition.members(d, n_workers)[0];
            shared.workers[w].0.ready.lock().expect("deque poisoned").push_back(d);
        }
    }
    if woke > 0 {
        shared.signal(wake_all || woke > 1);
    }
}

/// Runs exactly once per op (by whichever worker drops `outstanding`
/// to zero): stamps the finish, enables dependents, and counts the op
/// as completed — broadcasting only when it was the last one.
fn complete_op(shared: &Shared<'_>, id: usize, op_idx: usize, t_end: f64) {
    let op = &shared.ops[op_idx];
    op.finished_bits.fetch_min(t_end.to_bits(), Ordering::AcqRel);
    if !op.stream_dependents.is_empty() {
        // Belt and braces for paths that never commit ranges (lease
        // replay, dist scatter with non-contiguous runs) and for any
        // sub-batch tail: drive the watermark to the full op and run
        // the publication protocol once more. Idempotent — when the
        // last commit already published the total, the publication is
        // empty and `handle_publication` returns immediately.
        let p = shared.arena.publish_all(op_idx);
        handle_publication(shared, id, op_idx, p);
    }
    // Collect the newly enabled dependents first, then publish their
    // tokens one lock at a time — dist enabling locks every worker's
    // token list, and nesting those inside a deque lock would invite a
    // lock-order cycle with concurrent completers.
    let mut newly_shared: Vec<usize> = Vec::new();
    let mut newly_dist: Vec<usize> = Vec::new();
    for &d in &op.dependents {
        if shared.ops[d].deps.fetch_sub(1, Ordering::AcqRel) == 1 {
            if shared.ops[d].queue.is_dist() {
                newly_dist.push(d);
            } else {
                newly_shared.push(d);
            }
        }
    }
    let n_workers = shared.workers.len();
    if !newly_shared.is_empty() {
        // Push each token to a partition member's deque — our own
        // (front: it is the hottest work we know of) when we are one,
        // the op's first member otherwise. One lock at a time keeps
        // lock holds disjoint.
        let mut own: Vec<usize> = Vec::new();
        let mut routed: Vec<(usize, usize)> = Vec::new();
        for &d in &newly_shared {
            if shared.partition.allows(d, id) {
                own.push(d);
            } else {
                let w = shared.partition.members(d, n_workers)[0];
                routed.push((w, d));
            }
        }
        if !own.is_empty() {
            let mut dq = shared.workers[id].0.ready.lock().expect("deque poisoned");
            for &d in &own {
                dq.push_front(d);
            }
        }
        for (w, d) in routed {
            shared.workers[w].0.ready.lock().expect("deque poisoned").push_back(d);
        }
    }
    // A dist op needs every partition member at its own home queue:
    // token all of them (migration-aware wakeup — even a member with
    // no shared work must rise for its home block).
    for (w, wk) in shared.workers.iter().enumerate() {
        if newly_dist.is_empty() {
            break;
        }
        let mine: Vec<usize> =
            newly_dist.iter().copied().filter(|&d| shared.partition.allows(d, w)).collect();
        if !mine.is_empty() {
            wk.0.dist_ready.lock().expect("dist list poisoned").extend_from_slice(&mine);
        }
    }
    let newly_ready = newly_shared.len() + newly_dist.len();
    if newly_ready > 0 {
        shared.signal(newly_ready > 1 || !newly_dist.is_empty());
    }
    if shared.completed.fetch_add(1, Ordering::SeqCst) + 1 == shared.ops.len() {
        // Last op: wake every sleeper so the pool can exit. Bump the
        // sequence unconditionally — a parker may be mid-protocol.
        {
            let mut seq = shared.wake_seq.lock().expect("wake lock poisoned");
            *seq += 1;
        }
        shared.wake.notify_all();
    } else if shared.partition.enabled() {
        // This op's workers are (as far as it is concerned) free:
        // migrate them to the laggard's partition instead of letting
        // them idle or thrash another partition's queue.
        let freed = shared.partition.members(op_idx, n_workers);
        reequalize(shared, &freed);
    }
}
