//! The shared claim-next-chunk queue driving one parallel operation on
//! real threads.
//!
//! This is the concurrent counterpart of the simulator's scheduling
//! loop in [`crate::par_op`]: idle workers claim the next chunk whose
//! size the [`ChunkPolicy`] chooses from the live µ/σ samples, so
//! TAPER, GSS, factoring, and self-scheduling all drive real execution
//! through the exact same policy objects the simulator uses.

use crate::chunking::ChunkPolicy;
use std::sync::Mutex;

/// A contiguous block of task indices claimed by one worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chunk {
    /// First task index.
    pub start: usize,
    /// Number of tasks.
    pub len: usize,
}

struct QueueState {
    policy: Box<dyn ChunkPolicy + Send>,
    next: usize,
    remaining: usize,
    chunks: u64,
}

/// Atomic claim-next-chunk queue over one operation's iteration space.
pub struct ChunkQueue {
    state: Mutex<QueueState>,
    total: usize,
    workers: usize,
}

impl ChunkQueue {
    /// A queue over `total` tasks scheduled for `workers` workers.
    pub fn new(policy: Box<dyn ChunkPolicy + Send>, total: usize, workers: usize) -> Self {
        ChunkQueue {
            state: Mutex::new(QueueState { policy, next: 0, remaining: total, chunks: 0 }),
            total,
            workers: workers.max(1),
        }
    }

    /// Claims the next chunk, or `None` when the iteration space is
    /// exhausted. Each task index is handed out exactly once across
    /// all claimants.
    pub fn claim(&self) -> Option<Chunk> {
        let mut s = self.state.lock().expect("chunk queue poisoned");
        if s.remaining == 0 {
            return None;
        }
        let (next, remaining) = (s.next, s.remaining);
        let k = s.policy.next_chunk(next, remaining, self.workers).clamp(1, remaining);
        let chunk = Chunk { start: s.next, len: k };
        s.next += k;
        s.remaining -= k;
        s.chunks += 1;
        Some(chunk)
    }

    /// Feeds one completed task's measured time back to the adaptive
    /// policy — the live analogue of the simulator's sampling.
    pub fn observe(&self, index: usize, cost_us: f64) {
        let mut s = self.state.lock().expect("chunk queue poisoned");
        s.policy.observe(index, cost_us);
    }

    /// Chunks handed out so far.
    pub fn chunks_claimed(&self) -> u64 {
        self.state.lock().expect("chunk queue poisoned").chunks
    }

    /// Total tasks in the operation.
    pub fn total(&self) -> usize {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunking::PolicyKind;
    use std::sync::Arc;

    fn drain_concurrently(kind: PolicyKind, total: usize, workers: usize) -> Vec<usize> {
        let q = Arc::new(ChunkQueue::new(kind.instantiate(total), total, workers));
        let mut handles = Vec::new();
        for _ in 0..workers {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                let mut seen = Vec::new();
                while let Some(c) = q.claim() {
                    for i in c.start..c.start + c.len {
                        seen.push(i);
                        q.observe(i, 1.0);
                    }
                }
                seen
            }));
        }
        let mut all: Vec<usize> =
            handles.into_iter().flat_map(|h| h.join().expect("worker panicked")).collect();
        all.sort_unstable();
        all
    }

    #[test]
    fn every_task_claimed_exactly_once() {
        for kind in [
            PolicyKind::SelfSched,
            PolicyKind::Gss,
            PolicyKind::Factoring,
            PolicyKind::Taper,
            PolicyKind::TaperCostFn,
        ] {
            let claimed = drain_concurrently(kind, 1000, 4);
            assert_eq!(claimed, (0..1000).collect::<Vec<_>>(), "{}", kind.name());
        }
    }

    #[test]
    fn empty_queue_yields_nothing() {
        let q = ChunkQueue::new(PolicyKind::Taper.instantiate(0), 0, 2);
        assert_eq!(q.claim(), None);
        assert_eq!(q.chunks_claimed(), 0);
    }

    #[test]
    fn chunk_count_bounded_by_tasks() {
        let q = ChunkQueue::new(PolicyKind::Gss.instantiate(64), 64, 4);
        let mut n = 0;
        while q.claim().is_some() {
            n += 1;
        }
        assert!(n <= 64);
        assert_eq!(q.chunks_claimed(), n);
    }
}
