//! The shared claim-next-chunk queue driving one parallel operation on
//! real threads.
//!
//! This is the concurrent counterpart of the simulator's scheduling
//! loop in [`crate::par_op`]: idle workers claim the next chunk whose
//! size the [`ChunkPolicy`] chooses, so TAPER, GSS, factoring, and
//! self-scheduling all drive real execution through the exact same
//! policy objects the simulator uses.
//!
//! Two claim paths, chosen at construction:
//!
//! * **Fixed** — policies whose chunk sequence never depends on
//!   observed task times (self-scheduling, GSS, factoring) declare it
//!   up front via [`ChunkPolicy::fixed_schedule`]. The queue
//!   precomputes the chunk boundaries and a claim is one
//!   check-then-claim `compare_exchange` on an atomic cursor: no lock
//!   anywhere on the per-task or per-chunk hot path, task-time
//!   feedback is a no-op, and a claim on an exhausted queue is a pure
//!   load (stale steal attempts never write the contended line).
//! * **Adaptive** — TAPER resizes chunks from live µ/σ samples, so its
//!   policy object sits behind a mutex; the critical section is one
//!   `next_chunk` call per claim plus one batched
//!   [`observe_chunk`](ChunkPolicy::observe_chunk) merge per
//!   *completed chunk* (workers accumulate task times into a local
//!   [`OnlineStats`] and fold them in at chunk end), never a lock per
//!   task.

use crate::chunking::ChunkPolicy;
use crate::stats::OnlineStats;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// A contiguous block of task indices claimed by one worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chunk {
    /// First task index.
    pub start: usize,
    /// Number of tasks.
    pub len: usize,
}

/// State of an observation-driven (TAPER) queue, all behind one short
/// critical section.
struct AdaptiveState {
    policy: Box<dyn ChunkPolicy + Send>,
    next: usize,
    remaining: usize,
}

enum Mode {
    /// Precomputed schedule: chunk `i` spans `bounds[i]..bounds[i+1]`;
    /// claiming is a lock-free cursor increment.
    Fixed { bounds: Vec<usize>, cursor: AtomicUsize },
    /// Observation-driven schedule behind a mutex.
    Adaptive(Mutex<AdaptiveState>),
}

/// Claim-next-chunk queue over one operation's iteration space.
pub struct ChunkQueue {
    mode: Mode,
    /// Tasks not yet handed out (hint for [`Self::has_more`]), kept in
    /// sync *inside* the adaptive claim's critical section; the fixed
    /// path derives the hint from the cursor instead and never touches
    /// this.
    remaining_hint: AtomicUsize,
    chunks: AtomicU64,
    total: usize,
    workers: usize,
}

impl ChunkQueue {
    /// A queue over `total` tasks scheduled for `workers` workers.
    ///
    /// Policies that can precompute their whole chunk sequence get the
    /// lock-free fixed path; the rest stay adaptive.
    pub fn new(policy: Box<dyn ChunkPolicy + Send>, total: usize, workers: usize) -> Self {
        let workers = workers.max(1);
        let mode = match policy.fixed_schedule(total, workers) {
            Some(sizes) => {
                let mut bounds = Vec::with_capacity(sizes.len() + 1);
                bounds.push(0usize);
                let mut acc = 0usize;
                for k in sizes {
                    acc += k;
                    bounds.push(acc);
                }
                debug_assert_eq!(acc, total, "fixed schedule must cover the iteration space");
                Mode::Fixed { bounds, cursor: AtomicUsize::new(0) }
            }
            None => Mode::Adaptive(Mutex::new(AdaptiveState { policy, next: 0, remaining: total })),
        };
        ChunkQueue {
            mode,
            remaining_hint: AtomicUsize::new(total),
            chunks: AtomicU64::new(0),
            total,
            workers,
        }
    }

    /// Claims the next chunk, or `None` when the iteration space is
    /// exhausted. Each task index is handed out exactly once across
    /// all claimants.
    pub fn claim(&self) -> Option<Chunk> {
        let chunk = match &self.mode {
            Mode::Fixed { bounds, cursor } => {
                // Check-then-claim: the cursor never advances past the
                // chunk count, so a post-exhaustion claim (a stale
                // steal attempt) is a single load — no `fetch_add`
                // hammering the contended cache line, and no unbounded
                // cursor growth.
                let n_chunks = bounds.len() - 1;
                let mut i = cursor.load(Ordering::Relaxed);
                loop {
                    if i >= n_chunks {
                        return None;
                    }
                    match cursor.compare_exchange_weak(
                        i,
                        i + 1,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => break,
                        Err(seen) => i = seen,
                    }
                }
                Chunk { start: bounds[i], len: bounds[i + 1] - bounds[i] }
            }
            Mode::Adaptive(state) => {
                let mut s = state.lock().expect("chunk queue poisoned");
                if s.remaining == 0 {
                    return None;
                }
                let (next, remaining) = (s.next, s.remaining);
                let k = s.policy.next_chunk(next, remaining, self.workers).clamp(1, remaining);
                s.next += k;
                s.remaining -= k;
                // The hint update stays inside the critical section:
                // once the final chunk has been handed out (lock
                // released with `remaining == 0`), no observer can
                // read a stale `has_more() == true`.
                self.remaining_hint.store(s.remaining, Ordering::Release);
                Chunk { start: next, len: k }
            }
        };
        self.chunks.fetch_add(1, Ordering::Relaxed);
        Some(chunk)
    }

    /// Feeds one completed chunk's task-time statistics back to the
    /// adaptive policy — the worker's locally accumulated µ/σ merged
    /// in one short critical section. No-op (and no lock) for fixed
    /// schedules.
    pub fn observe_chunk(&self, start: usize, len: usize, stats: &OnlineStats) {
        if let Mode::Adaptive(state) = &self.mode {
            let mut s = state.lock().expect("chunk queue poisoned");
            s.policy.observe_chunk(start, len, stats);
        }
    }

    /// Whether unclaimed chunks probably remain (a racy hint: workers
    /// use it to decide if an operation is worth advertising to
    /// thieves; exactness is guaranteed by [`Self::claim`], not here).
    /// One direction *is* exact: once the final chunk has been handed
    /// out, this never reports `true` again — the fixed cursor is
    /// capped at the chunk count, and the adaptive hint is updated
    /// inside the claim's critical section.
    pub fn has_more(&self) -> bool {
        match &self.mode {
            Mode::Fixed { bounds, cursor } => cursor.load(Ordering::Relaxed) + 1 < bounds.len(),
            Mode::Adaptive(_) => self.remaining_hint.load(Ordering::Acquire) > 0,
        }
    }

    /// The fixed-mode claim cursor (number of claims that advanced
    /// it), or `None` for adaptive queues. Exposed so stress tests can
    /// assert that post-exhaustion claim storms do not grow the
    /// cursor beyond the chunk count.
    pub fn fixed_cursor(&self) -> Option<usize> {
        match &self.mode {
            Mode::Fixed { cursor, .. } => Some(cursor.load(Ordering::Relaxed)),
            Mode::Adaptive(_) => None,
        }
    }

    /// Whether this queue serves a precomputed schedule lock-free.
    pub fn is_lock_free(&self) -> bool {
        matches!(self.mode, Mode::Fixed { .. })
    }

    /// Chunks handed out so far.
    pub fn chunks_claimed(&self) -> u64 {
        self.chunks.load(Ordering::Relaxed)
    }

    /// Total tasks in the operation.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Worker count the schedule was sized for (mirrors
    /// [`DistQueue::workers`](super::dist::DistQueue::workers), so
    /// diagnostics can treat both queue kinds uniformly).
    pub fn workers(&self) -> usize {
        self.workers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunking::PolicyKind;
    use std::sync::Arc;

    fn drain_concurrently(kind: PolicyKind, total: usize, workers: usize) -> Vec<usize> {
        let q = Arc::new(ChunkQueue::new(kind.instantiate(total), total, workers));
        let mut handles = Vec::new();
        for _ in 0..workers {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                let mut seen = Vec::new();
                while let Some(c) = q.claim() {
                    let mut stats = OnlineStats::new();
                    for i in c.start..c.start + c.len {
                        seen.push(i);
                        stats.observe(1.0);
                    }
                    q.observe_chunk(c.start, c.len, &stats);
                }
                seen
            }));
        }
        let mut all: Vec<usize> =
            handles.into_iter().flat_map(|h| h.join().expect("worker panicked")).collect();
        all.sort_unstable();
        all
    }

    #[test]
    fn every_task_claimed_exactly_once() {
        for kind in [
            PolicyKind::SelfSched,
            PolicyKind::Gss,
            PolicyKind::Factoring,
            PolicyKind::Taper,
            PolicyKind::TaperCostFn,
        ] {
            let claimed = drain_concurrently(kind, 1000, 4);
            assert_eq!(claimed, (0..1000).collect::<Vec<_>>(), "{}", kind.name());
        }
    }

    #[test]
    fn empty_queue_yields_nothing() {
        let q = ChunkQueue::new(PolicyKind::Taper.instantiate(0), 0, 2);
        assert_eq!(q.claim(), None);
        assert_eq!(q.chunks_claimed(), 0);
        assert!(!q.has_more());
    }

    #[test]
    fn chunk_count_bounded_by_tasks() {
        let q = ChunkQueue::new(PolicyKind::Gss.instantiate(64), 64, 4);
        let mut n = 0;
        while q.claim().is_some() {
            n += 1;
        }
        assert!(n <= 64);
        assert_eq!(q.chunks_claimed(), n);
    }

    #[test]
    fn fixed_policies_take_the_lock_free_path() {
        for kind in [PolicyKind::SelfSched, PolicyKind::Gss, PolicyKind::Factoring] {
            let q = ChunkQueue::new(kind.instantiate(100), 100, 4);
            assert!(q.is_lock_free(), "{}", kind.name());
        }
        for kind in [PolicyKind::Taper, PolicyKind::TaperCostFn] {
            let q = ChunkQueue::new(kind.instantiate(100), 100, 4);
            assert!(!q.is_lock_free(), "{}", kind.name());
        }
    }

    #[test]
    fn fixed_path_replays_the_policy_chunk_sequence() {
        // The lock-free cursor must hand out exactly the chunks the
        // policy would have chosen one scheduling event at a time.
        for kind in [PolicyKind::SelfSched, PolicyKind::Gss, PolicyKind::Factoring] {
            let q = ChunkQueue::new(kind.instantiate(500), 500, 8);
            let mut reference = kind.instantiate(500);
            let mut remaining = 500usize;
            let mut next = 0usize;
            while let Some(c) = q.claim() {
                let k = reference.next_chunk(next, remaining, 8).clamp(1, remaining);
                assert_eq!(c, Chunk { start: next, len: k }, "{}", kind.name());
                next += k;
                remaining -= k;
            }
            assert_eq!(remaining, 0, "{}", kind.name());
        }
    }

    #[test]
    fn exhausted_has_more_is_false_and_claims_stay_none() {
        let q = ChunkQueue::new(PolicyKind::SelfSched.instantiate(3), 3, 2);
        while q.claim().is_some() {}
        assert!(!q.has_more());
        // Extra claims after exhaustion (stale steal attempts) are
        // harmless.
        for _ in 0..10 {
            assert_eq!(q.claim(), None);
        }
    }

    #[test]
    fn fixed_cursor_capped_at_chunk_count() {
        let q = ChunkQueue::new(PolicyKind::SelfSched.instantiate(5), 5, 2);
        let mut n = 0usize;
        while q.claim().is_some() {
            n += 1;
        }
        assert_eq!(n, 5);
        assert_eq!(q.fixed_cursor(), Some(5));
        // Post-exhaustion claims must not advance the cursor at all.
        for _ in 0..1000 {
            assert_eq!(q.claim(), None);
        }
        assert_eq!(q.fixed_cursor(), Some(5), "stale claims grew the cursor");
        // Adaptive queues have no fixed cursor.
        assert_eq!(ChunkQueue::new(PolicyKind::Taper.instantiate(5), 5, 2).fixed_cursor(), None);
    }

    #[test]
    fn adaptive_has_more_false_once_final_chunk_handed_out() {
        // Single-threaded version of the invariant (the concurrent
        // storm lives in tests/sched_stress.rs): after each claim,
        // `has_more` must agree with whether the claim drained the
        // queue — the hint is updated inside the critical section, so
        // there is no window where the final chunk is out but the
        // hint still says more work exists.
        let q = ChunkQueue::new(PolicyKind::Taper.instantiate(100), 100, 4);
        let mut handed = 0usize;
        while let Some(c) = q.claim() {
            handed += c.len;
            assert_eq!(q.has_more(), handed < 100, "hint diverges at {handed}/100");
        }
        assert!(!q.has_more());
    }
}
