//! The shared claim-next-chunk queue driving one parallel operation on
//! real threads.
//!
//! This is the concurrent counterpart of the simulator's scheduling
//! loop in [`crate::par_op`]: idle workers claim the next chunk whose
//! size the [`ChunkPolicy`] chooses, so TAPER, GSS, factoring, and
//! self-scheduling all drive real execution through the exact same
//! policy objects the simulator uses.
//!
//! Two claim paths, chosen at construction:
//!
//! * **Fixed** — policies whose chunk sequence never depends on
//!   observed task times (self-scheduling, GSS, factoring) declare it
//!   up front via [`ChunkPolicy::fixed_schedule`]. The queue
//!   precomputes the chunk boundaries and a claim is one
//!   check-then-claim `compare_exchange` on an atomic cursor: no lock
//!   anywhere on the per-task or per-chunk hot path, task-time
//!   feedback is a no-op, and a claim on an exhausted queue is a pure
//!   load (stale steal attempts never write the contended line).
//! * **Adaptive** — TAPER resizes chunks from live µ/σ samples, but its
//!   claim path is lock-free too: the policy's latest chunk-size
//!   decision is published in a padded atomic *epoch descriptor*
//!   (`epoch_end << 32 | chunk_len`), and a claim is one `fetch_add`
//!   on a task cursor plus a bounds check. Only when a claim crosses
//!   the published epoch end does the claiming worker `try_lock` the
//!   policy, recompute the chunk size at the new frontier, and publish
//!   the next descriptor — losers of that race keep claiming at the
//!   (one epoch stale) size and never block. Batched
//!   [`observe_chunk`](ChunkPolicy::observe_chunk) feedback — one merge
//!   per *completed chunk*, from a worker-local [`OnlineStats`] — is
//!   the only other place the policy mutex is taken, and it is never
//!   on the claim path.

use crate::chunking::ChunkPolicy;
use crate::stats::OnlineStats;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// A contiguous block of task indices claimed by one worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chunk {
    /// First task index.
    pub start: usize,
    /// Number of tasks.
    pub len: usize,
}

/// Outcome of a watermark-bounded claim ([`ChunkQueue::claim_bounded`]).
///
/// Distinguishes "nothing left, ever" from "more tasks exist but the
/// producer has not published them yet" — a consumer must *park* on the
/// latter (the producer re-tokens it at the next watermark publication)
/// and *finish* on the former.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundedClaim {
    /// A chunk entirely below the watermark limit was claimed.
    Chunk(Chunk),
    /// Unclaimed tasks remain, but the next one sits at or above the
    /// watermark limit: the producer has not committed its input yet.
    Blocked,
    /// The iteration space is exhausted; no claim will ever succeed.
    Exhausted,
}

/// Pads a hot atomic onto its own cache line so the claim cursor and
/// the epoch descriptor never false-share with each other or with the
/// policy mutex.
#[repr(align(64))]
struct Padded<T>(T);

/// State of an observation-driven (TAPER) queue: a lock-free claim
/// cursor over the task space, the published epoch descriptor, and the
/// policy object behind a mutex that the claim path only ever
/// `try_lock`s (on epoch rollover).
struct AdaptiveMode {
    /// Next unclaimed task index; a claim is one `fetch_add` of the
    /// published chunk length.
    cursor: Padded<AtomicUsize>,
    /// The published decision: `(epoch_end << 32) | chunk_len`, where
    /// `epoch_end` is the task index at which the size should be
    /// recomputed (one decision serves ~`workers` chunks).
    plan: Padded<AtomicU64>,
    /// Locked to publish the next epoch's decision (`try_lock`; the
    /// loser keeps claiming at the stale size) and by `observe_chunk`
    /// feedback — never blocking on the claim path.
    policy: Mutex<Box<dyn ChunkPolicy + Send>>,
}

/// Packs an epoch descriptor. Task indices are asserted to fit 32 bits
/// at construction.
fn pack_plan(epoch_end: usize, chunk_len: usize) -> u64 {
    debug_assert!(epoch_end <= u32::MAX as usize && chunk_len <= u32::MAX as usize);
    ((epoch_end as u64) << 32) | chunk_len as u64
}

/// How far one published decision is allowed to reach: about one chunk
/// per worker, but never more than half the remaining space — TAPER's
/// early no-feedback decision is `remaining/p`, and letting p such
/// chunks stand would freeze the size for the whole operation. The
/// half-space cap keeps the decreasing-chunk shape (size recomputed at
/// a geometrically shrinking frontier) while still amortizing one
/// policy call over many claims. With one worker every chunk is its
/// own epoch, which reproduces per-claim decisions exactly.
fn epoch_span(chunk_len: usize, remaining: usize, workers: usize) -> usize {
    (chunk_len * workers).min((remaining / 2).max(chunk_len))
}

fn unpack_plan(d: u64) -> (usize, usize) {
    ((d >> 32) as usize, (d & u64::from(u32::MAX)) as usize)
}

enum Mode {
    /// Precomputed schedule: chunk `i` spans `bounds[i]..bounds[i+1]`;
    /// claiming is a lock-free cursor increment.
    Fixed { bounds: Vec<usize>, cursor: AtomicUsize },
    /// Observation-driven schedule claimed through the epoch
    /// descriptor.
    Adaptive(AdaptiveMode),
}

/// Claim-next-chunk queue over one operation's iteration space.
pub struct ChunkQueue {
    mode: Mode,
    chunks: AtomicU64,
    total: usize,
    workers: usize,
}

impl ChunkQueue {
    /// A queue over `total` tasks scheduled for `workers` workers.
    ///
    /// Policies that can precompute their whole chunk sequence get the
    /// lock-free fixed path; the rest stay adaptive.
    pub fn new(policy: Box<dyn ChunkPolicy + Send>, total: usize, workers: usize) -> Self {
        let workers = workers.max(1);
        let mode = match policy.fixed_schedule(total, workers) {
            Some(sizes) => {
                let mut bounds = Vec::with_capacity(sizes.len() + 1);
                bounds.push(0usize);
                let mut acc = 0usize;
                for k in sizes {
                    acc += k;
                    bounds.push(acc);
                }
                debug_assert_eq!(acc, total, "fixed schedule must cover the iteration space");
                Mode::Fixed { bounds, cursor: AtomicUsize::new(0) }
            }
            None => {
                let mut policy = policy;
                assert!(
                    total < u32::MAX as usize,
                    "adaptive epoch descriptor packs task indices into 32 bits"
                );
                // Publish the first decision up front so claim never
                // needs the lock to get started.
                let plan = if total == 0 {
                    pack_plan(0, 0)
                } else {
                    let k = policy.next_chunk(0, total, workers).clamp(1, total);
                    pack_plan(epoch_span(k, total, workers).min(total), k)
                };
                Mode::Adaptive(AdaptiveMode {
                    cursor: Padded(AtomicUsize::new(0)),
                    plan: Padded(AtomicU64::new(plan)),
                    policy: Mutex::new(policy),
                })
            }
        };
        ChunkQueue { mode, chunks: AtomicU64::new(0), total, workers }
    }

    /// Claims the next chunk, or `None` when the iteration space is
    /// exhausted. Each task index is handed out exactly once across
    /// all claimants.
    pub fn claim(&self) -> Option<Chunk> {
        let chunk = match &self.mode {
            Mode::Fixed { bounds, cursor } => {
                // Check-then-claim: the cursor never advances past the
                // chunk count, so a post-exhaustion claim (a stale
                // steal attempt) is a single load — no `fetch_add`
                // hammering the contended cache line, and no unbounded
                // cursor growth.
                let n_chunks = bounds.len() - 1;
                let mut i = cursor.load(Ordering::Relaxed);
                loop {
                    if i >= n_chunks {
                        return None;
                    }
                    match cursor.compare_exchange_weak(
                        i,
                        i + 1,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => break,
                        Err(seen) => i = seen,
                    }
                }
                Chunk { start: bounds[i], len: bounds[i + 1] - bounds[i] }
            }
            Mode::Adaptive(ad) => {
                // Pure-load precheck: a claim on an exhausted queue (a
                // stale steal attempt, or a claim storm after the run)
                // never writes the contended cursor line.
                if ad.cursor.0.load(Ordering::Relaxed) >= self.total {
                    return None;
                }
                let (end, k) = unpack_plan(ad.plan.0.load(Ordering::Acquire));
                let start = ad.cursor.0.fetch_add(k, Ordering::Relaxed);
                if start >= self.total {
                    // Lost the exhaustion race by a whisker; the
                    // precheck stops any further RMWs from this point.
                    return None;
                }
                let len = k.min(self.total - start);
                // Crossing the published epoch end is the one place a
                // critical section exists — and it is a `try_lock`:
                // the winner recomputes the size at the new frontier,
                // everyone else claims on at the stale size.
                if start + len >= end {
                    self.advance_epoch(ad);
                }
                Chunk { start, len }
            }
        };
        self.chunks.fetch_add(1, Ordering::Relaxed);
        Some(chunk)
    }

    /// Claims the next chunk whose task indices all lie strictly below
    /// `limit` — the streamed-edge consumer path, where `limit` is the
    /// minimum producer watermark read fresh at every claim.
    ///
    /// * **Fixed** queues never split a precomputed chunk: the claim
    ///   blocks until the watermark covers the whole next chunk, which
    ///   keeps the handed-out chunk sequence identical to the unbounded
    ///   path (the differential suites replay it bitwise).
    /// * **Adaptive** queues truncate the claimed length at the limit —
    ///   the descriptor's size decision is a target, not a contract, so
    ///   a shorter chunk is indistinguishable from a policy decision.
    ///
    /// `limit >= total` delegates to [`Self::claim`], so whole-op
    /// (non-streamed) consumers pay nothing for the shared call site.
    pub fn claim_bounded(&self, limit: usize) -> BoundedClaim {
        if limit >= self.total {
            return match self.claim() {
                Some(c) => BoundedClaim::Chunk(c),
                None => BoundedClaim::Exhausted,
            };
        }
        let chunk = match &self.mode {
            Mode::Fixed { bounds, cursor } => {
                let n_chunks = bounds.len() - 1;
                let mut i = cursor.load(Ordering::Relaxed);
                loop {
                    if i >= n_chunks {
                        return BoundedClaim::Exhausted;
                    }
                    if bounds[i + 1] > limit {
                        // The next precomputed chunk reaches past the
                        // watermark; claiming it would read cells the
                        // producer has not committed.
                        return BoundedClaim::Blocked;
                    }
                    match cursor.compare_exchange_weak(
                        i,
                        i + 1,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => break,
                        Err(seen) => i = seen,
                    }
                }
                Chunk { start: bounds[i], len: bounds[i + 1] - bounds[i] }
            }
            Mode::Adaptive(ad) => {
                // The unbounded path's `fetch_add` would overshoot the
                // limit, handing out tasks above the watermark — so the
                // bounded path claims by CAS with the length truncated
                // at the limit. Slightly more contention than
                // `fetch_add`, paid only by streamed consumers whose
                // producer is still running.
                let (end, k) = unpack_plan(ad.plan.0.load(Ordering::Acquire));
                let mut start = ad.cursor.0.load(Ordering::Relaxed);
                let len = loop {
                    if start >= self.total {
                        return BoundedClaim::Exhausted;
                    }
                    if start >= limit {
                        return BoundedClaim::Blocked;
                    }
                    let len = k.min(self.total - start).min(limit - start).max(1);
                    match ad.cursor.0.compare_exchange_weak(
                        start,
                        start + len,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => break len,
                        Err(seen) => start = seen,
                    }
                };
                if start + len >= end {
                    self.advance_epoch(ad);
                }
                Chunk { start, len }
            }
        };
        self.chunks.fetch_add(1, Ordering::Relaxed);
        BoundedClaim::Chunk(chunk)
    }

    /// Whether an unclaimed chunk exists entirely below `limit` — the
    /// watermark-aware variant of [`Self::has_more`], used by crash
    /// recovery to tell *reachable* work (worth re-running an op for)
    /// from work still gated behind an unpublished watermark (re-tokened
    /// by the producer's next publication, so waking for it would
    /// busy-spin). Racy in the same benign direction as `has_more`.
    pub fn has_more_below(&self, limit: usize) -> bool {
        match &self.mode {
            Mode::Fixed { bounds, cursor } => {
                let i = cursor.load(Ordering::Relaxed);
                i + 1 < bounds.len() && bounds[i + 1] <= limit.min(self.total)
            }
            Mode::Adaptive(ad) => {
                let c = ad.cursor.0.load(Ordering::Relaxed);
                c < self.total && c < limit
            }
        }
    }

    /// Publishes the next epoch descriptor: chunk size recomputed by
    /// the policy at the current claim frontier, valid for roughly one
    /// chunk per worker. Non-blocking — if another worker is already
    /// publishing (or a feedback merge holds the lock), this claimant
    /// simply keeps the stale size for one more chunk.
    fn advance_epoch(&self, ad: &AdaptiveMode) {
        let Ok(mut policy) = ad.policy.try_lock() else {
            return;
        };
        let next = ad.cursor.0.load(Ordering::Relaxed);
        if next >= self.total {
            return;
        }
        // Another claimant may have published past the frontier while
        // we raced for the lock; never move the descriptor backwards.
        let (end, _) = unpack_plan(ad.plan.0.load(Ordering::Relaxed));
        if end > next {
            return;
        }
        let remaining = self.total - next;
        let k = policy.next_chunk(next, remaining, self.workers).clamp(1, remaining);
        let new_end = next.saturating_add(epoch_span(k, remaining, self.workers)).min(self.total);
        ad.plan.0.store(pack_plan(new_end, k), Ordering::Release);
    }

    /// Feeds one completed chunk's task-time statistics back to the
    /// adaptive policy — the worker's locally accumulated µ/σ merged
    /// in one short critical section. No-op (and no lock) for fixed
    /// schedules.
    pub fn observe_chunk(&self, start: usize, len: usize, stats: &OnlineStats) {
        if let Mode::Adaptive(ad) = &self.mode {
            let mut policy = ad.policy.lock().expect("chunk queue poisoned");
            policy.observe_chunk(start, len, stats);
        }
    }

    /// Non-blocking feedback for the claim hot path: drains a worker's
    /// locally buffered per-chunk statistics into the policy only if
    /// the lock is free right now. On an oversubscribed host a
    /// blocking `lock()` per chunk means a futex sleep whenever the
    /// holder is descheduled — worth microseconds per chunk, which
    /// dwarfs tiny tasks. Buffering keeps the feedback *exact* (the
    /// same `observe_chunk` calls, merely time-shifted); feedback that
    /// never wins the lock before the queue drains is dropped, which
    /// is sound because the policy only uses it to size this op's
    /// remaining chunks. Clears the buffer without locking for fixed
    /// schedules (which ignore feedback entirely).
    pub fn try_observe_pending(&self, pending: &mut Vec<(usize, usize, OnlineStats)>) {
        if pending.is_empty() {
            return;
        }
        match &self.mode {
            Mode::Adaptive(ad) => {
                if let Ok(mut policy) = ad.policy.try_lock() {
                    for (start, len, stats) in pending.drain(..) {
                        policy.observe_chunk(start, len, &stats);
                    }
                }
            }
            Mode::Fixed { .. } => pending.clear(),
        }
    }

    /// Whether unclaimed chunks probably remain (a racy hint: workers
    /// use it to decide if an operation is worth advertising to
    /// thieves; exactness is guaranteed by [`Self::claim`], not here).
    /// One direction *is* exact: once the final chunk has been handed
    /// out, this never reports `true` again — both paths derive the
    /// hint from the same atomic cursor a claim advances, so the hint
    /// flips in the very `fetch_add`/CAS that hands the final chunk
    /// out, with no window for a stale `true`.
    pub fn has_more(&self) -> bool {
        match &self.mode {
            Mode::Fixed { bounds, cursor } => cursor.load(Ordering::Relaxed) + 1 < bounds.len(),
            Mode::Adaptive(ad) => ad.cursor.0.load(Ordering::Relaxed) < self.total,
        }
    }

    /// The fixed-mode claim cursor (number of claims that advanced
    /// it), or `None` for adaptive queues. Exposed so stress tests can
    /// assert that post-exhaustion claim storms do not grow the
    /// cursor beyond the chunk count.
    pub fn fixed_cursor(&self) -> Option<usize> {
        match &self.mode {
            Mode::Fixed { cursor, .. } => Some(cursor.load(Ordering::Relaxed)),
            Mode::Adaptive(_) => None,
        }
    }

    /// Whether this queue resizes chunks from live observations
    /// (TAPER). Adaptive queues want per-chunk timing feedback through
    /// [`Self::observe_chunk`]; fixed-schedule queues ignore it. Both
    /// kinds claim lock-free — the distinction is about feedback, not
    /// about locking.
    pub fn is_adaptive(&self) -> bool {
        matches!(self.mode, Mode::Adaptive(_))
    }

    /// Chunks handed out so far.
    pub fn chunks_claimed(&self) -> u64 {
        self.chunks.load(Ordering::Relaxed)
    }

    /// Tasks not yet handed out (racy snapshot: claims in flight may
    /// already cover some of them). The allocation equalizer uses it
    /// as the live `N` of a finish estimate.
    pub fn remaining(&self) -> usize {
        match &self.mode {
            Mode::Fixed { bounds, cursor } => {
                let i = cursor.load(Ordering::Relaxed).min(bounds.len() - 1);
                self.total - bounds[i]
            }
            Mode::Adaptive(ad) => self.total.saturating_sub(ad.cursor.0.load(Ordering::Relaxed)),
        }
    }

    /// A snapshot of the µ/σ the adaptive policy has sampled so far —
    /// the *live* statistics the §4.1.2 equalizer estimates finishing
    /// times from. Non-blocking (`try_lock`): returns `None` when the
    /// policy is mid-update or keeps no statistics (fixed schedules),
    /// in which case the caller falls back to task counts.
    pub fn sampled_stats(&self) -> Option<OnlineStats> {
        match &self.mode {
            Mode::Adaptive(ad) => ad.policy.try_lock().ok().and_then(|p| p.live_stats()),
            Mode::Fixed { .. } => None,
        }
    }

    /// Total tasks in the operation.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Worker count the schedule was sized for (mirrors
    /// [`DistQueue::workers`](super::dist::DistQueue::workers), so
    /// diagnostics can treat both queue kinds uniformly).
    pub fn workers(&self) -> usize {
        self.workers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunking::PolicyKind;
    use std::sync::Arc;

    fn drain_concurrently(kind: PolicyKind, total: usize, workers: usize) -> Vec<usize> {
        let q = Arc::new(ChunkQueue::new(kind.instantiate(total), total, workers));
        let mut handles = Vec::new();
        for _ in 0..workers {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                let mut seen = Vec::new();
                while let Some(c) = q.claim() {
                    let mut stats = OnlineStats::new();
                    for i in c.start..c.start + c.len {
                        seen.push(i);
                        stats.observe(1.0);
                    }
                    q.observe_chunk(c.start, c.len, &stats);
                }
                seen
            }));
        }
        let mut all: Vec<usize> =
            handles.into_iter().flat_map(|h| h.join().expect("worker panicked")).collect();
        all.sort_unstable();
        all
    }

    #[test]
    fn every_task_claimed_exactly_once() {
        for kind in [
            PolicyKind::SelfSched,
            PolicyKind::Gss,
            PolicyKind::Factoring,
            PolicyKind::Taper,
            PolicyKind::TaperCostFn,
        ] {
            let claimed = drain_concurrently(kind, 1000, 4);
            assert_eq!(claimed, (0..1000).collect::<Vec<_>>(), "{}", kind.name());
        }
    }

    #[test]
    fn empty_queue_yields_nothing() {
        let q = ChunkQueue::new(PolicyKind::Taper.instantiate(0), 0, 2);
        assert_eq!(q.claim(), None);
        assert_eq!(q.chunks_claimed(), 0);
        assert!(!q.has_more());
    }

    #[test]
    fn chunk_count_bounded_by_tasks() {
        let q = ChunkQueue::new(PolicyKind::Gss.instantiate(64), 64, 4);
        let mut n = 0;
        while q.claim().is_some() {
            n += 1;
        }
        assert!(n <= 64);
        assert_eq!(q.chunks_claimed(), n);
    }

    #[test]
    fn adaptive_detection_per_policy() {
        for kind in [PolicyKind::SelfSched, PolicyKind::Gss, PolicyKind::Factoring] {
            let q = ChunkQueue::new(kind.instantiate(100), 100, 4);
            assert!(!q.is_adaptive(), "{}", kind.name());
        }
        for kind in [PolicyKind::Taper, PolicyKind::TaperCostFn] {
            let q = ChunkQueue::new(kind.instantiate(100), 100, 4);
            assert!(q.is_adaptive(), "{}", kind.name());
        }
    }

    #[test]
    fn adaptive_epochs_span_one_chunk_per_worker() {
        // Single claimant, 4 workers: the descriptor's decision serves
        // ~4 chunks, so runs of equal chunk sizes appear in groups and
        // the whole space is still covered tightly.
        let q = ChunkQueue::new(PolicyKind::Taper.instantiate(1000), 1000, 4);
        let mut next = 0usize;
        let mut sizes = Vec::new();
        while let Some(c) = q.claim() {
            assert_eq!(c.start, next, "claims must be contiguous");
            next += c.len;
            sizes.push(c.len);
        }
        assert_eq!(next, 1000);
        assert!(sizes.len() > 4, "1000 tasks over 4 workers must take many chunks");
        // TAPER with no feedback decays like GSS: sizes never grow
        // within the drain (each epoch recomputes at a smaller
        // remaining count).
        assert!(sizes.windows(2).all(|w| w[1] <= w[0]), "sizes grew: {sizes:?}");
    }

    #[test]
    fn adaptive_rollover_republish_is_monotone() {
        // Force many rollovers with tiny chunks (self-sched-like TAPER
        // tail) and verify the descriptor never hands out overlapping
        // or out-of-range chunks even when every claim crosses an
        // epoch boundary (workers = 1 makes every chunk its own epoch).
        let q = ChunkQueue::new(PolicyKind::TaperCostFn.instantiate(257), 257, 1);
        let mut covered = vec![false; 257];
        while let Some(c) = q.claim() {
            assert!(c.start + c.len <= 257, "chunk out of range: {c:?}");
            for slot in &mut covered[c.start..c.start + c.len] {
                assert!(!*slot, "task handed out twice");
                *slot = true;
            }
            let mut stats = OnlineStats::new();
            for i in 0..c.len {
                stats.observe(1.0 + (i % 3) as f64);
            }
            q.observe_chunk(c.start, c.len, &stats);
        }
        assert!(covered.iter().all(|&b| b), "iteration space not covered");
    }

    #[test]
    fn fixed_path_replays_the_policy_chunk_sequence() {
        // The lock-free cursor must hand out exactly the chunks the
        // policy would have chosen one scheduling event at a time.
        for kind in [PolicyKind::SelfSched, PolicyKind::Gss, PolicyKind::Factoring] {
            let q = ChunkQueue::new(kind.instantiate(500), 500, 8);
            let mut reference = kind.instantiate(500);
            let mut remaining = 500usize;
            let mut next = 0usize;
            while let Some(c) = q.claim() {
                let k = reference.next_chunk(next, remaining, 8).clamp(1, remaining);
                assert_eq!(c, Chunk { start: next, len: k }, "{}", kind.name());
                next += k;
                remaining -= k;
            }
            assert_eq!(remaining, 0, "{}", kind.name());
        }
    }

    #[test]
    fn exhausted_has_more_is_false_and_claims_stay_none() {
        let q = ChunkQueue::new(PolicyKind::SelfSched.instantiate(3), 3, 2);
        while q.claim().is_some() {}
        assert!(!q.has_more());
        // Extra claims after exhaustion (stale steal attempts) are
        // harmless.
        for _ in 0..10 {
            assert_eq!(q.claim(), None);
        }
    }

    #[test]
    fn fixed_cursor_capped_at_chunk_count() {
        let q = ChunkQueue::new(PolicyKind::SelfSched.instantiate(5), 5, 2);
        let mut n = 0usize;
        while q.claim().is_some() {
            n += 1;
        }
        assert_eq!(n, 5);
        assert_eq!(q.fixed_cursor(), Some(5));
        // Post-exhaustion claims must not advance the cursor at all.
        for _ in 0..1000 {
            assert_eq!(q.claim(), None);
        }
        assert_eq!(q.fixed_cursor(), Some(5), "stale claims grew the cursor");
        // Adaptive queues have no fixed cursor.
        assert_eq!(ChunkQueue::new(PolicyKind::Taper.instantiate(5), 5, 2).fixed_cursor(), None);
    }

    #[test]
    fn bounded_claims_respect_limit_fixed() {
        // Self-scheduling precomputes unit chunks, so the bounded path
        // must hand out exactly `limit` tasks and then report Blocked
        // (not Exhausted) until the limit rises.
        let q = ChunkQueue::new(PolicyKind::SelfSched.instantiate(8), 8, 2);
        assert_eq!(q.claim_bounded(0), BoundedClaim::Blocked);
        assert!(!q.has_more_below(0));
        assert!(q.has_more_below(1));
        let mut covered = 0usize;
        loop {
            match q.claim_bounded(4) {
                BoundedClaim::Chunk(c) => {
                    assert!(c.start + c.len <= 4, "chunk past limit: {c:?}");
                    covered += c.len;
                }
                BoundedClaim::Blocked => break,
                BoundedClaim::Exhausted => panic!("exhausted with tasks above the limit"),
            }
        }
        assert_eq!(covered, 4);
        loop {
            match q.claim_bounded(usize::MAX) {
                BoundedClaim::Chunk(c) => covered += c.len,
                BoundedClaim::Exhausted => break,
                BoundedClaim::Blocked => panic!("blocked with the limit fully raised"),
            }
        }
        assert_eq!(covered, 8);
        assert_eq!(q.claim_bounded(usize::MAX), BoundedClaim::Exhausted);
    }

    #[test]
    fn bounded_claims_truncate_adaptive() {
        // TAPER with one worker wants `remaining/p = 100` up front; the
        // bounded path must truncate every claim at the watermark
        // instead of overshooting it.
        let q = ChunkQueue::new(PolicyKind::Taper.instantiate(100), 100, 1);
        let mut covered = 0usize;
        loop {
            match q.claim_bounded(10) {
                BoundedClaim::Chunk(c) => {
                    assert!(c.start + c.len <= 10, "chunk past limit: {c:?}");
                    covered += c.len;
                }
                BoundedClaim::Blocked => break,
                BoundedClaim::Exhausted => panic!("exhausted with tasks above the limit"),
            }
        }
        assert_eq!(covered, 10, "everything below the watermark must be claimable");
        assert!(!q.has_more_below(10));
        assert!(q.has_more_below(11));
        loop {
            match q.claim_bounded(usize::MAX) {
                BoundedClaim::Chunk(c) => covered += c.len,
                BoundedClaim::Exhausted => break,
                BoundedClaim::Blocked => panic!("blocked with the limit fully raised"),
            }
        }
        assert_eq!(covered, 100);
    }

    #[test]
    fn adaptive_has_more_false_once_final_chunk_handed_out() {
        // Single-threaded version of the invariant (the concurrent
        // storm lives in tests/sched_stress.rs): after each claim,
        // `has_more` must agree with whether the claim drained the
        // queue — the hint is derived from the same cursor the claim's
        // `fetch_add` advances, so there is no window where the final
        // chunk is out but the hint still says more work exists.
        let q = ChunkQueue::new(PolicyKind::Taper.instantiate(100), 100, 4);
        let mut handed = 0usize;
        while let Some(c) = q.claim() {
            handed += c.len;
            assert_eq!(q.has_more(), handed < 100, "hint diverges at {handed}/100");
        }
        assert!(!q.has_more());
    }
}
