//! Machine-topology awareness for the worker pool.
//!
//! The paper's runtime exists because moving work between processors
//! has a cost (§4.1.1's distributed TAPER trades balance against
//! locality explicitly). On a modern multi-socket host the same cost
//! hierarchy shows up as SMT sibling < same NUMA node < remote node,
//! so the pool's work stealing and the dist-TAPER home placement
//! should see it. This module supplies that view:
//!
//! * [`CpuTopology`] — the logical-CPU → core/package/NUMA-node map,
//!   probed from Linux sysfs (`/sys/devices/system/cpu/*/topology`,
//!   `/sys/devices/system/node/node*/cpulist`) with a deterministic
//!   [synthetic](CpuTopology::synthetic) fallback for tests and
//!   non-Linux hosts;
//! * [`WorkerTopo`] — worker → CPU placement (distinct physical cores
//!   first, round-robin across NUMA nodes, SMT siblings last) and a
//!   precomputed per-worker *steal schedule*: every other worker
//!   ordered SMT sibling → same node → remote, with the distance class
//!   attached so the pool can batch remote steals. The schedule is a
//!   static permutation computed once per run, keeping the steal hot
//!   path branch-light;
//! * [`pin_current_thread`] — optional worker→CPU pinning through a
//!   direct `sched_setaffinity` call (the symbol is already linked via
//!   std's libc; no new dependency). Pinning failures are reported,
//!   never fatal: a 1-core host running a synthetic 8-CPU topology
//!   simply leaves most workers unpinned.
//!
//! Everything here is a pure function of the topology description and
//! the worker count, so steal schedules are deterministic and
//! unit-testable on synthetic machines regardless of the host.

use std::fmt;
use std::path::Path;

/// Where a [`CpuTopology`] came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologySource {
    /// Probed from Linux sysfs.
    Sysfs,
    /// Constructed deterministically ([`CpuTopology::synthetic`] or
    /// the probe fallback).
    Synthetic,
}

/// One logical CPU's place in the machine hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuInfo {
    /// Logical CPU id (the `N` of `cpuN`).
    pub cpu: usize,
    /// Core id, unique only within a package (sysfs semantics).
    pub core: usize,
    /// Physical package (socket) id.
    pub package: usize,
    /// NUMA node id (0 on single-node machines).
    pub node: usize,
}

/// The machine's logical-CPU layout, sorted by CPU id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CpuTopology {
    /// One entry per logical CPU.
    pub cpus: Vec<CpuInfo>,
    /// Probe provenance.
    pub source: TopologySource,
}

/// Which topology the threaded backend schedules against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TopologyMode {
    /// Probe the host (sysfs on Linux), falling back to a flat
    /// single-node synthetic layout sized by available parallelism.
    #[default]
    Auto,
    /// A deterministic synthetic machine — used by tests to exercise
    /// hierarchical stealing and NUMA placement on any host.
    Synthetic {
        /// NUMA node (= package) count.
        nodes: usize,
        /// Physical cores per node.
        cores_per_node: usize,
        /// Hardware threads per core.
        smt: usize,
    },
}

impl TopologyMode {
    /// Resolves the mode to a concrete topology.
    pub fn resolve(&self) -> CpuTopology {
        match *self {
            TopologyMode::Auto => CpuTopology::probe(),
            TopologyMode::Synthetic { nodes, cores_per_node, smt } => {
                CpuTopology::synthetic(nodes, cores_per_node, smt)
            }
        }
    }
}

/// How far a steal reaches through the machine hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum StealDistance {
    /// Victim shares the thief's physical core (SMT sibling) — the
    /// stolen op's data may still be in a shared L1/L2.
    Sibling,
    /// Victim is on the thief's NUMA node (or package), different
    /// core.
    Node,
    /// Victim is across a NUMA/package boundary.
    Remote,
}

impl StealDistance {
    /// Numeric distance class: 0 sibling, 1 same-node, 2 remote.
    pub fn class(self) -> u64 {
        match self {
            StealDistance::Sibling => 0,
            StealDistance::Node => 1,
            StealDistance::Remote => 2,
        }
    }
}

/// The order a worker visits other workers' deques when stealing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StealOrder {
    /// Nearest first: SMT sibling, then same node, then remote,
    /// ring-distance tie-broken (deterministic).
    #[default]
    Hierarchical,
    /// Plain ring order `(id+1)%n, (id+2)%n, …` — the pre-topology
    /// baseline, kept for A/B tests and benchmarks.
    Ring,
}

/// One precomputed steal target: a victim and how far away it is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StealTarget {
    /// The victim worker id.
    pub victim: usize,
    /// Hierarchy distance from the thief to the victim.
    pub distance: StealDistance,
}

/// A compact, comparable description of a topology — recorded by
/// benchmark runs so baselines from differently shaped machines are
/// never conflated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopologyFingerprint {
    /// `"sysfs"` or `"synthetic"`.
    pub source: &'static str,
    /// Distinct NUMA nodes.
    pub nodes: usize,
    /// Distinct packages (sockets).
    pub packages: usize,
    /// Distinct physical cores.
    pub cores: usize,
    /// Logical CPUs.
    pub cpus: usize,
}

impl fmt::Display for TopologyFingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} node(s) × {} core(s), {} cpu(s)",
            self.source, self.nodes, self.cores, self.cpus
        )
    }
}

/// Parses a sysfs cpulist like `"0-3,8,10-11"` into CPU ids.
fn parse_cpulist(text: &str) -> Vec<usize> {
    let mut out = Vec::new();
    for part in text.trim().split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        if let Some((a, b)) = part.split_once('-') {
            if let (Ok(a), Ok(b)) = (a.trim().parse::<usize>(), b.trim().parse::<usize>()) {
                out.extend(a..=b);
            }
        } else if let Ok(v) = part.parse::<usize>() {
            out.push(v);
        }
    }
    out
}

fn read_usize(path: &Path) -> Option<usize> {
    std::fs::read_to_string(path).ok()?.trim().parse().ok()
}

impl CpuTopology {
    /// Probes the host's topology. On Linux this reads sysfs; on other
    /// platforms, or when sysfs is unreadable, it falls back to a flat
    /// synthetic layout with one single-thread core per unit of
    /// available parallelism.
    pub fn probe() -> Self {
        if cfg!(target_os = "linux") {
            if let Some(t) = Self::probe_sysfs(
                Path::new("/sys/devices/system/cpu"),
                Path::new("/sys/devices/system/node"),
            ) {
                return t;
            }
        }
        let n = std::thread::available_parallelism().map(|x| x.get()).unwrap_or(1);
        CpuTopology::synthetic(1, n, 1)
    }

    /// Probes a sysfs-shaped tree rooted at `cpu_root` (entries
    /// `cpuN/topology/{core_id,physical_package_id}`) and `node_root`
    /// (entries `nodeN/cpulist`). Returns `None` when no CPU exposes a
    /// topology directory. Missing per-CPU files default to 0; a
    /// missing or empty node tree puts every CPU on node 0 — the probe
    /// degrades, it does not fail.
    pub fn probe_sysfs(cpu_root: &Path, node_root: &Path) -> Option<Self> {
        let mut cpus: Vec<CpuInfo> = Vec::new();
        let entries = std::fs::read_dir(cpu_root).ok()?;
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            let Some(id) = name.strip_prefix("cpu").and_then(|s| s.parse::<usize>().ok()) else {
                continue;
            };
            let topo = entry.path().join("topology");
            if !topo.is_dir() {
                continue;
            }
            let core = read_usize(&topo.join("core_id")).unwrap_or(0);
            let package = read_usize(&topo.join("physical_package_id")).unwrap_or(0);
            cpus.push(CpuInfo { cpu: id, core, package, node: 0 });
        }
        if cpus.is_empty() {
            return None;
        }
        cpus.sort_by_key(|c| c.cpu);
        if let Ok(nodes) = std::fs::read_dir(node_root) {
            for entry in nodes.flatten() {
                let name = entry.file_name();
                let name = name.to_string_lossy();
                let Some(id) = name.strip_prefix("node").and_then(|s| s.parse::<usize>().ok())
                else {
                    continue;
                };
                let Ok(list) = std::fs::read_to_string(entry.path().join("cpulist")) else {
                    continue;
                };
                for cpu in parse_cpulist(&list) {
                    if let Some(info) = cpus.iter_mut().find(|c| c.cpu == cpu) {
                        info.node = id;
                    }
                }
            }
        }
        Some(CpuTopology { cpus, source: TopologySource::Sysfs })
    }

    /// A deterministic synthetic machine: `nodes` NUMA nodes (each its
    /// own package) × `cores_per_node` physical cores × `smt` threads
    /// per core. CPU ids follow the common Linux enumeration — every
    /// core's first thread before any core's second — so synthetic and
    /// probed layouts exercise the same placement logic.
    pub fn synthetic(nodes: usize, cores_per_node: usize, smt: usize) -> Self {
        let (nodes, cores, smt) = (nodes.max(1), cores_per_node.max(1), smt.max(1));
        let mut cpus = Vec::with_capacity(nodes * cores * smt);
        for t in 0..smt {
            for n in 0..nodes {
                for c in 0..cores {
                    cpus.push(CpuInfo {
                        cpu: t * nodes * cores + n * cores + c,
                        core: c,
                        package: n,
                        node: n,
                    });
                }
            }
        }
        cpus.sort_by_key(|c| c.cpu);
        CpuTopology { cpus, source: TopologySource::Synthetic }
    }

    /// Logical CPU count.
    pub fn len(&self) -> usize {
        self.cpus.len()
    }

    /// Whether the topology holds no CPUs (never true for probed or
    /// synthetic layouts; both guarantee at least one).
    pub fn is_empty(&self) -> bool {
        self.cpus.is_empty()
    }

    fn distinct<K: Ord>(&self, key: impl Fn(&CpuInfo) -> K) -> usize {
        let mut ks: Vec<K> = self.cpus.iter().map(key).collect();
        ks.sort();
        ks.dedup();
        ks.len()
    }

    /// Distinct NUMA node count.
    pub fn node_count(&self) -> usize {
        self.distinct(|c| c.node)
    }

    /// Distinct package (socket) count.
    pub fn package_count(&self) -> usize {
        self.distinct(|c| c.package)
    }

    /// Distinct physical core count (core ids are per-package).
    pub fn core_count(&self) -> usize {
        self.distinct(|c| (c.package, c.core))
    }

    /// The compact fingerprint benchmarks record per run.
    pub fn fingerprint(&self) -> TopologyFingerprint {
        TopologyFingerprint {
            source: match self.source {
                TopologySource::Sysfs => "sysfs",
                TopologySource::Synthetic => "synthetic",
            },
            nodes: self.node_count(),
            packages: self.package_count(),
            cores: self.core_count(),
            cpus: self.len(),
        }
    }

    /// CPU placement order for workers: distinct physical cores first
    /// (one logical CPU per core, round-robin across NUMA nodes), then
    /// the cores' remaining SMT siblings in the same node-interleaved
    /// order. Worker `w` sits at position `w % cpus` of this order, so
    /// home queues (one per worker) land round-robin per node and SMT
    /// sharing only begins once every physical core is occupied.
    fn placement(&self) -> Vec<usize> {
        // Group CPUs by physical core, each group's threads in CPU-id
        // order; order the groups node-major, then interleave nodes.
        let mut cores: Vec<((usize, usize, usize), Vec<usize>)> = Vec::new();
        for info in &self.cpus {
            let key = (info.node, info.package, info.core);
            match cores.iter_mut().find(|(k, _)| *k == key) {
                Some((_, threads)) => threads.push(info.cpu),
                None => cores.push((key, vec![info.cpu])),
            }
        }
        cores.sort_by_key(|(k, _)| *k);
        // Round-robin cores across nodes: take node 0's first core,
        // node 1's first core, …, then each node's second core, ….
        let node_ids: Vec<usize> = {
            let mut ns: Vec<usize> = cores.iter().map(|((n, _, _), _)| *n).collect();
            ns.dedup();
            ns
        };
        let mut per_node: Vec<Vec<&Vec<usize>>> = node_ids
            .iter()
            .map(|&n| cores.iter().filter(|((cn, _, _), _)| *cn == n).map(|(_, t)| t).collect())
            .collect();
        let mut interleaved: Vec<&Vec<usize>> = Vec::with_capacity(cores.len());
        let mut rank = 0usize;
        while interleaved.len() < cores.len() {
            for node in per_node.iter_mut() {
                if rank < node.len() {
                    interleaved.push(node[rank]);
                }
            }
            rank += 1;
        }
        let max_smt = interleaved.iter().map(|t| t.len()).max().unwrap_or(1);
        let mut order = Vec::with_capacity(self.cpus.len());
        for t in 0..max_smt {
            for threads in &interleaved {
                if let Some(&cpu) = threads.get(t) {
                    order.push(cpu);
                }
            }
        }
        order
    }
}

/// The worker pool's static view of the machine: per-worker CPU/node
/// placement and the precomputed steal schedules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerTopo {
    /// Worker → assigned logical CPU (pin target; wraps when there
    /// are more workers than CPUs).
    pub cpu_of_worker: Vec<usize>,
    /// Worker → NUMA node of its assigned CPU.
    pub node_of_worker: Vec<usize>,
    /// Worker → the other workers in steal order, distance attached.
    steal_plan: Vec<Vec<StealTarget>>,
    fingerprint: TopologyFingerprint,
}

impl WorkerTopo {
    /// Builds the placement and steal schedules for `workers` workers
    /// on `topology` under `order`. Pure and deterministic: the same
    /// inputs always produce the same schedules.
    pub fn new(topology: &CpuTopology, workers: usize, order: StealOrder) -> Self {
        let workers = workers.max(1);
        let placement = topology.placement();
        let info_of = |cpu: usize| -> &CpuInfo {
            topology.cpus.iter().find(|c| c.cpu == cpu).expect("placement yields known cpus")
        };
        let cpu_of_worker: Vec<usize> =
            (0..workers).map(|w| placement[w % placement.len()]).collect();
        let node_of_worker: Vec<usize> =
            cpu_of_worker.iter().map(|&cpu| info_of(cpu).node).collect();
        let distance = |a: usize, b: usize| -> StealDistance {
            let (ia, ib) = (info_of(cpu_of_worker[a]), info_of(cpu_of_worker[b]));
            if ia.package == ib.package && ia.core == ib.core {
                StealDistance::Sibling
            } else if ia.node == ib.node || ia.package == ib.package {
                StealDistance::Node
            } else {
                StealDistance::Remote
            }
        };
        let steal_plan: Vec<Vec<StealTarget>> = (0..workers)
            .map(|w| {
                let mut targets: Vec<StealTarget> = (1..workers)
                    .map(|k| {
                        let victim = (w + k) % workers;
                        StealTarget { victim, distance: distance(w, victim) }
                    })
                    .collect();
                if order == StealOrder::Hierarchical {
                    // Stable sort: equal-distance victims keep ring
                    // order, so the schedule is a deterministic
                    // permutation with nearest victims first.
                    targets.sort_by_key(|t| t.distance);
                }
                targets
            })
            .collect();
        WorkerTopo {
            cpu_of_worker,
            node_of_worker,
            steal_plan,
            fingerprint: topology.fingerprint(),
        }
    }

    /// Worker count.
    pub fn workers(&self) -> usize {
        self.cpu_of_worker.len()
    }

    /// Worker `w`'s steal schedule: every other worker exactly once.
    pub fn steal_schedule(&self, w: usize) -> &[StealTarget] {
        &self.steal_plan[w]
    }

    /// The underlying topology's fingerprint.
    pub fn fingerprint(&self) -> TopologyFingerprint {
        self.fingerprint
    }
}

/// Pins the calling thread to one logical CPU via `sched_setaffinity`,
/// returning whether the kernel accepted it. The libc symbol is
/// declared directly (std already links libc on Linux), so this adds
/// no dependency; on other platforms, or for CPU ids past the mask
/// width, it returns `false` and the caller runs unpinned.
pub fn pin_current_thread(cpu: usize) -> bool {
    #[cfg(target_os = "linux")]
    {
        // A 1024-bit mask, the size of glibc's cpu_set_t.
        const WORDS: usize = 1024 / 64;
        if cpu >= WORDS * 64 {
            return false;
        }
        let mut mask = [0u64; WORDS];
        mask[cpu / 64] |= 1u64 << (cpu % 64);
        extern "C" {
            fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u64) -> i32;
        }
        // pid 0 = the calling thread.
        unsafe { sched_setaffinity(0, WORDS * 8, mask.as_ptr()) == 0 }
    }
    #[cfg(not(target_os = "linux"))]
    {
        let _ = cpu;
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    /// Builds a fixture sysfs tree under a unique temp dir:
    /// `cpus = [(cpu, core, package)]`, `nodes = [(node, cpulist)]`.
    fn fixture(name: &str, cpus: &[(usize, usize, usize)], nodes: &[(usize, &str)]) -> PathBuf {
        let root =
            std::env::temp_dir().join(format!("orchestra-topo-{}-{}", name, std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        for &(cpu, core, package) in cpus {
            let topo = root.join(format!("cpu/cpu{cpu}/topology"));
            std::fs::create_dir_all(&topo).expect("fixture dir");
            std::fs::write(topo.join("core_id"), format!("{core}\n")).expect("fixture file");
            std::fs::write(topo.join("physical_package_id"), format!("{package}\n"))
                .expect("fixture file");
        }
        for &(node, list) in nodes {
            let dir = root.join(format!("node/node{node}"));
            std::fs::create_dir_all(&dir).expect("fixture dir");
            std::fs::write(dir.join("cpulist"), format!("{list}\n")).expect("fixture file");
        }
        root
    }

    fn probe_fixture(root: &Path) -> CpuTopology {
        CpuTopology::probe_sysfs(&root.join("cpu"), &root.join("node"))
            .expect("fixture probes successfully")
    }

    fn assert_schedules_are_permutations(topo: &WorkerTopo) {
        let n = topo.workers();
        for w in 0..n {
            let mut victims: Vec<usize> = topo.steal_schedule(w).iter().map(|t| t.victim).collect();
            victims.sort_unstable();
            let expected: Vec<usize> = (0..n).filter(|&v| v != w).collect();
            assert_eq!(victims, expected, "worker {w}: schedule not a permutation");
        }
    }

    #[test]
    fn probes_single_core_fixture() {
        let root = fixture("single", &[(0, 0, 0)], &[(0, "0")]);
        let t = probe_fixture(&root);
        assert_eq!(t.len(), 1);
        assert_eq!(t.source, TopologySource::Sysfs);
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.core_count(), 1);
        for workers in [1, 2, 4] {
            let wt = WorkerTopo::new(&t, workers, StealOrder::Hierarchical);
            assert_schedules_are_permutations(&wt);
            // Everyone shares cpu 0: all steals are sibling-distance.
            for w in 0..workers {
                assert!(wt.steal_schedule(w).iter().all(|s| s.distance == StealDistance::Sibling));
            }
        }
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn probes_smt_pair_fixture() {
        // One physical core, two hardware threads.
        let root = fixture("smt", &[(0, 0, 0), (1, 0, 0)], &[(0, "0-1")]);
        let t = probe_fixture(&root);
        assert_eq!(t.len(), 2);
        assert_eq!(t.core_count(), 1);
        assert_eq!(t.node_count(), 1);
        let wt = WorkerTopo::new(&t, 2, StealOrder::Hierarchical);
        assert_schedules_are_permutations(&wt);
        assert_eq!(wt.steal_schedule(0)[0].distance, StealDistance::Sibling);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn probes_two_socket_fixture() {
        // 2 sockets × 2 cores, no SMT; nodes mirror sockets.
        let root = fixture(
            "dual",
            &[(0, 0, 0), (1, 1, 0), (2, 0, 1), (3, 1, 1)],
            &[(0, "0-1"), (1, "2-3")],
        );
        let t = probe_fixture(&root);
        assert_eq!(t.len(), 4);
        assert_eq!(t.node_count(), 2);
        assert_eq!(t.package_count(), 2);
        assert_eq!(t.core_count(), 4);
        let wt = WorkerTopo::new(&t, 4, StealOrder::Hierarchical);
        assert_schedules_are_permutations(&wt);
        // Placement round-robins nodes: workers 0,2 on node 0 and
        // workers 1,3 on node 1.
        assert_eq!(wt.node_of_worker, vec![0, 1, 0, 1]);
        // Worker 0 steals its node-mate (worker 2) before the remote
        // workers 1 and 3.
        let sched: Vec<(usize, StealDistance)> =
            wt.steal_schedule(0).iter().map(|s| (s.victim, s.distance)).collect();
        assert_eq!(
            sched,
            vec![(2, StealDistance::Node), (1, StealDistance::Remote), (3, StealDistance::Remote)]
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn probes_asymmetric_fixture_without_node_tree() {
        // 3 CPUs: socket 0 has an SMT pair, socket 1 a single core; no
        // node directory at all — every CPU must land on node 0 and
        // the package boundary still separates Node from Remote? No:
        // same node (0) everywhere, but different packages stay
        // non-sibling.
        let root = fixture("asym", &[(0, 0, 0), (1, 0, 0), (2, 0, 1)], &[]);
        let t = probe_fixture(&root);
        assert_eq!(t.len(), 3);
        assert_eq!(t.node_count(), 1, "missing node tree defaults to node 0");
        assert_eq!(t.package_count(), 2);
        assert_eq!(t.core_count(), 2);
        let wt = WorkerTopo::new(&t, 3, StealOrder::Hierarchical);
        assert_schedules_are_permutations(&wt);
        // Distinct cores first: cpu0 (pkg0/core0), cpu2 (pkg1/core0),
        // then cpu0's sibling cpu1.
        assert_eq!(wt.cpu_of_worker, vec![0, 2, 1]);
        // Worker 0 (cpu0) steals its SMT sibling (worker 2 on cpu1)
        // before the same-node worker 1 on the other package.
        assert_eq!(wt.steal_schedule(0)[0].victim, 2);
        assert_eq!(wt.steal_schedule(0)[0].distance, StealDistance::Sibling);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn synthetic_layouts_are_deterministic_permutations() {
        for (nodes, cores, smt) in [(1, 1, 1), (1, 4, 2), (2, 2, 1), (2, 4, 2), (4, 2, 2)] {
            let t = CpuTopology::synthetic(nodes, cores, smt);
            assert_eq!(t.len(), nodes * cores * smt);
            assert_eq!(t.node_count(), nodes);
            assert_eq!(t.core_count(), nodes * cores);
            for workers in [1, 2, 3, nodes * cores * smt, nodes * cores * smt + 3] {
                let a = WorkerTopo::new(&t, workers, StealOrder::Hierarchical);
                let b = WorkerTopo::new(&t, workers, StealOrder::Hierarchical);
                assert_eq!(a, b, "steal schedules must be deterministic");
                assert_schedules_are_permutations(&a);
                // Distances never decrease along a hierarchical
                // schedule.
                for w in 0..workers {
                    let ds: Vec<u64> =
                        a.steal_schedule(w).iter().map(|s| s.distance.class()).collect();
                    assert!(
                        ds.windows(2).all(|p| p[0] <= p[1]),
                        "worker {w}: schedule {ds:?} not sorted by distance"
                    );
                }
            }
        }
    }

    #[test]
    fn ring_order_matches_legacy_sequence() {
        let t = CpuTopology::synthetic(2, 2, 1);
        let wt = WorkerTopo::new(&t, 4, StealOrder::Ring);
        for w in 0..4 {
            let victims: Vec<usize> = wt.steal_schedule(w).iter().map(|s| s.victim).collect();
            let legacy: Vec<usize> = (1..4).map(|k| (w + k) % 4).collect();
            assert_eq!(victims, legacy, "worker {w}");
        }
        assert_schedules_are_permutations(&wt);
    }

    #[test]
    fn synthetic_placement_round_robins_nodes_and_defers_smt() {
        // 2 nodes × 2 cores × 2 threads = 8 CPUs. First four workers
        // take distinct cores alternating nodes; the next four take
        // the SMT siblings in the same alternation.
        let t = CpuTopology::synthetic(2, 2, 2);
        let wt = WorkerTopo::new(&t, 8, StealOrder::Hierarchical);
        assert_eq!(wt.node_of_worker, vec![0, 1, 0, 1, 0, 1, 0, 1]);
        // Workers 0 and 4 share a core (0's first thread + sibling).
        assert_eq!(
            wt.steal_schedule(0)[0],
            StealTarget { victim: 4, distance: StealDistance::Sibling }
        );
        // Sibling < same-node < remote partitions the other 7: the
        // SMT sibling, node 0's two other workers, then node 1's four.
        let classes: Vec<u64> = wt.steal_schedule(0).iter().map(|s| s.distance.class()).collect();
        assert_eq!(classes, vec![0, 1, 1, 2, 2, 2, 2]);
    }

    #[test]
    fn more_workers_than_cpus_wraps_placement() {
        let t = CpuTopology::synthetic(1, 2, 1);
        let wt = WorkerTopo::new(&t, 5, StealOrder::Hierarchical);
        assert_eq!(wt.workers(), 5);
        assert_schedules_are_permutations(&wt);
        // Workers 0 and 2 share cpu; stealing between them is
        // sibling-distance.
        assert_eq!(wt.cpu_of_worker[0], wt.cpu_of_worker[2]);
        let to2 =
            wt.steal_schedule(0).iter().find(|s| s.victim == 2).expect("worker 2 in schedule");
        assert_eq!(to2.distance, StealDistance::Sibling);
    }

    #[test]
    fn cpulist_parser_handles_ranges_and_noise() {
        assert_eq!(parse_cpulist("0-3,8,10-11\n"), vec![0, 1, 2, 3, 8, 10, 11]);
        assert_eq!(parse_cpulist(" 4 "), vec![4]);
        assert_eq!(parse_cpulist(""), Vec::<usize>::new());
        assert_eq!(parse_cpulist("2-2"), vec![2]);
    }

    #[test]
    fn probe_always_yields_at_least_one_cpu() {
        let t = CpuTopology::probe();
        assert!(!t.is_empty());
        let f = t.fingerprint();
        assert!(f.cpus >= 1 && f.cores >= 1 && f.nodes >= 1);
    }

    #[test]
    fn pinning_to_cpu_zero_succeeds_on_linux() {
        // CPU 0 exists on every machine; elsewhere the shim returns
        // false and the pool runs unpinned.
        let ok = pin_current_thread(0);
        assert_eq!(ok, cfg!(target_os = "linux"));
        // An absurd CPU id must fail gracefully, not crash.
        assert!(!pin_current_thread(1 << 20));
    }
}
