//! Real-thread execution backend for Delirium graphs.
//!
//! Everything else in this crate *simulates* the paper's nCUBE-2; this
//! module executes the same graphs on actual `std::thread` workers
//! over real buffers, so the simulator's predictions can be
//! differential-tested against, and demonstrated on, the hardware at
//! hand (the split-and-pipeline idea paying off on modern multicores,
//! as in Palkar & Zaharia's *Split Annotations*).
//!
//! Structure:
//! * [`queue`] — the shared claim-next-chunk queue, driven by the same
//!   [`ChunkPolicy`](crate::chunking::ChunkPolicy) objects the
//!   simulator uses (TAPER / GSS / factoring / self-scheduling);
//! * [`pool`] — the worker pool executing a dependency-counted DAG of
//!   operation instances, timing every task like
//!   [`stats`](crate::stats) does in simulation;
//! * this file — pipeline expansion (graph → op-instance DAG), the
//!   [`TaskKernel`] compute interface, and the backend entry points
//!   [`execute_threaded`] / [`execute_sequential`].

pub mod dist;
pub mod pool;
pub mod queue;
pub mod topology;

use crate::alloc::{allocate_many_with, AllocParams, OutputArena};
use crate::cancel::RunError;
use crate::checkpoint::{plan_fingerprint, CancelCtl, ResumeState, RunCtl};
use crate::chunking::PolicyKind;
use crate::executor::{costs_of_node, ExecutionReport, ExecutorOptions, NodeReport};
use crate::finish::{finish_estimate_live, HostCalibration, OpSpec};
use crate::stats::{OnlineStats, StealStats};
use dist::DistQueue;
use orchestra_delirium::{DelirGraph, GraphError, Node};
use orchestra_machine::{ProcStats, RunStats};
use pool::{OpInstance, OpQueue, Partition};
use queue::ChunkQueue;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize};
use std::time::Instant;
use topology::{TopologyFingerprint, WorkerTopo};

/// Which execution engine runs a graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutorBackend {
    /// Discrete-event simulation of the paper's nCUBE-2 (the default).
    #[default]
    Simulated,
    /// Real `std::thread` workers over real buffers on this machine.
    Threaded,
    /// Real threads under distributed TAPER (§4.1.1): per-worker home
    /// queues with epoch-token migration instead of a shared claim
    /// queue — see [`dist::DistQueue`].
    ThreadedDist,
    /// Cooperative futures executor: ops await their DAG predecessors
    /// and yield at chunk boundaries, a few driver threads multiplexing
    /// many in-flight ops — see [`crate::asynch`].
    Async,
}

/// Everything a kernel needs to compute one task.
pub struct TaskCtx<'a> {
    /// The graph node being executed.
    pub node: &'a Node,
    /// Pipeline iteration (0 for ungrouped nodes).
    pub iter: usize,
    /// Task index within the node's iteration space.
    pub task: usize,
    /// The cost (µs) the simulator would charge this task — kernels
    /// emulating a workload scale their arithmetic by this.
    pub cost_hint: f64,
    /// Finished output buffers of this op's upstream dependencies, in
    /// the plan's dependency order — slice references straight into
    /// the shared [`OutputArena`](crate::alloc::OutputArena), no copy.
    /// Empty for source ops.
    pub inputs: &'a [&'a [f64]],
}

/// How a kernel's task `t` addresses its input slices — the contract
/// the streamed data plane's per-edge watermark gates rely on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AccessPattern {
    /// Task `t` may read any cell of any input: consumers can only be
    /// released when the producer op has completed entirely (whole-op
    /// gating — always sound, never streamed). The default.
    #[default]
    WholeInput,
    /// On an equal-length input, task `t` reads only cells with index
    /// `≤ t` (element-wise / prefix access). Such edges can be
    /// *streamed*: consumer task `t` is sound to run as soon as the
    /// producer's committed-prefix watermark exceeds `t`.
    ElementWise,
}

/// A real compute kernel: the function the threaded backend runs per
/// task. Implementations MUST be pure in `(node, iter, task, inputs)` —
/// the differential test suite asserts threaded and sequential
/// execution produce bit-identical buffers. (`inputs` are themselves
/// deterministic, so consuming them preserves purity.)
pub trait TaskKernel: Sync {
    /// Computes task `ctx.task`, returning the value stored in the
    /// operation's output buffer at that index.
    fn run_task(&self, ctx: &TaskCtx<'_>) -> f64;

    /// The input-access contract of [`Self::run_task`] (see
    /// [`AccessPattern`]). Returning [`AccessPattern::ElementWise`]
    /// when the kernel reads past cell `ctx.task` of an equal-length
    /// input is undefined behaviour on the real backends — when in
    /// doubt keep the default.
    fn access(&self) -> AccessPattern {
        AccessPattern::WholeInput
    }
}

/// The default kernel: a deterministic floating-point recurrence whose
/// length is proportional to the task's simulated cost, so measured
/// task times have the same *shape* (mean, variance, spatial clusters)
/// the simulator draws.
#[derive(Debug, Clone, Copy)]
pub struct SpinKernel {
    /// Arithmetic steps per simulated µs of cost. Lower values shrink
    /// wall-clock time proportionally (tests use small scales).
    pub steps_per_us: f64,
}

impl Default for SpinKernel {
    fn default() -> Self {
        SpinKernel { steps_per_us: 60.0 }
    }
}

impl SpinKernel {
    /// A kernel doing `steps_per_us` arithmetic steps per simulated µs.
    pub fn with_scale(steps_per_us: f64) -> Self {
        SpinKernel { steps_per_us }
    }
}

impl TaskKernel for SpinKernel {
    fn run_task(&self, ctx: &TaskCtx<'_>) -> f64 {
        let steps = (ctx.cost_hint * self.steps_per_us).max(1.0) as u64;
        let mut x = (ctx.task as f64 + 1.0) * 1e-3 + ctx.iter as f64;
        for _ in 0..steps {
            x = x * 0.999_999_7 + 1e-9;
        }
        std::hint::black_box(x)
    }

    fn access(&self) -> AccessPattern {
        // Reads no input cells at all — trivially prefix-bounded.
        AccessPattern::ElementWise
    }
}

/// A kernel that actually consumes its upstream data: the spin
/// recurrence of [`SpinKernel`] folded with one sampled cell from each
/// input slice. Exercises the zero-copy input path — the value depends
/// on upstream *outputs*, so a backend that mis-plumbed, reordered, or
/// torn-read the arena slices diverges bitwise from the sequential
/// reference instead of passing vacuously.
#[derive(Debug, Clone, Copy)]
pub struct ReduceKernel {
    /// Arithmetic steps per simulated µs of cost (see [`SpinKernel`]).
    pub steps_per_us: f64,
}

impl ReduceKernel {
    /// A data-consuming kernel doing `steps_per_us` steps per µs.
    pub fn with_scale(steps_per_us: f64) -> Self {
        ReduceKernel { steps_per_us }
    }
}

impl TaskKernel for ReduceKernel {
    fn run_task(&self, ctx: &TaskCtx<'_>) -> f64 {
        let steps = (ctx.cost_hint * self.steps_per_us).max(1.0) as u64;
        let mut x = (ctx.task as f64 + 1.0) * 1e-3 + ctx.iter as f64;
        for _ in 0..steps {
            x = x * 0.999_999_7 + 1e-9;
        }
        // Deterministic sample of each input: one cell chosen by the
        // task index, so every task reads upstream data but the
        // access stays O(#inputs) per task.
        for input in ctx.inputs {
            if let Some(&v) = input.get(ctx.task % input.len().max(1)) {
                x = x * 0.5 + v * 0.5;
            }
        }
        std::hint::black_box(x)
    }

    fn access(&self) -> AccessPattern {
        // Task t reads cell `t % len` of each input, and `t % len ≤ t`
        // for every length, so the read is always prefix-bounded.
        AccessPattern::ElementWise
    }
}

/// One operation instance in the expanded plan.
#[derive(Debug, Clone)]
pub struct PlannedOp {
    /// Display name (`B_I`, or `A_D@3` for pipeline iteration 3).
    pub name: String,
    /// Underlying graph node.
    pub node: usize,
    /// Pipeline iteration.
    pub iter: usize,
    /// Task count.
    pub tasks: usize,
    /// Plan-indexed dependencies (deduplicated).
    pub deps: Vec<usize>,
}

/// The execution plan: pipeline groups unrolled into per-iteration
/// operation instances forming a plain DAG.
#[derive(Debug, Clone)]
pub struct Plan {
    /// Ops in an order where every dependency precedes its dependents.
    pub ops: Vec<PlannedOp>,
}

/// Expands a graph (plus pipeline iteration counts) into the op DAG
/// both real backends execute.
///
/// Non-carried edges inside a pipeline group connect pieces of the
/// same iteration; carried edges connect iteration `k-1` to `k`. With
/// `pipeline_overlap` disabled every piece of iteration `k` waits for
/// all of iteration `k-1` *and* for the previous piece of its own
/// iteration — the barrier-per-piece baseline of the paper's §1.
///
/// # Errors
///
/// Returns the graph's validation error when it is malformed.
pub fn build_plan(g: &DelirGraph, opts: &ExecutorOptions) -> Result<Plan, GraphError> {
    g.validate()?;
    let order = g.topo_order()?;
    let iters_of = |n: &Node| -> usize {
        n.group.as_ref().and_then(|gr| opts.pipeline_iters.get(gr)).copied().unwrap_or(1).max(1)
    };

    // Instances laid out node-major first; a topological re-sort below
    // restores "deps precede dependents" (carried edges point from a
    // later node's iteration k-1 to an earlier node's iteration k, so
    // no single static layout is topological).
    let mut index_of: HashMap<(usize, usize), usize> = HashMap::new();
    let mut ops: Vec<PlannedOp> = Vec::new();
    for &v in &order {
        let node = &g.nodes[v];
        let iters = iters_of(node);
        for k in 0..iters {
            let name = if iters > 1 { format!("{}@{}", node.name, k) } else { node.name.clone() };
            index_of.insert((v, k), ops.len());
            ops.push(PlannedOp {
                name,
                node: v,
                iter: k,
                tasks: node.kind.task_count(),
                deps: Vec::new(),
            });
        }
    }

    let mut deps: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); ops.len()];
    let last = |v: usize| index_of[&(v, iters_of(&g.nodes[v]) - 1)];
    for e in &g.edges {
        let (gu, gv) = (&g.nodes[e.from].group, &g.nodes[e.to].group);
        let same_group = gu.is_some() && gu == gv;
        if e.carried {
            // Loop-carried: iteration k-1 → k within the group.
            if same_group {
                for k in 1..iters_of(&g.nodes[e.to]) {
                    deps[index_of[&(e.to, k)]].insert(index_of[&(e.from, k - 1)]);
                }
            }
            continue;
        }
        if same_group {
            for k in 0..iters_of(&g.nodes[e.to]) {
                deps[index_of[&(e.to, k)]].insert(index_of[&(e.from, k)]);
            }
        } else {
            // Entering or leaving a group: every iteration of the
            // consumer needs the producer fully finished.
            for k in 0..iters_of(&g.nodes[e.to]) {
                deps[index_of[&(e.to, k)]].insert(last(e.from));
            }
        }
    }

    if !opts.pipeline_overlap {
        // Barrier baseline: collect each group's members in topo order.
        let mut groups: HashMap<&str, Vec<usize>> = HashMap::new();
        for &v in &order {
            if let Some(gr) = &g.nodes[v].group {
                groups.entry(gr.as_str()).or_default().push(v);
            }
        }
        for members in groups.values() {
            let iters = iters_of(&g.nodes[members[0]]);
            for k in 0..iters {
                for (i, &v) in members.iter().enumerate() {
                    let me = index_of[&(v, k)];
                    if i > 0 {
                        // Barrier between pieces of one iteration.
                        deps[me].insert(index_of[&(members[i - 1], k)]);
                    } else if k > 0 {
                        // Barrier between iterations.
                        deps[me].insert(index_of[&(members[members.len() - 1], k - 1)]);
                    }
                }
            }
        }
    }

    for (op, d) in ops.iter_mut().zip(&deps) {
        op.deps = d.iter().copied().collect();
    }

    // Kahn's algorithm with a deterministic (smallest-index-first)
    // ready set; then remap every index to the new order.
    let mut indegree: Vec<usize> = ops.iter().map(|o| o.deps.len()).collect();
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); ops.len()];
    for (i, op) in ops.iter().enumerate() {
        for &d in &op.deps {
            dependents[d].push(i);
        }
    }
    let mut ready: BTreeSet<usize> = (0..ops.len()).filter(|&i| indegree[i] == 0).collect();
    let mut order = Vec::with_capacity(ops.len());
    while let Some(&i) = ready.iter().next() {
        ready.remove(&i);
        order.push(i);
        for &d in &dependents[i] {
            indegree[d] -= 1;
            if indegree[d] == 0 {
                ready.insert(d);
            }
        }
    }
    debug_assert_eq!(order.len(), ops.len(), "expanded DAG has a cycle");
    let mut new_index = vec![0usize; ops.len()];
    for (pos, &old) in order.iter().enumerate() {
        new_index[old] = pos;
    }
    let mut sorted: Vec<PlannedOp> = order
        .iter()
        .map(|&old| {
            let mut op = ops[old].clone();
            op.deps = op.deps.iter().map(|&d| new_index[d]).collect();
            op.deps.sort_unstable();
            op
        })
        .collect();
    sorted.shrink_to_fit();
    Ok(Plan { ops: sorted })
}

/// Per-op record of a threaded run.
#[derive(Debug, Clone)]
pub struct OpRecord {
    /// Instance name.
    pub name: String,
    /// First chunk claim, µs after run start.
    pub start_us: f64,
    /// Completion, µs after run start.
    pub finish_us: f64,
    /// Task count.
    pub tasks: usize,
    /// Chunks dispatched by the queue.
    pub chunks: u64,
    /// Chunk re-assignments performed by the dist-TAPER coordinator
    /// (0 for shared-queue ops).
    pub reassignments: u64,
    /// Tasks executed away from their home worker (0 for shared-queue
    /// ops, which have no home placement).
    pub migrated: u64,
    /// Completed global epochs (0 for shared-queue ops).
    pub epochs: usize,
    /// Run-relative times (µs) of each global-epoch increment (empty
    /// for shared-queue ops); monotone non-decreasing.
    pub epoch_times_us: Vec<f64>,
    /// Re-assignments that crossed a NUMA node boundary (≤
    /// `reassignments`; 0 for shared-queue ops and single-node runs).
    pub remote_reassignments: u64,
    /// Workers the §4.1.2 equalizer initially allocated to this op —
    /// the whole pool when the op had its level to itself (or
    /// allocation was off), a partition of it when concurrent ops
    /// split the pool. Re-equalization can later widen a partition;
    /// this records the allocator's decision, so concurrent ops' procs
    /// sum to the pool size.
    pub procs: usize,
    /// Input edges gated by the producer's progress watermark instead
    /// of whole-op completion — this op's tasks could start while
    /// those producers were still running.
    pub streamed_inputs: usize,
    /// Watermark publications this op performed as a *producer* (0 for
    /// ops with no streamed dependents).
    pub watermark_pubs: u64,
}

/// The result of executing a graph on real threads.
#[derive(Debug, Clone)]
pub struct ThreadedRun {
    /// Measured wall-clock time, µs.
    pub wall_us: f64,
    /// Worker threads used.
    pub workers: usize,
    /// Per-worker busy/tasks/chunks, assembled with
    /// [`RunStats::from_procs`] exactly as the simulator reports runs.
    pub stats: RunStats,
    /// Per-worker online µ/σ over task times (µs).
    pub worker_timing: Vec<OnlineStats>,
    /// Per-op timings, aligned with the plan's op order.
    pub ops: Vec<OpRecord>,
    /// Output buffers, aligned with the plan's op order.
    pub outputs: Vec<Vec<f64>>,
    /// Per-task execution counts, aligned with the plan's op order
    /// (all 1 in a correct run).
    pub exec_counts: Vec<Vec<u32>>,
    /// Σ of the tasks' simulated cost hints (µs) — the work the
    /// simulator would call `serial_work`.
    pub hinted_serial_us: f64,
    /// Tasks executed away from their home worker, summed over all
    /// dist-TAPER ops (0 under shared-queue backends).
    pub migrated_tasks: u64,
    /// Coordinator re-assignments, summed over all dist-TAPER ops.
    pub reassignments: u64,
    /// Fraction of dist-TAPER tasks that ran on their home worker
    /// (1.0 when nothing migrated, and for runs with no dist ops),
    /// matching the simulator's
    /// [`DistResult::locality`](crate::dist_taper::DistResult).
    pub locality: f64,
    /// Coordinator re-assignments that crossed a NUMA node boundary,
    /// summed over all dist-TAPER ops.
    pub remote_reassignments: u64,
    /// Work-steal counters bucketed by hierarchy distance, merged over
    /// all workers.
    pub steal: StealStats,
    /// Streamed (watermark-gated) producer→consumer edges in the plan,
    /// summed over all ops (0 with `pipeline_overlap` off, under a
    /// `WholeInput` kernel, and on resumed plans' remapped ops).
    pub streamed_edges: usize,
    /// Watermark publications performed across all producer ops.
    pub watermark_pubs: u64,
    /// Workers whose CPU pin the kernel accepted (0 when pinning was
    /// off or every pin failed).
    pub pinned_workers: usize,
    /// The machine layout the run was scheduled against.
    pub topology: TopologyFingerprint,
    /// Whether an injected crash-mode fault aborted the run (the
    /// outputs are then partial; see
    /// [`execute_graph_resumable`](crate::checkpoint::execute_graph_resumable)).
    pub crashed: bool,
}

impl ThreadedRun {
    /// Measured speedup: total busy time across workers over wall
    /// time. 1.0 means no overlap at all; `workers` is the ceiling.
    pub fn measured_speedup(&self) -> f64 {
        if self.wall_us <= 0.0 {
            return 1.0;
        }
        self.stats.total_busy() / self.wall_us
    }

    /// Converts the measured run into the executor's report shape so
    /// callers consume both backends uniformly. `serial_work` is the
    /// *measured* total busy time (not the simulator's cost hints), so
    /// [`ExecutionReport::speedup`] reports the measured speedup.
    pub fn to_report(&self) -> ExecutionReport {
        ExecutionReport {
            finish: self.wall_us,
            nodes: self
                .ops
                .iter()
                .map(|op| NodeReport {
                    name: op.name.clone(),
                    start: op.start_us,
                    finish: op.finish_us,
                    procs: op.procs,
                    streamed_inputs: op.streamed_inputs,
                    watermark_pubs: op.watermark_pubs,
                })
                .collect(),
            serial_work: self.stats.total_busy(),
            processors: self.workers,
        }
    }
}

/// The result of the independent single-thread reference execution.
#[derive(Debug, Clone)]
pub struct SequentialRun {
    /// Wall-clock time, µs.
    pub wall_us: f64,
    /// Output buffers, aligned with the plan's op order.
    pub outputs: Vec<Vec<f64>>,
    /// Op names, aligned with the plan's op order.
    pub op_names: Vec<String>,
}

/// Worker-count resolution: `opts.threads`, or the machine's available
/// parallelism (capped at 16) when zero.
pub fn resolve_workers(opts: &ExecutorOptions) -> usize {
    if opts.threads > 0 {
        return opts.threads;
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2).min(16)
}

/// Executes a graph on real threads.
///
/// # Errors
///
/// Returns the graph's validation error when it is malformed, or a
/// cancellation/deadline error when the caller aborted the run.
pub fn execute_threaded(
    g: &DelirGraph,
    opts: &ExecutorOptions,
    kernel: &(dyn TaskKernel + Sync),
) -> Result<ThreadedRun, RunError> {
    execute_threaded_resumed(g, opts, kernel, None)
}

/// [`execute_threaded`] with an optional restore image: restored tasks
/// keep their snapshot outputs and are excluded from the queues'
/// iteration spaces, fully restored ops are pre-completed, and the
/// adaptive chunk policies warm-start from the snapshot's per-op µ/σ.
pub(crate) fn execute_threaded_resumed(
    g: &DelirGraph,
    opts: &ExecutorOptions,
    kernel: &(dyn TaskKernel + Sync),
    resume: Option<&ResumeState>,
) -> Result<ThreadedRun, RunError> {
    let plan = build_plan(g, opts)?;
    let workers = resolve_workers(opts);
    let topo = opts.topology.resolve();
    let wt = WorkerTopo::new(&topo, workers, opts.steal_order);
    // `ORCHESTRA_PIN_WORKERS` (any value but "0") forces pinning on —
    // CI uses it to smoke the affinity path without touching configs.
    let pin = opts.pin_workers
        || std::env::var("ORCHESTRA_PIN_WORKERS").is_ok_and(|v| !v.is_empty() && v != "0");
    // Which ops the snapshot already finished whole: they are excluded
    // from scheduling entirely — no queue entries, no dependency
    // edges, pre-counted as completed.
    let pre_done: Vec<bool> = plan
        .ops
        .iter()
        .enumerate()
        .map(|(i, op)| {
            resume
                .and_then(|r| r.ops.get(i))
                .is_some_and(|o| op.tasks > 0 && o.completed.iter().all(|&c| c))
        })
        .collect();
    // ---- §4.1.2 processor allocation --------------------------------
    // When a graph level holds several concurrent ops and allocation is
    // on, split the pool between them with the finishing-time equalizer
    // (over live specs: task counts before any samples exist) instead
    // of letting every worker thrash every queue. Levels are depths in
    // the expanded instance DAG, so overlapping pipeline iterations
    // that can run concurrently land in the same group.
    let pending_of: Vec<usize> = plan
        .ops
        .iter()
        .enumerate()
        .map(|(i, op)| {
            let restored = resume
                .and_then(|r| r.ops.get(i))
                .map_or(0, |o| o.completed.iter().filter(|&&c| c).count());
            op.tasks.saturating_sub(restored)
        })
        .collect();
    let mut depth = vec![0usize; plan.ops.len()];
    for (i, op) in plan.ops.iter().enumerate() {
        depth[i] = op.deps.iter().map(|&d| depth[d] + 1).max().unwrap_or(0);
    }
    // Full-pool defaults; partitioned groups overwrite below. One u64
    // mask per op caps partitioning at 64 workers (beyond that the
    // pool falls back to the shared-everything schedule).
    let full_mask = if workers >= 64 { u64::MAX } else { (1u64 << workers) - 1 };
    let mut op_procs: Vec<usize> = vec![workers; plan.ops.len()];
    let mut masks: Vec<u64> = vec![full_mask; plan.ops.len()];
    let mut partition_live = false;
    if opts.use_allocation && workers > 1 && workers <= 64 {
        let cal = HostCalibration::get();
        let kind = match opts.policy {
            PolicyKind::Static => PolicyKind::Gss,
            p => p,
        };
        let mut by_depth: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for i in 0..plan.ops.len() {
            if !pre_done[i] && pending_of[i] > 0 {
                by_depth.entry(depth[i]).or_default().push(i);
            }
        }
        for group in by_depth.values() {
            if group.len() < 2 || workers < group.len() {
                continue;
            }
            let specs: Vec<OpSpec> =
                group.iter().map(|&i| OpSpec::from_live(pending_of[i], None, kind)).collect();
            let alloc = allocate_many_with(&specs, workers, &AllocParams::default(), |s, p| {
                finish_estimate_live(s, p, &cal).total()
            });
            // Contiguous worker ranges per op: partitions are disjoint
            // and cover the pool, so each level's procs sum to it.
            let mut offset = 0u32;
            for (&i, &a) in group.iter().zip(&alloc) {
                op_procs[i] = a;
                masks[i] = (((1u128 << a) - 1) << offset) as u64;
                offset += a as u32;
            }
            partition_live = true;
        }
    }
    let partition = if partition_live {
        Partition::new(masks.clone())
    } else {
        Partition::disabled(plan.ops.len())
    };
    // One slab for every op's outputs: workers write chunk views in
    // place, dependents read finished slices by reference, and the
    // run's owned buffers come out at the end without a copy.
    let mut arena = OutputArena::for_ops(plan.ops.iter().map(|o| o.tasks));
    let mut instances: Vec<OpInstance> = Vec::with_capacity(plan.ops.len());
    // ---- §4.1 streamed data plane ----------------------------------
    // An edge p→c is *streamed* when consumer task t provably reads
    // only cells ≤ t of p's output (element-wise kernel on equal task
    // counts): c's tasks may then start as soon as p's committed-prefix
    // watermark covers them, instead of waiting for all of p. Whole-op
    // gating remains for reductions (unequal counts), remapped/resumed
    // ops (their queue indices no longer align with task space), and
    // under the `pipeline_overlap=false` barrier baseline.
    let remapped: Vec<bool> = (0..plan.ops.len())
        .map(|i| resume.and_then(|r| r.ops.get(i)).is_some_and(|o| o.completed.iter().any(|&c| c)))
        .collect();
    let stream_on = opts.pipeline_overlap && kernel.access() == AccessPattern::ElementWise;
    let streamed_edge = |d: usize, c: usize| -> bool {
        stream_on
            && !pre_done[d]
            && !pre_done[c]
            && !remapped[d]
            && !remapped[c]
            && plan.ops[d].tasks == plan.ops[c].tasks
            && plan.ops[d].tasks > 1
    };
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); plan.ops.len()];
    let mut stream_deps: Vec<Vec<usize>> = vec![Vec::new(); plan.ops.len()];
    for (i, op) in plan.ops.iter().enumerate() {
        if pre_done[i] {
            continue; // Never scheduled, so never needs enabling.
        }
        for &d in &op.deps {
            if streamed_edge(d, i) {
                stream_deps[d].push(i);
            } else {
                dependents[d].push(i);
            }
        }
    }
    let mut hinted_serial_us = 0.0;
    for (i, op) in plan.ops.iter().enumerate() {
        let node = &g.nodes[op.node];
        let costs = costs_of_node(node, opts.seed);
        hinted_serial_us += costs.iter().sum::<f64>();
        let res_op = resume.and_then(|r| r.ops.get(i)).filter(|o| o.completed.iter().any(|&c| c));
        let restored: Vec<bool> = res_op.map(|o| o.completed.clone()).unwrap_or_default();
        // The queue schedules only the pending tasks, packed; `remap`
        // translates its indices back to task space.
        let remap: Option<Vec<usize>> = if restored.iter().any(|&c| c) {
            Some((0..op.tasks).filter(|&t| !restored[t]).collect())
        } else {
            None
        };
        let pending = remap.as_ref().map_or(op.tasks, Vec::len);
        let queue_costs: Option<Vec<f64>> =
            remap.as_ref().map(|r| r.iter().map(|&t| costs[t]).collect());
        // Distributed TAPER only pays off (and only makes sense) for
        // genuinely parallel ops: single-task ops keep a shared queue
        // so a lone Task/Merge node doesn't token every worker.
        let queue = if opts.backend == ExecutorBackend::ThreadedDist && pending > 1 {
            if partition_live && op_procs[i] < workers {
                // Block-decompose over the op's partition only: the
                // other partition's workers start with no home here.
                let members: Vec<usize> =
                    (0..workers).filter(|&w| masks[i] >> w & 1 == 1).collect();
                OpQueue::Dist(DistQueue::with_partition(
                    pending,
                    workers,
                    wt.node_of_worker.clone(),
                    &members,
                ))
            } else {
                OpQueue::Dist(DistQueue::with_nodes(pending, workers, wt.node_of_worker.clone()))
            }
        } else {
            let policy = match opts.policy {
                // Static has no dynamic queue; one equal chunk per
                // worker approximates block decomposition on a shared
                // queue.
                PolicyKind::Static => PolicyKind::Gss.instantiate(pending),
                p => p.instantiate(pending),
            };
            // Chunk schedules are sized for the op's allocated
            // partition, not the whole pool.
            OpQueue::Shared(ChunkQueue::new(policy, pending, op_procs[i]))
        };
        if let Some(r) = res_op.filter(|o| o.stats.count() > 0) {
            // Warm-start the chunk policy with the snapshot's µ/σ so
            // the resumed run sizes chunks as if it had kept sampling.
            match &queue {
                OpQueue::Shared(q) => q.observe_chunk(0, 0, &r.stats),
                OpQueue::Dist(q) => q.warm(&r.stats),
            }
        }
        let effective_deps = op.deps.iter().filter(|&&d| !pre_done[d]).count();
        // Pre-fill restored outputs while the arena is still exclusive
        // — workers and the snapshot scanner only ever see them as
        // quiescent completed cells.
        if let Some(o) = res_op {
            for t in 0..op.tasks {
                if restored.get(t).copied().unwrap_or(false) {
                    arena.set(i, t, o.outputs[t]);
                }
            }
        }
        let stamp = if pre_done[i] { 0u64 } else { u64::MAX };
        let stream_dependents = std::mem::take(&mut stream_deps[i]);
        // b\*: how many completed producer tasks coalesce per watermark
        // publication, from the host's measured per-publish α and
        // per-byte β (§4.1's batch-granularity model over the arena's
        // 8-byte items) — unless the caller forced a batch.
        let stream_batch = if stream_dependents.is_empty() {
            op.tasks.max(1)
        } else {
            opts.stream_batch
                .unwrap_or_else(|| {
                    HostCalibration::get().stream_batch(op.tasks, std::mem::size_of::<f64>() as u64)
                })
                .clamp(1, op.tasks.max(1))
        };
        instances.push(OpInstance {
            name: op.name.clone(),
            node: op.node,
            iter: op.iter,
            queue,
            costs,
            deps: AtomicUsize::new(effective_deps),
            dependents: std::mem::take(&mut dependents[i]),
            input_ops: op.deps.clone(),
            stream_inputs: op.deps.iter().copied().filter(|&d| streamed_edge(d, i)).collect(),
            stream_dependents,
            stream_batch,
            outstanding: AtomicUsize::new(pending),
            executed: (0..op.tasks).map(|_| AtomicU32::new(0)).collect(),
            started_bits: AtomicU64::new(stamp),
            finished_bits: AtomicU64::new(stamp),
            restored,
            remap,
            queue_costs,
        });
    }
    let ready0: Vec<usize> = (0..plan.ops.len())
        .filter(|&i| !pre_done[i] && plan.ops[i].deps.iter().all(|&d| pre_done[d]))
        .collect();
    let pre_completed = pre_done.iter().filter(|&&p| p).count();
    let fingerprint = plan_fingerprint(&plan, opts.seed);
    let ctl = RunCtl::new(
        opts.faults.as_ref(),
        opts.checkpoint.as_ref(),
        CancelCtl::from_opts(opts),
        workers,
        fingerprint,
    );

    let t0 = Instant::now();
    let records = pool::run_pool(
        &instances,
        &g.nodes,
        &arena,
        ready0,
        workers,
        &wt,
        pin,
        kernel,
        &ctl,
        pre_completed,
        &partition,
    );
    let wall_us = t0.elapsed().as_secs_f64() * 1e6;

    let mut steal = StealStats::new();
    let mut pinned_workers = 0usize;
    for r in &records {
        steal.merge(&r.steal);
        pinned_workers += usize::from(r.pinned);
    }
    let (procs, worker_timing): (Vec<ProcStats>, Vec<OnlineStats>) =
        records.into_iter().map(|r| (r.proc, r.timing)).unzip();
    let stats = RunStats::from_procs(procs, wall_us);
    let ops: Vec<OpRecord> = instances
        .iter()
        .enumerate()
        .map(|(i, op)| {
            let d = op.queue.as_dist();
            OpRecord {
                procs: op_procs[i],
                streamed_inputs: op.stream_inputs.len(),
                // Read before `into_outputs` consumes the arena below.
                watermark_pubs: arena.watermark_pubs(i),
                name: op.name.clone(),
                start_us: f64::from_bits(
                    op.started_bits.load(std::sync::atomic::Ordering::Acquire),
                ),
                finish_us: f64::from_bits(
                    op.finished_bits.load(std::sync::atomic::Ordering::Acquire),
                ),
                tasks: op.costs.len(),
                chunks: op.queue.chunks_claimed(),
                reassignments: d.map_or(0, DistQueue::reassignments),
                migrated: d.map_or(0, DistQueue::migrated_tasks),
                epochs: d.map_or(0, DistQueue::epochs),
                epoch_times_us: d.map_or_else(Vec::new, DistQueue::epoch_times_us),
                remote_reassignments: d.map_or(0, DistQueue::remote_reassignments),
            }
        })
        .collect();
    let migrated_tasks: u64 = ops.iter().map(|o| o.migrated).sum();
    let reassignments: u64 = ops.iter().map(|o| o.reassignments).sum();
    let remote_reassignments: u64 = ops.iter().map(|o| o.remote_reassignments).sum();
    let streamed_edges: usize = ops.iter().map(|o| o.streamed_inputs).sum();
    let watermark_pubs: u64 = ops.iter().map(|o| o.watermark_pubs).sum();
    let dist_tasks: u64 =
        instances.iter().filter(|op| op.queue.is_dist()).map(|op| op.costs.len() as u64).sum();
    let locality =
        if dist_tasks == 0 { 1.0 } else { 1.0 - migrated_tasks as f64 / dist_tasks as f64 };
    // A fired cancellation aborts the whole run: partial outputs are
    // discarded and the caller gets the clean error. Checked before
    // result assembly so a cancelled run never masquerades as a
    // short successful one.
    if let Some(e) = ctl.cancel_error() {
        return Err(e);
    }
    // The pool has joined: the arena's cells are quiescent and the
    // consuming conversion hands back one owned buffer per op.
    let outputs = arena.into_outputs();
    let exec_counts = instances.iter().map(OpInstance::exec_counts).collect();
    Ok(ThreadedRun {
        wall_us,
        workers,
        stats,
        worker_timing,
        ops,
        outputs,
        exec_counts,
        hinted_serial_us,
        migrated_tasks,
        reassignments,
        locality,
        remote_reassignments,
        streamed_edges,
        watermark_pubs,
        steal,
        pinned_workers,
        topology: wt.fingerprint(),
        crashed: ctl.crashed(),
    })
}

/// Executes the same plan on the calling thread in dependency order —
/// a deliberately independent reference implementation (no queue, no
/// pool) the differential tests compare the threaded backend against.
///
/// # Errors
///
/// Returns the graph's validation error when it is malformed.
pub fn execute_sequential(
    g: &DelirGraph,
    opts: &ExecutorOptions,
    kernel: &(dyn TaskKernel + Sync),
) -> Result<SequentialRun, RunError> {
    let plan = build_plan(g, opts)?;
    let cancel = CancelCtl::from_opts(opts);
    let t0 = Instant::now();
    let mut outputs: Vec<Vec<f64>> = Vec::with_capacity(plan.ops.len());
    for op in &plan.ops {
        // The sequential backend has no chunk claims; op boundaries
        // are its claim boundaries. Ops are small enough (the longest
        // is one node's task loop) that this keeps cancellation
        // prompt without clocking every task.
        if let Some(c) = &cancel {
            if c.requested() {
                return Err(c.error().unwrap_or(RunError::Cancelled));
            }
        }
        let node = &g.nodes[op.node];
        let costs = costs_of_node(node, opts.seed);
        let mut out = Vec::with_capacity(op.tasks);
        {
            // The owned-buffer reference path: inputs are slices of
            // the already-finished upstream vectors (the plan is in
            // dependency order), mirroring the arena hand-off.
            let inputs: Vec<&[f64]> = op.deps.iter().map(|&d| outputs[d].as_slice()).collect();
            for (task, &cost) in costs.iter().enumerate().take(op.tasks) {
                let ctx = TaskCtx { node, iter: op.iter, task, cost_hint: cost, inputs: &inputs };
                out.push(kernel.run_task(&ctx));
            }
        }
        outputs.push(out);
    }
    Ok(SequentialRun {
        wall_us: t0.elapsed().as_secs_f64() * 1e6,
        outputs,
        op_names: plan.ops.iter().map(|o| o.name.clone()).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_delirium::{DataAnno, NodeKind};

    fn small_graph() -> DelirGraph {
        let mut g = DelirGraph::new();
        let a = g.add_node("A", NodeKind::Task { cost: 5.0 }, None);
        let b =
            g.add_node("B", NodeKind::DataParallel { tasks: 100, mean_cost: 3.0, cv: 0.8 }, None);
        let c = g.add_node("C", NodeKind::Merge { cost: 2.0 }, None);
        g.add_edge(a, b, DataAnno::array("x", 100));
        g.add_edge(b, c, DataAnno::array("y", 100));
        g
    }

    fn pipeline_graph() -> (DelirGraph, ExecutorOptions) {
        let mut g = DelirGraph::new();
        let ai = g.add_node(
            "A_I",
            NodeKind::DataParallel { tasks: 24, mean_cost: 2.0, cv: 0.3 },
            Some("A".into()),
        );
        let ad = g.add_node(
            "A_D",
            NodeKind::DataParallel { tasks: 8, mean_cost: 2.0, cv: 0.3 },
            Some("A".into()),
        );
        let am = g.add_node("A_M", NodeKind::Merge { cost: 1.0 }, Some("A".into()));
        g.add_edge(ai, am, DataAnno::array("r1", 24));
        g.add_edge(ad, am, DataAnno::array("r2", 8));
        g.add_carried_edge(am, ad, DataAnno::array("q", 8));
        let b =
            g.add_node("B", NodeKind::DataParallel { tasks: 40, mean_cost: 1.0, cv: 0.1 }, None);
        g.add_edge(am, b, DataAnno::array("out", 40));
        let mut opts = ExecutorOptions { threads: 2, ..ExecutorOptions::default() };
        opts.pipeline_iters.insert("A".into(), 5);
        (g, opts)
    }

    #[test]
    fn plan_expands_pipeline_iterations() {
        let (g, opts) = pipeline_graph();
        let plan = build_plan(&g, &opts).unwrap();
        // 3 group nodes × 5 iterations + B.
        assert_eq!(plan.ops.len(), 16);
        // Dependencies always point backwards.
        for (i, op) in plan.ops.iter().enumerate() {
            for &d in &op.deps {
                assert!(d < i, "op {i} depends on later op {d}");
            }
        }
        // B waits for the last merge.
        let b = plan.ops.iter().position(|o| o.name == "B").unwrap();
        let last_merge = plan.ops.iter().position(|o| o.name == "A_M@4").unwrap();
        assert!(plan.ops[b].deps.contains(&last_merge));
        // Carried edge: A_D@1 depends on A_M@0.
        let ad1 = plan.ops.iter().position(|o| o.name == "A_D@1").unwrap();
        let am0 = plan.ops.iter().position(|o| o.name == "A_M@0").unwrap();
        assert!(plan.ops[ad1].deps.contains(&am0));
    }

    #[test]
    fn barrier_plan_serializes_iterations() {
        let (g, opts) = pipeline_graph();
        let barrier = ExecutorOptions { pipeline_overlap: false, ..opts.clone() };
        let plan = build_plan(&g, &barrier).unwrap();
        // A_I@1 must wait (possibly transitively) for iteration 0's
        // merge under barriers; with overlap it depends on nothing.
        fn reaches(plan: &Plan, from: usize, to: usize) -> bool {
            from == to || plan.ops[from].deps.iter().any(|&d| reaches(plan, d, to))
        }
        let ai1 = plan.ops.iter().position(|o| o.name == "A_I@1").unwrap();
        let am0 = plan.ops.iter().position(|o| o.name == "A_M@0").unwrap();
        assert!(reaches(&plan, ai1, am0));
        let overlap_plan = build_plan(&g, &opts).unwrap();
        let ai1 = overlap_plan.ops.iter().position(|o| o.name == "A_I@1").unwrap();
        assert!(overlap_plan.ops[ai1].deps.is_empty());
    }

    #[test]
    fn threaded_executes_every_task_once() {
        let g = small_graph();
        let opts = ExecutorOptions { threads: 3, ..ExecutorOptions::default() };
        let kernel = SpinKernel::with_scale(4.0);
        let r = execute_threaded(&g, &opts, &kernel).unwrap();
        assert_eq!(r.stats.total_tasks(), 102);
        for counts in &r.exec_counts {
            assert!(counts.iter().all(|&c| c == 1));
        }
        assert!(r.wall_us > 0.0);
        assert!(r.measured_speedup() <= r.workers as f64 + 1e-9);
    }

    #[test]
    fn threaded_matches_sequential_bitwise() {
        let (g, opts) = pipeline_graph();
        let kernel = SpinKernel::with_scale(4.0);
        let seq = execute_sequential(&g, &opts, &kernel).unwrap();
        let thr = execute_threaded(&g, &opts, &kernel).unwrap();
        assert_eq!(seq.outputs.len(), thr.outputs.len());
        for (i, (a, b)) in seq.outputs.iter().zip(&thr.outputs).enumerate() {
            assert_eq!(a, b, "op {} differs", seq.op_names[i]);
        }
    }

    #[test]
    fn invalid_graph_rejected() {
        let mut g = DelirGraph::new();
        let a = g.add_node("A", NodeKind::Task { cost: 1.0 }, None);
        g.add_edge(a, a, DataAnno::scalar("self"));
        let kernel = SpinKernel::default();
        assert!(execute_threaded(&g, &ExecutorOptions::default(), &kernel).is_err());
    }
}
