//! Distributed TAPER on real threads (§4.1.1).
//!
//! The threaded counterpart of [`crate::dist_taper`]: each worker owns
//! a *home queue* of tasks (block-decomposed by
//! [`owner_of`](crate::par_op::owner_of), exactly as the simulator
//! places them), draws decreasing-size epoch chunks from it via the
//! same [`Taper`] policy, and publishes an epoch *token* to a logical
//! binary tree whenever it starts a chunk. The root counts tokens per
//! epoch: once every worker has tokened epoch `e` the global epoch
//! increments; if one worker gets two epoch-`e` tokens in before some
//! other worker's first, the root re-assigns half of that laggard's
//! unstarted home queue to the fast tokener — gated on the sampled
//! coefficient of variation ([`Taper::reassign_signal`]), so uniform
//! workloads never migrate and locality stays at 1.
//!
//! On shared memory the token tree and the root collapse into one
//! coordinator guarded by a short mutex: "sending a token" is a counter
//! increment performed by the claiming worker itself, and the root's
//! re-assignment delivers the stolen tasks directly into *that
//! worker's* home queue (the fast tokener is, by construction, the
//! worker currently claiming). This keeps the protocol's decisions
//! identical in kind to the simulator's while the critical section
//! stays one `epoch_chunk` call plus counter updates per chunk — the
//! same order as the shared [`ChunkQueue`](super::queue::ChunkQueue)'s
//! adaptive path.
//!
//! Two invariants carry over from the shared queue:
//!
//! * **Exactly-once** — a task index lives in exactly one home queue at
//!   any instant (re-assignment pops before it pushes, all under the
//!   coordinator lock), and a claim pops it exactly once.
//! * **Self-delivery** — tasks only ever move into the home queue of
//!   the worker performing the claim. A worker whose claim fails
//!   (empty home, nothing stealable) can therefore drop its op token
//!   for good: its queue can never refill behind its back, so no
//!   wakeup can be lost.
//!
//! The control plane observes the tasks' *cost hints* (the same
//! deterministic per-task costs the simulator samples), not measured
//! wall time: chunk sizing and the migration gate are then a pure
//! function of the workload, so the differential suite can pin
//! sim-equivalent decisions (zero reassignments on uniform costs,
//! forced migration on concentrated ones) without timing flake.
//! Measured task times still flow into the per-worker
//! [`OnlineStats`](crate::stats::OnlineStats) records, so the
//! locality/migration trade-off is *evaluated* against wall clocks.

use crate::chunking::{ChunkPolicy, Taper};
use crate::par_op::owner_of;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// One claimed epoch chunk: the task indices popped from the claiming
/// worker's home queue (contiguous runs of the owner's block, plus any
/// re-assigned tasks), and the epoch the chunk was tokened in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistChunk {
    /// Task indices, in execution order.
    pub tasks: Vec<usize>,
    /// Global epoch at claim time.
    pub epoch: u64,
}

/// Coordinator state: the collapsed token tree, root counters, and the
/// shared TAPER policy, all behind one short critical section.
struct Coord {
    /// Per-worker home queues. Owned here so queue membership and the
    /// token counters can never disagree mid-reassignment.
    homes: Vec<VecDeque<usize>>,
    /// Workers the fault layer has declared dead: their tokens are no
    /// longer required for epoch completion (a dead worker would
    /// otherwise freeze the global epoch forever).
    retired: Vec<bool>,
    policy: Taper,
    global_epoch: usize,
    /// counts[e][worker]: epoch-e tokens seen by the root.
    counts: Vec<Vec<u32>>,
    /// Times (µs on the caller's clock) of each global-epoch
    /// increment, in order — the threaded analogue of
    /// [`DistResult::epoch_times`](crate::dist_taper::DistResult).
    epoch_times_us: Vec<f64>,
    /// Tasks handed out so far (the global TAPER sequence's position).
    claimed: usize,
}

/// The per-worker home-queue claim path for one parallel operation
/// under distributed TAPER.
pub struct DistQueue {
    coord: Mutex<Coord>,
    /// Tasks not yet handed out; updated inside the claim's critical
    /// section so an exhausted queue is detectable with a single load.
    remaining: AtomicUsize,
    chunks: AtomicU64,
    reassignments: AtomicU64,
    remote_reassignments: AtomicU64,
    migrated: AtomicU64,
    total: usize,
    workers: usize,
    /// NUMA node of each home queue's worker; re-assignment prefers a
    /// laggard on the claimant's node, so migrated tasks cross a node
    /// boundary only when no same-node laggard exists.
    node_of: Vec<usize>,
}

impl DistQueue {
    /// A distributed queue over `total` tasks, block-decomposed onto
    /// `workers` home queues (owner-computes placement), with every
    /// worker on one NUMA node (no placement preference).
    pub fn new(total: usize, workers: usize) -> Self {
        let workers = workers.max(1);
        DistQueue::with_nodes(total, workers, vec![0; workers])
    }

    /// Like [`new`](Self::new), with each worker's NUMA node supplied
    /// so the root's re-assignment can prefer same-node migration. The
    /// task→home mapping is unchanged — topology shapes only *where
    /// stolen work goes*, never where work starts (the simulator's
    /// owner-computes placement stays bit-identical).
    ///
    /// # Panics
    ///
    /// Panics if `node_of.len() != workers.max(1)`.
    pub fn with_nodes(total: usize, workers: usize, node_of: Vec<usize>) -> Self {
        let workers = workers.max(1);
        let members: Vec<usize> = (0..workers).collect();
        DistQueue::with_partition(total, workers, node_of, &members)
    }

    /// Like [`with_nodes`](Self::with_nodes), but block-decomposes the
    /// iteration space over `members` only — the §4.1.2 allocator's
    /// partition of the pool for this operation. Non-members start
    /// retired (their tokens are not required for epoch completion and
    /// their homes are empty); [`admit_worker`](Self::admit_worker)
    /// later widens the partition when the equalizer migrates freed
    /// processors here.
    ///
    /// # Panics
    ///
    /// Panics if `node_of.len() != workers.max(1)`, `members` is empty,
    /// or any member index is out of range.
    pub fn with_partition(
        total: usize,
        workers: usize,
        node_of: Vec<usize>,
        members: &[usize],
    ) -> Self {
        let workers = workers.max(1);
        assert_eq!(node_of.len(), workers, "one node per worker");
        assert!(!members.is_empty(), "partition needs at least one member");
        assert!(members.iter().all(|&m| m < workers), "member out of range");
        let mut homes: Vec<VecDeque<usize>> = vec![VecDeque::new(); workers];
        for i in 0..total {
            homes[members[owner_of(i, total, members.len())]].push_back(i);
        }
        let mut retired = vec![true; workers];
        for &m in members {
            retired[m] = false;
        }
        DistQueue {
            coord: Mutex::new(Coord {
                homes,
                retired,
                policy: Taper::new(),
                global_epoch: 0,
                counts: vec![vec![0; workers]],
                epoch_times_us: Vec::new(),
                claimed: 0,
            }),
            remaining: AtomicUsize::new(total),
            chunks: AtomicU64::new(0),
            reassignments: AtomicU64::new(0),
            remote_reassignments: AtomicU64::new(0),
            migrated: AtomicU64::new(0),
            total,
            workers,
            node_of,
        }
    }

    /// Claims the next epoch chunk for `worker`, or `None` when the
    /// worker's home queue is empty and nothing could be re-assigned
    /// to it. Sends one epoch token (and runs the root's reassignment
    /// and epoch-completion rules) per call, exactly as the simulator
    /// does per chunk start or work request.
    ///
    /// `costs` are the operation's per-task cost hints (the control
    /// plane's observation stream); `now_us` is the caller's clock,
    /// used only to stamp epoch increments.
    ///
    /// # Panics
    ///
    /// Panics if `worker >= workers` or `costs` is shorter than the
    /// iteration space.
    pub fn claim(&self, worker: usize, costs: &[f64], now_us: f64) -> Option<DistChunk> {
        self.claim_bounded(worker, costs, now_us, usize::MAX)
    }

    /// Like [`claim`](Self::claim), but only draws tasks whose index
    /// lies strictly below `limit` — the streamed-edge consumer path,
    /// where `limit` is the minimum producer watermark at claim time.
    ///
    /// The draw stops at the first home-queue entry at or above the
    /// limit (homes start sorted per owner block; after migration the
    /// front-peek is merely conservative, which is safe — the
    /// producer's final `publish_all` always raises the limit to the
    /// whole space). A visit that draws nothing returns `None` exactly
    /// like a starving visit; the epoch token it sent is harmless, and
    /// the worker's wakeup is owed to the producer's next watermark
    /// publication rather than the queue itself.
    pub fn claim_bounded(
        &self,
        worker: usize,
        costs: &[f64],
        now_us: f64,
        limit: usize,
    ) -> Option<DistChunk> {
        assert!(worker < self.workers, "worker {worker} out of range");
        if self.remaining.load(Ordering::Acquire) == 0 {
            // Exhausted fast path: stale claims are a single load.
            return None;
        }
        let mut c = self.coord.lock().expect("dist coordinator poisoned");
        let e = c.global_epoch;
        if c.counts.len() <= e {
            c.counts.resize(e + 1, vec![0; self.workers]);
        }
        // Token: this claim's epoch value reaches the root.
        c.counts[e][worker] += 1;
        // Re-assignment: two epoch-e tokens from `worker` before some
        // laggard's first, gated on sampled cv. The stolen tasks are
        // delivered straight into the claimant's own home queue. Among
        // eligible laggards the root prefers one on the claimant's
        // NUMA node — in the paper's frame, a same-node claimant is
        // served before a remote one — falling back to the fullest
        // remote laggard only when the claimant's node has none.
        if c.counts[e][worker] >= 2 && c.policy.reassign_signal(self.workers) {
            let mut laggard: Option<(bool, usize, usize)> = None; // (same_node, len, b)
            for b in 0..self.workers {
                if b == worker || c.counts[e][b] != 0 || c.homes[b].is_empty() {
                    continue;
                }
                let key = (self.node_of[b] == self.node_of[worker], c.homes[b].len());
                if laggard.is_none_or(|(s, l, _)| key > (s, l)) {
                    laggard = Some((key.0, key.1, b));
                }
            }
            if let Some((same_node, len, b)) = laggard {
                let steal = len.div_ceil(2);
                for _ in 0..steal {
                    let t = c.homes[b].pop_back().expect("len checked");
                    c.homes[worker].push_back(t);
                }
                self.reassignments.fetch_add(1, Ordering::Relaxed);
                if !same_node {
                    self.remote_reassignments.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        // Epoch completion: every worker has tokened epoch e (retired
        // workers are excused — the dead can't token).
        if e == c.global_epoch
            && c.counts[e].iter().enumerate().all(|(w, &x)| x > 0 || c.retired[w])
        {
            c.global_epoch += 1;
            // Clamp to the previous increment: callers read their
            // clock before taking the lock, so two racing claims can
            // arrive with timestamps out of lock order.
            let t = c.epoch_times_us.last().map_or(now_us, |&last| now_us.max(last));
            c.epoch_times_us.push(t);
            let ge = c.global_epoch;
            if c.counts.len() <= ge {
                c.counts.resize(ge + 1, vec![0; self.workers]);
            }
        }
        // Draw the epoch chunk from the (possibly just refilled) home
        // queue: the global TAPER sequence clamped to the local queue.
        if c.homes[worker].is_empty() {
            // Starving visit: the token above doubles as a work
            // request, but nothing was stealable this time.
            return None;
        }
        let remaining_global = self.total - c.claimed;
        let local_len = c.homes[worker].len();
        let done = c.claimed;
        let k = c.policy.epoch_chunk(done, remaining_global, self.workers, local_len);
        let mut tasks = Vec::with_capacity(k);
        let mut moved = 0u64;
        for _ in 0..k {
            // Watermark gate: stop drawing at the first task the
            // producer has not committed yet.
            match c.homes[worker].front() {
                Some(&t) if t < limit => {}
                _ => break,
            }
            let t = c.homes[worker].pop_front().expect("front peeked");
            if owner_of(t, self.total, self.workers) != worker {
                moved += 1;
            }
            tasks.push(t);
        }
        if tasks.is_empty() {
            // Everything in the home queue sits at or above the
            // watermark: treat it as a starving visit.
            return None;
        }
        for &t in &tasks {
            c.policy.observe(t, costs[t]);
        }
        c.claimed += tasks.len();
        self.remaining.store(self.total - c.claimed, Ordering::Release);
        drop(c);
        self.migrated.fetch_add(moved, Ordering::Relaxed);
        self.chunks.fetch_add(1, Ordering::Relaxed);
        Some(DistChunk { tasks, epoch: e as u64 })
    }

    /// Whether unclaimed tasks remain anywhere (exact, not a hint: the
    /// counter is updated inside the claim's critical section).
    pub fn has_more(&self) -> bool {
        self.remaining.load(Ordering::Acquire) > 0
    }

    /// Unclaimed tasks remaining across all home queues.
    pub fn remaining(&self) -> usize {
        self.remaining.load(Ordering::Acquire)
    }

    /// A snapshot of the TAPER policy's sampled cost statistics, or
    /// `None` when the coordinator lock is contended — the §4.1.2
    /// equalizer's live µ/σ feed, best-effort by design.
    pub fn sampled_stats(&self) -> Option<crate::stats::OnlineStats> {
        self.coord.try_lock().ok().and_then(|c| c.policy.live_stats())
    }

    /// Chunks handed out so far.
    pub fn chunks_claimed(&self) -> u64 {
        self.chunks.load(Ordering::Relaxed)
    }

    /// Chunk re-assignments performed by the root.
    pub fn reassignments(&self) -> u64 {
        self.reassignments.load(Ordering::Relaxed)
    }

    /// Re-assignments that crossed a NUMA node boundary (the claimant
    /// and the chosen laggard on different nodes). Always ≤
    /// [`reassignments`](Self::reassignments); 0 when every worker
    /// shares one node.
    pub fn remote_reassignments(&self) -> u64 {
        self.remote_reassignments.load(Ordering::Relaxed)
    }

    /// Tasks claimed away from their home worker.
    pub fn migrated_tasks(&self) -> u64 {
        self.migrated.load(Ordering::Relaxed)
    }

    /// Fraction of tasks that stayed on their home worker (1.0 for an
    /// empty operation), matching
    /// [`DistResult::locality`](crate::dist_taper::DistResult).
    pub fn locality(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            1.0 - self.migrated_tasks() as f64 / self.total as f64
        }
    }

    /// Completed global epochs.
    pub fn epochs(&self) -> usize {
        self.coord.lock().expect("dist coordinator poisoned").epoch_times_us.len()
    }

    /// Caller-clock times of each global-epoch increment, in the order
    /// the increments happened. Monotone non-decreasing: increments
    /// are serialized by the coordinator lock and each stamp is
    /// clamped to its predecessor.
    pub fn epoch_times_us(&self) -> Vec<f64> {
        self.coord.lock().expect("dist coordinator poisoned").epoch_times_us.clone()
    }

    /// Total tasks in the operation.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Home-queue (worker) count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Unclaimed tasks currently in `worker`'s home queue.
    ///
    /// # Panics
    ///
    /// Panics if `worker >= workers`.
    pub fn home_len(&self, worker: usize) -> usize {
        assert!(worker < self.workers, "worker {worker} out of range");
        self.coord.lock().expect("dist coordinator poisoned").homes[worker].len()
    }

    /// Whether the front of `worker`'s home queue lies strictly below
    /// `limit` — i.e. whether a [`claim_bounded`](Self::claim_bounded)
    /// at that limit could draw at least one task right now. Crash
    /// recovery uses it to tell reachable work from work still gated
    /// behind an unpublished producer watermark (whose publication
    /// re-tokens the consumer anyway). Conservative after migration
    /// reorders a home queue, exactly like the claim's own front-peek.
    ///
    /// # Panics
    ///
    /// Panics if `worker >= workers`.
    pub fn home_ready_below(&self, worker: usize, limit: usize) -> bool {
        assert!(worker < self.workers, "worker {worker} out of range");
        self.coord.lock().expect("dist coordinator poisoned").homes[worker]
            .front()
            .is_some_and(|&t| t < limit)
    }

    /// Excuses a dead worker from epoch completion: subsequent epochs
    /// close without its tokens. Idempotent; part of the fault layer's
    /// recovery path (a dead worker would otherwise freeze the global
    /// epoch, and with it the checkpoint barrier, forever).
    ///
    /// # Panics
    ///
    /// Panics if `worker >= workers`.
    pub fn retire_worker(&self, worker: usize) {
        assert!(worker < self.workers, "worker {worker} out of range");
        self.coord.lock().expect("dist coordinator poisoned").retired[worker] = true;
    }

    /// Moves every unclaimed task from `dead`'s home queue into
    /// `heir`'s, returning how many moved. The self-delivery invariant
    /// holds — the heir is the claiming survivor adopting an orphaned
    /// home — and exactly-once is preserved (the move happens under
    /// the coordinator lock, pop-then-push like re-assignment).
    /// Adopted tasks count as migrated when claimed, exactly like
    /// re-assigned ones. Unlike the cv-gated re-assignment path this
    /// is unconditional: a dead worker's home must drain even on
    /// perfectly uniform costs.
    ///
    /// # Panics
    ///
    /// Panics if `dead >= workers` or `heir >= workers`.
    pub fn adopt_home(&self, dead: usize, heir: usize) -> usize {
        assert!(dead < self.workers, "worker {dead} out of range");
        assert!(heir < self.workers, "worker {heir} out of range");
        if dead == heir {
            return 0;
        }
        let mut c = self.coord.lock().expect("dist coordinator poisoned");
        let moved = c.homes[dead].len();
        while let Some(t) = c.homes[dead].pop_front() {
            c.homes[heir].push_back(t);
        }
        moved
    }

    /// Admits `worker` into the operation's partition: un-retires it
    /// (its tokens now count toward epoch completion) and seeds its
    /// home queue with half of the fullest home, returning how many
    /// tasks moved. Unlike the cv-gated in-protocol re-assignment this
    /// is unconditional — the §4.1.2 equalizer has already decided the
    /// migration, so the gate must not veto it. Idempotent for a
    /// worker that is already a member with a non-empty home (it only
    /// re-seeds when the admitted home is empty).
    ///
    /// # Panics
    ///
    /// Panics if `worker >= workers`.
    pub fn admit_worker(&self, worker: usize) -> usize {
        assert!(worker < self.workers, "worker {worker} out of range");
        let mut c = self.coord.lock().expect("dist coordinator poisoned");
        c.retired[worker] = false;
        if !c.homes[worker].is_empty() {
            return 0;
        }
        let donor = (0..self.workers)
            .filter(|&b| b != worker)
            .max_by_key(|&b| c.homes[b].len())
            .filter(|&b| c.homes[b].len() > 1);
        let Some(b) = donor else { return 0 };
        let steal = c.homes[b].len() / 2;
        for _ in 0..steal {
            let t = c.homes[b].pop_back().expect("len checked");
            c.homes[worker].push_back(t);
        }
        self.reassignments.fetch_add(1, Ordering::Relaxed);
        if self.node_of[b] != self.node_of[worker] {
            self.remote_reassignments.fetch_add(1, Ordering::Relaxed);
        }
        steal
    }

    /// Merges previously persisted cost statistics into the TAPER
    /// policy so a resumed operation restarts with the µ/σ (and so the
    /// chunk-size schedule) it had already learned before the crash.
    pub fn warm(&self, stats: &crate::stats::OnlineStats) {
        self.coord.lock().expect("dist coordinator poisoned").policy.observe_chunk(0, 0, stats);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// Drives a DistQueue with real threads; each worker spins a
    /// busy-loop proportional to the task's cost so laggards are
    /// laggards in wall time too. Returns per-worker claimed indices.
    fn drain_with_threads(costs: Arc<Vec<f64>>, workers: usize, spin: f64) -> Vec<Vec<usize>> {
        let q = Arc::new(DistQueue::new(costs.len(), workers));
        let t0 = std::time::Instant::now();
        let mut handles = Vec::new();
        for w in 0..workers {
            let q = Arc::clone(&q);
            let costs = Arc::clone(&costs);
            handles.push(std::thread::spawn(move || {
                let mut mine = Vec::new();
                while let Some(chunk) = q.claim(w, &costs, t0.elapsed().as_secs_f64() * 1e6) {
                    for &t in &chunk.tasks {
                        let steps = (costs[t] * spin).max(1.0) as u64;
                        let mut x = t as f64;
                        for _ in 0..steps {
                            x = x * 0.999_999 + 1e-9;
                        }
                        std::hint::black_box(x);
                        mine.push(t);
                    }
                }
                mine
            }));
        }
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    }

    fn assert_exactly_once(per_worker: &[Vec<usize>], n: usize) {
        let mut all: Vec<usize> = per_worker.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..n).collect::<Vec<_>>(), "tasks lost or duplicated");
    }

    #[test]
    fn uniform_costs_claim_exactly_once_with_full_locality() {
        let costs = Arc::new(vec![5.0; 600]);
        let q = Arc::new(DistQueue::new(costs.len(), 4));
        // Same protocol, checked through the public accessors after a
        // threaded drain.
        drop(q);
        let claimed = drain_with_threads(Arc::clone(&costs), 4, 10.0);
        assert_exactly_once(&claimed, 600);
        // Locality on uniform costs: every worker claimed exactly its
        // own block (the cv gate never opens).
        for (w, mine) in claimed.iter().enumerate() {
            assert!(
                mine.iter().all(|&t| owner_of(t, 600, 4) == w),
                "worker {w} executed a non-home task on uniform costs"
            );
        }
    }

    #[test]
    fn uniform_costs_never_reassign() {
        let costs = Arc::new(vec![5.0; 600]);
        let q = Arc::new(DistQueue::new(costs.len(), 4));
        let t0 = std::time::Instant::now();
        let mut handles = Vec::new();
        for w in 0..4 {
            let q = Arc::clone(&q);
            let costs = Arc::clone(&costs);
            handles.push(std::thread::spawn(move || {
                while q.claim(w, &costs, t0.elapsed().as_secs_f64() * 1e6).is_some() {}
            }));
        }
        for h in handles {
            h.join().expect("worker panicked");
        }
        assert_eq!(q.reassignments(), 0);
        assert_eq!(q.migrated_tasks(), 0);
        assert!((q.locality() - 1.0).abs() < 1e-12);
        assert!(!q.has_more());
    }

    #[test]
    fn concentrated_costs_force_reassignment_exactly_once() {
        // All the heavy work sits on worker 0's home block: the fast
        // workers' tokens race ahead and the root must migrate work,
        // while every task still executes exactly once.
        let p = 4;
        let n = 400;
        let mut costs = vec![1.0; n];
        for c in costs.iter_mut().take(n / p) {
            *c = 500.0;
        }
        let costs = Arc::new(costs);
        let q = Arc::new(DistQueue::new(n, p));
        let t0 = std::time::Instant::now();
        let mut handles = Vec::new();
        for w in 0..p {
            let q = Arc::clone(&q);
            let costs = Arc::clone(&costs);
            handles.push(std::thread::spawn(move || {
                let mut mine = Vec::new();
                while let Some(chunk) = q.claim(w, &costs, t0.elapsed().as_secs_f64() * 1e6) {
                    for &t in &chunk.tasks {
                        let steps = (costs[t] * 40.0) as u64;
                        let mut x = t as f64;
                        for _ in 0..steps {
                            x = x * 0.999_999 + 1e-9;
                        }
                        std::hint::black_box(x);
                        mine.push(t);
                    }
                }
                mine
            }));
        }
        let claimed: Vec<Vec<usize>> =
            handles.into_iter().map(|h| h.join().expect("worker panicked")).collect();
        assert_exactly_once(&claimed, n);
        assert!(q.reassignments() > 0, "laggard's work must be re-assigned");
        assert!(q.migrated_tasks() > 0);
        assert!(q.locality() < 1.0);
        assert!(q.locality() >= 0.0);
        let times = q.epoch_times_us();
        assert!(times.windows(2).all(|w| w[0] <= w[1]), "epoch increments out of order");
    }

    #[test]
    fn single_worker_degenerates() {
        let costs = Arc::new(vec![3.0; 64]);
        let claimed = drain_with_threads(Arc::clone(&costs), 1, 1.0);
        assert_exactly_once(&claimed, 64);
        let q = DistQueue::new(64, 1);
        let mut n = 0usize;
        while let Some(c) = q.claim(0, &costs, n as f64) {
            n += c.tasks.len();
        }
        assert_eq!(n, 64);
        assert_eq!(q.reassignments(), 0);
        assert_eq!(q.migrated_tasks(), 0);
        // With one worker every token completes its epoch.
        assert!(q.epochs() >= 1);
    }

    #[test]
    fn empty_queue_yields_nothing() {
        let q = DistQueue::new(0, 4);
        assert_eq!(q.claim(0, &[], 0.0), None);
        assert!(!q.has_more());
        assert_eq!(q.chunks_claimed(), 0);
        assert!((q.locality() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn post_exhaustion_claims_stay_none() {
        let costs = vec![1.0; 32];
        let q = DistQueue::new(32, 2);
        let mut got = 0usize;
        for w in [0usize, 1] {
            while let Some(c) = q.claim(w, &costs, 0.0) {
                got += c.tasks.len();
            }
        }
        assert_eq!(got, 32);
        let chunks = q.chunks_claimed();
        for _ in 0..1000 {
            assert_eq!(q.claim(0, &costs, 0.0), None);
            assert_eq!(q.claim(1, &costs, 0.0), None);
        }
        assert_eq!(q.chunks_claimed(), chunks, "stale claims counted as chunks");
        assert!(!q.has_more());
    }

    #[test]
    fn reassignment_prefers_same_node_laggard() {
        // Single-threaded protocol drive: 4 workers on 2 nodes
        // ({0,1} node 0, {2,3} node 1). Worker 0 tokens epoch 0 twice
        // while workers 1 and 2 both lag with equal home queues; once
        // the cv gate opens, the root must pick worker 1 (same node)
        // even though worker 2's queue is no shorter.
        let n = 400;
        let mut costs = vec![1.0; n];
        // Concentrated costs open the cv gate quickly.
        for c in costs.iter_mut().take(n / 4) {
            *c = 500.0;
        }
        let q = DistQueue::with_nodes(n, 4, vec![0, 0, 1, 1]);
        // Worker 3 tokens once so it is never an eligible laggard.
        let _ = q.claim(3, &costs, 0.0);
        // Worker 0 claims until the root performs its first
        // re-assignment, then stops: that choice must be the same-node
        // laggard (worker 1), i.e. not counted remote, even though the
        // remote worker 2's home queue is exactly as long.
        while q.claim(0, &costs, 0.0).is_some() {
            if q.reassignments() >= 1 {
                break;
            }
        }
        assert!(q.reassignments() >= 1, "gate never opened on concentrated costs");
        assert_eq!(
            q.remote_reassignments(),
            0,
            "first migration crossed a node despite a same-node laggard"
        );
    }

    #[test]
    fn remote_reassignment_counted_when_node_has_no_laggard() {
        // 2 workers on 2 different nodes: any re-assignment is remote
        // by construction, so the remote counter must track the total.
        let n = 300;
        let mut costs = vec![1.0; n];
        // Mix heavy tasks into worker 1's own home block so its
        // samples open the cv gate while worker 0 never tokens (and so
        // stays an eligible laggard).
        for t in (n / 2..n).step_by(4) {
            costs[t] = 500.0;
        }
        let q = DistQueue::with_nodes(n, 2, vec![0, 1]);
        while q.claim(1, &costs, 0.0).is_some() {}
        assert!(q.reassignments() >= 1, "fast worker never triggered the gate");
        assert_eq!(q.remote_reassignments(), q.reassignments());
    }

    #[test]
    fn partition_decomposes_over_members_only() {
        // 4 workers, but the allocator gave this op only {1, 3}: every
        // task must start in a member's home queue, the op must drain
        // through members alone, and epochs must close without tokens
        // from the non-members.
        let n = 200;
        let costs = vec![2.0; n];
        let q = DistQueue::with_partition(n, 4, vec![0; 4], &[1, 3]);
        assert_eq!(q.home_len(0), 0);
        assert_eq!(q.home_len(2), 0);
        assert_eq!(q.home_len(1) + q.home_len(3), n);
        let mut got = 0usize;
        let mut active = true;
        while active {
            active = false;
            for w in [1usize, 3] {
                if let Some(c) = q.claim(w, &costs, got as f64) {
                    got += c.tasks.len();
                    active = true;
                }
            }
        }
        assert_eq!(got, n);
        assert!(q.epochs() >= 1, "epochs must close without non-member tokens");
    }

    #[test]
    fn admitted_worker_inherits_half_the_fullest_home() {
        let n = 128;
        let costs = vec![1.0; n];
        let q = DistQueue::with_partition(n, 4, vec![0; 4], &[0]);
        assert_eq!(q.home_len(0), n);
        let moved = q.admit_worker(2);
        assert_eq!(moved, n / 2);
        assert_eq!(q.home_len(2), n / 2);
        // The admitted worker can now claim and the op still drains
        // exactly once.
        let mut got = Vec::new();
        let mut active = true;
        while active {
            active = false;
            for w in [0usize, 2] {
                if let Some(c) = q.claim(w, &costs, got.len() as f64) {
                    got.extend(c.tasks);
                    active = true;
                }
            }
        }
        got.sort_unstable();
        assert_eq!(got, (0..n).collect::<Vec<_>>());
        // Idempotent once the home is non-empty.
        let q2 = DistQueue::with_partition(n, 2, vec![0; 2], &[0, 1]);
        assert_eq!(q2.admit_worker(1), 0, "member with work must not re-seed");
    }

    #[test]
    fn bounded_claims_stop_at_the_watermark() {
        // One worker owns all 64 tasks (sorted home queue). With the
        // limit at 10, claims must drain exactly tasks 0..10 and then
        // report None while has_more() stays true — blocked, not
        // exhausted. Raising the limit drains the rest.
        let n = 64;
        let costs = vec![1.0; n];
        let q = DistQueue::new(n, 1);
        let mut got = Vec::new();
        while let Some(c) = q.claim_bounded(0, &costs, 0.0, 10) {
            got.extend(c.tasks);
        }
        assert_eq!(got, (0..10).collect::<Vec<_>>());
        assert!(q.has_more(), "blocked must not read as exhausted");
        assert!(!q.home_ready_below(0, 10));
        assert!(q.home_ready_below(0, 11));
        while let Some(c) = q.claim_bounded(0, &costs, 0.0, usize::MAX) {
            got.extend(c.tasks);
        }
        got.sort_unstable();
        assert_eq!(got, (0..n).collect::<Vec<_>>());
        assert!(!q.has_more());
    }

    #[test]
    fn epoch_chunks_follow_global_sequence() {
        // A single-threaded drain alternating workers reproduces the
        // simulator's chunk-size law: sizes follow the global TAPER
        // sequence clamped per home queue, so they never grow.
        let n = 512;
        let p = 4;
        let costs = vec![2.0; n];
        let q = DistQueue::new(n, p);
        let mut sizes = Vec::new();
        let mut active = true;
        while active {
            active = false;
            for w in 0..p {
                if let Some(c) = q.claim(w, &costs, sizes.len() as f64) {
                    sizes.push(c.tasks.len());
                    active = true;
                }
            }
        }
        assert_eq!(sizes.iter().sum::<usize>(), n);
        assert!(sizes.len() >= p, "at least one chunk per home");
    }
}
