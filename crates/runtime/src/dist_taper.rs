//! Distributed TAPER (§4.1.1).
//!
//! "In the distributed TAPER algorithm the p processors are logically
//! connected as a binary tree with p leaves. All processors start in
//! epoch 0. When a processor begins executing a chunk it sends its
//! current epoch value (called a token) to its parent … When the root
//! receives p tokens from the same epoch, it increments the global
//! epoch value and broadcasts … Processors compete for the p chunks of
//! each epoch. If processor a can get two tokens of value i to the root
//! before processor b can send one token of value i, then the root will
//! re-assign processor b's chunk of size K_i to processor a. … If task
//! costs are independent then we expect most tasks to remain on the
//! processor owning them at the beginning of the parallel operation;
//! thus, the algorithm reduces task transfer costs and maintains
//! communication locality."
//!
//! The epoch tokens earn a second job in the real threaded backend:
//! every global-epoch increment is a consistent-cut barrier (all p
//! workers have tokened in for the previous epoch), so the
//! [`checkpoint`](crate::checkpoint) layer snapshots at each epoch
//! boundary in addition to its claim-count cadence.

use crate::chunking::{ChunkPolicy, Taper};
use orchestra_machine::{EventQueue, MachineConfig, RunStats};
use std::collections::VecDeque;

/// Result of a distributed-TAPER run.
#[derive(Debug, Clone)]
pub struct DistResult {
    /// Completion time (µs).
    pub finish: f64,
    /// Per-processor stats.
    pub stats: RunStats,
    /// Tasks that executed away from their home processor.
    pub migrated_tasks: u64,
    /// Chunk re-assignments performed by the root.
    pub reassignments: u64,
    /// Fraction of tasks that stayed on their home processor.
    pub locality: f64,
    /// Simulated time of each global-epoch increment at the root, in
    /// the order the increments happened (so the protocol's epoch
    /// progression is observable and testable).
    pub epoch_times: Vec<f64>,
}

impl DistResult {
    /// Number of completed global epochs.
    pub fn epochs(&self) -> usize {
        self.epoch_times.len()
    }
}

#[derive(Debug)]
enum Ev {
    /// Processor became idle and looks for its next chunk.
    Idle(usize),
    /// A token (proc, epoch) reached the root.
    Token(usize, u64),
    /// Stolen tasks arrive at a processor.
    Delivery(usize, Vec<usize>),
    /// The root's epoch-increment broadcast reached a processor.
    Broadcast(usize, u64),
}

/// Per-hop cost of a control message. Tokens are 8-byte values that the
/// tree nodes *combine* ("possibly combining messages from both
/// children"), piggybacked on the regular traffic — far cheaper than a
/// full software-latency data message.
fn token_hop_cost(cfg: &MachineConfig) -> f64 {
    cfg.alpha * 0.1 + cfg.hop
}

/// Latency for a token to climb the binary tree from leaf `q` to the
/// root: one combined control hop per tree level traversed.
fn token_latency(cfg: &MachineConfig, q: usize) -> f64 {
    let mut lat = 0.0;
    let mut node = q;
    while node != 0 {
        node /= 2;
        lat += token_hop_cost(cfg);
    }
    lat
}

/// Root-to-leaves epoch broadcast: one combined control hop per level.
fn broadcast_latency(cfg: &MachineConfig, p: usize) -> f64 {
    (p.max(2) as f64).log2().ceil() * token_hop_cost(cfg)
}

/// Simulates one parallel operation under distributed TAPER.
///
/// Tasks start block-decomposed onto their home processors
/// (owner-computes); each processor draws decreasing-size chunks from
/// its *local* queue; the root re-assigns work from laggards to
/// fast processors when their epoch tokens race ahead.
pub fn simulate_dist_taper(
    cfg: &MachineConfig,
    p: usize,
    costs: &[f64],
    bytes_per_task: u64,
) -> DistResult {
    simulate_dist_taper_at(cfg, p, costs, bytes_per_task, 0.0)
}

/// Like [`simulate_dist_taper`], starting at an absolute time (used by
/// the dataflow executor when the operation waits on its inputs).
pub fn simulate_dist_taper_at(
    cfg: &MachineConfig,
    p: usize,
    costs: &[f64],
    bytes_per_task: u64,
    start_time: f64,
) -> DistResult {
    let p = p.max(1);
    let n = costs.len();
    let mut stats = RunStats::new(p);
    let mut queues: Vec<VecDeque<usize>> = vec![VecDeque::new(); p];
    for i in 0..n {
        queues[crate::par_op::owner_of(i, n, p)].push_back(i);
    }
    let mut policy = Taper::new();
    let mut remaining_global = n;

    // The paper's protocol: a *global* epoch maintained by the root.
    // Every chunk start (and every starving work request) sends a token
    // carrying the processor's current epoch. A second token of epoch e
    // from one processor before another's first lets the root re-assign
    // work from the laggard; once every processor has sent an epoch-e
    // token the root increments the epoch and broadcasts.
    let mut global_epoch: usize = 0;
    let mut counts: Vec<Vec<u32>> = vec![vec![0; p]]; // counts[e][proc]
    let mut local_epoch: Vec<usize> = vec![0; p];
    let mut starving: Vec<bool> = vec![false; p];
    let mut busy: Vec<bool> = vec![false; p];

    let mut migrated = 0u64;
    let mut reassignments = 0u64;
    let mut epoch_times: Vec<f64> = Vec::new();
    let mut finish: f64 = start_time;

    let mut q: EventQueue<Ev> = EventQueue::new();
    for proc in 0..p {
        q.push(start_time, Ev::Idle(proc));
    }

    while let Some((t, ev)) = q.pop() {
        match ev {
            Ev::Idle(me) => {
                busy[me] = false;
                let epoch = local_epoch[me];
                if queues[me].is_empty() {
                    // Work request: keep tokening the current epoch so
                    // the root can feed us (but only while work exists).
                    if remaining_global > 0 && !starving[me] {
                        starving[me] = true;
                        q.push(t + token_latency(cfg, me), Ev::Token(me, epoch as u64));
                    }
                    continue;
                }
                starving[me] = false;
                // Draw the epoch's chunk from the local queue: the
                // *global* TAPER sequence clamped to the home queue
                // (see [`Taper::epoch_chunk`]), so every processor's
                // epoch-e chunk has comparable size — that is what
                // makes token frequency a speed signal ("the
                // processors compete for the p chunks of each epoch").
                let k =
                    policy.epoch_chunk(n - remaining_global, remaining_global, p, queues[me].len());
                let mut work = 0.0;
                let mut moved = 0u64;
                for _ in 0..k {
                    let task = queues[me].pop_front().expect("nonempty");
                    work += costs[task];
                    policy.observe(task, costs[task]);
                    if crate::par_op::owner_of(task, n, p) != me {
                        moved += 1;
                    }
                }
                migrated += moved;
                remaining_global -= k;
                busy[me] = true;
                q.push(t + token_latency(cfg, me), Ev::Token(me, epoch as u64));
                let end = t + cfg.sched_overhead + work;
                stats.record_chunk(me, k as u64, work, end);
                finish = finish.max(end);
                q.push(end, Ev::Idle(me));
            }
            Ev::Token(from, epoch) => {
                let e = epoch as usize;
                if counts.len() <= e {
                    counts.resize(e + 1, vec![0; p]);
                }
                counts[e][from] += 1;
                // Re-assignment: `from` has tokened epoch e twice before
                // some processor's first — the laggard's pending work
                // moves to `from`. Gated on the sampled coefficient of
                // variation ([`Taper::reassign_signal`]): with
                // (near-)uniform costs there is no load imbalance to
                // repair, and an ungated root would steal on mere
                // token-latency asymmetry between shallow and deep
                // tree leaves, defeating the locality the scheme
                // exists to preserve.
                if counts[e][from] >= 2 && policy.reassign_signal(p) {
                    let laggard = (0..p)
                        .filter(|&b| b != from && counts[e][b] == 0 && !queues[b].is_empty())
                        .max_by_key(|&b| queues[b].len());
                    if let Some(b) = laggard {
                        let steal = queues[b].len().div_ceil(2);
                        let tasks: Vec<usize> = (0..steal)
                            .map(|_| queues[b].pop_back().expect("len checked"))
                            .collect();
                        reassignments += 1;
                        let bytes = tasks.len() as u64 * bytes_per_task;
                        let delay = cfg.msg_time(b, from, bytes);
                        q.push(t + delay, Ev::Delivery(from, tasks));
                    }
                }
                // Epoch completion: every processor has tokened e.
                if e == global_epoch && counts[e].iter().all(|&c| c > 0) {
                    global_epoch += 1;
                    epoch_times.push(t);
                    if counts.len() <= global_epoch {
                        counts.resize(global_epoch + 1, vec![0; p]);
                    }
                    let bcast = broadcast_latency(cfg, p);
                    for proc in 0..p {
                        q.push(t + bcast, Ev::Broadcast(proc, global_epoch as u64));
                    }
                }
            }
            Ev::Broadcast(proc, epoch) => {
                let e = epoch as usize;
                if e > local_epoch[proc] {
                    local_epoch[proc] = e;
                    // Starving processors renew their work request in
                    // the new epoch.
                    if starving[proc] && !busy[proc] && remaining_global > 0 {
                        q.push(q.now() + token_latency(cfg, proc), Ev::Token(proc, e as u64));
                    }
                }
            }
            Ev::Delivery(to, tasks) => {
                for task in tasks {
                    queues[to].push_back(task);
                }
                if !busy[to] {
                    starving[to] = false;
                    q.push_after(0.0, Ev::Idle(to));
                }
            }
        }
    }

    let locality = if n == 0 { 1.0 } else { 1.0 - migrated as f64 / n as f64 };
    DistResult { finish, stats, migrated_tasks: migrated, reassignments, locality, epoch_times }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_machine::CostDistribution;

    #[test]
    fn all_tasks_execute_exactly_once() {
        let costs = CostDistribution::HeavyTail { mean: 10.0, sigma: 1.2 }.sample(800, 5);
        let r = simulate_dist_taper(&MachineConfig::ncube2(16), 16, &costs, 128);
        assert_eq!(r.stats.total_tasks(), 800);
        let total: f64 = costs.iter().sum();
        assert!((r.stats.total_busy() - total).abs() < 1e-6);
    }

    #[test]
    fn independent_costs_keep_locality() {
        // "If task costs are independent then we expect most tasks to
        // remain on the processor owning them."
        let costs = CostDistribution::Uniform { mean: 20.0, spread: 0.2 }.sample(2048, 9);
        let r = simulate_dist_taper(&MachineConfig::ncube2(32), 32, &costs, 128);
        assert!(r.locality > 0.8, "locality {} too low for near-uniform costs", r.locality);
    }

    #[test]
    fn concentrated_cost_triggers_reassignment() {
        // All the cost sits on processor 0's block: the scheme must
        // move work (degenerating toward centralized TAPER).
        let p = 8;
        let n = 512;
        let mut costs = vec![1.0; n];
        for c in costs.iter_mut().take(n / p) {
            *c = 200.0;
        }
        let cfg = MachineConfig::ncube2(p);
        let r = simulate_dist_taper(&cfg, p, &costs, 64);
        assert!(r.reassignments > 0, "laggard's chunks must be re-assigned");
        // Compare with no-stealing: proc 0 alone does 64×200.
        let local_only: f64 = 64.0 * 200.0;
        assert!(
            r.finish < local_only,
            "stealing must beat local-only ({} !< {local_only})",
            r.finish
        );
    }

    #[test]
    fn deterministic() {
        let costs = CostDistribution::Bimodal { mean: 5.0, heavy_frac: 0.2, heavy_mult: 10.0 }
            .sample(300, 21);
        let a = simulate_dist_taper(&MachineConfig::ncube2(8), 8, &costs, 64);
        let b = simulate_dist_taper(&MachineConfig::ncube2(8), 8, &costs, 64);
        assert_eq!(a.finish, b.finish);
        assert_eq!(a.reassignments, b.reassignments);
    }

    #[test]
    fn single_processor_degenerates() {
        let costs = vec![3.0; 30];
        let r = simulate_dist_taper(&MachineConfig::ncube2(1), 1, &costs, 64);
        assert_eq!(r.migrated_tasks, 0);
        assert_eq!(r.reassignments, 0);
        assert!((r.stats.total_busy() - 90.0).abs() < 1e-9);
    }

    #[test]
    fn uniform_costs_never_migrate() {
        // Zero-variance work gives the root no imbalance signal, so
        // every task must execute on its home processor.
        for p in [2usize, 4, 8, 16, 32] {
            for n in [64usize, 256, 1024] {
                let costs = vec![10.0; n];
                let r = simulate_dist_taper(&MachineConfig::ncube2(p), p, &costs, 64);
                assert_eq!(r.migrated_tasks, 0, "p={p} n={n} migrated");
                assert_eq!(r.reassignments, 0, "p={p} n={n} reassigned");
                assert!((r.locality - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn epochs_advance_monotonically() {
        let costs = CostDistribution::HeavyTail { mean: 10.0, sigma: 1.2 }.sample(800, 5);
        let r = simulate_dist_taper(&MachineConfig::ncube2(16), 16, &costs, 128);
        assert!(r.epochs() >= 1, "an 800-task run must complete at least one epoch");
        assert!(
            r.epoch_times.windows(2).all(|w| w[0] <= w[1]),
            "epoch increments out of order: {:?}",
            r.epoch_times
        );
        // The last epoch's tokens climb the tree after the final chunk
        // completes, so increments may trail `finish` by control
        // latency — but never by more than one token round trip.
        let slack = token_latency(&MachineConfig::ncube2(16), 15)
            + broadcast_latency(&MachineConfig::ncube2(16), 16);
        assert!(
            r.epoch_times.iter().all(|&t| t >= 0.0 && t <= r.finish + slack),
            "epoch increments must happen within the run (+control tail)"
        );
        // Offset runs shift epoch times with the clock.
        let shifted = simulate_dist_taper_at(&MachineConfig::ncube2(16), 16, &costs, 128, 500.0);
        assert!(shifted.epoch_times.iter().all(|&t| t >= 500.0));
        assert_eq!(shifted.epochs(), r.epochs());
    }

    #[test]
    fn token_latency_grows_with_depth() {
        let cfg = MachineConfig::ncube2(64);
        assert_eq!(token_latency(&cfg, 0), 0.0, "root pays nothing");
        assert!(token_latency(&cfg, 63) > token_latency(&cfg, 1));
    }
}
