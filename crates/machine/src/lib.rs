#![warn(missing_docs)]
//! # orchestra-machine
//!
//! A deterministic discrete-event simulator of a distributed-memory
//! multiprocessor, standing in for the paper's nCUBE-2 testbed.
//!
//! The paper's evaluation (§5) measures *scheduling efficiency vs
//! processor count*; what matters for reproducing it is the decision
//! environment the runtime sees — message latency/bandwidth/hops,
//! scheduling overhead, and task-time distributions — all of which this
//! crate models:
//!
//! * [`config`] — machine parameters (hypercube topology, α/β/hop
//!   message costs, scheduling overhead);
//! * [`event`] — a deterministic discrete-event queue;
//! * [`procs`] — per-processor accounting (busy time, utilization,
//!   imbalance);
//! * [`workload`] — seeded task-cost distributions (constant, uniform,
//!   bimodal "masked-irregularity", heavy-tail).
//!
//! Substitution note (see `DESIGN.md`): simulated time replaces
//! wall-clock time; the runtime algorithms in `orchestra-runtime`
//! execute unchanged against this model.

pub mod config;
pub mod event;
pub mod procs;
pub mod workload;

pub use config::{MachineConfig, Topology};
pub use event::EventQueue;
pub use procs::{ProcStats, RunStats};
pub use workload::{summarize, try_summarize, CostDistribution, CostSummary};
