//! Processor bookkeeping: busy time, task counts, utilization.

/// Per-processor execution statistics.
#[derive(Debug, Clone, Default)]
pub struct ProcStats {
    /// Accumulated busy time (µs).
    pub busy: f64,
    /// Tasks executed.
    pub tasks: u64,
    /// Chunks (scheduling events) processed.
    pub chunks: u64,
    /// Time the processor last became free.
    pub free_at: f64,
}

/// Statistics for a whole simulated machine run.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Per-processor stats.
    pub procs: Vec<ProcStats>,
    /// Simulated completion time (µs).
    pub makespan: f64,
}

impl RunStats {
    /// Creates stats for `p` processors.
    pub fn new(p: usize) -> Self {
        RunStats { procs: vec![ProcStats::default(); p], makespan: 0.0 }
    }

    /// Assembles stats from per-processor records gathered elsewhere —
    /// the constructor real (non-simulated) execution backends use
    /// after each worker has accumulated its own [`ProcStats`].
    pub fn from_procs(procs: Vec<ProcStats>, makespan: f64) -> Self {
        RunStats { procs, makespan }
    }

    /// Records that processor `p` executed `tasks` tasks of total
    /// duration `busy`, finishing at `end`.
    pub fn record_chunk(&mut self, p: usize, tasks: u64, busy: f64, end: f64) {
        let s = &mut self.procs[p];
        s.busy += busy;
        s.tasks += tasks;
        s.chunks += 1;
        s.free_at = s.free_at.max(end);
        self.makespan = self.makespan.max(end);
    }

    /// Total busy time across processors.
    pub fn total_busy(&self) -> f64 {
        self.procs.iter().map(|s| s.busy).sum()
    }

    /// Total tasks executed.
    pub fn total_tasks(&self) -> u64 {
        self.procs.iter().map(|s| s.tasks).sum()
    }

    /// Machine utilization: busy time / (p · makespan).
    pub fn utilization(&self) -> f64 {
        if self.makespan <= 0.0 {
            return 0.0;
        }
        self.total_busy() / (self.procs.len() as f64 * self.makespan)
    }

    /// Load imbalance: max over processors of busy / mean busy.
    pub fn imbalance(&self) -> f64 {
        let mean = self.total_busy() / self.procs.len() as f64;
        if mean <= 0.0 {
            return 1.0;
        }
        self.procs.iter().map(|s| s.busy).fold(0.0f64, f64::max) / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate() {
        let mut r = RunStats::new(2);
        r.record_chunk(0, 5, 50.0, 50.0);
        r.record_chunk(1, 5, 30.0, 30.0);
        r.record_chunk(1, 2, 20.0, 50.0);
        assert_eq!(r.total_tasks(), 12);
        assert_eq!(r.total_busy(), 100.0);
        assert_eq!(r.makespan, 50.0);
        assert!((r.utilization() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn utilization_reflects_idle_time() {
        let mut r = RunStats::new(2);
        r.record_chunk(0, 1, 100.0, 100.0);
        // proc 1 idle the whole time.
        assert!((r.utilization() - 0.5).abs() < 1e-9);
        assert!((r.imbalance() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_run_is_zero_utilization() {
        let r = RunStats::new(4);
        assert_eq!(r.utilization(), 0.0);
    }
}
