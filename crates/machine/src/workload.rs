//! Synthetic task-cost generators.
//!
//! The runtime's behaviour depends on the *distribution* of task
//! execution times: regular operations have low variance, irregular
//! ones (the climate model's cloud physics, Psirrfan's masked columns)
//! have high variance and heavy tails. These generators draw
//! deterministic cost vectors from seeded RNGs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A task-cost distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CostDistribution {
    /// Every task costs exactly `mean`.
    Constant {
        /// The fixed cost (µs).
        mean: f64,
    },
    /// Uniform in `[mean·(1−spread), mean·(1+spread)]`.
    Uniform {
        /// Mean cost (µs).
        mean: f64,
        /// Half-width as a fraction of the mean (0‥1).
        spread: f64,
    },
    /// A two-population mixture: a fraction `heavy_frac` of tasks cost
    /// `heavy_mult`× the base mean — the shape of masked/conditional
    /// irregularity (cloud physics, `mask[col] <> 0` columns).
    Bimodal {
        /// Base mean cost (µs).
        mean: f64,
        /// Fraction of heavy tasks (0‥1).
        heavy_frac: f64,
        /// Cost multiplier of heavy tasks.
        heavy_mult: f64,
    },
    /// Log-normal-like heavy tail: `mean · exp(σ·Z − σ²/2)`.
    HeavyTail {
        /// Mean cost (µs).
        mean: f64,
        /// Log-space standard deviation.
        sigma: f64,
    },
    /// A bimodal mixture whose heavy tasks appear in contiguous *runs*
    /// of ~`cluster` tasks — the spatial shape of real irregularity
    /// (dense image regions, convectively active grid cells). Static
    /// block decompositions land whole clusters on single processors;
    /// dynamic schedulers re-balance them.
    ClusteredBimodal {
        /// Mean of the light population (µs).
        mean: f64,
        /// Fraction of heavy tasks (0‥1).
        heavy_frac: f64,
        /// Cost multiplier of heavy tasks.
        heavy_mult: f64,
        /// Expected run length of heavy clusters.
        cluster: usize,
    },
}

impl CostDistribution {
    /// Draws `n` task costs deterministically from `seed`.
    pub fn sample(&self, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        if let CostDistribution::ClusteredBimodal { mean, heavy_frac, heavy_mult, cluster } = *self
        {
            // Markov run model: switch into a heavy run with the rate
            // that makes the long-run heavy fraction come out right.
            let cluster = cluster.max(1) as f64;
            let p_exit = 1.0 / cluster;
            let p_enter = p_exit * heavy_frac / (1.0 - heavy_frac).max(1e-9);
            let mut heavy = rng.gen::<f64>() < heavy_frac;
            let mut out = Vec::with_capacity(n);
            for _ in 0..n {
                out.push(if heavy { mean * heavy_mult } else { mean });
                let flip: f64 = rng.gen();
                heavy = if heavy { flip >= p_exit } else { flip < p_enter };
            }
            return out;
        }
        (0..n).map(|_| self.draw(&mut rng)).collect()
    }

    /// Draws one cost.
    pub fn draw(&self, rng: &mut StdRng) -> f64 {
        match *self {
            CostDistribution::Constant { mean } => mean,
            CostDistribution::Uniform { mean, spread } => {
                let lo = mean * (1.0 - spread);
                let hi = mean * (1.0 + spread);
                rng.gen_range(lo..=hi)
            }
            CostDistribution::Bimodal { mean, heavy_frac, heavy_mult } => {
                if rng.gen::<f64>() < heavy_frac {
                    mean * heavy_mult
                } else {
                    mean
                }
            }
            CostDistribution::HeavyTail { mean, sigma } => {
                // Box–Muller normal.
                let u1: f64 = rng.gen_range(1e-12..1.0);
                let u2: f64 = rng.gen::<f64>();
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                mean * (sigma * z - sigma * sigma / 2.0).exp()
            }
            // `draw` cannot carry cluster state; fall back to the
            // uncorrelated mixture (sample() handles clustering).
            CostDistribution::ClusteredBimodal { mean, heavy_frac, heavy_mult, .. } => {
                if rng.gen::<f64>() < heavy_frac {
                    mean * heavy_mult
                } else {
                    mean
                }
            }
        }
    }

    /// The distribution's analytic mean (µs).
    pub fn mean(&self) -> f64 {
        match *self {
            CostDistribution::Constant { mean } | CostDistribution::Uniform { mean, .. } => mean,
            CostDistribution::Bimodal { mean, heavy_frac, heavy_mult } => {
                mean * (1.0 - heavy_frac) + mean * heavy_mult * heavy_frac
            }
            CostDistribution::HeavyTail { mean, .. } => mean,
            CostDistribution::ClusteredBimodal { mean, heavy_frac, heavy_mult, .. } => {
                mean * (1.0 - heavy_frac) + mean * heavy_mult * heavy_frac
            }
        }
    }
}

/// Summary statistics of a cost vector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostSummary {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Coefficient of variation σ/µ.
    pub cv: f64,
    /// Total work.
    pub total: f64,
}

impl CostSummary {
    /// The summary of an empty cost vector: every statistic is zero.
    /// Callers that must distinguish "no tasks" from "all tasks free"
    /// should use [`try_summarize`] instead.
    pub const EMPTY: CostSummary = CostSummary { mean: 0.0, std_dev: 0.0, cv: 0.0, total: 0.0 };
}

/// Computes summary statistics. An empty slice yields
/// [`CostSummary::EMPTY`] (all zeros) — explicitly, not as an artifact
/// of division guards; use [`try_summarize`] when the empty case needs
/// to be handled rather than propagated as zeros.
pub fn summarize(costs: &[f64]) -> CostSummary {
    try_summarize(costs).unwrap_or(CostSummary::EMPTY)
}

/// Computes summary statistics, or `None` for an empty slice.
pub fn try_summarize(costs: &[f64]) -> Option<CostSummary> {
    if costs.is_empty() {
        return None;
    }
    let n = costs.len() as f64;
    let total: f64 = costs.iter().sum();
    let mean = total / n;
    let var = costs.iter().map(|c| (c - mean).powi(2)).sum::<f64>() / n;
    let std_dev = var.sqrt();
    Some(CostSummary { mean, std_dev, cv: if mean > 0.0 { std_dev / mean } else { 0.0 }, total })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_has_zero_cv() {
        let c = CostDistribution::Constant { mean: 5.0 }.sample(100, 1);
        let s = summarize(&c);
        assert_eq!(s.cv, 0.0);
        assert_eq!(s.total, 500.0);
    }

    #[test]
    fn empty_costs_are_an_explicit_zero_summary() {
        assert_eq!(try_summarize(&[]), None);
        let s = summarize(&[]);
        assert_eq!(s, CostSummary::EMPTY);
        assert_eq!((s.mean, s.std_dev, s.cv, s.total), (0.0, 0.0, 0.0, 0.0));
    }

    #[test]
    fn sampling_is_deterministic() {
        let d = CostDistribution::HeavyTail { mean: 10.0, sigma: 1.0 };
        assert_eq!(d.sample(50, 42), d.sample(50, 42));
        assert_ne!(d.sample(50, 42), d.sample(50, 43));
    }

    #[test]
    fn bimodal_mean_matches_analytic() {
        let d = CostDistribution::Bimodal { mean: 10.0, heavy_frac: 0.3, heavy_mult: 5.0 };
        let s = summarize(&d.sample(200_000, 7));
        assert!((s.mean - d.mean()).abs() / d.mean() < 0.02, "{} vs {}", s.mean, d.mean());
        assert!(s.cv > 0.5, "bimodal should be irregular");
    }

    #[test]
    fn heavy_tail_mean_approx_preserved() {
        let d = CostDistribution::HeavyTail { mean: 20.0, sigma: 0.8 };
        let s = summarize(&d.sample(400_000, 11));
        assert!((s.mean - 20.0).abs() / 20.0 < 0.05, "sample mean {}", s.mean);
        assert!(s.cv > 0.5);
    }

    #[test]
    fn uniform_bounds_respected() {
        let d = CostDistribution::Uniform { mean: 10.0, spread: 0.5 };
        let c = d.sample(10_000, 3);
        assert!(c.iter().all(|&x| (5.0..=15.0).contains(&x)));
    }

    #[test]
    fn all_costs_positive() {
        for d in [
            CostDistribution::Constant { mean: 1.0 },
            CostDistribution::Uniform { mean: 1.0, spread: 0.9 },
            CostDistribution::Bimodal { mean: 1.0, heavy_frac: 0.5, heavy_mult: 10.0 },
            CostDistribution::HeavyTail { mean: 1.0, sigma: 1.5 },
        ] {
            assert!(d.sample(10_000, 5).iter().all(|&c| c > 0.0), "{d:?}");
        }
    }
}
