//! Machine model configuration.
//!
//! The paper's testbed is an nCUBE-2: a distributed-memory hypercube
//! with up to 1024 processors. The simulator reproduces the decision
//! environment of the runtime system: per-message latency, per-byte
//! bandwidth cost, per-hop routing delay, and per-scheduling-event
//! overhead. All times are microseconds.

use std::fmt;

/// Interconnect topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// Hypercube: distance = Hamming distance of processor ids (the
    /// nCUBE-2 interconnect).
    Hypercube,
    /// Uniform distance 1 between distinct processors.
    FullyConnected,
}

/// Simulated machine parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineConfig {
    /// Number of processors (`p`).
    pub processors: usize,
    /// Interconnect topology.
    pub topology: Topology,
    /// Per-message software latency (µs). The nCUBE-2's was ≈ 100 µs.
    pub alpha: f64,
    /// Per-byte transfer time (µs/byte). ≈ 0.45 µs/byte on the nCUBE-2.
    pub beta: f64,
    /// Per-hop routing delay (µs).
    pub hop: f64,
    /// Overhead charged per scheduling event (chunk dispatch), µs.
    pub sched_overhead: f64,
}

impl MachineConfig {
    /// An nCUBE-2-like configuration with `p` processors.
    ///
    /// # Panics
    ///
    /// Panics if `p` is zero.
    pub fn ncube2(p: usize) -> Self {
        assert!(p > 0, "machine needs at least one processor");
        MachineConfig {
            processors: p,
            topology: Topology::Hypercube,
            alpha: 100.0,
            beta: 0.45,
            hop: 5.0,
            sched_overhead: 20.0,
        }
    }

    /// An idealized machine with negligible communication (useful for
    /// isolating scheduling behaviour in tests).
    pub fn ideal(p: usize) -> Self {
        assert!(p > 0, "machine needs at least one processor");
        MachineConfig {
            processors: p,
            topology: Topology::FullyConnected,
            alpha: 0.0,
            beta: 0.0,
            hop: 0.0,
            sched_overhead: 0.0,
        }
    }

    /// Hop distance between two processors.
    pub fn distance(&self, a: usize, b: usize) -> u32 {
        if a == b {
            return 0;
        }
        match self.topology {
            Topology::Hypercube => (a ^ b).count_ones(),
            Topology::FullyConnected => 1,
        }
    }

    /// Time (µs) for a message of `bytes` from `a` to `b`.
    pub fn msg_time(&self, a: usize, b: usize, bytes: u64) -> f64 {
        if a == b {
            return 0.0;
        }
        self.alpha + self.beta * bytes as f64 + self.hop * self.distance(a, b) as f64
    }

    /// Diameter of the network in hops.
    pub fn diameter(&self) -> u32 {
        match self.topology {
            Topology::Hypercube => (usize::BITS
                - self.processors.next_power_of_two().leading_zeros())
            .saturating_sub(1),
            Topology::FullyConnected => 1,
        }
    }

    /// Time to broadcast `bytes` from one processor to all others along
    /// a binomial tree (log₂ p rounds).
    pub fn broadcast_time(&self, bytes: u64) -> f64 {
        let rounds = (self.processors.max(2) as f64).log2().ceil();
        rounds * (self.alpha + self.beta * bytes as f64 + self.hop)
    }
}

impl fmt::Display for MachineConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}×{:?} (α={}µs β={}µs/B hop={}µs sched={}µs)",
            self.processors, self.topology, self.alpha, self.beta, self.hop, self.sched_overhead
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hypercube_distance_is_hamming() {
        let m = MachineConfig::ncube2(16);
        assert_eq!(m.distance(0b0000, 0b1111), 4);
        assert_eq!(m.distance(0b0101, 0b0100), 1);
        assert_eq!(m.distance(3, 3), 0);
    }

    #[test]
    fn msg_time_zero_for_self() {
        let m = MachineConfig::ncube2(8);
        assert_eq!(m.msg_time(2, 2, 1000), 0.0);
        assert!(m.msg_time(0, 1, 0) >= m.alpha);
    }

    #[test]
    fn msg_time_grows_with_bytes_and_distance() {
        let m = MachineConfig::ncube2(16);
        assert!(m.msg_time(0, 1, 100) < m.msg_time(0, 1, 10_000));
        assert!(m.msg_time(0, 1, 100) < m.msg_time(0, 15, 100));
    }

    #[test]
    fn diameter_of_hypercube() {
        assert_eq!(MachineConfig::ncube2(1024).diameter(), 10);
        assert_eq!(MachineConfig::ncube2(2).diameter(), 1);
        assert_eq!(MachineConfig::ideal(64).diameter(), 1);
    }

    #[test]
    fn ideal_machine_communicates_free() {
        let m = MachineConfig::ideal(4);
        assert_eq!(m.msg_time(0, 3, 1_000_000), 0.0);
    }

    #[test]
    fn broadcast_scales_logarithmically() {
        let small = MachineConfig::ncube2(4).broadcast_time(8);
        let large = MachineConfig::ncube2(1024).broadcast_time(8);
        assert!(large > small);
        assert!(large < 11.0 * (100.0 + 0.45 * 8.0 + 5.0));
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn zero_processors_panics() {
        MachineConfig::ncube2(0);
    }
}
