//! A deterministic discrete-event queue.
//!
//! Events are ordered by time, with a monotonically increasing sequence
//! number breaking ties so simulations are reproducible regardless of
//! floating-point coincidences.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A pending event of payload type `T`.
#[derive(Debug, Clone)]
struct Pending<T> {
    time: f64,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Pending<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Pending<T> {}

impl<T> Ord for Pending<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for min-heap behaviour in BinaryHeap (max-heap).
        other.time.total_cmp(&self.time).then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<T> PartialOrd for Pending<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A discrete-event queue over payloads of type `T`.
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Pending<T>>,
    seq: u64,
    now: f64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue { heap: BinaryHeap::new(), seq: 0, now: 0.0 }
    }
}

impl<T> EventQueue<T> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// The current simulation time (time of the last popped event).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Schedules `payload` at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is NaN or earlier than the current time (events
    /// cannot be scheduled in the past).
    pub fn push(&mut self, time: f64, payload: T) {
        assert!(!time.is_nan(), "event time must not be NaN");
        assert!(time >= self.now, "event scheduled in the past: {time} < {}", self.now);
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Pending { time, seq, payload });
    }

    /// Schedules `payload` at `now + delay`.
    pub fn push_after(&mut self, delay: f64, payload: T) {
        let t = self.now + delay.max(0.0);
        self.push(t, payload);
    }

    /// Pops the earliest event, advancing the clock.
    pub fn pop(&mut self) -> Option<(f64, T)> {
        let p = self.heap.pop()?;
        self.now = p.time;
        Some((p.time, p.payload))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(3.0, "c");
        q.push(1.0, "a");
        q.push(2.0, "b");
        assert_eq!(q.pop(), Some((1.0, "a")));
        assert_eq!(q.pop(), Some((2.0, "b")));
        assert_eq!(q.pop(), Some((3.0, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.push(5.0, 1);
        q.push(5.0, 2);
        q.push(5.0, 3);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.push(2.0, ());
        q.push(7.0, ());
        q.pop();
        assert_eq!(q.now(), 2.0);
        q.push_after(1.0, ());
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, 3.0);
        q.pop();
        assert_eq!(q.now(), 7.0);
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn rejects_past_events() {
        let mut q = EventQueue::new();
        q.push(5.0, ());
        q.pop();
        q.push(1.0, ());
    }

    #[test]
    fn len_and_is_empty() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        q.push(1.0, 0);
        assert_eq!(q.len(), 1);
    }
}
