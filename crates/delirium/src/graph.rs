//! The coarse-grained dataflow graph (§3.4).
//!
//! The compiler's third output is "a coarse-grained dataflow graph
//! summarizing the exposed parallelism", expressed in the coordination
//! language Delirium. Nodes are *tasks* (the indivisible scheduling
//! units fixed by the front end) or *data-parallel operations*; edges
//! carry data with size/type annotations the runtime uses to estimate
//! communication costs.

use std::collections::BTreeMap;
use std::fmt;

/// Node identifier within a graph.
pub type NodeId = usize;

/// One task population of a [`NodeKind::Mixture`] node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Population {
    /// Number of tasks.
    pub tasks: usize,
    /// Mean task cost (µs).
    pub mean_cost: f64,
    /// Coefficient of variation of task costs.
    pub cv: f64,
}

/// What a node computes.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeKind {
    /// A sequential task with an estimated cost (µs).
    Task {
        /// Estimated execution time, microseconds.
        cost: f64,
    },
    /// A data-parallel operation of `tasks` independent tasks.
    DataParallel {
        /// Number of constituent tasks.
        tasks: usize,
        /// Mean task cost (µs).
        mean_cost: f64,
        /// Coefficient of variation of task costs (σ/µ) — the runtime's
        /// scheduling decisions key off this irregularity measure.
        cv: f64,
    },
    /// A merge node combining replicated results (cheap, bandwidth
    /// bound).
    Merge {
        /// Estimated execution time, microseconds.
        cost: f64,
    },
    /// A data-parallel operation whose tasks come from several distinct
    /// populations (e.g. regular dynamics cells plus irregular cloud
    /// physics cells scheduled as one operation). Keeping the
    /// populations explicit lets a transformed graph's pieces sample
    /// *exactly* the same costs as the untransformed operation.
    Mixture {
        /// The constituent populations.
        populations: Vec<Population>,
    },
}

impl NodeKind {
    /// Total sequential work of the node, microseconds.
    pub fn total_work(&self) -> f64 {
        match self {
            NodeKind::Task { cost } | NodeKind::Merge { cost } => *cost,
            NodeKind::DataParallel { tasks, mean_cost, .. } => *tasks as f64 * mean_cost,
            NodeKind::Mixture { populations } => {
                populations.iter().map(|p| p.tasks as f64 * p.mean_cost).sum()
            }
        }
    }

    /// Number of schedulable tasks.
    pub fn task_count(&self) -> usize {
        match self {
            NodeKind::DataParallel { tasks, .. } => *tasks,
            NodeKind::Mixture { populations } => populations.iter().map(|p| p.tasks).sum(),
            _ => 1,
        }
    }

    /// Aggregate `(mean, cv)` over all tasks of the node.
    pub fn aggregate_stats(&self) -> (f64, f64) {
        match self {
            NodeKind::Task { cost } | NodeKind::Merge { cost } => (*cost, 0.0),
            NodeKind::DataParallel { mean_cost, cv, .. } => (*mean_cost, *cv),
            NodeKind::Mixture { populations } => {
                let n: f64 = populations.iter().map(|p| p.tasks as f64).sum::<f64>().max(1.0);
                let mean = self.total_work() / n;
                let second: f64 = populations
                    .iter()
                    .map(|p| {
                        let s = p.mean_cost * p.cv;
                        p.tasks as f64 * (s * s + p.mean_cost * p.mean_cost)
                    })
                    .sum::<f64>()
                    / n;
                let var = (second - mean * mean).max(0.0);
                (mean, if mean > 0.0 { var.sqrt() / mean } else { 0.0 })
            }
        }
    }
}

/// A dataflow node.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// Identifier (index into the node vector).
    pub id: NodeId,
    /// Human-readable name (piece name from split, e.g. `B_I`).
    pub name: String,
    /// Kind and cost parameters.
    pub kind: NodeKind,
    /// Pipeline group: nodes with the same `Some(group)` belong to one
    /// pipelined loop; the `carried` flag on edges distinguishes
    /// loop-carried dependences.
    pub group: Option<String>,
}

/// The data annotation on an edge (§3.4's "data size and type
/// information" translated into "runtime code for estimating
/// communication costs").
#[derive(Debug, Clone, PartialEq)]
pub struct DataAnno {
    /// The value's name (usually an array).
    pub name: String,
    /// Element size, bytes.
    pub elem_bytes: u64,
    /// Number of elements transferred.
    pub count: u64,
}

impl DataAnno {
    /// A named scalar (8 bytes).
    pub fn scalar(name: impl Into<String>) -> Self {
        DataAnno { name: name.into(), elem_bytes: 8, count: 1 }
    }

    /// A named array of `count` 8-byte elements.
    pub fn array(name: impl Into<String>, count: u64) -> Self {
        DataAnno { name: name.into(), elem_bytes: 8, count }
    }

    /// Transfer volume in bytes.
    pub fn bytes(&self) -> u64 {
        self.elem_bytes * self.count
    }
}

/// A dataflow edge.
#[derive(Debug, Clone, PartialEq)]
pub struct Edge {
    /// Producer node.
    pub from: NodeId,
    /// Consumer node.
    pub to: NodeId,
    /// The value carried.
    pub data: DataAnno,
    /// True for loop-carried edges inside a pipeline group (iteration
    /// `i` → iteration `i+1`); these do not make the graph cyclic — the
    /// graph summarizes one iteration, the flag marks the carried
    /// dependence.
    pub carried: bool,
}

/// Errors from graph validation.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// An edge references a node id that does not exist.
    DanglingEdge {
        /// Offending edge index.
        edge: usize,
    },
    /// The non-carried edges contain a cycle through the named node.
    Cycle {
        /// A node on the cycle.
        node: NodeId,
    },
    /// Two nodes share a name.
    DuplicateName {
        /// The duplicated name.
        name: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::DanglingEdge { edge } => write!(f, "edge {edge} references missing node"),
            GraphError::Cycle { node } => write!(f, "cycle through node {node}"),
            GraphError::DuplicateName { name } => write!(f, "duplicate node name `{name}`"),
        }
    }
}

impl std::error::Error for GraphError {}

/// A coarse-grained dataflow graph.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DelirGraph {
    /// Nodes, indexed by id.
    pub nodes: Vec<Node>,
    /// Edges.
    pub edges: Vec<Edge>,
}

impl DelirGraph {
    /// An empty graph.
    pub fn new() -> Self {
        DelirGraph::default()
    }

    /// Adds a node, returning its id.
    pub fn add_node(
        &mut self,
        name: impl Into<String>,
        kind: NodeKind,
        group: Option<String>,
    ) -> NodeId {
        let id = self.nodes.len();
        self.nodes.push(Node { id, name: name.into(), kind, group });
        id
    }

    /// Adds a dataflow edge.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, data: DataAnno) {
        self.edges.push(Edge { from, to, data, carried: false });
    }

    /// Adds a loop-carried edge within a pipeline group.
    pub fn add_carried_edge(&mut self, from: NodeId, to: NodeId, data: DataAnno) {
        self.edges.push(Edge { from, to, data, carried: true });
    }

    /// Finds a node id by name.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.nodes.iter().position(|n| n.name == name)
    }

    /// Direct predecessors via non-carried edges.
    pub fn preds(&self, id: NodeId) -> Vec<NodeId> {
        self.edges.iter().filter(|e| e.to == id && !e.carried).map(|e| e.from).collect()
    }

    /// Direct successors via non-carried edges.
    pub fn succs(&self, id: NodeId) -> Vec<NodeId> {
        self.edges.iter().filter(|e| e.from == id && !e.carried).map(|e| e.to).collect()
    }

    /// Validates structure: edges reference live nodes, names unique,
    /// and the non-carried edges form a DAG.
    pub fn validate(&self) -> Result<(), GraphError> {
        for (i, e) in self.edges.iter().enumerate() {
            if e.from >= self.nodes.len() || e.to >= self.nodes.len() {
                return Err(GraphError::DanglingEdge { edge: i });
            }
        }
        let mut seen = BTreeMap::new();
        for n in &self.nodes {
            if seen.insert(n.name.clone(), n.id).is_some() {
                return Err(GraphError::DuplicateName { name: n.name.clone() });
            }
        }
        self.topo_order().map(|_| ())
    }

    /// Topological order over non-carried edges.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Cycle`] when no such order exists.
    pub fn topo_order(&self) -> Result<Vec<NodeId>, GraphError> {
        let n = self.nodes.len();
        let mut indeg = vec![0usize; n];
        for e in &self.edges {
            if !e.carried {
                indeg[e.to] += 1;
            }
        }
        let mut ready: Vec<NodeId> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut out = Vec::with_capacity(n);
        while let Some(v) = ready.pop() {
            out.push(v);
            for e in &self.edges {
                if !e.carried && e.from == v {
                    indeg[e.to] -= 1;
                    if indeg[e.to] == 0 {
                        ready.push(e.to);
                    }
                }
            }
        }
        if out.len() != n {
            let node = (0..n).find(|&i| indeg[i] > 0).unwrap_or(0);
            return Err(GraphError::Cycle { node });
        }
        Ok(out)
    }

    /// Groups the topological order into *levels*: each level's nodes
    /// have all predecessors in earlier levels and may run concurrently.
    pub fn levels(&self) -> Result<Vec<Vec<NodeId>>, GraphError> {
        let order = self.topo_order()?;
        let mut level = vec![0usize; self.nodes.len()];
        for &v in &order {
            for p in self.preds(v) {
                level[v] = level[v].max(level[p] + 1);
            }
        }
        let max = level.iter().copied().max().unwrap_or(0);
        let mut out = vec![Vec::new(); max + 1];
        for (v, &l) in level.iter().enumerate() {
            out[l].push(v);
        }
        Ok(out)
    }

    /// The critical path length in sequential-work terms (µs): longest
    /// path weighting each node by `total_work / available parallelism`
    /// at infinite processors (i.e. a data-parallel node contributes its
    /// mean task cost, a task its full cost).
    pub fn critical_path(&self) -> Result<f64, GraphError> {
        let order = self.topo_order()?;
        let mut dist = vec![0.0f64; self.nodes.len()];
        let weight = |n: &Node| match &n.kind {
            NodeKind::Task { cost } | NodeKind::Merge { cost } => *cost,
            NodeKind::DataParallel { mean_cost, .. } => *mean_cost,
            NodeKind::Mixture { .. } => n.kind.aggregate_stats().0,
        };
        let mut best: f64 = 0.0;
        for &v in &order {
            let mut start: f64 = 0.0;
            for p in self.preds(v) {
                start = start.max(dist[p]);
            }
            dist[v] = start + weight(&self.nodes[v]);
            best = best.max(dist[v]);
        }
        Ok(best)
    }

    /// Total sequential work of the whole graph (µs).
    pub fn total_work(&self) -> f64 {
        self.nodes.iter().map(|n| n.kind.total_work()).sum()
    }

    /// The Sarkar–Hennessy style communication estimate: the weighted
    /// sum of dataflow edges crossing processor boundaries under the
    /// given node→processor assignment, at `beta` µs/byte plus `alpha`
    /// µs/message.
    ///
    /// The paper performs this computation *at runtime* from generated
    /// code blocks; here it is a method evaluated with runtime
    /// parameters.
    pub fn comm_cost(&self, assignment: &[usize], alpha: f64, beta: f64) -> f64 {
        let mut total = 0.0;
        for e in &self.edges {
            if assignment.get(e.from) != assignment.get(e.to) {
                total += alpha + beta * e.data.bytes() as f64;
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> DelirGraph {
        let mut g = DelirGraph::new();
        let a = g.add_node("A", NodeKind::Task { cost: 10.0 }, None);
        let b =
            g.add_node("B", NodeKind::DataParallel { tasks: 100, mean_cost: 5.0, cv: 0.2 }, None);
        let c =
            g.add_node("C", NodeKind::DataParallel { tasks: 50, mean_cost: 2.0, cv: 1.5 }, None);
        let d = g.add_node("D", NodeKind::Merge { cost: 3.0 }, None);
        g.add_edge(a, b, DataAnno::array("x", 100));
        g.add_edge(a, c, DataAnno::array("y", 50));
        g.add_edge(b, d, DataAnno::array("bx", 100));
        g.add_edge(c, d, DataAnno::array("cy", 50));
        g
    }

    #[test]
    fn validates_and_orders() {
        let g = diamond();
        g.validate().unwrap();
        let order = g.topo_order().unwrap();
        assert_eq!(order.len(), 4);
        let pos = |n: &str| order.iter().position(|&i| g.nodes[i].name == n).unwrap();
        assert!(pos("A") < pos("B"));
        assert!(pos("B") < pos("D"));
        assert!(pos("C") < pos("D"));
    }

    #[test]
    fn levels_expose_concurrency() {
        let g = diamond();
        let levels = g.levels().unwrap();
        assert_eq!(levels.len(), 3);
        assert_eq!(levels[1].len(), 2, "B and C run concurrently");
    }

    #[test]
    fn cycle_detected() {
        let mut g = diamond();
        let d = g.node_by_name("D").unwrap();
        let a = g.node_by_name("A").unwrap();
        g.add_edge(d, a, DataAnno::scalar("back"));
        assert!(matches!(g.validate(), Err(GraphError::Cycle { .. })));
    }

    #[test]
    fn carried_edges_do_not_cycle() {
        let mut g = diamond();
        let d = g.node_by_name("D").unwrap();
        let a = g.node_by_name("A").unwrap();
        g.add_carried_edge(d, a, DataAnno::scalar("loop"));
        g.validate().unwrap();
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut g = DelirGraph::new();
        g.add_node("X", NodeKind::Task { cost: 1.0 }, None);
        g.add_node("X", NodeKind::Task { cost: 1.0 }, None);
        assert!(matches!(g.validate(), Err(GraphError::DuplicateName { .. })));
    }

    #[test]
    fn dangling_edge_rejected() {
        let mut g = DelirGraph::new();
        let a = g.add_node("A", NodeKind::Task { cost: 1.0 }, None);
        g.edges.push(Edge { from: a, to: 99, data: DataAnno::scalar("x"), carried: false });
        assert!(matches!(g.validate(), Err(GraphError::DanglingEdge { .. })));
    }

    #[test]
    fn work_and_critical_path() {
        let g = diamond();
        assert_eq!(g.total_work(), 10.0 + 500.0 + 100.0 + 3.0);
        // A(10) + max(B mean 5, C mean 2) + D(3) = 18.
        assert!((g.critical_path().unwrap() - 18.0).abs() < 1e-9);
    }

    #[test]
    fn mixture_aggregates_populations() {
        let m = NodeKind::Mixture {
            populations: vec![
                Population { tasks: 300, mean_cost: 10.0, cv: 0.0 },
                Population { tasks: 100, mean_cost: 50.0, cv: 0.5 },
            ],
        };
        assert_eq!(m.task_count(), 400);
        assert!((m.total_work() - 8000.0).abs() < 1e-9);
        let (mean, cv) = m.aggregate_stats();
        assert!((mean - 20.0).abs() < 1e-9);
        // σ² = E[x²] − µ²; E[x²] = (300·100 + 100·(625+2500))/400 = 856.25…
        let second = (300.0 * 100.0 + 100.0 * (625.0 + 2500.0)) / 400.0;
        let expect_cv = (second - 400.0f64).sqrt() / 20.0;
        assert!((cv - expect_cv).abs() < 1e-9, "{cv} vs {expect_cv}");
    }

    #[test]
    fn comm_cost_counts_cross_edges() {
        let g = diamond();
        // A,B on proc 0; C,D on proc 1: crossing edges A→C, B→D.
        let cost = g.comm_cost(&[0, 0, 1, 1], 10.0, 0.1);
        let expected = (10.0 + 0.1 * 50.0 * 8.0) + (10.0 + 0.1 * 100.0 * 8.0);
        assert!((cost - expected).abs() < 1e-9);
        // Everything on one processor: zero.
        assert_eq!(g.comm_cost(&[0, 0, 0, 0], 10.0, 0.1), 0.0);
    }
}
