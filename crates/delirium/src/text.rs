//! A textual form for Delirium graphs.
//!
//! The paper's Delirium is a functional coordination language \[15, 16\];
//! for interchange and golden tests this module provides an equivalent
//! line-oriented notation that round-trips through [`parse`]/[`fn@print`]:
//!
//! ```text
//! delirium example
//! node A task cost=10
//! node B dpar tasks=100 mean=5 cv=0.2
//! node M merge cost=3 group=P
//! edge A -> B data=x count=100 bytes=8
//! edge M => A data=loop count=1 bytes=8
//! end
//! ```
//!
//! `->` is a dataflow edge; `=>` is a loop-carried edge within a
//! pipeline group.

use crate::graph::{DataAnno, DelirGraph, NodeKind, Population};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Errors from parsing the textual form.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// Explanation.
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Prints a graph in the textual form.
pub fn print(g: &DelirGraph, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "delirium {name}");
    for n in &g.nodes {
        let mut line = format!("node {} ", n.name);
        match &n.kind {
            NodeKind::Task { cost } => {
                let _ = write!(line, "task cost={cost}");
            }
            NodeKind::DataParallel { tasks, mean_cost, cv } => {
                let _ = write!(line, "dpar tasks={tasks} mean={mean_cost} cv={cv}");
            }
            NodeKind::Merge { cost } => {
                let _ = write!(line, "merge cost={cost}");
            }
            NodeKind::Mixture { populations } => {
                let pops: Vec<String> = populations
                    .iter()
                    .map(|p| format!("{}x{}x{}", p.tasks, p.mean_cost, p.cv))
                    .collect();
                let _ = write!(line, "mix pops={}", pops.join("+"));
            }
        }
        if let Some(gr) = &n.group {
            let _ = write!(line, " group={gr}");
        }
        let _ = writeln!(out, "{line}");
    }
    for e in &g.edges {
        let arrow = if e.carried { "=>" } else { "->" };
        let _ = writeln!(
            out,
            "edge {} {arrow} {} data={} count={} bytes={}",
            g.nodes[e.from].name, g.nodes[e.to].name, e.data.name, e.data.count, e.data.elem_bytes
        );
    }
    out.push_str("end\n");
    out
}

/// Parses the textual form back into a graph and its name.
///
/// # Errors
///
/// Returns a [`ParseError`] naming the first malformed line.
pub fn parse(src: &str) -> Result<(String, DelirGraph), ParseError> {
    let err = |line: usize, msg: &str| ParseError { line, msg: msg.to_string() };
    let mut name = String::new();
    let mut g = DelirGraph::new();
    let mut ids: BTreeMap<String, usize> = BTreeMap::new();
    let mut saw_header = false;
    let mut saw_end = false;

    for (i, raw) in src.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if saw_end {
            return Err(err(lineno, "content after `end`"));
        }
        let mut words = line.split_whitespace();
        match words.next() {
            Some("delirium") => {
                name = words.next().ok_or_else(|| err(lineno, "missing graph name"))?.to_string();
                saw_header = true;
            }
            Some("node") => {
                if !saw_header {
                    return Err(err(lineno, "node before header"));
                }
                let nname =
                    words.next().ok_or_else(|| err(lineno, "missing node name"))?.to_string();
                let kind_word = words.next().ok_or_else(|| err(lineno, "missing node kind"))?;
                let kv = parse_kv(words)?;
                let get = |k: &str| -> Result<f64, ParseError> {
                    kv.get(k)
                        .ok_or_else(|| err(lineno, &format!("missing {k}=")))?
                        .parse::<f64>()
                        .map_err(|_| err(lineno, &format!("bad number for {k}")))
                };
                let kind = match kind_word {
                    "task" => NodeKind::Task { cost: get("cost")? },
                    "merge" => NodeKind::Merge { cost: get("cost")? },
                    "mix" => {
                        let spec = kv.get("pops").ok_or_else(|| err(lineno, "missing pops="))?;
                        let mut populations = Vec::new();
                        for part in spec.split('+') {
                            let fields: Vec<&str> = part.split('x').collect();
                            if fields.len() != 3 {
                                return Err(err(lineno, "bad population spec"));
                            }
                            let parse_f = |s: &str| {
                                s.parse::<f64>().map_err(|_| err(lineno, "bad number in pops"))
                            };
                            populations.push(Population {
                                tasks: parse_f(fields[0])? as usize,
                                mean_cost: parse_f(fields[1])?,
                                cv: parse_f(fields[2])?,
                            });
                        }
                        NodeKind::Mixture { populations }
                    }
                    "dpar" => NodeKind::DataParallel {
                        tasks: get("tasks")? as usize,
                        mean_cost: get("mean")?,
                        cv: get("cv")?,
                    },
                    other => return Err(err(lineno, &format!("unknown node kind `{other}`"))),
                };
                let group = kv.get("group").cloned();
                let id = g.add_node(nname.clone(), kind, group);
                ids.insert(nname, id);
            }
            Some("edge") => {
                let from =
                    words.next().ok_or_else(|| err(lineno, "missing edge source"))?.to_string();
                let arrow = words.next().ok_or_else(|| err(lineno, "missing arrow"))?;
                let carried = match arrow {
                    "->" => false,
                    "=>" => true,
                    other => return Err(err(lineno, &format!("bad arrow `{other}`"))),
                };
                let to =
                    words.next().ok_or_else(|| err(lineno, "missing edge target"))?.to_string();
                let kv = parse_kv(words)?;
                let &from_id =
                    ids.get(&from).ok_or_else(|| err(lineno, &format!("unknown node `{from}`")))?;
                let &to_id =
                    ids.get(&to).ok_or_else(|| err(lineno, &format!("unknown node `{to}`")))?;
                let data = DataAnno {
                    name: kv.get("data").cloned().unwrap_or_else(|| "data".into()),
                    count: kv
                        .get("count")
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| err(lineno, "missing count="))?,
                    elem_bytes: kv
                        .get("bytes")
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| err(lineno, "missing bytes="))?,
                };
                if carried {
                    g.add_carried_edge(from_id, to_id, data);
                } else {
                    g.add_edge(from_id, to_id, data);
                }
            }
            Some("end") => {
                saw_end = true;
            }
            Some(other) => return Err(err(lineno, &format!("unknown directive `{other}`"))),
            None => unreachable!("blank lines skipped"),
        }
    }
    if !saw_end {
        return Err(err(src.lines().count(), "missing `end`"));
    }
    Ok((name, g))
}

fn parse_kv<'a>(
    words: impl Iterator<Item = &'a str>,
) -> Result<BTreeMap<String, String>, ParseError> {
    let mut out = BTreeMap::new();
    for w in words {
        let Some((k, v)) = w.split_once('=') else {
            return Err(ParseError { line: 0, msg: format!("expected key=value, found `{w}`") });
        };
        out.insert(k.to_string(), v.to_string());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NodeKind;

    fn sample() -> DelirGraph {
        let mut g = DelirGraph::new();
        let a = g.add_node("A", NodeKind::Task { cost: 10.0 }, Some("P".into()));
        let b =
            g.add_node("B_I", NodeKind::DataParallel { tasks: 64, mean_cost: 2.5, cv: 1.25 }, None);
        let m = g.add_node("B_M", NodeKind::Merge { cost: 1.0 }, None);
        g.add_edge(a, b, DataAnno::array("q", 4096));
        g.add_edge(b, m, DataAnno::array("output1", 4096));
        g.add_carried_edge(m, a, DataAnno::scalar("token"));
        g
    }

    #[test]
    fn round_trip() {
        let g = sample();
        let text = print(&g, "fig2");
        let (name, g2) = parse(&text).unwrap();
        assert_eq!(name, "fig2");
        assert_eq!(g, g2);
    }

    #[test]
    fn parse_rejects_unknown_node() {
        let e = parse("delirium t\nedge A -> B data=x count=1 bytes=8\nend\n").unwrap_err();
        assert!(e.msg.contains("unknown node"));
    }

    #[test]
    fn parse_rejects_missing_end() {
        assert!(parse("delirium t\nnode A task cost=1\n").is_err());
    }

    #[test]
    fn parse_rejects_bad_kind() {
        let e = parse("delirium t\nnode A widget cost=1\nend\n").unwrap_err();
        assert!(e.msg.contains("unknown node kind"));
    }

    #[test]
    fn comments_and_blank_lines_ok() {
        let text = "# header\ndelirium t\n\nnode A task cost=1\n# done\nend\n";
        let (_, g) = parse(text).unwrap();
        assert_eq!(g.nodes.len(), 1);
    }

    #[test]
    fn mixture_round_trips() {
        let mut g = DelirGraph::new();
        g.add_node(
            "M",
            NodeKind::Mixture {
                populations: vec![
                    Population { tasks: 10, mean_cost: 2.5, cv: 0.1 },
                    Population { tasks: 4, mean_cost: 9.0, cv: 1.0 },
                ],
            },
            None,
        );
        let text = print(&g, "m");
        assert!(text.contains("mix pops=10x2.5x0.1+4x9x1"));
        let (_, g2) = parse(&text).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn carried_arrow_round_trips() {
        let g = sample();
        let text = print(&g, "x");
        assert!(text.contains("=>"));
        let (_, g2) = parse(&text).unwrap();
        assert!(g2.edges.iter().any(|e| e.carried));
    }
}
