#![warn(missing_docs)]
//! # orchestra-delirium
//!
//! The coarse-grained dataflow intermediate form (§3.4 of
//! *Orchestrating Interactions Among Parallel Computations*, PLDI 1993).
//!
//! The compiler emits three artifacts: transformed source, a dataflow
//! graph in the coordination language Delirium, and size/type
//! annotations per argument. This crate is the graph: [`graph`] defines
//! nodes (sequential tasks, data-parallel operations, merges), annotated
//! edges, validation, concurrency levels, and the Sarkar–Hennessy
//! runtime communication-cost estimate; [`mod@text`] is a round-tripping
//! textual notation used for golden tests and interchange.
//!
//! ```
//! use orchestra_delirium::{DataAnno, DelirGraph, NodeKind};
//!
//! let mut g = DelirGraph::new();
//! let a = g.add_node("A", NodeKind::DataParallel { tasks: 128, mean_cost: 4.0, cv: 1.1 }, None);
//! let b = g.add_node("B_I", NodeKind::DataParallel { tasks: 128, mean_cost: 2.0, cv: 0.1 }, None);
//! let m = g.add_node("B_M", NodeKind::Merge { cost: 1.0 }, None);
//! g.add_edge(a, m, DataAnno::array("q", 1024));
//! g.add_edge(b, m, DataAnno::array("output1", 1024));
//! g.validate().unwrap();
//! assert_eq!(g.levels().unwrap()[0].len(), 2, "A and B_I are concurrent");
//! ```

pub mod graph;
pub mod text;

pub use graph::{DataAnno, DelirGraph, Edge, GraphError, Node, NodeId, NodeKind, Population};
pub use text::{parse, print, ParseError};
