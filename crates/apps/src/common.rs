//! Shared application-workload plumbing.
//!
//! Each application provides two Delirium graphs for the same
//! computation: the **baseline** (barrier between sub-computations —
//! the traditional compilation the paper's §1 describes) and the
//! **split** version (concurrency and pipelining exposed by the split
//! transformation). Reproducing the paper's measurements means running
//! both through the same runtime and comparing.

use orchestra_delirium::DelirGraph;
use orchestra_lang::ast::Program;
use std::collections::HashMap;

/// Size/seed parameters of a workload instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale {
    /// Problem size (app-specific meaning: columns, grid cells, gates,
    /// particles).
    pub n: usize,
    /// RNG seed for irregularity draws.
    pub seed: u64,
}

impl Scale {
    /// A small scale for unit tests.
    pub fn test() -> Self {
        Scale { n: 256, seed: 42 }
    }
}

/// A complete application workload.
#[derive(Debug, Clone)]
pub struct AppWorkload {
    /// Application name.
    pub name: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// Barrier-structured graph (traditional compilation).
    pub baseline: DelirGraph,
    /// Orchestrated graph (split + pipelining applied).
    pub split: DelirGraph,
    /// Iteration counts for the split graph's pipeline groups.
    pub pipeline_iters: HashMap<String, usize>,
    /// An MF kernel capturing the app's interacting-loop structure,
    /// used to exercise the compiler path end-to-end.
    pub kernel: Program,
}

impl AppWorkload {
    /// Sequential work of a graph including pipeline-group iterations.
    pub fn graph_serial_work(&self, g: &DelirGraph) -> f64 {
        g.nodes
            .iter()
            .map(|n| {
                let iters = n
                    .group
                    .as_ref()
                    .and_then(|gr| self.pipeline_iters.get(gr))
                    .copied()
                    .unwrap_or(1);
                n.kind.total_work() * iters as f64
            })
            .sum()
    }

    /// Total sequential work of the baseline graph (µs), including the
    /// phase-loop iterations.
    pub fn serial_work(&self) -> f64 {
        self.graph_serial_work(&self.baseline)
    }

    /// Sanity-checks both graphs.
    ///
    /// # Panics
    ///
    /// Panics if either graph fails validation — workload constructors
    /// must produce well-formed graphs.
    pub fn validate(&self) {
        self.baseline.validate().expect("baseline graph valid");
        self.split.validate().expect("split graph valid");
    }

    /// The split graph's serial work including pipeline iterations —
    /// must match the baseline's within tolerance (the transformation
    /// adds only merge overhead, never loses work).
    pub fn split_serial_work(&self) -> f64 {
        self.graph_serial_work(&self.split)
    }
}

/// Parameters of the phase-structured application template.
///
/// All four applications share one structure (the one the paper's §2
/// example motivates): a loop of phases, each containing an
/// *independent-splittable* part and a *dependent* part (irregular,
/// carried into the next phase), followed by a regular post-pass.
/// The baseline graph runs each phase to a barrier; the split graph
/// pipelines the phases and overlaps the post-pass's independent piece.
#[derive(Debug, Clone, Copy)]
pub struct PhasedParams {
    /// Number of phases (pipeline iterations).
    pub iters: usize,
    /// Tasks in the independent piece of one phase.
    pub ind_tasks: usize,
    /// Mean cost of independent tasks (µs).
    pub ind_mean: f64,
    /// Cost cv of independent tasks.
    pub ind_cv: f64,
    /// Tasks in the dependent piece of one phase.
    pub dep_tasks: usize,
    /// Mean cost of dependent tasks (µs).
    pub dep_mean: f64,
    /// Cost cv of dependent tasks.
    pub dep_cv: f64,
    /// Cost of the per-phase merge (µs).
    pub merge_cost: f64,
    /// Tasks in the regular post-pass.
    pub post_tasks: usize,
    /// Mean cost of post-pass tasks (µs).
    pub post_mean: f64,
    /// Cost cv of post-pass tasks.
    pub post_cv: f64,
    /// Elements carried between phases (for communication sizing).
    pub carried_elems: u64,
}

impl PhasedParams {
    /// Combined (mean, cv) of the two phase populations, used for the
    /// baseline's single merged operation.
    pub fn combined_phase_stats(&self) -> (f64, f64) {
        let (ni, nd) = (self.ind_tasks as f64, self.dep_tasks as f64);
        let n = ni + nd;
        let mean = (ni * self.ind_mean + nd * self.dep_mean) / n;
        let (si, sd) = (self.ind_mean * self.ind_cv, self.dep_mean * self.dep_cv);
        let second = (ni * (si * si + self.ind_mean * self.ind_mean)
            + nd * (sd * sd + self.dep_mean * self.dep_mean))
            / n;
        let var = (second - mean * mean).max(0.0);
        (mean, var.sqrt() / mean)
    }
}

/// Builds an [`AppWorkload`] from the phase template.
pub fn phased_app(
    name: &'static str,
    description: &'static str,
    params: &PhasedParams,
    kernel: Program,
) -> AppWorkload {
    use orchestra_delirium::{DataAnno, NodeKind};
    let group = "phase".to_string();

    // Baseline: each phase runs its two loop nests as *sequential*
    // parallel operations with a barrier between phases — the
    // traditional compilation. The task populations are exactly the
    // ones the split graph's pieces draw.
    let mut base = DelirGraph::new();
    let a1 = base.add_node(
        "A_reg",
        NodeKind::DataParallel {
            tasks: params.ind_tasks,
            mean_cost: params.ind_mean,
            cv: params.ind_cv,
        },
        Some(group.clone()),
    );
    let a2 = base.add_node(
        "A_irr",
        NodeKind::DataParallel {
            tasks: params.dep_tasks,
            mean_cost: params.dep_mean,
            cv: params.dep_cv,
        },
        Some(group.clone()),
    );
    base.add_edge(a1, a2, DataAnno::array("res", params.carried_elems));
    base.add_carried_edge(a2, a1, DataAnno::array("carried", params.carried_elems));
    let b = base.add_node(
        "B",
        NodeKind::DataParallel {
            tasks: params.post_tasks,
            mean_cost: params.post_mean,
            cv: params.post_cv,
        },
        None,
    );
    base.add_edge(a2, b, DataAnno::array("q", params.carried_elems * params.iters as u64));

    // Split: pipelined phases, post-pass split into B_I ∥ pipeline,
    // then B_D and B_M.
    let mut split = DelirGraph::new();
    let ai = split.add_node(
        "A_I",
        NodeKind::DataParallel {
            tasks: params.ind_tasks,
            mean_cost: params.ind_mean,
            cv: params.ind_cv,
        },
        Some(group.clone()),
    );
    let ad = split.add_node(
        "A_D",
        NodeKind::DataParallel {
            tasks: params.dep_tasks,
            mean_cost: params.dep_mean,
            cv: params.dep_cv,
        },
        Some(group.clone()),
    );
    let am = split.add_node(
        "A_M",
        NodeKind::Merge { cost: params.merge_cost },
        Some(group.clone()),
    );
    split.add_edge(ai, am, DataAnno::array("res_i", params.carried_elems));
    split.add_edge(ad, am, DataAnno::array("res_d", params.carried_elems / 4));
    split.add_carried_edge(am, ad, DataAnno::array("carried", params.carried_elems));
    // Post-pass split: ~1/6 of the post-pass depends on the phases.
    let bd_tasks = (params.post_tasks / 6).max(1);
    let bi_tasks = params.post_tasks - bd_tasks;
    let bi = split.add_node(
        "B_I",
        NodeKind::DataParallel {
            tasks: bi_tasks,
            mean_cost: params.post_mean,
            cv: params.post_cv,
        },
        None,
    );
    let bd = split.add_node(
        "B_D",
        NodeKind::DataParallel {
            tasks: bd_tasks,
            mean_cost: params.post_mean,
            cv: params.post_cv,
        },
        None,
    );
    let bm = split.add_node("B_M", NodeKind::Merge { cost: params.merge_cost }, None);
    split.add_edge(am, bd, DataAnno::array("q", params.carried_elems));
    split.add_edge(bi, bm, DataAnno::array("out1", params.carried_elems));
    split.add_edge(bd, bm, DataAnno::array("out2", params.carried_elems / 4));

    let mut pipeline_iters = HashMap::new();
    pipeline_iters.insert(group, params.iters);

    AppWorkload { name, description, baseline: base, split, pipeline_iters, kernel }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_delirium::NodeKind;

    #[test]
    fn serial_work_sums_nodes() {
        let mut g = DelirGraph::new();
        g.add_node("a", NodeKind::Task { cost: 5.0 }, None);
        g.add_node("b", NodeKind::DataParallel { tasks: 10, mean_cost: 2.0, cv: 0.0 }, None);
        let w = AppWorkload {
            name: "t",
            description: "",
            baseline: g.clone(),
            split: g,
            pipeline_iters: HashMap::new(),
            kernel: Program::new("t"),
        };
        assert_eq!(w.serial_work(), 25.0);
        w.validate();
    }

    #[test]
    fn pipeline_iters_multiply_split_work() {
        let mut g = DelirGraph::new();
        g.add_node("a", NodeKind::Task { cost: 5.0 }, Some("P".into()));
        let mut iters = HashMap::new();
        iters.insert("P".to_string(), 10usize);
        let w = AppWorkload {
            name: "t",
            description: "",
            baseline: g.clone(),
            split: g,
            pipeline_iters: iters,
            kernel: Program::new("t"),
        };
        assert_eq!(w.split_serial_work(), 50.0);
    }
}
