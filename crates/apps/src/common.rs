//! Shared application-workload plumbing.
//!
//! Each application provides two Delirium graphs for the same
//! computation: the **baseline** (barrier between sub-computations —
//! the traditional compilation the paper's §1 describes) and the
//! **split** version (concurrency and pipelining exposed by the split
//! transformation). Reproducing the paper's measurements means running
//! both through the same runtime and comparing.

use orchestra_delirium::DelirGraph;
use orchestra_lang::ast::Program;
use std::collections::HashMap;

/// Size/seed parameters of a workload instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale {
    /// Problem size (app-specific meaning: columns, grid cells, gates,
    /// particles).
    pub n: usize,
    /// RNG seed for irregularity draws.
    pub seed: u64,
}

impl Scale {
    /// A small scale for unit tests.
    pub fn test() -> Self {
        Scale { n: 256, seed: 42 }
    }
}

/// A complete application workload.
#[derive(Debug, Clone)]
pub struct AppWorkload {
    /// Application name.
    pub name: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// Barrier-structured graph (traditional compilation).
    pub baseline: DelirGraph,
    /// Orchestrated graph (split + pipelining applied).
    pub split: DelirGraph,
    /// Iteration counts for the split graph's pipeline groups.
    pub pipeline_iters: HashMap<String, usize>,
    /// An MF kernel capturing the app's interacting-loop structure,
    /// used to exercise the compiler path end-to-end.
    pub kernel: Program,
}

impl AppWorkload {
    /// Sequential work of a graph including pipeline-group iterations.
    pub fn graph_serial_work(&self, g: &DelirGraph) -> f64 {
        g.nodes
            .iter()
            .map(|n| {
                let iters = n
                    .group
                    .as_ref()
                    .and_then(|gr| self.pipeline_iters.get(gr))
                    .copied()
                    .unwrap_or(1);
                n.kind.total_work() * iters as f64
            })
            .sum()
    }

    /// Total sequential work of the baseline graph (µs), including the
    /// phase-loop iterations.
    pub fn serial_work(&self) -> f64 {
        self.graph_serial_work(&self.baseline)
    }

    /// Sanity-checks both graphs.
    ///
    /// # Panics
    ///
    /// Panics if either graph fails validation — workload constructors
    /// must produce well-formed graphs.
    pub fn validate(&self) {
        self.baseline.validate().expect("baseline graph valid");
        self.split.validate().expect("split graph valid");
    }

    /// The split graph's serial work including pipeline iterations —
    /// must match the baseline's within tolerance (the transformation
    /// adds only merge overhead, never loses work).
    pub fn split_serial_work(&self) -> f64 {
        self.graph_serial_work(&self.split)
    }
}

/// Parameters of the phase-structured application template.
///
/// All four applications share one structure (the one the paper's §2
/// example motivates): a loop of phases, each containing an
/// *independent-splittable* part and a *dependent* part (irregular,
/// carried into the next phase), followed by a regular post-pass.
/// The baseline graph runs each phase to a barrier; the split graph
/// pipelines the phases and overlaps the post-pass's independent piece.
#[derive(Debug, Clone, Copy)]
pub struct PhasedParams {
    /// Number of phases (pipeline iterations).
    pub iters: usize,
    /// Tasks in the independent piece of one phase.
    pub ind_tasks: usize,
    /// Mean cost of independent tasks (µs).
    pub ind_mean: f64,
    /// Cost cv of independent tasks.
    pub ind_cv: f64,
    /// Tasks in the dependent piece of one phase.
    pub dep_tasks: usize,
    /// Mean cost of dependent tasks (µs).
    pub dep_mean: f64,
    /// Cost cv of dependent tasks.
    pub dep_cv: f64,
    /// Cost of the per-phase merge (µs).
    pub merge_cost: f64,
    /// Tasks in the regular post-pass.
    pub post_tasks: usize,
    /// Mean cost of post-pass tasks (µs).
    pub post_mean: f64,
    /// Cost cv of post-pass tasks.
    pub post_cv: f64,
    /// Elements carried between phases (for communication sizing).
    pub carried_elems: u64,
}

impl PhasedParams {
    /// Combined (mean, cv) of the two phase populations, used for the
    /// baseline's single merged operation.
    pub fn combined_phase_stats(&self) -> (f64, f64) {
        let (ni, nd) = (self.ind_tasks as f64, self.dep_tasks as f64);
        let n = ni + nd;
        let mean = (ni * self.ind_mean + nd * self.dep_mean) / n;
        let (si, sd) = (self.ind_mean * self.ind_cv, self.dep_mean * self.dep_cv);
        let second = (ni * (si * si + self.ind_mean * self.ind_mean)
            + nd * (sd * sd + self.dep_mean * self.dep_mean))
            / n;
        let var = (second - mean * mean).max(0.0);
        (mean, var.sqrt() / mean)
    }
}

/// Builds an [`AppWorkload`] from the phase template.
pub fn phased_app(
    name: &'static str,
    description: &'static str,
    params: &PhasedParams,
    kernel: Program,
) -> AppWorkload {
    use orchestra_delirium::{DataAnno, NodeKind};
    let group = "phase".to_string();

    // Baseline: each phase runs its two loop nests as *sequential*
    // parallel operations with a barrier between phases — the
    // traditional compilation. The task populations are exactly the
    // ones the split graph's pieces draw.
    let mut base = DelirGraph::new();
    let a1 = base.add_node(
        "A_reg",
        NodeKind::DataParallel {
            tasks: params.ind_tasks,
            mean_cost: params.ind_mean,
            cv: params.ind_cv,
        },
        Some(group.clone()),
    );
    let a2 = base.add_node(
        "A_irr",
        NodeKind::DataParallel {
            tasks: params.dep_tasks,
            mean_cost: params.dep_mean,
            cv: params.dep_cv,
        },
        Some(group.clone()),
    );
    base.add_edge(a1, a2, DataAnno::array("res", params.carried_elems));
    base.add_carried_edge(a2, a1, DataAnno::array("carried", params.carried_elems));
    let b = base.add_node(
        "B",
        NodeKind::DataParallel {
            tasks: params.post_tasks,
            mean_cost: params.post_mean,
            cv: params.post_cv,
        },
        None,
    );
    base.add_edge(a2, b, DataAnno::array("q", params.carried_elems * params.iters as u64));

    // Split: pipelined phases, post-pass split into B_I ∥ pipeline,
    // then B_D and B_M.
    let mut split = DelirGraph::new();
    let ai = split.add_node(
        "A_I",
        NodeKind::DataParallel {
            tasks: params.ind_tasks,
            mean_cost: params.ind_mean,
            cv: params.ind_cv,
        },
        Some(group.clone()),
    );
    let ad = split.add_node(
        "A_D",
        NodeKind::DataParallel {
            tasks: params.dep_tasks,
            mean_cost: params.dep_mean,
            cv: params.dep_cv,
        },
        Some(group.clone()),
    );
    let am =
        split.add_node("A_M", NodeKind::Merge { cost: params.merge_cost }, Some(group.clone()));
    split.add_edge(ai, am, DataAnno::array("res_i", params.carried_elems));
    split.add_edge(ad, am, DataAnno::array("res_d", params.carried_elems / 4));
    split.add_carried_edge(am, ad, DataAnno::array("carried", params.carried_elems));
    // Post-pass split: ~1/6 of the post-pass depends on the phases.
    let bd_tasks = (params.post_tasks / 6).max(1);
    let bi_tasks = params.post_tasks - bd_tasks;
    let bi = split.add_node(
        "B_I",
        NodeKind::DataParallel { tasks: bi_tasks, mean_cost: params.post_mean, cv: params.post_cv },
        None,
    );
    let bd = split.add_node(
        "B_D",
        NodeKind::DataParallel { tasks: bd_tasks, mean_cost: params.post_mean, cv: params.post_cv },
        None,
    );
    let bm = split.add_node("B_M", NodeKind::Merge { cost: params.merge_cost }, None);
    split.add_edge(am, bd, DataAnno::array("q", params.carried_elems));
    split.add_edge(bi, bm, DataAnno::array("out1", params.carried_elems));
    split.add_edge(bd, bm, DataAnno::array("out2", params.carried_elems / 4));

    let mut pipeline_iters = HashMap::new();
    pipeline_iters.insert(group, params.iters);

    AppWorkload { name, description, baseline: base, split, pipeline_iters, kernel }
}

/// Real compute kernels for the threaded backend.
///
/// These give the applications actual arithmetic to run when a graph
/// executes on real threads ([`ExecutorBackend::Threaded`]
/// (orchestra_runtime::threaded::ExecutorBackend)) instead of the
/// simulator's cost model. Every kernel is a pure function of
/// `(node, iter, task)` — the differential test harness depends on
/// bit-identical results regardless of which worker runs a task or in
/// what order.
pub mod kernels {
    use orchestra_runtime::threaded::{TaskCtx, TaskKernel};

    /// A 1-D Jacobi relaxation: each task owns a strip of cells seeded
    /// deterministically from its index and runs a number of sweeps
    /// proportional to the task's cost hint — the shape of the paper's
    /// grid applications (fluids/CFD phases).
    #[derive(Debug, Clone, Copy)]
    pub struct StencilKernel {
        /// Cells per task strip.
        pub cells: usize,
        /// Sweep count per simulated µs of cost.
        pub sweeps_per_us: f64,
    }

    impl Default for StencilKernel {
        fn default() -> Self {
            StencilKernel { cells: 32, sweeps_per_us: 1.0 }
        }
    }

    impl TaskKernel for StencilKernel {
        fn run_task(&self, ctx: &TaskCtx<'_>) -> f64 {
            let n = self.cells.max(2);
            let mut cur = vec![0.0f64; n];
            for (i, c) in cur.iter_mut().enumerate() {
                // Deterministic "initial condition" from the task's
                // global position.
                let t = (ctx.node.id * 131 + ctx.iter * 31 + ctx.task) * n + i;
                *c = ((t as f64) * 0.618_033_988_75).fract();
            }
            let sweeps = (ctx.cost_hint * self.sweeps_per_us).max(1.0) as usize;
            let mut next = cur.clone();
            for _ in 0..sweeps {
                for i in 0..n {
                    let l = cur[(i + n - 1) % n];
                    let r = cur[(i + 1) % n];
                    next[i] = 0.25 * l + 0.5 * cur[i] + 0.25 * r;
                }
                std::mem::swap(&mut cur, &mut next);
            }
            cur.iter().sum()
        }
    }

    /// Midpoint quadrature of a task-indexed oscillator: each task
    /// integrates over its own subinterval with a step count
    /// proportional to the cost hint — the shape of the paper's
    /// particle/circuit evaluation phases (independent element loops
    /// of very uneven cost).
    #[derive(Debug, Clone, Copy)]
    pub struct QuadratureKernel {
        /// Integration steps per simulated µs of cost.
        pub steps_per_us: f64,
    }

    impl Default for QuadratureKernel {
        fn default() -> Self {
            QuadratureKernel { steps_per_us: 8.0 }
        }
    }

    impl TaskKernel for QuadratureKernel {
        fn run_task(&self, ctx: &TaskCtx<'_>) -> f64 {
            let steps = (ctx.cost_hint * self.steps_per_us).max(1.0) as usize;
            let a = ctx.task as f64 + ctx.iter as f64 * 1e-2;
            let h = 1.0 / steps as f64;
            let omega = 1.0 + (ctx.node.id % 7) as f64;
            let mut acc = 0.0;
            for s in 0..steps {
                let x = a + (s as f64 + 0.5) * h;
                acc += (omega * x).sin() * (-x * 1e-3).exp() * h;
            }
            acc
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_delirium::NodeKind;

    #[test]
    fn serial_work_sums_nodes() {
        let mut g = DelirGraph::new();
        g.add_node("a", NodeKind::Task { cost: 5.0 }, None);
        g.add_node("b", NodeKind::DataParallel { tasks: 10, mean_cost: 2.0, cv: 0.0 }, None);
        let w = AppWorkload {
            name: "t",
            description: "",
            baseline: g.clone(),
            split: g,
            pipeline_iters: HashMap::new(),
            kernel: Program::new("t"),
        };
        assert_eq!(w.serial_work(), 25.0);
        w.validate();
    }

    #[test]
    fn app_kernels_are_schedule_independent() {
        use kernels::{QuadratureKernel, StencilKernel};
        use orchestra_runtime::executor::ExecutorOptions;
        use orchestra_runtime::threaded::{execute_sequential, execute_threaded, TaskKernel};

        let params = PhasedParams {
            iters: 3,
            ind_tasks: 24,
            ind_mean: 2.0,
            ind_cv: 0.4,
            dep_tasks: 8,
            dep_mean: 2.0,
            dep_cv: 0.4,
            merge_cost: 1.0,
            post_tasks: 30,
            post_mean: 1.0,
            post_cv: 0.1,
            carried_elems: 64,
        };
        let app = phased_app("t", "", &params, Program::new("t"));
        let mut opts = ExecutorOptions { threads: 2, ..ExecutorOptions::default() };
        opts.pipeline_iters.clone_from(&app.pipeline_iters);
        let kernels: [&dyn TaskKernel; 2] = [
            &StencilKernel { cells: 8, sweeps_per_us: 1.0 },
            &QuadratureKernel { steps_per_us: 2.0 },
        ];
        for kernel in kernels {
            let seq = execute_sequential(&app.split, &opts, kernel).unwrap();
            let thr = execute_threaded(&app.split, &opts, kernel).unwrap();
            assert_eq!(seq.outputs, thr.outputs, "kernel results depend on schedule");
            assert!(thr.exec_counts.iter().all(|c| c.iter().all(|&n| n == 1)));
        }
    }

    #[test]
    fn pipeline_iters_multiply_split_work() {
        let mut g = DelirGraph::new();
        g.add_node("a", NodeKind::Task { cost: 5.0 }, Some("P".into()));
        let mut iters = HashMap::new();
        iters.insert("P".to_string(), 10usize);
        let w = AppWorkload {
            name: "t",
            description: "",
            baseline: g.clone(),
            split: g,
            pipeline_iters: iters,
            kernel: Program::new("t"),
        };
        assert_eq!(w.split_serial_work(), 50.0);
    }
}
