//! Adaptive vortex method for turbulent fluid flow.
//!
//! Per timestep, vortex-element interactions are evaluated (irregular —
//! clustered elements in turbulent regions cost far more) and element
//! positions are advected (regular). The adaptive refinement couples
//! steps: refined regions depend on the previous step's vorticity,
//! which split isolates into the dependent piece.

use crate::common::{phased_app, AppWorkload, PhasedParams, Scale};
use orchestra_lang::ast::Program;
use orchestra_lang::parse_program;

/// Phase parameters for the vortex method.
pub fn params(scale: &Scale) -> PhasedParams {
    let elems = scale.n.max(64);
    PhasedParams {
        iters: 12,
        // Far-field interactions: independent, moderately variable.
        ind_tasks: elems * 7 / 2,
        ind_mean: 112.5,
        ind_cv: 0.45,
        // Near-field clustered interactions in refined regions.
        dep_tasks: elems / 2,
        dep_mean: 225.0,
        dep_cv: 1.0,
        merge_cost: 180.0,
        // Advection/update pass.
        post_tasks: elems,
        post_mean: 100.0,
        post_cv: 0.05,
        carried_elems: elems as u64 * 4,
    }
}

/// Builds the vortex workload.
pub fn workload(scale: &Scale) -> AppWorkload {
    phased_app(
        "vortex",
        "adaptive vortex method for turbulent flow modeling",
        &params(scale),
        kernel(),
    )
}

/// A representative element count.
pub fn paper_scale() -> Scale {
    Scale { n: 2560, seed: 1992 }
}

/// MF kernel: masked near-field interaction loop plus a regular
/// advection pass.
pub fn kernel() -> Program {
    parse_program(
        r#"
program vortex_kernel
  integer n = 16
  integer refined[1..n]
  float vort[1..n, 1..n], acc[1..n], pos[1..n, 1..n]

  interact: do e = 1, n where (refined[e] <> 0) {
    do i = 1, n {
      acc[i] = vort[e, i] * 0.5 + vort[i, i]
    }
    do i = 1, n {
      vort[i, e] = acc[i]
    }
  }
  advect: do i = 1, n {
    do j = 1, n {
      pos[j, i] = f(vort[j, i])
    }
  }
end
"#,
    )
    .expect("kernel parses")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_well_formed() {
        let w = workload(&Scale::test());
        w.validate();
        assert_eq!(w.name, "vortex");
    }

    #[test]
    fn near_field_is_expensive() {
        let p = params(&paper_scale());
        assert!(p.dep_mean >= 2.0 * p.ind_mean);
    }

    #[test]
    fn kernel_splits_under_the_compiler() {
        use orchestra_descriptors::{descriptor_of_stmt, SymCtx};
        use orchestra_split::{split_computation, SplitOptions};
        let k = kernel();
        let ctx = SymCtx::from_program(&k);
        let d = descriptor_of_stmt(&k.body[0], &ctx);
        let result = split_computation(&k, &k.body[1..], &d, &SplitOptions::default());
        assert_eq!(result.loop_splits, vec!["advect"]);
    }
}
