#![warn(missing_docs)]
//! # orchestra-apps
//!
//! The four production applications of the paper's evaluation (§5),
//! rebuilt as synthetic workload generators (see `DESIGN.md` for the
//! substitution argument):
//!
//! * [`psirrfan`] — x-ray tomography image reconstruction (Figure 6);
//! * [`climate`] — the UCLA general circulation model (~3200 grid
//!   cells, irregular cloud physics);
//! * [`emu`] — the EMU parallel circuit simulator;
//! * [`vortex`] — an adaptive vortex method for turbulent flow.
//!
//! Each application yields (a) a *baseline* Delirium graph with
//! barriers between sub-computations, (b) a *split* graph with the
//! concurrency and pipelining the transformation exposes, and (c) an MF
//! kernel with the same interaction structure, which the compiler path
//! (`orchestra-analysis` → `orchestra-descriptors` → `orchestra-split`)
//! transforms end-to-end — tying the measured runtime behaviour back to
//! the compile-time story.

pub mod climate;
pub mod common;
pub mod emu;
pub mod psirrfan;
pub mod vortex;

pub use common::{phased_app, AppWorkload, PhasedParams, Scale};

/// All four applications at their paper scales.
pub fn all_paper_workloads() -> Vec<AppWorkload> {
    vec![
        psirrfan::workload(&psirrfan::paper_scale()),
        climate::workload(&climate::paper_scale()),
        emu::workload(&emu::paper_scale()),
        vortex::workload(&vortex::paper_scale()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_workloads_validate() {
        for w in all_paper_workloads() {
            w.validate();
            assert!(w.serial_work() > 0.0, "{}", w.name);
            assert!(!w.pipeline_iters.is_empty(), "{}", w.name);
        }
    }

    #[test]
    fn names_are_distinct() {
        let names: Vec<&str> = all_paper_workloads().iter().map(|w| w.name).collect();
        let mut dedup = names.clone();
        dedup.dedup();
        assert_eq!(names.len(), 4);
        assert_eq!(dedup.len(), 4);
    }
}
