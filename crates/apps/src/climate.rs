//! UCLA General Circulation Model (climate modeling).
//!
//! §5: "we could run the UCLA climate model on 512 processors … at 87%
//! efficiency. When we modified the climate model using split wherever
//! applicable, we were able to run the same input data set (about 3200
//! latitude-longitude grid cells) at 83% efficiency on 1024 processors.
//! Hence the total speedup increased from 445 to 850. Without this
//! modification, the climate model's speedup on 1024 processors is only
//! 581 (57% efficiency) because of the irregular task execution times
//! found in the cloud physics section of the code."
//!
//! Each timestep runs regular dynamics over all grid cells and then
//! irregular cloud physics over the convectively active cells; split
//! pipelines the next step's dynamics against the current step's cloud
//! physics.

use crate::common::{phased_app, AppWorkload, PhasedParams, Scale};
use orchestra_lang::ast::Program;
use orchestra_lang::parse_program;

/// Phase parameters for the GCM.
pub fn params(scale: &Scale) -> PhasedParams {
    let cells = scale.n.max(64);
    PhasedParams {
        iters: 24,
        // Dynamics: every grid cell × vertical columns, regular.
        ind_tasks: cells * 2,
        ind_mean: 125.0,
        ind_cv: 0.15,
        // Cloud physics: ≈ 35% of cells convecting, costly and skewed
        // (split per vertical level into finer tasks).
        dep_tasks: cells * 7 / 5,
        dep_mean: 150.0,
        dep_cv: 1.1,
        merge_cost: 150.0,
        // Radiation/output post-pass.
        post_tasks: cells,
        post_mean: 120.0,
        post_cv: 0.1,
        carried_elems: cells as u64 * 6,
    }
}

/// Builds the climate workload.
pub fn workload(scale: &Scale) -> AppWorkload {
    phased_app(
        "climate",
        "UCLA general circulation model, ~3200 lat-lon grid cells (§5)",
        &params(scale),
        kernel(),
    )
}

/// The paper's input: about 3200 latitude-longitude grid cells.
pub fn paper_scale() -> Scale {
    Scale { n: 3200, seed: 1993 }
}

/// MF kernel: dynamics sweep over the grid, then masked cloud physics
/// on convecting cells — the interaction split exploits.
pub fn kernel() -> Program {
    parse_program(
        r#"
program climate_kernel
  integer n = 20
  integer convect[1..n]
  float field[1..n, 1..n], tend[1..n], flux[1..n, 1..n]

  physics: do cell = 1, n where (convect[cell] <> 0) {
    do k = 1, n {
      tend[k] = field[cell, k] * 0.5 + field[k, k]
    }
    do k = 1, n {
      field[k, cell] = tend[k]
    }
  }
  radiation: do i = 1, n {
    do j = 1, n {
      flux[j, i] = f(field[j, i])
    }
  }
end
"#,
    )
    .expect("kernel parses")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_well_formed() {
        let w = workload(&Scale::test());
        w.validate();
        assert!(w.pipeline_iters.values().all(|&i| i == 24));
    }

    #[test]
    fn cloud_physics_is_the_irregular_part() {
        let p = params(&paper_scale());
        assert!(p.dep_cv > p.ind_cv * 3.0);
        assert!(p.dep_mean > p.ind_mean);
    }

    #[test]
    fn paper_scale_has_3200_cells() {
        assert_eq!(paper_scale().n, 3200);
        let p = params(&paper_scale());
        assert_eq!(p.ind_tasks, 6400, "two dynamics tasks per cell");
        assert_eq!(p.dep_tasks, 4480, "35% of cells, four physics sub-tasks each");
    }

    #[test]
    fn kernel_splits_under_the_compiler() {
        use orchestra_descriptors::{descriptor_of_stmt, SymCtx};
        use orchestra_split::{split_computation, SplitOptions};
        let k = kernel();
        let ctx = SymCtx::from_program(&k);
        let d = descriptor_of_stmt(&k.body[0], &ctx);
        let result = split_computation(&k, &k.body[1..], &d, &SplitOptions::default());
        assert_eq!(result.loop_splits, vec!["radiation"]);
    }
}
