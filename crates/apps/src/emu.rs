//! EMU/CEMU: parallel circuit simulation \[1\].
//!
//! Event-driven gate-level simulation: per timestep, active gates are
//! re-evaluated (highly irregular — activity follows circuit structure
//! and input vectors, with a heavy tail from high-fanout nets) and the
//! event queues are rebuilt (regular). Split pipelines the next step's
//! independent gate evaluations against the current step's propagation.

use crate::common::{phased_app, AppWorkload, PhasedParams, Scale};
use orchestra_lang::ast::Program;
use orchestra_lang::parse_program;

/// Phase parameters for the circuit simulator.
pub fn params(scale: &Scale) -> PhasedParams {
    let gates = scale.n.max(64);
    PhasedParams {
        iters: 32,
        // Independent gate evaluations.
        ind_tasks: gates * 3 / 2,
        ind_mean: 60.0,
        ind_cv: 0.5,
        // Gates on the critical propagation path (depend on the
        // previous step's outputs), heavy-tailed fanout costs.
        dep_tasks: gates / 2,
        dep_mean: 140.0,
        dep_cv: 1.3,
        merge_cost: 80.0,
        // Event-queue rebuild / trace output.
        post_tasks: gates,
        post_mean: 60.0,
        post_cv: 0.1,
        carried_elems: gates as u64 * 2,
    }
}

/// Builds the EMU workload.
pub fn workload(scale: &Scale) -> AppWorkload {
    phased_app(
        "emu",
        "EMU parallel circuit simulator, event-driven gate evaluation",
        &params(scale),
        kernel(),
    )
}

/// A representative circuit size.
pub fn paper_scale() -> Scale {
    Scale { n: 4096, seed: 1986 }
}

/// MF kernel: masked gate-evaluation loop followed by a regular
/// state-commit pass.
pub fn kernel() -> Program {
    parse_program(
        r#"
program emu_kernel
  integer n = 16
  integer active[1..n]
  float state[1..n, 1..n], inval[1..n], nextst[1..n, 1..n]

  eval: do g = 1, n where (active[g] <> 0) {
    do i = 1, n {
      inval[i] = state[g, i] * 0.5 + state[i, i]
    }
    do i = 1, n {
      state[i, g] = inval[i]
    }
  }
  commit: do i = 1, n {
    do j = 1, n {
      nextst[j, i] = f(state[j, i])
    }
  }
end
"#,
    )
    .expect("kernel parses")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_well_formed() {
        let w = workload(&Scale::test());
        w.validate();
        assert_eq!(w.name, "emu");
    }

    #[test]
    fn gate_eval_is_heavy_tailed() {
        let p = params(&paper_scale());
        assert!(p.dep_cv >= 1.0, "fanout tail");
    }

    #[test]
    fn kernel_splits_under_the_compiler() {
        use orchestra_descriptors::{descriptor_of_stmt, SymCtx};
        use orchestra_split::{split_computation, SplitOptions};
        let k = kernel();
        let ctx = SymCtx::from_program(&k);
        let d = descriptor_of_stmt(&k.body[0], &ctx);
        let result = split_computation(&k, &k.body[1..], &d, &SplitOptions::default());
        assert_eq!(result.loop_splits, vec!["commit"]);
    }
}
