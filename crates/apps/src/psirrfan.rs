//! Psirrfan: x-ray tomography image reconstruction.
//!
//! The paper's headline application (Figure 6). Reconstruction iterates
//! over projection phases; within a phase, most column updates are
//! regular, but a mask-dependent subset (rays intersecting dense
//! regions) is expensive and depends on the previous phase's image.
//! Split exposes (a) the independent column updates of phase *k+1*
//! pipelined against phase *k* and (b) the filter post-pass's
//! independent piece running concurrently with reconstruction — the
//! "additional coarse-grained parallelism and two opportunities for
//! pipelining" of §5.

use crate::common::{phased_app, AppWorkload, PhasedParams, Scale};
use orchestra_lang::ast::Program;
use orchestra_lang::parse_program;

/// The phase parameters used by the Figure 6 reproduction.
pub fn params(scale: &Scale) -> PhasedParams {
    let n = scale.n.max(64);
    PhasedParams {
        iters: 16,
        ind_tasks: n * 4,
        ind_mean: 75.0,
        ind_cv: 0.35,
        dep_tasks: n * 2,
        dep_mean: 56.0,
        dep_cv: 1.2,
        merge_cost: 120.0,
        post_tasks: n * 4,
        post_mean: 75.0,
        post_cv: 0.1,
        carried_elems: n as u64 * 8,
    }
}

/// Builds the Psirrfan workload at the given scale.
///
/// The paper's input corresponds to `Scale { n: 2048, .. }` (≈ 2048
/// column tasks per projection phase, 16 phases).
pub fn workload(scale: &Scale) -> AppWorkload {
    phased_app(
        "psirrfan",
        "x-ray tomography image reconstruction (Figure 6)",
        &params(scale),
        kernel(),
    )
}

/// The paper-scale instance used for Figure 6.
pub fn paper_scale() -> Scale {
    Scale { n: 2048, seed: 1993 }
}

/// An MF kernel with Psirrfan's interaction structure: a masked
/// column-update loop (the reconstruction phase) followed by a filter
/// pass over the image — the same shape as the paper's Figure 1, so
/// the compiler path (analysis → descriptors → split) applies directly.
pub fn kernel() -> Program {
    parse_program(
        r#"
program psirrfan_kernel
  integer n = 24
  integer dense[1..n]
  float image[1..n, 1..n], proj[1..n], filtered[1..n, 1..n]

  recon: do col = 1, n where (dense[col] <> 0) {
    do i = 1, n {
      proj[i] = image[col, i] * 0.5 + image[i, i]
    }
    do i = 1, n {
      image[i, col] = proj[i]
    }
  }
  filter: do i = 1, n {
    do j = 1, n {
      filtered[j, i] = f(image[j, i])
    }
  }
end
"#,
    )
    .expect("kernel parses")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_well_formed() {
        let w = workload(&Scale::test());
        w.validate();
        assert_eq!(w.name, "psirrfan");
        assert!(w.serial_work() > 0.0);
    }

    #[test]
    fn split_preserves_phase_work() {
        // The split graph's phase work (I + D pieces) equals the
        // baseline's combined op, modulo added merge overhead.
        let w = workload(&Scale::test());
        let base_phase: f64 = w
            .baseline
            .nodes
            .iter()
            .filter(|n| n.group.is_some())
            .map(|n| n.kind.total_work())
            .sum();
        let split_phase: f64 = w
            .split
            .nodes
            .iter()
            .filter(|n| {
                n.group.is_some() && !matches!(n.kind, orchestra_delirium::NodeKind::Merge { .. })
            })
            .map(|n| n.kind.total_work())
            .sum();
        assert!(
            (base_phase - split_phase).abs() / base_phase < 0.01,
            "baseline {base_phase} vs split {split_phase}"
        );
    }

    #[test]
    fn kernel_splits_under_the_compiler() {
        use orchestra_descriptors::{descriptor_of_stmt, SymCtx};
        use orchestra_split::{split_computation, SplitOptions};
        let k = kernel();
        let ctx = SymCtx::from_program(&k);
        let d_recon = descriptor_of_stmt(&k.body[0], &ctx);
        let result = split_computation(&k, &k.body[1..], &d_recon, &SplitOptions::default());
        assert_eq!(result.loop_splits, vec!["filter"], "filter splits against recon");
        assert!(result.has_independent_work());
    }

    #[test]
    fn kernel_pipelines() {
        use orchestra_split::{pipeline_loop, SplitOptions};
        let k = kernel();
        let r = pipeline_loop(&k, &k.body[0], 1, &SplitOptions::default());
        assert!(r.is_some_and(|r| r.exposed_concurrency()), "recon loop pipelines");
    }

    #[test]
    fn paper_scale_is_larger_than_test() {
        let test = workload(&Scale::test());
        let paper = workload(&paper_scale());
        assert!(paper.serial_work() > test.serial_work());
    }
}
