//! Access triples `<G> B[P]` (§3.2).
//!
//! Each triple describes the access to one memory block `B`. The
//! optional guard `G` says when the access can occur; the optional
//! pattern `P` gives one [`DimPattern`] per dimension — a symbolic range
//! plus an optional *mask* limiting the range to elements whose mask
//! array entry satisfies a relation, written `1..n/(mask[*] <> 0)` in the
//! paper's notation (`*` is the current element of the range).

use crate::guard::{Guard, MaskRel, MaskTest};
use orchestra_analysis::symbolic::{SymExpr, SymRange};
use std::fmt;

/// A per-dimension access pattern: a range, optionally masked.
#[derive(Debug, Clone, PartialEq)]
pub struct DimPattern {
    /// The symbolic index range touched in this dimension.
    pub range: SymRange,
    /// Optional mask: only elements `e` of `range` with
    /// `mask_array[e] REL` are touched.
    pub mask: Option<(String, MaskRel)>,
}

impl DimPattern {
    /// An unmasked dimension pattern.
    pub fn range(r: SymRange) -> Self {
        DimPattern { range: r, mask: None }
    }

    /// A single-point dimension pattern.
    pub fn point(e: SymExpr) -> Self {
        DimPattern { range: SymRange::point(e), mask: None }
    }

    /// A masked dimension pattern.
    pub fn masked(r: SymRange, array: impl Into<String>, rel: MaskRel) -> Self {
        DimPattern { range: r, mask: Some((array.into(), rel)) }
    }

    /// Proves two dimension patterns disjoint: disjoint ranges, or
    /// complementary masks over the same mask array.
    pub fn disjoint(&self, other: &DimPattern) -> bool {
        if self.range.disjoint(&other.range) {
            return true;
        }
        if let (Some((a1, r1)), Some((a2, r2))) = (&self.mask, &other.mask) {
            if a1 == a2 && r1.complementary(*r2) {
                return true;
            }
        }
        false
    }

    /// Proves `self` covers `other` (used to drop reads dominated by
    /// writes). Conservative: masked patterns never cover.
    pub fn covers(&self, other: &DimPattern) -> bool {
        self.mask.is_none() && self.range.contains_range(&other.range)
    }

    /// Substitutes a symbol in the range bounds.
    pub fn subst(&self, name: &str, repl: &SymExpr) -> DimPattern {
        DimPattern { range: self.range.subst(name, repl), mask: self.mask.clone() }
    }
}

impl fmt::Display for DimPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.range.is_point() {
            write!(f, "{}", self.range.start)?;
        } else {
            write!(f, "{}", self.range)?;
        }
        if let Some((a, rel)) = &self.mask {
            write!(f, "/({a}[*] {rel})")?;
        }
        Ok(())
    }
}

/// An access triple `<G> B[P]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Triple {
    /// The guard; [`Guard::truth`] when always-on.
    pub guard: Guard,
    /// The accessed memory block (array or scalar name).
    pub block: String,
    /// Per-dimension patterns; `None` means the whole block.
    pub pattern: Option<Vec<DimPattern>>,
}

impl Triple {
    /// A triple covering an entire block.
    pub fn whole(block: impl Into<String>) -> Self {
        Triple { guard: Guard::truth(), block: block.into(), pattern: None }
    }

    /// A scalar access (a block with no dimensions).
    pub fn scalar(name: impl Into<String>) -> Self {
        Triple::whole(name)
    }

    /// A patterned access.
    pub fn patterned(block: impl Into<String>, dims: Vec<DimPattern>) -> Self {
        Triple { guard: Guard::truth(), block: block.into(), pattern: Some(dims) }
    }

    /// Returns this triple with an extra guard conjoined.
    pub fn guarded(mut self, g: Guard) -> Self {
        self.guard = self.guard.and(&g);
        self
    }

    /// Conservative overlap test: `false` only when the two accesses are
    /// *provably* disjoint.
    pub fn overlaps(&self, other: &Triple) -> bool {
        if self.block != other.block {
            return false;
        }
        if self.guard.contradicts(&other.guard) {
            return false;
        }
        let (Some(p1), Some(p2)) = (&self.pattern, &other.pattern) else {
            return true; // whole-block access overlaps anything
        };
        if p1.len() != p2.len() {
            return true; // rank confusion: stay conservative
        }
        // Disjoint in any one dimension ⇒ disjoint accesses.
        for (d1, d2) in p1.iter().zip(p2) {
            if d1.disjoint(d2) {
                return false;
            }
            // Cross check: one side's dimension mask vs the other side's
            // point guard, e.g. A writes q[…, col/(mask[*] <> 0)] while B
            // reads q[…, k] under guard mask[k] = 0.
            if let Some((arr, rel)) = &d1.mask {
                if point_guard_contradicts(&d2.range, &other.guard, arr, *rel) {
                    return false;
                }
            }
            if let Some((arr, rel)) = &d2.mask {
                if point_guard_contradicts(&d1.range, &self.guard, arr, *rel) {
                    return false;
                }
            }
            // Point-point dims made distinct by a linear `≠` guard
            // (`<i <> e> q[i]` vs `q[e]` — the multi-point exclusion
            // form of iteration splitting).
            if d1.range.is_point()
                && d2.range.is_point()
                && (ne_guard_separates(&self.guard, &d1.range.start, &d2.range.start)
                    || ne_guard_separates(&other.guard, &d1.range.start, &d2.range.start))
            {
                return false;
            }
        }
        true
    }

    /// Proves `self` (a write) covers `other` (a read): used to exclude
    /// reads dominated by writes when assembling descriptors.
    pub fn covers(&self, other: &Triple) -> bool {
        if self.block != other.block || !self.guard.is_truth() {
            return false;
        }
        match (&self.pattern, &other.pattern) {
            (None, _) => true,
            (Some(_), None) => false,
            (Some(p1), Some(p2)) => {
                p1.len() == p2.len() && p1.iter().zip(p2).all(|(a, b)| a.covers(b))
            }
        }
    }

    /// Substitutes a symbol throughout pattern and guard.
    pub fn subst(&self, name: &str, repl: &SymExpr) -> Triple {
        Triple {
            guard: self.guard.subst(name, repl),
            block: self.block.clone(),
            pattern: self
                .pattern
                .as_ref()
                .map(|dims| dims.iter().map(|d| d.subst(name, repl)).collect()),
        }
    }

    /// Whether the pattern or guard mentions `name`.
    pub fn mentions(&self, name: &str) -> bool {
        let in_pattern =
            self.pattern.as_ref().is_some_and(|dims| dims.iter().any(|d| d.range.mentions(name)));
        let in_guard = self.guard.atoms.iter().any(|a| match a {
            crate::guard::GuardAtom::Mask(m) => m.index.mentions(name),
            crate::guard::GuardAtom::Linear(i) => i.expr.coeff(name) != 0,
        });
        in_pattern || in_guard
    }

    /// Promotes the unresolved symbol `var` (an induction variable) to
    /// its `range`: pattern dimensions indexed by `var` widen to the
    /// corresponding range of values, and guard mask tests indexed
    /// exactly by `var` become dimension masks on dimensions whose index
    /// was exactly `var` (§3.2's guard-to-mask conversion).
    pub fn promote(&self, var: &str, range: &SymRange) -> Triple {
        let mask_tests: Vec<MaskTest> =
            self.guard.mask_tests_on(var).into_iter().cloned().collect();
        let pattern = self.pattern.as_ref().map(|dims| {
            dims.iter()
                .map(|d| {
                    if !d.range.mentions(var) {
                        return d.clone();
                    }
                    let promoted = promote_range(&d.range, var, range);
                    // Attach guard masks when the dimension's index was
                    // exactly the promoted variable.
                    let was_exactly_var =
                        d.range.is_point() && d.range.start.as_name() == Some(var);
                    let mask = if was_exactly_var && d.mask.is_none() {
                        mask_tests.first().map(|m| (m.array.clone(), m.rel))
                    } else {
                        d.mask.clone()
                    };
                    DimPattern { range: promoted, mask }
                })
                .collect()
        });
        // Guard atoms mentioning the variable no longer make sense after
        // promotion; drop them (widening, hence sound).
        Triple { guard: self.guard.drop_mentions(var), block: self.block.clone(), pattern }
    }
}

/// Widens a range whose endpoints mention `var` over all values of
/// `range`. Sound for affine indices: substitute the extreme values,
/// ordering by the sign of the coefficient.
fn promote_range(r: &SymRange, var: &str, var_range: &SymRange) -> SymRange {
    let promote_end = |e: &SymExpr, want_max: bool| -> SymExpr {
        let c = e.coeff(var);
        if c == 0 {
            return e.clone();
        }
        let take_end = (c > 0) == want_max;
        let repl = if take_end { &var_range.end } else { &var_range.start };
        e.subst(var, repl)
    };
    SymRange { start: promote_end(&r.start, false), end: promote_end(&r.end, true), skip: r.skip }
}

/// True when `guard` contains a linear `a − b ≠ 0` (either sign) for
/// the two point expressions — proving the points never coincide.
fn ne_guard_separates(guard: &Guard, a: &SymExpr, b: &SymExpr) -> bool {
    use orchestra_analysis::symbolic::Rel;
    let diff = a.sub(b);
    let neg = b.sub(a);
    guard.atoms.iter().any(|atom| match atom {
        crate::guard::GuardAtom::Linear(i) => {
            i.rel == Rel::NeZero && (i.expr == diff || i.expr == neg)
        }
        _ => false,
    })
}

/// Does `range` (a point) under `guard` contradict a dimension mask
/// `(arr, rel)`? True when the guard contains `arr[p] REL'` with `p`
/// provably equal to the point and `REL'` complementary to `rel`.
fn point_guard_contradicts(range: &SymRange, guard: &Guard, arr: &str, rel: MaskRel) -> bool {
    if !range.is_point() {
        return false;
    }
    guard.atoms.iter().any(|a| match a {
        crate::guard::GuardAtom::Mask(m) => {
            m.array == arr
                && m.index.eq_expr(&range.start) == Some(true)
                && m.rel.complementary(rel)
        }
        _ => false,
    })
}

impl fmt::Display for Triple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.guard.is_truth() {
            write!(f, "<{}> ", self.guard)?;
        }
        write!(f, "{}", self.block)?;
        if let Some(dims) = &self.pattern {
            write!(f, "[")?;
            for (i, d) in dims.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{d}")?;
            }
            write!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_analysis::symbolic::SymExpr;

    fn nm(s: &str) -> SymExpr {
        SymExpr::name(s)
    }

    fn whole_range() -> SymRange {
        SymRange::new(SymExpr::constant(1), nm("n"))
    }

    #[test]
    fn different_blocks_never_overlap() {
        let a = Triple::whole("x");
        let b = Triple::whole("y");
        assert!(!a.overlaps(&b));
    }

    #[test]
    fn whole_block_overlaps_everything_same_block() {
        let a = Triple::whole("x");
        let b = Triple::patterned("x", vec![DimPattern::point(nm("i"))]);
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
    }

    #[test]
    fn disjoint_rows_do_not_overlap() {
        // x[1..a-1, 1..n] vs x[a, 1..n]
        let a = Triple::patterned(
            "x",
            vec![
                DimPattern::range(SymRange::new(SymExpr::constant(1), nm("a").offset(-1))),
                DimPattern::range(whole_range()),
            ],
        );
        let b = Triple::patterned(
            "x",
            vec![DimPattern::point(nm("a")), DimPattern::range(whole_range())],
        );
        assert!(!a.overlaps(&b));
    }

    #[test]
    fn complementary_masks_disjoint() {
        // q[1..n/(mask[*] <> 0)] vs q[1..n/(mask[*] = 0)]
        let a = Triple::patterned(
            "q",
            vec![DimPattern::masked(whole_range(), "mask", MaskRel::NeConst(0))],
        );
        let b = Triple::patterned(
            "q",
            vec![DimPattern::masked(whole_range(), "mask", MaskRel::EqConst(0))],
        );
        assert!(!a.overlaps(&b));
    }

    #[test]
    fn same_mask_rel_overlaps() {
        let a = Triple::patterned(
            "q",
            vec![DimPattern::masked(whole_range(), "mask", MaskRel::NeConst(0))],
        );
        assert!(a.overlaps(&a.clone()));
    }

    #[test]
    fn guard_contradiction_blocks_overlap() {
        use crate::guard::MaskTest;
        let g1 = Guard::mask(MaskTest::new("m", nm("i"), MaskRel::NeConst(0)));
        let g2 = Guard::mask(MaskTest::new("m", nm("i"), MaskRel::EqConst(0)));
        let a = Triple::whole("x").guarded(g1);
        let b = Triple::whole("x").guarded(g2);
        assert!(!a.overlaps(&b));
    }

    #[test]
    fn masked_dim_vs_contradicting_point_guard() {
        use crate::guard::MaskTest;
        // A: q[1..n/(mask[*] <> 0)]; B: <mask[k] = 0> q[k].
        let a = Triple::patterned(
            "q",
            vec![DimPattern::masked(whole_range(), "mask", MaskRel::NeConst(0))],
        );
        let b = Triple::patterned("q", vec![DimPattern::point(nm("k"))])
            .guarded(Guard::mask(MaskTest::new("mask", nm("k"), MaskRel::EqConst(0))));
        assert!(!a.overlaps(&b));
        assert!(!b.overlaps(&a));
    }

    #[test]
    fn covers_excludes_dominated_read() {
        let w = Triple::patterned("x", vec![DimPattern::range(whole_range())]);
        let r = Triple::patterned(
            "x",
            vec![DimPattern::range(SymRange::new(SymExpr::constant(2), nm("n").offset(-1)))],
        );
        assert!(w.covers(&r));
        assert!(!r.covers(&w));
    }

    #[test]
    fn guarded_write_never_covers() {
        use crate::guard::MaskTest;
        let w = Triple::patterned("x", vec![DimPattern::range(whole_range())])
            .guarded(Guard::mask(MaskTest::new("m", nm("i"), MaskRel::NeConst(0))));
        let r = Triple::patterned("x", vec![DimPattern::range(whole_range())]);
        assert!(!w.covers(&r));
    }

    #[test]
    fn promote_point_dim_to_range_with_mask() {
        use crate::guard::MaskTest;
        // <mask[col] <> 0> q[i0, col] promoted over col = 1..n
        // → q[i0, 1..n/(mask[*] <> 0)]
        let t =
            Triple::patterned("q", vec![DimPattern::point(nm("i0")), DimPattern::point(nm("col"))])
                .guarded(Guard::mask(MaskTest::new("mask", nm("col"), MaskRel::NeConst(0))));
        let p = t.promote("col", &whole_range());
        let dims = p.pattern.as_ref().unwrap();
        assert_eq!(dims[0], DimPattern::point(nm("i0")), "unrelated dim untouched");
        assert_eq!(dims[1].range, whole_range());
        assert_eq!(dims[1].mask, Some(("mask".to_string(), MaskRel::NeConst(0))));
        assert!(p.guard.is_truth(), "guard converted to dim mask");
    }

    #[test]
    fn promote_affine_index() {
        // x[col - 1] over col = 1..n → x[0..n-1]
        let t = Triple::patterned("x", vec![DimPattern::point(nm("col").offset(-1))]);
        let p = t.promote("col", &whole_range());
        let dims = p.pattern.as_ref().unwrap();
        assert_eq!(dims[0].range.start, SymExpr::constant(0));
        assert_eq!(dims[0].range.end, nm("n").offset(-1));
    }

    #[test]
    fn promote_negative_coefficient_swaps_bounds() {
        // x[10 - col] over col = 1..n → x[10-n .. 9]
        let t = Triple::patterned("x", vec![DimPattern::point(nm("col").scale(-1).offset(10))]);
        let p = t.promote("col", &whole_range());
        let dims = p.pattern.as_ref().unwrap();
        assert_eq!(dims[0].range.start, nm("n").scale(-1).offset(10));
        assert_eq!(dims[0].range.end, SymExpr::constant(9));
    }

    #[test]
    fn display_matches_paper_notation() {
        let t = Triple::patterned(
            "q",
            vec![
                DimPattern::masked(SymRange::constant(1, 10), "miss", MaskRel::NeConst(1)),
                DimPattern::range(SymRange::constant(1, 10)),
            ],
        );
        assert_eq!(t.to_string(), "q[1..10/(miss[*] <> 1), 1..10]");
    }

    #[test]
    fn subst_shifts_iteration() {
        let t = Triple::patterned("q", vec![DimPattern::point(nm("i"))]);
        let s = t.subst("i", &nm("i").offset(-1));
        let dims = s.pattern.as_ref().unwrap();
        assert_eq!(dims[0].range.start, nm("i").offset(-1));
        // i vs i-1 are provably different points → no overlap.
        assert!(!t.overlaps(&s));
    }
}
