//! Symbolic data descriptors and interference (§3.2).
//!
//! A descriptor is two sets of triples: locations read (live on entry —
//! reads dominated by writes are excluded) and locations written.
//! Descriptor `A` *interferes* with `B` when
//!
//! ```text
//! (A.write ∩ B.write ≠ ∅)  — output dependence
//! (A.write ∩ B.read  ≠ ∅)  — flow dependence (A before B)
//! (A.read  ∩ B.write ≠ ∅)  — anti dependence
//! ```
//!
//! Interference is computed conservatively: descriptors interfere unless
//! disjointness can be proven.

use crate::triple::Triple;
use orchestra_analysis::symbolic::{SymExpr, SymRange};
use std::fmt;

/// A symbolic data descriptor: read and write triple sets.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Descriptor {
    /// Locations read (live on entry).
    pub reads: Vec<Triple>,
    /// Locations written.
    pub writes: Vec<Triple>,
}

impl Descriptor {
    /// An empty descriptor (touches nothing).
    pub fn new() -> Self {
        Descriptor::default()
    }

    /// Adds a read triple unless it is covered by an existing write
    /// (reads dominated by writes are not live on entry) or is a
    /// duplicate.
    pub fn add_read(&mut self, t: Triple) {
        if self.writes.iter().any(|w| w.covers(&t)) {
            return;
        }
        if !self.reads.contains(&t) {
            self.reads.push(t);
        }
    }

    /// Adds a write triple (deduplicated).
    pub fn add_write(&mut self, t: Triple) {
        if !self.writes.contains(&t) {
            self.writes.push(t);
        }
    }

    /// Merges another descriptor into this one, sequencing `other`
    /// *after* `self`: reads of `other` that are covered by writes of
    /// `self` are not live on entry to the combination.
    pub fn then(&mut self, other: &Descriptor) {
        for r in &other.reads {
            self.add_read(r.clone());
        }
        for w in &other.writes {
            self.add_write(w.clone());
        }
    }

    /// Set-union without domination filtering (used when combining
    /// branches of a conditional, where neither side dominates).
    pub fn union(&mut self, other: &Descriptor) {
        for r in &other.reads {
            if !self.reads.contains(r) {
                self.reads.push(r.clone());
            }
        }
        for w in &other.writes {
            self.add_write(w.clone());
        }
    }

    /// True when any triple of `a` may overlap any triple of `b`.
    fn sets_overlap(a: &[Triple], b: &[Triple]) -> bool {
        a.iter().any(|x| b.iter().any(|y| x.overlaps(y)))
    }

    /// Conservative interference test (output-, flow-, or
    /// anti-dependence).
    pub fn interferes(&self, other: &Descriptor) -> bool {
        Descriptor::sets_overlap(&self.writes, &other.writes)
            || Descriptor::sets_overlap(&self.writes, &other.reads)
            || Descriptor::sets_overlap(&self.reads, &other.writes)
    }

    /// Flow interference *from* `pred` *to* `self`: `pred.write ∩
    /// self.read ≠ ∅`. Unlike [`Descriptor::interferes`] this relation is
    /// not symmetric (§3.3.1's `flow_interfere`).
    pub fn flow_interferes_from(&self, pred: &Descriptor) -> bool {
        Descriptor::sets_overlap(&pred.writes, &self.reads)
    }

    /// Substitutes a symbol in every triple (e.g. shifting a loop-body
    /// descriptor from iteration `i` to `i-1` for pipelining).
    pub fn subst(&self, name: &str, repl: &SymExpr) -> Descriptor {
        Descriptor {
            reads: self.reads.iter().map(|t| t.subst(name, repl)).collect(),
            writes: self.writes.iter().map(|t| t.subst(name, repl)).collect(),
        }
    }

    /// Promotes an induction variable to its range in every triple
    /// (computing the whole-loop descriptor from the iteration
    /// descriptor).
    pub fn promote(&self, var: &str, range: &SymRange) -> Descriptor {
        Descriptor {
            reads: self.reads.iter().map(|t| t.promote(var, range)).collect(),
            writes: self.writes.iter().map(|t| t.promote(var, range)).collect(),
        }
    }

    /// Removes triples for the given block (used to ignore a
    /// computation's own induction variable or replicated temporaries).
    pub fn without_block(&self, block: &str) -> Descriptor {
        Descriptor {
            reads: self.reads.iter().filter(|t| t.block != block).cloned().collect(),
            writes: self.writes.iter().filter(|t| t.block != block).cloned().collect(),
        }
    }

    /// All block names touched.
    pub fn blocks(&self) -> Vec<&str> {
        let mut out: Vec<&str> =
            self.reads.iter().chain(&self.writes).map(|t| t.block.as_str()).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// True when the descriptor touches nothing.
    pub fn is_empty(&self) -> bool {
        self.reads.is_empty() && self.writes.is_empty()
    }
}

impl fmt::Display for Descriptor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "write:")?;
        for t in &self.writes {
            write!(f, " {t}")?;
        }
        write!(f, "\nread:")?;
        for t in &self.reads {
            write!(f, " {t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triple::DimPattern;
    use orchestra_analysis::symbolic::SymExpr;

    fn nm(s: &str) -> SymExpr {
        SymExpr::name(s)
    }

    fn whole() -> SymRange {
        SymRange::new(SymExpr::constant(1), nm("n"))
    }

    /// The paper's Figure 4 descriptors:
    /// DG: write {X[a,1..n]}, read {X[a,1..n], Y[1..n]}
    /// DH: write {sum}, read {X[1..n,1..n], sum}
    fn figure4() -> (Descriptor, Descriptor) {
        let mut dg = Descriptor::new();
        dg.add_write(Triple::patterned(
            "X",
            vec![DimPattern::point(nm("a")), DimPattern::range(whole())],
        ));
        dg.add_read(Triple::patterned(
            "X",
            vec![DimPattern::point(nm("a")), DimPattern::range(whole())],
        ));
        dg.add_read(Triple::patterned("Y", vec![DimPattern::range(whole())]));

        let mut dh = Descriptor::new();
        dh.add_write(Triple::scalar("sum"));
        dh.add_read(Triple::patterned(
            "X",
            vec![DimPattern::range(whole()), DimPattern::range(whole())],
        ));
        dh.add_read(Triple::scalar("sum"));
        (dg, dh)
    }

    #[test]
    fn figure4_interference() {
        let (dg, dh) = figure4();
        assert!(dg.interferes(&dh), "G writes X[a,*] which H reads");
        assert!(dh.flow_interferes_from(&dg));
        assert!(!dg.flow_interferes_from(&dh), "H writes only sum, G does not read sum");
    }

    #[test]
    fn figure4_restricted_iterations_independent() {
        let (dg, _dh) = figure4();
        // Restrict H's row index to 1..a-1: substitute the read pattern.
        let mut dh_restricted = Descriptor::new();
        dh_restricted.add_write(Triple::scalar("sum2"));
        dh_restricted.add_read(Triple::patterned(
            "X",
            vec![
                DimPattern::range(SymRange::new(SymExpr::constant(1), nm("a").offset(-1))),
                DimPattern::range(whole()),
            ],
        ));
        assert!(!dg.interferes(&dh_restricted), "rows 1..a-1 miss row a");
    }

    #[test]
    fn read_dominated_by_write_excluded() {
        let mut d = Descriptor::new();
        d.add_write(Triple::patterned("x", vec![DimPattern::range(SymRange::constant(1, 10))]));
        d.add_read(Triple::patterned("x", vec![DimPattern::point(SymExpr::constant(3))]));
        assert!(d.reads.is_empty(), "read of x[3] is covered by write of x[1..10]");
        // A symbolic point is NOT provably inside the write range.
        d.add_read(Triple::patterned("x", vec![DimPattern::point(nm("k"))]));
        assert_eq!(d.reads.len(), 1, "x[k] stays live: containment unprovable");
    }

    #[test]
    fn then_respects_sequencing() {
        let mut first = Descriptor::new();
        first.add_write(Triple::whole("t"));
        let mut second = Descriptor::new();
        second.add_read(Triple::whole("t"));
        second.add_read(Triple::whole("u"));
        first.then(&second);
        assert_eq!(first.reads.len(), 1, "read of t killed by earlier write");
        assert_eq!(first.reads[0].block, "u");
    }

    #[test]
    fn union_keeps_both_branch_reads() {
        let mut a = Descriptor::new();
        a.add_write(Triple::whole("t"));
        let mut b = Descriptor::new();
        b.add_read(Triple::whole("t"));
        a.union(&b);
        assert_eq!(a.reads.len(), 1, "union does not filter by domination");
    }

    #[test]
    fn promote_produces_whole_loop_descriptor() {
        // Iteration descriptor: write q[i0, col] under guard mask[col]<>0.
        use crate::guard::{Guard, MaskRel, MaskTest};
        let mut iter_d = Descriptor::new();
        iter_d.add_write(
            Triple::patterned("q", vec![DimPattern::range(whole()), DimPattern::point(nm("col"))])
                .guarded(Guard::mask(MaskTest::new("mask", nm("col"), MaskRel::NeConst(0)))),
        );
        let loop_d = iter_d.promote("col", &whole());
        let w = &loop_d.writes[0];
        let dims = w.pattern.as_ref().unwrap();
        assert_eq!(dims[1].mask, Some(("mask".to_string(), MaskRel::NeConst(0))));
        assert!(w.guard.is_truth());
    }

    #[test]
    fn independence_of_loop_iterations_via_subst() {
        // write q[i, 1..10]; the descriptor with i := i' (different
        // symbol) must still appear to overlap (conservative), but with
        // i := i+1 the write rows are provably different points.
        let d = Descriptor {
            reads: vec![],
            writes: vec![Triple::patterned(
                "q",
                vec![DimPattern::point(nm("i")), DimPattern::range(whole())],
            )],
        };
        let shifted = d.subst("i", &nm("i").offset(1));
        assert!(!d.interferes(&shifted), "rows i and i+1 are distinct");
        let other_sym = d.subst("i", &nm("j"));
        assert!(d.interferes(&other_sym), "i vs j may coincide");
    }

    #[test]
    fn without_block_drops_scalar() {
        let mut d = Descriptor::new();
        d.add_write(Triple::scalar("i"));
        d.add_write(Triple::whole("x"));
        let d2 = d.without_block("i");
        assert_eq!(d2.writes.len(), 1);
        assert_eq!(d2.blocks(), vec!["x"]);
    }

    #[test]
    fn empty_descriptors_never_interfere() {
        let e = Descriptor::new();
        let (dg, _) = figure4();
        assert!(!e.interferes(&dg));
        assert!(e.is_empty());
    }
}
