//! Guard expressions for symbolic data descriptors.
//!
//! Each access triple `<G> B[P]` carries an optional guard `G`: "the
//! access represented by the triple is known not to occur if the guard is
//! proven false" (§3.2). Guards are conjunctions of two kinds of atoms:
//!
//! * **mask tests** over array elements with symbolic indices, e.g.
//!   `mask[col] <> 0` — the form the paper's Figure 1/2/3 examples use;
//! * **linear inequalities** over unresolved scalars, e.g. `i <= a - 1`.
//!
//! The key operation is [`Guard::contradicts`]: two guards that provably
//! cannot hold together make their triples disjoint.

use orchestra_analysis::symbolic::{Assertion, Ineq, SymExpr};
use std::fmt;

/// The relation of a mask test: comparison of an array element against
/// an integer constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MaskRel {
    /// `array[idx] = c`
    EqConst(i64),
    /// `array[idx] <> c`
    NeConst(i64),
}

impl MaskRel {
    /// The logical negation.
    pub fn negate(self) -> MaskRel {
        match self {
            MaskRel::EqConst(c) => MaskRel::NeConst(c),
            MaskRel::NeConst(c) => MaskRel::EqConst(c),
        }
    }

    /// True when `self` and `other` can never hold of the same element.
    pub fn complementary(self, other: MaskRel) -> bool {
        match (self, other) {
            (MaskRel::EqConst(a), MaskRel::NeConst(b))
            | (MaskRel::NeConst(a), MaskRel::EqConst(b)) => a == b,
            (MaskRel::EqConst(a), MaskRel::EqConst(b)) => a != b,
            (MaskRel::NeConst(_), MaskRel::NeConst(_)) => false,
        }
    }
}

impl fmt::Display for MaskRel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MaskRel::EqConst(c) => write!(f, "= {c}"),
            MaskRel::NeConst(c) => write!(f, "<> {c}"),
        }
    }
}

/// A test of one element of a mask array: `array[index] REL`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MaskTest {
    /// The mask array name.
    pub array: String,
    /// Symbolic index of the tested element.
    pub index: SymExpr,
    /// The relation.
    pub rel: MaskRel,
}

impl MaskTest {
    /// Creates a mask test.
    pub fn new(array: impl Into<String>, index: SymExpr, rel: MaskRel) -> Self {
        MaskTest { array: array.into(), index, rel }
    }

    /// True when the two tests provably contradict: same array, provably
    /// equal index, complementary relations.
    pub fn contradicts(&self, other: &MaskTest) -> bool {
        self.array == other.array
            && self.index.eq_expr(&other.index) == Some(true)
            && self.rel.complementary(other.rel)
    }
}

impl fmt::Display for MaskTest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}] {}", self.array, self.index, self.rel)
    }
}

/// One atom of a guard conjunction.
#[derive(Debug, Clone, PartialEq)]
pub enum GuardAtom {
    /// An array-element mask test.
    Mask(MaskTest),
    /// A linear inequality over unresolved scalars.
    Linear(Ineq),
}

impl fmt::Display for GuardAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GuardAtom::Mask(m) => write!(f, "{m}"),
            GuardAtom::Linear(i) => write!(f, "{i}"),
        }
    }
}

/// A conjunction of guard atoms; empty means *true* (unguarded).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Guard {
    /// The conjuncts.
    pub atoms: Vec<GuardAtom>,
}

impl Guard {
    /// The trivially-true guard.
    pub fn truth() -> Self {
        Guard::default()
    }

    /// A single mask-test guard.
    pub fn mask(test: MaskTest) -> Self {
        Guard { atoms: vec![GuardAtom::Mask(test)] }
    }

    /// A single linear-inequality guard.
    pub fn linear(ineq: Ineq) -> Self {
        Guard { atoms: vec![GuardAtom::Linear(ineq)] }
    }

    /// True when the guard has no atoms.
    pub fn is_truth(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Conjunction of two guards.
    pub fn and(&self, other: &Guard) -> Guard {
        let mut atoms = self.atoms.clone();
        for a in &other.atoms {
            if !atoms.contains(a) {
                atoms.push(a.clone());
            }
        }
        Guard { atoms }
    }

    /// Substitutes a symbol in every atom (used when shifting a loop
    /// descriptor from iteration `i` to `i-1` for pipelining).
    pub fn subst(&self, name: &str, repl: &SymExpr) -> Guard {
        Guard {
            atoms: self
                .atoms
                .iter()
                .map(|a| match a {
                    GuardAtom::Mask(m) => GuardAtom::Mask(MaskTest {
                        array: m.array.clone(),
                        index: m.index.subst(name, repl),
                        rel: m.rel,
                    }),
                    GuardAtom::Linear(i) => GuardAtom::Linear(i.subst(name, repl)),
                })
                .collect(),
        }
    }

    /// True when any atom of `self` provably contradicts an atom of
    /// `other` (or an atom set is internally contradictory), meaning the
    /// two guarded accesses can never both occur.
    pub fn contradicts(&self, other: &Guard) -> bool {
        // Mask-test contradictions.
        for a in &self.atoms {
            for b in &other.atoms {
                match (a, b) {
                    (GuardAtom::Mask(m1), GuardAtom::Mask(m2)) if m1.contradicts(m2) => {
                        return true;
                    }
                    (GuardAtom::Linear(_), GuardAtom::Linear(_)) => {}
                    _ => {}
                }
            }
        }
        // Linear contradictions via assertion machinery.
        let lin = |g: &Guard| -> Assertion {
            let mut acc = Assertion::truth();
            for a in &g.atoms {
                if let GuardAtom::Linear(i) = a {
                    acc = acc.and(&Assertion::atom(i.clone()));
                }
            }
            acc
        };
        lin(self).and(&lin(other)).contradictory()
    }

    /// The mask tests whose index is exactly the given symbol — used by
    /// induction-variable promotion to turn a guard into a dimension mask.
    pub fn mask_tests_on(&self, name: &str) -> Vec<&MaskTest> {
        self.atoms
            .iter()
            .filter_map(|a| match a {
                GuardAtom::Mask(m) if m.index.as_name() == Some(name) => Some(m),
                _ => None,
            })
            .collect()
    }

    /// Removes atoms that mention `name` (widening; sound for guards).
    pub fn drop_mentions(&self, name: &str) -> Guard {
        Guard {
            atoms: self
                .atoms
                .iter()
                .filter(|a| match a {
                    GuardAtom::Mask(m) => !m.index.mentions(name),
                    GuardAtom::Linear(i) => i.expr.coeff(name) == 0,
                })
                .cloned()
                .collect(),
        }
    }
}

impl fmt::Display for Guard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_truth() {
            return write!(f, "true");
        }
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, " and ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idx(name: &str) -> SymExpr {
        SymExpr::name(name)
    }

    #[test]
    fn mask_rel_complementarity() {
        assert!(MaskRel::EqConst(0).complementary(MaskRel::NeConst(0)));
        assert!(MaskRel::EqConst(0).complementary(MaskRel::EqConst(1)));
        assert!(!MaskRel::NeConst(0).complementary(MaskRel::NeConst(1)));
        assert!(!MaskRel::EqConst(0).complementary(MaskRel::NeConst(1)));
    }

    #[test]
    fn mask_test_contradiction_requires_equal_index() {
        let a = MaskTest::new("mask", idx("col"), MaskRel::NeConst(0));
        let b = MaskTest::new("mask", idx("col"), MaskRel::EqConst(0));
        assert!(a.contradicts(&b));
        let c = MaskTest::new("mask", idx("row"), MaskRel::EqConst(0));
        assert!(!a.contradicts(&c), "indices not provably equal");
        let d = MaskTest::new("miss", idx("col"), MaskRel::EqConst(0));
        assert!(!a.contradicts(&d), "different arrays");
    }

    #[test]
    fn guard_contradiction_via_masks() {
        let g1 = Guard::mask(MaskTest::new("m", idx("i"), MaskRel::NeConst(0)));
        let g2 = Guard::mask(MaskTest::new("m", idx("i"), MaskRel::EqConst(0)));
        assert!(g1.contradicts(&g2));
        assert!(!g1.contradicts(&Guard::truth()));
    }

    #[test]
    fn guard_contradiction_via_linear() {
        // i = a  vs  i <= a - 1
        let i = idx("i");
        let a = idx("a");
        let g1 = Guard::linear(Ineq::eq(&i, &a));
        let g2 = Guard::linear(Ineq::le(&i, &a.offset(-1)));
        assert!(g1.contradicts(&g2));
    }

    #[test]
    fn subst_shifts_mask_index() {
        let g = Guard::mask(MaskTest::new("m", idx("i"), MaskRel::NeConst(0)));
        let shifted = g.subst("i", &idx("i").offset(-1));
        let GuardAtom::Mask(m) = &shifted.atoms[0] else { panic!() };
        assert_eq!(m.index, idx("i").offset(-1));
    }

    #[test]
    fn and_dedups() {
        let g = Guard::mask(MaskTest::new("m", idx("i"), MaskRel::NeConst(0)));
        let both = g.and(&g);
        assert_eq!(both.atoms.len(), 1);
    }

    #[test]
    fn mask_tests_on_picks_exact_symbol() {
        let g = Guard {
            atoms: vec![
                GuardAtom::Mask(MaskTest::new("m", idx("i"), MaskRel::NeConst(0))),
                GuardAtom::Mask(MaskTest::new("m", idx("i").offset(1), MaskRel::NeConst(0))),
            ],
        };
        assert_eq!(g.mask_tests_on("i").len(), 1);
    }

    #[test]
    fn drop_mentions_removes_dependent_atoms() {
        let g = Guard {
            atoms: vec![
                GuardAtom::Mask(MaskTest::new("m", idx("i"), MaskRel::NeConst(0))),
                GuardAtom::Linear(Ineq::le(&idx("a"), &SymExpr::constant(5))),
            ],
        };
        let d = g.drop_mentions("i");
        assert_eq!(d.atoms.len(), 1);
        assert!(matches!(d.atoms[0], GuardAtom::Linear(_)));
    }

    #[test]
    fn display_forms() {
        let g = Guard::mask(MaskTest::new("mask", idx("col"), MaskRel::NeConst(0)));
        assert_eq!(g.to_string(), "mask[col] <> 0");
        assert_eq!(Guard::truth().to_string(), "true");
    }
}
