//! Building descriptors from MF syntax.
//!
//! The builder walks structured statements with a symbolic context
//! ([`SymCtx`]): known scalar values (seeded from declaration
//! initializers and analysis results) and the set of array names. Scalars
//! assigned *within* the walked code are *killed* — index expressions
//! mentioning them can no longer be linearized and fall back to
//! whole-array patterns, which keeps the summary conservative.
//!
//! Loop descriptors are assembled exactly as §3.2 describes: first the
//! descriptor of a single iteration with the induction variable as an
//! unresolved symbol, then *promotion* of the variable to its range
//! (converting guards indexed by the variable into dimension masks).

use crate::descriptor::Descriptor;
use crate::guard::{Guard, MaskRel, MaskTest};
use crate::triple::{DimPattern, Triple};
use orchestra_analysis::propagate::lin_expr;
use orchestra_analysis::symbolic::{Ineq, SymExpr, SymRange, SymValue};
use orchestra_lang::ast::{BinOp, Expr, LValue, Program, Stmt};
use std::collections::{BTreeSet, HashMap};

/// Symbolic context for descriptor construction.
#[derive(Debug, Clone, Default)]
pub struct SymCtx {
    /// Known symbolic values of scalars, keyed by source name.
    pub values: HashMap<String, SymValue>,
    /// Names of arrays (anything else in an index is a scalar).
    pub arrays: BTreeSet<String>,
    /// Scalars whose values were changed by walked code; mentions of
    /// these can no longer be trusted in symbolic expressions.
    pub killed: BTreeSet<String>,
}

impl SymCtx {
    /// Builds a context from a program's declarations: constant scalar
    /// initializers become known values; array names are recorded.
    pub fn from_program(prog: &Program) -> SymCtx {
        let mut ctx = SymCtx::default();
        for d in &prog.decls {
            if d.is_array() {
                ctx.arrays.insert(d.name.clone());
            } else if let Some(init) = &d.init {
                if let Some(c) = init.as_int() {
                    ctx.values.insert(d.name.clone(), SymValue::int(c));
                }
            }
        }
        ctx
    }

    /// Linearizes an expression over source names, refusing killed names.
    pub fn lin(&self, e: &Expr) -> Option<SymExpr> {
        let le = lin_expr(e, &self.values)?;
        if le.terms().any(|(n, _)| self.killed.contains(n)) {
            None
        } else {
            Some(le)
        }
    }

    /// The declared-range pattern is unknown here, so a failed
    /// linearization yields a whole-block triple.
    fn access_triple(&self, array: &str, idx: &[Expr]) -> Triple {
        let mut dims = Vec::with_capacity(idx.len());
        for e in idx {
            match self.lin(e) {
                Some(le) => dims.push(DimPattern::point(le)),
                None => return Triple::whole(array),
            }
        }
        Triple::patterned(array, dims)
    }
}

/// Parses a condition of the form `m[idx] REL const` (either side) into
/// a mask test; returns `None` for anything else.
pub fn parse_mask_test(cond: &Expr, ctx: &SymCtx) -> Option<MaskTest> {
    let Expr::Bin(op, l, r) = cond else { return None };
    let (arr_side, const_side, op) = match (&**l, &**r) {
        (Expr::Index(_, _), _) => (l, r, *op),
        (_, Expr::Index(_, _)) => (r, l, op.swap()?),
        _ => return None,
    };
    let Expr::Index(array, idx) = &**arr_side else { return None };
    if idx.len() != 1 || !ctx.arrays.contains(array) {
        return None;
    }
    let c = const_side.as_int()?;
    let index = ctx.lin(&idx[0])?;
    let rel = match op {
        BinOp::Eq => MaskRel::EqConst(c),
        BinOp::Ne => MaskRel::NeConst(c),
        _ => return None,
    };
    Some(MaskTest { array: array.clone(), index, rel })
}

/// Converts a branch condition into a guard (best-effort): a mask test,
/// a linear inequality, a conjunction of those, or truth.
pub fn guard_of_cond(cond: &Expr, positive: bool, ctx: &SymCtx) -> Guard {
    if let Some(mut m) = parse_mask_test(cond, ctx) {
        if !positive {
            m.rel = m.rel.negate();
        }
        return Guard::mask(m);
    }
    match cond {
        Expr::Bin(BinOp::And, l, r) if positive => {
            guard_of_cond(l, true, ctx).and(&guard_of_cond(r, true, ctx))
        }
        Expr::Bin(BinOp::Or, l, r) if !positive => {
            guard_of_cond(l, false, ctx).and(&guard_of_cond(r, false, ctx))
        }
        Expr::Bin(op, l, r) if op.is_comparison() => {
            let (Some(a), Some(b)) = (ctx.lin(l), ctx.lin(r)) else {
                return Guard::truth();
            };
            let eff = if positive { *op } else { op.negate().expect("comparison") };
            let ineq = match eff {
                BinOp::Eq => Ineq::eq(&a, &b),
                BinOp::Ne => Ineq::ne(&a, &b),
                BinOp::Lt => Ineq::lt(&a, &b),
                BinOp::Le => Ineq::le(&a, &b),
                BinOp::Gt => Ineq::lt(&b, &a),
                BinOp::Ge => Ineq::le(&b, &a),
                _ => return Guard::truth(),
            };
            Guard::linear(ineq)
        }
        _ => Guard::truth(),
    }
}

/// Adds read triples for every memory location an expression touches.
fn expr_reads(e: &Expr, ctx: &SymCtx, d: &mut Descriptor, skip_scalar: &BTreeSet<String>) {
    match e {
        Expr::IntLit(_) | Expr::FloatLit(_) => {}
        Expr::Var(v) => {
            if ctx.arrays.contains(v) {
                d.add_read(Triple::whole(v));
            } else if !skip_scalar.contains(v) {
                d.add_read(Triple::scalar(v));
            }
        }
        Expr::Index(a, idx) => {
            d.add_read(ctx.access_triple(a, idx));
            for i in idx {
                expr_reads(i, ctx, d, skip_scalar);
            }
        }
        Expr::Bin(_, l, r) => {
            expr_reads(l, ctx, d, skip_scalar);
            expr_reads(r, ctx, d, skip_scalar);
        }
        Expr::Un(_, i) => expr_reads(i, ctx, d, skip_scalar),
        Expr::Call(_, args) => {
            for a in args {
                expr_reads(a, ctx, d, skip_scalar);
            }
        }
    }
}

/// Summarizes a statement sequence.
pub fn descriptor_of_stmts(stmts: &[Stmt], ctx: &SymCtx) -> Descriptor {
    let mut ctx = ctx.clone();
    let mut d = Descriptor::new();
    for s in stmts {
        let ds = descriptor_of_stmt_inner(s, &mut ctx);
        d.then(&ds);
    }
    d
}

/// Summarizes one statement.
pub fn descriptor_of_stmt(s: &Stmt, ctx: &SymCtx) -> Descriptor {
    let mut ctx = ctx.clone();
    descriptor_of_stmt_inner(s, &mut ctx)
}

/// The iteration-level summary of a loop: induction variable, its
/// symbolic ranges, and the body descriptor with the variable unresolved
/// (mask guard applied).
#[derive(Debug, Clone)]
pub struct LoopIteration {
    /// Induction variable name.
    pub var: String,
    /// The loop's (possibly discontinuous) iteration ranges; empty when
    /// a bound could not be linearized.
    pub ranges: Vec<SymRange>,
    /// Descriptor of one iteration with `var` as an unresolved symbol.
    pub descriptor: Descriptor,
}

/// Computes the iteration descriptor of a `do` loop (§3.2): the body
/// summary with the induction variable unresolved and the `where` mask
/// attached as a guard on every triple.
///
/// Returns `None` if `s` is not a loop.
pub fn loop_iteration_descriptor(s: &Stmt, ctx: &SymCtx) -> Option<LoopIteration> {
    let Stmt::Do { var, ranges, mask, body, .. } = s else { return None };
    let mut body_ctx = ctx.clone();
    // Within the body the induction variable is a valid unresolved
    // symbol, shadowing any outer kill or value.
    body_ctx.killed.remove(var);
    body_ctx.values.remove(var);

    let guard = match mask {
        Some(m) => guard_of_cond(m, true, &body_ctx),
        None => Guard::truth(),
    };
    let mut d = Descriptor::new();
    // The mask itself is read by every iteration.
    if let Some(m) = mask {
        expr_reads(m, &body_ctx, &mut d, &BTreeSet::new());
    }
    let body_d = descriptor_of_stmts(body, &body_ctx);
    // Apply the mask guard to the body's triples only (the mask read
    // occurs regardless).
    let mut guarded = Descriptor::new();
    for t in &body_d.reads {
        guarded.add_read(t.clone().guarded(guard.clone()));
    }
    for t in &body_d.writes {
        guarded.add_write(t.clone().guarded(guard.clone()));
    }
    d.then(&guarded);
    // Induction-variable traffic is loop machinery, not data (§3.2
    // "ignoring scalar variables" in the example): drop it.
    let d = d.without_block(var);

    let mut sym_ranges = Vec::new();
    for r in ranges {
        let (Some(lo), Some(hi)) = (ctx.lin(&r.lo), ctx.lin(&r.hi)) else {
            return Some(LoopIteration { var: var.clone(), ranges: Vec::new(), descriptor: d });
        };
        let skip = r.step.as_ref().and_then(|e| e.as_int()).unwrap_or(1);
        let (start, end, skip) = if skip < 0 { (hi, lo, -skip) } else { (lo, hi, skip) };
        sym_ranges.push(SymRange { start, end, skip });
    }
    Some(LoopIteration { var: var.clone(), ranges: sym_ranges, descriptor: d })
}

fn descriptor_of_stmt_inner(s: &Stmt, ctx: &mut SymCtx) -> Descriptor {
    match s {
        Stmt::Assign { target, value } => {
            let mut d = Descriptor::new();
            expr_reads(value, ctx, &mut d, &BTreeSet::new());
            match target {
                LValue::Var(v) => {
                    d.add_write(Triple::scalar(v));
                    // Track simple re-derivable values; otherwise kill.
                    match ctx.lin(value) {
                        Some(le) if !le.mentions(v) => {
                            ctx.values.insert(v.clone(), SymValue::Expr(le));
                            ctx.killed.remove(v);
                        }
                        _ => {
                            ctx.values.remove(v);
                            ctx.killed.insert(v.clone());
                        }
                    }
                }
                LValue::Index(a, idx) => {
                    for i in idx {
                        expr_reads(i, ctx, &mut d, &BTreeSet::new());
                    }
                    d.add_write(ctx.access_triple(a, idx));
                }
            }
            d
        }
        Stmt::If { cond, then_body, else_body } => {
            let mut d = Descriptor::new();
            expr_reads(cond, ctx, &mut d, &BTreeSet::new());
            let then_guard = guard_of_cond(cond, true, ctx);
            let else_guard = guard_of_cond(cond, false, ctx);
            let mut then_ctx = ctx.clone();
            let mut else_ctx = ctx.clone();
            let mut then_d = Descriptor::new();
            for s in then_body {
                let ds = descriptor_of_stmt_inner(s, &mut then_ctx);
                then_d.then(&ds);
            }
            let mut else_d = Descriptor::new();
            for s in else_body {
                let ds = descriptor_of_stmt_inner(s, &mut else_ctx);
                else_d.then(&ds);
            }
            let mut guarded = Descriptor::new();
            for t in &then_d.reads {
                guarded.reads.push(t.clone().guarded(then_guard.clone()));
            }
            for t in &then_d.writes {
                guarded.writes.push(t.clone().guarded(then_guard.clone()));
            }
            for t in &else_d.reads {
                guarded.reads.push(t.clone().guarded(else_guard.clone()));
            }
            for t in &else_d.writes {
                guarded.writes.push(t.clone().guarded(else_guard.clone()));
            }
            d.union(&guarded);
            // Kills merge from both arms.
            ctx.killed.extend(then_ctx.killed);
            ctx.killed.extend(else_ctx.killed);
            // Values assigned in either arm are unreliable afterwards.
            let mut d_out = ctx.values.clone();
            for (k, v) in &then_ctx.values {
                if ctx.values.get(k) != Some(v) {
                    d_out.remove(k);
                }
            }
            for (k, v) in &else_ctx.values {
                if ctx.values.get(k) != Some(v) {
                    d_out.remove(k);
                }
            }
            ctx.values = d_out;
            d
        }
        Stmt::Do { var, body, .. } => {
            let iter = loop_iteration_descriptor(s, ctx)
                .expect("Stmt::Do always yields an iteration descriptor");
            let d = if iter.ranges.is_empty() {
                // Bounds not linearizable: widen every triple mentioning
                // the induction variable to the whole block.
                widen_var(&iter.descriptor, var)
            } else {
                let mut acc = Descriptor::new();
                for r in &iter.ranges {
                    acc.union(&iter.descriptor.promote(var, r));
                }
                acc
            };
            // After the loop: the induction variable and body-assigned
            // scalars are killed in the surrounding context.
            ctx.killed.insert(var.clone());
            ctx.values.remove(var);
            let mut writes = BTreeSet::new();
            for b in body {
                b.scalar_writes(&mut writes);
            }
            for w in writes {
                ctx.killed.insert(w.clone());
                ctx.values.remove(&w);
            }
            d
        }
        Stmt::Call { args, .. } => {
            let mut d = Descriptor::new();
            for a in args {
                if let Expr::Var(name) = a {
                    if ctx.arrays.contains(name) {
                        // By-reference array argument: may read and write
                        // the whole block.
                        d.add_read(Triple::whole(name));
                        d.add_write(Triple::whole(name));
                        continue;
                    }
                }
                expr_reads(a, ctx, &mut d, &BTreeSet::new());
            }
            d
        }
    }
}

/// Replaces every triple that mentions `var` with a whole-block triple
/// (sound widening when the variable's range is unknown).
fn widen_var(d: &Descriptor, var: &str) -> Descriptor {
    let widen = |t: &Triple| -> Triple {
        if t.mentions(var) {
            Triple { guard: t.guard.drop_mentions(var), block: t.block.clone(), pattern: None }
        } else {
            t.clone()
        }
    };
    let mut out = Descriptor::new();
    for t in &d.reads {
        out.add_read(widen(t));
    }
    for t in &d.writes {
        out.add_write(widen(t));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_lang::parse_program;

    fn setup(src: &str) -> (Program, SymCtx) {
        let p = parse_program(src).unwrap();
        let ctx = SymCtx::from_program(&p);
        (p, ctx)
    }

    /// The paper's §3.2 running example:
    /// ```text
    /// do i = 1, 10
    ///   if (miss(i) <> 1) then
    ///     do j = 1, 10
    ///       q[i, j] = q[i, j] + x[j]
    /// ```
    const PAPER_EXAMPLE: &str = r#"
program ex
  integer miss[1..10]
  float q[1..10, 1..10], x[1..10]
  do i = 1, 10 {
    if (miss[i] <> 1) {
      do j = 1, 10 {
        q[i, j] = q[i, j] + x[j]
      }
    }
  }
end
"#;

    #[test]
    fn paper_example_iteration_descriptor() {
        let (p, ctx) = setup(PAPER_EXAMPLE);
        let iter = loop_iteration_descriptor(&p.body[0], &ctx).unwrap();
        assert_eq!(iter.var, "i");
        assert_eq!(iter.ranges, vec![SymRange::constant(1, 10)]);
        // write: <miss[i] <> 1> q[i, 1..10]
        assert_eq!(iter.descriptor.writes.len(), 1);
        let w = &iter.descriptor.writes[0];
        assert_eq!(w.block, "q");
        assert_eq!(w.to_string(), "<miss[i] <> 1> q[i, 1..10]");
        // reads include q (guarded), x (guarded), miss (mask).
        let read_blocks: BTreeSet<&str> =
            iter.descriptor.reads.iter().map(|t| t.block.as_str()).collect();
        assert!(read_blocks.contains("q"));
        assert!(read_blocks.contains("x"));
        assert!(read_blocks.contains("miss"));
    }

    #[test]
    fn paper_example_iterations_independent() {
        let (p, ctx) = setup(PAPER_EXAMPLE);
        let iter = loop_iteration_descriptor(&p.body[0], &ctx).unwrap();
        // "The iterations are independent if a change to the induction
        // variable yields a descriptor that intersects the original only
        // in their read sets."
        let shifted = iter.descriptor.subst("i", &SymExpr::name("i").offset(1));
        assert!(!iter.descriptor.interferes(&shifted));
    }

    #[test]
    fn paper_example_whole_loop_descriptor() {
        let (p, ctx) = setup(PAPER_EXAMPLE);
        let d = descriptor_of_stmt(&p.body[0], &ctx);
        // write: q[1..10/(miss[*] <> 1), 1..10]
        assert_eq!(d.writes.len(), 1);
        assert_eq!(d.writes[0].to_string(), "q[1..10/(miss[*] <> 1), 1..10]");
    }

    #[test]
    fn figure1_a_descriptor() {
        let p = orchestra_lang::builder::figure1_program(8);
        let ctx = SymCtx::from_program(&p);
        let d = descriptor_of_stmt(&p.body[0], &ctx);
        // A writes q's masked columns and result; reads q, result, mask.
        let w_q = d.writes.iter().find(|t| t.block == "q").expect("write of q");
        let dims = w_q.pattern.as_ref().unwrap();
        assert_eq!(dims[1].mask, Some(("mask".to_string(), MaskRel::NeConst(0))));
        assert!(d.reads.iter().any(|t| t.block == "mask"));
    }

    #[test]
    fn figure1_interference_a_b() {
        let p = orchestra_lang::builder::figure1_program(8);
        let ctx = SymCtx::from_program(&p);
        let da = descriptor_of_stmt(&p.body[0], &ctx);
        let db = descriptor_of_stmt(&p.body[1], &ctx);
        assert!(da.interferes(&db), "B reads q which A writes");
        assert!(db.flow_interferes_from(&da));
    }

    #[test]
    fn guard_of_cond_parses_mask_forms() {
        let (_, ctx) = setup(PAPER_EXAMPLE);
        let cond = orchestra_lang::builder::ne(
            orchestra_lang::builder::elem("miss", vec![orchestra_lang::builder::v("i")]),
            orchestra_lang::builder::int(1),
        );
        let g = guard_of_cond(&cond, true, &ctx);
        assert_eq!(g.to_string(), "miss[i] <> 1");
        let neg = guard_of_cond(&cond, false, &ctx);
        assert_eq!(neg.to_string(), "miss[i] = 1");
        assert!(g.contradicts(&neg));
    }

    #[test]
    fn killed_scalar_widens_access() {
        let (p, ctx) = setup(
            "program t\n integer n = 4, k\n integer m[1..n]\n float x[1..n]\n k = m[1]\n x[k] = 0.0\nend",
        );
        let d = descriptor_of_stmts(&p.body, &ctx);
        // k's value comes from memory; the write to x[k] must widen.
        let w = d.writes.iter().find(|t| t.block == "x").unwrap();
        assert_eq!(w.pattern, None, "killed index ⇒ whole-array write");
    }

    #[test]
    fn constant_chain_stays_precise() {
        // k = 1; k = k + 1 folds to 2 — the context tracks it exactly.
        let (p, ctx) = setup(
            "program t\n integer n = 4, k\n float x[1..n]\n k = 1\n k = k + 1\n x[k] = 0.0\nend",
        );
        let d = descriptor_of_stmts(&p.body, &ctx);
        let w = d.writes.iter().find(|t| t.block == "x").unwrap();
        assert_eq!(w.pattern.as_ref().unwrap()[0].range.start, SymExpr::constant(2));
    }

    #[test]
    fn tracked_scalar_keeps_precision() {
        let (p, ctx) =
            setup("program t\n integer n = 4, k\n float x[1..n]\n k = 2\n x[k] = 0.0\nend");
        let d = descriptor_of_stmts(&p.body, &ctx);
        let w = d.writes.iter().find(|t| t.block == "x").unwrap();
        let dims = w.pattern.as_ref().unwrap();
        assert_eq!(dims[0].range.start, SymExpr::constant(2));
    }

    #[test]
    fn if_branches_get_guards() {
        let (p, ctx) = setup(
            "program t\n integer n = 4\n integer m[1..n]\n float a[1..n], b[1..n]\n do i = 1, n {\n if (m[i] = 0) { a[i] = 1.0 } else { b[i] = 2.0 }\n }\nend",
        );
        let d = descriptor_of_stmt(&p.body[0], &ctx);
        let wa = d.writes.iter().find(|t| t.block == "a").unwrap();
        let wb = d.writes.iter().find(|t| t.block == "b").unwrap();
        // After promotion the guards become dimension masks.
        assert_eq!(
            wa.pattern.as_ref().unwrap()[0].mask,
            Some(("m".to_string(), MaskRel::EqConst(0)))
        );
        assert_eq!(
            wb.pattern.as_ref().unwrap()[0].mask,
            Some(("m".to_string(), MaskRel::NeConst(0)))
        );
        // The two writes are provably disjoint.
        assert!(!wa.overlaps(wb));
    }

    #[test]
    fn call_is_whole_array_read_write() {
        let (p, ctx) = setup(
            "program t\n integer n = 2\n float x[1..n]\n proc z(float x[1..n], integer n) { x[1] = 0.0 }\n call z(x, n)\nend",
        );
        let d = descriptor_of_stmts(&p.body, &ctx);
        assert!(d.writes.iter().any(|t| t.block == "x" && t.pattern.is_none()));
        assert!(d.reads.iter().any(|t| t.block == "n"));
    }

    #[test]
    fn reduction_reads_and_writes_scalar() {
        let (p, ctx) = setup(
            "program t\n integer n = 4\n float s, x[1..n]\n do i = 1, n { s = s + x[i] }\nend",
        );
        let d = descriptor_of_stmt(&p.body[0], &ctx);
        assert!(d.writes.iter().any(|t| t.block == "s"));
        assert!(d.reads.iter().any(|t| t.block == "s"));
        let rx = d.reads.iter().find(|t| t.block == "x").unwrap();
        assert_eq!(rx.pattern.as_ref().unwrap()[0].range, SymRange::constant(1, 4));
    }

    #[test]
    fn symbolic_bounds_stay_symbolic() {
        let (p, ctx) =
            setup("program t\n integer n\n float x[1..100]\n do i = 1, n { x[i] = 0.0 }\nend");
        let d = descriptor_of_stmt(&p.body[0], &ctx);
        let w = d.writes.iter().find(|t| t.block == "x").unwrap();
        let dims = w.pattern.as_ref().unwrap();
        assert_eq!(dims[0].range.end, SymExpr::name("n"));
    }

    #[test]
    fn discontinuous_loop_unions_ranges() {
        let (p, ctx) = setup(
            "program t\n integer n = 9, a = 4\n float x[1..n]\n do i = 1, a - 1 and a + 1, n { x[i] = 0.0 }\nend",
        );
        let d = descriptor_of_stmt(&p.body[0], &ctx);
        assert_eq!(d.writes.len(), 2, "one triple per range");
        // Neither overlaps the excluded point a=4.
        let point = Triple::patterned("x", vec![DimPattern::point(SymExpr::constant(4))]);
        for w in &d.writes {
            assert!(!w.overlaps(&point));
        }
    }
}
