#![warn(missing_docs)]
//! # orchestra-descriptors
//!
//! Symbolic data descriptors (§3.2 of *Orchestrating Interactions Among
//! Parallel Computations*, PLDI 1993).
//!
//! A descriptor summarizes the memory behaviour of a sub-computation as
//! two sets of guarded access triples `<G> B[P]`:
//!
//! * [`guard`] — guards: conjunctions of mask tests over array elements
//!   (`mask[col] <> 0`) and linear inequalities;
//! * [`triple`] — triples with per-dimension patterns (symbolic ranges,
//!   optionally masked: `q[1..10/(miss[*] <> 1), 1..10]`);
//! * [`descriptor`] — read/write sets with the paper's *interference*
//!   relation (output/flow/anti dependences, computed conservatively);
//! * [`build`] — constructing descriptors from MF statements, including
//!   iteration descriptors and induction-variable *promotion*.
//!
//! Unlike regular sections or Data Access Descriptors, these summaries
//! retain unresolved symbols anywhere in the pattern — the property the
//! split transformation depends on.
//!
//! ```
//! use orchestra_lang::parse_program;
//! use orchestra_descriptors::{SymCtx, descriptor_of_stmt};
//!
//! let p = parse_program(
//!     "program t\n integer n = 8\n float x[1..n]\n do i = 1, n { x[i] = 1.0 }\nend",
//! ).unwrap();
//! let ctx = SymCtx::from_program(&p);
//! let d = descriptor_of_stmt(&p.body[0], &ctx);
//! assert_eq!(d.writes.len(), 1);
//! ```

pub mod build;
pub mod descriptor;
pub mod guard;
pub mod triple;

pub use build::{
    descriptor_of_stmt, descriptor_of_stmts, guard_of_cond, loop_iteration_descriptor,
    parse_mask_test, LoopIteration, SymCtx,
};
pub use descriptor::Descriptor;
pub use guard::{Guard, GuardAtom, MaskRel, MaskTest};
pub use triple::{DimPattern, Triple};
