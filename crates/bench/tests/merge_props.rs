//! Property tests for the `BENCH_threaded.json` run store
//! (`orchestra_bench::runs`): the file format's two contracts are that
//! merging the same run twice changes nothing — so re-running the
//! bench at a commit never grows the file — and that normalization is
//! a fixpoint — so `--normalize` (and therefore every merge, which
//! re-emits through the same serializer) converges after one pass.
//!
//! Blocks are generated with the traps the string-aware parser exists
//! for: braces and quotes inside string values, escape sequences, and
//! nested objects.

use orchestra_bench::runs::{emit_runs, merge_runs, parse_runs, runs_from_text, SCHED_SCHEMA};
use proptest::prelude::*;
use proptest::{collection, sample};

/// A JSON-ish object literal on one line. Values include strings with
/// embedded braces, quotes, and backslashes — the cases that defeat
/// naive brace matching — plus nested objects.
fn block_strategy() -> BoxedStrategy<String> {
    let value = prop_oneof![
        (0..100_000i64).prop_map(|n| n.to_string()),
        (0..1_000_000i64).prop_map(|n| format!("{:.1}", n as f64 / 10.0)),
        Just("null".to_string()),
        Just("true".to_string()),
        sample::select(vec![
            r#""plain cpu""#,
            r#""AMD {embedded} brace""#,
            r#""close} first""#,
            r#""escaped \" quote""#,
            r#""back\\slash""#,
            r#""colon: and, comma""#,
            r#""trailing backslash \\""#,
        ])
        .prop_map(str::to_string),
        Just(r#"{"nested": {"deep": 1, "s": "{"}}"#.to_string()),
        Just("{}".to_string()),
    ];
    collection::vec((0..8usize, value), 0..5)
        .prop_map(|kvs| {
            let members: Vec<String> =
                kvs.iter().enumerate().map(|(i, (k, v))| format!("\"key{k}_{i}\": {v}")).collect();
            format!("{{{}}}", members.join(", "))
        })
        .boxed()
}

/// A short label from a small alphabet, so generated sequences hit the
/// replace path (same label twice) as well as the append path.
fn label_strategy() -> BoxedStrategy<String> {
    (0..4usize).prop_map(|i| format!("label{i}")).boxed()
}

/// A file built by folding a sequence of merges onto the empty string,
/// exactly how the bench binary grows the real file.
fn file_strategy() -> BoxedStrategy<String> {
    collection::vec((label_strategy(), block_strategy()), 0..6)
        .prop_map(|merges| {
            merges
                .iter()
                .fold(String::new(), |text, (label, block)| merge_runs(&text, label, block))
        })
        .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// merge(merge(a, b), b) == merge(a, b): re-merging the block you
    /// just merged is a no-op, byte for byte.
    #[test]
    fn merge_is_idempotent(
        text in file_strategy(),
        label in label_strategy(),
        block in block_strategy(),
    ) {
        let once = merge_runs(&text, &label, &block);
        let twice = merge_runs(&once, &label, &block);
        prop_assert_eq!(&once, &twice);
    }

    /// Normalization (parse + re-emit, what `--normalize` does) is a
    /// fixpoint: one pass reaches the normal form.
    #[test]
    fn normalize_is_a_fixpoint(text in file_strategy()) {
        let once = emit_runs(&runs_from_text(&text));
        let twice = emit_runs(&runs_from_text(&once));
        prop_assert_eq!(&once, &twice);
    }

    /// Emitted files round-trip: parsing recovers exactly the labelled
    /// blocks that were written, in order, so no merge ever corrupts
    /// or reorders earlier runs.
    #[test]
    fn emit_round_trips(runs in collection::vec((label_strategy(), block_strategy()), 0..5)) {
        // Deduplicate labels the way merge does (last write wins) so
        // the expectation matches file semantics.
        let mut expect: Vec<(String, String)> = Vec::new();
        for (label, block) in &runs {
            match expect.iter_mut().find(|(l, _)| l == label) {
                Some((_, b)) => *b = block.clone(),
                None => expect.push((label.clone(), block.clone())),
            }
        }
        let text = runs.iter().fold(String::new(), |t, (l, b)| merge_runs(&t, l, b));
        prop_assert_eq!(runs_from_text(&text), expect);
    }

    /// Merging replaces in place: the label count never exceeds the
    /// distinct labels merged, and the schema header survives.
    #[test]
    fn merge_replaces_not_appends(
        base in file_strategy(),
        label in label_strategy(),
        b1 in block_strategy(),
        b2 in block_strategy(),
    ) {
        let t1 = merge_runs(&base, &label, &b1);
        let t2 = merge_runs(&t1, &label, &b2);
        let runs = runs_from_text(&t2);
        prop_assert_eq!(runs.iter().filter(|(l, _)| *l == label).count(), 1);
        prop_assert_eq!(runs.len(), runs_from_text(&t1).len());
        prop_assert!(t2.contains(SCHED_SCHEMA));
        let stored = &runs.iter().find(|(l, _)| *l == label).unwrap().1;
        prop_assert_eq!(stored, &b2);
    }

    /// `parse_runs` never loops or panics on arbitrary junk around
    /// well-formed blocks: prepending garbage that contains no block
    /// of its own leaves the recovered runs unchanged or truncated,
    /// never corrupted.
    #[test]
    fn parse_survives_leading_junk(
        junk in sample::select(vec!["", "  \n", ",,,", "not json at all\n", "[1, 2]"]),
        label in label_strategy(),
        block in block_strategy(),
    ) {
        let body = format!("{junk}\"{label}\": {block}");
        let runs = parse_runs(&body);
        prop_assert_eq!(runs.len(), 1);
        prop_assert_eq!(&runs[0].0, &label);
        prop_assert_eq!(&runs[0].1, &block);
    }
}
