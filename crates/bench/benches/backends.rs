//! Benchmarks the two execution backends on the same Delirium graph:
//! the discrete-event simulator (cost of *predicting* a schedule) and
//! the real-thread backend (cost of *executing* one), across chunk
//! policies.
//!
//! ```sh
//! cargo bench -p orchestra-bench --bench backends
//! ```

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use orchestra_delirium::{DataAnno, DelirGraph, NodeKind};
use orchestra_machine::MachineConfig;
use orchestra_runtime::executor::{execute_graph, ExecutorOptions};
use orchestra_runtime::threaded::{execute_threaded, SpinKernel};
use orchestra_runtime::PolicyKind;

fn sample_graph() -> DelirGraph {
    let mut g = DelirGraph::new();
    let a = g.add_node("A", NodeKind::DataParallel { tasks: 256, mean_cost: 20.0, cv: 1.0 }, None);
    let b = g.add_node("B", NodeKind::DataParallel { tasks: 512, mean_cost: 10.0, cv: 0.1 }, None);
    let m = g.add_node("M", NodeKind::Merge { cost: 10.0 }, None);
    g.add_edge(a, m, DataAnno::array("ra", 256));
    g.add_edge(b, m, DataAnno::array("rb", 512));
    g
}

const POLICIES: [PolicyKind; 4] =
    [PolicyKind::SelfSched, PolicyKind::Gss, PolicyKind::Factoring, PolicyKind::Taper];

fn bench_simulated(c: &mut Criterion) {
    let g = sample_graph();
    let cfg = MachineConfig::ncube2(64);
    let mut group = c.benchmark_group("backend_simulated");
    for policy in POLICIES {
        let opts = ExecutorOptions { policy, ..ExecutorOptions::default() };
        group.bench_with_input(
            BenchmarkId::new("execute_graph", policy.name()),
            &opts,
            |bench, opts| {
                bench.iter(|| black_box(execute_graph(black_box(&g), &cfg, opts).unwrap().finish));
            },
        );
    }
    group.finish();
}

fn bench_threaded(c: &mut Criterion) {
    let g = sample_graph();
    // 2 workers and a light kernel keep the bench fast and
    // core-count-independent.
    let kernel = SpinKernel::with_scale(4.0);
    let mut group = c.benchmark_group("backend_threaded");
    group.sample_size(10);
    for policy in POLICIES {
        let opts = ExecutorOptions { policy, threads: 2, ..ExecutorOptions::default() };
        group.bench_with_input(
            BenchmarkId::new("execute_threaded", policy.name()),
            &opts,
            |bench, opts| {
                bench.iter(|| {
                    black_box(execute_threaded(black_box(&g), opts, &kernel).unwrap().wall_us)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_simulated, bench_threaded);
criterion_main!(benches);
