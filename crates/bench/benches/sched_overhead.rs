//! Scheduling hot-path overhead for the threaded backend.
//!
//! `claim` drains a `ChunkQueue` single-threaded including the batched
//! task-time feedback — the pure per-chunk cost of the claim path
//! (lock-free cursor for self-scheduling/GSS/factoring, short mutex
//! section for TAPER). `pool_flat` runs a wide operation of tiny tasks
//! through `execute_threaded`, so the whole orchestration stack
//! (deques, wakeups, chunk loop) is on the clock. Workers are capped
//! at 2, matching the rest of the suite, so numbers don't depend on
//! how many cores CI provides.
//!
//! The `sched` binary (`cargo run --release -p orchestra-bench --bin
//! sched`) measures the same paths across worker counts and emits
//! `BENCH_threaded.json`; this bench is the quick regression guard.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use orchestra_delirium::{DelirGraph, NodeKind};
use orchestra_runtime::executor::ExecutorOptions;
use orchestra_runtime::stats::OnlineStats;
use orchestra_runtime::threaded::queue::ChunkQueue;
use orchestra_runtime::threaded::{execute_threaded, SpinKernel};
use orchestra_runtime::PolicyKind;

const POLICIES: [PolicyKind; 5] = [
    PolicyKind::SelfSched,
    PolicyKind::Gss,
    PolicyKind::Factoring,
    PolicyKind::Taper,
    PolicyKind::TaperCostFn,
];

fn bench_claim(c: &mut Criterion) {
    let total = 4096usize;
    let mut g = c.benchmark_group("sched_claim");
    for kind in POLICIES {
        g.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, &k| {
            b.iter(|| {
                let q = ChunkQueue::new(k.instantiate(total), total, 4);
                let mut claimed = 0usize;
                while let Some(chunk) = q.claim() {
                    let mut stats = OnlineStats::new();
                    stats.observe_n(1.0 + (chunk.start % 7) as f64, chunk.len as u64);
                    q.observe_chunk(chunk.start, chunk.len, &stats);
                    claimed += chunk.len;
                }
                claimed
            })
        });
    }
    g.finish();
}

fn bench_pool_flat(c: &mut Criterion) {
    let mut graph = DelirGraph::new();
    graph.add_node("flat", NodeKind::DataParallel { tasks: 4_000, mean_cost: 1.0, cv: 0.5 }, None);
    let kernel = SpinKernel::with_scale(1.0);
    let mut g = c.benchmark_group("sched_pool_flat");
    for kind in POLICIES {
        let opts = ExecutorOptions { policy: kind, threads: 2, ..ExecutorOptions::default() };
        g.bench_with_input(BenchmarkId::from_parameter(kind.name()), &opts, |b, opts| {
            b.iter(|| execute_threaded(&graph, opts, &kernel).expect("bench graph valid"))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_claim, bench_pool_flat);
criterion_main!(benches);
