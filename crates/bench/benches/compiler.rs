//! Micro-benchmarks of the compiler passes: parsing, symbolic analysis,
//! descriptor construction, split, and pipelining on the paper's
//! Figure 1 program at several sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use orchestra_analysis::analyze_program;
use orchestra_core::compile;
use orchestra_descriptors::{descriptor_of_stmt, SymCtx};
use orchestra_lang::builder::figure1_program;
use orchestra_lang::{parse_program, pretty::pretty_print};
use orchestra_split::{pipeline_loop, split_computation, SplitOptions};

fn bench_parse(c: &mut Criterion) {
    let mut g = c.benchmark_group("parse");
    for n in [16, 64, 256] {
        let src = pretty_print(&figure1_program(n));
        g.bench_with_input(BenchmarkId::from_parameter(n), &src, |b, src| {
            b.iter(|| parse_program(std::hint::black_box(src)).unwrap())
        });
    }
    g.finish();
}

fn bench_analysis(c: &mut Criterion) {
    let mut g = c.benchmark_group("analysis");
    for n in [16, 64, 256] {
        let prog = figure1_program(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &prog, |b, p| {
            b.iter(|| analyze_program(std::hint::black_box(p)))
        });
    }
    g.finish();
}

fn bench_descriptors(c: &mut Criterion) {
    let prog = figure1_program(64);
    let ctx = SymCtx::from_program(&prog);
    c.bench_function("descriptor_of_A", |b| {
        b.iter(|| descriptor_of_stmt(std::hint::black_box(&prog.body[0]), &ctx))
    });
    let da = descriptor_of_stmt(&prog.body[0], &ctx);
    let db = descriptor_of_stmt(&prog.body[1], &ctx);
    c.bench_function("interference_test", |b| {
        b.iter(|| std::hint::black_box(&da).interferes(std::hint::black_box(&db)))
    });
}

fn bench_split(c: &mut Criterion) {
    let prog = figure1_program(64);
    let ctx = SymCtx::from_program(&prog);
    let da = descriptor_of_stmt(&prog.body[0], &ctx);
    let opts = SplitOptions::default();
    c.bench_function("split_B_vs_A", |b| {
        b.iter(|| split_computation(&prog, &prog.body[1..], std::hint::black_box(&da), &opts))
    });
    c.bench_function("pipeline_A", |b| {
        b.iter(|| pipeline_loop(&prog, std::hint::black_box(&prog.body[0]), 1, &opts))
    });
}

fn bench_compile(c: &mut Criterion) {
    let opts = SplitOptions::default();
    c.bench_function("compile_figure1_64", |b| {
        b.iter(|| compile(std::hint::black_box(figure1_program(64)), &opts))
    });
}

criterion_group!(
    benches,
    bench_parse,
    bench_analysis,
    bench_descriptors,
    bench_split,
    bench_compile
);
criterion_main!(benches);
