//! Micro-benchmarks of the runtime algorithms: chunk policies,
//! distributed TAPER, the allocation equalizer, and finishing-time
//! estimation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use orchestra_machine::{CostDistribution, MachineConfig};
use orchestra_runtime::{
    allocate_pair, finish_estimate, simulate_dist_taper, simulate_policy, AllocParams, OpOptions,
    OpSpec, PolicyKind,
};

fn pool(n: usize) -> Vec<f64> {
    CostDistribution::Bimodal { mean: 100.0, heavy_frac: 0.2, heavy_mult: 4.0 }.sample(n, 9)
}

fn bench_policies(c: &mut Criterion) {
    let costs = pool(4096);
    let cfg = MachineConfig::ncube2(256);
    let mut g = c.benchmark_group("chunk_policy");
    for kind in [
        PolicyKind::Static,
        PolicyKind::Gss,
        PolicyKind::Factoring,
        PolicyKind::Taper,
        PolicyKind::TaperCostFn,
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, &k| {
            b.iter(|| simulate_policy(&cfg, 256, &costs, k, &OpOptions::default()))
        });
    }
    g.finish();
}

fn bench_dist_taper(c: &mut Criterion) {
    let costs = pool(4096);
    let mut g = c.benchmark_group("dist_taper");
    for p in [64usize, 256] {
        let cfg = MachineConfig::ncube2(p);
        g.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            b.iter(|| simulate_dist_taper(&cfg, p, &costs, 64))
        });
    }
    g.finish();
}

fn bench_alloc(c: &mut Criterion) {
    let cfg = MachineConfig::ncube2(1024);
    let a = OpSpec {
        tasks: 8192,
        mean: 200.0,
        std_dev: 120.0,
        bytes_in: 8192 * 64,
        bytes_out: 8192 * 64,
        policy: PolicyKind::Taper,
    };
    let b_spec = OpSpec { tasks: 1024, mean: 50.0, std_dev: 10.0, ..a };
    c.bench_function("allocate_pair", |bch| {
        bch.iter(|| {
            allocate_pair(
                std::hint::black_box(&a),
                std::hint::black_box(&b_spec),
                1024,
                &cfg,
                &AllocParams::default(),
            )
        })
    });
    c.bench_function("finish_estimate", |bch| {
        bch.iter(|| finish_estimate(std::hint::black_box(&a), 512, &cfg))
    });
}

criterion_group!(benches, bench_policies, bench_dist_taper, bench_alloc);
criterion_main!(benches);
