//! The labelled-run store behind `BENCH_threaded.json`, plus the
//! regression check CI runs over it.
//!
//! The `sched` binary appends one measurement block per `--label` to a
//! single JSON file. This module owns the file format as pure string
//! functions so the invariants — merging is idempotent, normalization
//! is a fixpoint — are property-testable without touching the
//! filesystem:
//!
//! * [`parse_runs`] / [`runs_from_text`] recover the labelled blocks
//!   from any previous emission (string-aware brace matching, so CPU
//!   model names containing braces don't break it);
//! * [`emit_runs`] writes the whole store in one normal form;
//! * [`merge_runs`] replaces-or-appends one label and re-emits;
//! * [`check_regression`] groups runs by host fingerprint and fails a
//!   run that drops tasks/sec by more than the allowed fraction
//!   against the previous run on the same machine.

use crate::json::Json;
use std::fmt::Write as _;

/// Schema tag stamped on every emitted file. v4 added the `async`
/// backend section with its `yields` column; v5 added the `recovery`
/// section (one crash + snapshot-resume cycle per run, recording the
/// recovery wall time, restored-task count, and snapshot footprint).
/// Recovery columns are trend data only — [`check_regression`] reads
/// throughput metrics and ignores them.
pub const SCHED_SCHEMA: &str = "orchestra-sched-bench/v5";

/// Extracts every `"label": { … }` block at the top level of the runs
/// object, in file order, by string-aware brace matching: braces
/// inside quoted values (cpu model names, say) don't confuse the
/// match, and whatever separators sat between blocks — including the
/// stray blank lines older versions of the bench left behind — are
/// discarded, since the whole file is re-emitted in one normal form.
pub fn parse_runs(body: &str) -> Vec<(String, String)> {
    let bytes = body.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        if bytes[i] != b'"' {
            i += 1;
            continue;
        }
        let Some(close) = body[i + 1..].find('"').map(|o| i + 1 + o) else {
            break;
        };
        let label = body[i + 1..close].to_string();
        let mut k = close + 1;
        while k < bytes.len() && bytes[k].is_ascii_whitespace() {
            k += 1;
        }
        if k >= bytes.len() || bytes[k] != b':' {
            i = close + 1;
            continue;
        }
        k += 1;
        while k < bytes.len() && bytes[k].is_ascii_whitespace() {
            k += 1;
        }
        if k >= bytes.len() || bytes[k] != b'{' {
            i = close + 1;
            continue;
        }
        let start = k;
        let (mut depth, mut in_str, mut esc) = (0u32, false, false);
        let mut end = start;
        while k < bytes.len() {
            let c = bytes[k];
            if in_str {
                if esc {
                    esc = false;
                } else if c == b'\\' {
                    esc = true;
                } else if c == b'"' {
                    in_str = false;
                }
            } else {
                match c {
                    b'"' => in_str = true,
                    b'{' => depth += 1,
                    b'}' => {
                        depth -= 1;
                        if depth == 0 {
                            end = k + 1;
                            break;
                        }
                    }
                    _ => {}
                }
            }
            k += 1;
        }
        if end == start {
            break; // unterminated block: drop it rather than loop
        }
        out.push((label, body[start..end].to_string()));
        i = end;
    }
    out
}

/// Recovers the labelled run blocks from a whole bench file (empty
/// when the text holds no runs object).
pub fn runs_from_text(text: &str) -> Vec<(String, String)> {
    let runs_open = "\"runs\": {";
    match text.find(runs_open) {
        Some(at) => parse_runs(&text[at + runs_open.len()..]),
        None => Vec::new(),
    }
}

/// Serializes the whole store in normal form: schema header, then
/// each run block at a fixed indent with single-comma separators.
/// Because every write goes through this one serializer,
/// merge → parse → merge is a fixed point (idempotent), whatever
/// state the input file was in.
pub fn emit_runs(runs: &[(String, String)]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{\n  \"schema\": \"{SCHED_SCHEMA}\",\n  \"runs\": {{");
    for (i, (label, block)) in runs.iter().enumerate() {
        let comma = if i + 1 < runs.len() { "," } else { "" };
        let _ = writeln!(out, "    \"{label}\": {}{comma}", block.trim_end());
    }
    out.push_str("  }\n}\n");
    out
}

/// Replaces `label`'s block in `text` (or appends it) and returns the
/// re-emitted file.
pub fn merge_runs(text: &str, label: &str, run_json: &str) -> String {
    let mut runs = runs_from_text(text);
    match runs.iter_mut().find(|(l, _)| l == label) {
        Some((_, block)) => *block = run_json.to_string(),
        None => runs.push((label.to_string(), run_json.to_string())),
    }
    emit_runs(&runs)
}

/// What [`check_regression`] concluded.
#[derive(Debug)]
pub struct RegressionReport {
    /// Human-readable per-comparison lines, in file order.
    pub lines: Vec<String>,
    /// Number of fingerprint groups where two runs were compared.
    pub compared: usize,
    /// True iff any compared metric dropped past the allowance.
    pub regressed: bool,
}

/// The identity under which runs are comparable: same CPU model, core
/// count, OS, probed topology, and bench scale. Runs from different
/// machines (or quick vs full runs) are never diffed against each
/// other.
fn fingerprint(run: &Json) -> String {
    let host = run.get("host");
    let field = |obj: Option<&Json>, key: &str| -> String {
        match obj.and_then(|o| o.get(key)) {
            Some(Json::Str(s)) => s.clone(),
            Some(Json::Num(x)) => format!("{x}"),
            Some(Json::Bool(b)) => format!("{b}"),
            _ => "?".to_string(),
        }
    };
    let topo = run.get("topology");
    format!(
        "{} / {} cores / {} / topo {}:{}n{}p{}c{}t / quick={}",
        field(host, "cpu"),
        field(host, "cores"),
        field(host, "os"),
        field(topo, "source"),
        field(topo, "nodes"),
        field(topo, "packages"),
        field(topo, "cores"),
        field(topo, "cpus"),
        field(Some(run), "quick"),
    )
}

/// Geometric mean of the positive finite values, `None` when empty.
fn geomean(values: &[f64]) -> Option<f64> {
    let logs: Vec<f64> =
        values.iter().filter(|v| v.is_finite() && **v > 0.0).map(|v| v.ln()).collect();
    if logs.is_empty() {
        None
    } else {
        Some((logs.iter().sum::<f64>() / logs.len() as f64).exp())
    }
}

/// The throughput metrics of one run: `workload → geomean tasks/sec`
/// over every (policy, worker-count) cell, plus one `async/<workload>`
/// entry per async-backend row.
fn throughput_metrics(run: &Json) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    if let Some(tps) = run.get("tasks_per_sec") {
        for (workload, by_policy) in tps.members() {
            let cells: Vec<f64> = by_policy
                .members()
                .iter()
                .flat_map(|(_, by_w)| by_w.members().iter().filter_map(|(_, v)| v.as_f64()))
                .collect();
            if let Some(g) = geomean(&cells) {
                out.push((workload.clone(), g));
            }
        }
    }
    if let Some(asy) = run.get("async") {
        for (workload, row) in asy.members() {
            if let Some(rate) = row.get("tasks_per_sec").and_then(Json::as_f64) {
                if rate.is_finite() && rate > 0.0 {
                    out.push((format!("async/{workload}"), rate));
                }
            }
        }
    }
    out
}

/// Diffs the last run against the previous run *on the same host
/// fingerprint* and flags any workload whose tasks/sec geomean dropped
/// by more than `max_drop` (a fraction: 0.2 = 20%). Fingerprint groups
/// with fewer than two runs, and run blocks that don't parse as JSON,
/// are reported but never fail the check — a fresh baseline file must
/// pass.
pub fn check_regression(text: &str, max_drop: f64) -> RegressionReport {
    let runs = runs_from_text(text);
    let mut lines = Vec::new();
    let mut groups: Vec<(String, Vec<(String, Json)>)> = Vec::new();
    for (label, block) in &runs {
        match Json::parse(block) {
            Some(v) => {
                let fp = fingerprint(&v);
                match groups.iter_mut().find(|(g, _)| *g == fp) {
                    Some((_, members)) => members.push((label.clone(), v)),
                    None => groups.push((fp, vec![(label.clone(), v)])),
                }
            }
            None => lines.push(format!("note: run \"{label}\" is not valid JSON; skipped")),
        }
    }
    let mut compared = 0usize;
    let mut regressed = false;
    for (fp, members) in &groups {
        if members.len() < 2 {
            lines.push(format!(
                "note: only one run for [{fp}] (\"{}\"), nothing to compare",
                members[0].0
            ));
            continue;
        }
        let (base_label, base) = &members[members.len() - 2];
        let (cand_label, cand) = &members[members.len() - 1];
        compared += 1;
        let base_metrics = throughput_metrics(base);
        let mut checked = 0usize;
        for (workload, new_rate) in throughput_metrics(cand) {
            let Some((_, old_rate)) = base_metrics.iter().find(|(w, _)| *w == workload) else {
                continue;
            };
            checked += 1;
            let change = new_rate / old_rate - 1.0;
            if change < -max_drop {
                regressed = true;
                lines.push(format!(
                    "REGRESSION [{fp}] {workload}: {old_rate:.0} -> {new_rate:.0} tasks/sec \
                     ({:+.1}%, allowed -{:.0}%) comparing \"{base_label}\" -> \"{cand_label}\"",
                    change * 100.0,
                    max_drop * 100.0,
                ));
            } else {
                lines.push(format!(
                    "ok [{fp}] {workload}: {old_rate:.0} -> {new_rate:.0} tasks/sec ({:+.1}%)",
                    change * 100.0,
                ));
            }
        }
        if checked == 0 {
            lines.push(format!(
                "note: runs \"{base_label}\" and \"{cand_label}\" share no throughput metrics"
            ));
        }
    }
    RegressionReport { lines, compared, regressed }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal run block with one threaded workload and one async
    /// row, all rates scaled by `rate`.
    fn run_block(cpu: &str, rate: f64) -> String {
        format!(
            "{{\"host\": {{\"cpu\": \"{cpu}\", \"cores\": 4, \"os\": \"linux x86_64\"}}, \
             \"quick\": true, \
             \"tasks_per_sec\": {{\"small\": {{\"taper\": {{\"2\": {r1}, \"4\": {r2}}}, \
             \"self-sched\": {{\"2\": {r3}}}}}}}, \
             \"async\": {{\"small\": {{\"tasks_per_sec\": {r4}, \"yields\": 12}}}}}}",
            r1 = rate,
            r2 = rate * 2.0,
            r3 = rate * 0.5,
            r4 = rate * 0.8,
        )
    }

    fn file_with(blocks: &[(&str, String)]) -> String {
        let runs: Vec<(String, String)> =
            blocks.iter().map(|(l, b)| (l.to_string(), b.clone())).collect();
        emit_runs(&runs)
    }

    #[test]
    fn empty_history_passes_with_nothing_to_say() {
        for text in ["", "not json at all", "{\"schema\": \"x\", \"runs\": {}}"] {
            let r = check_regression(text, 0.2);
            assert_eq!(r.compared, 0, "{text:?}");
            assert!(!r.regressed, "{text:?}");
            assert!(r.lines.is_empty(), "{text:?}: {:?}", r.lines);
        }
    }

    #[test]
    fn single_run_is_a_fresh_baseline_not_a_failure() {
        let file = file_with(&[("only", run_block("cpu-a", 1000.0))]);
        let r = check_regression(&file, 0.2);
        assert_eq!(r.compared, 0);
        assert!(!r.regressed);
        // The lone run is reported, so CI logs show why nothing was
        // compared.
        assert_eq!(r.lines.len(), 1);
        assert!(
            r.lines[0].starts_with("note:") && r.lines[0].contains("\"only\""),
            "{:?}",
            r.lines
        );
    }

    #[test]
    fn exactly_at_threshold_is_allowed_just_past_it_is_not() {
        // The gate is strict (`change < -max_drop`): a drop of exactly
        // the allowance passes, one tick past it fails. `run_block`
        // scales every rate linearly, so the geomean change equals the
        // scale change.
        let at = file_with(&[
            ("before", run_block("cpu-a", 1000.0)),
            ("after", run_block("cpu-a", 800.0)),
        ]);
        let r = check_regression(&at, 0.2);
        assert_eq!(r.compared, 1);
        assert!(!r.regressed, "drop of exactly 20% must pass: {:?}", r.lines);

        let past = file_with(&[
            ("before", run_block("cpu-a", 1000.0)),
            ("after", run_block("cpu-a", 799.0)),
        ]);
        let r = check_regression(&past, 0.2);
        assert!(r.regressed, "20.1% drop must fail: {:?}", r.lines);
    }

    #[test]
    fn quick_and_full_runs_have_different_fingerprints() {
        // Same machine, but a --quick run must never be diffed against
        // a full run: the scales differ by design.
        let full = run_block("cpu-a", 1000.0).replace("\"quick\": true", "\"quick\": false");
        let file = file_with(&[("before", full), ("after", run_block("cpu-a", 100.0))]);
        let r = check_regression(&file, 0.2);
        assert_eq!(r.compared, 0);
        assert!(!r.regressed, "{:?}", r.lines);
    }

    #[test]
    fn flags_a_large_drop_and_passes_a_small_one() {
        let steady = file_with(&[
            ("before", run_block("cpu-a", 1000.0)),
            ("after", run_block("cpu-a", 900.0)),
        ]);
        let r = check_regression(&steady, 0.2);
        assert_eq!(r.compared, 1);
        assert!(!r.regressed, "10% drop within 20% allowance: {:?}", r.lines);

        let dropped = file_with(&[
            ("before", run_block("cpu-a", 1000.0)),
            ("after", run_block("cpu-a", 700.0)),
        ]);
        let r = check_regression(&dropped, 0.2);
        assert!(r.regressed, "30% drop must fail: {:?}", r.lines);
        assert!(r.lines.iter().any(|l| l.starts_with("REGRESSION")));
    }

    #[test]
    fn async_rate_alone_can_regress() {
        // Threaded rates improve; the async backend tanks.
        let mut bad = run_block("cpu-a", 1100.0);
        bad = bad
            .replace(&format!("\"tasks_per_sec\": {}", 1100.0 * 0.8), "\"tasks_per_sec\": 100.0");
        let file = file_with(&[("before", run_block("cpu-a", 1000.0)), ("after", bad)]);
        let r = check_regression(&file, 0.2);
        assert!(r.regressed, "{:?}", r.lines);
        assert!(r.lines.iter().any(|l| l.starts_with("REGRESSION") && l.contains("async/small")));
    }

    #[test]
    fn different_hosts_are_never_compared() {
        let file = file_with(&[
            ("before", run_block("cpu-a", 1000.0)),
            ("after", run_block("cpu-b", 100.0)),
        ]);
        let r = check_regression(&file, 0.2);
        assert_eq!(r.compared, 0);
        assert!(!r.regressed);
        assert_eq!(r.lines.iter().filter(|l| l.starts_with("note:")).count(), 2);
    }

    #[test]
    fn last_two_runs_win_in_a_longer_history() {
        let file = file_with(&[
            ("a", run_block("cpu-a", 100.0)), // ancient slow baseline: ignored
            ("b", run_block("cpu-a", 1000.0)),
            ("c", run_block("cpu-a", 950.0)),
        ]);
        let r = check_regression(&file, 0.2);
        assert_eq!(r.compared, 1);
        assert!(!r.regressed, "{:?}", r.lines);
    }

    #[test]
    fn merge_then_check_round_trips_through_the_file_format() {
        let t1 = merge_runs("", "before", &run_block("cpu-a", 1000.0));
        let t2 = merge_runs(&t1, "after", &run_block("cpu-a", 600.0));
        assert!(t2.contains(&format!("\"schema\": \"{SCHED_SCHEMA}\"")));
        let r = check_regression(&t2, 0.2);
        assert!(r.regressed, "{:?}", r.lines);
        // Re-merging the same label replaces, not appends.
        let t3 = merge_runs(&t2, "after", &run_block("cpu-a", 990.0));
        assert_eq!(runs_from_text(&t3).len(), 2);
        assert!(!check_regression(&t3, 0.2).regressed);
    }
}
