//! The labelled-run store behind `BENCH_threaded.json`, plus the
//! regression check CI runs over it.
//!
//! The `sched` binary appends one measurement block per `--label` to a
//! single JSON file. This module owns the file format as pure string
//! functions so the invariants — merging is idempotent, normalization
//! is a fixpoint — are property-testable without touching the
//! filesystem:
//!
//! * [`parse_runs`] / [`runs_from_text`] recover the labelled blocks
//!   from any previous emission (string-aware brace matching, so CPU
//!   model names containing braces don't break it);
//! * [`emit_runs`] writes the whole store in one normal form;
//! * [`merge_runs`] replaces-or-appends one label and re-emits;
//! * [`check_regression`] groups runs by host fingerprint and fails a
//!   run that drops tasks/sec by more than the allowed fraction
//!   against the previous run on the same machine.

use crate::json::Json;
use std::fmt::Write as _;

/// Schema tag stamped on every emitted file. v4 added the `async`
/// backend section with its `yields` column; v5 added the `recovery`
/// section (one crash + snapshot-resume cycle per run, recording the
/// recovery wall time, restored-task count, and snapshot footprint);
/// v6 added the `rayon` section (the hand-rolled join-splitter
/// baseline, tasks/sec per workload and worker count) and pulled both
/// it and the `claim_ns_per_task` table into the regression gate.
/// v7 added the `alloc` section (the §4.1.2 finishing-time equalizer
/// vs the naive shared pool on an asymmetric concurrent level,
/// tasks/sec per worker count), gated like every throughput column.
/// v8 added the `pipeline` section (the streamed data plane vs the
/// barriered one on a deep small-task chain: paired median-wall-ratio
/// tasks/sec per worker count, plus the streamed run's
/// watermark-publication count as trend data), gated like `alloc`.
/// v9 added the `daemon` section (the `orchestrad` serving path over
/// a unix socket: aggregate tasks/sec and mean submission→completion
/// latency at 1/2/4 concurrent tenants, plus a `sequential` row that
/// submits the same jobs one at a time — the concurrency rows keep
/// the cross-graph equalizer paying its way, the sequential row keeps
/// the wire + session overhead honest); its `latency_us` column is
/// trend data. Recovery columns, `watermark_pubs`, and `latency_us`
/// are trend data only — [`check_regression`] reads throughput
/// metrics and ignores them.
pub const SCHED_SCHEMA: &str = "orchestra-sched-bench/v9";

/// Extracts every `"label": { … }` block at the top level of the runs
/// object, in file order, by string-aware brace matching: braces
/// inside quoted values (cpu model names, say) don't confuse the
/// match, and whatever separators sat between blocks — including the
/// stray blank lines older versions of the bench left behind — are
/// discarded, since the whole file is re-emitted in one normal form.
pub fn parse_runs(body: &str) -> Vec<(String, String)> {
    let bytes = body.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        if bytes[i] != b'"' {
            i += 1;
            continue;
        }
        let Some(close) = body[i + 1..].find('"').map(|o| i + 1 + o) else {
            break;
        };
        let label = body[i + 1..close].to_string();
        let mut k = close + 1;
        while k < bytes.len() && bytes[k].is_ascii_whitespace() {
            k += 1;
        }
        if k >= bytes.len() || bytes[k] != b':' {
            i = close + 1;
            continue;
        }
        k += 1;
        while k < bytes.len() && bytes[k].is_ascii_whitespace() {
            k += 1;
        }
        if k >= bytes.len() || bytes[k] != b'{' {
            i = close + 1;
            continue;
        }
        let start = k;
        let (mut depth, mut in_str, mut esc) = (0u32, false, false);
        let mut end = start;
        while k < bytes.len() {
            let c = bytes[k];
            if in_str {
                if esc {
                    esc = false;
                } else if c == b'\\' {
                    esc = true;
                } else if c == b'"' {
                    in_str = false;
                }
            } else {
                match c {
                    b'"' => in_str = true,
                    b'{' => depth += 1,
                    b'}' => {
                        depth -= 1;
                        if depth == 0 {
                            end = k + 1;
                            break;
                        }
                    }
                    _ => {}
                }
            }
            k += 1;
        }
        if end == start {
            break; // unterminated block: drop it rather than loop
        }
        out.push((label, body[start..end].to_string()));
        i = end;
    }
    out
}

/// Recovers the labelled run blocks from a whole bench file (empty
/// when the text holds no runs object).
pub fn runs_from_text(text: &str) -> Vec<(String, String)> {
    let runs_open = "\"runs\": {";
    match text.find(runs_open) {
        Some(at) => parse_runs(&text[at + runs_open.len()..]),
        None => Vec::new(),
    }
}

/// Serializes the whole store in normal form: schema header, then
/// each run block at a fixed indent with single-comma separators.
/// Because every write goes through this one serializer,
/// merge → parse → merge is a fixed point (idempotent), whatever
/// state the input file was in.
pub fn emit_runs(runs: &[(String, String)]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{\n  \"schema\": \"{SCHED_SCHEMA}\",\n  \"runs\": {{");
    for (i, (label, block)) in runs.iter().enumerate() {
        let comma = if i + 1 < runs.len() { "," } else { "" };
        let _ = writeln!(out, "    \"{label}\": {}{comma}", block.trim_end());
    }
    out.push_str("  }\n}\n");
    out
}

/// Replaces `label`'s block in `text` (or appends it) and returns the
/// re-emitted file.
pub fn merge_runs(text: &str, label: &str, run_json: &str) -> String {
    let mut runs = runs_from_text(text);
    match runs.iter_mut().find(|(l, _)| l == label) {
        Some((_, block)) => *block = run_json.to_string(),
        None => runs.push((label.to_string(), run_json.to_string())),
    }
    emit_runs(&runs)
}

/// What [`check_regression`] concluded.
#[derive(Debug)]
pub struct RegressionReport {
    /// Human-readable per-comparison lines, in file order.
    pub lines: Vec<String>,
    /// Number of fingerprint groups where two runs were compared.
    pub compared: usize,
    /// True iff any compared metric dropped past the allowance.
    pub regressed: bool,
}

/// The identity under which runs are comparable: same CPU model, core
/// count, OS, probed topology, and bench scale. Runs from different
/// machines (or quick vs full runs) are never diffed against each
/// other.
fn fingerprint(run: &Json) -> String {
    let host = run.get("host");
    let field = |obj: Option<&Json>, key: &str| -> String {
        match obj.and_then(|o| o.get(key)) {
            Some(Json::Str(s)) => s.clone(),
            Some(Json::Num(x)) => format!("{x}"),
            Some(Json::Bool(b)) => format!("{b}"),
            _ => "?".to_string(),
        }
    };
    let topo = run.get("topology");
    format!(
        "{} / {} cores / {} / topo {}:{}n{}p{}c{}t / quick={}",
        field(host, "cpu"),
        field(host, "cores"),
        field(host, "os"),
        field(topo, "source"),
        field(topo, "nodes"),
        field(topo, "packages"),
        field(topo, "cores"),
        field(topo, "cpus"),
        field(Some(run), "quick"),
    )
}

/// Geometric mean of the positive finite values, `None` when empty.
fn geomean(values: &[f64]) -> Option<f64> {
    let logs: Vec<f64> =
        values.iter().filter(|v| v.is_finite() && **v > 0.0).map(|v| v.ln()).collect();
    if logs.is_empty() {
        None
    } else {
        Some((logs.iter().sum::<f64>() / logs.len() as f64).exp())
    }
}

/// The throughput metrics of one run, all oriented so that *bigger is
/// better* (the gate flags drops):
///
/// * `<workload>` — geomean tasks/sec over every (policy, worker)
///   cell of the threaded table;
/// * `async/<workload>` — the cooperative backend's tasks/sec;
/// * `rayon/<workload>` — geomean tasks/sec of the join-splitter
///   baseline over its worker counts (schema v6);
/// * `claim_rate/<policy>` — the inverted claim latency, tasks per µs
///   of pure scheduling hot path (schema v6: a claim-latency increase
///   past the allowance now fails the gate, not just whole-run
///   throughput);
/// * `alloc/<wN>/{equalizer,shared}` — tasks/sec on the asymmetric
///   concurrent level with the §4.1.2 equalizer on vs the naive
///   shared pool (schema v7): the shared row keeps the baseline
///   honest, the equalizer row keeps the allocator paying its way;
/// * `pipeline/<wN>/{streamed,barrier}` — tasks/sec on the deep
///   small-task chain with chunk-granularity streaming on vs off
///   (schema v8): the barrier row keeps the baseline honest, the
///   streamed row keeps the watermark data plane paying its way. The
///   row's `watermark_pubs` column is trend data, never gated;
/// * `daemon/<cell>` — aggregate tasks/sec through the `orchestrad`
///   serving path at 1/2/4 concurrent tenants and sequentially
///   (schema v9): a drop here means the wire protocol, admission
///   path, or cross-graph allocator got slower end to end. The rows'
///   `latency_us` column is trend data, never gated.
fn throughput_metrics(run: &Json) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    if let Some(tps) = run.get("tasks_per_sec") {
        for (workload, by_policy) in tps.members() {
            let cells: Vec<f64> = by_policy
                .members()
                .iter()
                .flat_map(|(_, by_w)| by_w.members().iter().filter_map(|(_, v)| v.as_f64()))
                .collect();
            if let Some(g) = geomean(&cells) {
                out.push((workload.clone(), g));
            }
        }
    }
    if let Some(asy) = run.get("async") {
        for (workload, row) in asy.members() {
            if let Some(rate) = row.get("tasks_per_sec").and_then(Json::as_f64) {
                if rate.is_finite() && rate > 0.0 {
                    out.push((format!("async/{workload}"), rate));
                }
            }
        }
    }
    if let Some(ray) = run.get("rayon") {
        for (workload, by_w) in ray.members() {
            let cells: Vec<f64> = by_w.members().iter().filter_map(|(_, v)| v.as_f64()).collect();
            if let Some(g) = geomean(&cells) {
                out.push((format!("rayon/{workload}"), g));
            }
        }
    }
    if let Some(claim) = run.get("claim_ns_per_task") {
        for (policy, ns) in claim.members() {
            if let Some(ns) = ns.as_f64() {
                if ns.is_finite() && ns > 0.0 {
                    out.push((format!("claim_rate/{policy}"), 1e3 / ns));
                }
            }
        }
    }
    if let Some(alloc) = run.get("alloc") {
        for (cell, row) in alloc.members() {
            for (mode, rate) in row.members() {
                if let Some(rate) = rate.as_f64() {
                    if rate.is_finite() && rate > 0.0 {
                        out.push((format!("alloc/{cell}/{mode}"), rate));
                    }
                }
            }
        }
    }
    if let Some(pipe) = run.get("pipeline") {
        for (cell, row) in pipe.members() {
            // Only the two rate columns are gated: `watermark_pubs`
            // is a count, not a throughput, and must not be read as
            // one by the drop check.
            for mode in ["streamed", "barrier"] {
                if let Some(rate) = row.get(mode).and_then(Json::as_f64) {
                    if rate.is_finite() && rate > 0.0 {
                        out.push((format!("pipeline/{cell}/{mode}"), rate));
                    }
                }
            }
        }
    }
    if let Some(daemon) = run.get("daemon") {
        for (cell, row) in daemon.members() {
            // Only the rate column is gated: `latency_us` is
            // smaller-is-better and must not be read as a throughput
            // by the drop check.
            if let Some(rate) = row.get("tasks_per_sec").and_then(Json::as_f64) {
                if rate.is_finite() && rate > 0.0 {
                    out.push((format!("daemon/{cell}"), rate));
                }
            }
        }
    }
    out
}

/// How many prior same-fingerprint runs the regression check
/// baselines against. Shared hosts toggle between fast and slow modes
/// run to run; a single-run baseline turns one lucky fast run into a
/// false alarm on the next honest one. Per metric, the *lowest* value
/// across the lookback window is the baseline — the most favorable
/// comparison — so only a drop below everything recently recorded
/// flags.
const BASELINE_LOOKBACK: usize = 3;

/// Threshold multiplier for `--quick` runs. Quick mode exists to smoke
/// the measurement pipeline, not to measure: its wall times are a few
/// hundred µs, which swing ±40% run-to-run on a busy shared host no
/// matter the statistic. Quick runs only ever compare against other
/// quick runs (the fingerprint includes the flag), so loosening them
/// never weakens the gate on recorded full runs.
const QUICK_DROP_FACTOR: f64 = 3.0;

/// Diffs the last run against the preceding runs *on the same host
/// fingerprint* (per metric, the minimum over the last
/// [`BASELINE_LOOKBACK`] runs) and flags any workload whose tasks/sec
/// geomean dropped by more than `max_drop` (a fraction: 0.2 = 20%;
/// widened by [`QUICK_DROP_FACTOR`] when the candidate is a `--quick`
/// smoke run). Fingerprint groups with fewer than two runs, and run
/// blocks that don't parse as JSON, are reported but never fail the
/// check — a fresh baseline file must pass.
pub fn check_regression(text: &str, max_drop: f64) -> RegressionReport {
    let runs = runs_from_text(text);
    let mut lines = Vec::new();
    let mut groups: Vec<(String, Vec<(String, Json)>)> = Vec::new();
    for (label, block) in &runs {
        match Json::parse(block) {
            Some(v) => {
                let fp = fingerprint(&v);
                match groups.iter_mut().find(|(g, _)| *g == fp) {
                    Some((_, members)) => members.push((label.clone(), v)),
                    None => groups.push((fp, vec![(label.clone(), v)])),
                }
            }
            None => lines.push(format!("note: run \"{label}\" is not valid JSON; skipped")),
        }
    }
    let mut compared = 0usize;
    let mut regressed = false;
    for (fp, members) in &groups {
        if members.len() < 2 {
            lines.push(format!(
                "note: only one run for [{fp}] (\"{}\"), nothing to compare",
                members[0].0
            ));
            continue;
        }
        let baseline_runs =
            &members[members.len().saturating_sub(BASELINE_LOOKBACK + 1)..members.len() - 1];
        let (base_label, _) = &members[members.len() - 2];
        let (cand_label, cand) = &members[members.len() - 1];
        let base_desc = if baseline_runs.len() == 1 {
            format!("\"{base_label}\"")
        } else {
            format!("min of {} runs thru \"{base_label}\"", baseline_runs.len())
        };
        let quick = cand.get("quick").and_then(Json::as_bool).unwrap_or(false);
        let allowed = if quick { (max_drop * QUICK_DROP_FACTOR).min(0.95) } else { max_drop };
        compared += 1;
        // Per metric: the lowest rate any lookback run recorded.
        let mut base_metrics: Vec<(String, f64)> = Vec::new();
        for (_, run) in baseline_runs {
            for (workload, rate) in throughput_metrics(run) {
                match base_metrics.iter_mut().find(|(w, _)| *w == workload) {
                    Some((_, r)) => *r = r.min(rate),
                    None => base_metrics.push((workload, rate)),
                }
            }
        }
        let mut checked = 0usize;
        for (workload, new_rate) in throughput_metrics(cand) {
            let Some((_, old_rate)) = base_metrics.iter().find(|(w, _)| *w == workload) else {
                continue;
            };
            checked += 1;
            let change = new_rate / old_rate - 1.0;
            if change < -allowed {
                regressed = true;
                lines.push(format!(
                    "REGRESSION [{fp}] {workload}: {old_rate:.0} -> {new_rate:.0} tasks/sec \
                     ({:+.1}%, allowed -{:.0}%) comparing {base_desc} -> \"{cand_label}\"",
                    change * 100.0,
                    allowed * 100.0,
                ));
            } else {
                lines.push(format!(
                    "ok [{fp}] {workload}: {old_rate:.0} -> {new_rate:.0} tasks/sec ({:+.1}%)",
                    change * 100.0,
                ));
            }
        }
        if checked == 0 {
            lines.push(format!(
                "note: runs \"{base_label}\" and \"{cand_label}\" share no throughput metrics"
            ));
        }
    }
    RegressionReport { lines, compared, regressed }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal run block with one threaded workload, one async row,
    /// one rayon-baseline row, one claim-latency cell, one alloc
    /// (equalizer vs shared pool) row, one pipeline (streamed vs
    /// barrier) row, and one daemon serving row, every throughput
    /// metric scaling linearly with `rate` (claim latency scales
    /// inversely, so its derived claim_rate is linear too).
    fn run_block(cpu: &str, rate: f64) -> String {
        format!(
            "{{\"host\": {{\"cpu\": \"{cpu}\", \"cores\": 4, \"os\": \"linux x86_64\"}}, \
             \"quick\": false, \
             \"claim_ns_per_task\": {{\"taper\": {ns}}}, \
             \"tasks_per_sec\": {{\"small\": {{\"taper\": {{\"2\": {r1}, \"4\": {r2}}}, \
             \"self-sched\": {{\"2\": {r3}}}}}}}, \
             \"async\": {{\"small\": {{\"tasks_per_sec\": {r4}, \"yields\": 12}}}}, \
             \"rayon\": {{\"small\": {{\"2\": {r5}, \"4\": {r6}}}}}, \
             \"alloc\": {{\"w4\": {{\"equalizer\": {r7}, \"shared\": {r8}}}}}, \
             \"pipeline\": {{\"w4\": {{\"streamed\": {r9}, \"barrier\": {r10}, \
             \"watermark_pubs\": 63}}}}, \
             \"daemon\": {{\"t2\": {{\"tasks_per_sec\": {r11}, \"latency_us\": {lat}}}}}}}",
            ns = 1e6 / rate,
            r1 = rate,
            r2 = rate * 2.0,
            r3 = rate * 0.5,
            r4 = rate * 0.8,
            r5 = rate * 0.6,
            r6 = rate * 1.1,
            r7 = rate * 1.3,
            r8 = rate * 0.9,
            r9 = rate * 1.4,
            r10 = rate * 1.2,
            r11 = rate * 0.7,
            lat = 2e6 / rate,
        )
    }

    fn file_with(blocks: &[(&str, String)]) -> String {
        let runs: Vec<(String, String)> =
            blocks.iter().map(|(l, b)| (l.to_string(), b.clone())).collect();
        emit_runs(&runs)
    }

    #[test]
    fn empty_history_passes_with_nothing_to_say() {
        for text in ["", "not json at all", "{\"schema\": \"x\", \"runs\": {}}"] {
            let r = check_regression(text, 0.2);
            assert_eq!(r.compared, 0, "{text:?}");
            assert!(!r.regressed, "{text:?}");
            assert!(r.lines.is_empty(), "{text:?}: {:?}", r.lines);
        }
    }

    #[test]
    fn single_run_is_a_fresh_baseline_not_a_failure() {
        let file = file_with(&[("only", run_block("cpu-a", 1000.0))]);
        let r = check_regression(&file, 0.2);
        assert_eq!(r.compared, 0);
        assert!(!r.regressed);
        // The lone run is reported, so CI logs show why nothing was
        // compared.
        assert_eq!(r.lines.len(), 1);
        assert!(
            r.lines[0].starts_with("note:") && r.lines[0].contains("\"only\""),
            "{:?}",
            r.lines
        );
    }

    #[test]
    fn exactly_at_threshold_is_allowed_just_past_it_is_not() {
        // The gate is strict (`change < -max_drop`): a drop of exactly
        // the allowance passes, one tick past it fails. `run_block`
        // scales every rate linearly, so the geomean change equals the
        // scale change.
        let at = file_with(&[
            ("before", run_block("cpu-a", 1000.0)),
            ("after", run_block("cpu-a", 800.0)),
        ]);
        let r = check_regression(&at, 0.2);
        assert_eq!(r.compared, 1);
        assert!(!r.regressed, "drop of exactly 20% must pass: {:?}", r.lines);

        let past = file_with(&[
            ("before", run_block("cpu-a", 1000.0)),
            ("after", run_block("cpu-a", 799.0)),
        ]);
        let r = check_regression(&past, 0.2);
        assert!(r.regressed, "20.1% drop must fail: {:?}", r.lines);
    }

    #[test]
    fn quick_and_full_runs_have_different_fingerprints() {
        // Same machine, but a --quick run must never be diffed against
        // a full run: the scales differ by design.
        let quick = run_block("cpu-a", 100.0).replace("\"quick\": false", "\"quick\": true");
        let file = file_with(&[("before", run_block("cpu-a", 1000.0)), ("after", quick)]);
        let r = check_regression(&file, 0.2);
        assert_eq!(r.compared, 0);
        assert!(!r.regressed, "{:?}", r.lines);
    }

    #[test]
    fn flags_a_large_drop_and_passes_a_small_one() {
        let steady = file_with(&[
            ("before", run_block("cpu-a", 1000.0)),
            ("after", run_block("cpu-a", 900.0)),
        ]);
        let r = check_regression(&steady, 0.2);
        assert_eq!(r.compared, 1);
        assert!(!r.regressed, "10% drop within 20% allowance: {:?}", r.lines);

        let dropped = file_with(&[
            ("before", run_block("cpu-a", 1000.0)),
            ("after", run_block("cpu-a", 700.0)),
        ]);
        let r = check_regression(&dropped, 0.2);
        assert!(r.regressed, "30% drop must fail: {:?}", r.lines);
        assert!(r.lines.iter().any(|l| l.starts_with("REGRESSION")));
    }

    #[test]
    fn async_rate_alone_can_regress() {
        // Threaded rates improve; the async backend tanks.
        let mut bad = run_block("cpu-a", 1100.0);
        bad = bad
            .replace(&format!("\"tasks_per_sec\": {}", 1100.0 * 0.8), "\"tasks_per_sec\": 100.0");
        let file = file_with(&[("before", run_block("cpu-a", 1000.0)), ("after", bad)]);
        let r = check_regression(&file, 0.2);
        assert!(r.regressed, "{:?}", r.lines);
        assert!(r.lines.iter().any(|l| l.starts_with("REGRESSION") && l.contains("async/small")));
    }

    #[test]
    fn quick_runs_get_a_widened_threshold_full_runs_do_not() {
        // The same -40% drop: a smoke-quality quick run stays inside
        // its widened band, a recorded full run flags.
        for (quick, expect_regressed) in [(true, false), (false, true)] {
            let flag = format!("\"quick\": {quick}");
            let base = run_block("cpu-a", 1000.0).replace("\"quick\": false", &flag);
            let bad = run_block("cpu-a", 600.0).replace("\"quick\": false", &flag);
            let file = file_with(&[("before", base), ("after", bad)]);
            let r = check_regression(&file, 0.2);
            assert_eq!(r.regressed, expect_regressed, "quick={quick}: {:?}", r.lines);
        }
    }

    #[test]
    fn fast_outlier_baseline_does_not_flag_the_next_honest_run() {
        // Shared hosts toggle between fast and slow modes: run 2 is a
        // +30% lucky outlier and run 3 returns to run 1's level. A
        // last-two comparison would read run 3 as a -23% regression;
        // the lookback window baselines against the *minimum* of the
        // recent runs, so nothing flags.
        let file = file_with(&[
            ("r1", run_block("cpu-a", 1000.0)),
            ("r2", run_block("cpu-a", 1300.0)),
            ("r3", run_block("cpu-a", 1000.0)),
        ]);
        let r = check_regression(&file, 0.2);
        assert_eq!(r.compared, 1);
        assert!(!r.regressed, "{:?}", r.lines);
    }

    #[test]
    fn drop_below_the_whole_lookback_window_still_flags() {
        // A real regression sits below every recent run, however the
        // host toggled — the window must not hide it.
        let file = file_with(&[
            ("r1", run_block("cpu-a", 1000.0)),
            ("r2", run_block("cpu-a", 1300.0)),
            ("r3", run_block("cpu-a", 700.0)),
        ]);
        let r = check_regression(&file, 0.2);
        assert!(r.regressed, "{:?}", r.lines);
        assert!(r.lines.iter().any(|l| l.starts_with("REGRESSION") && l.contains("min of 2 runs")));
    }

    #[test]
    fn rayon_baseline_alone_can_regress() {
        // Every other metric holds steady; the splitter baseline rows
        // tank (e.g. the shared data plane regressed for plain-range
        // writers).
        let mut bad = run_block("cpu-a", 1000.0);
        bad = bad.replace(
            &format!("\"rayon\": {{\"small\": {{\"2\": {}, \"4\": {}}}}}", 600.0, 1100.0),
            "\"rayon\": {\"small\": {\"2\": 60.0, \"4\": 110.0}}",
        );
        let file = file_with(&[("before", run_block("cpu-a", 1000.0)), ("after", bad)]);
        let r = check_regression(&file, 0.2);
        assert!(r.regressed, "{:?}", r.lines);
        assert!(r.lines.iter().any(|l| l.starts_with("REGRESSION") && l.contains("rayon/small")));
    }

    #[test]
    fn alloc_rate_alone_can_regress() {
        // Every other column holds; the equalizer row on the
        // asymmetric concurrent level tanks (say a partition bug
        // serialized the two ops) — the v7 alloc metrics must trip
        // the gate on their own.
        let mut bad = run_block("cpu-a", 1000.0);
        bad = bad.replace(
            &format!("\"alloc\": {{\"w4\": {{\"equalizer\": {}, \"shared\": {}}}}}", 1300.0, 900.0),
            "\"alloc\": {\"w4\": {\"equalizer\": 130.0, \"shared\": 900.0}}",
        );
        let file = file_with(&[("before", run_block("cpu-a", 1000.0)), ("after", bad)]);
        let r = check_regression(&file, 0.2);
        assert!(r.regressed, "{:?}", r.lines);
        assert!(r
            .lines
            .iter()
            .any(|l| l.starts_with("REGRESSION") && l.contains("alloc/w4/equalizer")));
        assert!(
            !r.lines.iter().any(|l| l.starts_with("REGRESSION") && l.contains("alloc/w4/shared")),
            "the untouched shared row must not flag: {:?}",
            r.lines
        );
    }

    #[test]
    fn pipeline_rate_alone_can_regress() {
        // Every other column holds; the streamed row on the deep chain
        // tanks (say a watermark bug serialized the pipeline back into
        // a barrier) — the v8 pipeline metrics must trip the gate on
        // their own, while the constant watermark_pubs count must
        // never be read as a throughput.
        let mut bad = run_block("cpu-a", 1000.0);
        bad = bad.replace(
            &format!(
                "\"pipeline\": {{\"w4\": {{\"streamed\": {}, \"barrier\": {}, \
                 \"watermark_pubs\": 63}}}}",
                1400.0, 1200.0
            ),
            "\"pipeline\": {\"w4\": {\"streamed\": 140.0, \"barrier\": 1200.0, \
             \"watermark_pubs\": 63}}",
        );
        let file = file_with(&[("before", run_block("cpu-a", 1000.0)), ("after", bad)]);
        let r = check_regression(&file, 0.2);
        assert!(r.regressed, "{:?}", r.lines);
        assert!(r
            .lines
            .iter()
            .any(|l| l.starts_with("REGRESSION") && l.contains("pipeline/w4/streamed")));
        assert!(
            !r.lines
                .iter()
                .any(|l| l.starts_with("REGRESSION") && l.contains("pipeline/w4/barrier")),
            "the untouched barrier row must not flag: {:?}",
            r.lines
        );
        assert!(
            !r.lines.iter().any(|l| l.contains("watermark_pubs")),
            "pubs count is trend data, not a gated metric: {:?}",
            r.lines
        );
    }

    #[test]
    fn daemon_rate_alone_can_regress() {
        // Every other column holds; the serving-path row tanks (say a
        // wire-protocol or admission bug serialized the tenants) — the
        // v9 daemon metric must trip the gate on its own, while the
        // latency_us column (smaller is better) must never be read as
        // a throughput.
        let mut bad = run_block("cpu-a", 1000.0);
        bad = bad.replace(
            &format!(
                "\"daemon\": {{\"t2\": {{\"tasks_per_sec\": {}, \"latency_us\": {}}}}}",
                1000.0 * 0.7,
                2e6 / 1000.0
            ),
            "\"daemon\": {\"t2\": {\"tasks_per_sec\": 70.0, \"latency_us\": 2000.0}}",
        );
        let file = file_with(&[("before", run_block("cpu-a", 1000.0)), ("after", bad)]);
        let r = check_regression(&file, 0.2);
        assert!(r.regressed, "{:?}", r.lines);
        assert!(r.lines.iter().any(|l| l.starts_with("REGRESSION") && l.contains("daemon/t2")));
        assert!(
            !r.lines.iter().any(|l| l.contains("latency_us")),
            "latency is trend data, not a gated metric: {:?}",
            r.lines
        );
    }

    #[test]
    fn claim_latency_increase_alone_can_regress() {
        // tasks/sec holds; the pure claim hot path gets 2x slower —
        // the inverted claim_rate metric must trip the gate.
        let mut bad = run_block("cpu-a", 1000.0);
        bad = bad.replace(
            &format!("\"claim_ns_per_task\": {{\"taper\": {}}}", 1e6 / 1000.0),
            "\"claim_ns_per_task\": {\"taper\": 2000.0}",
        );
        let file = file_with(&[("before", run_block("cpu-a", 1000.0)), ("after", bad)]);
        let r = check_regression(&file, 0.2);
        assert!(r.regressed, "{:?}", r.lines);
        assert!(r
            .lines
            .iter()
            .any(|l| l.starts_with("REGRESSION") && l.contains("claim_rate/taper")));
    }

    #[test]
    fn different_hosts_are_never_compared() {
        let file = file_with(&[
            ("before", run_block("cpu-a", 1000.0)),
            ("after", run_block("cpu-b", 100.0)),
        ]);
        let r = check_regression(&file, 0.2);
        assert_eq!(r.compared, 0);
        assert!(!r.regressed);
        assert_eq!(r.lines.iter().filter(|l| l.starts_with("note:")).count(), 2);
    }

    #[test]
    fn last_two_runs_win_in_a_longer_history() {
        let file = file_with(&[
            ("a", run_block("cpu-a", 100.0)), // ancient slow baseline: ignored
            ("b", run_block("cpu-a", 1000.0)),
            ("c", run_block("cpu-a", 950.0)),
        ]);
        let r = check_regression(&file, 0.2);
        assert_eq!(r.compared, 1);
        assert!(!r.regressed, "{:?}", r.lines);
    }

    #[test]
    fn merge_then_check_round_trips_through_the_file_format() {
        let t1 = merge_runs("", "before", &run_block("cpu-a", 1000.0));
        let t2 = merge_runs(&t1, "after", &run_block("cpu-a", 600.0));
        assert!(t2.contains(&format!("\"schema\": \"{SCHED_SCHEMA}\"")));
        let r = check_regression(&t2, 0.2);
        assert!(r.regressed, "{:?}", r.lines);
        // Re-merging the same label replaces, not appends.
        let t3 = merge_runs(&t2, "after", &run_block("cpu-a", 990.0));
        assert_eq!(runs_from_text(&t3).len(), 2);
        assert!(!check_regression(&t3, 0.2).regressed);
    }
}
