//! Regenerates every table and figure of the paper's evaluation (§5).
//!
//! ```text
//! figures fig6           Figure 6: Psirrfan speedup vs processors
//! figures r1             climate-model efficiencies (512/1024, ±split)
//! figures r2             doubling processors with split, all four apps
//! figures ablate-alloc   allocation equalizer vs even split
//! figures ablate-costfn  TAPER cost-function scaling on/off
//! figures ablate-pipeline  pipeline overlap on/off
//! figures ablate-iters   equalizer iteration budget sweep
//! figures ablate-batch   pipelined communication batch-size curve
//! figures ablate-dist    centralized vs distributed TAPER
//! figures intro-fusion   loop fusion vs split (§1's motivating example)
//! figures all            everything above
//! ```

use orchestra_apps::{all_paper_workloads, climate, psirrfan};
use orchestra_bench::{fig6_processor_counts, measure, Config, Measurement};
use orchestra_machine::MachineConfig;
use orchestra_runtime::{
    allocate_pair, execute_graph, finish_estimate, AllocParams, ExecutorOptions, OpSpec, PolicyKind,
};

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    match arg.as_str() {
        "fig6" => fig6(),
        "r1" => r1(),
        "r2" => r2(),
        "ablate-alloc" => ablate_alloc(),
        "ablate-costfn" => ablate_costfn(),
        "ablate-pipeline" => ablate_pipeline(),
        "ablate-iters" => ablate_iters(),
        "intro-fusion" => intro_fusion(),
        "ablate-batch" => ablate_batch(),
        "ablate-dist" => ablate_dist(),
        "all" => {
            fig6();
            r1();
            r2();
            ablate_alloc();
            ablate_costfn();
            ablate_pipeline();
            ablate_iters();
            intro_fusion();
            ablate_batch();
            ablate_dist();
        }
        other => {
            eprintln!("unknown experiment `{other}`");
            std::process::exit(2);
        }
    }
}

fn header(title: &str) {
    println!("\n=== {title} ===");
}

/// Figure 6: Psirrfan speedup vs number of processors for the three
/// configurations. Paper shape: static worst; TAPER efficient to ~512
/// then flattening; TAPER-with-split sustaining > 80% efficiency
/// through 1024 processors.
fn fig6() {
    header("Figure 6 — Psirrfan performance (speedup vs processors)");
    let w = psirrfan::workload(&psirrfan::paper_scale());
    println!(
        "{:>6} {:>10} {:>8} {:>10} {:>8} {:>16} {:>8}",
        "procs", "static", "eff", "TAPER", "eff", "TAPER w/ split", "eff"
    );
    for p in fig6_processor_counts() {
        let st = measure(&w, Config::Static, p);
        let tp = measure(&w, Config::Taper, p);
        let sp = measure(&w, Config::TaperSplit, p);
        println!(
            "{:>6} {:>10.0} {:>7.0}% {:>10.0} {:>7.0}% {:>16.0} {:>7.0}%",
            p,
            st.speedup,
            st.efficiency * 100.0,
            tp.speedup,
            tp.efficiency * 100.0,
            sp.speedup,
            sp.efficiency * 100.0
        );
    }
}

/// R1: the climate-model numbers from §5's text. Paper: TAPER-only on
/// 512 → 87% efficiency (speedup 445); with split on 1024 → 83%
/// (speedup 850); without split on 1024 → 57% (speedup 581).
fn r1() {
    header("R1 — UCLA climate model (§5 text)");
    let w = climate::workload(&climate::paper_scale());
    let rows: [(&str, Measurement, f64, f64); 3] = [
        ("TAPER only, 512 procs", measure(&w, Config::Taper, 512), 445.0, 0.87),
        ("split, 1024 procs", measure(&w, Config::TaperSplit, 1024), 850.0, 0.83),
        ("no split, 1024 procs", measure(&w, Config::Taper, 1024), 581.0, 0.57),
    ];
    println!(
        "{:<24} {:>9} {:>6}   {:>12} {:>9}",
        "configuration", "speedup", "eff", "paper speedup", "paper eff"
    );
    for (name, m, paper_speedup, paper_eff) in rows {
        println!(
            "{:<24} {:>9.0} {:>5.0}%   {:>12.0} {:>8.0}%",
            name,
            m.speedup,
            m.efficiency * 100.0,
            paper_speedup,
            paper_eff * 100.0
        );
    }
}

/// R2: "we were able to double the number of processors used for each
/// application, with a loss of only five to fifteen percent in
/// efficiency" — split configuration, 512 → 1024 processors.
fn r2() {
    header("R2 — doubling processors with split (all four applications)");
    println!(
        "{:<10} {:>10} {:>10} {:>12}  paper: 5–15% loss",
        "app", "eff@512", "eff@1024", "loss"
    );
    for w in all_paper_workloads() {
        let e512 = measure(&w, Config::TaperSplit, 512).efficiency;
        let e1024 = measure(&w, Config::TaperSplit, 1024).efficiency;
        let loss = (e512 - e1024) / e512 * 100.0;
        println!("{:<10} {:>9.0}% {:>9.0}% {:>11.1}%", w.name, e512 * 100.0, e1024 * 100.0, loss);
    }
}

/// The introduction's motivating comparison: "One possible remedy is to
/// use loop fusion … However, the resulting parallelization is
/// incomplete, since fusion discards information about the more regular
/// component of the new loop." Fusing a phase's regular and irregular
/// loops yields one mixed operation — better than the barrier between
/// them, but without the split structure the runtime can neither
/// pipeline the phases nor overlap the post-pass.
fn intro_fusion() {
    use orchestra_delirium::{DataAnno, DelirGraph, NodeKind, Population};
    header("Intro — loop fusion vs split (Psirrfan)");
    let scale = psirrfan::paper_scale();
    let params = psirrfan::params(&scale);
    let w = psirrfan::workload(&scale);

    // The fused graph: one mixed operation per phase.
    let mut fused = DelirGraph::new();
    let a = fused.add_node(
        "A_fused",
        NodeKind::Mixture {
            populations: vec![
                Population {
                    tasks: params.ind_tasks,
                    mean_cost: params.ind_mean,
                    cv: params.ind_cv,
                },
                Population {
                    tasks: params.dep_tasks,
                    mean_cost: params.dep_mean,
                    cv: params.dep_cv,
                },
            ],
        },
        Some("phase".into()),
    );
    fused.add_carried_edge(a, a, DataAnno::array("carried", params.carried_elems));
    let b = fused.add_node(
        "B",
        NodeKind::DataParallel {
            tasks: params.post_tasks,
            mean_cost: params.post_mean,
            cv: params.post_cv,
        },
        None,
    );
    fused.add_edge(a, b, DataAnno::array("q", params.carried_elems));

    println!("{:>6} {:>12} {:>12} {:>12}", "procs", "barriers", "fused", "split");
    for p in [256usize, 512, 1024] {
        let cfg = MachineConfig::ncube2(p);
        let serial = w.serial_work();
        let mut opts = ExecutorOptions {
            policy: PolicyKind::TaperCostFn,
            pipeline_overlap: false,
            use_allocation: false,
            ..ExecutorOptions::default()
        };
        opts.pipeline_iters.extend(w.pipeline_iters.clone());
        let t_base = execute_graph(&w.baseline, &cfg, &opts).expect("valid").finish;
        let t_fused = execute_graph(&fused, &cfg, &opts).expect("valid").finish;
        let sp = measure(&w, Config::TaperSplit, p);
        println!(
            "{:>6} {:>12.0} {:>12.0} {:>12.0}   (speedups)",
            p,
            serial / t_base,
            serial / t_fused,
            sp.speedup
        );
    }
    println!("fusion removes the intra-phase barrier but cannot pipeline phases");
    println!("or overlap the post-pass: the resulting parallelization is");
    println!("incomplete (§1).");
}

/// Ablation: the §4.1.2 finishing-time equalizer vs a naive even split
/// of processors among concurrent operations.
fn ablate_alloc() {
    header("Ablation — processor allocation (equalizer vs even split)");
    let w = psirrfan::workload(&psirrfan::paper_scale());
    println!("{:>6} {:>14} {:>14} {:>8}", "procs", "equalizer", "even split", "gain");
    for p in [256, 512, 1024] {
        let cfg = MachineConfig::ncube2(p);
        let mut with =
            ExecutorOptions { policy: PolicyKind::TaperCostFn, ..ExecutorOptions::default() };
        with.pipeline_iters.extend(w.pipeline_iters.clone());
        let mut without = with.clone();
        without.use_allocation = false;
        let t_with = execute_graph(&w.split, &cfg, &with).expect("valid").finish;
        let t_without = execute_graph(&w.split, &cfg, &without).expect("valid").finish;
        println!("{:>6} {:>14.0} {:>14.0} {:>7.2}x", p, t_with, t_without, t_without / t_with);
    }
}

/// Ablation: TAPER's positional cost-function scaling on/off on the
/// baseline graph.
fn ablate_costfn() {
    header("Ablation — TAPER cost-function scaling");
    let w = psirrfan::workload(&psirrfan::paper_scale());
    println!("{:>6} {:>14} {:>14}", "procs", "TAPER+costfn", "TAPER");
    for p in [256, 512, 1024] {
        let cfg = MachineConfig::ncube2(p);
        let mut a = ExecutorOptions {
            policy: PolicyKind::TaperCostFn,
            pipeline_overlap: false,
            ..ExecutorOptions::default()
        };
        a.pipeline_iters.extend(w.pipeline_iters.clone());
        let mut b = a.clone();
        b.policy = PolicyKind::Taper;
        let ta = execute_graph(&w.baseline, &cfg, &a).expect("valid").finish;
        let tb = execute_graph(&w.baseline, &cfg, &b).expect("valid").finish;
        println!("{:>6} {:>14.0} {:>14.0}", p, ta, tb);
    }
}

/// Ablation: pipeline overlap on/off on the split graph.
fn ablate_pipeline() {
    header("Ablation — pipeline overlap (split graph)");
    let w = psirrfan::workload(&psirrfan::paper_scale());
    println!("{:>6} {:>12} {:>12} {:>8}", "procs", "overlap", "barrier", "gain");
    for p in [256, 512, 1024] {
        let cfg = MachineConfig::ncube2(p);
        let mut over =
            ExecutorOptions { policy: PolicyKind::TaperCostFn, ..ExecutorOptions::default() };
        over.pipeline_iters.extend(w.pipeline_iters.clone());
        let mut barrier = over.clone();
        barrier.pipeline_overlap = false;
        let t_over = execute_graph(&w.split, &cfg, &over).expect("valid").finish;
        let t_barrier = execute_graph(&w.split, &cfg, &barrier).expect("valid").finish;
        println!("{:>6} {:>12.0} {:>12.0} {:>7.2}x", p, t_over, t_barrier, t_barrier / t_over);
    }
}

/// Ablation: the distributed TAPER epoch/token scheme (§4.1.1) vs the
/// centralized chunk queue on the split graph — the decentralization
/// trades scheduling-bottleneck freedom for token latency, and is
/// designed to preserve owner-computes locality.
fn ablate_dist() {
    header("Ablation — centralized vs distributed TAPER (split graph)");
    let w = psirrfan::workload(&psirrfan::paper_scale());
    println!("{:>6} {:>14} {:>14}", "procs", "centralized", "distributed");
    for p in [256usize, 512, 1024] {
        let cfg = MachineConfig::ncube2(p);
        let mut central =
            ExecutorOptions { policy: PolicyKind::TaperCostFn, ..ExecutorOptions::default() };
        central.pipeline_iters.extend(w.pipeline_iters.clone());
        let dist = ExecutorOptions { distributed: true, ..central.clone() };
        let tc = execute_graph(&w.split, &cfg, &central).expect("valid").finish;
        let td = execute_graph(&w.split, &cfg, &dist).expect("valid").finish;
        println!("{:>6} {:>14.0} {:>14.0}", p, tc, td);
    }
}

/// Ablation: communication granularity for a pipelined pair (§4.1) —
/// the batch-size cost curve and the size the runtime picks, first on
/// the simulator's nCUBE-2 α/β, then for real on the threaded backend
/// by forcing the streamed data plane's publication batch across a
/// sweep and comparing the measured walls against the b\* the host
/// calibration picks.
fn ablate_batch() {
    use orchestra_runtime::{batch_cost, choose_batch};
    header("Ablation — pipelined communication granularity");
    let cfg = MachineConfig::ncube2(512);
    let n = 1024; // items streamed per iteration
    let item_bytes = 64;
    let chosen = choose_batch(n, item_bytes, &cfg);
    println!("streaming {n} items of {item_bytes} B (α={} µs, β={} µs/B):", cfg.alpha, cfg.beta);
    println!("{:>8} {:>14}", "batch", "latency+fill µs");
    for b in [1usize, 4, 16, 64, 256, 1024] {
        let marker = if b == chosen { "  ← chosen" } else { "" };
        println!("{:>8} {:>14.0}{marker}", b, batch_cost(n, item_bytes, b, &cfg));
    }
    if ![1usize, 4, 16, 64, 256, 1024].contains(&chosen) {
        println!("{:>8} {:>14.0}  ← chosen", chosen, batch_cost(n, item_bytes, chosen, &cfg));
    }

    // The same trade measured on the real threaded backend: a deep
    // chain of small element-wise ops, publication batch forced per
    // row. The b* row re-runs the sweep at the batch the calibrated
    // α/β picks; its rank in the measured ordering is the check that
    // the model's optimum is the machine's.
    use orchestra_delirium::{DataAnno, DelirGraph, NodeKind};
    use orchestra_runtime::threaded::{execute_threaded, SpinKernel};
    use orchestra_runtime::HostCalibration;
    let (depth, width, threads, reps) = (12usize, 256usize, 4usize, 25usize);
    let mut g = DelirGraph::new();
    let mut prev = None;
    for i in 0..depth {
        let node = g.add_node(
            format!("c{i}"),
            NodeKind::DataParallel { tasks: width, mean_cost: 1.0, cv: 0.3 },
            None,
        );
        if let Some(p) = prev {
            g.add_edge(p, node, DataAnno::array(format!("s{i}"), width as u64));
        }
        prev = Some(node);
    }
    let kernel = SpinKernel::with_scale(1.0);
    let bstar = HostCalibration::get()
        .stream_batch(width, std::mem::size_of::<f64>() as u64)
        .clamp(1, width);
    println!("\nthreaded backend, chain {depth}×{width} @ {threads} workers (b* = {bstar}):");
    // Best-of-reps, round-robin across batch sizes: the minimum wall
    // is the run the host did not deschedule, and interleaving the
    // sweep keeps slow phases of a shared host from polluting one
    // batch size's column wholesale.
    let sweep = [1usize, 4, 16, 64, 128, 256];
    let mut best = [f64::INFINITY; 6];
    for _ in 0..reps {
        for (slot, &forced) in sweep.iter().enumerate() {
            let opts = ExecutorOptions {
                threads,
                stream_batch: Some(forced),
                ..ExecutorOptions::default()
            };
            let wall = execute_threaded(&g, &opts, &kernel).expect("valid").wall_us;
            best[slot] = best[slot].min(wall);
        }
    }
    let rows: Vec<(usize, f64)> = sweep.iter().copied().zip(best).collect();
    let mut ranked = rows.clone();
    ranked.sort_by(|a, b| a.1.total_cmp(&b.1));
    let rank_of = |batch: usize| ranked.iter().position(|&(b, _)| b == batch).map(|i| i + 1);
    println!("{:>8} {:>14} {:>6}", "batch", "best wall µs", "rank");
    for &(b, wall) in &rows {
        let marker = if b == bstar { "  ← b*" } else { "" };
        println!("{:>8} {:>14.0} {:>6}{marker}", b, wall, rank_of(b).unwrap_or(0));
    }
    if let Some(r) = rank_of(bstar) {
        println!("b* = {bstar} ranks #{r} of {} measured batches", rows.len());
    } else {
        println!("b* = {bstar} (between sweep points; nearest ranks decide)");
    }
}

/// Ablation: the equalizer's iteration budget (`max_count`), checked on
/// the estimate imbalance it leaves behind.
fn ablate_iters() {
    header("Ablation — allocation equalizer iterations (max_count)");
    let cfg = MachineConfig::ncube2(1024);
    let big = OpSpec {
        tasks: 8192,
        mean: 400.0,
        std_dev: 200.0,
        bytes_in: 8192 * 256,
        bytes_out: 8192 * 256,
        policy: PolicyKind::Taper,
    };
    let small = OpSpec {
        tasks: 1024,
        mean: 80.0,
        std_dev: 20.0,
        bytes_in: 1024 * 256,
        bytes_out: 1024 * 256,
        policy: PolicyKind::Taper,
    };
    println!("{:>9} {:>6} {:>6} {:>12}", "max_count", "p1", "p2", "imbalance");
    for max_count in [0u32, 1, 2, 4, 8] {
        let r = allocate_pair(&big, &small, 1024, &cfg, &AllocParams { epsilon: 0.0, max_count });
        let imb = (r.est_a - r.est_b).abs() / r.est_a.max(r.est_b);
        println!("{:>9} {:>6} {:>6} {:>11.1}%", max_count, r.p1, r.p2, imb * 100.0);
    }
    let _ = finish_estimate(&big, 512, &cfg);
}
