//! Scheduling-overhead benchmark for the threaded backend, emitting a
//! machine-readable `BENCH_threaded.json` so every PR records a
//! before/after trajectory.
//!
//! Three measurements, each per chunk policy:
//!
//! * **claim latency** — single-thread drain of a `ChunkQueue` over a
//!   large iteration space, including the task-time feedback path, in
//!   ns/task: the pure cost of the scheduling hot path;
//! * **tasks/sec** — `execute_threaded` on a flat graph of tiny tasks
//!   (high contention: overhead dominates) and of large tasks
//!   (compute dominates), at 1/2/4/8 workers;
//! * **graph wall-clock** — `execute_threaded` on DAG and pipeline
//!   shapes at 4 workers;
//! * **dist-TAPER** — the distributed home-queue backend against the
//!   shared queue on a uniform and a skewed workload, recording wall
//!   time, locality, re-assignments (total and cross-node), migrated
//!   tasks, and epochs;
//! * **async** — the cooperative futures backend on the flat small /
//!   large workloads and the skewed mixture at 4 drivers, recording
//!   wall time, tasks/sec, chunk claims, the yield count (one per
//!   claimed chunk: the backend's cooperation invariant), and driver
//!   utilization;
//! * **rayon** — a head-to-head against the scheduler the ecosystem
//!   would reach for: a hand-rolled rayon-equivalent join splitter
//!   (lazy binary splitting, per-worker range stacks, steal-oldest —
//!   see `orchestra_bench::splitter`) on the same flat workloads and
//!   worker counts as the tasks/sec table (schema v6);
//! * **alloc** — the §4.1.2 finishing-time equalizer against the
//!   naive shared pool on an asymmetric concurrent level (two
//!   data-parallel ops at one depth, one 8× heavier), tasks/sec at 4
//!   and 8 workers (schema v7). With allocation on, each op's chunk
//!   schedule is sized for its partition and freed workers migrate to
//!   the laggard; with it off, both ops share the whole pool and
//!   every chunk schedule is sized for all workers. Measured as
//!   paired back-to-back runs (median wall ratio) so the few-percent
//!   overhead difference survives shared-host noise;
//! * **pipeline** — the streamed data plane against the barriered one
//!   (schema v8): a deep chain of small equal-width element-wise ops,
//!   run with `pipeline_overlap` on vs off at 4 workers. Every edge
//!   streams, so consumer chunks start at the producers' watermarks
//!   instead of at op completion and the per-boundary park/wake cycle
//!   disappears. Measured as paired back-to-back runs (median wall
//!   ratio, like `alloc`) so the effect survives shared-host noise;
//!   the row also records the streamed run's watermark-publication
//!   count (trend data, not gated);
//! * **daemon** — the `orchestrad` serving path end to end (schema
//!   v9): a real daemon on a unix socket, clients submitting the flat
//!   workload over the wire at 1/2/4 concurrent tenants plus a
//!   `sequential` row that pushes the same four jobs through one
//!   connection back to back. Records aggregate tasks/sec (gated) and
//!   mean submission→completion latency (trend data) — the
//!   concurrency rows price the cross-graph equalizer and session
//!   layer, the sequential row prices the wire protocol itself;
//! * **steals** — the DAG shape under hierarchical vs ring steal
//!   order at 4 and 8 workers, bucketing successful steals by machine
//!   distance (SMT sibling / same node / remote) and counting tokens
//!   taken by remote steal batching;
//! * **recovery** — one crash + snapshot-resume cycle (schema v5): a
//!   crash-mode fault kills the run mid-flight with checkpointing on,
//!   and `execute_graph_resumable` restores from the latest snapshot
//!   and replays the rest. Records the recovery wall time, restored
//!   task count, and on-disk snapshot footprint. Trend data only — the
//!   regression gate reads throughput metrics and ignores this block.
//!
//! Each run also records a host fingerprint (cpu model, core count,
//! OS/arch) plus the probed machine topology, so `BENCH_threaded.json`
//! baselines from different machines are distinguishable.
//!
//! ```text
//! cargo run --release -p orchestra-bench --bin sched -- \
//!     [--quick] [--label NAME] [--out PATH] [--normalize] \
//!     [--check-regression]
//! ```
//!
//! Runs merge into the output file under their label, so a PR records
//! `{"before": …, "after": …}` by running the binary at both commits
//! with the two labels. Merging re-parses every existing run block and
//! re-emits the whole file in one normal form, so merging is
//! idempotent; `--normalize` rewrites the file into that form without
//! measuring anything. `--check-regression` measures nothing either:
//! it diffs the last two same-host-fingerprint runs already in the
//! file and exits nonzero when tasks/sec dropped by more than 20% —
//! the CI trend gate. The file format itself (parse / merge / emit /
//! check) lives in `orchestra_bench::runs` so its invariants are
//! property-tested in the library.

use orchestra_bench::runs::{
    check_regression, emit_runs, merge_runs, runs_from_text, SCHED_SCHEMA,
};
use orchestra_bench::splitter::{default_grain, run_join_split};
use orchestra_daemon::{Client, Daemon, DaemonConfig, JobOptions};
use orchestra_delirium::{DataAnno, DelirGraph, NodeKind, Population};
use orchestra_runtime::executor::ExecutorOptions;
use orchestra_runtime::stats::OnlineStats;
use orchestra_runtime::threaded::queue::ChunkQueue;
use orchestra_runtime::threaded::{execute_threaded, ExecutorBackend, SpinKernel};
use orchestra_runtime::{
    execute_async, execute_graph_resumable, CheckpointSpec, CpuTopology, FaultPlan, FaultTrigger,
    PolicyKind, StealOrder, StealStats,
};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

/// Fraction of tasks/sec a same-fingerprint run may lose before
/// `--check-regression` fails the build.
const MAX_DROP: f64 = 0.20;

const POLICIES: [PolicyKind; 5] = [
    PolicyKind::SelfSched,
    PolicyKind::Gss,
    PolicyKind::Factoring,
    PolicyKind::Taper,
    PolicyKind::TaperCostFn,
];

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

struct Scale {
    claim_tasks: usize,
    small_tasks: usize,
    large_tasks: usize,
    reps: usize,
}

impl Scale {
    fn new(quick: bool) -> Self {
        if quick {
            Scale { claim_tasks: 100_000, small_tasks: 16_000, large_tasks: 400, reps: 4 }
        } else {
            Scale { claim_tasks: 200_000, small_tasks: 40_000, large_tasks: 1_500, reps: 5 }
        }
    }
}

/// Single-threaded queue drain: claim every chunk and feed task times
/// back, exactly as one worker's hot path does. Returns ns/task.
fn claim_latency_ns(policy: PolicyKind, total: usize, reps: usize) -> f64 {
    // Median, not min: this column feeds the trend gate, and best-of-N
    // occasionally catches one lucky quiet slice of a shared host —
    // a downward outlier that makes the *next* honest run read as a
    // regression. The median is robust in both directions.
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let q = ChunkQueue::new(policy.instantiate(total), total, 4);
        let t0 = Instant::now();
        while let Some(c) = q.claim() {
            let mut stats = OnlineStats::new();
            for i in c.start..c.start + c.len {
                stats.observe(1.0 + (i % 7) as f64);
            }
            q.observe_chunk(c.start, c.len, &stats);
        }
        samples.push(t0.elapsed().as_nanos() as f64 / total as f64);
    }
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// One wide data-parallel node: the pure scheduling-throughput shape.
fn flat_graph(tasks: usize, mean_cost: f64) -> DelirGraph {
    let mut g = DelirGraph::new();
    g.add_node("flat", NodeKind::DataParallel { tasks, mean_cost, cv: 0.5 }, None);
    g
}

/// The differential suite's DAG shape: fork into two parallel ops.
fn dag_graph() -> DelirGraph {
    let mut g = DelirGraph::new();
    let a = g.add_node("A", NodeKind::Task { cost: 4.0 }, None);
    let b = g.add_node("B", NodeKind::DataParallel { tasks: 800, mean_cost: 2.0, cv: 0.9 }, None);
    let c = g.add_node("C", NodeKind::DataParallel { tasks: 480, mean_cost: 1.5, cv: 0.2 }, None);
    let d = g.add_node("D", NodeKind::Merge { cost: 2.0 }, None);
    g.add_edge(a, b, DataAnno::array("x", 800));
    g.add_edge(a, c, DataAnno::array("y", 480));
    g.add_edge(b, d, DataAnno::array("r1", 800));
    g.add_edge(c, d, DataAnno::array("r2", 480));
    g
}

/// A pipeline group with a carried edge plus a downstream consumer.
fn pipeline_graph() -> (DelirGraph, ExecutorOptions) {
    let mut g = DelirGraph::new();
    let ai = g.add_node(
        "A_I",
        NodeKind::DataParallel { tasks: 96, mean_cost: 2.0, cv: 0.5 },
        Some("A".into()),
    );
    let ad = g.add_node(
        "A_D",
        NodeKind::DataParallel { tasks: 24, mean_cost: 2.0, cv: 0.5 },
        Some("A".into()),
    );
    let am = g.add_node("A_M", NodeKind::Merge { cost: 1.0 }, Some("A".into()));
    g.add_edge(ai, am, DataAnno::array("r1", 96));
    g.add_edge(ad, am, DataAnno::array("r2", 24));
    g.add_carried_edge(am, ad, DataAnno::array("carried", 96));
    let b = g.add_node("B", NodeKind::DataParallel { tasks: 128, mean_cost: 1.0, cv: 0.1 }, None);
    g.add_edge(am, b, DataAnno::array("out", 128));
    let mut opts = ExecutorOptions::default();
    opts.pipeline_iters.insert("A".into(), 8);
    (g, opts)
}

/// Best-of-`reps` wall time (µs) for one threaded execution.
fn best_wall_us(g: &DelirGraph, opts: &ExecutorOptions, kernel: &SpinKernel, reps: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let run = execute_threaded(g, opts, kernel).expect("bench graph valid");
        best = best.min(run.wall_us);
    }
    best
}

type PolicyMap = BTreeMap<&'static str, f64>;

/// One distributed-TAPER measurement against the shared-queue TAPER
/// baseline on the same graph and worker count.
struct DistRow {
    wall_us: f64,
    shared_wall_us: f64,
    locality: f64,
    reassignments: u64,
    remote_reassignments: u64,
    migrated: u64,
    epochs: usize,
}

/// Steal-distance counters for one (steal order, worker count) cell,
/// accumulated over the measurement reps.
struct StealRow {
    steal: StealStats,
    pinned_workers: usize,
}

/// One async-backend measurement (TAPER at 4 drivers): the `yields`
/// column is the schema-v4 addition — one cooperative yield per
/// claimed chunk, so claims == yields is the backend invariant and a
/// zero here on a multi-chunk workload means the backend stopped
/// yielding at chunk boundaries.
struct AsyncRow {
    wall_us: f64,
    tasks_per_sec: f64,
    claims: u64,
    yields: u64,
    driver_util: f64,
}

/// One equalizer-vs-shared-pool cell (the schema-v7 addition):
/// tasks/sec over the asymmetric concurrent level with
/// `use_allocation` on and off at the same worker count.
struct AllocRow {
    equalizer: f64,
    shared: f64,
}

/// One streamed-vs-barrier cell (the schema-v8 addition): tasks/sec
/// over the deep small-task chain with `pipeline_overlap` on and off
/// at the same worker count, plus how often the streamed run's
/// producers published their watermarks.
struct PipelineRow {
    streamed: f64,
    barrier: f64,
    watermark_pubs: u64,
    streamed_edges: usize,
}

/// One serving-path cell (the schema-v9 addition): aggregate tasks/sec
/// and mean submission→completion latency for a batch of jobs pushed
/// through a live `orchestrad` over its unix socket.
struct DaemonRow {
    tasks_per_sec: f64,
    latency_us: f64,
}

/// One crash + snapshot-resume cycle (the schema-v5 addition): total
/// and post-crash wall time, how many tasks the snapshot restored vs
/// replayed, and the on-disk snapshot footprint at the end of the run.
struct RecoveryRow {
    wall_us: f64,
    recovery_us: f64,
    resumed_tasks: usize,
    attempts: usize,
    snapshot_bytes: u64,
}

struct RunResults {
    claim_ns_per_task: PolicyMap,
    /// workload → policy → workers → tasks/sec.
    tasks_per_sec: BTreeMap<&'static str, BTreeMap<&'static str, BTreeMap<usize, f64>>>,
    /// shape → policy → wall µs at 4 workers.
    graph_wall_us: BTreeMap<&'static str, PolicyMap>,
    /// workload → dist-vs-shared comparison at 4 workers.
    dist: BTreeMap<&'static str, DistRow>,
    /// workload → cooperative-backend row at 4 drivers.
    asynch: BTreeMap<&'static str, AsyncRow>,
    /// workload → workers → tasks/sec for the hand-rolled
    /// rayon-equivalent join splitter (the non-adaptive baseline the
    /// TAPER rows are gated against).
    rayon: BTreeMap<&'static str, BTreeMap<usize, f64>>,
    /// "wN" → equalizer vs naive shared pool on the asymmetric
    /// concurrent level.
    alloc: BTreeMap<String, AllocRow>,
    /// "wN" → streamed vs barriered data plane on the deep chain.
    pipeline: BTreeMap<String, PipelineRow>,
    /// "tN" / "sequential" → the `orchestrad` serving path.
    daemon: BTreeMap<String, DaemonRow>,
    /// "order/wN" → steal-distance counters on the DAG shape.
    steals: BTreeMap<String, StealRow>,
    /// Crash + snapshot-resume cycle on the flat workload at 4 workers.
    recovery: RecoveryRow,
}

/// Crash a checkpointed run mid-flight and resume it from the latest
/// snapshot: the row records how expensive coming back is (restore +
/// replay vs total wall) and how much state the snapshots held.
/// One worker + self-scheduling makes the cycle deterministic: the
/// lone worker is the victim and claims every size-1 chunk itself, so
/// killing it at its `tasks/2`-th claim always fires and always lands
/// far past many snapshot cadences — the resumed-task count measures
/// real restored work (~half the workload) instead of racing thread
/// scheduling for the first snapshot write. Trend data only — the
/// regression gate never reads this section, so a slow disk can't
/// fail the build.
fn measure_recovery(scale: &Scale) -> RecoveryRow {
    let tasks = scale.small_tasks / 4;
    let g = flat_graph(tasks, 4.0);
    let dir =
        std::env::temp_dir().join(format!("orchestra-sched-bench-ckpt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let opts = ExecutorOptions {
        policy: PolicyKind::SelfSched,
        threads: 1,
        faults: Some(FaultPlan::crash(0, FaultTrigger::AfterClaims(tasks as u64 / 2))),
        checkpoint: Some(CheckpointSpec { dir: dir.clone(), every_claims: 16, keep: 4 }),
        ..ExecutorOptions::default()
    };
    let kernel = SpinKernel::with_scale(8.0);
    let run = execute_graph_resumable(&g, &opts, &kernel).expect("bench graph valid");
    let snapshot_bytes = std::fs::read_dir(&dir)
        .map(|rd| rd.flatten().filter_map(|e| e.metadata().ok()).map(|m| m.len()).sum())
        .unwrap_or(0);
    let _ = std::fs::remove_dir_all(&dir);
    RecoveryRow {
        wall_us: run.wall_us,
        recovery_us: run.recovery_us,
        resumed_tasks: run.resumed_tasks,
        attempts: run.attempts,
        snapshot_bytes,
    }
}

/// The serving path end to end: one live `orchestrad` on a unix
/// socket in the temp dir, 4 shared workers, deterministic
/// calibration. Each concurrency cell connects `tenants` clients,
/// releases them through a barrier, and times the whole batch from
/// first submission to last completion (aggregate tasks/sec, the
/// gated column) plus each job's own submission→completion span (mean
/// latency, trend data). The `sequential` row pushes the same four
/// jobs through one connection back to back — it isolates the wire +
/// session cost per job, so the concurrency rows read as "what the
/// cross-graph equalizer buys" against it. Best-of-reps wall, like
/// the other wall-clock sections; the latency recorded is the one
/// from the best rep so the two columns describe the same batch.
fn measure_daemon(scale: &Scale) -> BTreeMap<String, DaemonRow> {
    use std::sync::{Arc, Barrier};

    let tasks = scale.small_tasks / 8;
    let g = Arc::new(flat_graph(tasks, 4.0));
    let socket = std::env::temp_dir()
        .join(format!("orchestra-sched-bench-daemon-{}.sock", std::process::id()));
    let mut daemon = Daemon::start(DaemonConfig {
        socket: socket.clone(),
        workers: 4,
        ..DaemonConfig::default()
    })
    .expect("bench daemon starts");
    let mut rows = BTreeMap::new();
    for tenants in [1usize, 2, 4] {
        let mut best_wall = f64::INFINITY;
        let mut best_lat = f64::NAN;
        for _ in 0..scale.reps {
            // Connect everyone first, then release through a barrier:
            // connection setup is not part of the serving latency.
            let barrier = Arc::new(Barrier::new(tenants + 1));
            let handles: Vec<_> = (0..tenants)
                .map(|t| {
                    let (g, socket, barrier) = (g.clone(), socket.clone(), barrier.clone());
                    std::thread::spawn(move || {
                        let mut c = Client::connect(&socket, &format!("bench-{t}"), 1.0)
                            .expect("bench client connects");
                        barrier.wait();
                        let t0 = Instant::now();
                        let job = c
                            .submit(
                                &g,
                                "flat",
                                &JobOptions { seed: t as u64, ..JobOptions::default() },
                            )
                            .expect("bench job admitted");
                        c.wait(job).expect("bench job completes");
                        t0.elapsed().as_secs_f64() * 1e6
                    })
                })
                .collect();
            barrier.wait();
            let t0 = Instant::now();
            let lats: Vec<f64> =
                handles.into_iter().map(|h| h.join().expect("tenant thread")).collect();
            let wall = t0.elapsed().as_secs_f64() * 1e6;
            if wall < best_wall {
                best_wall = wall;
                best_lat = lats.iter().sum::<f64>() / lats.len() as f64;
            }
        }
        let rate = (tenants * tasks) as f64 / (best_wall * 1e-6);
        eprintln!("daemon t{tenants}         {rate:12.0} tasks/sec latency={best_lat:9.0}µs");
        rows.insert(format!("t{tenants}"), DaemonRow { tasks_per_sec: rate, latency_us: best_lat });
    }
    {
        let mut c = Client::connect(&socket, "bench-seq", 1.0).expect("bench client connects");
        let mut best_wall = f64::INFINITY;
        let mut best_lat = f64::NAN;
        for _ in 0..scale.reps {
            let mut lats = Vec::with_capacity(4);
            let t0 = Instant::now();
            for t in 0..4u64 {
                let s0 = Instant::now();
                let job = c
                    .submit(&g, "flat", &JobOptions { seed: t, ..JobOptions::default() })
                    .expect("bench job admitted");
                c.wait(job).expect("bench job completes");
                lats.push(s0.elapsed().as_secs_f64() * 1e6);
            }
            let wall = t0.elapsed().as_secs_f64() * 1e6;
            if wall < best_wall {
                best_wall = wall;
                best_lat = lats.iter().sum::<f64>() / lats.len() as f64;
            }
        }
        let rate = (4 * tasks) as f64 / (best_wall * 1e-6);
        eprintln!("daemon sequential {rate:12.0} tasks/sec latency={best_lat:9.0}µs");
        rows.insert("sequential".into(), DaemonRow { tasks_per_sec: rate, latency_us: best_lat });
    }
    daemon.shutdown();
    rows
}

/// The equalizer's home turf: one concurrent level holding a heavy op
/// (8× the tasks of the light one) so an even split leaves half the
/// pool finishing early. Fed by a source task and drained by a merge,
/// like the differential suite's asymmetric diamond.
fn alloc_graph(light_tasks: usize) -> DelirGraph {
    let heavy_tasks = light_tasks * 8;
    let mut g = DelirGraph::new();
    let a = g.add_node("A", NodeKind::Task { cost: 2.0 }, None);
    let h = g.add_node(
        "H",
        NodeKind::DataParallel { tasks: heavy_tasks, mean_cost: 1.0, cv: 0.5 },
        None,
    );
    let l = g.add_node(
        "L",
        NodeKind::DataParallel { tasks: light_tasks, mean_cost: 1.0, cv: 0.5 },
        None,
    );
    let d = g.add_node("D", NodeKind::Merge { cost: 2.0 }, None);
    g.add_edge(a, h, DataAnno::array("x", heavy_tasks as u64));
    g.add_edge(a, l, DataAnno::array("y", light_tasks as u64));
    g.add_edge(h, d, DataAnno::array("r1", heavy_tasks as u64));
    g.add_edge(l, d, DataAnno::array("r2", light_tasks as u64));
    g
}

/// Tasks/sec on the asymmetric concurrent level with the §4.1.2
/// equalizer on vs the naive shared pool, same policy and worker
/// count.
///
/// The two modes differ by a few percent of scheduling overhead (the
/// partition roughly halves the level's scheduling events: each op's
/// chunk schedule is sized for its own processors, not the whole
/// pool), which best-of-N walls measured minutes apart cannot resolve
/// on a shared host. So the cell is measured *paired*: each rep runs
/// both modes back to back (alternating which goes first), host drift
/// cancels in the per-rep wall ratio, and the recorded equalizer rate
/// is the shared rate scaled by the median paired ratio. The policy
/// is TAPER with cost functions — the richest per-claim path, where
/// halving scheduling events is worth the most.
fn measure_alloc(
    g: &DelirGraph,
    tasks: usize,
    workers: usize,
    kernel: &SpinKernel,
    reps: usize,
) -> AllocRow {
    let mut ratios = Vec::with_capacity(reps);
    let mut shared_walls = Vec::with_capacity(reps);
    for rep in 0..reps {
        let mut wall = [0.0f64; 2];
        let order = if rep % 2 == 0 { [true, false] } else { [false, true] };
        for use_allocation in order {
            let opts = ExecutorOptions {
                policy: PolicyKind::TaperCostFn,
                threads: workers,
                use_allocation,
                ..ExecutorOptions::default()
            };
            let run = execute_threaded(g, &opts, kernel).expect("bench graph valid");
            wall[usize::from(!use_allocation)] = run.wall_us;
        }
        ratios.push(wall[1] / wall[0]);
        shared_walls.push(wall[1]);
    }
    let median = |v: &mut Vec<f64>| {
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    };
    let shared = tasks as f64 / (median(&mut shared_walls) * 1e-6);
    AllocRow { equalizer: shared * median(&mut ratios), shared }
}

/// The streamed data plane's home turf: a deep linear chain of small
/// equal-width element-wise ops. Barriered, every one of the
/// `depth - 1` edges is a full stop — the completing worker wakes the
/// pool, everyone piles onto one fresh op, and with tiny tasks the
/// boundary overhead rivals the compute. Streamed, consumer chunks
/// open at the producers' watermarks and the chain executes as one
/// long pipeline.
fn chain_bench_graph(depth: usize, tasks: usize) -> DelirGraph {
    let mut g = DelirGraph::new();
    let mut prev = None;
    for i in 0..depth {
        let n = g.add_node(
            format!("c{i}"),
            NodeKind::DataParallel { tasks, mean_cost: 1.0, cv: 0.3 },
            None,
        );
        if let Some(p) = prev {
            g.add_edge(p, n, DataAnno::array(format!("s{i}"), tasks as u64));
        }
        prev = Some(n);
    }
    g
}

/// Tasks/sec on the deep chain with the streamed data plane on vs off,
/// same policy and worker count. Paired like [`measure_alloc`]: each
/// rep runs both modes back to back (alternating which goes first) so
/// host drift cancels in the per-rep wall ratio, and the recorded
/// streamed rate is the barrier rate scaled by the median ratio.
fn measure_pipeline(
    g: &DelirGraph,
    tasks: usize,
    workers: usize,
    kernel: &SpinKernel,
    reps: usize,
) -> PipelineRow {
    let mut ratios = Vec::with_capacity(reps);
    let mut barrier_walls = Vec::with_capacity(reps);
    let mut watermark_pubs = 0u64;
    let mut streamed_edges = 0usize;
    for rep in 0..reps {
        let mut wall = [0.0f64; 2];
        let order = if rep % 2 == 0 { [true, false] } else { [false, true] };
        for pipeline_overlap in order {
            let opts = ExecutorOptions {
                threads: workers,
                pipeline_overlap,
                ..ExecutorOptions::default()
            };
            let run = execute_threaded(g, &opts, kernel).expect("bench graph valid");
            wall[usize::from(!pipeline_overlap)] = run.wall_us;
            if pipeline_overlap {
                watermark_pubs = watermark_pubs.max(run.watermark_pubs);
                streamed_edges = streamed_edges.max(run.streamed_edges);
            }
        }
        ratios.push(wall[1] / wall[0]);
        barrier_walls.push(wall[1]);
    }
    let median = |v: &mut Vec<f64>| {
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    };
    let barrier = tasks as f64 / (median(&mut barrier_walls) * 1e-6);
    PipelineRow { streamed: barrier * median(&mut ratios), barrier, watermark_pubs, streamed_edges }
}

/// A uniform-cost flat op: the cv gate must keep the dist coordinator
/// silent, so this row records pure home-queue overhead.
fn dist_uniform_graph(tasks: usize) -> DelirGraph {
    let mut g = DelirGraph::new();
    g.add_node("uniform", NodeKind::DataParallel { tasks, mean_cost: 4.0, cv: 0.0 }, None);
    g
}

/// A two-population mixture whose heavy tasks interleave into the low
/// home blocks: the migration-pays-off shape.
fn dist_skewed_graph(tasks: usize) -> DelirGraph {
    let heavy = tasks / 8;
    let mut g = DelirGraph::new();
    g.add_node(
        "skewed",
        NodeKind::Mixture {
            populations: vec![
                Population { tasks: heavy, mean_cost: 40.0, cv: 0.0 },
                Population { tasks: tasks - heavy, mean_cost: 1.0, cv: 0.0 },
            ],
        },
        None,
    );
    g
}

/// Best-of-`reps` dist-TAPER run vs the shared-queue TAPER baseline.
fn measure_dist(g: &DelirGraph, workers: usize, kernel: &SpinKernel, reps: usize) -> DistRow {
    let dist_opts = ExecutorOptions {
        backend: ExecutorBackend::ThreadedDist,
        threads: workers,
        ..ExecutorOptions::default()
    };
    let shared_opts = ExecutorOptions {
        backend: ExecutorBackend::Threaded,
        policy: PolicyKind::Taper,
        threads: workers,
        ..ExecutorOptions::default()
    };
    let mut best: Option<DistRow> = None;
    for _ in 0..reps {
        let run = execute_threaded(g, &dist_opts, kernel).expect("bench graph valid");
        if best.as_ref().is_none_or(|b| run.wall_us < b.wall_us) {
            best = Some(DistRow {
                wall_us: run.wall_us,
                shared_wall_us: f64::INFINITY,
                locality: run.locality,
                reassignments: run.reassignments,
                remote_reassignments: run.remote_reassignments,
                migrated: run.migrated_tasks,
                epochs: run.ops.iter().map(|o| o.epochs).sum(),
            });
        }
    }
    let mut row = best.expect("reps >= 1");
    row.shared_wall_us = best_wall_us(g, &shared_opts, kernel, reps);
    row
}

/// Best-of-`reps` cooperative-backend run (TAPER, 4 drivers).
fn measure_async(g: &DelirGraph, tasks: usize, kernel: &SpinKernel, reps: usize) -> AsyncRow {
    let opts = ExecutorOptions { policy: PolicyKind::Taper, drivers: 4, ..Default::default() };
    let mut best: Option<AsyncRow> = None;
    for _ in 0..reps {
        let run = execute_async(g, &opts, kernel).expect("bench graph valid");
        if best.as_ref().is_none_or(|b| run.wall_us < b.wall_us) {
            best = Some(AsyncRow {
                wall_us: run.wall_us,
                tasks_per_sec: tasks as f64 / (run.wall_us * 1e-6),
                claims: run.claims,
                yields: run.yields,
                driver_util: run.driver_utilization(),
            });
        }
    }
    best.expect("reps >= 1")
}

fn measure(scale: &Scale) -> RunResults {
    let mut claim = PolicyMap::new();
    for p in POLICIES {
        // Each rep is only milliseconds, but the trend gate holds this
        // column to the same 20% band as the throughput rows — on a
        // busy single-core host, best-of-few is not enough to find a
        // quiet slice, so the claim microbench takes many more reps
        // than the wall-clock measurements.
        let ns = claim_latency_ns(p, scale.claim_tasks, scale.reps * 8);
        eprintln!("claim {:<16} {ns:8.1} ns/task", p.name());
        claim.insert(p.name(), ns);
    }

    // Tiny tasks: the kernel is ~1 arithmetic step, so tasks/sec is
    // almost pure orchestration overhead. Large tasks: a few µs of real
    // compute each, so scheduling must stay out of the way.
    let workloads: [(&'static str, usize, f64, f64); 2] =
        [("small", scale.small_tasks, 1.0, 1.0), ("large", scale.large_tasks, 50.0, 60.0)];
    let mut tps: BTreeMap<&'static str, BTreeMap<&'static str, BTreeMap<usize, f64>>> =
        BTreeMap::new();
    for (wl, tasks, mean_cost, kscale) in workloads {
        let g = flat_graph(tasks, mean_cost);
        let kernel = SpinKernel::with_scale(kscale);
        for p in POLICIES {
            for w in WORKER_COUNTS {
                let opts = ExecutorOptions { policy: p, threads: w, ..ExecutorOptions::default() };
                let wall = best_wall_us(&g, &opts, &kernel, scale.reps);
                let rate = tasks as f64 / (wall * 1e-6);
                eprintln!("{wl:<6} {:<16} w={w} {rate:12.0} tasks/sec", p.name());
                tps.entry(wl).or_default().entry(p.name()).or_default().insert(w, rate);
            }
        }
    }

    let mut shapes: BTreeMap<&'static str, PolicyMap> = BTreeMap::new();
    let dag = dag_graph();
    let (pipe, pipe_opts) = pipeline_graph();
    let kernel = SpinKernel::with_scale(8.0);
    for p in POLICIES {
        let opts = ExecutorOptions { policy: p, threads: 4, ..ExecutorOptions::default() };
        let wall = best_wall_us(&dag, &opts, &kernel, scale.reps);
        shapes.entry("dag").or_default().insert(p.name(), wall);
        let opts = ExecutorOptions { policy: p, threads: 4, ..pipe_opts.clone() };
        let wall = best_wall_us(&pipe, &opts, &kernel, scale.reps);
        shapes.entry("pipeline").or_default().insert(p.name(), wall);
    }

    let mut dist: BTreeMap<&'static str, DistRow> = BTreeMap::new();
    let dist_tasks = scale.small_tasks / 4;
    let kernel = SpinKernel::with_scale(8.0);
    for (wl, g) in
        [("uniform", dist_uniform_graph(dist_tasks)), ("skewed", dist_skewed_graph(dist_tasks))]
    {
        let row = measure_dist(&g, 4, &kernel, scale.reps);
        eprintln!(
            "dist   {wl:<8} wall={:9.0}µs shared={:9.0}µs locality={:.3} reassign={} migrated={}",
            row.wall_us, row.shared_wall_us, row.locality, row.reassignments, row.migrated
        );
        dist.insert(wl, row);
    }

    // Cooperative backend: the same flat workloads as the threaded
    // tasks/sec table plus the skewed mixture (where TAPER's shrinking
    // chunks make the yield count interesting), at 4 drivers.
    let mut asynch: BTreeMap<&'static str, AsyncRow> = BTreeMap::new();
    let async_cases: [(&'static str, DelirGraph, usize, f64); 3] = [
        ("small", flat_graph(scale.small_tasks, 1.0), scale.small_tasks, 1.0),
        ("large", flat_graph(scale.large_tasks, 50.0), scale.large_tasks, 60.0),
        ("skewed", dist_skewed_graph(dist_tasks), dist_tasks, 8.0),
    ];
    for (wl, g, tasks, kscale) in async_cases {
        let kernel = SpinKernel::with_scale(kscale);
        let row = measure_async(&g, tasks, &kernel, scale.reps);
        eprintln!(
            "async  {wl:<8} wall={:9.0}µs {:12.0} tasks/sec claims={:5} yields={:5} util={:.3}",
            row.wall_us, row.tasks_per_sec, row.claims, row.yields, row.driver_util
        );
        asynch.insert(wl, row);
    }

    // Rayon-equivalent baseline: the same flat workloads and worker
    // counts as the threaded tasks/sec table, scheduled by the
    // hand-rolled join splitter — fixed grain, no cost feedback. The
    // gap between these rows and the policy rows is the measured value
    // of adaptive chunking.
    let mut rayon: BTreeMap<&'static str, BTreeMap<usize, f64>> = BTreeMap::new();
    for (wl, tasks, mean_cost, kscale) in workloads {
        let g = flat_graph(tasks, mean_cost);
        let node = &g.nodes[0];
        let costs = orchestra_runtime::costs_of_node(node, ExecutorOptions::default().seed);
        let kernel = SpinKernel::with_scale(kscale);
        for w in WORKER_COUNTS {
            let mut best = f64::INFINITY;
            for _ in 0..scale.reps {
                let run = run_join_split(node, &costs, &kernel, w, default_grain(tasks, w));
                best = best.min(run.wall_us);
            }
            let rate = tasks as f64 / (best * 1e-6);
            eprintln!("rayon  {wl:<6} w={w} {rate:12.0} tasks/sec");
            rayon.entry(wl).or_default().insert(w, rate);
        }
    }

    // Equalizer vs naive shared pool on the asymmetric concurrent
    // level, at the worker counts where a partition is meaningful.
    let mut alloc: BTreeMap<String, AllocRow> = BTreeMap::new();
    let alloc_light = scale.small_tasks / 16;
    let alloc_g = alloc_graph(alloc_light);
    let alloc_tasks = alloc_light * 9;
    let kernel = SpinKernel::with_scale(1.0);
    // Each paired rep is two sub-millisecond runs, so the cell can
    // afford far more reps than the wall-clock sections — and needs
    // them: the paired-median estimator resolves a few-percent effect
    // only with a deep sample.
    let alloc_reps = scale.reps * 40;
    for w in [4usize, 8] {
        let row = measure_alloc(&alloc_g, alloc_tasks, w, &kernel, alloc_reps);
        eprintln!(
            "alloc  w={w} equalizer={:12.0} tasks/sec shared={:12.0} tasks/sec ({:+.1}%)",
            row.equalizer,
            row.shared,
            (row.equalizer / row.shared - 1.0) * 100.0
        );
        alloc.insert(format!("w{w}"), row);
    }

    // Streamed vs barriered data plane on the deep small-task chain —
    // at 4 workers, where the per-boundary wake traffic is worth the
    // most. Tiny tasks: the boundary cost is the measurement.
    let mut pipeline: BTreeMap<String, PipelineRow> = BTreeMap::new();
    let chain_depth = if scale.reps >= 5 { 48 } else { 24 };
    let chain_width = 64;
    let chain_g = chain_bench_graph(chain_depth, chain_width);
    let chain_tasks = chain_depth * chain_width;
    let kernel = SpinKernel::with_scale(1.0);
    let pipeline_reps = scale.reps * 8;
    let w = 4usize;
    let row = measure_pipeline(&chain_g, chain_tasks, w, &kernel, pipeline_reps);
    eprintln!(
        "pipe   w={w} streamed={:12.0} tasks/sec barrier={:12.0} tasks/sec ({:+.1}%) \
         edges={} pubs={}",
        row.streamed,
        row.barrier,
        (row.streamed / row.barrier - 1.0) * 100.0,
        row.streamed_edges,
        row.watermark_pubs
    );
    pipeline.insert(format!("w{w}"), row);

    let daemon = measure_daemon(scale);

    // Steal-distance profile: the DAG shape exercises token stealing
    // (a completer enqueues newly-enabled ops locally; everyone else
    // must steal into them). Counters accumulate over the reps — a
    // profile, not a race — under both steal orders. On a single-CPU
    // host every worker shares one core, so all steals land in the
    // sibling bucket and batching stays zero: the fallback path.
    let mut steals: BTreeMap<String, StealRow> = BTreeMap::new();
    let kernel = SpinKernel::with_scale(8.0);
    for (order, oname) in [(StealOrder::Hierarchical, "hierarchical"), (StealOrder::Ring, "ring")] {
        for w in [4usize, 8] {
            let opts = ExecutorOptions { threads: w, steal_order: order, ..Default::default() };
            let mut row = StealRow { steal: StealStats::new(), pinned_workers: 0 };
            for _ in 0..scale.reps {
                let run = execute_threaded(&dag, &opts, &kernel).expect("bench graph valid");
                row.steal.merge(&run.steal);
                row.pinned_workers = row.pinned_workers.max(run.pinned_workers);
            }
            eprintln!(
                "steals {oname:<13} w={w} total={:4} sib={:4} node={:4} remote={:4} batched={:4}",
                row.steal.steals,
                row.steal.sibling_steals,
                row.steal.node_steals,
                row.steal.remote_steals,
                row.steal.batched_tokens
            );
            steals.insert(format!("{oname}/w{w}"), row);
        }
    }

    let recovery = measure_recovery(scale);
    eprintln!(
        "recov  wall={:9.0}µs recovery={:9.0}µs resumed={:5} attempts={} snapshots={}B",
        recovery.wall_us,
        recovery.recovery_us,
        recovery.resumed_tasks,
        recovery.attempts,
        recovery.snapshot_bytes
    );

    RunResults {
        claim_ns_per_task: claim,
        tasks_per_sec: tps,
        graph_wall_us: shapes,
        dist,
        asynch,
        rayon,
        alloc,
        pipeline,
        daemon,
        steals,
        recovery,
    }
}

/// The machine running this benchmark: cpu model (from
/// `/proc/cpuinfo`, "unknown" elsewhere), logical core count, and
/// OS/architecture. Stored per run so baselines collected on
/// different hosts are never compared as if they were one machine.
fn host_fingerprint() -> (String, usize, String) {
    let cpu = std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|text| {
            text.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split(':').nth(1))
                .map(|m| m.trim().to_string())
        })
        .unwrap_or_else(|| "unknown".to_string());
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let os = format!("{} {}", std::env::consts::OS, std::env::consts::ARCH);
    (cpu, cores, os)
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.1}")
    } else {
        "null".to_string()
    }
}

fn render_run(r: &RunResults, quick: bool) -> String {
    let mut s = String::new();
    let (cpu, cores, os) = host_fingerprint();
    let topo = CpuTopology::probe().fingerprint();
    let _ = writeln!(s, "{{");
    let _ = writeln!(
        s,
        "      \"host\": {{\"cpu\": \"{}\", \"cores\": {cores}, \"os\": \"{os}\"}},",
        cpu.replace('"', "'")
    );
    let _ = writeln!(
        s,
        "      \"topology\": {{\"source\": \"{}\", \"nodes\": {}, \"packages\": {}, \"cores\": {}, \"cpus\": {}}},",
        topo.source, topo.nodes, topo.packages, topo.cores, topo.cpus
    );
    let _ = writeln!(s, "      \"cores_available\": {cores},");
    let _ = writeln!(s, "      \"quick\": {quick},");
    let _ = writeln!(s, "      \"claim_ns_per_task\": {{");
    let n = r.claim_ns_per_task.len();
    for (i, (k, v)) in r.claim_ns_per_task.iter().enumerate() {
        let comma = if i + 1 < n { "," } else { "" };
        let _ = writeln!(s, "        \"{k}\": {}{comma}", json_f64(*v));
    }
    let _ = writeln!(s, "      }},");
    let _ = writeln!(s, "      \"tasks_per_sec\": {{");
    let nw = r.tasks_per_sec.len();
    for (i, (wl, by_policy)) in r.tasks_per_sec.iter().enumerate() {
        let _ = writeln!(s, "        \"{wl}\": {{");
        let np = by_policy.len();
        for (j, (p, by_w)) in by_policy.iter().enumerate() {
            let cells: Vec<String> =
                by_w.iter().map(|(w, v)| format!("\"{w}\": {}", json_f64(*v))).collect();
            let comma = if j + 1 < np { "," } else { "" };
            let _ = writeln!(s, "          \"{p}\": {{{}}}{comma}", cells.join(", "));
        }
        let comma = if i + 1 < nw { "," } else { "" };
        let _ = writeln!(s, "        }}{comma}");
    }
    let _ = writeln!(s, "      }},");
    let _ = writeln!(s, "      \"graph_wall_us\": {{");
    let ns = r.graph_wall_us.len();
    for (i, (shape, by_policy)) in r.graph_wall_us.iter().enumerate() {
        let cells: Vec<String> =
            by_policy.iter().map(|(p, v)| format!("\"{p}\": {}", json_f64(*v))).collect();
        let comma = if i + 1 < ns { "," } else { "" };
        let _ = writeln!(s, "        \"{shape}\": {{{}}}{comma}", cells.join(", "));
    }
    let _ = writeln!(s, "      }},");
    let _ = writeln!(s, "      \"dist\": {{");
    let nd = r.dist.len();
    for (i, (wl, row)) in r.dist.iter().enumerate() {
        let comma = if i + 1 < nd { "," } else { "" };
        let _ = writeln!(
            s,
            "        \"{wl}\": {{\"wall_us\": {}, \"shared_wall_us\": {}, \"locality\": {:.4}, \"reassignments\": {}, \"remote_reassignments\": {}, \"migrated\": {}, \"epochs\": {}}}{comma}",
            json_f64(row.wall_us),
            json_f64(row.shared_wall_us),
            row.locality,
            row.reassignments,
            row.remote_reassignments,
            row.migrated,
            row.epochs
        );
    }
    let _ = writeln!(s, "      }},");
    let _ = writeln!(s, "      \"async\": {{");
    let na = r.asynch.len();
    for (i, (wl, row)) in r.asynch.iter().enumerate() {
        let comma = if i + 1 < na { "," } else { "" };
        let _ = writeln!(
            s,
            "        \"{wl}\": {{\"wall_us\": {}, \"tasks_per_sec\": {}, \"claims\": {}, \"yields\": {}, \"driver_util\": {:.4}}}{comma}",
            json_f64(row.wall_us),
            json_f64(row.tasks_per_sec),
            row.claims,
            row.yields,
            row.driver_util
        );
    }
    let _ = writeln!(s, "      }},");
    let _ = writeln!(s, "      \"rayon\": {{");
    let nr = r.rayon.len();
    for (i, (wl, by_w)) in r.rayon.iter().enumerate() {
        let cells: Vec<String> =
            by_w.iter().map(|(w, v)| format!("\"{w}\": {}", json_f64(*v))).collect();
        let comma = if i + 1 < nr { "," } else { "" };
        let _ = writeln!(s, "        \"{wl}\": {{{}}}{comma}", cells.join(", "));
    }
    let _ = writeln!(s, "      }},");
    let _ = writeln!(s, "      \"alloc\": {{");
    let nal = r.alloc.len();
    for (i, (key, row)) in r.alloc.iter().enumerate() {
        let comma = if i + 1 < nal { "," } else { "" };
        let _ = writeln!(
            s,
            "        \"{key}\": {{\"equalizer\": {}, \"shared\": {}}}{comma}",
            json_f64(row.equalizer),
            json_f64(row.shared)
        );
    }
    let _ = writeln!(s, "      }},");
    let _ = writeln!(s, "      \"pipeline\": {{");
    let npi = r.pipeline.len();
    for (i, (key, row)) in r.pipeline.iter().enumerate() {
        let comma = if i + 1 < npi { "," } else { "" };
        let _ = writeln!(
            s,
            "        \"{key}\": {{\"streamed\": {}, \"barrier\": {}, \"streamed_edges\": {}, \"watermark_pubs\": {}}}{comma}",
            json_f64(row.streamed),
            json_f64(row.barrier),
            row.streamed_edges,
            row.watermark_pubs
        );
    }
    let _ = writeln!(s, "      }},");
    let _ = writeln!(s, "      \"daemon\": {{");
    let nda = r.daemon.len();
    for (i, (key, row)) in r.daemon.iter().enumerate() {
        let comma = if i + 1 < nda { "," } else { "" };
        let _ = writeln!(
            s,
            "        \"{key}\": {{\"tasks_per_sec\": {}, \"latency_us\": {}}}{comma}",
            json_f64(row.tasks_per_sec),
            json_f64(row.latency_us)
        );
    }
    let _ = writeln!(s, "      }},");
    let rv = &r.recovery;
    let _ = writeln!(
        s,
        "      \"recovery\": {{\"wall_us\": {}, \"recovery_us\": {}, \"resumed_tasks\": {}, \"attempts\": {}, \"snapshot_bytes\": {}}},",
        json_f64(rv.wall_us),
        json_f64(rv.recovery_us),
        rv.resumed_tasks,
        rv.attempts,
        rv.snapshot_bytes
    );
    let _ = writeln!(s, "      \"steals\": {{");
    let nst = r.steals.len();
    for (i, (key, row)) in r.steals.iter().enumerate() {
        let comma = if i + 1 < nst { "," } else { "" };
        let st = &row.steal;
        let _ = writeln!(
            s,
            "        \"{key}\": {{\"steals\": {}, \"sibling\": {}, \"node\": {}, \"remote\": {}, \"batched_tokens\": {}, \"mean_distance\": {:.3}, \"pinned_workers\": {}}}{comma}",
            st.steals,
            st.sibling_steals,
            st.node_steals,
            st.remote_steals,
            st.batched_tokens,
            st.mean_distance(),
            row.pinned_workers
        );
    }
    let _ = writeln!(s, "      }}");
    let _ = write!(s, "    }}");
    s
}

/// The file's current text ("" when missing: merging into nothing
/// creates a fresh normal-form file).
fn load_text(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_default()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut normalize = false;
    let mut check = false;
    let mut label = "current".to_string();
    let mut out = "BENCH_threaded.json".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--normalize" => normalize = true,
            "--check-regression" => check = true,
            "--label" => label = it.next().expect("--label NAME").clone(),
            "--out" => out = it.next().expect("--out PATH").clone(),
            other => {
                eprintln!("unknown argument `{other}`");
                std::process::exit(2);
            }
        }
    }
    if check {
        // Trend gate: diff the last two runs sharing a host
        // fingerprint; a >20% tasks/sec drop fails the build.
        let report = check_regression(&load_text(&out), MAX_DROP);
        for line in &report.lines {
            eprintln!("{line}");
        }
        eprintln!(
            "checked {out}: {} comparison(s), {}",
            report.compared,
            if report.regressed { "REGRESSED" } else { "no regression" }
        );
        std::process::exit(i32::from(report.regressed));
    }
    if normalize {
        // Re-emit the existing file in normal form without measuring:
        // cleans up output from older versions of this binary.
        let runs = runs_from_text(&load_text(&out));
        std::fs::write(&out, emit_runs(&runs)).expect("write bench output");
        eprintln!("normalized {out} ({} run(s), schema {SCHED_SCHEMA})", runs.len());
        return;
    }
    let scale = Scale::new(quick);
    let results = measure(&scale);
    let merged = merge_runs(&load_text(&out), &label, &render_run(&results, quick));
    let count = runs_from_text(&merged).len();
    std::fs::write(&out, merged).expect("write bench output");
    eprintln!("wrote {out} (label \"{label}\", {count} run(s))");
}
