#![warn(missing_docs)]
//! # orchestra-bench
//!
//! The measurement harness reproducing the paper's evaluation (§5):
//! Figure 6 (Psirrfan speedup vs processors under static / TAPER /
//! TAPER-with-split scheduling) and the textual results R1 (climate
//! model efficiencies) and R2 (processor doubling at 5–15% efficiency
//! loss across all four applications), plus the ablations listed in
//! `DESIGN.md` §5.
//!
//! The `figures` binary prints each table; `cargo bench` runs the
//! Criterion micro-benchmarks over the compiler passes and runtime
//! algorithms. The [`runs`] module owns the `BENCH_threaded.json`
//! labelled-run format written by the `sched` binary (merge, normal
//! form, and the CI regression check), with [`json`] as its minimal
//! reader.

pub mod json;
pub mod runs;
pub mod splitter;

use orchestra_apps::AppWorkload;
use orchestra_machine::MachineConfig;
use orchestra_runtime::{execute_graph, ExecutorOptions, PolicyKind};

/// The three scheduling configurations of Figure 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Config {
    /// Static block scheduling of the baseline graph.
    Static,
    /// TAPER (with cost functions) on the baseline graph.
    Taper,
    /// TAPER on the split graph with pipelining and processor
    /// allocation — the paper's full system.
    TaperSplit,
}

impl Config {
    /// Display name matching the paper's Figure 6 legend.
    pub fn name(&self) -> &'static str {
        match self {
            Config::Static => "static",
            Config::Taper => "TAPER",
            Config::TaperSplit => "TAPER with split",
        }
    }
}

/// One measured point.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Processor count.
    pub processors: usize,
    /// Simulated completion time (µs).
    pub time: f64,
    /// Speedup relative to the workload's serial work.
    pub speedup: f64,
    /// Efficiency (speedup / p).
    pub efficiency: f64,
}

/// Runs one workload under one configuration on `p` processors.
///
/// Speedup and efficiency are computed against the *baseline* graph's
/// serial work for every configuration, so the split version is not
/// credited for its own merge overhead.
pub fn measure(w: &AppWorkload, config: Config, p: usize) -> Measurement {
    let cfg = MachineConfig::ncube2(p);
    let serial = w.serial_work();
    // Average over several irregularity draws (the paper's measurements
    // are steady-state averages of production runs).
    const SEEDS: [u64; 3] = [0x5eed, 0xbeef, 0xcafe];
    let mut total_time = 0.0;
    for seed in SEEDS {
        let mut opts = ExecutorOptions { seed, ..ExecutorOptions::default() };
        opts.pipeline_iters.extend(w.pipeline_iters.clone());
        let report = match config {
            Config::Static => {
                opts.policy = PolicyKind::Static;
                opts.pipeline_overlap = false;
                opts.use_allocation = false;
                execute_graph(&w.baseline, &cfg, &opts).expect("baseline graph valid")
            }
            Config::Taper => {
                opts.policy = PolicyKind::TaperCostFn;
                opts.pipeline_overlap = false;
                opts.use_allocation = false;
                execute_graph(&w.baseline, &cfg, &opts).expect("baseline graph valid")
            }
            Config::TaperSplit => {
                opts.policy = PolicyKind::TaperCostFn;
                opts.pipeline_overlap = true;
                opts.use_allocation = true;
                execute_graph(&w.split, &cfg, &opts).expect("split graph valid")
            }
        };
        total_time += report.finish;
    }
    let time = total_time / SEEDS.len() as f64;
    let speedup = serial / time;
    Measurement { processors: p, time, speedup, efficiency: speedup / p as f64 }
}

/// The Figure 6 processor sweep.
pub fn fig6_processor_counts() -> Vec<usize> {
    vec![128, 256, 384, 512, 640, 768, 896, 1024, 1152]
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_apps::{psirrfan, Scale};

    #[test]
    fn measurements_are_consistent() {
        let w = psirrfan::workload(&Scale { n: 512, seed: 7 });
        let m = measure(&w, Config::Taper, 64);
        assert!(m.time > 0.0);
        assert!((m.speedup / 64.0 - m.efficiency).abs() < 1e-12);
        assert!(m.efficiency <= 1.05, "efficiency near-bounded, got {}", m.efficiency);
    }

    #[test]
    fn taper_beats_static_on_irregular_apps() {
        let w = psirrfan::workload(&Scale { n: 512, seed: 7 });
        let st = measure(&w, Config::Static, 256);
        let tp = measure(&w, Config::Taper, 256);
        assert!(tp.speedup > st.speedup, "TAPER {} must beat static {}", tp.speedup, st.speedup);
    }
}
