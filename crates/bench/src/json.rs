//! A minimal JSON reader for the bench harness.
//!
//! `BENCH_threaded.json` is written by our own serializer, so this
//! parser only needs honest JSON — but the regression checker must not
//! silently misread a hand-edited baseline, so it is a real recursive
//! descent over the full value grammar (objects, arrays, strings with
//! escapes, numbers, literals) that returns `None` on anything
//! malformed rather than guessing. No external crates: the workspace
//! builds offline.

/// A parsed JSON value. Object keys keep file order (the run file's
/// ordering is meaningful: the regression checker compares the last
/// two runs per host fingerprint).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`, which covers every value the
    /// bench emits).
    Num(f64),
    /// A string, with escapes decoded.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses `text` as a single JSON value (surrounding whitespace
    /// allowed, trailing garbage rejected).
    pub fn parse(text: &str) -> Option<Json> {
        let mut p = Parser { bytes: text.as_bytes(), at: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.at == p.bytes.len() {
            Some(v)
        } else {
            None
        }
    }

    /// Object member lookup (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The object's members in source order (empty for non-objects).
    pub fn members(&self) -> &[(String, Json)] {
        match self {
            Json::Obj(members) => members,
            _ => &[],
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.at < self.bytes.len() && self.bytes[self.at].is_ascii_whitespace() {
            self.at += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn eat(&mut self, c: u8) -> Option<()> {
        if self.peek() == Some(c) {
            self.at += 1;
            Some(())
        } else {
            None
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Option<Json> {
        if self.bytes[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Some(v)
        } else {
            None
        }
    }

    fn value(&mut self) -> Option<Json> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => self.string().map(Json::Str),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            b'-' | b'0'..=b'9' => self.number(),
            _ => None,
        }
    }

    fn object(&mut self) -> Option<Json> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.eat(b'}').is_some() {
            return Some(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            if self.eat(b',').is_some() {
                continue;
            }
            self.eat(b'}')?;
            return Some(Json::Obj(members));
        }
    }

    fn array(&mut self) -> Option<Json> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']').is_some() {
            return Some(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            if self.eat(b',').is_some() {
                continue;
            }
            self.eat(b']')?;
            return Some(Json::Arr(items));
        }
    }

    fn string(&mut self) -> Option<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek()? {
                b'"' => {
                    self.at += 1;
                    return Some(out);
                }
                b'\\' => {
                    self.at += 1;
                    match self.peek()? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self.bytes.get(self.at + 1..self.at + 5)?;
                            let code =
                                u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                            out.push(char::from_u32(code)?);
                            self.at += 4;
                        }
                        _ => return None,
                    }
                    self.at += 1;
                }
                c if c < 0x20 => return None,
                _ => {
                    // Copy the full UTF-8 character, not just one byte.
                    let rest = std::str::from_utf8(&self.bytes[self.at..]).ok()?;
                    let ch = rest.chars().next()?;
                    out.push(ch);
                    self.at += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Option<Json> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.at += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at]).ok()?;
        text.parse::<f64>().ok().map(Json::Num)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_bench_shapes() {
        let v = Json::parse(
            r#"{
              "host": {"cpu": "Fake CPU {model}", "cores": 8, "os": "linux x86_64"},
              "quick": true,
              "claim_ns_per_task": {"taper": 41.5, "self": null},
              "rates": [1.0, -2.5, 3e2]
            }"#,
        )
        .unwrap();
        assert_eq!(v.get("host").unwrap().get("cpu").unwrap().as_str(), Some("Fake CPU {model}"));
        assert_eq!(v.get("host").unwrap().get("cores").unwrap().as_f64(), Some(8.0));
        assert_eq!(v.get("quick").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("claim_ns_per_task").unwrap().get("self"), Some(&Json::Null));
        assert_eq!(
            v.get("rates").unwrap(),
            &Json::Arr(vec![Json::Num(1.0), Json::Num(-2.5), Json::Num(300.0)])
        );
    }

    #[test]
    fn decodes_escapes() {
        let v = Json::parse(r#""a\"b\\c\ndA""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndA"));
    }

    #[test]
    fn preserves_member_order() {
        let v = Json::parse(r#"{"z": 1, "a": 2, "m": 3}"#).unwrap();
        let keys: Vec<&str> = v.members().iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["z", "a", "m"]);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "}",
            "{\"a\"}",
            "{\"a\": }",
            "[1,]",
            "{\"a\": 1} extra",
            "\"open",
            "nul",
            "1.2.3",
            "{'a': 1}",
        ] {
            assert!(Json::parse(bad).is_none(), "accepted malformed {bad:?}");
        }
    }
}
