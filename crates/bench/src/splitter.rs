//! A hand-rolled rayon-equivalent scheduler baseline: join-style lazy
//! binary splitting with per-worker range stacks and steal-the-oldest
//! work stealing.
//!
//! The point of the row this module feeds is a head-to-head the paper's
//! policies never get in-tree otherwise: how does TAPER's
//! variance-adaptive *chunk sizing* compare against the scheduler the
//! broader ecosystem reaches for (`rayon`'s `par_iter` recursive
//! splitter)? Since the build is offline, the splitter is rebuilt on
//! `std` primitives alone, but it follows the same playbook:
//!
//! * the iteration space starts as one range on worker 0's stack;
//! * a worker pops the **top** of its own stack (LIFO — depth-first,
//!   cache-friendly), splits the range in half while it is longer than
//!   the grain, pushing right halves back, and executes the leftmost
//!   grain-sized piece;
//! * an idle worker steals the **oldest** (bottom-of-stack — largest)
//!   range of the first non-empty victim, so one steal moves half the
//!   victim's remaining subtree, just like a `join` thief;
//! * task values are written straight into a shared
//!   [`OutputArena`](orchestra_runtime::OutputArena) through disjoint
//!   chunk views — ranges partition the index space, so the views never
//!   alias — the same zero-copy data plane the real backends use.
//!
//! What this baseline deliberately lacks is everything the paper adds:
//! no cost feedback, no variance awareness, no decreasing chunk series
//! — the grain is fixed up front. The gap between this row and the
//! TAPER rows *is* the measured value of adaptive chunking.

use orchestra_delirium::Node;
use orchestra_runtime::{OutputArena, TaskCtx, TaskKernel};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// One measured splitter execution.
#[derive(Debug)]
pub struct SplitRun {
    /// Wall-clock time, µs.
    pub wall_us: f64,
    /// Range splits performed (each pushes one right half).
    pub splits: u64,
    /// Ranges obtained by raiding another worker's stack.
    pub steals: u64,
    /// Grain-sized pieces executed.
    pub chunks: u64,
    /// The op's output buffer, one value per task.
    pub outputs: Vec<f64>,
}

/// The fixed grain rayon's `with_min_len` idiom would pick for a flat
/// loop: enough pieces for `workers × 8`-way load balancing, never
/// below one task.
pub fn default_grain(tasks: usize, workers: usize) -> usize {
    (tasks / (workers.max(1) * 8)).max(1)
}

/// Worker-shared splitter state: per-worker stacks of `(start, len)`
/// ranges plus the counters. Stacks are mutex-wrapped (uncontended in
/// the common LIFO case; thieves take the lock briefly) — the
/// comparison targets scheduling *policy*, and the real backends pay a
/// claim-path synchronization cost too.
struct SplitState {
    stacks: Vec<Mutex<Vec<(usize, usize)>>>,
    remaining: AtomicUsize,
    splits: AtomicU64,
    steals: AtomicU64,
    chunks: AtomicU64,
}

/// Executes `kernel` over `costs.len()` tasks of `node` with `workers`
/// threads using lazy binary splitting at `grain`. Deterministic in
/// its outputs (each task index computes the same value regardless of
/// which worker ran it), nondeterministic in its steal/split counts —
/// exactly like the thing it models.
pub fn run_join_split(
    node: &Node,
    costs: &[f64],
    kernel: &(dyn TaskKernel + Sync),
    workers: usize,
    grain: usize,
) -> SplitRun {
    let n = costs.len();
    let workers = workers.max(1);
    let grain = grain.max(1);
    let arena = OutputArena::for_ops([n]);
    let state = SplitState {
        stacks: (0..workers).map(|_| Mutex::new(Vec::new())).collect(),
        remaining: AtomicUsize::new(n),
        splits: AtomicU64::new(0),
        steals: AtomicU64::new(0),
        chunks: AtomicU64::new(0),
    };
    if n > 0 {
        state.stacks[0].lock().expect("splitter stack poisoned").push((0, n));
    }
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for w in 0..workers {
            let state = &state;
            let arena = &arena;
            s.spawn(move || split_worker(w, state, arena, node, costs, kernel, grain));
        }
    });
    let wall_us = t0.elapsed().as_secs_f64() * 1e6;
    let mut outputs = arena.into_outputs();
    SplitRun {
        wall_us,
        splits: state.splits.load(Ordering::Relaxed),
        steals: state.steals.load(Ordering::Relaxed),
        chunks: state.chunks.load(Ordering::Relaxed),
        outputs: outputs.pop().expect("one op"),
    }
}

/// One worker's loop: own stack top → steal oldest → spin-wait until
/// the space is drained.
fn split_worker(
    w: usize,
    state: &SplitState,
    arena: &OutputArena,
    node: &Node,
    costs: &[f64],
    kernel: &(dyn TaskKernel + Sync),
    grain: usize,
) {
    let workers = state.stacks.len();
    loop {
        let popped = state.stacks[w].lock().expect("splitter stack poisoned").pop();
        let job = match popped {
            Some(j) => Some(j),
            None => {
                let mut found = None;
                for off in 1..workers {
                    let mut victim =
                        state.stacks[(w + off) % workers].lock().expect("splitter stack poisoned");
                    if !victim.is_empty() {
                        // Bottom of the stack: the oldest and largest
                        // range — one steal moves half the victim's
                        // remaining subtree.
                        found = Some(victim.remove(0));
                        break;
                    }
                }
                if found.is_some() {
                    state.steals.fetch_add(1, Ordering::Relaxed);
                }
                found
            }
        };
        let Some((start, mut len)) = job else {
            if state.remaining.load(Ordering::Acquire) == 0 {
                return;
            }
            std::thread::yield_now();
            continue;
        };
        // Lazy binary split: halve until at most a grain remains,
        // parking right halves on the own stack for later (or for a
        // thief).
        while len > grain {
            let half = len / 2;
            state.stacks[w]
                .lock()
                .expect("splitter stack poisoned")
                .push((start + half, len - half));
            state.splits.fetch_add(1, Ordering::Relaxed);
            len = half;
        }
        // Ranges partition the index space, so this view is exclusive.
        let view = unsafe { arena.chunk_view(0, start, len) };
        for (slot, task) in view.iter_mut().zip(start..start + len) {
            let ctx = TaskCtx { node, iter: 0, task, cost_hint: costs[task], inputs: &[] };
            *slot = kernel.run_task(&ctx);
        }
        state.chunks.fetch_add(1, Ordering::Relaxed);
        state.remaining.fetch_sub(len, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_delirium::{DelirGraph, NodeKind};
    use orchestra_runtime::{costs_of_node, SpinKernel};

    fn flat_node(tasks: usize) -> DelirGraph {
        let mut g = DelirGraph::new();
        g.add_node("flat", NodeKind::DataParallel { tasks, mean_cost: 2.0, cv: 0.7 }, None);
        g
    }

    /// Reference: run every task sequentially through the same kernel.
    fn sequential(node: &Node, costs: &[f64], kernel: &SpinKernel) -> Vec<f64> {
        costs
            .iter()
            .enumerate()
            .map(|(task, &c)| {
                kernel.run_task(&TaskCtx { node, iter: 0, task, cost_hint: c, inputs: &[] })
            })
            .collect()
    }

    #[test]
    fn splitter_matches_sequential_bitwise() {
        let g = flat_node(777);
        let node = &g.nodes[0];
        let costs = costs_of_node(node, 42);
        let kernel = SpinKernel::with_scale(2.0);
        let expect = sequential(node, &costs, &kernel);
        for workers in [1, 2, 4] {
            let run =
                run_join_split(node, &costs, &kernel, workers, default_grain(costs.len(), workers));
            assert_eq!(run.outputs, expect, "workers={workers}");
            assert_eq!(run.outputs.len(), 777);
            assert!(run.chunks >= 1);
        }
    }

    #[test]
    fn splits_cover_the_space_at_fine_grain() {
        let g = flat_node(64);
        let node = &g.nodes[0];
        let costs = costs_of_node(node, 7);
        let kernel = SpinKernel::with_scale(1.0);
        let run = run_join_split(node, &costs, &kernel, 2, 1);
        // Grain 1 over 64 tasks: a full binary split tree has 63
        // internal nodes, every leaf is its own chunk.
        assert_eq!(run.chunks, 64);
        assert_eq!(run.splits, 63);
    }

    #[test]
    fn empty_space_and_single_task_complete() {
        let g = flat_node(1);
        let node = &g.nodes[0];
        let kernel = SpinKernel::with_scale(1.0);
        let run = run_join_split(node, &[], &kernel, 3, 4);
        assert!(run.outputs.is_empty());
        assert_eq!(run.chunks, 0);
        let costs = costs_of_node(node, 1);
        let run = run_join_split(node, &costs, &kernel, 3, 4);
        assert_eq!(run.outputs.len(), 1);
        assert_eq!(run.chunks, 1);
    }
}
