//! The split transformation driver (§3.3.1).
//!
//! `split` takes a computation `C` (a statement list) and a descriptor
//! `D` of another computation and converts `C` into three computations:
//! the dependent `C_D`, the independent `C_I`, and the merging `C_M`.
//!
//! The transformed output is **order-preserving**: the returned pieces
//! concatenated in order execute exactly like the original `C` (each
//! split Bound loop is expanded in place into `C_I; C_D; C_M`). The
//! independence structure — which pieces may run concurrently with the
//! computation `D` describes — is recorded in the piece classes and is
//! consumed by the Delirium graph builder. This keeps the source-level
//! semantics trivially checkable (the test suites run original and
//! transformed programs and compare stores) while exposing exactly the
//! concurrency the paper's Figures 2–4 expose.

use crate::categorize::{categorize, transitive_flow_down, Categories};
use crate::loop_split::{check_iterations_commute, detect_restriction, split_loop, FreshNames};
use crate::prim::{primitives_of, Prim, PrimKind};
use orchestra_descriptors::{descriptor_of_stmts, loop_iteration_descriptor, Descriptor, SymCtx};
use orchestra_lang::ast::{Decl, Expr, LValue, Program, Stmt};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Options controlling the split heuristics.
#[derive(Debug, Clone)]
pub struct SplitOptions {
    /// Attempt iteration splitting of Bound loops.
    pub enable_loop_split: bool,
    /// Attempt to move ReadLinked computations into the independent set.
    pub move_read_linked: bool,
    /// Maximum operation count of replicated supplier code (the paper's
    /// "below a threshold" test).
    pub replication_threshold: u64,
    /// Minimum profile weight of a ReadLinked computation for the move
    /// to be "expensive enough to justify".
    pub min_move_weight: f64,
    /// Profile weights by primitive name.
    pub profile: HashMap<String, f64>,
}

impl Default for SplitOptions {
    fn default() -> Self {
        SplitOptions {
            enable_loop_split: true,
            move_read_linked: true,
            replication_threshold: 64,
            min_move_weight: 1000.0,
            profile: HashMap::new(),
        }
    }
}

/// Classification of an output piece.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PieceClass {
    /// May execute concurrently with the computation described by `D`.
    Independent,
    /// Must respect the dependence on `D` (or on other pieces).
    Dependent,
    /// Merges replicated results (runs after its I/D siblings).
    Merge,
}

/// One output piece of the split.
#[derive(Debug, Clone)]
pub struct Piece {
    /// Name, derived from the primitive (e.g. `B_I`, `B_D`, `B_M`).
    pub name: String,
    /// Class.
    pub class: PieceClass,
    /// The piece's statements.
    pub stmts: Vec<Stmt>,
    /// Memory summary (recomputed after transformation).
    pub descriptor: Descriptor,
}

/// The result of splitting a computation.
#[derive(Debug, Clone)]
pub struct SplitResult {
    /// Pieces in sequential execution order.
    pub pieces: Vec<Piece>,
    /// Declarations for replicated arrays/accumulators.
    pub new_decls: Vec<Decl>,
    /// The categorization that drove the split.
    pub categories: Categories,
    /// Names of the primitives, indexed like the categories.
    pub prim_names: Vec<String>,
    /// Labels of loops whose iterations were split.
    pub loop_splits: Vec<String>,
    /// Names of ReadLinked primitives moved to the independent set.
    pub moved_read_linked: Vec<String>,
}

impl SplitResult {
    /// The transformed statement list (pieces concatenated in order) —
    /// semantically equivalent to the original computation.
    pub fn stmts(&self) -> Vec<Stmt> {
        self.pieces.iter().flat_map(|p| p.stmts.iter().cloned()).collect()
    }

    /// Statements of all pieces with the given class.
    pub fn stmts_of(&self, class: PieceClass) -> Vec<Stmt> {
        self.pieces
            .iter()
            .filter(|p| p.class == class)
            .flat_map(|p| p.stmts.iter().cloned())
            .collect()
    }

    /// True when the split exposed any concurrency.
    pub fn has_independent_work(&self) -> bool {
        self.pieces.iter().any(|p| p.class == PieceClass::Independent)
    }
}

/// Splits computation `c` (a statement list from `prog`) with respect to
/// descriptor `d`.
pub fn split_computation(
    prog: &Program,
    c: &[Stmt],
    d: &Descriptor,
    opts: &SplitOptions,
) -> SplitResult {
    let ctx = SymCtx::from_program(prog);
    let prims = primitives_of(c, &ctx);
    let categories = categorize(&prims, d);
    let prim_names: Vec<String> = prims.iter().map(|p| p.name.clone()).collect();
    let mut fresh = FreshNames::from_program(prog);

    let mut pieces: Vec<Piece> = Vec::new();
    let mut new_decls: Vec<Decl> = Vec::new();
    let mut loop_splits = Vec::new();
    let mut moved_read_linked = Vec::new();

    // Decide ReadLinked moves up front (they need supplier replication).
    let moves: BTreeMap<usize, Vec<usize>> = if opts.move_read_linked {
        plan_read_linked_moves(&prims, &categories, opts, &ctx)
    } else {
        BTreeMap::new()
    };

    for prim in &prims {
        let id = prim.id;
        if categories.free.contains(&id) {
            pieces.push(piece_from_prim(prim, PieceClass::Independent, &ctx));
            continue;
        }
        if categories.bound.contains(&id) {
            if opts.enable_loop_split && prim.kind == PrimKind::Loop {
                if let Some(done) =
                    try_loop_split(prog, prim, d, &ctx, &mut fresh, &mut pieces, &mut new_decls)
                {
                    loop_splits.push(done);
                    continue;
                }
            }
            pieces.push(piece_from_prim(prim, PieceClass::Dependent, &ctx));
            continue;
        }
        // Linked.
        if let Some(suppliers) = moves.get(&id) {
            // Replicate the suppliers with renamed outputs, placing the
            // copies (plus the rewritten ReadLinked code) in an
            // independent piece at this position.
            let (stmts, decls) = replicate_suppliers(prog, &prims, prim, suppliers, &mut fresh);
            if let Some((stmts, decls)) = stmts.map(|s| (s, decls)) {
                let descriptor = descriptor_of_stmts(&stmts, &ctx);
                pieces.push(Piece {
                    name: format!("{}_I", prim.name),
                    class: PieceClass::Independent,
                    stmts,
                    descriptor,
                });
                new_decls.extend(decls);
                moved_read_linked.push(prim.name.clone());
                continue;
            }
        }
        pieces.push(piece_from_prim(prim, PieceClass::Dependent, &ctx));
    }

    SplitResult { pieces, new_decls, categories, prim_names, loop_splits, moved_read_linked }
}

fn piece_from_prim(prim: &Prim, class: PieceClass, _ctx: &SymCtx) -> Piece {
    Piece {
        name: prim.name.clone(),
        class,
        stmts: prim.stmts.clone(),
        descriptor: prim.descriptor.clone(),
    }
}

/// Attempts the iteration split of one Bound loop; on success pushes the
/// three pieces and returns the loop's name.
fn try_loop_split(
    prog: &Program,
    prim: &Prim,
    d: &Descriptor,
    ctx: &SymCtx,
    fresh: &mut FreshNames,
    pieces: &mut Vec<Piece>,
    new_decls: &mut Vec<Decl>,
) -> Option<String> {
    let loop_stmt = &prim.stmts[0];
    let iter = loop_iteration_descriptor(loop_stmt, ctx)?;
    if iter.ranges.is_empty() {
        return None;
    }
    let Stmt::Do { body, .. } = loop_stmt else { return None };
    let reductions = check_iterations_commute(&iter, body)?;
    let privatized = crate::loop_split::privatized_blocks(body, &reductions);
    let restriction = detect_restriction(&iter, d, &privatized)?;
    let split = split_loop(prog, loop_stmt, &restriction, &reductions, &iter, fresh)?;
    let name = prim.name.clone();
    let ind_d = descriptor_of_stmts(&split.independent, ctx);
    let dep_d = descriptor_of_stmts(&split.dependent, ctx);
    let mer_d = descriptor_of_stmts(&split.merge, ctx);
    pieces.push(Piece {
        name: format!("{name}_I"),
        class: PieceClass::Independent,
        stmts: split.independent,
        descriptor: ind_d,
    });
    pieces.push(Piece {
        name: format!("{name}_D"),
        class: PieceClass::Dependent,
        stmts: split.dependent,
        descriptor: dep_d,
    });
    pieces.push(Piece {
        name: format!("{name}_M"),
        class: PieceClass::Merge,
        stmts: split.merge,
        descriptor: mer_d,
    });
    new_decls.extend(split.new_decls);
    Some(name)
}

/// Plans which ReadLinked primitives to move, per the paper's heuristic:
/// the replicated supplier code's operation count must be calculable and
/// below the threshold, and the computation must be profiled expensive
/// enough. Returns `prim id → supplier ids` for approved moves.
fn plan_read_linked_moves(
    prims: &[Prim],
    cats: &Categories,
    opts: &SplitOptions,
    ctx: &SymCtx,
) -> BTreeMap<usize, Vec<usize>> {
    let mut out = BTreeMap::new();
    for &r in &cats.read_linked {
        let weight = opts.profile.get(&prims[r].name).copied().unwrap_or(0.0);
        if weight < opts.min_move_weight {
            continue;
        }
        // Suppliers: GenerateLinked members from which r transitively
        // flow-depends.
        let mut candidates = cats.generate_linked.clone();
        let suppliers = transitive_flow_down(&mut candidates, &[r], prims);
        let cost: Option<u64> =
            suppliers.iter().map(|&s| static_op_count(&prims[s].stmts, ctx)).sum();
        match cost {
            Some(c) if c <= opts.replication_threshold => {
                out.insert(r, suppliers);
            }
            _ => {}
        }
    }
    out
}

/// Statically counts the arithmetic operations a statement list
/// executes; `None` when a loop trip count is not a compile-time
/// constant ("the number of … computations can be calculated"). Known
/// scalar values from `ctx` (e.g. declaration initializers) fold into
/// the trip counts.
pub fn static_op_count(stmts: &[Stmt], ctx: &SymCtx) -> Option<u64> {
    fn expr_ops(e: &Expr) -> u64 {
        match e {
            Expr::IntLit(_) | Expr::FloatLit(_) | Expr::Var(_) => 0,
            Expr::Index(_, idx) => idx.iter().map(expr_ops).sum(),
            Expr::Bin(_, l, r) => 1 + expr_ops(l) + expr_ops(r),
            Expr::Un(_, i) => 1 + expr_ops(i),
            Expr::Call(_, args) => 1 + args.iter().map(expr_ops).sum::<u64>(),
        }
    }
    let mut total: u64 = 0;
    for s in stmts {
        total += match s {
            Stmt::Assign { target, value } => {
                let idx_ops: u64 = match target {
                    LValue::Index(_, idx) => idx.iter().map(expr_ops).sum(),
                    LValue::Var(_) => 0,
                };
                idx_ops + expr_ops(value)
            }
            Stmt::If { cond, then_body, else_body } => {
                // Conservative: both arms counted.
                expr_ops(cond) + static_op_count(then_body, ctx)? + static_op_count(else_body, ctx)?
            }
            Stmt::Do { ranges, mask, body, .. } => {
                let mut trips: u64 = 0;
                for r in ranges {
                    let lo = ctx.lin(&r.lo)?.as_constant()?;
                    let hi = ctx.lin(&r.hi)?.as_constant()?;
                    let step = match &r.step {
                        Some(e) => ctx.lin(e)?.as_constant()?,
                        None => 1,
                    };
                    if step == 0 {
                        return None;
                    }
                    let count = if step > 0 {
                        ((hi - lo).max(-1) / step + 1).max(0)
                    } else {
                        ((lo - hi).max(-1) / (-step) + 1).max(0)
                    };
                    trips += count as u64;
                }
                let per_iter =
                    static_op_count(body, ctx)? + mask.as_ref().map(expr_ops).unwrap_or(0) + 1;
                trips * per_iter
            }
            Stmt::Call { .. } => return None,
        };
    }
    Some(total)
}

/// Replicates supplier primitives with renamed outputs and rewrites the
/// moved ReadLinked primitive to read the copies.
///
/// Returns `(Some(stmts), decls)` on success.
fn replicate_suppliers(
    prog: &Program,
    prims: &[Prim],
    moved: &Prim,
    suppliers: &[usize],
    fresh: &mut FreshNames,
) -> (Option<Vec<Stmt>>, Vec<Decl>) {
    let mut rename: BTreeMap<String, String> = BTreeMap::new();
    let mut decls = Vec::new();
    let mut stmts = Vec::new();
    // Process suppliers in program order so chained copies read the
    // right replicas.
    let mut ordered: Vec<usize> = suppliers.to_vec();
    ordered.sort_unstable();
    for &sid in &ordered {
        let sup = &prims[sid];
        // Rename everything the supplier writes.
        let mut written = BTreeSet::new();
        let mut scalars = BTreeSet::new();
        for s in &sup.stmts {
            s.array_writes(&mut written);
            collect_assigned_scalars(s, &mut scalars);
        }
        for name in written.iter().chain(&scalars) {
            let Some(decl) = prog.decl(name) else { return (None, Vec::new()) };
            let copy = fresh.fresh(name, "__r");
            let mut d2 = decl.clone();
            d2.name = copy.clone();
            decls.push(d2);
            rename.insert(name.clone(), copy);
        }
        for s in &sup.stmts {
            stmts.push(rename_reads_and_writes(s, &rename));
        }
    }
    for s in &moved.stmts {
        stmts.push(rename_reads_and_writes(s, &rename));
    }
    (Some(stmts), decls)
}

fn collect_assigned_scalars(s: &Stmt, out: &mut BTreeSet<String>) {
    match s {
        Stmt::Assign { target: LValue::Var(v), .. } => {
            out.insert(v.clone());
        }
        Stmt::Assign { .. } | Stmt::Call { .. } => {}
        Stmt::Do { body, .. } => {
            for b in body {
                collect_assigned_scalars(b, out);
            }
        }
        Stmt::If { then_body, else_body, .. } => {
            for b in then_body.iter().chain(else_body) {
                collect_assigned_scalars(b, out);
            }
        }
    }
}

/// Renames both reads and writes of the mapped names (full α-rename,
/// appropriate because the replicas start fresh).
fn rename_reads_and_writes(s: &Stmt, map: &BTreeMap<String, String>) -> Stmt {
    fn rex(e: &Expr, map: &BTreeMap<String, String>) -> Expr {
        match e {
            Expr::IntLit(_) | Expr::FloatLit(_) => e.clone(),
            Expr::Var(v) => Expr::Var(map.get(v).cloned().unwrap_or_else(|| v.clone())),
            Expr::Index(a, idx) => Expr::Index(
                map.get(a).cloned().unwrap_or_else(|| a.clone()),
                idx.iter().map(|i| rex(i, map)).collect(),
            ),
            Expr::Bin(op, l, r) => Expr::bin(*op, rex(l, map), rex(r, map)),
            Expr::Un(op, i) => Expr::Un(*op, Box::new(rex(i, map))),
            Expr::Call(f, args) => {
                Expr::Call(f.clone(), args.iter().map(|a| rex(a, map)).collect())
            }
        }
    }
    match s {
        Stmt::Assign { target, value } => Stmt::Assign {
            target: match target {
                LValue::Var(v) => LValue::Var(map.get(v).cloned().unwrap_or_else(|| v.clone())),
                LValue::Index(a, idx) => LValue::Index(
                    map.get(a).cloned().unwrap_or_else(|| a.clone()),
                    idx.iter().map(|i| rex(i, map)).collect(),
                ),
            },
            value: rex(value, map),
        },
        Stmt::Do { label, var, ranges, mask, body } => Stmt::Do {
            label: label.clone(),
            var: var.clone(),
            ranges: ranges
                .iter()
                .map(|r| orchestra_lang::ast::Range {
                    lo: rex(&r.lo, map),
                    hi: rex(&r.hi, map),
                    step: r.step.as_ref().map(|e| rex(e, map)),
                })
                .collect(),
            mask: mask.as_ref().map(|m| rex(m, map)),
            body: body.iter().map(|b| rename_reads_and_writes(b, map)).collect(),
        },
        Stmt::If { cond, then_body, else_body } => Stmt::If {
            cond: rex(cond, map),
            then_body: then_body.iter().map(|b| rename_reads_and_writes(b, map)).collect(),
            else_body: else_body.iter().map(|b| rename_reads_and_writes(b, map)).collect(),
        },
        Stmt::Call { name, args } => {
            Stmt::Call { name: name.clone(), args: args.iter().map(|a| rex(a, map)).collect() }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_descriptors::descriptor_of_stmt;
    use orchestra_lang::interp::{Env, Interp, Value};
    use orchestra_lang::parse_program;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Runs a program and its transformed version on identical random
    /// inputs; the final stores (projected to the original variables)
    /// must be equal.
    fn assert_equivalent(orig: &Program, transformed: &Program, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut inputs = Env::new();
        // Randomize every declared array of the original program.
        let probe = Interp::new().run(orig, &Env::new()).unwrap();
        for (name, v) in &probe {
            match v {
                Value::IntArray { dims, data } => {
                    inputs.insert(
                        name.clone(),
                        Value::IntArray {
                            dims: dims.clone(),
                            data: data.iter().map(|_| rng.gen_range(0..3)).collect(),
                        },
                    );
                }
                Value::FloatArray { dims, data } => {
                    inputs.insert(
                        name.clone(),
                        Value::FloatArray {
                            dims: dims.clone(),
                            data: data
                                .iter()
                                .map(|_| (rng.gen_range(-100..100) as f64) * 0.25)
                                .collect(),
                        },
                    );
                }
                _ => {}
            }
        }
        let e1 = Interp::new().run(orig, &inputs).unwrap();
        let e2 = Interp::new().run(transformed, &inputs).unwrap();
        // Induction variables are loop machinery; their exit values are
        // not preserved by the transformation (nor by the paper's).
        let mut ivs = std::collections::BTreeSet::new();
        fn collect_ivs(stmts: &[Stmt], out: &mut std::collections::BTreeSet<String>) {
            for s in stmts {
                match s {
                    Stmt::Do { var, body, .. } => {
                        out.insert(var.clone());
                        collect_ivs(body, out);
                    }
                    Stmt::If { then_body, else_body, .. } => {
                        collect_ivs(then_body, out);
                        collect_ivs(else_body, out);
                    }
                    _ => {}
                }
            }
        }
        collect_ivs(&orig.body, &mut ivs);
        collect_ivs(&transformed.body, &mut ivs);
        for (name, v) in &e1 {
            if ivs.contains(name) {
                continue;
            }
            let got = e2.get(name).unwrap_or_else(|| panic!("missing {name}"));
            match (v, got) {
                (Value::Float(a), Value::Float(b)) => {
                    assert!((a - b).abs() < 1e-9, "{name}: {a} vs {b}")
                }
                (Value::FloatArray { data: a, .. }, Value::FloatArray { data: b, .. }) => {
                    for (x, y) in a.iter().zip(b) {
                        assert!((x - y).abs() < 1e-9, "{name}: {x} vs {y}");
                    }
                }
                _ => assert_eq!(v, got, "variable {name}"),
            }
        }
    }

    /// Builds the transformed program: original decls + new decls, with
    /// the body = prefix ++ split(C) ++ suffix.
    fn transformed_program(
        prog: &Program,
        before: &[Stmt],
        result: &SplitResult,
        after: &[Stmt],
    ) -> Program {
        let mut p2 = prog.clone();
        p2.decls.extend(result.new_decls.iter().cloned());
        p2.body = before.to_vec();
        p2.body.extend(result.stmts());
        p2.body.extend(after.to_vec());
        p2
    }

    #[test]
    fn figure1_split_of_b_is_semantics_preserving() {
        let p = orchestra_lang::builder::figure1_program(8);
        let ctx = SymCtx::from_program(&p);
        let da = descriptor_of_stmt(&p.body[0], &ctx);
        let result = split_computation(&p, &p.body[1..], &da, &SplitOptions::default());
        assert_eq!(result.loop_splits, vec!["B"]);
        assert!(result.has_independent_work());
        let p2 = transformed_program(&p, &p.body[..1], &result, &[]);
        for seed in 0..5 {
            assert_equivalent(&p, &p2, seed);
        }
    }

    #[test]
    fn figure1_piece_names_follow_paper() {
        let p = orchestra_lang::builder::figure1_program(6);
        let ctx = SymCtx::from_program(&p);
        let da = descriptor_of_stmt(&p.body[0], &ctx);
        let result = split_computation(&p, &p.body[1..], &da, &SplitOptions::default());
        let names: Vec<&str> = result.pieces.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, vec!["B_I", "B_D", "B_M"]);
        let classes: Vec<PieceClass> = result.pieces.iter().map(|p| p.class).collect();
        assert_eq!(
            classes,
            vec![PieceClass::Independent, PieceClass::Dependent, PieceClass::Merge]
        );
    }

    #[test]
    fn figure4_split_is_semantics_preserving() {
        let p = orchestra_lang::builder::figure4_program(7, 4);
        let ctx = SymCtx::from_program(&p);
        let dg = descriptor_of_stmt(&p.body[0], &ctx);
        let result = split_computation(&p, &p.body[1..], &dg, &SplitOptions::default());
        assert_eq!(result.loop_splits, vec!["H"]);
        let p2 = transformed_program(&p, &p.body[..1], &result, &[]);
        for seed in 0..5 {
            assert_equivalent(&p, &p2, seed);
        }
    }

    #[test]
    fn independent_piece_really_independent() {
        let p = orchestra_lang::builder::figure1_program(6);
        let ctx = SymCtx::from_program(&p);
        let da = descriptor_of_stmt(&p.body[0], &ctx);
        let result = split_computation(&p, &p.body[1..], &da, &SplitOptions::default());
        let ind = &result.pieces[0];
        assert_eq!(ind.class, PieceClass::Independent);
        assert!(
            !ind.descriptor.interferes(&da),
            "B_I must not interfere with A:\n{}",
            ind.descriptor
        );
    }

    #[test]
    fn unsplittable_bound_loop_stays_dependent() {
        let p = parse_program(
            r#"
program p
  integer n = 5
  float x[1..n], y[1..n]
  W: do i = 1, n { x[i] = 1.0 }
  L: do i = 1, n { y[i] = x[i] }
end
"#,
        )
        .unwrap();
        let ctx = SymCtx::from_program(&p);
        let dw = descriptor_of_stmt(&p.body[0], &ctx);
        let result = split_computation(&p, &p.body[1..], &dw, &SplitOptions::default());
        assert!(result.loop_splits.is_empty());
        assert_eq!(result.pieces.len(), 1);
        assert_eq!(result.pieces[0].class, PieceClass::Dependent);
    }

    #[test]
    fn free_computation_becomes_independent_piece() {
        let p = parse_program(
            r#"
program p
  integer n = 5
  float x[1..n], z[1..n]
  W: do i = 1, n { x[i] = 1.0 }
  F: do i = 1, n { z[i] = 2.0 }
end
"#,
        )
        .unwrap();
        let ctx = SymCtx::from_program(&p);
        let dw = descriptor_of_stmt(&p.body[0], &ctx);
        let result = split_computation(&p, &p.body[1..], &dw, &SplitOptions::default());
        assert_eq!(result.pieces[0].class, PieceClass::Independent);
        assert_eq!(result.pieces[0].name, "F");
    }

    #[test]
    fn read_linked_move_replicates_supplier() {
        // W writes x; B reads x (Bound); A generates y for B; C reads y
        // (ReadLinked). With a high profile weight on C, it moves.
        let src = r#"
program p
  integer n = 4
  float x[1..n], y[1..n], bo[1..n], z[1..n], sum
  W: do i = 1, n { x[i] = 1.0 }
  A: do i = 1, n { y[i] = 2.0 }
  B: do i = 1, n { bo[i] = x[i] + y[i] }
  C: do i = 1, n { z[i] = y[i] * 3.0 }
end
"#;
        let p = parse_program(src).unwrap();
        let ctx = SymCtx::from_program(&p);
        let dw = descriptor_of_stmt(&p.body[0], &ctx);
        let mut opts = SplitOptions::default();
        opts.profile.insert("C".into(), 1e6);
        let result = split_computation(&p, &p.body[1..], &dw, &opts);
        assert_eq!(result.moved_read_linked, vec!["C"]);
        // The moved piece contains the replicated A plus rewritten C.
        let moved = result.pieces.iter().find(|pc| pc.name == "C_I").unwrap();
        assert_eq!(moved.class, PieceClass::Independent);
        assert_eq!(moved.stmts.len(), 2, "copy of A + rewritten C");
        assert!(result.new_decls.iter().any(|d| d.name == "y__r"));
        // Semantics preserved.
        let p2 = transformed_program(&p, &p.body[..1], &result, &[]);
        for seed in 0..3 {
            assert_equivalent(&p, &p2, seed);
        }
    }

    #[test]
    fn read_linked_not_moved_when_cheap_profile() {
        let src = r#"
program p
  integer n = 4
  float x[1..n], y[1..n], bo[1..n], z[1..n]
  W: do i = 1, n { x[i] = 1.0 }
  A: do i = 1, n { y[i] = 2.0 }
  B: do i = 1, n { bo[i] = x[i] + y[i] }
  C: do i = 1, n { z[i] = y[i] * 3.0 }
end
"#;
        let p = parse_program(src).unwrap();
        let ctx = SymCtx::from_program(&p);
        let dw = descriptor_of_stmt(&p.body[0], &ctx);
        let result = split_computation(&p, &p.body[1..], &dw, &SplitOptions::default());
        assert!(result.moved_read_linked.is_empty(), "no profile weight → no move");
    }

    #[test]
    fn read_linked_not_moved_when_supplier_too_big() {
        let src = r#"
program p
  integer n = 100
  float x[1..n], y[1..n], bo[1..n], z[1..n]
  W: do i = 1, n { x[i] = 1.0 }
  A: do i = 1, n { y[i] = 2.0 }
  B: do i = 1, n { bo[i] = x[i] + y[i] }
  C: do i = 1, n { z[i] = y[i] * 3.0 }
end
"#;
        let p = parse_program(src).unwrap();
        let ctx = SymCtx::from_program(&p);
        let dw = descriptor_of_stmt(&p.body[0], &ctx);
        let mut opts = SplitOptions::default();
        opts.profile.insert("C".into(), 1e6);
        opts.replication_threshold = 50; // A costs ~200 ops at n=100
        let result = split_computation(&p, &p.body[1..], &dw, &opts);
        assert!(result.moved_read_linked.is_empty());
    }

    #[test]
    fn static_op_count_basics() {
        let p = parse_program(
            "program p\n integer n = 10\n float x[1..n]\n do i = 1, n { x[i] = x[i] + 1.0 }\nend",
        )
        .unwrap();
        // 10 iterations × (1 add + 1 loop overhead op) = 20.
        let ctx = SymCtx::from_program(&p);
        assert_eq!(static_op_count(&p.body, &ctx), Some(20));
        let q = parse_program(
            "program p\n integer n\n float x[1..100]\n do i = 1, n { x[i] = 1.0 }\nend",
        )
        .unwrap();
        let qctx = SymCtx::from_program(&q);
        assert_eq!(static_op_count(&q.body, &qctx), None, "symbolic trip count");
    }

    #[test]
    fn split_against_empty_descriptor_yields_all_free() {
        let p = orchestra_lang::builder::figure1_program(4);
        let result =
            split_computation(&p, &p.body[1..], &Descriptor::new(), &SplitOptions::default());
        assert!(result.pieces.iter().all(|pc| pc.class == PieceClass::Independent));
    }
}
