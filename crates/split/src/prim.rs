//! Primitive computations (§3.3.1).
//!
//! "The split algorithm begins by subdividing C into primitive
//! computations … the blocks of code that are managed by the
//! transformation; the choice of primitive computation determines the
//! granularity of the split. We have chosen to consider basic blocks,
//! function calls, and loops as primitive computations."

use orchestra_descriptors::{descriptor_of_stmt, descriptor_of_stmts, Descriptor, SymCtx};
use orchestra_lang::ast::Stmt;
use std::fmt;

/// The kind of a primitive computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrimKind {
    /// A `do` loop (possibly nested inside).
    Loop,
    /// A procedure call.
    Call,
    /// A maximal run of straight-line assignments and conditionals.
    Block,
}

/// One primitive computation: a slice of the original statement list
/// plus its symbolic data descriptor.
#[derive(Debug, Clone)]
pub struct Prim {
    /// Position among the computation's primitives (program order).
    pub id: usize,
    /// Display name: the loop label when present, else `kind#id`.
    pub name: String,
    /// Kind.
    pub kind: PrimKind,
    /// The statements making up this primitive.
    pub stmts: Vec<Stmt>,
    /// Memory summary of the statements.
    pub descriptor: Descriptor,
}

impl fmt::Display for Prim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({:?})", self.name, self.kind)
    }
}

/// Subdivides a statement list into primitive computations, computing
/// each one's descriptor with the symbolic context as of its position
/// (scalar kills accumulate left to right, exactly as in
/// [`descriptor_of_stmts`]).
pub fn primitives_of(stmts: &[Stmt], ctx: &SymCtx) -> Vec<Prim> {
    let mut prims: Vec<Prim> = Vec::new();
    let mut running = ctx.clone();
    let mut block_run: Vec<Stmt> = Vec::new();

    let flush = |run: &mut Vec<Stmt>, prims: &mut Vec<Prim>, running: &SymCtx| {
        if run.is_empty() {
            return;
        }
        let stmts = std::mem::take(run);
        let descriptor = descriptor_of_stmts(&stmts, running);
        let id = prims.len();
        prims.push(Prim {
            id,
            name: format!("block#{id}"),
            kind: PrimKind::Block,
            stmts,
            descriptor,
        });
    };

    for s in stmts {
        match s {
            Stmt::Do { label, .. } => {
                flush(&mut block_run, &mut prims, &running);
                let descriptor = descriptor_of_stmt(s, &running);
                let id = prims.len();
                let name = label.clone().unwrap_or_else(|| format!("loop#{id}"));
                prims.push(Prim {
                    id,
                    name,
                    kind: PrimKind::Loop,
                    stmts: vec![s.clone()],
                    descriptor,
                });
                advance_ctx(s, &mut running);
            }
            Stmt::Call { name, .. } => {
                flush(&mut block_run, &mut prims, &running);
                let descriptor = descriptor_of_stmt(s, &running);
                let id = prims.len();
                prims.push(Prim {
                    id,
                    name: format!("call:{name}#{id}"),
                    kind: PrimKind::Call,
                    stmts: vec![s.clone()],
                    descriptor,
                });
            }
            Stmt::Assign { .. } | Stmt::If { .. } => {
                block_run.push(s.clone());
                advance_ctx(s, &mut running);
            }
        }
    }
    flush(&mut block_run, &mut prims, &running);

    // Re-number after flushing order settles (flush during iteration
    // already numbered consistently, but the final flush may interleave).
    for (i, p) in prims.iter_mut().enumerate() {
        p.id = i;
    }
    prims
}

/// Applies a statement's scalar kills to the running context, mirroring
/// `descriptor_of_stmts`' conservative bookkeeping.
fn advance_ctx(s: &Stmt, ctx: &mut SymCtx) {
    let mut writes = std::collections::BTreeSet::new();
    s.scalar_writes(&mut writes);
    for w in writes {
        ctx.values.remove(&w);
        ctx.killed.insert(w);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_lang::parse_program;

    fn prims_of(src: &str) -> Vec<Prim> {
        let p = parse_program(src).unwrap();
        let ctx = SymCtx::from_program(&p);
        primitives_of(&p.body, &ctx)
    }

    #[test]
    fn figure4_has_expected_primitives() {
        // G is a loop + a basic block; H is a loop + a block.
        let ps = prims_of(
            r#"
program p
  integer n = 4, a = 2
  float x[1..n, 1..n], y[1..n], sum, sum0
  G: do i = 1, n {
    x[a, i] = x[a, i] + y[i]
  }
  sum0 = 0.0
  H: do i = 1, n {
    do j = 1, n {
      sum = sum + x[i, j]
    }
  }
  sum = sum + sum0
end
"#,
        );
        assert_eq!(ps.len(), 4);
        assert_eq!(ps[0].kind, PrimKind::Loop);
        assert_eq!(ps[0].name, "G");
        assert_eq!(ps[1].kind, PrimKind::Block);
        assert_eq!(ps[2].name, "H");
        assert_eq!(ps[3].kind, PrimKind::Block);
    }

    #[test]
    fn consecutive_assigns_form_one_block() {
        let ps = prims_of("program p\n integer a, b, c\n a = 1\n b = 2\n c = 3\nend");
        assert_eq!(ps.len(), 1);
        assert_eq!(ps[0].stmts.len(), 3);
    }

    #[test]
    fn call_is_its_own_primitive() {
        let ps = prims_of(
            "program p\n integer n = 2, a\n float x[1..n]\n proc z(float x[1..n]) { x[1] = 0.0 }\n a = 1\n call z(x)\n a = 2\nend",
        );
        assert_eq!(ps.len(), 3);
        assert_eq!(ps[1].kind, PrimKind::Call);
    }

    #[test]
    fn descriptors_attached() {
        let ps =
            prims_of("program p\n integer n = 3\n float x[1..n]\n do i = 1, n { x[i] = 1.0 }\nend");
        assert_eq!(ps[0].descriptor.writes.len(), 1);
        assert_eq!(ps[0].descriptor.writes[0].block, "x");
    }

    #[test]
    fn later_prims_see_kills() {
        // k is read from memory before the second loop; its use as an
        // index must widen there.
        let ps = prims_of(
            "program p\n integer n = 4, k\n integer m[1..n]\n float x[1..n], y[1..n]\n do i = 1, n { x[i] = 1.0 }\n k = m[1]\n y[k] = 2.0\nend",
        );
        let block = ps.last().unwrap();
        let w = block.descriptor.writes.iter().find(|t| t.block == "y").unwrap();
        assert_eq!(w.pattern, None, "k is killed; write widens to whole array");
    }
}
