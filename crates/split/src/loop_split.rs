//! Splitting the iterations of a Bound loop (§3.3.1).
//!
//! "It is often possible to split the iterations of a loop in Bound into
//! two sets, one of which interferes with D and one of which does not.
//! It is legal to split iterations when we have nests of loops that are
//! either independent or computing a reduction; they can be split by
//! placing a conditional on the induction variable."
//!
//! Two restriction shapes cover the paper's examples:
//!
//! * [`Restriction::ExcludePoint`] — the conflict is confined to one
//!   induction value (Figure 4: row `a`; Figure 3: column `col-1`);
//!   the independent piece iterates the discontinuous range
//!   `lo..e-1 and e+1..hi`.
//! * [`Restriction::MaskCond`] — the conflict occurs exactly when a mask
//!   element test holds (Figures 1–2: `mask[i] <> 0`); the pieces get
//!   complementary `where` clauses.
//!
//! Replicated outputs (arrays and reduction scalars) and the merging
//! computation `C_M` are generated exactly as in Figures 2–4.

use orchestra_analysis::symbolic::{SymExpr, SymRange};
use orchestra_descriptors::{Descriptor, LoopIteration, MaskRel, SymCtx, Triple};
use orchestra_lang::ast::{BinOp, Decl, Expr, LValue, Program, Range, Stmt};
use std::collections::{BTreeMap, BTreeSet};

/// How the dependent iterations of a loop are characterized.
#[derive(Debug, Clone, PartialEq)]
pub enum Restriction {
    /// Iterations with `var = e` are dependent; all others independent.
    ExcludePoint(SymExpr),
    /// Iterations hitting any of several pairwise-distinct points are
    /// dependent (deeper pipelining: splitting against the union of
    /// iterations `i−1 … i−k` yields one excluded point per depth).
    ExcludePoints(Vec<SymExpr>),
    /// Iterations with `array[var] REL` are dependent; the complement is
    /// independent.
    MaskCond {
        /// Mask array.
        array: String,
        /// Relation selecting the *dependent* iterations.
        rel: MaskRel,
    },
}

/// A recognized reduction accumulator in a loop body.
#[derive(Debug, Clone, PartialEq)]
pub struct ReductionVar {
    /// Scalar name.
    pub name: String,
    /// The associative operation (`Add` or `Mul`).
    pub op: BinOp,
}

impl ReductionVar {
    /// The identity element of the reduction.
    pub fn identity(&self) -> Expr {
        match self.op {
            BinOp::Add => Expr::FloatLit(0.0),
            BinOp::Mul => Expr::FloatLit(1.0),
            _ => unreachable!("only Add/Mul reductions are recognized"),
        }
    }
}

/// Fresh-name generation avoiding a taken set.
#[derive(Debug, Clone, Default)]
pub struct FreshNames {
    taken: BTreeSet<String>,
}

impl FreshNames {
    /// Seeds the taken set from a program's declarations.
    pub fn from_program(prog: &Program) -> Self {
        let mut taken: BTreeSet<String> = prog.decls.iter().map(|d| d.name.clone()).collect();
        taken.extend(prog.procs.iter().map(|p| p.name.clone()));
        FreshNames { taken }
    }

    /// Returns `base` + `suffix`, disambiguated if already taken.
    pub fn fresh(&mut self, base: &str, suffix: &str) -> String {
        let mut candidate = format!("{base}{suffix}");
        let mut k = 2;
        while self.taken.contains(&candidate) {
            candidate = format!("{base}{suffix}{k}");
            k += 1;
        }
        self.taken.insert(candidate.clone());
        candidate
    }
}

/// Converts a linear symbolic expression back to MF syntax.
pub fn symexpr_to_ast(e: &SymExpr) -> Expr {
    let mut acc: Option<Expr> = None;
    for (name, coeff) in e.terms() {
        let term = match coeff.abs() {
            1 => Expr::var(name),
            c => Expr::bin(BinOp::Mul, Expr::IntLit(c), Expr::var(name)),
        };
        acc = Some(match acc {
            None => {
                if coeff < 0 {
                    Expr::Un(orchestra_lang::ast::UnOp::Neg, Box::new(term))
                } else {
                    term
                }
            }
            Some(prev) => {
                let op = if coeff < 0 { BinOp::Sub } else { BinOp::Add };
                Expr::bin(op, prev, term)
            }
        });
    }
    let k = e.constant_part();
    match acc {
        None => Expr::IntLit(k),
        Some(prev) if k > 0 => Expr::bin(BinOp::Add, prev, Expr::IntLit(k)),
        Some(prev) if k < 0 => Expr::bin(BinOp::Sub, prev, Expr::IntLit(-k)),
        Some(prev) => prev,
    }
}

/// Finds a restriction on the induction variable that isolates the
/// interference between one loop iteration and descriptor `d`.
///
/// `privatized` names the blocks that iteration splitting will
/// *replicate* (the body's written arrays and reduction accumulators);
/// their output and anti dependences against `d` vanish under renaming,
/// so triples on those blocks are excluded from the analysis. This is
/// what lets Figure 3's `A_I` write the replicated `result1` without the
/// scratch vector's self-dependence blocking the pipeline.
///
/// Every remaining overlapping triple pair must be explained by the same
/// restriction; the result is then verified by re-promoting the
/// restricted descriptor and checking non-interference, so a loose match
/// here can never produce an unsound split.
pub fn detect_restriction(
    iter: &LoopIteration,
    d: &Descriptor,
    privatized: &BTreeSet<String>,
) -> Option<Restriction> {
    let mut stripped = iter.descriptor.clone();
    for b in privatized {
        stripped = stripped.without_block(b);
    }
    let stripped_iter =
        LoopIteration { var: iter.var.clone(), ranges: iter.ranges.clone(), descriptor: stripped };
    let pairs: Vec<(&Triple, &Triple)> = interference_pairs(&stripped_iter.descriptor, d);
    if pairs.is_empty() {
        return None;
    }
    // Collect explanations: either one mask condition shared by every
    // pair, or a set of excluded points (one per conflicting iteration
    // of the reference computation — deeper pipelining yields several).
    let mut mask_cond: Option<Restriction> = None;
    let mut points: Vec<SymExpr> = Vec::new();
    for (t, u) in pairs {
        match explain_pair(t, u, &iter.var)? {
            m @ Restriction::MaskCond { .. } => match &mask_cond {
                None if points.is_empty() => mask_cond = Some(m),
                Some(c) if *c == m => {}
                _ => return None, // mixed or conflicting explanations
            },
            Restriction::ExcludePoint(e) => {
                if mask_cond.is_some() {
                    return None;
                }
                if !points.iter().any(|p| p.eq_expr(&e) == Some(true)) {
                    points.push(e);
                }
            }
            Restriction::ExcludePoints(_) => unreachable!("explain_pair yields single points"),
        }
    }
    let candidate = if let Some(m) = mask_cond {
        m
    } else if points.len() == 1 {
        Restriction::ExcludePoint(points.pop().expect("len checked"))
    } else {
        // Multi-point exclusion requires pairwise provably-distinct
        // points (otherwise the dependent piece could run an iteration
        // twice).
        for i in 0..points.len() {
            for j in i + 1..points.len() {
                if points[i].eq_expr(&points[j]) != Some(false) {
                    return None;
                }
            }
        }
        Restriction::ExcludePoints(points)
    };
    if verify_restriction(&stripped_iter, d, &candidate) {
        Some(candidate)
    } else {
        None
    }
}

/// The set of blocks privatized by splitting this loop body: its written
/// arrays plus the given reduction accumulators.
pub fn privatized_blocks(body: &[Stmt], reductions: &[ReductionVar]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for s in body {
        s.array_writes(&mut out);
    }
    out.extend(reductions.iter().map(|r| r.name.clone()));
    out
}

/// The (write/write, write/read, read/write) triple pairs that overlap.
fn interference_pairs<'a>(a: &'a Descriptor, b: &'a Descriptor) -> Vec<(&'a Triple, &'a Triple)> {
    let mut out = Vec::new();
    for t in &a.writes {
        for u in b.writes.iter().chain(&b.reads) {
            if t.overlaps(u) {
                out.push((t, u));
            }
        }
    }
    for t in &a.reads {
        for u in &b.writes {
            if t.overlaps(u) {
                out.push((t, u));
            }
        }
    }
    out
}

/// Explains one overlapping pair as a restriction on `var`, if possible.
fn explain_pair(t: &Triple, u: &Triple, var: &str) -> Option<Restriction> {
    let (p_t, p_u) = (t.pattern.as_ref()?, u.pattern.as_ref()?);
    if p_t.len() != p_u.len() {
        return None;
    }
    for (dt, du) in p_t.iter().zip(p_u) {
        // The iteration side must index this dimension by exactly `var`.
        if !(dt.range.is_point() && dt.range.start.as_name() == Some(var)) {
            continue;
        }
        if let Some((arr, rel)) = &du.mask {
            return Some(Restriction::MaskCond { array: arr.clone(), rel: *rel });
        }
        if du.range.is_point() && !du.range.start.mentions(var) {
            return Some(Restriction::ExcludePoint(du.range.start.clone()));
        }
    }
    None
}

/// Re-promotes the iteration descriptor over the *independent* side of
/// the restriction and checks that it no longer interferes with `d`.
fn verify_restriction(iter: &LoopIteration, d: &Descriptor, r: &Restriction) -> bool {
    match r {
        Restriction::ExcludePoint(e) => {
            if iter.ranges.len() != 1 || iter.ranges[0].skip != 1 {
                return false;
            }
            let whole = &iter.ranges[0];
            let below = SymRange::new(whole.start.clone(), e.offset(-1));
            let above = SymRange::new(e.offset(1), whole.end.clone());
            let promoted_below = iter.descriptor.promote(&iter.var, &below);
            let promoted_above = iter.descriptor.promote(&iter.var, &above);
            !promoted_below.interferes(d) && !promoted_above.interferes(d)
        }
        Restriction::ExcludePoints(points) => {
            if iter.ranges.len() != 1 || iter.ranges[0].skip != 1 {
                return false;
            }
            // Guard every triple with `var ≠ e_k` for all excluded
            // points; the point-point separation rule then proves the
            // remaining iterations clear of `d` (iteration-level check,
            // valid for every value of the symbolic variable).
            let mut guard = orchestra_descriptors::Guard::truth();
            let v = SymExpr::name(&iter.var);
            for e in points {
                guard = guard.and(&orchestra_descriptors::Guard::linear(
                    orchestra_analysis::symbolic::Ineq::ne(&v, e),
                ));
            }
            let mut guarded = Descriptor::new();
            for t in &iter.descriptor.reads {
                guarded.reads.push(t.clone().guarded(guard.clone()));
            }
            for t in &iter.descriptor.writes {
                guarded.writes.push(t.clone().guarded(guard.clone()));
            }
            !guarded.interferes(d)
        }
        Restriction::MaskCond { array, rel } => {
            if iter.ranges.len() != 1 {
                return false;
            }
            // Guard every triple with the complementary mask test on the
            // induction variable, then promote: the guard becomes a
            // dimension mask where applicable.
            let comp = rel.negate();
            let test =
                orchestra_descriptors::MaskTest::new(array.clone(), SymExpr::name(&iter.var), comp);
            let guard = orchestra_descriptors::Guard::mask(test);
            let mut guarded = Descriptor::new();
            for t in &iter.descriptor.reads {
                guarded.reads.push(t.clone().guarded(guard.clone()));
            }
            for t in &iter.descriptor.writes {
                guarded.writes.push(t.clone().guarded(guard.clone()));
            }
            let promoted = guarded.promote(&iter.var, &iter.ranges[0]);
            !promoted.interferes(d)
        }
    }
}

/// Checks that the loop's iterations commute (independent except through
/// reductions) and that each written array is not also read, returning
/// the recognized reduction accumulators.
///
/// Returns `None` when splitting the iterations would be illegal.
pub fn check_iterations_commute(iter: &LoopIteration, body: &[Stmt]) -> Option<Vec<ReductionVar>> {
    // 1. Calls in the body defeat the analysis.
    if contains_call(body) {
        return None;
    }
    // 2. Every scalar assigned in the body must be a reduction.
    let mut reductions: BTreeMap<String, BinOp> = BTreeMap::new();
    if !collect_reductions(body, &mut reductions) {
        return None;
    }
    let reductions: Vec<ReductionVar> =
        reductions.into_iter().map(|(name, op)| ReductionVar { name, op }).collect();
    // 3. Written arrays must not be read.
    let mut written = BTreeSet::new();
    let mut read = BTreeSet::new();
    for s in body {
        s.array_writes(&mut written);
        s.visit_exprs(&mut |e| e.array_reads(&mut read));
    }
    if written.intersection(&read).next().is_some() {
        return None;
    }
    // 4. Distinct iterations must not interfere (ignoring reductions):
    // substitute var := var + 1 — sound for the linear patterns the
    // descriptors contain.
    let mut stripped = iter.descriptor.clone();
    for r in &reductions {
        stripped = stripped.without_block(&r.name);
    }
    let shifted = stripped.subst(&iter.var, &SymExpr::name(&iter.var).offset(1));
    if stripped.interferes(&shifted) {
        return None;
    }
    // 5. Guarded writes cannot be merged reliably; require plain ones.
    if stripped.writes.iter().any(|t| !t.guard.is_truth() || t.pattern.is_none()) {
        return None;
    }
    Some(reductions)
}

fn contains_call(body: &[Stmt]) -> bool {
    body.iter().any(|s| match s {
        Stmt::Call { .. } => true,
        Stmt::Do { body, .. } => contains_call(body),
        Stmt::If { then_body, else_body, .. } => {
            contains_call(then_body) || contains_call(else_body)
        }
        Stmt::Assign { .. } => false,
    })
}

/// Collects reduction assignments; returns false on any scalar
/// assignment that is not of the form `s = s ⊕ e` (⊕ associative, `e`
/// not mentioning `s`), or when a reduction scalar is read elsewhere.
fn collect_reductions(body: &[Stmt], out: &mut BTreeMap<String, BinOp>) -> bool {
    // Gather assignments.
    fn walk(stmts: &[Stmt], out: &mut BTreeMap<String, BinOp>) -> bool {
        for s in stmts {
            match s {
                Stmt::Assign { target: LValue::Var(name), value } => {
                    let Some(op) = reduction_op(name, value) else { return false };
                    match out.get(name) {
                        Some(prev) if *prev != op => return false,
                        _ => {
                            out.insert(name.clone(), op);
                        }
                    }
                }
                Stmt::Assign { .. } => {}
                Stmt::Do { body, .. } => {
                    if !walk(body, out) {
                        return false;
                    }
                }
                Stmt::If { then_body, else_body, .. } => {
                    if !walk(then_body, out) || !walk(else_body, out) {
                        return false;
                    }
                }
                Stmt::Call { .. } => return false,
            }
        }
        true
    }
    if !walk(body, out) {
        return false;
    }
    // A reduction scalar may only appear as the accumulator operand of
    // its own assignments: verify it is not read anywhere else.
    for name in out.keys() {
        if scalar_read_outside_reduction(body, name) {
            return false;
        }
    }
    true
}

fn reduction_op(name: &str, value: &Expr) -> Option<BinOp> {
    let Expr::Bin(op, l, r) = value else { return None };
    if !matches!(op, BinOp::Add | BinOp::Mul) {
        return None;
    }
    let (acc, rest) = if **l == Expr::Var(name.to_string()) {
        (l, r)
    } else if **r == Expr::Var(name.to_string()) {
        (r, l)
    } else {
        return None;
    };
    let _ = acc;
    let mut reads = BTreeSet::new();
    rest.scalar_reads(&mut reads);
    if reads.contains(name) {
        return None;
    }
    Some(*op)
}

fn scalar_read_outside_reduction(body: &[Stmt], name: &str) -> bool {
    fn expr_reads_scalar(e: &Expr, name: &str) -> bool {
        let mut s = BTreeSet::new();
        e.scalar_reads(&mut s);
        s.contains(name)
    }
    for s in body {
        match s {
            Stmt::Assign { target, value } => {
                let is_own_reduction = matches!(target, LValue::Var(t) if t == name);
                if is_own_reduction {
                    // The single accumulator occurrence is allowed; any
                    // other occurrence in the RHS was rejected by
                    // `reduction_op` already.
                    continue;
                }
                if expr_reads_scalar(value, name) {
                    return true;
                }
                if let LValue::Index(_, idx) = target {
                    if idx.iter().any(|e| expr_reads_scalar(e, name)) {
                        return true;
                    }
                }
            }
            Stmt::Do { ranges, mask, body, .. } => {
                for r in ranges {
                    if expr_reads_scalar(&r.lo, name) || expr_reads_scalar(&r.hi, name) {
                        return true;
                    }
                }
                if mask.as_ref().is_some_and(|m| expr_reads_scalar(m, name)) {
                    return true;
                }
                if scalar_read_outside_reduction(body, name) {
                    return true;
                }
            }
            Stmt::If { cond, then_body, else_body } => {
                if expr_reads_scalar(cond, name)
                    || scalar_read_outside_reduction(then_body, name)
                    || scalar_read_outside_reduction(else_body, name)
                {
                    return true;
                }
            }
            Stmt::Call { args, .. } => {
                if args.iter().any(|a| expr_reads_scalar(a, name)) {
                    return true;
                }
            }
        }
    }
    false
}

/// The generated pieces of a split loop.
#[derive(Debug, Clone)]
pub struct LoopSplitPieces {
    /// `C_I`: statements executing the independent iterations (with
    /// replicated outputs), including accumulator initializations.
    pub independent: Vec<Stmt>,
    /// `C_D`: statements executing the dependent iterations.
    pub dependent: Vec<Stmt>,
    /// `C_M`: the merge.
    pub merge: Vec<Stmt>,
    /// Declarations for replicated arrays and accumulators.
    pub new_decls: Vec<Decl>,
    /// `(original, independent copy, dependent copy)` renames.
    pub renames: Vec<(String, String, String)>,
}

/// Performs the iteration split of one loop. `iter` must come from
/// [`orchestra_descriptors::loop_iteration_descriptor`] on `loop_stmt`,
/// `restriction` from [`detect_restriction`], and `reductions` from
/// [`check_iterations_commute`].
///
/// Returns `None` when the loop shape is unsupported (multiple ranges,
/// non-unit step for `ExcludePoint`, or a bound that failed to
/// linearize).
pub fn split_loop(
    prog: &Program,
    loop_stmt: &Stmt,
    restriction: &Restriction,
    reductions: &[ReductionVar],
    iter: &LoopIteration,
    fresh: &mut FreshNames,
) -> Option<LoopSplitPieces> {
    let Stmt::Do { label, var, ranges, mask, body } = loop_stmt else { return None };
    if ranges.len() != 1 {
        return None;
    }
    let range = &ranges[0];
    if matches!(restriction, Restriction::ExcludePoint(_) | Restriction::ExcludePoints(_))
        && range.step.is_some()
    {
        return None;
    }

    // Replicate outputs.
    let mut written_arrays = BTreeSet::new();
    for s in body {
        s.array_writes(&mut written_arrays);
    }
    let mut renames = Vec::new();
    let mut new_decls = Vec::new();
    let mut ind_map: BTreeMap<String, String> = BTreeMap::new();
    let mut dep_map: BTreeMap<String, String> = BTreeMap::new();
    for a in &written_arrays {
        let decl = prog.decl(a)?;
        let ind = fresh.fresh(a, "__i");
        let dep = fresh.fresh(a, "__d");
        for n in [&ind, &dep] {
            let mut d2 = decl.clone();
            d2.name = n.clone();
            new_decls.push(d2);
        }
        ind_map.insert(a.clone(), ind.clone());
        dep_map.insert(a.clone(), dep.clone());
        renames.push((a.clone(), ind, dep));
    }
    for r in reductions {
        let decl = prog.decl(&r.name)?;
        let ind = fresh.fresh(&r.name, "__i");
        let dep = fresh.fresh(&r.name, "__d");
        for n in [&ind, &dep] {
            let mut d2 = decl.clone();
            d2.name = n.clone();
            d2.init = None;
            new_decls.push(d2);
        }
        ind_map.insert(r.name.clone(), ind.clone());
        dep_map.insert(r.name.clone(), dep.clone());
        renames.push((r.name.clone(), ind, dep));
    }

    // Loop headers for the two pieces.
    let bounds_ok = |e: &Expr| -> Expr { e.clone() };
    let (ind_ranges, ind_mask, dep_ranges, dep_mask) = match restriction {
        Restriction::ExcludePoint(e) => {
            let e_ast = symexpr_to_ast(e);
            let in_bounds = Expr::bin(
                BinOp::And,
                Expr::bin(BinOp::Ge, Expr::var(var), bounds_ok(&range.lo)),
                Expr::bin(BinOp::Le, Expr::var(var), bounds_ok(&range.hi)),
            );
            // Folding the ±1 into the symbolic expression prints the
            // paper's `do i = 1, col-2 and col, n` form directly.
            let r1 = Range::new(range.lo.clone(), symexpr_to_ast(&e.offset(-1)));
            let r2 = Range::new(symexpr_to_ast(&e.offset(1)), range.hi.clone());
            // The discontinuous ranges may stick out past [lo, hi] when
            // the excluded point lies outside; the bounds mask clips.
            let ind_mask = conjoin(mask.clone(), Some(in_bounds.clone()));
            let dep_mask = conjoin(mask.clone(), Some(in_bounds));
            (vec![r1, r2], ind_mask, vec![Range::new(e_ast.clone(), e_ast)], dep_mask)
        }
        Restriction::ExcludePoints(points) => {
            // Independent: the full range masked by `i ≠ e_k` for all k;
            // dependent: one point range per excluded value, clipped.
            let in_bounds = Expr::bin(
                BinOp::And,
                Expr::bin(BinOp::Ge, Expr::var(var), bounds_ok(&range.lo)),
                Expr::bin(BinOp::Le, Expr::var(var), bounds_ok(&range.hi)),
            );
            let mut ne_all: Option<Expr> = None;
            let mut dep_ranges = Vec::with_capacity(points.len());
            for e in points {
                let e_ast = symexpr_to_ast(e);
                let ne = Expr::bin(BinOp::Ne, Expr::var(var), e_ast.clone());
                ne_all = Some(match ne_all {
                    None => ne,
                    Some(prev) => Expr::bin(BinOp::And, prev, ne),
                });
                dep_ranges.push(Range::new(e_ast.clone(), e_ast));
            }
            let ind_mask = conjoin(mask.clone(), ne_all);
            let dep_mask = conjoin(mask.clone(), Some(in_bounds));
            (vec![range.clone()], ind_mask, dep_ranges, dep_mask)
        }
        Restriction::MaskCond { array, rel } => {
            let test = |rel: MaskRel| -> Expr {
                let (op, c) = match rel {
                    MaskRel::EqConst(c) => (BinOp::Eq, c),
                    MaskRel::NeConst(c) => (BinOp::Ne, c),
                };
                Expr::bin(op, Expr::index(array.clone(), vec![Expr::var(var)]), Expr::IntLit(c))
            };
            let ind_mask = conjoin(mask.clone(), Some(test(rel.negate())));
            let dep_mask = conjoin(mask.clone(), Some(test(*rel)));
            (vec![range.clone()], ind_mask, vec![range.clone()], dep_mask)
        }
    };

    // Piece bodies with renamed outputs.
    let ind_body = rename_stmts(body, &ind_map, reductions);
    let dep_body = rename_stmts(body, &dep_map, reductions);

    let mut independent = Vec::new();
    let mut dependent = Vec::new();
    for r in reductions {
        independent.push(Stmt::Assign {
            target: LValue::Var(ind_map[&r.name].clone()),
            value: r.identity(),
        });
        dependent.push(Stmt::Assign {
            target: LValue::Var(dep_map[&r.name].clone()),
            value: r.identity(),
        });
    }
    let base = label.clone().unwrap_or_else(|| "C".to_string());
    independent.push(Stmt::Do {
        label: Some(format!("{base}_I")),
        var: var.clone(),
        ranges: ind_ranges,
        mask: ind_mask,
        body: ind_body,
    });
    dependent.push(Stmt::Do {
        label: Some(format!("{base}_D")),
        var: var.clone(),
        ranges: dep_ranges,
        mask: dep_mask,
        body: dep_body,
    });

    // The merge.
    let merge = build_merge(
        &base,
        var,
        range,
        mask,
        restriction,
        iter,
        &written_arrays,
        &ind_map,
        &dep_map,
        reductions,
        fresh,
    )?;

    Some(LoopSplitPieces { independent, dependent, merge, new_decls, renames })
}

fn conjoin(a: Option<Expr>, b: Option<Expr>) -> Option<Expr> {
    match (a, b) {
        (None, x) | (x, None) => x,
        (Some(a), Some(b)) => Some(Expr::bin(BinOp::And, a, b)),
    }
}

/// Renames written arrays and reduction scalars in a loop body.
fn rename_stmts(
    body: &[Stmt],
    map: &BTreeMap<String, String>,
    reductions: &[ReductionVar],
) -> Vec<Stmt> {
    let red_names: BTreeSet<&str> = reductions.iter().map(|r| r.name.as_str()).collect();
    body.iter().map(|s| rename_stmt(s, map, &red_names)).collect()
}

fn rename_stmt(s: &Stmt, map: &BTreeMap<String, String>, reds: &BTreeSet<&str>) -> Stmt {
    match s {
        Stmt::Assign { target, value } => {
            let target = match target {
                LValue::Var(v) => LValue::Var(map.get(v).cloned().unwrap_or_else(|| v.clone())),
                LValue::Index(a, idx) => LValue::Index(
                    map.get(a).cloned().unwrap_or_else(|| a.clone()),
                    idx.iter().map(|e| rename_expr(e, map, reds)).collect(),
                ),
            };
            Stmt::Assign { target, value: rename_expr(value, map, reds) }
        }
        Stmt::Do { label, var, ranges, mask, body } => Stmt::Do {
            label: label.clone(),
            var: var.clone(),
            ranges: ranges
                .iter()
                .map(|r| Range {
                    lo: rename_expr(&r.lo, map, reds),
                    hi: rename_expr(&r.hi, map, reds),
                    step: r.step.as_ref().map(|e| rename_expr(e, map, reds)),
                })
                .collect(),
            mask: mask.as_ref().map(|m| rename_expr(m, map, reds)),
            body: body.iter().map(|b| rename_stmt(b, map, reds)).collect(),
        },
        Stmt::If { cond, then_body, else_body } => Stmt::If {
            cond: rename_expr(cond, map, reds),
            then_body: then_body.iter().map(|b| rename_stmt(b, map, reds)).collect(),
            else_body: else_body.iter().map(|b| rename_stmt(b, map, reds)).collect(),
        },
        Stmt::Call { name, args } => Stmt::Call {
            name: name.clone(),
            args: args.iter().map(|e| rename_expr(e, map, reds)).collect(),
        },
    }
}

/// Renames only (a) reduction scalars anywhere and (b) array names in
/// index positions. Plain scalar reads of non-reduction names are left
/// alone (written arrays are never read in a splittable body).
fn rename_expr(e: &Expr, map: &BTreeMap<String, String>, reds: &BTreeSet<&str>) -> Expr {
    match e {
        Expr::IntLit(_) | Expr::FloatLit(_) => e.clone(),
        Expr::Var(v) => {
            if reds.contains(v.as_str()) {
                Expr::Var(map.get(v).cloned().unwrap_or_else(|| v.clone()))
            } else {
                e.clone()
            }
        }
        Expr::Index(a, idx) => Expr::Index(
            map.get(a).cloned().unwrap_or_else(|| a.clone()),
            idx.iter().map(|i| rename_expr(i, map, reds)).collect(),
        ),
        Expr::Bin(op, l, r) => Expr::bin(*op, rename_expr(l, map, reds), rename_expr(r, map, reds)),
        Expr::Un(op, i) => Expr::Un(*op, Box::new(rename_expr(i, map, reds))),
        Expr::Call(f, args) => {
            Expr::Call(f.clone(), args.iter().map(|a| rename_expr(a, map, reds)).collect())
        }
    }
}

/// Builds `C_M`: a loop over the original iteration space copying each
/// iteration's written elements from the appropriate replica, plus the
/// final reduction combining step (Figure 2's `B_M`, Figure 4's merge).
#[allow(clippy::too_many_arguments)]
fn build_merge(
    base: &str,
    var: &str,
    range: &Range,
    mask: &Option<Expr>,
    restriction: &Restriction,
    iter: &LoopIteration,
    written_arrays: &BTreeSet<String>,
    ind_map: &BTreeMap<String, String>,
    dep_map: &BTreeMap<String, String>,
    reductions: &[ReductionVar],
    fresh: &mut FreshNames,
) -> Option<Vec<Stmt>> {
    let mut merge = Vec::new();
    if !written_arrays.is_empty() {
        // Copy statements per array from the iteration write triples.
        let mut from_ind = Vec::new();
        let mut from_dep = Vec::new();
        for t in &iter.descriptor.writes {
            if !written_arrays.contains(&t.block) {
                continue;
            }
            from_ind.push(copy_stmt(t, &ind_map[&t.block], fresh)?);
            from_dep.push(copy_stmt(t, &dep_map[&t.block], fresh)?);
        }
        let dep_cond = match restriction {
            Restriction::ExcludePoint(e) => Expr::bin(BinOp::Eq, Expr::var(var), symexpr_to_ast(e)),
            Restriction::ExcludePoints(points) => {
                let mut cond: Option<Expr> = None;
                for e in points {
                    let eq = Expr::bin(BinOp::Eq, Expr::var(var), symexpr_to_ast(e));
                    cond = Some(match cond {
                        None => eq,
                        Some(prev) => Expr::bin(BinOp::Or, prev, eq),
                    });
                }
                cond.expect("at least one point")
            }
            Restriction::MaskCond { array, rel } => {
                let (op, c) = match rel {
                    MaskRel::EqConst(c) => (BinOp::Eq, *c),
                    MaskRel::NeConst(c) => (BinOp::Ne, *c),
                };
                Expr::bin(op, Expr::index(array.clone(), vec![Expr::var(var)]), Expr::IntLit(c))
            }
        };
        merge.push(Stmt::Do {
            label: Some(format!("{base}_M")),
            var: var.to_string(),
            ranges: vec![range.clone()],
            mask: mask.clone(),
            body: vec![Stmt::If { cond: dep_cond, then_body: from_dep, else_body: from_ind }],
        });
    }
    for r in reductions {
        // s = (s ⊕ s__i) ⊕ s__d
        let inner = Expr::bin(r.op, Expr::var(&r.name), Expr::var(&ind_map[&r.name]));
        let outer = Expr::bin(r.op, inner, Expr::var(&dep_map[&r.name]));
        merge.push(Stmt::Assign { target: LValue::Var(r.name.clone()), value: outer });
    }
    Some(merge)
}

/// Generates the copy of one iteration's writes described by a triple:
/// nested loops over the range dimensions assigning
/// `block[idx…] = replica[idx…]`.
fn copy_stmt(t: &Triple, replica: &str, fresh: &mut FreshNames) -> Option<Stmt> {
    let dims = t.pattern.as_ref()?;
    let mut idx_exprs: Vec<Expr> = Vec::with_capacity(dims.len());
    let mut loops: Vec<(String, Expr, Expr, i64)> = Vec::new();
    for d in dims {
        if d.mask.is_some() {
            return None;
        }
        if d.range.is_point() {
            idx_exprs.push(symexpr_to_ast(&d.range.start));
        } else {
            let v = fresh.fresh("m", "v");
            idx_exprs.push(Expr::var(&v));
            loops.push((
                v,
                symexpr_to_ast(&d.range.start),
                symexpr_to_ast(&d.range.end),
                d.range.skip,
            ));
        }
    }
    let mut stmt = Stmt::Assign {
        target: LValue::Index(t.block.clone(), idx_exprs.clone()),
        value: Expr::Index(replica.to_string(), idx_exprs),
    };
    for (v, lo, hi, skip) in loops.into_iter().rev() {
        stmt = Stmt::Do {
            label: None,
            var: v,
            ranges: vec![Range {
                lo,
                hi,
                step: if skip == 1 { None } else { Some(Expr::IntLit(skip)) },
            }],
            mask: None,
            body: vec![stmt],
        };
    }
    Some(stmt)
}

/// Convenience context builder used by the split driver and tests.
pub fn ctx_of(prog: &Program) -> SymCtx {
    SymCtx::from_program(prog)
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_descriptors::{descriptor_of_stmt, loop_iteration_descriptor};
    use orchestra_lang::parse_program;

    #[test]
    fn symexpr_round_trip() {
        let e = SymExpr::from_terms([("col".into(), 1)], -1);
        let ast = symexpr_to_ast(&e);
        assert_eq!(orchestra_lang::pretty::expr_to_string(&ast), "col - 1");
        let e2 = SymExpr::from_terms([("a".into(), -2), ("b".into(), 3)], 4);
        let ast2 = symexpr_to_ast(&e2);
        assert_eq!(orchestra_lang::pretty::expr_to_string(&ast2), "-(2 * a) + 3 * b + 4");
        assert_eq!(
            orchestra_lang::pretty::expr_to_string(&symexpr_to_ast(&SymExpr::constant(7))),
            "7"
        );
    }

    fn figure4_like() -> (Program, LoopIteration, Descriptor) {
        let p = parse_program(
            r#"
program p
  integer n = 6, a = 3
  float x[1..n, 1..n], y[1..n], sum
  G: do i = 1, n {
    x[a, i] = x[a, i] + y[i]
  }
  H: do i = 1, n {
    do j = 1, n {
      sum = sum + x[i, j]
    }
  }
end
"#,
        )
        .unwrap();
        let ctx = SymCtx::from_program(&p);
        let dg = descriptor_of_stmt(&p.body[0], &ctx);
        let iter = loop_iteration_descriptor(&p.body[1], &ctx).unwrap();
        (p, iter, dg)
    }

    #[test]
    fn figure4_restriction_is_exclude_a() {
        let (_, iter, dg) = figure4_like();
        let r = detect_restriction(&iter, &dg, &BTreeSet::from(["sum".to_string()]))
            .expect("restriction found");
        assert_eq!(r, Restriction::ExcludePoint(SymExpr::constant(3)), "a folds to 3");
    }

    #[test]
    fn figure4_reduction_recognized() {
        let (p, iter, _) = figure4_like();
        let Stmt::Do { body, .. } = &p.body[1] else { panic!() };
        let reds = check_iterations_commute(&iter, body).expect("legal split");
        assert_eq!(reds, vec![ReductionVar { name: "sum".into(), op: BinOp::Add }]);
    }

    #[test]
    fn figure4_split_produces_three_pieces() {
        let (p, iter, dg) = figure4_like();
        let r = detect_restriction(&iter, &dg, &BTreeSet::from(["sum".to_string()])).unwrap();
        let Stmt::Do { body, .. } = &p.body[1] else { panic!() };
        let reds = check_iterations_commute(&iter, body).unwrap();
        let mut fresh = FreshNames::from_program(&p);
        let pieces = split_loop(&p, &p.body[1], &r, &reds, &iter, &mut fresh).expect("split");
        // C_I: init + discontinuous loop; C_D: init + point loop; C_M:
        // reduction combine (no arrays written).
        assert_eq!(pieces.independent.len(), 2);
        let Stmt::Do { ranges, .. } = &pieces.independent[1] else { panic!() };
        assert_eq!(ranges.len(), 2, "1..a-1 and a+1..n");
        let Stmt::Do { ranges: dep_r, .. } = &pieces.dependent[1] else { panic!() };
        assert_eq!(dep_r.len(), 1);
        assert_eq!(pieces.merge.len(), 1, "just the reduction combine");
        assert!(pieces.new_decls.iter().any(|d| d.name == "sum__i"));
    }

    fn masked_b_like() -> (Program, LoopIteration, Descriptor) {
        // Figure 1's A and B shapes.
        let p = orchestra_lang::builder::figure1_program(6);
        let ctx = SymCtx::from_program(&p);
        let da = descriptor_of_stmt(&p.body[0], &ctx);
        let iter = loop_iteration_descriptor(&p.body[1], &ctx).unwrap();
        (p, iter, da)
    }

    #[test]
    fn figure1_restriction_is_mask_cond() {
        let (_, iter, da) = masked_b_like();
        let r = detect_restriction(&iter, &da, &BTreeSet::from(["output".to_string()]))
            .expect("mask restriction");
        assert_eq!(r, Restriction::MaskCond { array: "mask".into(), rel: MaskRel::NeConst(0) });
    }

    #[test]
    fn figure1_split_matches_figure2_shape() {
        let (p, iter, da) = masked_b_like();
        let r = detect_restriction(&iter, &da, &BTreeSet::from(["output".to_string()])).unwrap();
        let Stmt::Do { body, .. } = &p.body[1] else { panic!() };
        let reds = check_iterations_commute(&iter, body).unwrap();
        assert!(reds.is_empty());
        let mut fresh = FreshNames::from_program(&p);
        let pieces = split_loop(&p, &p.body[1], &r, &reds, &iter, &mut fresh).unwrap();
        // B_I: do i where (mask[i] = 0); B_D: where (mask[i] <> 0).
        let Stmt::Do { mask: im, label, .. } = &pieces.independent[0] else { panic!() };
        assert_eq!(label.as_deref(), Some("B_I"));
        assert_eq!(orchestra_lang::pretty::expr_to_string(im.as_ref().unwrap()), "mask[i] = 0");
        let Stmt::Do { mask: dm, .. } = &pieces.dependent[0] else { panic!() };
        assert_eq!(orchestra_lang::pretty::expr_to_string(dm.as_ref().unwrap()), "mask[i] <> 0");
        // Output replicated; merge loop selects by the mask.
        assert!(pieces.new_decls.iter().any(|d| d.name == "output__i"));
        assert_eq!(pieces.merge.len(), 1);
        let Stmt::Do { body: mb, label: ml, .. } = &pieces.merge[0] else { panic!() };
        assert_eq!(ml.as_deref(), Some("B_M"));
        assert!(matches!(mb[0], Stmt::If { .. }));
    }

    #[test]
    fn non_commuting_loop_rejected() {
        // Writes x[i] and reads x[i-1]: iterations do not commute.
        let p = parse_program(
            "program p\n integer n = 5\n float x[1..n]\n L: do i = 2, n { x[i] = x[i - 1] }\nend",
        )
        .unwrap();
        let ctx = SymCtx::from_program(&p);
        let iter = loop_iteration_descriptor(&p.body[0], &ctx).unwrap();
        let Stmt::Do { body, .. } = &p.body[0] else { panic!() };
        assert!(check_iterations_commute(&iter, body).is_none());
    }

    #[test]
    fn non_reduction_scalar_rejected() {
        let p = parse_program(
            "program p\n integer n = 5, last\n float x[1..n]\n L: do i = 1, n { last = i\n x[i] = 1.0 }\nend",
        )
        .unwrap();
        let ctx = SymCtx::from_program(&p);
        let iter = loop_iteration_descriptor(&p.body[0], &ctx).unwrap();
        let Stmt::Do { body, .. } = &p.body[0] else { panic!() };
        assert!(check_iterations_commute(&iter, body).is_none(), "last = i is not a reduction");
    }

    #[test]
    fn no_restriction_when_conflict_not_isolable() {
        // D writes all of x; every iteration of L reads x[i] → no
        // restriction isolates the conflict.
        let p = parse_program(
            r#"
program p
  integer n = 5
  float x[1..n], y[1..n], z[1..n]
  W: do i = 1, n { x[i] = 1.0 }
  L: do i = 1, n { y[i] = x[i] }
end
"#,
        )
        .unwrap();
        let ctx = SymCtx::from_program(&p);
        let dw = descriptor_of_stmt(&p.body[0], &ctx);
        let iter = loop_iteration_descriptor(&p.body[1], &ctx).unwrap();
        assert!(detect_restriction(&iter, &dw, &BTreeSet::from(["y".to_string()])).is_none());
    }

    #[test]
    fn fresh_names_avoid_collisions() {
        let p = parse_program("program p\n integer sum__i, sum\nend").unwrap();
        let mut f = FreshNames::from_program(&p);
        assert_eq!(f.fresh("sum", "__i"), "sum__i2");
        assert_eq!(f.fresh("sum", "__i"), "sum__i3");
    }
}
