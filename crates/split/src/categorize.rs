//! Interference categorization (§3.3.1).
//!
//! Split assigns each primitive computation of `C` to a memory-usage
//! category with respect to a descriptor `D`:
//!
//! * **Bound** — interferes with `D` directly;
//! * **Linked** — interferes with `D` only transitively;
//! * **Free** — interferes neither directly nor transitively.
//!
//! Linked computations are refined using (asymmetric) *flow*
//! interference:
//!
//! * **NeedsBound** — has a transitive flow interference *from* Bound;
//! * **GenerateLinked** — Bound ∪ NeedsBound has a transitive flow
//!   interference *from* it;
//! * **ReadLinked** — the rest.

use crate::prim::Prim;
use orchestra_descriptors::Descriptor;

/// The categorization of a computation's primitives against a
/// descriptor, as index sets into the primitive list.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Categories {
    /// Primitives interfering with `D` directly.
    pub bound: Vec<usize>,
    /// Linked primitives needing values Bound computes.
    pub needs_bound: Vec<usize>,
    /// Linked primitives producing values Bound/NeedsBound consume.
    pub generate_linked: Vec<usize>,
    /// Linked primitives that only read shared state.
    pub read_linked: Vec<usize>,
    /// Primitives free of any interference with `D`.
    pub free: Vec<usize>,
}

impl Categories {
    /// All Linked members (union of the three refinements).
    pub fn linked(&self) -> Vec<usize> {
        let mut v = self.needs_bound.clone();
        v.extend(&self.generate_linked);
        v.extend(&self.read_linked);
        v.sort_unstable();
        v
    }

    /// The category name of a primitive, for reports.
    pub fn category_of(&self, id: usize) -> &'static str {
        if self.bound.contains(&id) {
            "Bound"
        } else if self.needs_bound.contains(&id) {
            "NeedsBound"
        } else if self.generate_linked.contains(&id) {
            "GenerateLinked"
        } else if self.read_linked.contains(&id) {
            "ReadLinked"
        } else if self.free.contains(&id) {
            "Free"
        } else {
            "Unknown"
        }
    }
}

/// Computes the transitive-interference closure (the paper's
/// `transitive_interfere`): returns the members of `initial` that
/// transitively interfere with `target`, removing them from `initial`.
///
/// The fixpoint iterates at most `n` times; each round either moves a
/// primitive into the result or terminates, giving the paper's `O(n²)`
/// bound on interference tests.
pub fn transitive_interfere(
    initial: &mut Vec<usize>,
    target: &[usize],
    prims: &[Prim],
) -> Vec<usize> {
    closure(initial, target, prims, |a, b| a.interferes(b))
}

/// Transitive *flow* closure upward: members of `initial` that
/// transitively have a flow interference **from** `target` (they consume
/// values `target` produces, possibly through other members of
/// `initial`).
pub fn transitive_flow_up(
    initial: &mut Vec<usize>,
    target: &[usize],
    prims: &[Prim],
) -> Vec<usize> {
    // member m is reached if m reads what t writes: m.flow_from(t)
    closure(initial, target, prims, |member, t| member.flow_interferes_from(t))
}

/// Transitive flow closure downward: members of `initial` from which
/// `target` transitively has a flow interference (they produce values
/// `target` consumes).
pub fn transitive_flow_down(
    initial: &mut Vec<usize>,
    target: &[usize],
    prims: &[Prim],
) -> Vec<usize> {
    closure(initial, target, prims, |member, t| t.flow_interferes_from(member))
}

/// Generic fixpoint: moves members of `initial` related (by `related`) to
/// the growing test set into the result.
fn closure(
    initial: &mut Vec<usize>,
    target: &[usize],
    prims: &[Prim],
    related: impl Fn(&Descriptor, &Descriptor) -> bool,
) -> Vec<usize> {
    let mut result = Vec::new();
    let mut test_set: Vec<usize> = target.to_vec();
    while !test_set.is_empty() {
        let mut new_found = Vec::new();
        initial.retain(|&c| {
            let hit = test_set.iter().any(|&t| related(&prims[c].descriptor, &prims[t].descriptor));
            if hit {
                result.push(c);
                new_found.push(c);
            }
            !hit
        });
        test_set = new_found;
    }
    result
}

/// Categorizes `C`'s primitives with respect to descriptor `d`,
/// following the paper's two algorithms verbatim.
pub fn categorize(prims: &[Prim], d: &Descriptor) -> Categories {
    let mut bound = Vec::new();
    let mut maybe_free = Vec::new();
    for p in prims {
        if p.descriptor.interferes(d) {
            bound.push(p.id);
        } else {
            maybe_free.push(p.id);
        }
    }
    let linked = transitive_interfere(&mut maybe_free, &bound, prims);
    let free = maybe_free;

    // Refinement of Linked.
    let mut unrestricted = linked;
    let needs_bound = transitive_flow_up(&mut unrestricted, &bound, prims);
    let mut down_targets = bound.clone();
    down_targets.extend(&needs_bound);
    let generate_linked = transitive_flow_down(&mut unrestricted, &down_targets, prims);
    let read_linked = unrestricted;

    Categories { bound, needs_bound, generate_linked, read_linked, free }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prim::primitives_of;
    use orchestra_descriptors::{descriptor_of_stmt, SymCtx};
    use orchestra_lang::parse_program;

    /// The paper's Figure 5 example, expressed in MF. Named
    /// computations (as loops so every one is a primitive):
    ///
    /// * `W` writes array X (the splitting reference descriptor)
    /// * `B` reads X, writes sum       → Bound
    /// * `A` writes Y (B reads Y)      → GenerateLinked
    /// * `C` reads Y, writes Z         → ReadLinked
    /// * `D` reads sum, writes R       → NeedsBound
    /// * `E` touches only V            → Free
    const FIGURE5: &str = r#"
program figure5
  integer n = 4
  float x[1..n], y[1..n], z[1..n], r[1..n], v[1..n], sum
  W: do i = 1, n { x[i] = 1.0 }
  A: do i = 1, n { y[i] = 2.0 }
  B: do i = 1, n { sum = sum + x[i] * y[i] }
  C: do i = 1, n { z[i] = y[i] }
  D: do i = 1, n { r[i] = sum }
  E: do i = 1, n { v[i] = 3.0 }
end
"#;

    fn figure5_setup() -> (Vec<Prim>, orchestra_descriptors::Descriptor) {
        let p = parse_program(FIGURE5).unwrap();
        let ctx = SymCtx::from_program(&p);
        // Split T = {A..E} with respect to W's descriptor.
        let d_w = descriptor_of_stmt(&p.body[0], &ctx);
        let prims = primitives_of(&p.body[1..], &ctx);
        (prims, d_w)
    }

    fn names(prims: &[Prim], ids: &[usize]) -> Vec<String> {
        ids.iter().map(|&i| prims[i].name.clone()).collect()
    }

    #[test]
    fn figure5_categories_match_paper() {
        let (prims, d_w) = figure5_setup();
        let cats = categorize(&prims, &d_w);
        assert_eq!(names(&prims, &cats.bound), vec!["B"], "B reads X written by W");
        assert_eq!(names(&prims, &cats.generate_linked), vec!["A"], "A feeds B");
        assert_eq!(names(&prims, &cats.read_linked), vec!["C"], "C reads A's Y");
        assert_eq!(names(&prims, &cats.needs_bound), vec!["D"], "D reads B's sum");
        assert_eq!(names(&prims, &cats.free), vec!["E"]);
    }

    #[test]
    fn category_of_reports_names() {
        let (prims, d_w) = figure5_setup();
        let cats = categorize(&prims, &d_w);
        let by_name: std::collections::BTreeMap<String, &'static str> =
            prims.iter().map(|p| (p.name.clone(), cats.category_of(p.id))).collect();
        assert_eq!(by_name["B"], "Bound");
        assert_eq!(by_name["E"], "Free");
        assert_eq!(by_name["A"], "GenerateLinked");
        assert_eq!(by_name["C"], "ReadLinked");
        assert_eq!(by_name["D"], "NeedsBound");
    }

    #[test]
    fn everything_free_when_no_interference() {
        let p = parse_program(
            "program p\n integer n = 3\n float x[1..n], y[1..n]\n X: do i = 1, n { x[i] = 1.0 }\n Y: do i = 1, n { y[i] = 2.0 }\nend",
        )
        .unwrap();
        let ctx = SymCtx::from_program(&p);
        let d_x = descriptor_of_stmt(&p.body[0], &ctx);
        let prims = primitives_of(&p.body[1..], &ctx);
        let cats = categorize(&prims, &d_x);
        assert_eq!(cats.free.len(), 1);
        assert!(cats.bound.is_empty());
    }

    #[test]
    fn chain_of_linked_through_intermediates() {
        // W writes x; B reads x (Bound); M reads b-output, writes m;
        // N reads m → transitively linked through M.
        let p = parse_program(
            r#"
program p
  integer n = 3
  float x[1..n], bo[1..n], m[1..n], nn[1..n]
  W: do i = 1, n { x[i] = 1.0 }
  B: do i = 1, n { bo[i] = x[i] }
  M: do i = 1, n { m[i] = bo[i] }
  N: do i = 1, n { nn[i] = m[i] }
end
"#,
        )
        .unwrap();
        let ctx = SymCtx::from_program(&p);
        let d_w = descriptor_of_stmt(&p.body[0], &ctx);
        let prims = primitives_of(&p.body[1..], &ctx);
        let cats = categorize(&prims, &d_w);
        assert_eq!(names(&prims, &cats.bound), vec!["B"]);
        // M and N are NeedsBound: transitive flow from Bound via M.
        let mut nb = names(&prims, &cats.needs_bound);
        nb.sort();
        assert_eq!(nb, vec!["M", "N"]);
        assert!(cats.free.is_empty());
    }

    #[test]
    fn transitive_interfere_moves_and_removes() {
        let (prims, d_w) = figure5_setup();
        // Initial = everything except B; target = {B}.
        let b_id = prims.iter().find(|p| p.name == "B").unwrap().id;
        let mut initial: Vec<usize> = prims.iter().map(|p| p.id).filter(|&i| i != b_id).collect();
        let result = transitive_interfere(&mut initial, &[b_id], &prims);
        let mut got = names(&prims, &result);
        got.sort();
        // A (writes y read by B), C (reads y → interferes with A… via A),
        // D (reads sum written by B) — E stays out.
        assert_eq!(got, vec!["A", "C", "D"]);
        assert_eq!(names(&prims, &initial), vec!["E"]);
        let _ = d_w;
    }
}
