#![warn(missing_docs)]
//! # orchestra-split
//!
//! The **split** transformation (§3.3 of *Orchestrating Interactions
//! Among Parallel Computations*, PLDI 1993) and its application to
//! loop pipelining.
//!
//! Split takes a computation `C` and a descriptor `D` of another
//! computation and divides `C` into the dependent computation `C_D`,
//! the independent computation `C_I`, and the merging computation
//! `C_M`:
//!
//! * [`prim`] — subdividing `C` into primitive computations (basic
//!   blocks, calls, loops);
//! * [`mod@categorize`] — Bound / Linked / Free via `transitive_interfere`,
//!   and the Linked refinement NeedsBound / GenerateLinked / ReadLinked
//!   via transitive *flow* interference;
//! * [`loop_split`] — splitting the iterations of a Bound loop by
//!   placing a conditional on the induction variable, with reduction
//!   replication and merge synthesis (Figures 2 and 4);
//! * [`split`] — the driver, including the ReadLinked move heuristic
//!   (replicating supplier computations below an operation-count
//!   threshold when profile data justifies it);
//! * [`pipeline`] — pipelining a loop by splitting its body against the
//!   descriptor of the previous iteration(s) (Figure 3);
//! * [`fusion`] and [`mod@interchange`] — the companion source-to-source
//!   transformations §3 combines with split, with descriptor-driven
//!   legality checks.
//!
//! The transformed source is order-preserving (sequentially equivalent
//! to the input — property-tested against the MF interpreter); exposed
//! concurrency is recorded in piece classes for the Delirium graph.

pub mod categorize;
pub mod fusion;
pub mod interchange;
pub mod loop_split;
pub mod pipeline;
pub mod prim;
pub mod split;

pub use categorize::{categorize, transitive_interfere, Categories};
pub use fusion::{can_fuse, fuse_adjacent, fuse_loops, FusionObstacle};
pub use interchange::{can_interchange, interchange, InterchangeObstacle};
pub use loop_split::{
    check_iterations_commute, detect_restriction, split_loop, symexpr_to_ast, FreshNames,
    LoopSplitPieces, ReductionVar, Restriction,
};
pub use pipeline::{pipeline_loop, PipelineResult};
pub use prim::{primitives_of, Prim, PrimKind};
pub use split::{split_computation, static_op_count, Piece, PieceClass, SplitOptions, SplitResult};
