//! Loop fusion (§3: "Our compilation environment combines split with
//! source-to-source transformations like loop fusion \[12\] and loop
//! interchange \[2\]").
//!
//! Fusion coalesces two adjacent loops with identical headers into one.
//! The paper's introduction contrasts it with split: fusing Figure 1's
//! `A` and `B` "discards information about the more regular component of
//! the new loop", which is why split keeps the computations separate and
//! lets the runtime overlap them instead.
//!
//! Legality is decided with symbolic data descriptors: fusion is illegal
//! when some iteration `i` of the second loop depends on a *later*
//! iteration `j > i` of the first (a fusion-preventing backward
//! dependence) — after fusion the second loop's iteration `i` would run
//! before the first loop's iteration `j`. The probe substitutes
//! `iv → iv + 1` into the first loop's iteration descriptor, which for
//! the linear access patterns descriptors carry generalizes to all
//! `j > i`.

use orchestra_analysis::symbolic::SymExpr;
use orchestra_descriptors::{loop_iteration_descriptor, SymCtx};
use orchestra_lang::ast::{Expr, Range, Stmt};

/// Why two loops cannot fuse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FusionObstacle {
    /// One of the statements is not a `do` loop.
    NotALoop,
    /// Headers differ (ranges, step, or mask).
    HeaderMismatch,
    /// Discontinuous ranges are not fused.
    MultipleRanges,
    /// A dependence from a later iteration of the first loop into an
    /// earlier iteration of the second.
    BackwardDependence,
    /// A bound of either loop could not be linearized for comparison.
    UnanalyzableBounds,
}

impl std::fmt::Display for FusionObstacle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FusionObstacle::NotALoop => "statement is not a loop",
            FusionObstacle::HeaderMismatch => "loop headers differ",
            FusionObstacle::MultipleRanges => "discontinuous ranges",
            FusionObstacle::BackwardDependence => "fusion-preventing backward dependence",
            FusionObstacle::UnanalyzableBounds => "bounds not analyzable",
        };
        write!(f, "{s}")
    }
}

/// Checks whether two adjacent loops can legally fuse.
///
/// # Errors
///
/// Returns the first [`FusionObstacle`] found.
pub fn can_fuse(l1: &Stmt, l2: &Stmt, ctx: &SymCtx) -> Result<(), FusionObstacle> {
    let (Stmt::Do { ranges: r1, mask: m1, .. }, Stmt::Do { ranges: r2, mask: m2, .. }) = (l1, l2)
    else {
        return Err(FusionObstacle::NotALoop);
    };
    if r1.len() != 1 || r2.len() != 1 {
        return Err(FusionObstacle::MultipleRanges);
    }
    if !ranges_equal(&r1[0], &r2[0], ctx) {
        return Err(FusionObstacle::HeaderMismatch);
    }
    if !masks_equal(m1, m2, l1, l2) {
        return Err(FusionObstacle::HeaderMismatch);
    }
    let it1 = loop_iteration_descriptor(l1, ctx).ok_or(FusionObstacle::NotALoop)?;
    let it2 = loop_iteration_descriptor(l2, ctx).ok_or(FusionObstacle::NotALoop)?;
    if it1.ranges.is_empty() || it2.ranges.is_empty() {
        return Err(FusionObstacle::UnanalyzableBounds);
    }
    // Align the second loop's induction variable with the first's.
    let d2 = it2.descriptor.subst(&it2.var, &SymExpr::name(&it1.var));
    // Backward-dependence probe: L1 at iteration iv+1 vs L2 at iv.
    let d1_later = it1.descriptor.subst(&it1.var, &SymExpr::name(&it1.var).offset(1));
    if d1_later.interferes(&d2) {
        return Err(FusionObstacle::BackwardDependence);
    }
    Ok(())
}

fn ranges_equal(a: &Range, b: &Range, ctx: &SymCtx) -> bool {
    let lin_eq = |x: &Expr, y: &Expr| -> bool {
        match (ctx.lin(x), ctx.lin(y)) {
            (Some(ex), Some(ey)) => ex == ey,
            _ => x == y, // fall back to syntactic equality
        }
    };
    let step_eq = match (&a.step, &b.step) {
        (None, None) => true,
        (Some(x), Some(y)) => lin_eq(x, y),
        (Some(x), None) | (None, Some(x)) => x.as_int() == Some(1),
    };
    lin_eq(&a.lo, &b.lo) && lin_eq(&a.hi, &b.hi) && step_eq
}

fn masks_equal(m1: &Option<Expr>, m2: &Option<Expr>, l1: &Stmt, l2: &Stmt) -> bool {
    let (Stmt::Do { var: v1, .. }, Stmt::Do { var: v2, .. }) = (l1, l2) else {
        return false;
    };
    match (m1, m2) {
        (None, None) => true,
        (Some(a), Some(b)) => *a == b.subst(v2, &Expr::var(v1.clone())),
        _ => false,
    }
}

/// Fuses two loops known to be fusable; the second body's induction
/// variable is renamed to the first's.
///
/// Returns `None` if [`can_fuse`] would reject the pair.
pub fn fuse_loops(l1: &Stmt, l2: &Stmt, ctx: &SymCtx) -> Option<Stmt> {
    can_fuse(l1, l2, ctx).ok()?;
    let (Stmt::Do { label, var: v1, ranges, mask, body: b1 }, Stmt::Do { var: v2, body: b2, .. }) =
        (l1, l2)
    else {
        return None;
    };
    let mut body = b1.clone();
    body.extend(b2.iter().map(|s| rename_var(s, v2, v1)));
    Some(Stmt::Do {
        label: label.clone(),
        var: v1.clone(),
        ranges: ranges.clone(),
        mask: mask.clone(),
        body,
    })
}

/// Greedily fuses adjacent fusable loops in a statement list.
/// Returns the new list and the number of fusions performed.
pub fn fuse_adjacent(stmts: &[Stmt], ctx: &SymCtx) -> (Vec<Stmt>, usize) {
    let mut out: Vec<Stmt> = Vec::with_capacity(stmts.len());
    let mut fused = 0;
    for s in stmts {
        if let Some(prev) = out.last() {
            if let Some(f) = fuse_loops(prev, s, ctx) {
                *out.last_mut().expect("nonempty") = f;
                fused += 1;
                continue;
            }
        }
        out.push(s.clone());
    }
    (out, fused)
}

fn rename_var(s: &Stmt, from: &str, to: &str) -> Stmt {
    let to_expr = Expr::var(to.to_string());
    match s {
        Stmt::Assign { target, value } => Stmt::Assign {
            target: match target {
                orchestra_lang::ast::LValue::Var(v) if v == from => {
                    orchestra_lang::ast::LValue::Var(to.to_string())
                }
                orchestra_lang::ast::LValue::Var(v) => orchestra_lang::ast::LValue::Var(v.clone()),
                orchestra_lang::ast::LValue::Index(a, idx) => orchestra_lang::ast::LValue::Index(
                    a.clone(),
                    idx.iter().map(|e| e.subst(from, &to_expr)).collect(),
                ),
            },
            value: value.subst(from, &to_expr),
        },
        Stmt::Do { label, var, ranges, mask, body } => {
            if var == from {
                // Shadowed: inner loop reuses the name; leave untouched.
                return s.clone();
            }
            Stmt::Do {
                label: label.clone(),
                var: var.clone(),
                ranges: ranges
                    .iter()
                    .map(|r| Range {
                        lo: r.lo.subst(from, &to_expr),
                        hi: r.hi.subst(from, &to_expr),
                        step: r.step.as_ref().map(|e| e.subst(from, &to_expr)),
                    })
                    .collect(),
                mask: mask.as_ref().map(|m| m.subst(from, &to_expr)),
                body: body.iter().map(|b| rename_var(b, from, to)).collect(),
            }
        }
        Stmt::If { cond, then_body, else_body } => Stmt::If {
            cond: cond.subst(from, &to_expr),
            then_body: then_body.iter().map(|b| rename_var(b, from, to)).collect(),
            else_body: else_body.iter().map(|b| rename_var(b, from, to)).collect(),
        },
        Stmt::Call { name, args } => Stmt::Call {
            name: name.clone(),
            args: args.iter().map(|a| a.subst(from, &to_expr)).collect(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_lang::interp::{Env, Interp};
    use orchestra_lang::parse_program;

    fn setup(src: &str) -> (orchestra_lang::ast::Program, SymCtx) {
        let p = parse_program(src).unwrap();
        let ctx = SymCtx::from_program(&p);
        (p, ctx)
    }

    #[test]
    fn fuses_elementwise_loops() {
        let (p, ctx) = setup(
            "program t\n integer n = 6\n float x[1..n], y[1..n]\n do i = 1, n { x[i] = 1.0 }\n do j = 1, n { y[j] = x[j] * 2.0 }\nend",
        );
        assert_eq!(can_fuse(&p.body[0], &p.body[1], &ctx), Ok(()));
        let fused = fuse_loops(&p.body[0], &p.body[1], &ctx).unwrap();
        let Stmt::Do { body, var, .. } = &fused else { panic!() };
        assert_eq!(var, "i");
        assert_eq!(body.len(), 2, "both bodies, second renamed j→i");
    }

    #[test]
    fn fusion_preserves_semantics() {
        let src = "program t\n integer n = 6\n float x[1..n], y[1..n]\n do i = 1, n { x[i] = i * 1.0 }\n do j = 1, n { y[j] = x[j] * 2.0 }\nend";
        let (p, ctx) = setup(src);
        let mut fused_prog = p.clone();
        let (body, n) = fuse_adjacent(&p.body, &ctx);
        assert_eq!(n, 1);
        fused_prog.body = body;
        let e1 = Interp::new().run(&p, &Env::new()).unwrap();
        let e2 = Interp::new().run(&fused_prog, &Env::new()).unwrap();
        assert_eq!(e1["x"], e2["x"]);
        assert_eq!(e1["y"], e2["y"]);
    }

    #[test]
    fn rejects_backward_dependence() {
        // L2 iteration i reads x[i+1], written by L1 iteration i+1 —
        // fusing would read the value before it is written.
        let (p, ctx) = setup(
            "program t\n integer n = 6\n float x[1..n], y[1..n]\n do i = 1, n { x[i] = i * 1.0 }\n do j = 1, n - 1 { y[j] = x[j + 1] }\nend",
        );
        // Headers differ (n vs n-1) — normalize by testing the backward
        // probe directly on equal headers:
        let (p2, ctx2) = setup(
            "program t\n integer n = 6\n float x[1..n + 1], y[1..n]\n do i = 1, n { x[i] = i * 1.0 }\n do j = 1, n { y[j] = x[j + 1] }\nend",
        );
        assert_eq!(
            can_fuse(&p2.body[0], &p2.body[1], &ctx2),
            Err(FusionObstacle::BackwardDependence)
        );
        let _ = (p, ctx);
    }

    #[test]
    fn allows_forward_dependence() {
        // L2 reads x[i-1] (written by an EARLIER iteration of L1):
        // forward dependence, fusion legal.
        let (p, ctx) = setup(
            "program t\n integer n = 6\n float x[0..n], y[1..n]\n do i = 1, n { x[i] = i * 1.0 }\n do j = 1, n { y[j] = x[j - 1] }\nend",
        );
        assert_eq!(can_fuse(&p.body[0], &p.body[1], &ctx), Ok(()));
        // And the fused program computes the same thing.
        let mut fp = p.clone();
        let (body, n) = fuse_adjacent(&p.body, &ctx);
        assert_eq!(n, 1);
        fp.body = body;
        let e1 = Interp::new().run(&p, &Env::new()).unwrap();
        let e2 = Interp::new().run(&fp, &Env::new()).unwrap();
        assert_eq!(e1["y"], e2["y"]);
    }

    #[test]
    fn rejects_header_mismatch() {
        let (p, ctx) = setup(
            "program t\n integer n = 6\n float x[1..n], y[1..n]\n do i = 1, n { x[i] = 1.0 }\n do j = 2, n { y[j] = 2.0 }\nend",
        );
        assert_eq!(can_fuse(&p.body[0], &p.body[1], &ctx), Err(FusionObstacle::HeaderMismatch));
    }

    #[test]
    fn fuses_matching_masked_loops() {
        let (p, ctx) = setup(
            "program t\n integer n = 6\n integer m[1..n]\n float x[1..n], y[1..n]\n do i = 1, n where (m[i] <> 0) { x[i] = 1.0 }\n do j = 1, n where (m[j] <> 0) { y[j] = 2.0 }\nend",
        );
        assert_eq!(can_fuse(&p.body[0], &p.body[1], &ctx), Ok(()));
    }

    #[test]
    fn rejects_mask_mismatch() {
        let (p, ctx) = setup(
            "program t\n integer n = 6\n integer m[1..n]\n float x[1..n], y[1..n]\n do i = 1, n where (m[i] <> 0) { x[i] = 1.0 }\n do j = 1, n { y[j] = 2.0 }\nend",
        );
        assert_eq!(can_fuse(&p.body[0], &p.body[1], &ctx), Err(FusionObstacle::HeaderMismatch));
    }

    #[test]
    fn chain_of_three_fuses_twice() {
        let (p, ctx) = setup(
            "program t\n integer n = 4\n float a[1..n], b[1..n], c[1..n]\n do i = 1, n { a[i] = 1.0 }\n do j = 1, n { b[j] = a[j] }\n do k = 1, n { c[k] = b[k] }\nend",
        );
        let (body, n) = fuse_adjacent(&p.body, &ctx);
        assert_eq!(n, 2);
        assert_eq!(body.len(), 1);
    }

    #[test]
    fn non_loops_pass_through() {
        let (p, ctx) = setup(
            "program t\n integer n = 4, s\n float a[1..n]\n s = 1\n do i = 1, n { a[i] = 1.0 }\nend",
        );
        let (body, n) = fuse_adjacent(&p.body, &ctx);
        assert_eq!(n, 0);
        assert_eq!(body.len(), 2);
    }

    /// The paper's intro observation: fusing Figure 1's A and B is the
    /// *wrong* move — and in fact the dependence structure forbids it
    /// outright here (B reads all of q; A's later iterations write q).
    #[test]
    fn figure1_a_and_b_do_not_fuse() {
        let p = orchestra_lang::builder::figure1_program(8);
        let ctx = SymCtx::from_program(&p);
        assert!(can_fuse(&p.body[0], &p.body[1], &ctx).is_err());
    }
}
