//! Pipelining loop iterations with split (§3.3.2, Figure 3).
//!
//! "To pipeline a loop with split, first the descriptor for one
//! iteration of the loop is computed. If the induction variable is `i`,
//! `D_{i-1}`, the descriptor for iteration `i-1`, is computed. Then the
//! loop body is split using `D_{i-1}`; the resulting independent
//! computation does not interfere with iteration `i-1`. … If deeper
//! pipelining is desired, the descriptor for iteration `i-2` can be
//! computed, etc."
//!
//! The transformed loop keeps sequential semantics (body =
//! `A_I; A_D; A_M; …` in order-preserving piece order); the exposed
//! pipelining — iteration `i`'s `A_I` may overlap iteration `i-1` — is
//! recorded in the result and consumed by the Delirium graph builder.

use crate::split::{split_computation, SplitOptions, SplitResult};
use orchestra_descriptors::{loop_iteration_descriptor, Descriptor, SymCtx};
use orchestra_lang::ast::{Decl, Program, Stmt};

/// The result of pipelining one loop.
#[derive(Debug, Clone)]
pub struct PipelineResult {
    /// The loop's label (or a synthesized name).
    pub loop_name: String,
    /// Induction variable.
    pub var: String,
    /// Pipeline depth used (number of previous iterations split
    /// against).
    pub depth: usize,
    /// The transformed loop, semantically equivalent to the original.
    pub transformed: Stmt,
    /// Replicated declarations to add to the program.
    pub new_decls: Vec<Decl>,
    /// The split of the body against the previous iteration(s).
    pub split: SplitResult,
}

impl PipelineResult {
    /// True when pipelining exposed concurrency (an independent piece
    /// exists and at least one loop was split).
    pub fn exposed_concurrency(&self) -> bool {
        self.split.has_independent_work()
            && (!self.split.loop_splits.is_empty() || !self.split.moved_read_linked.is_empty())
    }
}

/// Pipelines a loop to the given depth (≥ 1).
///
/// Returns `None` when `loop_stmt` is not a loop, its bounds are not
/// linearizable, or the body split exposes nothing (no independent
/// piece).
pub fn pipeline_loop(
    prog: &Program,
    loop_stmt: &Stmt,
    depth: usize,
    opts: &SplitOptions,
) -> Option<PipelineResult> {
    let Stmt::Do { label, var, ranges, mask, body } = loop_stmt else { return None };
    let depth = depth.max(1);
    let ctx = SymCtx::from_program(prog);
    let iter = loop_iteration_descriptor(loop_stmt, &ctx)?;

    // D_{i-1} ∪ … ∪ D_{i-depth}.
    let mut d_prev = Descriptor::new();
    for k in 1..=depth {
        let shifted = iter
            .descriptor
            .subst(var, &orchestra_analysis::symbolic::SymExpr::name(var).offset(-(k as i64)));
        d_prev.union(&shifted);
    }

    let split = split_computation(prog, body, &d_prev, opts);
    if !split.has_independent_work() {
        return None;
    }

    let transformed = Stmt::Do {
        label: label.clone(),
        var: var.clone(),
        ranges: ranges.clone(),
        mask: mask.clone(),
        body: split.stmts(),
    };
    Some(PipelineResult {
        loop_name: label.clone().unwrap_or_else(|| "loop".to_string()),
        var: var.clone(),
        depth,
        transformed,
        new_decls: split.new_decls.clone(),
        split,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::split::PieceClass;
    use orchestra_lang::builder::figure1_program;
    use orchestra_lang::interp::{Env, Interp, Value};
    use orchestra_lang::pretty::stmt_to_string;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn pipelined_figure1(n: i64) -> (orchestra_lang::ast::Program, PipelineResult) {
        let p = figure1_program(n);
        let r = pipeline_loop(&p, &p.body[0], 1, &SplitOptions::default())
            .expect("figure 1's A pipelines");
        (p, r)
    }

    #[test]
    fn figure3_shape_discontinuous_range() {
        let (_, r) = pipelined_figure1(8);
        assert!(r.exposed_concurrency());
        // The independent piece contains the Figure 3 discontinuous
        // range do i = 1, col-2 and col, n.
        let ind = r.split.stmts_of(PieceClass::Independent);
        let printed: String = ind.iter().map(stmt_to_string).collect();
        assert!(
            printed.contains("do i = 1, col - 1 - 1 and col - 1 + 1, n")
                || printed.contains("do i = 1, col - 2 and col, n"),
            "independent piece must iterate 1..col-2 and col..n:\n{printed}"
        );
    }

    #[test]
    fn figure3_pieces_named_after_inner_loop() {
        let (_, r) = pipelined_figure1(8);
        let names: Vec<&str> = r.split.pieces.iter().map(|p| p.name.as_str()).collect();
        // The body's first inner loop splits into I/D/M; the q-write
        // loop is dependent (NeedsBound on the merged result).
        assert!(names.iter().any(|n| n.ends_with("_I")));
        assert!(names.iter().any(|n| n.ends_with("_D")));
        assert!(names.iter().any(|n| n.ends_with("_M")));
    }

    #[test]
    fn pipelined_loop_is_semantics_preserving() {
        for n in [4, 8] {
            let (p, r) = pipelined_figure1(n);
            let mut p2 = p.clone();
            p2.decls.extend(r.new_decls.iter().cloned());
            p2.body[0] = r.transformed.clone();

            let mut rng = StdRng::seed_from_u64(n as u64);
            let mut inputs = Env::new();
            let nn = n;
            inputs.insert(
                "mask".into(),
                Value::IntArray {
                    dims: vec![(1, nn)],
                    data: (0..nn).map(|_| rng.gen_range(0..2)).collect(),
                },
            );
            inputs.insert(
                "q".into(),
                Value::FloatArray {
                    dims: vec![(1, nn), (1, nn)],
                    data: (0..nn * nn).map(|_| rng.gen_range(-8..8) as f64 * 0.5).collect(),
                },
            );
            let e1 = Interp::new().run(&p, &inputs).unwrap();
            let e2 = Interp::new().run(&p2, &inputs).unwrap();
            for key in ["q", "output", "result"] {
                let (Value::FloatArray { data: a, .. }, Value::FloatArray { data: b, .. }) =
                    (&e1[key], &e2[key])
                else {
                    panic!()
                };
                for (x, y) in a.iter().zip(b) {
                    assert!((x - y).abs() < 1e-9, "{key}: {x} vs {y}");
                }
            }
        }
    }

    #[test]
    fn depth_two_excludes_both_points() {
        // Depth 2 splits against D_{i-1} ∪ D_{i-2}: the independent
        // piece must skip both col-1 and col-2 (multi-point exclusion).
        let p = figure1_program(8);
        let r = pipeline_loop(&p, &p.body[0], 2, &SplitOptions::default())
            .expect("depth-2 pipelining applies");
        assert_eq!(r.depth, 2);
        assert!(r.exposed_concurrency());
        let text = stmt_to_string(&r.transformed);
        assert!(
            text.contains("i <> col - 1") && text.contains("i <> col - 2"),
            "independent piece must exclude both previous iterations:\n{text}"
        );
    }

    #[test]
    fn depth_two_preserves_semantics() {
        for n in [5, 8] {
            let p = figure1_program(n);
            let r = pipeline_loop(&p, &p.body[0], 2, &SplitOptions::default())
                .expect("depth-2 pipelining applies");
            let mut p2 = p.clone();
            p2.decls.extend(r.new_decls.iter().cloned());
            p2.body[0] = r.transformed.clone();

            let mut rng = StdRng::seed_from_u64(n as u64 * 31);
            let mut inputs = Env::new();
            inputs.insert(
                "mask".into(),
                Value::IntArray {
                    dims: vec![(1, n)],
                    data: (0..n).map(|_| rng.gen_range(0..2)).collect(),
                },
            );
            inputs.insert(
                "q".into(),
                Value::FloatArray {
                    dims: vec![(1, n), (1, n)],
                    data: (0..n * n).map(|_| rng.gen_range(-8..8) as f64 * 0.5).collect(),
                },
            );
            let e1 = Interp::new().run(&p, &inputs).unwrap();
            let e2 = Interp::new().run(&p2, &inputs).unwrap();
            assert_eq!(e1.get("output"), e2.get("output"));
            assert_eq!(e1.get("q"), e2.get("q"));
        }
    }

    #[test]
    fn non_loop_returns_none() {
        let p = figure1_program(4);
        let s = orchestra_lang::builder::set("z", orchestra_lang::builder::int(1));
        assert!(pipeline_loop(&p, &s, 1, &SplitOptions::default()).is_none());
    }

    #[test]
    fn loop_without_carried_dependence_pipelines_trivially() {
        // Every iteration writes its own column; D_{i-1} never
        // conflicts, so the whole body is independent (Free) — the
        // runtime can run iterations fully concurrently.
        let p = orchestra_lang::parse_program(
            r#"
program p
  integer n = 4
  float w[1..n, 1..n]
  L: do c = 1, n {
    do i = 1, n {
      w[i, c] = 1.0
    }
  }
end
"#,
        )
        .unwrap();
        let r = pipeline_loop(&p, &p.body[0], 1, &SplitOptions::default()).unwrap();
        assert!(r.split.pieces.iter().all(|pc| pc.class == PieceClass::Independent));
        assert!(!r.exposed_concurrency(), "nothing needed splitting");
    }
}
