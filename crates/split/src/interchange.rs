//! Loop interchange (§3, citing Allen & Kennedy \[2\]).
//!
//! Swaps the two loops of a perfect 2-deep nest. Legality is decided
//! with symbolic data descriptors: interchange is illegal exactly when
//! some dependence has direction `(<, >)` — carried forward by the
//! outer loop and backward by the inner — because swapping reverses its
//! execution order. The probe substitutes `(i, j) → (i+1, j−1)` into
//! the body's descriptor, which for linear access patterns represents
//! that direction class.

use orchestra_analysis::symbolic::SymExpr;
use orchestra_descriptors::{descriptor_of_stmts, SymCtx};
use orchestra_lang::ast::{Range, Stmt};

/// Why a nest cannot be interchanged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterchangeObstacle {
    /// Not a `do` loop whose body is exactly one `do` loop.
    NotAPerfectNest,
    /// The inner bounds depend on the outer induction variable
    /// (a triangular nest).
    TriangularBounds,
    /// Masks on either loop (interchange under masks is not attempted).
    Masked,
    /// A `(<, >)`-direction dependence.
    DirectionConflict,
}

impl std::fmt::Display for InterchangeObstacle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            InterchangeObstacle::NotAPerfectNest => "not a perfect 2-deep nest",
            InterchangeObstacle::TriangularBounds => "inner bounds depend on outer variable",
            InterchangeObstacle::Masked => "masked loops are not interchanged",
            InterchangeObstacle::DirectionConflict => "(<, >)-direction dependence",
        };
        write!(f, "{s}")
    }
}

fn nest_parts(s: &Stmt) -> Option<(&String, &Vec<Range>, &Stmt)> {
    let Stmt::Do { var, ranges, mask, body, .. } = s else { return None };
    if mask.is_some() || ranges.len() != 1 || body.len() != 1 {
        return None;
    }
    let inner = &body[0];
    matches!(inner, Stmt::Do { .. }).then_some((var, ranges, inner))
}

/// Checks interchange legality for a perfect 2-deep nest.
///
/// # Errors
///
/// Returns the first [`InterchangeObstacle`] found.
pub fn can_interchange(nest: &Stmt, ctx: &SymCtx) -> Result<(), InterchangeObstacle> {
    let (outer_var, _, inner) = nest_parts(nest).ok_or(InterchangeObstacle::NotAPerfectNest)?;
    let Stmt::Do { var: inner_var, ranges: inner_ranges, mask, body, .. } = inner else {
        return Err(InterchangeObstacle::NotAPerfectNest);
    };
    if mask.is_some() {
        return Err(InterchangeObstacle::Masked);
    }
    if inner_ranges.len() != 1 {
        return Err(InterchangeObstacle::NotAPerfectNest);
    }
    // Triangular nests change their iteration space under interchange.
    let r = &inner_ranges[0];
    let mentions_outer = |e: &orchestra_lang::ast::Expr| {
        let mut reads = std::collections::BTreeSet::new();
        e.scalar_reads(&mut reads);
        reads.contains(outer_var)
    };
    if mentions_outer(&r.lo) || mentions_outer(&r.hi) || r.step.as_ref().is_some_and(mentions_outer)
    {
        return Err(InterchangeObstacle::TriangularBounds);
    }

    // Direction probe: body at (i, j) vs body at (i+1, j−1).
    let mut body_ctx = ctx.clone();
    body_ctx.killed.remove(outer_var);
    body_ctx.values.remove(outer_var);
    body_ctx.killed.remove(inner_var);
    body_ctx.values.remove(inner_var);
    let d = descriptor_of_stmts(body, &body_ctx).without_block(outer_var).without_block(inner_var);
    let probe = d
        .subst(outer_var, &SymExpr::name(outer_var).offset(1))
        .subst(inner_var, &SymExpr::name(inner_var).offset(-1));
    if d.interferes(&probe) {
        return Err(InterchangeObstacle::DirectionConflict);
    }
    Ok(())
}

/// Interchanges a perfect 2-deep nest, or returns `None` when
/// [`can_interchange`] rejects it.
pub fn interchange(nest: &Stmt, ctx: &SymCtx) -> Option<Stmt> {
    can_interchange(nest, ctx).ok()?;
    let Stmt::Do { label, var: ov, ranges: orng, body, .. } = nest else { return None };
    let Stmt::Do { var: iv, ranges: irng, body: inner_body, .. } = &body[0] else {
        return None;
    };
    Some(Stmt::Do {
        label: label.clone(),
        var: iv.clone(),
        ranges: irng.clone(),
        mask: None,
        body: vec![Stmt::Do {
            label: None,
            var: ov.clone(),
            ranges: orng.clone(),
            mask: None,
            body: inner_body.clone(),
        }],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_lang::interp::{Env, Interp};
    use orchestra_lang::parse_program;

    fn setup(src: &str) -> (orchestra_lang::ast::Program, SymCtx) {
        let p = parse_program(src).unwrap();
        let ctx = SymCtx::from_program(&p);
        (p, ctx)
    }

    #[test]
    fn interchanges_elementwise_nest() {
        let (p, ctx) = setup(
            "program t\n integer n = 4\n float a[1..n, 1..n]\n do i = 1, n { do j = 1, n { a[i, j] = 1.0 } }\nend",
        );
        assert_eq!(can_interchange(&p.body[0], &ctx), Ok(()));
        let sw = interchange(&p.body[0], &ctx).unwrap();
        let Stmt::Do { var, body, .. } = &sw else { panic!() };
        assert_eq!(var, "j");
        let Stmt::Do { var: inner, .. } = &body[0] else { panic!() };
        assert_eq!(inner, "i");
    }

    #[test]
    fn interchange_preserves_semantics() {
        let src = "program t\n integer n = 5\n float a[1..n, 1..n]\n L: do i = 1, n { do j = 1, n { a[i, j] = i * 10.0 + j } }\nend";
        let (p, ctx) = setup(src);
        let mut swapped = p.clone();
        swapped.body[0] = interchange(&p.body[0], &ctx).unwrap();
        let e1 = Interp::new().run(&p, &Env::new()).unwrap();
        let e2 = Interp::new().run(&swapped, &Env::new()).unwrap();
        assert_eq!(e1["a"], e2["a"]);
    }

    #[test]
    fn rejects_direction_conflict() {
        // a[i, j] = a[i-1, j+1]: dependence with direction (<, >).
        let (p, ctx) = setup(
            "program t\n integer n = 5\n float a[0..n, 0..n + 1]\n do i = 1, n { do j = 1, n { a[i, j] = a[i - 1, j + 1] } }\nend",
        );
        assert_eq!(can_interchange(&p.body[0], &ctx), Err(InterchangeObstacle::DirectionConflict));
    }

    #[test]
    fn accepts_same_direction_dependence() {
        // a[i, j] = a[i-1, j-1]: direction (<, <) — interchange legal.
        let (p, ctx) = setup(
            "program t\n integer n = 5\n float a[0..n, 0..n]\n L: do i = 1, n { do j = 1, n { a[i, j] = a[i - 1, j - 1] } }\nend",
        );
        assert_eq!(can_interchange(&p.body[0], &ctx), Ok(()));
        let mut swapped = p.clone();
        swapped.body[0] = interchange(&p.body[0], &ctx).unwrap();
        let e1 = Interp::new().run(&p, &Env::new()).unwrap();
        let e2 = Interp::new().run(&swapped, &Env::new()).unwrap();
        assert_eq!(e1["a"], e2["a"]);
    }

    #[test]
    fn rejects_triangular_nest() {
        let (p, ctx) = setup(
            "program t\n integer n = 5\n float a[1..n, 1..n]\n do i = 1, n { do j = 1, i { a[i, j] = 1.0 } }\nend",
        );
        assert_eq!(can_interchange(&p.body[0], &ctx), Err(InterchangeObstacle::TriangularBounds));
    }

    #[test]
    fn rejects_imperfect_nest() {
        let (p, ctx) = setup(
            "program t\n integer n = 5, s\n float a[1..n, 1..n]\n do i = 1, n { s = i\n do j = 1, n { a[i, j] = 1.0 } }\nend",
        );
        assert_eq!(can_interchange(&p.body[0], &ctx), Err(InterchangeObstacle::NotAPerfectNest));
    }

    #[test]
    fn rejects_masked_nest() {
        let (p, ctx) = setup(
            "program t\n integer n = 5\n integer m[1..n]\n float a[1..n, 1..n]\n do i = 1, n { do j = 1, n where (m[j] <> 0) { a[i, j] = 1.0 } }\nend",
        );
        assert_eq!(can_interchange(&p.body[0], &ctx), Err(InterchangeObstacle::Masked));
    }

    #[test]
    fn reduction_nest_interchanges() {
        // sum += a[i][j] commutes in any order; the descriptor probe
        // sees sum as scalar write+read on both sides, which interferes…
        // so the conservative answer is a rejection. Verify we are at
        // least *sound*: if accepted, semantics must hold; if rejected,
        // that's the conservative path.
        let (p, ctx) = setup(
            "program t\n integer n = 4\n float s, a[1..n, 1..n]\n do i = 1, n { do j = 1, n { s = s + a[i, j] } }\nend",
        );
        match can_interchange(&p.body[0], &ctx) {
            Ok(()) => {
                let mut swapped = p.clone();
                swapped.body[0] = interchange(&p.body[0], &ctx).unwrap();
                let e1 = Interp::new().run(&p, &Env::new()).unwrap();
                let e2 = Interp::new().run(&swapped, &Env::new()).unwrap();
                assert_eq!(e1["s"], e2["s"]);
            }
            Err(e) => assert_eq!(e, InterchangeObstacle::DirectionConflict),
        }
    }
}
