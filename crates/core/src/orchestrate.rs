//! The one-stop orchestration API: compile → graph → execute.

use crate::compile::{compile, compile_source, CompileError, Compiled};
use crate::graph::{baseline_graph, graph_of_compiled};
use orchestra_lang::ast::Program;
use orchestra_machine::MachineConfig;
use orchestra_runtime::{execute_graph, ExecutionReport, ExecutorOptions};
use orchestra_split::SplitOptions;

/// Compiles MF programs and executes them on the simulated machine.
#[derive(Debug, Clone)]
pub struct Orchestrator {
    /// The simulated machine.
    pub machine: MachineConfig,
    /// Split/pipelining heuristics.
    pub split_options: SplitOptions,
    /// Runtime scheduling options.
    pub executor_options: ExecutorOptions,
}

/// The paired outcome of running a program both ways.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Barrier-structured execution of the original program.
    pub baseline: ExecutionReport,
    /// Orchestrated execution of the transformed program.
    pub orchestrated: ExecutionReport,
}

impl Comparison {
    /// Speedup of orchestration over the baseline.
    pub fn improvement(&self) -> f64 {
        if self.orchestrated.finish <= 0.0 {
            return 1.0;
        }
        self.baseline.finish / self.orchestrated.finish
    }
}

impl Orchestrator {
    /// An orchestrator for an nCUBE-2-like machine with `p` processors.
    pub fn ncube2(p: usize) -> Self {
        Orchestrator {
            machine: MachineConfig::ncube2(p),
            split_options: SplitOptions::default(),
            executor_options: ExecutorOptions::default(),
        }
    }

    /// Compiles source text.
    ///
    /// # Errors
    ///
    /// Returns a [`CompileError`] on parse failure.
    pub fn compile_source(&self, src: &str) -> Result<Compiled, CompileError> {
        compile_source(src, &self.split_options)
    }

    /// Compiles a parsed program.
    pub fn compile(&self, prog: Program) -> Compiled {
        compile(prog, &self.split_options)
    }

    /// Executes the compiled (orchestrated) form.
    ///
    /// # Panics
    ///
    /// Panics if graph construction produced an invalid graph — a bug,
    /// not an input condition.
    pub fn run(&self, c: &Compiled) -> ExecutionReport {
        let (g, iters) = graph_of_compiled(c);
        let mut opts = self.executor_options.clone();
        opts.pipeline_iters.extend(iters);
        execute_graph(&g, &self.machine, &opts).expect("compiled graph is valid")
    }

    /// Executes the original program in barrier style.
    ///
    /// # Panics
    ///
    /// Panics if the baseline graph is invalid (a bug).
    pub fn run_baseline(&self, prog: &Program) -> ExecutionReport {
        let (g, iters) = baseline_graph(prog);
        let mut opts = self.executor_options.clone();
        // The baseline's phase groups synchronize every iteration.
        opts.pipeline_overlap = false;
        opts.pipeline_iters.extend(iters);
        execute_graph(&g, &self.machine, &opts).expect("baseline graph is valid")
    }

    /// Compiles and runs a program both ways.
    pub fn compare(&self, prog: Program) -> (Compiled, Comparison) {
        let baseline = self.run_baseline(&prog);
        let c = self.compile(prog);
        let orchestrated = self.run(&c);
        (c, Comparison { baseline, orchestrated })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_lang::builder::figure1_program;

    #[test]
    fn figure1_runs_both_ways() {
        let orch = Orchestrator::ncube2(64);
        let (c, cmp) = orch.compare(figure1_program(64));
        assert!(c.exposed_concurrency());
        assert!(cmp.baseline.finish > 0.0);
        assert!(cmp.orchestrated.finish > 0.0);
    }

    #[test]
    fn orchestration_exposes_concurrency_at_bounded_cost() {
        // The Figure 1 kernel is tiny (microseconds of work per
        // element), so at 256 processors the merge overhead of the
        // transformation is not recouped — the paper's wins come from
        // the production applications (see orchestra-apps and the
        // benches). What the compiler path must guarantee here is
        // structural: the transformed graph really overlaps B_I with
        // the pipelined A, and the overhead stays bounded.
        let mut orch = Orchestrator::ncube2(256);
        orch.machine = orchestra_machine::MachineConfig::ideal(256);
        let (c, cmp) = orch.compare(figure1_program(96));
        let (g, _) = crate::graph::graph_of_compiled(&c);
        let levels = g.levels().unwrap();
        let level0_names: Vec<&str> = levels[0].iter().map(|&v| g.nodes[v].name.as_str()).collect();
        assert!(level0_names.contains(&"B_I"), "B_I concurrent with the pipeline");
        assert!(
            level0_names.iter().any(|n| n.contains("_I") && n.contains("::")),
            "pipelined A_I at level 0: {level0_names:?}"
        );
        assert!(
            cmp.orchestrated.finish < 2.5 * cmp.baseline.finish,
            "transformation overhead bounded: baseline {} vs orchestrated {}",
            cmp.baseline.finish,
            cmp.orchestrated.finish
        );
    }

    #[test]
    fn coarse_kernel_overlaps_heavy_postpass() {
        // A kernel with an 8×-heavier post-pass: B_I must actually run
        // in A's shadow (overlap in simulated time), and the end-to-end
        // overhead stays bounded. (At micro-kernel scale the dependent
        // piece's single-wave floor and the merge keep the total from
        // beating the barrier baseline — the quantitative wins are the
        // application-scale benches' job, as in the paper, which
        // hand-transformed the production codes.)
        let src = r#"
program coarse
  integer n = 64
  integer mask[1..n]
  float result[1..n], q[1..n, 1..n], output[1..n, 1..n]
  A: do col = 1, n where (mask[col] <> 0) {
    do i = 1, n {
      result[i] = q[col, i] * 0.5 + q[i, i]
    }
    do i = 1, n {
      q[i, col] = result[i]
    }
  }
  B: do i = 1, n {
    do j = 1, n {
      output[j, i] = f(g(h(f(g(h(f(g(q[j, i]))))))))
    }
  }
end
"#;
        let mut orch = Orchestrator::ncube2(64);
        orch.machine = orchestra_machine::MachineConfig::ideal(64);
        let p = orchestra_lang::parse_program(src).unwrap();
        let (c, cmp) = orch.compare(p);
        assert!(c.exposed_concurrency());
        // B_I and the pipeline overlap in time.
        let report = &cmp.orchestrated;
        let bi = report.nodes.iter().find(|n| n.name == "B_I").expect("B_I ran");
        let pipe =
            report.nodes.iter().find(|n| n.name.starts_with("pipeline:")).expect("pipeline ran");
        assert!(
            bi.start < pipe.finish && pipe.start < bi.finish,
            "B_I [{}, {}] must overlap the pipeline [{}, {}]",
            bi.start,
            bi.finish,
            pipe.start,
            pipe.finish
        );
        assert!(
            cmp.orchestrated.finish < 2.5 * cmp.baseline.finish,
            "bounded overhead: baseline {} vs orchestrated {}",
            cmp.baseline.finish,
            cmp.orchestrated.finish
        );
    }

    #[test]
    fn source_round_trip() {
        let orch = Orchestrator::ncube2(16);
        let src = orchestra_lang::pretty::pretty_print(&figure1_program(16));
        let c = orch.compile_source(&src).unwrap();
        let report = orch.run(&c);
        assert!(report.finish > 0.0);
        assert!(report.efficiency() > 0.0);
    }

    #[test]
    fn bad_source_is_an_error() {
        let orch = Orchestrator::ncube2(4);
        assert!(orch.compile_source("program ???").is_err());
    }
}
