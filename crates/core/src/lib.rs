#![warn(missing_docs)]
//! # orchestra-core
//!
//! The end-to-end pipeline of the PLDI '93 *Orchestrating Interactions
//! Among Parallel Computations* reproduction: parse MF source, run the
//! six-step symbolic analysis, apply split and pipelining, emit the
//! Delirium dataflow graph, and execute it with the adaptive runtime on
//! the simulated machine.
//!
//! ```
//! use orchestra_core::Orchestrator;
//! use orchestra_lang::builder::figure1_program;
//!
//! let orch = Orchestrator::ncube2(64);
//! let (compiled, comparison) = orch.compare(figure1_program(64));
//! assert!(compiled.exposed_concurrency());
//! assert!(comparison.baseline.finish > 0.0);
//! ```

pub mod compile;
pub mod graph;
pub mod orchestrate;

pub use compile::{compile, compile_source, summarize_pieces, CompileError, Compiled};
pub use graph::{baseline_graph, graph_of_compiled, OP_MICROSECONDS};
pub use orchestrate::{Comparison, Orchestrator};
